package feisu

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/plan"
)

// History collects per-user predicate usage — the paper's client-side
// query-history collection (§III-C): once a user repeats a predicate
// PinThreshold times, the predicate is pinned in every leaf's SmartIndex
// as that user community's private index, surviving TTL expiry while
// memory lasts.
type History struct {
	sys       *System
	threshold int

	mu     sync.Mutex
	counts map[string]map[string]int // user -> atom key -> uses
	pinned map[string]bool
}

// ObserveQuery implements cluster.PredicateObserver.
func (h *History) ObserveQuery(user string, atomKeys []string) {
	if len(atomKeys) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	byUser, ok := h.counts[user]
	if !ok {
		byUser = make(map[string]int)
		h.counts[user] = byUser
	}
	for _, k := range atomKeys {
		byUser[k]++
		if byUser[k] >= h.threshold && !h.pinned[k] {
			h.pinned[k] = true
			for _, si := range h.sys.smart {
				si.PinAtom(k)
			}
		}
	}
}

// HotPredicates returns the user's predicates seen at least min times,
// most-used first.
func (h *History) HotPredicates(user string, min int) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	type kv struct {
		k string
		n int
	}
	var hot []kv
	for k, n := range h.counts[user] {
		if n >= min {
			hot = append(hot, kv{k, n})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].n != hot[j].n {
			return hot[i].n > hot[j].n
		}
		return hot[i].k < hot[j].k
	})
	out := make([]string, len(hot))
	for i, e := range hot {
		out[i] = e.k
	}
	return out
}

// PinnedPredicates returns the atoms currently pinned by history.
func (h *History) PinnedPredicates() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.pinned))
	for k := range h.pinned {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// History returns the query-history collector, or nil when personalization
// is off (Config.PersonalizeThreshold == 0).
func (s *System) History() *History { return s.history }

// WatchJSON starts the leaf-side conversion process of paper §III-B: a
// watcher polls srcPrefix for raw JSON-lines files, converts them into
// columnar partitions under dstPrefix, and extends the table's catalog
// entry as data arrives. The returned stop function halts the watcher.
//
// The table is registered immediately (possibly empty) so queries work
// from the start; each delivered batch re-registers it with the grown
// partition list.
func (s *System) WatchJSON(table string, schema *Schema, srcPrefix, dstPrefix string, interval time.Duration) (stop func(), err error) {
	meta := &plan.TableMeta{Name: table, Schema: schema}
	if err := s.master.RegisterTable(context.Background(), meta); err != nil {
		return nil, err
	}
	conv := s.converter(table, schema, srcPrefix, dstPrefix)
	var mu sync.Mutex
	parts := []plan.PartitionMeta{}
	w := &ingest.Watcher{
		Conv: conv,
		OnNew: func(ctx context.Context, fresh []plan.PartitionMeta) error {
			mu.Lock()
			parts = append(parts, fresh...)
			grown := &plan.TableMeta{Name: table, Schema: schema, Partitions: append([]plan.PartitionMeta(nil), parts...)}
			mu.Unlock()
			return s.master.RegisterTable(ctx, grown)
		},
	}
	w.Start(interval)
	return w.Stop, nil
}

// IngestOnce converts whatever raw JSON files currently sit under
// srcPrefix and registers (or extends) the table synchronously — the
// one-shot form of WatchJSON for batch loads and tests.
func (s *System) IngestOnce(ctx context.Context, table string, schema *Schema, srcPrefix, dstPrefix string) (int64, error) {
	conv := s.converter(table, schema, srcPrefix, dstPrefix)
	parts, err := conv.ScanOnce(ctx)
	if err != nil {
		return 0, err
	}
	// A restarted converter can reuse sequence numbers and rewrite a path
	// already in the catalog; the fresh scan's metadata supersedes the old
	// entry (its row count and block layout changed with the file).
	fresh := make(map[string]bool, len(parts))
	for _, p := range parts {
		fresh[p.Path] = true
	}
	existing, err := s.master.Jobs.Lookup(table)
	meta := &plan.TableMeta{Name: table, Schema: schema}
	if err == nil {
		for _, p := range existing.Partitions {
			if !fresh[p.Path] {
				meta.Partitions = append(meta.Partitions, p)
			}
		}
	}
	var rows int64
	for _, p := range parts {
		rows += p.Rows
	}
	meta.Partitions = append(meta.Partitions, parts...)
	return rows, s.master.RegisterTable(ctx, meta)
}

// converter returns the table's converter, creating it on first use so
// repeated ingests never re-process or overwrite earlier output.
func (s *System) converter(table string, schema *Schema, srcPrefix, dstPrefix string) *ingest.Converter {
	s.convMu.Lock()
	defer s.convMu.Unlock()
	if s.convs == nil {
		s.convs = make(map[string]*ingest.Converter)
	}
	if c, ok := s.convs[table]; ok {
		return c
	}
	c := &ingest.Converter{
		Router:    s.router,
		Schema:    schema,
		SrcPrefix: srcPrefix,
		DstPrefix: dstPrefix,
		// Ingest (re)wrote a partition file: drop every cached artifact
		// derived from it — master/leaf footers, SSD column chunks and
		// semantic result-cache entries — before the partition is reported
		// upward, so no reader ever serves bytes of a superseded file.
		Invalidate: func(path string) { s.InvalidatePath(table, path) },
	}
	s.convs[table] = c
	return c
}
