// Package feisu is a reproduction of Feisu, Baidu's columnar data
// processing system for heterogeneous storage (Qin et al., "Feisu: Fast
// Query Execution over Heterogeneous Data Sources on Large-Scale Clusters",
// ICDE 2017).
//
// A System is an in-process Feisu deployment: a master, optional stem
// servers, and leaf servers co-located with simulated heterogeneous storage
// (local FS, an HDFS-like replicated DFS under /hdfs/..., and a Fatman-like
// cold archive under /ffs/...). Queries use the paper's star-schema SQL
// subset and are accelerated by SmartIndex, the paper's adaptive
// predicate-result index.
//
// Quickstart:
//
//	sys, _ := feisu.New(feisu.Config{Leaves: 4})
//	defer sys.Close()
//	ld, _ := sys.NewLoader("visits", schema, "/hdfs/visits")
//	ld.Append(feisu.Row{feisu.Int(1), feisu.Str("http://a")})
//	ld.Close()
//	res, _ := sys.Query(ctx, "SELECT COUNT(*) FROM visits WHERE id > 0")
package feisu

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/resultcache"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/types"
)

// Re-exported data-model types, so applications only import feisu.
type (
	// Value is one scalar value.
	Value = types.Value
	// Row is one tuple.
	Row = types.Row
	// Field describes one column.
	Field = types.Field
	// Schema is an ordered field list.
	Schema = types.Schema
	// Result is a query result set.
	Result = exec.Result
	// QueryStats reports how a query executed.
	QueryStats = cluster.QueryStats
	// Priority is a query's admission class.
	Priority = cluster.Priority
	// OverloadedError is the typed load-shedding error returned when
	// admission control sheds a query; it carries a retry-after hint.
	OverloadedError = cluster.OverloadedError
)

// Admission priority classes.
const (
	// PriorityInteractive is the default class (larger weighted-fair share).
	PriorityInteractive = cluster.PriorityInteractive
	// PriorityBatch marks throughput-oriented queries that yield to
	// interactive traffic under load.
	PriorityBatch = cluster.PriorityBatch
)

// ErrOverloaded matches (errors.Is) every admission-control shed.
var ErrOverloaded = cluster.ErrOverloaded

// Scalar type tags for Field definitions.
const (
	Int64   = types.Int64
	Float64 = types.Float64
	Bool    = types.Bool
	String  = types.String
)

// Int builds an Int64 value.
func Int(v int64) Value { return types.NewInt(v) }

// Float builds a Float64 value.
func Float(v float64) Value { return types.NewFloat(v) }

// Str builds a String value.
func Str(v string) Value { return types.NewString(v) }

// Boolean builds a Bool value.
func Boolean(v bool) Value { return types.NewBool(v) }

// Null builds the NULL value.
func Null() Value { return types.NullValue() }

// NewSchema builds a schema.
func NewSchema(fields ...Field) (*Schema, error) { return types.NewSchema(fields...) }

// MustSchema builds a schema, panicking on error.
func MustSchema(fields ...Field) *Schema { return types.MustSchema(fields...) }

// IndexKind selects the leaf servers' index.
type IndexKind int

// Index kinds.
const (
	// IndexSmart is the paper's SmartIndex (default).
	IndexSmart IndexKind = iota
	// IndexBTree is the Fig. 9(b) B-tree baseline.
	IndexBTree
	// IndexNone disables indexing.
	IndexNone
)

// Config shapes a System.
type Config struct {
	// Leaves is the leaf-server count (default 4). Leaves double as
	// datanodes of the simulated HDFS and Fatman stores.
	Leaves int
	// Stems is the stem-server count (default Leaves/4, min 1 when
	// Leaves >= 4).
	Stems int
	// Index selects the leaf index implementation.
	Index IndexKind
	// IndexMemoryBytes budgets each leaf's SmartIndex (paper default:
	// 512 MB per server; scaled deployments pass a smaller number).
	// <=0 means unlimited.
	IndexMemoryBytes int64
	// IndexTTL overrides the 72-hour SmartIndex TTL.
	IndexTTL time.Duration
	// IndexCompress parks index bitmaps RLE-compressed.
	IndexCompress bool
	// IndexNoDerivation disables SmartIndex's complement/range derived
	// answers (ablation of the paper's Fig. 7 rewriting).
	IndexNoDerivation bool
	// IndexHeavyHitters enables skew-aware index budgeting: each leaf's
	// SmartIndex tracks predicate-atom heat with a space-saving sketch of
	// this many counters, auto-pins entries for guaranteed-heavy atoms in a
	// cache-line-striped hot tier (negations pre-materialized), and shares
	// the LRU budget in proportion to observed heat. 0 keeps the uniform
	// LRU of the paper.
	IndexHeavyHitters int
	// IndexHotShare caps the hot tier's fraction of IndexMemoryBytes
	// (further scaled by the observed heavy-hitter mass); <=0 defaults to
	// 0.5. Only meaningful with IndexHeavyHitters > 0.
	IndexHotShare float64
	// CacheBytes enables the SSD column cache per leaf; 0 disables.
	CacheBytes int64
	// CachePrefixes are the manually preferred paths admitted to the SSD
	// cache (paper §IV-B).
	CachePrefixes []string
	// ResultCacheBytes enables the master's semantic result cache with this
	// byte budget; 0 disables. Hits are keyed by the normalized plan
	// fingerprint (literals lifted to placeholders), so `b > 10` and
	// `b > 20` share a shape, and subsumption lets a cached wider range
	// answer a narrower one by re-filtering. Entries invalidate on table
	// registration and ingest.
	ResultCacheBytes int64
	// ResultCacheTTL bounds result-cache entry freshness (default 5m when
	// the cache is enabled; negative disables expiry).
	ResultCacheTTL time.Duration
	// ResultCacheTenantBytes caps any one tenant's (auth user's) resident
	// result-cache bytes; 0 means no per-tenant cap.
	ResultCacheTenantBytes int64
	// CacheAffinity routes tasks for the same partition to the same leaf
	// (rendezvous hashing, data holders preferred) while slot caps allow,
	// so leaf footer/SSD caches keep hitting across repeated queries.
	CacheAffinity bool
	// SpillThreshold routes leaf results bigger than this through global
	// storage (paper §V-C); 0 disables.
	SpillThreshold int64
	// TaskTimeout is the straggler threshold for backup tasks.
	TaskTimeout time.Duration
	// EnableAuth turns on the entry guard; obtain tokens via Authority().
	EnableAuth bool
	// MaxConcurrentQueriesPerUser is the entry-guard quota (with auth).
	MaxConcurrentQueriesPerUser int
	// CostModel overrides the simulated-hardware model.
	CostModel *sim.CostModel
	// LocalityOff disables locality-aware scheduling (ablation).
	LocalityOff bool
	// PersonalizeThreshold enables client-history personalization: a
	// predicate repeated this many times is pinned in SmartIndex as a
	// private index (paper §III-C). 0 disables.
	PersonalizeThreshold int
	// Racks groups leaves into racks of this size for the topology and
	// replica placement (default 4).
	Racks int
	// HeartbeatInterval paces the workers' liveness heartbeats (and the
	// SmartIndex TTL sweeper). 0 uses 10s; negative disables background
	// heartbeats entirely (tests drive them manually via Heartbeat).
	HeartbeatInterval time.Duration
	// StorageMaxConcurrentReads enforces the paper's resource-consumption
	// agreement (§V-A) against each simulated storage system: at most this
	// many Feisu reads in flight per store. 0 means unlimited.
	StorageMaxConcurrentReads int
	// SlowQueryWallThreshold records queries whose wall time reaches it in
	// the slow-query log; <=0 disables the wall criterion.
	SlowQueryWallThreshold time.Duration
	// SlowQuerySimThreshold is the simulated-time criterion for the
	// slow-query log; <=0 disables it. With either threshold set, every
	// query is traced so slow entries carry a per-stage breakdown (the
	// trace also becomes visible in QueryStats.Trace).
	SlowQuerySimThreshold time.Duration
	// SlowlogCapacity bounds the slow-query ring buffer (default 128).
	SlowlogCapacity int
	// Chaos enables the deterministic fault-injection plane (internal/chaos)
	// over the deployment's transport, stores and leaf lifecycle. nil runs
	// fault-free. With Chaos.Lifecycle.TickInterval > 0 the controller ticks
	// in the background; otherwise drive it via ChaosTick.
	Chaos *chaos.Config
	// RetryBackoff is the base of the exponential backoff between backup
	// task attempts; 0 defaults to 1ms when chaos is enabled (immediate
	// retries otherwise).
	RetryBackoff time.Duration
	// HedgeDelay is how long a stem waits on a straggler-flagged leaf
	// before firing a speculative duplicate task; 0 uses the master's
	// default, negative disables hedging.
	HedgeDelay time.Duration
	// ScanWorkers bounds each leaf task's intra-task scan parallelism
	// (goroutines scanning a partition's blocks concurrently). 0 defaults
	// to GOMAXPROCS on the leaf; negative forces serial scans. Query
	// results are identical for any setting.
	ScanWorkers int
	// MaxConcurrentQueries caps queries executing at once; excess
	// submissions wait in the master's admission queue (weighted-fair
	// between priority classes) and are shed with ErrOverloaded beyond
	// MaxQueueDepth. <=0 disables admission control.
	MaxConcurrentQueries int
	// MaxQueueDepth bounds each priority class's admission queue; 0
	// defaults to 2×MaxConcurrentQueries.
	MaxQueueDepth int
	// QueueWaitDeadline sheds queries still queued after this wait; 0 lets
	// them wait as long as their context allows.
	QueueWaitDeadline time.Duration
	// LeafSlots caps concurrent task dispatches per leaf: the scheduler
	// prefers leaves with spare slots and stems bound in-flight calls per
	// leaf. <=0 means unbounded.
	LeafSlots int
	// EventLogCapacity sizes the cluster flight recorder's bounded event
	// journal (query/task lifecycle, cache, worker and chaos events). 0 uses
	// the default (4096 events); negative disables the recorder entirely.
	EventLogCapacity int
	// TraceStoreCapacity bounds the ring of retained finished query traces
	// (/debug/trace/{id}, Jaeger export). 0 uses the default (32 traces);
	// negative disables retention.
	TraceStoreCapacity int
	// BroadcastThreshold is the cataloged byte size above which a join's
	// build table is hash-repartitioned across the stems instead of
	// broadcast to every leaf. 0 uses the default (16 MB); negative
	// repartitions every eligible join.
	BroadcastThreshold int64
	// ShufflePartitions is the repartition fan-out (hash partitions per
	// shuffle). <=0 uses 4.
	ShufflePartitions int
	// GroupShuffleRows repartitions a grouped aggregation whose fact table
	// reaches this many cataloged rows, merging groups at the stems instead
	// of the master. 0 uses the default (1M rows); negative disables it.
	GroupShuffleRows int64
	// ShuffleMemoryBytes is each reducer operator's memory grant during a
	// shuffle; past it the build table or group state grace-hash spills to
	// global storage. <=0 uses 64 MB.
	ShuffleMemoryBytes int64
	// Transport selects the cluster RPC fabric: "sim" (default) keeps every
	// node in-process behind the deterministic simulated fabric; "tcp" routes
	// every cluster RPC over real loopback sockets through the wire codec.
	// Empty falls back to the FEISU_TRANSPORT environment variable, then
	// "sim". The two transports satisfy the same transport.Network seam, so
	// chaos, schedulers and tests behave identically on either.
	Transport string
}

// System is an in-process Feisu deployment.
type System struct {
	cfg    Config
	model  *sim.CostModel
	fabric transport.Network
	// tcpNet is set when cfg.Transport resolved to "tcp"; retained so Close
	// can tear down the listener and connection pools.
	tcpNet *transport.TCP
	router *storage.Router
	hdfs   *storage.DFS
	ffs    *storage.DFS
	master *cluster.Master
	leaves []*cluster.LeafServer
	stems  []*cluster.StemServer
	auth   *auth.Authority
	caches []*cache.Reader
	// readers are the per-leaf store readers (inside any SSD cache wrapper);
	// retained so ingest can invalidate their footer caches on rewrite.
	readers  []*exec.StoreReader
	rescache *resultcache.Cache
	// plannerOpts mirror the master's shuffle-planner tuning so Explain
	// describes the plan the cluster would actually run.
	plannerOpts plan.Options
	smart       []*core.SmartIndex
	history     *History
	metrics     *metrics.Registry
	slowlog     *telemetry.Slowlog
	events      *events.Recorder
	traces      *trace.Store
	// latWall/latSim are the fleet-level query latency histograms exported
	// as feisu_query_wall_seconds / feisu_query_sim_seconds.
	latWall *metrics.Histogram
	latSim  *metrics.Histogram

	chaosPlane *chaos.Plane
	chaosCtl   *chaos.Controller
	// beatInterval is the background heartbeat cadence (0 when heartbeats
	// are manual); chaos restarts use it to resume a revived leaf's loop.
	beatInterval time.Duration

	convMu sync.Mutex
	convs  map[string]*ingest.Converter

	sweepStop chan struct{}
}

// New builds and starts a System.
func New(cfg Config) (*System, error) {
	if cfg.Leaves <= 0 {
		cfg.Leaves = 4
	}
	if cfg.Stems == 0 && cfg.Leaves >= 4 {
		cfg.Stems = cfg.Leaves / 4
	}
	if cfg.Stems < 0 { // explicit "no stems": master drives leaves directly
		cfg.Stems = 0
	}
	if cfg.Racks <= 0 {
		cfg.Racks = 4
	}
	model := cfg.CostModel
	if model == nil {
		model = sim.DefaultCostModel()
	}

	topo := transport.NewTopology()
	mode := cfg.Transport
	if mode == "" {
		mode = os.Getenv("FEISU_TRANSPORT")
	}
	var fabric transport.Network
	var tcpNet *transport.TCP
	switch mode {
	case "", "sim":
		fabric = transport.NewFabric(topo, transport.Options{Model: model})
	case "tcp":
		var err error
		tcpNet, err = transport.NewTCP(topo, transport.Options{Model: model}, transport.TCPOptions{})
		if err != nil {
			return nil, fmt.Errorf("feisu: tcp transport: %w", err)
		}
		fabric = tcpNet
	default:
		return nil, fmt.Errorf("feisu: unknown transport %q (want \"sim\" or \"tcp\")", mode)
	}

	var plane *chaos.Plane
	if cfg.Chaos != nil {
		plane = chaos.New(*cfg.Chaos)
		if cfg.RetryBackoff == 0 {
			cfg.RetryBackoff = time.Millisecond
		}
	}
	// wrapStore threads every store through the chaos plane so injected
	// read faults hit all tiers (local FS, HDFS, Fatman) uniformly.
	wrapStore := func(s storage.Store) storage.Store {
		if plane == nil {
			return s
		}
		return plane.WrapStore(s)
	}

	hdfs := storage.NewHDFS("hdfs", model)
	ffs := storage.NewFatman("ffs", model)
	router := storage.NewRouter(wrapStore(storage.NewMemFS("", model)))
	if cfg.StorageMaxConcurrentReads > 0 {
		// The paper's resource agreement: Feisu must not over-schedule
		// reads against a business-critical storage system.
		agreement := storage.Agreement{MaxConcurrentReads: cfg.StorageMaxConcurrentReads}
		router.Register(wrapStore(storage.NewThrottled(hdfs, agreement)))
		router.Register(wrapStore(storage.NewThrottled(ffs, agreement)))
	} else {
		router.Register(wrapStore(hdfs))
		router.Register(wrapStore(ffs))
	}

	sys := &System{
		cfg: cfg, model: model, fabric: fabric, tcpNet: tcpNet, router: router, hdfs: hdfs, ffs: ffs,
		metrics: metrics.NewRegistry(),
	}
	sys.latWall = sys.metrics.HistogramWith("feisu_query_wall_seconds")
	sys.latSim = sys.metrics.HistogramWith("feisu_query_sim_seconds")
	if cfg.SlowQueryWallThreshold > 0 || cfg.SlowQuerySimThreshold > 0 {
		sys.slowlog = telemetry.NewSlowlog(cfg.SlowlogCapacity, cfg.SlowQueryWallThreshold, cfg.SlowQuerySimThreshold)
	}
	if cfg.EventLogCapacity >= 0 {
		sys.events = events.New(cfg.EventLogCapacity)
		rec := sys.events
		sys.metrics.RegisterGaugeFunc("feisu_events_recorded_total", func() float64 { return float64(rec.Total()) })
		sys.metrics.RegisterGaugeFunc("feisu_events_dropped_total", func() float64 { return float64(rec.Dropped()) })
	}
	if cfg.TraceStoreCapacity >= 0 {
		sys.traces = trace.NewStore(cfg.TraceStoreCapacity)
	}

	leafName := func(i int) string { return fmt.Sprintf("leaf%d", i) }
	for i := 0; i < cfg.Leaves; i++ {
		rack := fmt.Sprintf("rack%d", i/cfg.Racks)
		topo.Place(leafName(i), rack, "dc1")
		hdfs.AddNode(leafName(i), rack)
		ffs.AddNode(leafName(i), rack)
	}
	topo.Place("master", "rack-master", "dc1")

	var authority *auth.Authority
	var quotas *auth.Quotas
	if cfg.EnableAuth {
		authority = auth.NewAuthority()
		quotas = auth.NewQuotas(cfg.MaxConcurrentQueriesPerUser, 0)
	}
	sys.auth = authority

	if cfg.ResultCacheBytes > 0 {
		ttl := cfg.ResultCacheTTL
		if ttl == 0 {
			ttl = 5 * time.Minute
		} else if ttl < 0 {
			ttl = 0 // explicit "no expiry"
		}
		sys.rescache = resultcache.New(resultcache.Config{
			CapacityBytes: cfg.ResultCacheBytes,
			TTL:           ttl,
			TenantBytes:   cfg.ResultCacheTenantBytes,
			Events:        sys.events,
		})
		rc := sys.rescache
		sys.metrics.RegisterGaugeFunc("feisu_resultcache_hits_total", func() float64 { return float64(rc.Snapshot().Hits) })
		sys.metrics.RegisterGaugeFunc("feisu_resultcache_subsumed_hits_total", func() float64 { return float64(rc.Snapshot().SubsumedHits) })
		sys.metrics.RegisterGaugeFunc("feisu_resultcache_misses_total", func() float64 { return float64(rc.Snapshot().Misses) })
		sys.metrics.RegisterGaugeFunc("feisu_resultcache_evictions_total", func() float64 { return float64(rc.Snapshot().Evictions) })
		sys.metrics.RegisterGaugeFunc("feisu_resultcache_invalidations_total", func() float64 { return float64(rc.Snapshot().Invalidations) })
		sys.metrics.RegisterGaugeFunc("feisu_resultcache_bytes", func() float64 { return float64(rc.Snapshot().Bytes) })
		sys.metrics.RegisterGaugeFunc("feisu_resultcache_entries", func() float64 { return float64(rc.Snapshot().Entries) })
		sys.metrics.RegisterGaugeFunc("feisu_resultcache_hit_ratio", rc.HitRatio)
		// Shadow ratio: the hit rate a 2× budget would reach (ghost LRU).
		sys.metrics.RegisterGaugeFunc("feisu_resultcache_shadow_hit_ratio", rc.ShadowHitRatio)
		sys.metrics.GaugeWith("feisu_resultcache_capacity_bytes").Set(float64(cfg.ResultCacheBytes))
	}

	mcfg := cluster.MasterConfig{
		Name:               "master",
		Fabric:             fabric,
		Router:             router,
		Model:              model,
		Authority:          authority,
		Quotas:             quotas,
		MaxQueryBytes:      1 << 20,
		DefaultTaskTimeout: cfg.TaskTimeout,
		RetryBackoff:       cfg.RetryBackoff,
		HedgeDelay:         cfg.HedgeDelay,
		ScanWorkers:        cfg.ScanWorkers,
		LivenessWindow:     time.Minute,
		LocalityOff:        cfg.LocalityOff,
		Metrics:            sys.metrics,

		MaxConcurrentQueries: cfg.MaxConcurrentQueries,
		MaxQueueDepth:        cfg.MaxQueueDepth,
		QueueWaitDeadline:    cfg.QueueWaitDeadline,
		LeafSlots:            cfg.LeafSlots,

		ResultCache:   sys.rescache,
		CacheAffinity: cfg.CacheAffinity,
		Events:        sys.events,

		Planner: plan.Options{
			BroadcastThreshold: cfg.BroadcastThreshold,
			ShufflePartitions:  cfg.ShufflePartitions,
			GroupShuffleRows:   cfg.GroupShuffleRows,
			MemoryGrantBytes:   cfg.ShuffleMemoryBytes,
		},
	}
	if cfg.PersonalizeThreshold > 0 {
		sys.history = &History{
			sys:       sys,
			threshold: cfg.PersonalizeThreshold,
			counts:    make(map[string]map[string]int),
			pinned:    make(map[string]bool),
		}
		mcfg.Observer = sys.history
	}
	sys.plannerOpts = mcfg.Planner
	sys.master = cluster.NewMaster(mcfg)
	sys.metrics.RegisterCounterWith("feisu_queries_total", &sys.master.Queries)
	sys.metrics.RegisterCounterWith("feisu_query_errors_total", &sys.master.QueryErrs)
	sys.metrics.RegisterCounterWith("feisu_task_retries_total", &sys.master.Retries)
	sys.metrics.RegisterCounterWith("feisu_hedges_fired_total", &sys.master.HedgesFired)
	sys.metrics.RegisterCounterWith("feisu_hedges_won_total", &sys.master.HedgesWon)
	sys.metrics.RegisterCounterWith("feisu_partial_results_total", &sys.master.Partials)

	for i := 0; i < cfg.Leaves; i++ {
		sr := exec.NewStoreReader(router)
		sys.readers = append(sys.readers, sr)
		var reader exec.PartitionReader = sr
		leafLabel := metrics.L("leaf", leafName(i))
		if cfg.CacheBytes > 0 {
			cr := cache.NewReader(reader, cache.Options{
				CapacityBytes: cfg.CacheBytes,
				Prefixes:      cfg.CachePrefixes,
				Model:         model,
			})
			cr.RegisterMetrics(sys.metrics, leafName(i)+".cache.")
			sys.metrics.RegisterCounterWith("feisu_cache_hits_total", &cr.Hits, leafLabel)
			sys.metrics.RegisterCounterWith("feisu_cache_misses_total", &cr.Misses, leafLabel)
			sys.metrics.RegisterCounterWith("feisu_cache_evictions_total", &cr.Evictions, leafLabel)
			sys.metrics.RegisterGaugeFunc("feisu_cache_bytes", func() float64 { return float64(cr.Bytes()) }, leafLabel)
			sys.metrics.GaugeWith("feisu_cache_capacity_bytes", leafLabel).Set(float64(cfg.CacheBytes))
			sys.metrics.RegisterGaugeFunc("feisu_cache_hit_ratio", func() float64 {
				h, m := cr.Hits.Value(), cr.Misses.Value()
				if h+m == 0 {
					return 0
				}
				return float64(h) / float64(h+m)
			}, leafLabel)
			sys.caches = append(sys.caches, cr)
			reader = cr
		}
		idx := sys.newIndex()
		if si, ok := idx.(*core.SmartIndex); ok {
			si.RegisterMetrics(sys.metrics, leafName(i)+".index.")
			sys.metrics.RegisterGaugeFunc("feisu_index_bytes", func() float64 {
				_, bytes, _ := si.IndexLoad()
				return float64(bytes)
			}, leafLabel)
			sys.metrics.RegisterGaugeFunc("feisu_index_entries", func() float64 {
				entries, _, _ := si.IndexLoad()
				return float64(entries)
			}, leafLabel)
			if cfg.IndexMemoryBytes > 0 {
				sys.metrics.GaugeWith("feisu_index_budget_bytes", leafLabel).Set(float64(cfg.IndexMemoryBytes))
			}
			if cfg.IndexHeavyHitters > 0 {
				sys.metrics.RegisterGaugeFunc("feisu_smartindex_hot_entries", func() float64 {
					entries, _, _ := si.HeatLoad()
					return float64(entries)
				}, leafLabel)
				sys.metrics.RegisterGaugeFunc("feisu_smartindex_hot_bytes", func() float64 {
					_, bytes, _ := si.HeatLoad()
					return float64(bytes)
				}, leafLabel)
				sys.metrics.RegisterGaugeFunc("feisu_smartindex_hot_budget_bytes", func() float64 {
					_, _, budget := si.HeatLoad()
					return float64(budget)
				}, leafLabel)
			}
		}
		leaf := &cluster.LeafServer{
			Name:           leafName(i),
			Fabric:         fabric,
			Reader:         reader,
			Index:          idx,
			Router:         router,
			Model:          model,
			SpillThreshold: cfg.SpillThreshold,
			SpillPrefix:    "/hdfs/feisu-tmp",
			Events:         sys.events,
		}
		leaf.Register()
		leaf.RegisterMetrics(sys.metrics, leafName(i)+".")
		sys.metrics.RegisterCounterWith("feisu_leaf_tasks_total", &leaf.Tasks, leafLabel)
		sys.metrics.RegisterCounterWith("feisu_leaf_spills_total", &leaf.Spills, leafLabel)
		sys.leaves = append(sys.leaves, leaf)
	}
	for i := 0; i < cfg.Stems; i++ {
		stem := &cluster.StemServer{
			Name:   fmt.Sprintf("stem%d", i),
			Fabric: fabric,
			Router: router,
			Model:  model,
			Events: sys.events,
		}
		stem.Register()
		sys.stems = append(sys.stems, stem)
	}
	if err := sys.Heartbeat(); err != nil {
		return nil, err
	}
	// Keep the cluster manager's liveness view fresh without caller
	// involvement; long-running query streams would otherwise outlive the
	// liveness window and see "no available leaf server".
	if cfg.HeartbeatInterval >= 0 {
		interval := cfg.HeartbeatInterval
		if interval == 0 {
			interval = 10 * time.Second
		}
		sys.StartHeartbeats(interval)
	}
	if plane != nil {
		if rec := sys.events; rec != nil {
			// Mirror every fired fault into the flight recorder so incident
			// timelines interleave faults with the decisions they caused. The
			// chaos plane's own per-site sequence is deterministic; the bridge
			// keeps each chaos site distinct ("chaos/<site>").
			plane.SetSink(func(e chaos.Event) {
				rec.Emit("chaos/"+e.Site, events.Kind(events.ChaosPrefix+e.Kind), "", -1, e.Detail)
			})
		}
		// Arm the interceptor only after boot: the initial heartbeat round
		// that registers every worker must not itself be dropped, or the
		// deployment would start with phantom-dead leaves.
		fabric.SetInterceptor(plane)
		sys.chaosPlane = plane
		plane.RegisterMetrics(sys.metrics)
		targets := make([]chaos.Target, len(sys.leaves))
		for i, l := range sys.leaves {
			targets[i] = &leafTarget{sys: sys, leaf: l}
		}
		peers := []string{"master"}
		for _, st := range sys.stems {
			peers = append(peers, st.Name)
		}
		sys.chaosCtl = plane.NewController(targets, peers)
		sys.chaosCtl.Start() // no-op unless Lifecycle.TickInterval > 0
	}
	return sys, nil
}

// leafTarget adapts a leaf server to the chaos controller: a kill takes the
// node off the fabric and halts its heartbeats, a restart re-registers it
// and announces liveness immediately.
type leafTarget struct {
	sys  *System
	leaf *cluster.LeafServer
}

func (t *leafTarget) ID() string { return t.leaf.Name }

func (t *leafTarget) Kill() {
	t.sys.fabric.SetDown(t.leaf.Name, true)
	t.leaf.Stop()
}

func (t *leafTarget) Restart() {
	t.sys.fabric.SetDown(t.leaf.Name, false)
	_ = t.leaf.HeartbeatOnce(context.Background(), "master")
	if t.sys.beatInterval > 0 {
		t.leaf.Start("master", t.sys.beatInterval)
	}
}

func (t *leafTarget) SetStall(d time.Duration) { t.leaf.SetStall(d) }

// newIndex builds one leaf's index per the config.
func (s *System) newIndex() exec.IndexSource {
	switch s.cfg.Index {
	case IndexNone:
		return nil
	case IndexBTree:
		return newBTreeIndex(s.model)
	default:
		si := core.New(core.Options{
			MemoryBudget:      s.cfg.IndexMemoryBytes,
			TTL:               s.cfg.IndexTTL,
			Compress:          s.cfg.IndexCompress,
			DisableDerivation: s.cfg.IndexNoDerivation,
			HeavyHitters:      s.cfg.IndexHeavyHitters,
			HotShare:          s.cfg.IndexHotShare,
			Model:             s.model,
		})
		s.smart = append(s.smart, si)
		return si
	}
}

// Heartbeat delivers one heartbeat from every worker; New calls it once,
// and long-running deployments call StartHeartbeats instead.
func (s *System) Heartbeat() error {
	ctx := context.Background()
	for _, l := range s.leaves {
		if err := l.HeartbeatOnce(ctx, "master"); err != nil {
			return err
		}
	}
	for _, st := range s.stems {
		if err := st.HeartbeatOnce(ctx, "master"); err != nil {
			return err
		}
	}
	return nil
}

// StartHeartbeats runs periodic heartbeats until Close, and sweeps expired
// SmartIndex entries on the same cadence (the TTL retirement of §IV-C2).
func (s *System) StartHeartbeats(interval time.Duration) {
	s.beatInterval = interval
	for _, l := range s.leaves {
		l.Start("master", interval)
	}
	for _, st := range s.stems {
		st.Start("master", interval)
	}
	if len(s.smart) > 0 && s.sweepStop == nil {
		s.sweepStop = make(chan struct{})
		go func(stop <-chan struct{}) {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					for _, si := range s.smart {
						si.Sweep()
					}
				}
			}
		}(s.sweepStop)
	}
}

// Close stops background loops.
func (s *System) Close() {
	if s.chaosCtl != nil {
		s.chaosCtl.Stop() // heals active faults so shutdown sees every node
	}
	for _, l := range s.leaves {
		l.Stop()
	}
	for _, st := range s.stems {
		st.Stop()
	}
	if s.sweepStop != nil {
		close(s.sweepStop)
		s.sweepStop = nil
	}
	if s.tcpNet != nil {
		s.tcpNet.Close()
	}
}

// Router exposes the common storage layer (for loading data and advanced
// setups).
func (s *System) Router() *storage.Router { return s.router }

// Authority returns the identity provider when auth is enabled, else nil.
func (s *System) Authority() *auth.Authority { return s.auth }

// Master exposes the master for advanced control (HA, scheduler tuning).
func (s *System) Master() *cluster.Master { return s.master }

// WireTransport returns the TCP fabric when the system runs on real sockets
// (Config.Transport "tcp"), else nil — for wire-level telemetry (listener
// address, per-class encoded byte counters).
func (s *System) WireTransport() *transport.TCP { return s.tcpNet }

// Metrics exposes the deployment's central registry: master query counters
// plus per-leaf task, SmartIndex and SSD-cache counters, under names like
// "master.queries", "leaf0.index.hits", "leaf0.cache.misses".
func (s *System) Metrics() *metrics.Registry { return s.metrics }

// RegisterTable installs a catalog entry directly (NewLoader does this for
// generated data).
func (s *System) RegisterTable(ctx context.Context, meta *plan.TableMeta) error {
	return s.master.RegisterTable(ctx, meta)
}

// Query runs one SQL statement.
func (s *System) Query(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	res, _, err := s.QueryStats(ctx, sql, opts...)
	return res, err
}

// QueryStats runs one SQL statement and also returns execution statistics.
func (s *System) QueryStats(ctx context.Context, sql string, opts ...QueryOption) (*Result, *QueryStats, error) {
	var o cluster.QueryOptions
	for _, opt := range opts {
		opt(&o)
	}
	if s.slowlog.Enabled() {
		// Trace every query so slow entries carry a per-stage breakdown;
		// the spans are cheap (in-process pointers, no serialization).
		o.Trace = true
	}
	res, stats, err := s.master.Submit(ctx, sql, o)
	if stats != nil {
		s.latWall.Observe(stats.WallTime.Seconds())
		s.latSim.Observe(stats.SimTime.Seconds())
		if stats.Trace != nil {
			s.traces.Add(trace.StoredTrace{
				QueryID:     stats.QueryID,
				Fingerprint: stats.Fingerprint,
				SQL:         sql,
				When:        time.Now(),
				Wall:        stats.WallTime,
				Sim:         stats.SimTime,
				Root:        stats.Trace,
			})
		}
		if s.slowlog.Slow(stats.WallTime, stats.SimTime) {
			s.slowlog.Record(telemetry.SlowQuery{
				When:         time.Now(),
				SQL:          sql,
				Fingerprint:  stats.Fingerprint,
				Wall:         stats.WallTime,
				Sim:          stats.SimTime,
				Tasks:        stats.Tasks,
				Reused:       stats.ReusedTasks,
				Backups:      stats.BackupTasks,
				Failed:       stats.TasksFailed,
				Stages:       telemetry.StagesFromTrace(stats.Trace),
				Counters:     telemetry.CountersFromTrace(stats.Trace),
				CriticalPath: trace.AnalyzeCriticalPath(stats.Trace).Summary(),
			})
		}
	}
	return res, stats, err
}

// ClusterHealth returns the master's aggregate fleet view: per-node
// alive/degraded/dead state with the load gauges carried by heartbeats,
// plus the admission-queue state when admission control is on.
// Render it with ClusterHealth().Render() (the \top dashboard).
func (s *System) ClusterHealth() cluster.ClusterHealth {
	return s.master.Health()
}

// Slowlog returns the slow-query ring buffer, or nil when no slow-query
// threshold is configured.
func (s *System) Slowlog() *telemetry.Slowlog { return s.slowlog }

// Events returns the cluster flight recorder, or nil when
// Config.EventLogCapacity is negative. Read the journal with Events().Events()
// (arrival order) or Events().Canonical() (deterministic (site, seq) order).
func (s *System) Events() *events.Recorder { return s.events }

// ActiveQueries snapshots the master's in-flight queries (oldest first):
// per-query task counts, merged rows and queue state. The live view behind
// the REPL's `\watch` and the exporter's /debug/queries.
func (s *System) ActiveQueries() []cluster.QueryProgress {
	return s.master.ActiveQueries()
}

// Traces returns the ring of retained finished query traces, or nil when
// Config.TraceStoreCapacity is negative. Only traced queries (EXPLAIN
// ANALYZE, WithTrace, or any query when the slowlog is enabled) are retained.
func (s *System) Traces() *trace.Store { return s.traces }

// Chaos returns the fault-injection plane, or nil when Config.Chaos was not
// set. Use it to read the fired-fault schedule (Events) and counters.
func (s *System) Chaos() *chaos.Plane { return s.chaosPlane }

// ChaosController returns the lifecycle chaos controller, or nil without
// chaos. Deterministic tests drive it via ChaosTick instead.
func (s *System) ChaosController() *chaos.Controller { return s.chaosCtl }

// ChaosTick advances lifecycle chaos one deterministic step (kill/restart/
// straggle/partition decisions). No-op without chaos.
func (s *System) ChaosTick() {
	if s.chaosCtl != nil {
		s.chaosCtl.Tick()
	}
}

// StartTelemetry starts the HTTP exporter on addr (host:port; port 0 picks
// an ephemeral port — read it back via Server.Addr). It serves /metrics in
// Prometheus text format, /healthz, /debug/slowlog, /debug/queries (live
// query progress), /debug/trace/{id} (Jaeger-compatible trace export),
// /debug/events (the flight recorder journal), and pprof when enablePprof
// is set. Callers own the returned server and should Close it.
func (s *System) StartTelemetry(addr string, enablePprof bool) (*telemetry.Server, error) {
	return telemetry.Start(addr, telemetry.Options{
		Registry:      s.metrics,
		Health:        s.master.Health,
		Slowlog:       s.slowlog,
		ActiveQueries: s.ActiveQueries,
		Traces:        s.traces,
		Events:        s.events,
		EnablePprof:   enablePprof,
	})
}

// IndexStats aggregates SmartIndex counters across leaves (zero stats when
// SmartIndex is not in use).
func (s *System) IndexStats() core.Stats {
	var total core.Stats
	for _, si := range s.smart {
		st := si.Stats()
		total.Hits += st.Hits
		total.DerivedHits += st.DerivedHits
		total.Misses += st.Misses
		total.Stored += st.Stored
		total.EvictedLRU += st.EvictedLRU
		total.EvictedTTL += st.EvictedTTL
		total.Bytes += st.Bytes
		total.Entries += st.Entries
		total.HotEntries += st.HotEntries
		total.HotBytes += st.HotBytes
		total.HotBudget += st.HotBudget
		total.Promoted += st.Promoted
		total.Demoted += st.Demoted
		total.EvictedLRUHot += st.EvictedLRUHot
		total.EvictedLRUCold += st.EvictedLRUCold
		total.StripedHits += st.StripedHits
	}
	return total
}

// ResetIndexCounters zeroes SmartIndex hit/miss counters (benchmark phases).
func (s *System) ResetIndexCounters() {
	for _, si := range s.smart {
		si.ResetCounters()
	}
}

// ResultCache exposes the master's semantic result cache, or nil when
// Config.ResultCacheBytes is 0. Use its Snapshot for hit/subsumption
// counters and the shadow-budget gauge.
func (s *System) ResultCache() *resultcache.Cache { return s.rescache }

// InvalidatePath drops every cached artifact derived from the partition
// file at path after an out-of-band rewrite: the master's and every leaf's
// cached footers, each leaf's SSD column chunks, and — when table is
// non-empty — the semantic result-cache entries reading that table. The
// ingest pipeline calls this automatically; callers rewriting partition
// files through Router() directly should too.
func (s *System) InvalidatePath(table, path string) {
	s.master.InvalidatePartition(table, path)
	for _, sr := range s.readers {
		sr.InvalidateMeta(path)
	}
	for _, c := range s.caches {
		c.InvalidatePath(path)
	}
}

// CacheMissRatio averages the SSD cache miss ratio across leaves; 0 when
// the cache is off or untouched.
func (s *System) CacheMissRatio() float64 {
	if len(s.caches) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range s.caches {
		sum += c.MissRatio()
	}
	return sum / float64(len(s.caches))
}

// QueryOption tunes one query.
type QueryOption func(*cluster.QueryOptions)

// WithToken authenticates the query (required when auth is enabled).
func WithToken(token string) QueryOption {
	return func(o *cluster.QueryOptions) { o.Token = token }
}

// WithTimeLimit bounds execution time; combine with WithMinProcessedRatio
// to accept partial results (paper §III-B).
func WithTimeLimit(d time.Duration) QueryOption {
	return func(o *cluster.QueryOptions) { o.TimeLimit = d }
}

// WithMinProcessedRatio accepts a result once this task fraction finishes.
func WithMinProcessedRatio(r float64) QueryOption {
	return func(o *cluster.QueryOptions) { o.MinProcessedRatio = r }
}

// WithTaskTimeout sets the per-task straggler threshold.
func WithTaskTimeout(d time.Duration) QueryOption {
	return func(o *cluster.QueryOptions) { o.TaskTimeout = d }
}

// WithoutResultReuse disables identical-task result sharing (ablation).
func WithoutResultReuse() QueryOption {
	return func(o *cluster.QueryOptions) { o.DisableReuse = true }
}

// WithoutResultCache bypasses the semantic result cache for this query —
// no lookup, no store. For ablations and freshness-sensitive reads.
func WithoutResultCache() QueryOption {
	return func(o *cluster.QueryOptions) { o.DisableResultCache = true }
}

// WithTrace records a span tree for the query — master, stem, leaf and scan
// stages with per-stage simulated/wall times and index/cache counters —
// into QueryStats.Trace. Equivalent to prefixing the SQL with
// "EXPLAIN ANALYZE", but the result set stays the query's own rows.
func WithTrace() QueryOption {
	return func(o *cluster.QueryOptions) { o.Trace = true }
}

// WithPartialResults degrades instead of failing: tasks that exhaust their
// retries are dropped from the result, reported per leaf in
// QueryStats.TaskErrors, and Result.ProcessedRatio reflects the loss. At
// least one task must still succeed.
func WithPartialResults() QueryOption {
	return func(o *cluster.QueryOptions) { o.PartialResults = true }
}

// WithHedging overrides the hedge delay for this query: a speculative
// duplicate of any task placed on a straggler-flagged leaf fires after d,
// first result wins. Negative d disables hedging for the query.
func WithHedging(d time.Duration) QueryOption {
	return func(o *cluster.QueryOptions) { o.HedgeDelay = d }
}

// WithPriority sets the query's admission class (interactive by default).
// Batch queries yield execution slots to interactive traffic under load.
func WithPriority(p Priority) QueryOption {
	return func(o *cluster.QueryOptions) { o.Priority = p }
}

// WithQueueDeadline bounds this query's admission-queue wait; past it the
// query is shed with an *OverloadedError (errors.Is(err, ErrOverloaded))
// carrying a retry-after hint. Overrides Config.QueueWaitDeadline.
func WithQueueDeadline(d time.Duration) QueryOption {
	return func(o *cluster.QueryOptions) { o.QueueDeadline = d }
}

// Explain plans the query without executing it and returns a human-readable
// description: the pushed-down filter in conjunctive form with its
// indexable atoms, the pruned column set, the broadcast or repartitioned
// joins, and the sub-plan dissection.
func (s *System) Explain(sql string) (string, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return "", err
	}
	p, err := plan.PlanWith(stmt, s.master.Jobs, s.plannerOpts)
	if err != nil {
		return "", err
	}
	return p.Describe(), nil
}
