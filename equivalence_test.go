package feisu

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// TestClusterMatchesSingleNode is the distribution-correctness invariant:
// for a broad set of generated queries, running through the full
// master/stem/leaf pipeline (with SmartIndex, result sharing, partial
// aggregation and merging) must produce exactly the rows of a direct
// single-process execution over the same partitions.
func TestClusterMatchesSingleNode(t *testing.T) {
	sys, err := New(Config{Leaves: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	spec := workload.T1Spec()
	spec.Partitions = 4
	spec.RowsPerPart = 512
	ctx := context.Background()
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}
	cat := plan.MapCatalog{"T1": meta}
	reader := exec.NewStoreReader(sys.Router())

	queries := generateEquivalenceQueries(60, 1234)
	for _, q := range queries {
		clusterRes, err := sys.Query(ctx, q)
		if err != nil {
			t.Fatalf("cluster %q: %v", q, err)
		}
		localRes := runLocal(t, cat, reader, q)
		if got, want := renderRows(clusterRes), renderRows(localRes); got != want {
			t.Fatalf("divergence on %q:\ncluster: %s\nlocal:   %s", q, got, want)
		}
	}
}

// runLocal executes the query in-process, no cluster machinery.
func runLocal(t *testing.T, cat plan.Catalog, reader *exec.StoreReader, q string) *Result {
	t.Helper()
	stmt, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	p, err := plan.Plan(stmt, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	ctx := context.Background()
	var merged *exec.TaskResult
	for _, task := range p.Tasks() {
		tr, err := exec.RunTask(ctx, task, reader, nil)
		if err != nil {
			t.Fatalf("run %q: %v", q, err)
		}
		merged = exec.MergeResults(p, merged, tr)
	}
	res, err := exec.Finalize(p, merged)
	if err != nil {
		t.Fatalf("finalize %q: %v", q, err)
	}
	return res
}

// renderRows canonicalizes a result for comparison. Unordered select-mode
// results are sorted; ordered and aggregated results keep engine order.
func renderRows(res *Result) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		lines[i] = strings.Join(cells, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, " ; ")
}

// generateEquivalenceQueries emits a broad deterministic mix: aggregations,
// group-bys, projections, ORs, negations, CONTAINS, within-aggregates.
func generateEquivalenceQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	atoms := []string{
		"clicks > 5", "clicks <= 3", "pos = 4", "NOT (pos > 7)",
		"dwell < 120.5", "score >= 0.25", "uid < 40000",
		"query CONTAINS 'a'", "NOT (query CONTAINS 'spam')",
		"region = 'bj'", "spam = FALSE",
	}
	aggs := []string{"COUNT(*)", "SUM(clicks)", "MIN(pos)", "MAX(dwell)", "AVG(score)"}
	groups := []string{"region", "query", "pos"}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		where := ""
		switch rng.Intn(4) {
		case 0:
		case 1:
			where = " WHERE " + atoms[rng.Intn(len(atoms))]
		case 2:
			where = fmt.Sprintf(" WHERE %s AND %s", atoms[rng.Intn(len(atoms))], atoms[rng.Intn(len(atoms))])
		default:
			where = fmt.Sprintf(" WHERE %s OR %s", atoms[rng.Intn(len(atoms))], atoms[rng.Intn(len(atoms))])
		}
		switch rng.Intn(4) {
		case 0: // global aggregation
			out = append(out, "SELECT "+aggs[rng.Intn(len(aggs))]+" FROM T1"+where)
		case 1: // group by
			g := groups[rng.Intn(len(groups))]
			out = append(out, fmt.Sprintf("SELECT %s, %s FROM T1%s GROUP BY %s",
				g, aggs[rng.Intn(len(aggs))], where, g))
		case 2: // ordered projection
			out = append(out, "SELECT url, clicks FROM T1"+where+" ORDER BY url, clicks LIMIT 20")
		default: // arithmetic over aggregates
			out = append(out, "SELECT SUM(clicks) + COUNT(*) FROM T1"+where)
		}
	}
	return out
}

func TestGeneratedQueriesCanonicalFixedPoint(t *testing.T) {
	// SmartIndex keys depend on canonical rendering being parse-stable.
	for _, q := range generateEquivalenceQueries(200, 5) {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		s1 := stmt.String()
		stmt2, err := sqlparser.Parse(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		if s2 := stmt2.String(); s2 != s1 {
			t.Fatalf("not a fixed point:\n%q\n%q", s1, s2)
		}
	}
}
