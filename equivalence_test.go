package feisu

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// TestClusterMatchesSingleNode is the distribution-correctness invariant:
// for a broad set of generated queries, running through the full
// master/stem/leaf pipeline (with SmartIndex, result sharing, partial
// aggregation and merging) must produce exactly the rows of a direct
// single-process execution over the same partitions.
func TestClusterMatchesSingleNode(t *testing.T) {
	sys, err := New(Config{Leaves: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	spec := workload.T1Spec()
	spec.Partitions = 4
	spec.RowsPerPart = 512
	ctx := context.Background()
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}
	cat := plan.MapCatalog{"T1": meta}
	reader := exec.NewStoreReader(sys.Router())

	queries := generateEquivalenceQueries(60, 1234)
	for _, q := range queries {
		clusterRes, err := sys.Query(ctx, q)
		if err != nil {
			t.Fatalf("cluster %q: %v", q, err)
		}
		localRes := runLocal(t, cat, reader, q)
		if got, want := renderRows(clusterRes), renderRows(localRes); got != want {
			t.Fatalf("divergence on %q:\ncluster: %s\nlocal:   %s", q, got, want)
		}
	}
}

// runLocal executes the query in-process, no cluster machinery.
func runLocal(t *testing.T, cat plan.Catalog, reader *exec.StoreReader, q string) *Result {
	t.Helper()
	stmt, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	p, err := plan.Plan(stmt, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	ctx := context.Background()
	var merged *exec.TaskResult
	for _, task := range p.Tasks() {
		tr, err := exec.RunTask(ctx, task, reader, nil)
		if err != nil {
			t.Fatalf("run %q: %v", q, err)
		}
		merged = exec.MergeResults(p, merged, tr)
	}
	res, err := exec.Finalize(p, merged)
	if err != nil {
		t.Fatalf("finalize %q: %v", q, err)
	}
	return res
}

// renderRows canonicalizes a result for comparison. Unordered select-mode
// results are sorted; ordered and aggregated results keep engine order.
func renderRows(res *Result) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		lines[i] = strings.Join(cells, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, " ; ")
}

// generateEquivalenceQueries emits a broad deterministic mix: aggregations,
// group-bys, projections, ORs, negations, CONTAINS, within-aggregates.
func generateEquivalenceQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	atoms := []string{
		"clicks > 5", "clicks <= 3", "pos = 4", "NOT (pos > 7)",
		"dwell < 120.5", "score >= 0.25", "uid < 40000",
		"query CONTAINS 'a'", "NOT (query CONTAINS 'spam')",
		"region = 'bj'", "spam = FALSE",
	}
	aggs := []string{"COUNT(*)", "SUM(clicks)", "MIN(pos)", "MAX(dwell)", "AVG(score)"}
	groups := []string{"region", "query", "pos"}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		where := ""
		switch rng.Intn(4) {
		case 0:
		case 1:
			where = " WHERE " + atoms[rng.Intn(len(atoms))]
		case 2:
			where = fmt.Sprintf(" WHERE %s AND %s", atoms[rng.Intn(len(atoms))], atoms[rng.Intn(len(atoms))])
		default:
			where = fmt.Sprintf(" WHERE %s OR %s", atoms[rng.Intn(len(atoms))], atoms[rng.Intn(len(atoms))])
		}
		switch rng.Intn(4) {
		case 0: // global aggregation
			out = append(out, "SELECT "+aggs[rng.Intn(len(aggs))]+" FROM T1"+where)
		case 1: // group by
			g := groups[rng.Intn(len(groups))]
			out = append(out, fmt.Sprintf("SELECT %s, %s FROM T1%s GROUP BY %s",
				g, aggs[rng.Intn(len(aggs))], where, g))
		case 2: // ordered projection
			out = append(out, "SELECT url, clicks FROM T1"+where+" ORDER BY url, clicks LIMIT 20")
		default: // arithmetic over aggregates
			out = append(out, "SELECT SUM(clicks) + COUNT(*) FROM T1"+where)
		}
	}
	return out
}

// chaosStream runs the fixed query stream twice (warmup pass, then a
// recorded pass) on a fresh system and returns the recorded pass's rendered
// rows and per-query SmartIndex hit counts, plus the plane's fired-fault
// schedule. mut customizes the Config (nil chaos = the fault-free baseline).
func chaosStream(t *testing.T, queries []string, mut func(*Config)) (rows []string, hits []int64, events []chaos.Event) {
	t.Helper()
	cfg := Config{Leaves: 4, HeartbeatInterval: -1}
	if mut != nil {
		mut(&cfg)
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	spec := workload.T1Spec()
	spec.Partitions = 4
	spec.RowsPerPart = 256
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}

	rows = make([]string, len(queries))
	hits = make([]int64, len(queries))
	for pass := 0; pass < 2; pass++ {
		for i, q := range queries {
			sys.ChaosTick()
			res, stats, err := sys.QueryStats(ctx, q)
			if err != nil {
				seed := int64(0)
				if cfg.Chaos != nil {
					seed = cfg.Chaos.Seed
				}
				t.Fatalf("query %q (pass %d, chaos seed %d): %v", q, pass, seed, err)
			}
			if pass == 1 {
				rows[i] = renderRows(res)
				hits[i] = stats.Scan.IndexHits
			}
		}
	}
	if p := sys.Chaos(); p != nil {
		events = p.Events()
	}
	return rows, hits, events
}

// lifecycleEvents filters a schedule down to the controller's kill/restart/
// straggle/partition decisions, which depend only on the seed and the tick
// count — the replay-stable core of a system-level run.
func lifecycleEvents(events []chaos.Event) []chaos.Event {
	var out []chaos.Event
	for _, e := range events {
		if e.Site == "lifecycle" {
			out = append(out, e)
		}
	}
	return out
}

// TestEquivalenceUnderChaos is the correctness-under-failure invariant: a
// fixed workload run under seeded fault injection returns exactly the rows
// of the fault-free run. Delay-only chaos (no retries fire) must also
// preserve SmartIndex hit counts after warmup; full chaos — leaf kills,
// message drops, read errors, corrupting reads — must still produce
// identical rows, because every failed task is retried to completion.
func TestEquivalenceUnderChaos(t *testing.T) {
	queries := generateEquivalenceQueries(20, 777)

	// Hedging duplicates work nondeterministically (it is keyed off
	// wall-clock EWMAs), so the strict index-count comparison disables it
	// on both sides.
	baseRows, baseHits, _ := chaosStream(t, queries, func(c *Config) {
		c.HedgeDelay = -1
	})
	warm := int64(0)
	for _, h := range baseHits {
		warm += h
	}
	if warm == 0 {
		t.Fatal("baseline recorded no SmartIndex hits after warmup; the strict comparison is vacuous")
	}

	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Phase 1 — delay-only chaos: messages and reads are slowed but
			// never lost, so execution is identical modulo time. Rows and
			// per-query index hits must match the baseline exactly.
			rows, hits, _ := chaosStream(t, queries, func(c *Config) {
				c.HedgeDelay = -1
				c.Chaos = &chaos.Config{
					Seed: seed,
					Transport: chaos.TransportChaos{
						Delay:    0.3,
						MaxDelay: 500 * time.Microsecond,
					},
					Storage: chaos.StorageChaos{
						SlowRead:      0.2,
						SlowReadDelay: 200 * time.Microsecond,
					},
				}
			})
			for i := range queries {
				if rows[i] != baseRows[i] {
					t.Fatalf("delay-only chaos diverged on %q:\nchaos: %s\nclean: %s", queries[i], rows[i], baseRows[i])
				}
				if hits[i] != baseHits[i] {
					t.Fatalf("delay-only chaos changed index hits on %q: %d vs %d", queries[i], hits[i], baseHits[i])
				}
			}

			// Phase 2 — full chaos: kills, drops, duplicates, read errors
			// and corrupting reads (caught by block checksums). Retries and
			// hedges may reorder and re-execute work, so index counts are
			// off the table, but the rows must still be byte-identical.
			fullChaos := func(c *Config) {
				c.Chaos = chaos.Default(seed)
				c.Chaos.Lifecycle.TickInterval = 0 // ChaosTick per query
				// Pairwise partitions can outlive a query's retry budget
				// (they heal on a later tick); they get their own coverage
				// in the soak test, where partial results are acceptable.
				c.Chaos.Lifecycle.Partition = 0
				c.TaskTimeout = 250 * time.Millisecond
			}
			rows, _, events := chaosStream(t, queries, fullChaos)
			for i := range queries {
				if rows[i] != baseRows[i] {
					t.Fatalf("full chaos (seed %d) diverged on %q:\nchaos: %s\nclean: %s", seed, queries[i], rows[i], baseRows[i])
				}
			}
			if len(events) == 0 {
				t.Fatal("full chaos fired no faults; the equivalence run proved nothing")
			}

			// Replay: a second system on the same seed must reproduce the
			// identical lifecycle schedule (kills, restarts, straggles),
			// tick for tick.
			_, _, replay := chaosStream(t, queries, fullChaos)
			want, got := lifecycleEvents(events), lifecycleEvents(replay)
			if len(want) == 0 {
				t.Fatal("no lifecycle events fired; raise the kill rate so replay is exercised")
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("same seed %d replayed a different lifecycle schedule:\nfirst:  %v\nsecond: %v", seed, want, got)
			}
		})
	}
}

func TestGeneratedQueriesCanonicalFixedPoint(t *testing.T) {
	// SmartIndex keys depend on canonical rendering being parse-stable.
	for _, q := range generateEquivalenceQueries(200, 5) {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		s1 := stmt.String()
		stmt2, err := sqlparser.Parse(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		if s2 := stmt2.String(); s2 != s1 {
			t.Fatalf("not a fixed point:\n%q\n%q", s1, s2)
		}
	}
}
