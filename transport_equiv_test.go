package feisu

import (
	"context"
	"testing"

	"repro/internal/plan"
	"repro/internal/transport"
	"repro/internal/workload"
)

// newEquivSystem builds a System on the given transport with the shared T1
// workload loaded.
func newEquivSystem(t *testing.T, mode string) (*System, *plan.TableMeta) {
	t.Helper()
	sys, err := New(Config{Leaves: 4, Transport: mode})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	ctx := context.Background()
	spec := workload.T1Spec()
	spec.Partitions = 4
	spec.RowsPerPart = 256
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}
	return sys, meta
}

// TestTCPTransportMatchesSim runs the same generated query battery through
// two identical deployments — one on the deterministic sim fabric, one on
// real loopback sockets — and requires bit-identical results. This is the
// root-level transport-equivalence gate: the wire codec, framing, pooling and
// server-side dispatch must be invisible to query semantics.
func TestTCPTransportMatchesSim(t *testing.T) {
	simSys, _ := newEquivSystem(t, "sim")
	tcpSys, _ := newEquivSystem(t, "tcp")

	wire := tcpSys.WireTransport()
	if wire == nil {
		t.Fatal("tcp system did not expose its wire transport")
	}
	if simSys.WireTransport() != nil {
		t.Fatal("sim system claims a wire transport")
	}

	ctx := context.Background()
	queries := generateEquivalenceQueries(40, 99)
	for _, q := range queries {
		simRes, err := simSys.Query(ctx, q)
		if err != nil {
			t.Fatalf("sim %q: %v", q, err)
		}
		tcpRes, err := tcpSys.Query(ctx, q)
		if err != nil {
			t.Fatalf("tcp %q: %v", q, err)
		}
		if got, want := renderRows(tcpRes), renderRows(simRes); got != want {
			t.Fatalf("transport divergence on %q:\ntcp: %s\nsim: %s", q, got, want)
		}
	}

	// The equivalence is only meaningful if the TCP run actually crossed
	// sockets: encoded bytes must have moved on the data lanes.
	var moved int64
	for c := transport.Control; c <= transport.Shuffle; c++ {
		moved += wire.WireBytes[c].Value()
	}
	if moved == 0 {
		t.Fatal("tcp system reported zero wire bytes — calls did not use the socket path")
	}
}

// TestTCPTransportRejectsUnknownMode pins the config surface: a typo'd
// transport name must fail loudly at construction, not fall back to sim.
func TestTCPTransportRejectsUnknownMode(t *testing.T) {
	if _, err := New(Config{Leaves: 4, Transport: "quic"}); err == nil {
		t.Fatal("unknown transport mode accepted")
	}
}
