package feisu_test

// One benchmark per table/figure of the paper's evaluation (§VI), wrapping
// the same harness entry points that cmd/feisu-bench runs, plus
// micro-benchmarks of the hot query path. Regenerate the full reports with:
//
//	go run ./cmd/feisu-bench
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	feisu "repro"
	"repro/internal/experiments"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

func benchScale() experiments.Scale { return experiments.SmallScale() }

func runExperiment(b *testing.B, fn func(experiments.Scale) (*experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := fn(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTable1Datasets regenerates the Table I dataset inventory.
func BenchmarkTable1Datasets(b *testing.B) { runExperiment(b, experiments.Table1) }

// BenchmarkFig4Locality regenerates the repeated-column analysis.
func BenchmarkFig4Locality(b *testing.B) { runExperiment(b, experiments.Fig4) }

// BenchmarkFig5Similarity regenerates the predicate-sharing analysis.
func BenchmarkFig5Similarity(b *testing.B) { runExperiment(b, experiments.Fig5) }

// BenchmarkFig8Keywords regenerates the keyword histogram.
func BenchmarkFig8Keywords(b *testing.B) { runExperiment(b, experiments.Fig8) }

// BenchmarkFig9aSmartIndex regenerates the with/without-index series.
func BenchmarkFig9aSmartIndex(b *testing.B) { runExperiment(b, experiments.Fig9a) }

// BenchmarkFig9bBTree regenerates the SmartIndex-vs-B-tree comparison.
func BenchmarkFig9bBTree(b *testing.B) { runExperiment(b, experiments.Fig9b) }

// BenchmarkFig10Federated regenerates the two-storage throughput run.
func BenchmarkFig10Federated(b *testing.B) { runExperiment(b, experiments.Fig10) }

// BenchmarkFig11Memory regenerates the index-memory sensitivity sweep.
func BenchmarkFig11Memory(b *testing.B) { runExperiment(b, experiments.Fig11) }

// BenchmarkFig12Scalability regenerates the node-count scaling run.
func BenchmarkFig12Scalability(b *testing.B) { runExperiment(b, experiments.Fig12) }

// BenchmarkAblations regenerates the DESIGN.md §5 ablation studies.
func BenchmarkAblations(b *testing.B) { runExperiment(b, experiments.Ablations) }

// --- micro-benchmarks of the hot path ---

func benchSystem(b *testing.B, mut func(*feisu.Config)) *feisu.System {
	b.Helper()
	cfg := feisu.Config{Leaves: 4}
	if mut != nil {
		mut(&cfg)
	}
	sys, err := feisu.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.T1Spec()
	spec.Partitions = 4
	spec.RowsPerPart = 2048
	meta, err := workload.Generate(context.Background(), sys.Router(), spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.RegisterTable(context.Background(), meta); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	return sys
}

// BenchmarkQueryWarmSmartIndex measures a repeated predicate query once the
// index is warm (the paper's steady state).
func BenchmarkQueryWarmSmartIndex(b *testing.B) {
	sys := benchSystem(b, nil)
	ctx := context.Background()
	const q = "SELECT COUNT(*) FROM T1 WHERE clicks > 4 AND pos <= 6"
	if _, err := sys.Query(ctx, q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryNoIndex measures the same query with indexing disabled.
func BenchmarkQueryNoIndex(b *testing.B) {
	sys := benchSystem(b, func(c *feisu.Config) { c.Index = feisu.IndexNone })
	ctx := context.Background()
	const q = "SELECT COUNT(*) FROM T1 WHERE clicks > 4 AND pos <= 6"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryGroupBy measures a grouped aggregation end to end.
func BenchmarkQueryGroupBy(b *testing.B) {
	sys := benchSystem(b, nil)
	ctx := context.Background()
	const q = "SELECT region, COUNT(*), AVG(dwell) FROM T1 GROUP BY region"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures the SQL frontend alone.
func BenchmarkParse(b *testing.B) {
	const q = "SELECT url, COUNT(*) AS n FROM T1 WHERE clicks > 4 AND (pos <= 6 OR query CONTAINS 'maps') GROUP BY url ORDER BY n DESC LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoaderAppend measures ingest throughput into the columnar store.
func BenchmarkLoaderAppend(b *testing.B) {
	sys, err := feisu.New(feisu.Config{Leaves: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	schema := feisu.MustSchema(
		feisu.Field{Name: "id", Type: feisu.Int64},
		feisu.Field{Name: "s", Type: feisu.String},
		feisu.Field{Name: "f", Type: feisu.Float64},
	)
	ld, err := sys.NewLoader("ingest", schema, "/hdfs/ingest")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ld.Append(feisu.Row{
			feisu.Int(int64(i)), feisu.Str(fmt.Sprintf("row-%d", i)), feisu.Float(float64(i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
