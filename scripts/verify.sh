#!/bin/sh
# verify.sh — the repo's pre-merge gate, run locally or from `make verify`.
#
# Order matters: the cheap static checks fail fast before the race suite
# (the slow step; the experiments package re-runs every figure under it).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./...  (tier-1)"
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== go test -race -count=2 (chaos + cluster recovery + concurrency harness + heat-tier index, repeated)"
go test -race -count=2 ./internal/cluster/... ./internal/chaos/... ./internal/clustertest/... ./internal/core/... ./internal/bitmap/...

# Coverage floor: internal/cluster (admission, scheduling, recovery) must not
# fall below the gate set when admission control landed. Raise the floor when
# coverage improves; never lower it to make a PR pass.
cluster_cov_floor=83.0
echo "== coverage floor (internal/cluster >= ${cluster_cov_floor}%)"
cov=$(go test -cover ./internal/cluster | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
if [ -z "$cov" ]; then
	echo "coverage: could not parse 'go test -cover ./internal/cluster' output" >&2
	exit 1
fi
if awk "BEGIN{exit !($cov < $cluster_cov_floor)}"; then
	echo "coverage: internal/cluster at ${cov}%, below the ${cluster_cov_floor}% floor" >&2
	exit 1
fi
echo "coverage: internal/cluster at ${cov}%"

# Coverage floor: internal/resultcache (semantic result cache — normalization
# hits, subsumption, TTL, quotas, invalidation) gates at the level set when
# the cache landed. Raise when coverage improves; never lower.
rescache_cov_floor=90.0
echo "== coverage floor (internal/resultcache >= ${rescache_cov_floor}%)"
rcov=$(go test -cover ./internal/resultcache | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
if [ -z "$rcov" ]; then
	echo "coverage: could not parse 'go test -cover ./internal/resultcache' output" >&2
	exit 1
fi
if awk "BEGIN{exit !($rcov < $rescache_cov_floor)}"; then
	echo "coverage: internal/resultcache at ${rcov}%, below the ${rescache_cov_floor}% floor" >&2
	exit 1
fi
echo "coverage: internal/resultcache at ${rcov}%"

# Coverage floor: internal/events (the flight recorder ring — emission,
# canonical ordering, drop accounting) gates at the level set when the
# recorder landed. Raise when coverage improves; never lower.
events_cov_floor=92.0
echo "== coverage floor (internal/events >= ${events_cov_floor}%)"
ecov=$(go test -cover ./internal/events | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
if [ -z "$ecov" ]; then
	echo "coverage: could not parse 'go test -cover ./internal/events' output" >&2
	exit 1
fi
if awk "BEGIN{exit !($ecov < $events_cov_floor)}"; then
	echo "coverage: internal/events at ${ecov}%, below the ${events_cov_floor}% floor" >&2
	exit 1
fi
echo "coverage: internal/events at ${ecov}%"

# Coverage floor: internal/exec (expression evaluation, aggregation cells,
# partitioned hash join/agg and the grace-hash spill path) gates at the
# level set when the shuffle landed. Raise when coverage improves; never lower.
exec_cov_floor=85.0
echo "== coverage floor (internal/exec >= ${exec_cov_floor}%)"
xcov=$(go test -cover ./internal/exec | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
if [ -z "$xcov" ]; then
	echo "coverage: could not parse 'go test -cover ./internal/exec' output" >&2
	exit 1
fi
if awk "BEGIN{exit !($xcov < $exec_cov_floor)}"; then
	echo "coverage: internal/exec at ${xcov}%, below the ${exec_cov_floor}% floor" >&2
	exit 1
fi
echo "coverage: internal/exec at ${xcov}%"

# Coverage floor: internal/core (SmartIndex — heat sketch, hot/cold tiers,
# striped promotion, derivation, budget eviction) gates at the level set when
# heat-aware budgeting landed. Raise when coverage improves; never lower.
core_cov_floor=85.0
echo "== coverage floor (internal/core >= ${core_cov_floor}%)"
ccov=$(go test -cover ./internal/core | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
if [ -z "$ccov" ]; then
	echo "coverage: could not parse 'go test -cover ./internal/core' output" >&2
	exit 1
fi
if awk "BEGIN{exit !($ccov < $core_cov_floor)}"; then
	echo "coverage: internal/core at ${ccov}%, below the ${core_cov_floor}% floor" >&2
	exit 1
fi
echo "coverage: internal/core at ${ccov}%"

echo "== fuzz smoke (FuzzParse, 10s)"
go test -fuzz=FuzzParse -fuzztime=10s -run='^$' ./internal/sqlparser

echo "== telemetry smoke (exporter on an ephemeral port)"
go run ./cmd/feisu -smoke-telemetry -rows 256 -parts 2

echo "== chaos smoke (seeded fault injection, seed 1)"
go run ./cmd/feisu-bench -exp chaos -seed 1 -short -scale small

echo "== parscan smoke (intra-task parallel scan, 2x scan-time floor at 4 workers)"
go run ./cmd/feisu-bench -exp parscan -short -scale small

echo "== admission smoke (bounded tail latency under offered overload)"
go run ./cmd/feisu-bench -exp admission -short -scale small

echo "== rescache smoke (semantic result cache, off vs on)"
go run ./cmd/feisu-bench -exp rescache -short -scale small

echo "== flightrec smoke (journaled query chain + observability endpoints)"
go run ./cmd/feisu -smoke-flightrec -rows 256 -parts 2

echo "== flightrec overhead smoke (recorder off vs on)"
go run ./cmd/feisu-bench -exp flightrec -short -scale small

echo "== shuffle smoke (repartition vs broadcast equivalence + journaled shuffle chain)"
go run ./cmd/feisu -smoke-shuffle

echo "== shuffle bench smoke (broadcast vs repartition vs spill across build scales)"
go run ./cmd/feisu-bench -exp shuffle -short -scale small

# The TCP wire transport must be semantically invisible: the transport
# conformance battery runs against both fabrics inside the transport package,
# and the root differential/equivalence suites rerun with every cluster RPC
# crossing real loopback sockets.
echo "== transport conformance (sim + tcp fabrics, race)"
go test -race -count=1 ./internal/transport/

echo "== differential + equivalence suites over TCP (FEISU_TRANSPORT=tcp)"
FEISU_TRANSPORT=tcp go test -count=1 -run 'TestTCPTransport|TestDifferential|TestClusterMatchesSingleNode|TestEquivalenceUnderChaos|TestMetamorphic' .

echo "== multi-process smoke (1 master / 2 stems / 4 leaves as OS processes on loopback)"
go run ./cmd/feisu-node -smoke

echo "== wire bench smoke (scale-out over real sockets vs sim prediction)"
go run ./cmd/feisu-bench -exp wire -short -scale small

echo "== zipfidx smoke (skew-aware SmartIndex, heat-aware vs uniform LRU)"
go run ./cmd/feisu-bench -exp zipfidx -short -scale small

echo "verify: OK"
