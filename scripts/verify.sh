#!/bin/sh
# verify.sh — the repo's pre-merge gate, run locally or from `make verify`.
#
# Order matters: the cheap static checks fail fast before the race suite
# (the slow step; the experiments package re-runs every figure under it).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./...  (tier-1)"
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "verify: OK"
