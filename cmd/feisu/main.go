// Command feisu runs ad-hoc queries against an in-process Feisu cluster
// loaded with the scaled evaluation datasets (T1/T2/T3).
//
// Usage:
//
//	feisu -q "SELECT COUNT(*) FROM T1 WHERE clicks > 5"
//	feisu            # interactive: one query per line, blank line to exit
//	feisu -leaves 8 -stats -q "..."
//	feisu -trace -q "..."   # print the query's span tree
//
// Interactive mode understands EXPLAIN / EXPLAIN ANALYZE prefixes and the
// commands `\trace` (toggle span-tree printing), `\stats` (toggle stats),
// `\metrics` (dump the deployment metrics registry), `\top` (live per-leaf
// cluster health dashboard), `\watch` (live per-query progress),
// `\slowlog` (the slow-query log) and `\events` (the flight recorder's
// journal tail).
//
// Telemetry: -metrics-addr starts the HTTP exporter (/metrics in
// Prometheus format, /healthz, /debug/slowlog, /debug/queries,
// /debug/trace/{id}, /debug/events; add pprof with -pprof), and -slow /
// -slow-sim set the slow-query-log thresholds. -trace-export writes every
// finished query trace as one Jaeger-compatible JSON document per line.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	feisu "repro"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/events"
	"repro/internal/telemetry"
	tracepkg "repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	query := flag.String("q", "", "query to run (omit for interactive mode)")
	leaves := flag.Int("leaves", 4, "leaf servers")
	rows := flag.Int("rows", 4096, "rows per partition of the demo datasets")
	parts := flag.Int("parts", 4, "partitions per demo dataset")
	stats := flag.Bool("stats", false, "print execution statistics")
	trace := flag.Bool("trace", false, "print each query's span tree")
	explain := flag.Bool("explain", false, "print the physical plan instead of executing")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/slowlog on this host:port")
	pprofFlag := flag.Bool("pprof", false, "also mount /debug/pprof on the telemetry server")
	slowWall := flag.Duration("slow", 0, "record queries with wall time >= this in the slow-query log")
	slowSim := flag.Duration("slow-sim", 0, "record queries with simulated time >= this in the slow-query log")
	smoke := flag.Bool("smoke-telemetry", false, "start the exporter on an ephemeral port, scrape it once, and exit (CI smoke test)")
	smokeFR := flag.Bool("smoke-flightrec", false, "run one query and assert the flight recorder journaled its admitted->dispatched->collected chain, then exit (CI smoke test)")
	smokeShuffle := flag.Bool("smoke-shuffle", false, "force the repartition path, run join and GROUP BY queries, and assert they match the broadcast path and journaled shuffle events, then exit (CI smoke test)")
	traceExport := flag.String("trace-export", "", "append every finished query trace to this file as Jaeger-compatible JSON, one document per line (implies per-query tracing)")
	chaosSeed := flag.Int64("chaos-seed", 0, "enable the deterministic fault-injection plane with this seed (0 = off); same seed = same failure schedule")
	maxQueries := flag.Int("max-queries", 0, "admission control: max concurrent queries (0 = unlimited, no admission queue)")
	queueDepth := flag.Int("queue-depth", 0, "admission control: per-class queue depth (0 = 2x max-queries)")
	queueDeadline := flag.Duration("queue-deadline", 0, "admission control: shed queries queued longer than this (0 = wait forever)")
	leafSlots := flag.Int("leaf-slots", 0, "max concurrent task dispatches per leaf (0 = unbounded)")
	resCacheBytes := flag.Int64("result-cache-bytes", 0, "semantic result cache budget in bytes (0 = off); repeated and subsumed queries answer from the master")
	resCacheTTL := flag.Duration("result-cache-ttl", 0, "result cache entry TTL (0 = 5m default, negative = no expiry)")
	cacheAffinity := flag.Bool("cache-affinity", false, "route tasks for the same partition to the same leaf so its caches keep hitting")
	flag.Parse()

	cfg := feisu.Config{
		Leaves:                 *leaves,
		SlowQueryWallThreshold: *slowWall,
		SlowQuerySimThreshold:  *slowSim,
		MaxConcurrentQueries:   *maxQueries,
		MaxQueueDepth:          *queueDepth,
		QueueWaitDeadline:      *queueDeadline,
		LeafSlots:              *leafSlots,
		ResultCacheBytes:       *resCacheBytes,
		ResultCacheTTL:         *resCacheTTL,
		CacheAffinity:          *cacheAffinity,
	}
	if *chaosSeed != 0 {
		cfg.Chaos = chaos.Default(*chaosSeed)
		// Background ticking: kills/stragglers/partitions arrive on a wall
		// clock while the session runs.
		cfg.Chaos.Lifecycle.TickInterval = 500 * time.Millisecond
		cfg.TaskTimeout = 250 * time.Millisecond
		fmt.Fprintf(os.Stderr, "chaos: fault injection enabled, seed %d\n", *chaosSeed)
	}
	if *smoke {
		smokeTelemetry(cfg, *rows, *parts)
		return
	}
	if *smokeFR {
		smokeFlightrec(cfg, *rows, *parts)
		return
	}
	if *smokeShuffle {
		smokeShuffleRun(cfg)
		return
	}

	sys, err := feisu.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer sys.Close()

	if *metricsAddr != "" {
		srv, err := sys.StartTelemetry(*metricsAddr, *pprofFlag)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: %s/metrics\n", srv.URL())
	}

	var exporter *traceExporter
	if *traceExport != "" {
		f, err := os.OpenFile(*traceExport, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		exporter = &traceExporter{sys: sys, w: f}
		fmt.Fprintf(os.Stderr, "trace export: appending Jaeger JSON lines to %s\n", *traceExport)
	}

	ctx := context.Background()
	fmt.Fprintf(os.Stderr, "loading demo datasets T1, T2, T3 ...\n")
	for _, spec := range []workload.DatasetSpec{workload.T1Spec(), workload.T2Spec(), workload.T3Spec()} {
		spec.Partitions = *parts
		spec.RowsPerPart = *rows
		meta, err := workload.Generate(ctx, sys.Router(), spec)
		if err != nil {
			fatal(err)
		}
		if err := sys.RegisterTable(ctx, meta); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  %s: %d rows, %d fields, %d partitions\n",
			spec.Name, meta.Rows(), meta.Schema.Len(), len(meta.Partitions))
	}

	if *query != "" {
		if *explain {
			desc, err := sys.Explain(*query)
			if err != nil {
				fatal(err)
			}
			fmt.Print(desc)
			return
		}
		if err := run(sys, *query, *stats, *trace, exporter); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Fprintln(os.Stderr, "feisu> enter queries, blank line to exit")
	fmt.Fprintln(os.Stderr, "feisu> commands: \\trace \\stats \\metrics \\top \\watch \\slowlog \\events \\q; EXPLAIN [ANALYZE] <query>")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Fprint(os.Stderr, "feisu> ")
	withTrace := *trace
	withStats := *stats
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			return
		case line == `\trace`:
			withTrace = !withTrace
			fmt.Fprintf(os.Stderr, "trace output %s\n", onOff(withTrace))
		case line == `\stats`:
			withStats = !withStats
			fmt.Fprintf(os.Stderr, "stats output %s\n", onOff(withStats))
		case line == `\metrics`:
			fmt.Print(sys.Metrics().String())
		case line == `\top`:
			// Refresh heartbeats so the dashboard shows live load, not
			// the load at the last heartbeat interval.
			if err := sys.Heartbeat(); err != nil {
				fmt.Fprintf(os.Stderr, "heartbeat: %v\n", err)
			}
			fmt.Print(sys.ClusterHealth().Render())
		case line == `\watch`:
			fmt.Print(cluster.RenderProgress(sys.ActiveQueries()))
		case line == `\slowlog`:
			if sl := sys.Slowlog(); sl == nil {
				fmt.Fprintln(os.Stderr, "slowlog disabled; start feisu with -slow or -slow-sim")
			} else {
				fmt.Printf("slow queries recorded: %d\n", sl.Total())
				fmt.Print(telemetry.RenderSlowlog(sl.Entries()))
			}
		case line == `\events`:
			if rec := sys.Events(); rec == nil {
				fmt.Fprintln(os.Stderr, "flight recorder disabled (EventLogCapacity < 0)")
			} else {
				evs := rec.Events()
				if len(evs) > 40 {
					evs = evs[len(evs)-40:]
				}
				fmt.Printf("events recorded: %d, overwritten: %d (showing last %d)\n",
					rec.Total(), rec.Dropped(), len(evs))
				for _, e := range evs {
					fmt.Println(e.String())
				}
			}
		case line == `\q` || line == `\quit`:
			return
		default:
			if err := run(sys, line, withStats, withTrace, exporter); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
		fmt.Fprint(os.Stderr, "feisu> ")
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func run(sys *feisu.System, sql string, withStats, withTrace bool, exporter *traceExporter) error {
	start := time.Now()
	var opts []feisu.QueryOption
	if withTrace || exporter != nil {
		opts = append(opts, feisu.WithTrace())
	}
	res, stats, err := sys.QueryStats(context.Background(), sql, opts...)
	if err != nil {
		return err
	}
	exporter.export(stats.QueryID)
	printResult(res)
	if withTrace && stats.Trace != nil {
		fmt.Print(stats.Trace.Render())
	}
	if withStats {
		fmt.Printf("-- %d rows in %s (sim %s); tasks=%d reused=%d backups=%d; scan: %+v\n",
			len(res.Rows), time.Since(start).Round(time.Millisecond),
			stats.SimTime.Round(time.Microsecond),
			stats.Tasks, stats.ReusedTasks, stats.BackupTasks, stats.Scan)
	}
	return nil
}

// traceExporter appends every finished query's trace to a file as one
// Jaeger-compatible JSON document per line (the -trace-export flag).
type traceExporter struct {
	sys *feisu.System
	w   io.Writer
}

func (e *traceExporter) export(queryID string) {
	if e == nil || queryID == "" {
		return
	}
	st, ok := e.sys.Traces().Get(queryID)
	if !ok {
		return
	}
	b, err := json.Marshal(tracepkg.ToJaeger(st))
	if err != nil {
		return
	}
	if _, err := e.w.Write(append(b, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
	}
}

func printResult(res *feisu.Result) {
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			if v.T == feisu.String {
				cells[i] = v.S // raw, without SQL quoting
			} else {
				cells[i] = v.String()
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
}

// smokeTelemetry is the CI smoke test behind -smoke-telemetry: build a
// tiny system, run one query, start the exporter on an ephemeral port,
// scrape /metrics and /healthz, and assert both respond with real content.
func smokeTelemetry(cfg feisu.Config, rows, parts int) {
	cfg.Leaves = 2
	if cfg.SlowQueryWallThreshold == 0 && cfg.SlowQuerySimThreshold == 0 {
		cfg.SlowQuerySimThreshold = time.Nanosecond // populate the slowlog
	}
	sys, err := feisu.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer sys.Close()

	ctx := context.Background()
	spec := workload.T1Spec()
	spec.Partitions = parts
	spec.RowsPerPart = rows
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err != nil {
		fatal(err)
	}
	if err := sys.RegisterTable(ctx, meta); err != nil {
		fatal(err)
	}
	if _, err := sys.Query(ctx, "SELECT COUNT(*) FROM T1 WHERE clicks > 2"); err != nil {
		fatal(err)
	}

	srv, err := sys.StartTelemetry("127.0.0.1:0", false)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			fatal(fmt.Errorf("GET %s: %w", path, err))
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body))
		}
		if len(body) == 0 {
			fatal(fmt.Errorf("GET %s: empty body", path))
		}
		return string(body)
	}
	metricsBody := get("/metrics")
	for _, want := range []string{"feisu_queries_total", "feisu_node_up", "feisu_query_wall_seconds_bucket"} {
		if !strings.Contains(metricsBody, want) {
			fatal(fmt.Errorf("/metrics missing %q", want))
		}
	}
	get("/healthz")
	get("/debug/slowlog")
	fmt.Printf("telemetry smoke OK: scraped %s (%d bytes of metrics)\n", srv.Addr(), len(metricsBody))
}

// smokeFlightrec is the CI smoke test behind -smoke-flightrec: build a
// tiny system, run one query, and assert the flight recorder journaled the
// query's full admitted -> scheduled -> dispatched -> collected -> done
// chain, then scrape the /debug/queries, /debug/trace and /debug/events
// endpoints to prove the observability surface is wired end to end.
func smokeFlightrec(cfg feisu.Config, rows, parts int) {
	cfg.Leaves = 2
	sys, err := feisu.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer sys.Close()

	ctx := context.Background()
	spec := workload.T1Spec()
	spec.Partitions = parts
	spec.RowsPerPart = rows
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err != nil {
		fatal(err)
	}
	if err := sys.RegisterTable(ctx, meta); err != nil {
		fatal(err)
	}
	_, stats, err := sys.QueryStats(ctx, "SELECT COUNT(*) FROM T1 WHERE clicks > 2", feisu.WithTrace())
	if err != nil {
		fatal(err)
	}
	if stats.QueryID == "" {
		fatal(fmt.Errorf("query finished without a query ID"))
	}

	rec := sys.Events()
	if rec == nil {
		fatal(fmt.Errorf("flight recorder not enabled by default"))
	}
	seen := make(map[events.Kind]bool)
	for _, e := range rec.ForQuery(stats.QueryID) {
		seen[e.Kind] = true
	}
	for _, want := range []events.Kind{
		events.QuerySubmit, events.QueryAdmitted, events.TaskScheduled,
		events.TaskDispatched, events.TaskCollected, events.LeafExec,
		events.QueryDone,
	} {
		if !seen[want] {
			fatal(fmt.Errorf("journal for %s is missing kind %q (have %v)", stats.QueryID, want, seen))
		}
	}

	srv, err := sys.StartTelemetry("127.0.0.1:0", false)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			fatal(fmt.Errorf("GET %s: %w", path, err))
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body))
		}
		return string(body)
	}
	if body := get("/debug/queries?format=json"); !strings.Contains(body, `"active"`) {
		fatal(fmt.Errorf("/debug/queries?format=json lacks the active count: %s", body))
	}
	if body := get("/debug/trace/" + stats.QueryID); !strings.Contains(body, `"spans"`) {
		fatal(fmt.Errorf("/debug/trace/%s is not a Jaeger document: %s", stats.QueryID, body))
	}
	if body := get("/debug/events?query=" + stats.QueryID); !strings.Contains(body, string(events.TaskCollected)) {
		fatal(fmt.Errorf("/debug/events?query=%s lacks the task.collected event: %s", stats.QueryID, body))
	}
	fmt.Printf("flightrec smoke OK: %s journaled %d events (%d total, %d dropped)\n",
		stats.QueryID, len(rec.ForQuery(stats.QueryID)), rec.Total(), rec.Dropped())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "feisu: %v\n", err)
	os.Exit(1)
}

// smokeShuffleRun is the CI smoke test behind -smoke-shuffle: load the
// generated join pair twice — once with the broadcast threshold forced to
// one byte (every join repartitions) and once with defaults (the small
// dimension broadcasts) — run the same join and GROUP BY queries on both,
// and assert the plans diverge, the rows agree, and the flight recorder
// journaled the shuffle's map/commit/reduce chain.
func smokeShuffleRun(cfg feisu.Config) {
	build := func(force bool) *feisu.System {
		c := cfg
		c.Leaves = 4
		if force {
			c.BroadcastThreshold = 1
			c.ShufflePartitions = 4
		}
		sys, err := feisu.New(c)
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		factMeta, dimMeta, _, _, err := workload.GenerateJoin(ctx, sys.Router(), workload.DefaultJoinSpec())
		if err != nil {
			fatal(err)
		}
		if err := sys.RegisterTable(ctx, factMeta); err != nil {
			fatal(err)
		}
		if err := sys.RegisterTable(ctx, dimMeta); err != nil {
			fatal(err)
		}
		return sys
	}
	shuffleSys := build(true)
	defer shuffleSys.Close()
	broadcastSys := build(false)
	defer broadcastSys.Close()

	spec := workload.DefaultJoinSpec()
	queries := []string{
		"SELECT f.id AS a, f.v AS b, d.name AS c FROM " + spec.FactName + " f JOIN " + spec.DimName + " d ON f.k = d.k ORDER BY a",
		"SELECT d.cat AS g, COUNT(*) AS n, SUM(f.v) AS s FROM " + spec.FactName + " f, " + spec.DimName + " d WHERE f.k = d.k GROUP BY d.cat ORDER BY g",
		"SELECT f.id AS a, d.name AS b FROM " + spec.FactName + " f RIGHT OUTER JOIN " + spec.DimName + " d ON f.k = d.k ORDER BY b DESC, a LIMIT 20",
	}
	render := func(res *feisu.Result) string {
		var sb strings.Builder
		for _, row := range res.Rows {
			for j, v := range row {
				if j > 0 {
					sb.WriteByte('|')
				}
				sb.WriteString(v.String())
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	explain, err := shuffleSys.Explain(queries[0])
	if err != nil {
		fatal(err)
	}
	if !strings.Contains(explain, "repartition") {
		fatal(fmt.Errorf("forced-shuffle plan did not repartition:\n%s", explain))
	}

	ctx := context.Background()
	var lastQID string
	for _, q := range queries {
		a, stats, err := shuffleSys.QueryStats(ctx, q)
		if err != nil {
			fatal(fmt.Errorf("shuffle path %q: %w", q, err))
		}
		b, err := broadcastSys.Query(ctx, q)
		if err != nil {
			fatal(fmt.Errorf("broadcast path %q: %w", q, err))
		}
		if render(a) != render(b) {
			fatal(fmt.Errorf("shuffle and broadcast paths diverged on %q:\nshuffle:\n%s\nbroadcast:\n%s", q, render(a), render(b)))
		}
		lastQID = stats.QueryID
	}

	seen := make(map[events.Kind]int)
	for _, e := range shuffleSys.Events().ForQuery(lastQID) {
		seen[e.Kind]++
	}
	for _, want := range []events.Kind{events.ShuffleMap, events.ShuffleCommit, events.ShuffleReduce} {
		if seen[want] == 0 {
			fatal(fmt.Errorf("journal for %s is missing kind %q (have %v)", lastQID, want, seen))
		}
	}
	fmt.Printf("shuffle smoke OK: %d queries agree across paths; last query journaled %d map, %d commit, %d reduce events\n",
		len(queries), seen[events.ShuffleMap], seen[events.ShuffleCommit], seen[events.ShuffleReduce])
}
