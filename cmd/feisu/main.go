// Command feisu runs ad-hoc queries against an in-process Feisu cluster
// loaded with the scaled evaluation datasets (T1/T2/T3).
//
// Usage:
//
//	feisu -q "SELECT COUNT(*) FROM T1 WHERE clicks > 5"
//	feisu            # interactive: one query per line, blank line to exit
//	feisu -leaves 8 -stats -q "..."
//	feisu -trace -q "..."   # print the query's span tree
//
// Interactive mode understands EXPLAIN / EXPLAIN ANALYZE prefixes and the
// commands `\trace` (toggle span-tree printing), `\stats` (toggle stats)
// and `\metrics` (dump the deployment metrics registry).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	feisu "repro"
	"repro/internal/workload"
)

func main() {
	query := flag.String("q", "", "query to run (omit for interactive mode)")
	leaves := flag.Int("leaves", 4, "leaf servers")
	rows := flag.Int("rows", 4096, "rows per partition of the demo datasets")
	parts := flag.Int("parts", 4, "partitions per demo dataset")
	stats := flag.Bool("stats", false, "print execution statistics")
	trace := flag.Bool("trace", false, "print each query's span tree")
	explain := flag.Bool("explain", false, "print the physical plan instead of executing")
	flag.Parse()

	sys, err := feisu.New(feisu.Config{Leaves: *leaves})
	if err != nil {
		fatal(err)
	}
	defer sys.Close()

	ctx := context.Background()
	fmt.Fprintf(os.Stderr, "loading demo datasets T1, T2, T3 ...\n")
	for _, spec := range []workload.DatasetSpec{workload.T1Spec(), workload.T2Spec(), workload.T3Spec()} {
		spec.Partitions = *parts
		spec.RowsPerPart = *rows
		meta, err := workload.Generate(ctx, sys.Router(), spec)
		if err != nil {
			fatal(err)
		}
		if err := sys.RegisterTable(ctx, meta); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  %s: %d rows, %d fields, %d partitions\n",
			spec.Name, meta.Rows(), meta.Schema.Len(), len(meta.Partitions))
	}

	if *query != "" {
		if *explain {
			desc, err := sys.Explain(*query)
			if err != nil {
				fatal(err)
			}
			fmt.Print(desc)
			return
		}
		if err := run(sys, *query, *stats, *trace); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Fprintln(os.Stderr, "feisu> enter queries, blank line to exit")
	fmt.Fprintln(os.Stderr, "feisu> commands: \\trace \\stats \\metrics \\q; EXPLAIN [ANALYZE] <query>")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Fprint(os.Stderr, "feisu> ")
	withTrace := *trace
	withStats := *stats
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			return
		case line == `\trace`:
			withTrace = !withTrace
			fmt.Fprintf(os.Stderr, "trace output %s\n", onOff(withTrace))
		case line == `\stats`:
			withStats = !withStats
			fmt.Fprintf(os.Stderr, "stats output %s\n", onOff(withStats))
		case line == `\metrics`:
			fmt.Print(sys.Metrics().String())
		case line == `\q` || line == `\quit`:
			return
		default:
			if err := run(sys, line, withStats, withTrace); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
		fmt.Fprint(os.Stderr, "feisu> ")
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func run(sys *feisu.System, sql string, withStats, withTrace bool) error {
	start := time.Now()
	var opts []feisu.QueryOption
	if withTrace {
		opts = append(opts, feisu.WithTrace())
	}
	res, stats, err := sys.QueryStats(context.Background(), sql, opts...)
	if err != nil {
		return err
	}
	printResult(res)
	if withTrace && stats.Trace != nil {
		fmt.Print(stats.Trace.Render())
	}
	if withStats {
		fmt.Printf("-- %d rows in %s (sim %s); tasks=%d reused=%d backups=%d; scan: %+v\n",
			len(res.Rows), time.Since(start).Round(time.Millisecond),
			stats.SimTime.Round(time.Microsecond),
			stats.Tasks, stats.ReusedTasks, stats.BackupTasks, stats.Scan)
	}
	return nil
}

func printResult(res *feisu.Result) {
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			if v.T == feisu.String {
				cells[i] = v.S // raw, without SQL quoting
			} else {
				cells[i] = v.String()
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "feisu: %v\n", err)
	os.Exit(1)
}
