// Command feisu-datagen writes the scaled T1/T2/T3 evaluation datasets
// (paper Table I) as Feisu partition files under a local directory, with a
// manifest describing the catalog entries.
//
// Usage:
//
//	feisu-datagen -out ./data -rows 4096 -parts 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/storage"
	"repro/internal/workload"
)

// manifestEntry records one generated table for external tooling.
type manifestEntry struct {
	Table      string   `json:"table"`
	Rows       int64    `json:"rows"`
	Bytes      int64    `json:"bytes"`
	Fields     int      `json:"fields"`
	Partitions []string `json:"partitions"`
}

func main() {
	out := flag.String("out", "./feisu-data", "output directory")
	rows := flag.Int("rows", 4096, "rows per partition")
	parts := flag.Int("parts", 8, "partitions per table (T2 doubles, T3 halves)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	router := storage.NewRouter(storage.NewLocalFS(*out, nil))
	ctx := context.Background()

	t1 := workload.T1Spec()
	t1.PathPrefix = "/t1"
	t1.Partitions = *parts
	t2 := workload.T2Spec()
	t2.PathPrefix = "/t2"
	t2.Partitions = *parts * 2
	t3 := workload.T3Spec()
	t3.PathPrefix = "/t3"
	t3.Partitions = max(*parts/2, 1)

	var manifest []manifestEntry
	for _, spec := range []workload.DatasetSpec{t1, t2, t3} {
		spec.RowsPerPart = *rows
		meta, err := workload.Generate(ctx, router, spec)
		if err != nil {
			fatal(err)
		}
		entry := manifestEntry{
			Table:  spec.Name,
			Rows:   meta.Rows(),
			Bytes:  meta.Bytes(),
			Fields: meta.Schema.Len(),
		}
		for _, p := range meta.Partitions {
			entry.Partitions = append(entry.Partitions, p.Path)
		}
		manifest = append(manifest, entry)
		fmt.Printf("%s: %d rows, %d bytes, %d partitions under %s%s\n",
			spec.Name, meta.Rows(), meta.Bytes(), len(meta.Partitions), *out, spec.PathPrefix)
	}

	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "manifest.json"), data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("manifest: %s\n", filepath.Join(*out, "manifest.json"))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "feisu-datagen: %v\n", err)
	os.Exit(1)
}
