// Command feisu-node runs one Feisu cluster role — master, stem or leaf — as
// its own OS process, wired to its peers over the TCP transport. It is the
// multi-process deployment of the same cluster stack the in-process System
// drives over the simulated fabric: identical masters, stems, leaves and wire
// payloads, with real sockets in between.
//
// Every process deterministically generates its own replica of the workload
// dataset (same seeds, same bytes), standing in for a shared storage system:
// a leaf reads the partitions the master's catalog names from its local
// replica, as a real deployment reads shared HDFS.
//
//	feisu-node -role master -listen 127.0.0.1:7000 -peers ... -http 127.0.0.1:8080
//	feisu-node -role stem   -name stem0 -listen 127.0.0.1:7001 -peers ...
//	feisu-node -role leaf   -name leaf0 -listen 127.0.0.1:7002 -peers ...
//
// -smoke orchestrates a 1-master/2-stem/4-leaf cluster of child processes on
// loopback, runs smoke queries (including a repartition join) over the
// master's HTTP endpoint, and asserts each query's journaled submit→done
// chain in the flight recorder.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/events"
	execpkg "repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/workload"
)

type nodeConfig struct {
	role      string
	name      string
	listen    string
	peers     string
	leaves    int
	stems     int
	racks     int
	httpAddr  string
	dataset   string
	broadcast int64
	beat      time.Duration
	verbose   bool
}

func main() {
	var cfg nodeConfig
	flag.StringVar(&cfg.role, "role", "", "node role: master, stem or leaf")
	flag.StringVar(&cfg.name, "name", "", `node name (defaults: "master", "stem0", "leaf0")`)
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:0", "cluster RPC listen address")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated name=host:port for every other cluster member")
	flag.IntVar(&cfg.leaves, "leaves", 4, "cluster-wide leaf count (topology + data placement)")
	flag.IntVar(&cfg.stems, "stems", 2, "cluster-wide stem count")
	flag.IntVar(&cfg.racks, "racks", 4, "leaves per rack in the simulated topology")
	flag.StringVar(&cfg.httpAddr, "http", "", "master: HTTP listen address for /query, /healthz, /debug/events")
	flag.StringVar(&cfg.dataset, "dataset", "join", "deterministic generated workload: join, t1 or none")
	flag.Int64Var(&cfg.broadcast, "broadcast-threshold", 0, "planner broadcast threshold in bytes; 1 forces repartition joins, 0 keeps the default")
	flag.DurationVar(&cfg.beat, "heartbeat", 2*time.Second, "worker heartbeat interval")
	flag.BoolVar(&cfg.verbose, "v", false, "verbose logging")
	smoke := flag.Bool("smoke", false, "orchestrate a 1-master/2-stem/4-leaf loopback cluster, run smoke queries, exit")
	flag.Parse()

	if *smoke {
		os.Exit(runSmoke(cfg.verbose))
	}
	if err := runNode(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "feisu-node:", err)
		os.Exit(1)
	}
}

func defaultName(role string) string {
	switch role {
	case "master":
		return "master"
	case "stem":
		return "stem0"
	default:
		return "leaf0"
	}
}

// buildData generates the node's replica of the workload dataset and returns
// the catalog entries (registered by the master only).
func buildData(ctx context.Context, router *storage.Router, dataset string, leaves int) ([]*plan.TableMeta, error) {
	switch dataset {
	case "none":
		return nil, nil
	case "t1":
		spec := workload.T1Spec()
		spec.Partitions = leaves
		spec.RowsPerPart = 512
		meta, err := workload.Generate(ctx, router, spec)
		if err != nil {
			return nil, err
		}
		return []*plan.TableMeta{meta}, nil
	case "join":
		spec := workload.DefaultJoinSpec()
		spec.FactPartitions = leaves
		factMeta, dimMeta, _, _, err := workload.GenerateJoin(ctx, router, spec)
		if err != nil {
			return nil, err
		}
		return []*plan.TableMeta{factMeta, dimMeta}, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func runNode(cfg nodeConfig) error {
	if cfg.role != "master" && cfg.role != "stem" && cfg.role != "leaf" {
		return fmt.Errorf("missing or invalid -role %q (want master, stem or leaf)", cfg.role)
	}
	if cfg.name == "" {
		cfg.name = defaultName(cfg.role)
	}
	logf := func(format string, args ...any) {
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "[%s] "+format+"\n", append([]any{cfg.name}, args...)...)
		}
	}

	model := sim.DefaultCostModel()
	topo := transport.NewTopology()
	leafName := func(i int) string { return fmt.Sprintf("leaf%d", i) }
	for i := 0; i < cfg.leaves; i++ {
		topo.Place(leafName(i), fmt.Sprintf("rack%d", i/cfg.racks), "dc1")
	}
	topo.Place("master", "rack-master", "dc1")

	tcpNet, err := transport.NewTCP(topo, transport.Options{Model: model}, transport.TCPOptions{ListenAddr: cfg.listen})
	if err != nil {
		return err
	}
	defer tcpNet.Close()
	for _, entry := range strings.Split(cfg.peers, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, addr, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("bad -peers entry %q (want name=host:port)", entry)
		}
		tcpNet.AddPeer(name, addr)
	}
	logf("cluster RPC on %s", tcpNet.Addr())

	// Each process holds an identical deterministic replica of the dataset
	// (same seeds → same bytes), standing in for shared storage.
	hdfs := storage.NewHDFS("hdfs", model)
	ffs := storage.NewFatman("ffs", model)
	router := storage.NewRouter(storage.NewMemFS("", model))
	router.Register(hdfs)
	router.Register(ffs)
	for i := 0; i < cfg.leaves; i++ {
		rack := fmt.Sprintf("rack%d", i/cfg.racks)
		hdfs.AddNode(leafName(i), rack)
		ffs.AddNode(leafName(i), rack)
	}
	ctx := context.Background()
	metas, err := buildData(ctx, router, cfg.dataset, cfg.leaves)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}

	rec := events.New(4096)
	reg := metrics.NewRegistry()

	var httpSrv *http.Server
	switch cfg.role {
	case "master":
		m := cluster.NewMaster(cluster.MasterConfig{
			Name:           cfg.name,
			Fabric:         tcpNet,
			Router:         router,
			Model:          model,
			MaxQueryBytes:  1 << 20,
			LivenessWindow: time.Minute,
			Metrics:        reg,
			Events:         rec,
			Planner:        plan.Options{BroadcastThreshold: cfg.broadcast},
		})
		for _, meta := range metas {
			if err := m.RegisterTable(ctx, meta); err != nil {
				return fmt.Errorf("catalog: %w", err)
			}
		}
		if cfg.httpAddr != "" {
			srv, err := serveHTTP(cfg.httpAddr, m, rec, logf)
			if err != nil {
				return err
			}
			httpSrv = srv
		}
	case "stem":
		st := &cluster.StemServer{Name: cfg.name, Fabric: tcpNet, Router: router, Model: model, Events: rec}
		st.Register()
		st.Start("master", cfg.beat)
		defer st.Stop()
	case "leaf":
		idx := core.New(core.Options{Model: model})
		leaf := &cluster.LeafServer{
			Name:   cfg.name,
			Fabric: tcpNet,
			Reader: execpkg.NewStoreReader(router),
			Index:  idx,
			Router: router,
			Model:  model,
			Events: rec,
			// Spill stays off across processes: each node's storage replica
			// is local, so a spilled partial written here could not be read
			// back by a stem in another process.
		}
		leaf.Register()
		leaf.Start("master", cfg.beat)
		defer leaf.Stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logf("shutting down")
	if httpSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(sctx)
	}
	return nil
}

// --- master HTTP surface ---------------------------------------------------

type queryResponse struct {
	QueryID string     `json:"queryID"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Wall    string     `json:"wall"`
	Sim     string     `json:"sim"`
	Tasks   int        `json:"tasks"`
	// Shuffled reports whether the query ran through the repartition
	// shuffle (hash-partitioned map tasks feeding stem reducers).
	Shuffled bool `json:"shuffled"`
}

type healthResponse struct {
	Alive    int      `json:"alive"`
	Degraded int      `json:"degraded"`
	Dead     int      `json:"dead"`
	Nodes    []string `json:"nodes"`
}

func serveHTTP(addr string, m *cluster.Master, rec *events.Recorder, logf func(string, ...any)) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("http listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		sql := r.URL.Query().Get("sql")
		if sql == "" {
			http.Error(w, "missing ?sql=", http.StatusBadRequest)
			return
		}
		res, stats, err := m.Submit(r.Context(), sql, cluster.QueryOptions{Trace: true})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp := queryResponse{Columns: res.Columns, Rows: make([][]string, len(res.Rows))}
		for i, row := range res.Rows {
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			resp.Rows[i] = cells
		}
		if stats != nil {
			resp.QueryID = stats.QueryID
			resp.Wall = stats.WallTime.String()
			resp.Sim = stats.SimTime.String()
			resp.Tasks = stats.Tasks
			resp.Shuffled = stats.Trace != nil && len(stats.Trace.FindAll("shuffle-")) > 0
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := m.Health()
		resp := healthResponse{Alive: h.Alive, Degraded: h.Degraded, Dead: h.Dead}
		for _, n := range h.Nodes {
			resp.Nodes = append(resp.Nodes, n.Name)
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, rec.Events())
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	logf("http on %s", ln.Addr())
	return srv, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// --- smoke orchestration ---------------------------------------------------

// freeAddr reserves an ephemeral loopback port and returns it. The listener
// is closed before the child binds, which is racy in principle; on loopback
// in CI the window is negligible and a collision fails loudly.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// runSmoke boots a 1-master/2-stem/4-leaf cluster of feisu-node child
// processes on loopback, runs three queries (scan-agg, group-by and a forced
// repartition join) over the master's HTTP endpoint, and asserts each query's
// journaled submit→done chain. Exit code 0 on success.
func runSmoke(verbose bool) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "smoke: FAIL: "+format+"\n", args...)
		return 1
	}
	bin, err := os.Executable()
	if err != nil {
		return fail("executable: %v", err)
	}

	roles := map[string]string{"master": "master", "stem0": "stem", "stem1": "stem", "leaf0": "leaf", "leaf1": "leaf", "leaf2": "leaf", "leaf3": "leaf"}
	order := []string{"master", "stem0", "stem1", "leaf0", "leaf1", "leaf2", "leaf3"}
	addrs := make(map[string]string, len(order))
	for _, n := range order {
		a, err := freeAddr()
		if err != nil {
			return fail("port: %v", err)
		}
		addrs[n] = a
	}
	httpAddr, err := freeAddr()
	if err != nil {
		return fail("port: %v", err)
	}
	var peerList []string
	for _, n := range order {
		peerList = append(peerList, n+"="+addrs[n])
	}
	peers := strings.Join(peerList, ",")

	var procs []*exec.Cmd
	stop := func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, p := range procs {
			_ = p.Wait()
		}
	}
	defer stop()
	for _, n := range order {
		args := []string{
			"-role", roles[n], "-name", n, "-listen", addrs[n], "-peers", peers,
			"-leaves", "4", "-stems", "2", "-dataset", "join", "-heartbeat", "500ms",
		}
		if n == "master" {
			args = append(args, "-http", httpAddr, "-broadcast-threshold", "1")
		}
		if verbose {
			args = append(args, "-v")
		}
		cmd := exec.Command(bin, args...)
		if verbose {
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			return fail("start %s: %v", n, err)
		}
		procs = append(procs, cmd)
	}

	// Wait for every worker (2 stems + 4 leaves) to heartbeat in.
	base := "http://" + httpAddr
	deadline := time.Now().Add(30 * time.Second)
	for {
		var h healthResponse
		if err := getJSON(base+"/healthz", &h); err == nil && h.Alive >= 6 {
			break
		}
		if time.Now().After(deadline) {
			return fail("cluster did not become healthy within 30s")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintln(os.Stderr, "smoke: cluster healthy (1 master, 2 stems, 4 leaves)")

	queries := []string{
		"SELECT COUNT(*) FROM orders",
		"SELECT grp, SUM(v) FROM orders GROUP BY grp",
		// -broadcast-threshold 1 forces this join through the repartition
		// shuffle: map tasks on leaves, hash frames to stem reducers.
		"SELECT users.cat, COUNT(*) FROM orders JOIN users ON orders.k = users.k GROUP BY users.cat",
	}
	var ids []string
	for i, q := range queries {
		var resp queryResponse
		if err := getJSON(base+"/query?sql="+urlQueryEscape(q), &resp); err != nil {
			return fail("query %q: %v", q, err)
		}
		if len(resp.Rows) == 0 {
			return fail("query %q returned no rows", q)
		}
		if resp.QueryID == "" {
			return fail("query %q carried no query ID", q)
		}
		if i == 2 && !resp.Shuffled {
			return fail("join query did not run through the repartition shuffle")
		}
		fmt.Fprintf(os.Stderr, "smoke: %s → %d row(s), %d task(s), wall %s, shuffled=%v\n", resp.QueryID, len(resp.Rows), resp.Tasks, resp.Wall, resp.Shuffled)
		ids = append(ids, resp.QueryID)
	}

	// The flight recorder must journal each query's full lifecycle chain.
	var evs []events.Event
	if err := getJSON(base+"/debug/events", &evs); err != nil {
		return fail("events: %v", err)
	}
	for _, id := range ids {
		var submit, done uint64
		for _, e := range evs {
			if e.Query != id {
				continue
			}
			switch e.Kind {
			case events.QuerySubmit:
				submit = e.Seq
			case events.QueryDone:
				done = e.Seq
			}
		}
		if submit == 0 || done == 0 || submit >= done {
			return fail("query %s: journaled chain broken (submit seq %d, done seq %d)", id, submit, done)
		}
	}

	fmt.Fprintln(os.Stderr, "smoke: PASS — 3 queries over real sockets, journaled submit→done chains intact")
	return 0
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg strings.Builder
		_, _ = fmt.Fprintf(&msg, "status %s", resp.Status)
		return fmt.Errorf("%s", msg.String())
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func urlQueryEscape(q string) string {
	r := strings.NewReplacer(" ", "%20", "*", "%2A", "+", "%2B", "=", "%3D", ",", "%2C", "(", "%28", ")", "%29")
	return r.Replace(q)
}
