// Command feisu-bench regenerates every table and figure of the paper's
// evaluation (§VI) plus the DESIGN.md ablation studies.
//
// Usage:
//
//	feisu-bench                  # run everything at the default scale
//	feisu-bench -exp fig9a       # one experiment
//	feisu-bench -scale big       # closer to the paper's operating point
//	feisu-bench -list            # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

var registry = []struct {
	id   string
	desc string
	run  func(experiments.Scale) (*experiments.Report, error)
}{
	{"table1", "dataset inventory (paper Table I)", experiments.Table1},
	{"fig4", "data locality vs time span", experiments.Fig4},
	{"fig5", "query similarity vs time span", experiments.Fig5},
	{"fig8", "keyword frequency", experiments.Fig8},
	{"fig9a", "scan performance with/without SmartIndex", experiments.Fig9a},
	{"fig9b", "SmartIndex vs B-tree", experiments.Fig9b},
	{"fig10", "federated scan throughput per server", experiments.Fig10},
	{"fig11", "SmartIndex memory sensitivity", experiments.Fig11},
	{"fig12", "scalability with node count", experiments.Fig12},
	{"ablations", "design-choice ablations (DESIGN.md §5)", experiments.Ablations},
	{"trace", "per-stage execution profile from query traces", experiments.TraceProfile},
	{"fleet", "fleet telemetry: latency quantiles while SmartIndex warms", experiments.Fleet},
	{"chaos", "correctness under seeded fault injection (retries/hedges/partials)", experiments.Chaos},
	{"parscan", "intra-task parallel scan speedup at 1/2/4/8 workers", experiments.Parscan},
	{"admission", "admission control: tail latency and goodput vs offered load", experiments.Admission},
	{"rescache", "semantic result cache: repeated-shape stream, cache off vs on", experiments.Rescache},
	{"flightrec", "flight recorder overhead: identical stream, recorder off vs on", experiments.Flightrec},
	{"shuffle", "general joins: broadcast vs hash repartition across build-side scales", experiments.Shuffle},
	{"wire", "scale-out over real TCP sockets vs the simulated fabric", experiments.Wire},
	{"zipfidx", "skew-aware SmartIndex: heat-aware vs uniform-LRU budget across Zipf exponents", experiments.Zipfidx},
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	scaleName := flag.String("scale", "default", "small | default | big")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/slowlog here during -exp fleet (e.g. 127.0.0.1:9090)")
	seed := flag.Int64("seed", 1, "chaos fault-schedule seed for -exp chaos (same seed = same schedule)")
	short := flag.Bool("short", false, "trim -exp chaos/parscan to a smoke-sized query stream")
	jsonPath := flag.String("json", "", "also write the run's reports to this file as JSON")
	flag.Parse()
	experiments.TelemetryAddr = *metricsAddr
	experiments.ChaosSeed = *seed
	experiments.ChaosShort = *short
	experiments.ParscanShort = *short
	experiments.AdmissionShort = *short
	experiments.RescacheShort = *short
	experiments.FlightrecShort = *short
	experiments.ShuffleShort = *short
	experiments.WireShort = *short
	experiments.ZipfidxShort = *short

	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "default":
		scale = experiments.DefaultScale()
	case "big":
		scale = experiments.BigScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (small|default|big)\n", *scaleName)
		os.Exit(2)
	}

	var reports []*experiments.Report
	ran := 0
	for _, e := range registry {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran++
		start := time.Now()
		rep, err := e.run(scale)
		if err != nil {
			if rep != nil {
				fmt.Println(rep.String())
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s took %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		reports = append(reports, rep)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal reports: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
