package feisu

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestMetamorphicTLP applies ternary logic partitioning to the shuffle
// path: for any predicate p, WHERE splits a row set into exactly three
// disjoint parts — p true, p false, and p unknown (NULL) — so
//
//	Q  ≡  Q WHERE (p)  ⊎  Q WHERE NOT (p)  ⊎  Q WHERE (p) IS NULL
//
// as bags. Any divergence means the engine's three-valued predicate
// handling (pushed-down filters, residuals, shuffle-side filters)
// dropped or duplicated rows. The oracle is the engine itself; no
// reference executor is involved.
func TestMetamorphicTLP(t *testing.T) {
	sys, _ := newJoinSystem(t, forceShuffle)
	spec := workload.DefaultJoinSpec()

	bases := []string{
		"SELECT f.id AS a, f.v AS b, d.name AS c FROM %s f JOIN %s d ON f.k = d.k",
		"SELECT f.id AS a, f.k AS b, d.w AS c FROM %s f LEFT OUTER JOIN %s d ON f.k = d.k",
		"SELECT f.id AS a, d.k AS b, d.name AS c FROM %s f RIGHT OUTER JOIN %s d ON f.k = d.k",
	}
	rng := rand.New(rand.NewSource(8211))
	rounds := 0
	unknownHit := false
	for _, base := range bases {
		q := fmt.Sprintf(base, spec.FactName, spec.DimName)
		whole := queryBag(t, sys, q)
		for i := 0; i < 12; i++ {
			p := workload.JoinPredicate(rng)
			tru := queryBag(t, sys, q+" WHERE ("+p+")")
			fls := queryBag(t, sys, q+" WHERE NOT ("+p+")")
			unk := queryBag(t, sys, q+" WHERE ("+p+") IS NULL")
			if len(unk) > 0 {
				unknownHit = true
			}
			union := append(append(append([]string{}, tru...), fls...), unk...)
			sort.Strings(union)
			if got, want := strings.Join(union, " ; "), strings.Join(whole, " ; "); got != want {
				t.Fatalf("TLP violated for %q with p=%q:\npartition: %s\nwhole:     %s", q, p, got, want)
			}
			rounds++
		}
	}
	if rounds == 0 {
		t.Fatal("no TLP rounds executed")
	}
	// The NULL partition must actually fire at least once across the run,
	// or the three-way split degenerates to a two-way one.
	if !unknownHit {
		t.Fatal("no predicate ever evaluated to unknown; TLP's NULL partition is untested")
	}
}

// TestMetamorphicTLPCount is the aggregate form of the partition
// property: COUNT(*) over the whole must equal the sum of the three
// partition counts, on both the shuffle and broadcast paths.
func TestMetamorphicTLPCount(t *testing.T) {
	shuffleSys, _ := newJoinSystem(t, forceShuffle)
	broadcastSys, _ := newJoinSystem(t, nil)
	spec := workload.DefaultJoinSpec()

	base := fmt.Sprintf("SELECT COUNT(*) AS n FROM %s f JOIN %s d ON f.k = d.k", spec.FactName, spec.DimName)
	rng := rand.New(rand.NewSource(40490))
	for i := 0; i < 15; i++ {
		p := workload.JoinPredicate(rng)
		for name, sys := range map[string]*System{"shuffle": shuffleSys, "broadcast": broadcastSys} {
			whole := countQuery(t, sys, base)
			parts := countQuery(t, sys, base+" WHERE ("+p+")") +
				countQuery(t, sys, base+" WHERE NOT ("+p+")") +
				countQuery(t, sys, base+" WHERE ("+p+") IS NULL")
			if whole != parts {
				t.Fatalf("%s: COUNT partition violated for p=%q: whole=%d parts=%d", name, p, whole, parts)
			}
		}
	}
}

// TestMetamorphicJoinCommutativity checks two equivalences the planner
// must preserve: flipping the equality's sides (f.k = d.k vs d.k = f.k)
// and, for inner joins, swapping which table leads the FROM clause (which
// swaps the engine's probe and build sides).
func TestMetamorphicJoinCommutativity(t *testing.T) {
	sys, _ := newJoinSystem(t, forceShuffle)
	spec := workload.DefaultJoinSpec()
	f, d := spec.FactName, spec.DimName

	pairs := [][2]string{
		{
			fmt.Sprintf("SELECT f.id AS a, d.name AS b FROM %s f JOIN %s d ON f.k = d.k", f, d),
			fmt.Sprintf("SELECT f.id AS a, d.name AS b FROM %s f JOIN %s d ON d.k = f.k", f, d),
		},
		{
			fmt.Sprintf("SELECT COUNT(*) AS n, SUM(f.v) AS s FROM %s f, %s d WHERE f.k = d.k", f, d),
			fmt.Sprintf("SELECT COUNT(*) AS n, SUM(f.v) AS s FROM %s f, %s d WHERE d.k = f.k", f, d),
		},
		{
			fmt.Sprintf("SELECT f.grp AS g, COUNT(*) AS n FROM %s f JOIN %s d ON f.k = d.k GROUP BY f.grp", f, d),
			fmt.Sprintf("SELECT f.grp AS g, COUNT(*) AS n FROM %s d2 JOIN %s f ON d2.k = f.k GROUP BY f.grp", d, f),
		},
		{
			fmt.Sprintf("SELECT f.id AS a, d.w AS b FROM %s f JOIN %s d ON f.k = d.k", f, d),
			fmt.Sprintf("SELECT f.id AS a, d.w AS b FROM %s d, %s f WHERE d.k = f.k", d, f),
		},
	}
	ctx := context.Background()
	for i, pair := range pairs {
		a, err := sys.Query(ctx, pair[0])
		if err != nil {
			t.Fatalf("pair %d lhs %q: %v", i, pair[0], err)
		}
		b, err := sys.Query(ctx, pair[1])
		if err != nil {
			t.Fatalf("pair %d rhs %q: %v", i, pair[1], err)
		}
		if g, w := renderRows(a), renderRows(b); g != w {
			t.Fatalf("commutativity violated (pair %d):\n%q -> %s\n%q -> %s", i, pair[0], g, pair[1], w)
		}
	}
}

// queryBag runs a query and returns its rows rendered and sorted (a bag
// fingerprint, one line per row).
func queryBag(t *testing.T, sys *System, q string) []string {
	t.Helper()
	res, err := sys.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		lines[i] = strings.Join(cells, "|")
	}
	sort.Strings(lines)
	return lines
}

// countQuery runs a single-row COUNT query and returns the count.
func countQuery(t *testing.T, sys *System, q string) int64 {
	t.Helper()
	res, err := sys.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("query %q: expected one cell, got %v", q, res.Rows)
	}
	return res.Rows[0][0].I
}
