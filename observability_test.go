package feisu

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// loadSites registers a small dimension table on the cold archive, so a
// join against /hdfs/-resident facts crosses two storage systems.
func loadSites(t *testing.T, sys *System) {
	t.Helper()
	schema := MustSchema(
		Field{Name: "url", Type: String},
		Field{Name: "kind", Type: String},
	)
	ld, err := sys.NewLoader("sites", schema, "/ffs/sites")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		kind := "news"
		if i%2 == 0 {
			kind = "video"
		}
		if err := ld.Append(Row{Str(fmt.Sprintf("http://u/%d", i)), Str(kind)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestExplainAnalyzeFederated runs EXPLAIN ANALYZE on a two-source query
// (facts on the simulated HDFS, the dimension on the Fatman cold archive)
// and checks the rendered span tree breaks leaf time into scan,
// index-lookup, cache and transfer components.
func TestExplainAnalyzeFederated(t *testing.T) {
	sys, err := New(Config{Leaves: 4, CacheBytes: 1 << 20, CachePrefixes: []string{"/hdfs/"}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 400)
	loadSites(t, sys)

	ctx := context.Background()
	q := "SELECT kind, COUNT(*) FROM visits JOIN sites ON visits.url = sites.url WHERE clicks > 2 GROUP BY kind"

	// Warm the SmartIndex and SSD cache so the analyzed run shows hits.
	if _, err := sys.Query(ctx, q); err != nil {
		t.Fatal(err)
	}

	res, stats, err := sys.QueryStats(ctx, "EXPLAIN ANALYZE "+q)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, row := range res.Rows {
		sb.WriteString(row[0].S)
		sb.WriteByte('\n')
	}
	text := sb.String()

	for _, want := range []string{
		"broadcast",        // the plan half: dim shipped to leaves
		"execution trace:", // the analyze half
		"master/load-dims", // dim materialization from /ffs/
		"leaf/",            // per-task leaf spans
		"scan",             // scan stage with row counters
		"rows.scanned",     // scan counters
		"index.hit",        // SmartIndex answered the warmed predicate
		"cache.",           // SSD cache activity (hit or miss)
		"reply-transfer",   // result transfer back up the tree
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}

	if stats.Trace == nil {
		t.Fatal("EXPLAIN ANALYZE left QueryStats.Trace nil")
	}
	if stats.Trace.Sim() <= 0 {
		t.Error("root span has zero simulated time")
	}
	leaves := stats.Trace.FindAll("leaf/")
	if len(leaves) == 0 {
		t.Fatal("no leaf spans in federated trace")
	}
	dims := stats.Trace.Find("master/load-dims")
	if dims == nil || dims.Sim() <= 0 {
		t.Error("load-dims span missing or free: the /ffs/ dimension read should cost simulated time")
	}
}

// TestWithTraceOption: the WithTrace query option records a trace while
// keeping the query's own result set.
func TestWithTraceOption(t *testing.T) {
	sys, err := New(Config{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 100)

	res, stats, err := sys.QueryStats(context.Background(),
		"SELECT COUNT(*) FROM visits WHERE clicks > 5", WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 40 {
		t.Errorf("count = %v (trace option must not change results)", res.Rows[0][0])
	}
	if stats.Trace == nil || stats.Trace.Find("leaf/") == nil {
		t.Fatal("WithTrace did not record a span tree")
	}
	if stats.Trace.Render() == "" {
		t.Fatal("trace renders empty")
	}
}

// TestMetricsRegistry: the deployment registry exposes master, leaf, index
// and cache counters under stable names.
func TestMetricsRegistry(t *testing.T) {
	sys, err := New(Config{Leaves: 2, CacheBytes: 1 << 20, CachePrefixes: []string{"/hdfs/"}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadVisits(t, sys, "/hdfs/visits", 100)

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sys.Query(ctx, "SELECT COUNT(*) FROM visits WHERE clicks > 5"); err != nil {
			t.Fatal(err)
		}
	}
	snap := sys.Metrics().Snapshot()
	if snap["master.queries"] != 3 {
		t.Errorf("master.queries = %d, want 3", snap["master.queries"])
	}
	if snap["master.query_errors"] != 0 {
		t.Errorf("master.query_errors = %d", snap["master.query_errors"])
	}
	var tasks, idxTouches int64
	for name, v := range snap {
		if strings.HasSuffix(name, ".tasks") {
			tasks += v
		}
		if strings.Contains(name, ".index.") {
			idxTouches += v
		}
	}
	if tasks == 0 {
		t.Error("no leaf task counters in the registry")
	}
	if idxTouches == 0 {
		t.Error("no SmartIndex counters in the registry")
	}
	if _, ok := snap["leaf0.cache.hits"]; !ok {
		t.Error("cache counters not registered")
	}
}
