package feisu

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/workload"
)

// heatStream generates the seeded Zipf workload for the heat-vs-uniform
// equivalence battery: hot atoms drawn with Zipf popularity, a steady slice
// of never-repeating cold atoms (the churn the hot tier exists to survive),
// NOT forms (complement derivation and pre-materialized negations), and
// several result shapes so rows, groups and ordered projections are all
// compared.
func heatStream(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	atoms := []string{
		"clicks > 5", "clicks <= 3", "pos = 4", "pos > 7",
		"uid < 40000", "uid > 88000", "dwell < 120.5", "score >= 0.25",
		"query CONTAINS 'a'", "query CONTAINS 'spam'", "region = 'bj'", "spam = FALSE",
	}
	zipf := rand.NewZipf(rng, 1.6, 1, uint64(len(atoms)-1))
	churn := 0
	out := make([]string, 0, n)
	for len(out) < n {
		var atom string
		if rng.Intn(3) == 0 {
			churn++
			atom = fmt.Sprintf("uid > %d", 37+(churn*97)%99000)
		} else {
			atom = atoms[zipf.Uint64()]
			if rng.Intn(4) == 0 {
				atom = "NOT (" + atom + ")"
			}
		}
		switch rng.Intn(4) {
		case 0:
			out = append(out, "SELECT COUNT(*) FROM T1 WHERE "+atom)
		case 1:
			out = append(out, "SELECT SUM(clicks) FROM T1 WHERE "+atom)
		case 2:
			out = append(out, "SELECT pos, COUNT(*) FROM T1 WHERE "+atom+" GROUP BY pos")
		default:
			out = append(out, "SELECT url, clicks FROM T1 WHERE "+atom+" ORDER BY url, clicks LIMIT 10")
		}
	}
	return out
}

// maskHitStats zeroes the counters that legitimately differ between a
// heat-aware and a uniform-LRU run: whether a block was answered from the
// index changes hit/miss/read accounting but must never change what was
// selected.
func maskHitStats(s exec.ScanStats) exec.ScanStats {
	s.IndexHits, s.IndexMisses, s.ColumnReads, s.ShortCircuits = 0, 0, 0, 0
	return s
}

// runHeatStream executes the stream on a fresh system (serial scans, no
// heartbeats — fully deterministic) and returns per-query rendered rows and
// scan stats plus the system's final promotion count.
func runHeatStream(t *testing.T, queries []string, heavyHitters int) (rows []string, scans []exec.ScanStats, promoted int64) {
	t.Helper()
	sys, err := New(Config{
		Leaves:            4,
		HeartbeatInterval: -1,
		ScanWorkers:       -1,
		IndexMemoryBytes:  2500,
		IndexHeavyHitters: heavyHitters,
		IndexHotShare:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	spec := workload.T1Spec()
	spec.Partitions = 4
	spec.RowsPerPart = 256
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}
	rows = make([]string, len(queries))
	scans = make([]exec.ScanStats, len(queries))
	for i, q := range queries {
		res, stats, err := sys.QueryStats(ctx, q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		rows[i] = renderRows(res)
		scans[i] = stats.Scan
	}
	return rows, scans, sys.IndexStats().Promoted
}

// TestHeatAwareMatchesUniformLRU is the tentpole equivalence invariant: the
// same seeded Zipf workload under heat-aware budgeting returns bit-identical
// rows and identical scan statistics (modulo index hit accounting) to the
// uniform-LRU baseline. Heat management may only change *where* answers come
// from, never what they are.
func TestHeatAwareMatchesUniformLRU(t *testing.T) {
	queries := heatStream(300, 42)
	baseRows, baseScans, _ := runHeatStream(t, queries, 0)
	heatRows, heatScans, promoted := runHeatStream(t, queries, 8)
	if promoted == 0 {
		t.Fatal("heat-aware run promoted nothing; the comparison is vacuous")
	}
	for i := range queries {
		if heatRows[i] != baseRows[i] {
			t.Fatalf("rows diverged on %q:\nheat:    %s\nuniform: %s", queries[i], heatRows[i], baseRows[i])
		}
		if got, want := maskHitStats(heatScans[i]), maskHitStats(baseScans[i]); got != want {
			t.Fatalf("masked scan stats diverged on %q:\nheat:    %+v\nuniform: %+v", queries[i], got, want)
		}
	}
}

// TestHeatAwareEquivalenceUnderChaos runs the heat-aware configuration under
// seeded fault injection (leaf kills, drops, read errors) and requires the
// exact rows of the fault-free heat-aware run: retries and re-executions may
// rebuild hot entries in any order, but results must not move.
func TestHeatAwareEquivalenceUnderChaos(t *testing.T) {
	queries := heatStream(60, 777)
	heatCfg := func(c *Config) {
		c.IndexMemoryBytes = 2500
		c.IndexHeavyHitters = 8
		c.IndexHotShare = 1
		c.HedgeDelay = -1
	}
	baseRows, _, _ := chaosStream(t, queries, heatCfg)

	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rows, _, events := chaosStream(t, queries, func(c *Config) {
				heatCfg(c)
				c.Chaos = chaos.Default(seed)
				c.Chaos.Lifecycle.TickInterval = 0 // ChaosTick per query
				c.Chaos.Lifecycle.Partition = 0
				c.TaskTimeout = 250 * time.Millisecond
			})
			for i := range queries {
				if rows[i] != baseRows[i] {
					t.Fatalf("heat-aware chaos (seed %d) diverged on %q:\nchaos: %s\nclean: %s",
						seed, queries[i], rows[i], baseRows[i])
				}
			}
			if len(events) == 0 {
				t.Fatal("chaos fired no faults; the equivalence run proved nothing")
			}
		})
	}
}
