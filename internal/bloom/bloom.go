// Package bloom implements the small per-block bloom filters that appear in
// the SmartIndex schema of paper Fig. 6 ("range bloom"): a summary of a
// column chunk's values that lets equality predicates be proven all-false
// without touching the data, complementing the min/max range metadata.
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size bloom filter with k hash functions derived from
// one 64-bit FNV hash (Kirsch–Mitzenmacher double hashing).
type Filter struct {
	bits []uint64
	m    uint64 // bit count
	k    uint32
}

// New sizes a filter for n expected items at roughly the given false
// positive rate (clamped to a sane range).
func New(n int, fpr float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fpr <= 0 || fpr >= 1 {
		fpr = 0.01
	}
	mFloat := -float64(n) * math.Log(fpr) / (math.Ln2 * math.Ln2)
	m := uint64(mFloat)
	if m < 64 {
		m = 64
	}
	m = (m + 63) / 64 * 64
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{bits: make([]uint64, m/64), m: m, k: k}
}

func (f *Filter) hash(data []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(data)
	h1 := h.Sum64()
	// Second independent hash: re-hash the first.
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], h1)
	h.Reset()
	h.Write(buf[:])
	return h1, h.Sum64()
}

// Add inserts a value.
func (f *Filter) Add(data []byte) {
	h1, h2 := f.hash(data)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether the value may have been inserted; false means
// certainly absent.
func (f *Filter) MayContain(data []byte) bool {
	h1, h2 := f.hash(data)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes returns the in-memory footprint.
func (f *Filter) SizeBytes() int { return 8*len(f.bits) + 16 }

// Marshal serializes the filter: uvarint m, uvarint k, words LE.
func (f *Filter) Marshal() []byte {
	out := binary.AppendUvarint(nil, f.m)
	out = binary.AppendUvarint(out, uint64(f.k))
	for _, w := range f.bits {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out
}

// Unmarshal parses the form produced by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	m, off := binary.Uvarint(data)
	if off <= 0 || m == 0 || m%64 != 0 {
		return nil, fmt.Errorf("bloom: bad bit count")
	}
	data = data[off:]
	k, off := binary.Uvarint(data)
	if off <= 0 || k == 0 || k > 64 {
		return nil, fmt.Errorf("bloom: bad hash count")
	}
	data = data[off:]
	words := int(m / 64)
	if len(data) < words*8 {
		return nil, fmt.Errorf("bloom: truncated filter")
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: uint32(k)}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return f, nil
}
