package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Errorf("false positive rate = %v, want <= 0.05", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(100, 0.01)
	if f.MayContain([]byte("anything")) {
		t.Error("empty filter should reject")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(64, 0.01)
	for i := 0; i < 64; i++ {
		f.Add([]byte{byte(i), byte(i * 3)})
	}
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if !got.MayContain([]byte{byte(i), byte(i * 3)}) {
			t.Fatalf("round trip lost key %d", i)
		}
	}
	if got.SizeBytes() != f.SizeBytes() {
		t.Errorf("size changed: %d vs %d", got.SizeBytes(), f.SizeBytes())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Unmarshal([]byte{63}); err == nil { // m not multiple of 64
		t.Error("bad m should fail")
	}
	f := New(10, 0.01)
	data := f.Marshal()
	if _, err := Unmarshal(data[:len(data)-2]); err == nil {
		t.Error("truncated should fail")
	}
}

func TestDegenerateParams(t *testing.T) {
	for _, f := range []*Filter{New(0, 0.01), New(10, 0), New(10, 2)} {
		f.Add([]byte("x"))
		if !f.MayContain([]byte("x")) {
			t.Error("degenerate params must still work")
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	fn := func(keys [][]byte) bool {
		f := New(len(keys)+1, 0.01)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
