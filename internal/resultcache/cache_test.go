package resultcache

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

func testCatalog() plan.MapCatalog {
	logs := types.MustSchema(
		types.Field{Name: "url", Type: types.String},
		types.Field{Name: "clicks", Type: types.Int64},
		types.Field{Name: "pos", Type: types.Int64},
	)
	dims := types.MustSchema(
		types.Field{Name: "url", Type: types.String},
		types.Field{Name: "site", Type: types.String},
	)
	return plan.MapCatalog{
		"logs": &plan.TableMeta{Name: "logs", Schema: logs, Partitions: []plan.PartitionMeta{
			{Path: "/hdfs/logs/p0", Rows: 100, Bytes: 1000},
		}},
		"sites": &plan.TableMeta{Name: "sites", Schema: dims, Partitions: []plan.PartitionMeta{
			{Path: "/ffs/sites/p0", Rows: 10, Bytes: 100},
		}},
	}
}

func planSQL(t *testing.T, sql string) *plan.PhysicalPlan {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	p, err := plan.Plan(stmt, testCatalog())
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return p
}

// selectResult builds a (url, clicks) result.
func selectResult(rows ...[2]interface{}) *exec.Result {
	res := &exec.Result{
		Columns:        []string{"url", "clicks"},
		Types:          []types.Type{types.String, types.Int64},
		ProcessedRatio: 1,
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []types.Value{
			types.NewString(r[0].(string)), types.NewInt(int64(r[1].(int))),
		})
	}
	return res
}

func newTestCache(capacity int64, opts ...func(*Config)) (*Cache, *time.Time) {
	now := time.Unix(1_700_000_000, 0)
	cfg := Config{CapacityBytes: capacity, Now: func() time.Time { return now }}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg), &now
}

func TestNilCacheIsNoOp(t *testing.T) {
	var c *Cache
	p := planSQL(t, "SELECT url, clicks FROM logs WHERE clicks > 10")
	c.Store(p, "a", selectResult([2]interface{}{"u", 11}))
	if res, out := c.Lookup(p); res != nil || out != Miss {
		t.Fatal("nil cache must miss")
	}
	c.InvalidateTable("logs")
	if s := c.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if New(Config{}) != nil {
		t.Fatal("zero capacity must yield a nil cache")
	}
}

func TestExactHitAndIsolation(t *testing.T) {
	c, _ := newTestCache(1 << 20)
	p := planSQL(t, "SELECT url, clicks FROM logs WHERE clicks > 10")
	orig := selectResult([2]interface{}{"u", 11})
	c.Store(p, "a", orig)
	orig.Rows[0][1] = types.NewInt(999) // caller mutation must not leak in

	res, out := c.Lookup(p)
	if out != Hit || res == nil {
		t.Fatalf("lookup = %v, %v", res, out)
	}
	if res.Rows[0][1].I != 11 {
		t.Fatalf("stored rows must be isolated from the caller: %v", res.Rows[0])
	}
	res.Rows[0][1] = types.NewInt(-1) // served copy mutation must not leak back
	res2, _ := c.Lookup(p)
	if res2.Rows[0][1].I != 11 {
		t.Fatal("served rows must be isolated per lookup")
	}
	if s := c.Snapshot(); s.Hits != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSubsumptionReuse(t *testing.T) {
	c, _ := newTestCache(1 << 20)
	wide := planSQL(t, "SELECT url, clicks FROM logs WHERE clicks > 10")
	c.Store(wide, "a", selectResult(
		[2]interface{}{"a", 11}, [2]interface{}{"b", 25}, [2]interface{}{"c", 40}))

	narrow := planSQL(t, "SELECT url, clicks FROM logs WHERE clicks > 20")
	res, out := c.Lookup(narrow)
	if out != SubsumedHit || res == nil {
		t.Fatalf("narrow lookup = %v, %v", res, out)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].S != "b" || res.Rows[1][0].S != "c" {
		t.Fatalf("re-filtered rows = %v", res.Rows)
	}

	// The reverse direction must NOT reuse: cached `> 20` cannot answer `> 10`.
	c2, _ := newTestCache(1 << 20)
	c2.Store(narrow, "a", selectResult([2]interface{}{"b", 25}))
	if _, out := c2.Lookup(wide); out != Miss {
		t.Fatalf("wider query served from narrower entry: %v", out)
	}
}

func TestSubsumptionOperators(t *testing.T) {
	cases := []struct {
		cached, query string
		want          Outcome
	}{
		{"clicks >= 10", "clicks >= 15", SubsumedHit},
		{"clicks >= 15", "clicks >= 10", Miss},
		{"clicks < 50", "clicks < 20", SubsumedHit},
		{"clicks <= 20", "clicks <= 50", Miss},
		{"url CONTAINS 'b'", "url CONTAINS 'abc'", SubsumedHit},
		{"url CONTAINS 'abc'", "url CONTAINS 'b'", Miss},
		{"clicks = 10", "clicks = 11", Miss},
		{"clicks != 10", "clicks != 11", Miss},
	}
	for _, tc := range cases {
		c, _ := newTestCache(1 << 20)
		cp := planSQL(t, "SELECT url, clicks FROM logs WHERE "+tc.cached)
		c.Store(cp, "a", selectResult([2]interface{}{"abcd", 17}))
		qp := planSQL(t, "SELECT url, clicks FROM logs WHERE "+tc.query)
		if _, out := c.Lookup(qp); out != tc.want {
			t.Errorf("cached %q query %q: outcome %v, want %v", tc.cached, tc.query, out, tc.want)
		}
	}
}

func TestIneligibleShapesExactOnly(t *testing.T) {
	c, _ := newTestCache(1 << 20)
	agg := planSQL(t, "SELECT COUNT(*) AS n FROM logs WHERE clicks > 10")
	res := &exec.Result{Columns: []string{"n"}, Types: []types.Type{types.Int64},
		Rows: [][]types.Value{{types.NewInt(3)}}, ProcessedRatio: 1}
	c.Store(agg, "a", res)
	if _, out := c.Lookup(agg); out != Hit {
		t.Fatal("aggregates must still serve exact hits")
	}
	agg2 := planSQL(t, "SELECT COUNT(*) AS n FROM logs WHERE clicks > 20")
	if _, out := c.Lookup(agg2); out != Miss {
		t.Fatal("aggregates must never serve subsumed hits")
	}
}

func TestTTLExpiry(t *testing.T) {
	c, now := newTestCache(1<<20, func(cfg *Config) { cfg.TTL = time.Minute })
	p := planSQL(t, "SELECT url, clicks FROM logs WHERE clicks > 10")
	c.Store(p, "a", selectResult([2]interface{}{"u", 11}))
	if _, out := c.Lookup(p); out != Hit {
		t.Fatal("fresh entry should hit")
	}
	*now = now.Add(2 * time.Minute)
	if _, out := c.Lookup(p); out != Miss {
		t.Fatal("expired entry should miss")
	}
	if s := c.Snapshot(); s.Expirations != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvalidateTable(t *testing.T) {
	c, _ := newTestCache(1 << 20)
	pLogs := planSQL(t, "SELECT url, clicks FROM logs WHERE clicks > 10")
	pJoin := planSQL(t, "SELECT site FROM logs, sites WHERE logs.url = sites.url")
	c.Store(pLogs, "a", selectResult([2]interface{}{"u", 11}))
	c.Store(pJoin, "a", &exec.Result{Columns: []string{"site"}, Types: []types.Type{types.String}, ProcessedRatio: 1})

	c.InvalidateTable("sites")
	if _, out := c.Lookup(pLogs); out != Hit {
		t.Fatal("unrelated entry must survive")
	}
	if _, out := c.Lookup(pJoin); out != Miss {
		t.Fatal("join entry reading the table must be dropped")
	}
	c.InvalidateTable("logs")
	if _, out := c.Lookup(pLogs); out != Miss {
		t.Fatal("fact entry must be dropped")
	}
	if s := c.Snapshot(); s.Invalidations != 2 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEvictionAndShadow(t *testing.T) {
	// Budget fits roughly two entries of this size.
	one := selectResult([2]interface{}{"uuuuuuuu", 1})
	per := resultBytes(one)
	c, _ := newTestCache(2*per + per/2)

	plans := make([]*plan.PhysicalPlan, 3)
	for i := range plans {
		plans[i] = planSQL(t, fmt.Sprintf("SELECT url, clicks FROM logs WHERE clicks > %d AND pos = %d", i, i))
		c.Store(plans[i], "a", one)
	}
	// Entry 0 is the LRU victim.
	if _, out := c.Lookup(plans[0]); out != Miss {
		t.Fatal("oldest entry should have been evicted")
	}
	s := c.Snapshot()
	if s.Evictions != 1 || s.ShadowHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Bytes > 2*per+per/2 {
		t.Fatalf("bytes %d over budget", s.Bytes)
	}
	// The miss on a ghost key is the shadow signal.
	if r := c.ShadowHitRatio(); r <= c.HitRatio() {
		t.Fatalf("shadow ratio %v should exceed real ratio %v", r, c.HitRatio())
	}
}

func TestTenantQuota(t *testing.T) {
	one := selectResult([2]interface{}{"uuuuuuuu", 1})
	per := resultBytes(one)
	c, _ := newTestCache(100*per, func(cfg *Config) { cfg.TenantBytes = 2*per + per/2 })

	var plansA []*plan.PhysicalPlan
	for i := 0; i < 3; i++ {
		p := planSQL(t, fmt.Sprintf("SELECT url, clicks FROM logs WHERE clicks > %d AND pos = %d", i, i))
		plansA = append(plansA, p)
		c.Store(p, "tenant-a", one)
	}
	pB := planSQL(t, "SELECT url, clicks FROM logs WHERE pos > 7")
	c.Store(pB, "tenant-b", one)

	// tenant-a exceeded its quota: its own LRU entry went, tenant-b's stayed.
	if _, out := c.Lookup(plansA[0]); out != Miss {
		t.Fatal("tenant-a's oldest entry should be evicted by its quota")
	}
	if _, out := c.Lookup(plansA[2]); out != Hit {
		t.Fatal("tenant-a's newest entry should survive")
	}
	if _, out := c.Lookup(pB); out != Hit {
		t.Fatal("tenant-b must be unaffected by tenant-a's quota")
	}
	// Oversized single results are skipped outright.
	big := selectResult()
	for i := 0; i < 200; i++ {
		big.Rows = append(big.Rows, []types.Value{types.NewString("x"), types.NewInt(1)})
	}
	pBig := planSQL(t, "SELECT url, clicks FROM logs WHERE pos > 8")
	c.Store(pBig, "tenant-b", big)
	if _, out := c.Lookup(pBig); out != Miss {
		t.Fatal("over-quota result must not be cached")
	}
	if s := c.Snapshot(); s.StoreSkips != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStoreReplacesExisting(t *testing.T) {
	c, _ := newTestCache(1 << 20)
	p := planSQL(t, "SELECT url, clicks FROM logs WHERE clicks > 10")
	c.Store(p, "a", selectResult([2]interface{}{"old", 11}))
	c.Store(p, "a", selectResult([2]interface{}{"new", 12}))
	res, out := c.Lookup(p)
	if out != Hit || len(res.Rows) != 1 || res.Rows[0][0].S != "new" {
		t.Fatalf("lookup = %v, %v", res, out)
	}
	if s := c.Snapshot(); s.Entries != 1 {
		t.Fatalf("replacement must not duplicate entries: %+v", s)
	}
}

func TestOutcomeString(t *testing.T) {
	if Miss.String() != "miss" || Hit.String() != "hit" || SubsumedHit.String() != "subsumed" {
		t.Fatal("outcome names are part of the stats/trace contract")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := newTestCache(1 << 16)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				p := planSQL(t, fmt.Sprintf("SELECT url, clicks FROM logs WHERE clicks > %d", i%17))
				switch i % 3 {
				case 0:
					c.Store(p, fmt.Sprintf("t%d", w), selectResult([2]interface{}{"u", 42}))
				case 1:
					c.Lookup(p)
				default:
					c.InvalidateTable("logs")
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
