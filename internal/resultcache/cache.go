// Package resultcache is the master-side semantic result cache. Completed
// query results are stored under their normalized plan fingerprint (shape)
// plus bound-literal key (exact identity). A lookup serves an exact hit
// directly; for subsumption-eligible selects it may also serve a *wider*
// cached result — e.g. `b > 10` answering `b > 20` — by re-filtering the
// cached rows with the new query's own pushed-down predicate.
//
// The cache is bounded by a global byte budget with LRU eviction, per-tenant
// byte quotas (extending the admission controller's multi-tenant story:
// one tenant's bulky results cannot evict the whole fleet's working set),
// a TTL, and table-level invalidation driven by ingest. A ghost list of
// recently evicted keys — same byte budget, keys only — counts the hits a
// cache twice the size would have served, exported as the shadow gauge so
// /metrics answers "would more memory help".
package resultcache

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Outcome classifies one cache lookup.
type Outcome int

// Lookup outcomes.
const (
	// Miss: nothing served; the query must execute.
	Miss Outcome = iota
	// Hit: exact entry (same shape, same literals) served.
	Hit
	// SubsumedHit: a wider cached entry served after re-filtering.
	SubsumedHit
)

// String names the outcome for stats and trace attributes.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case SubsumedHit:
		return "subsumed"
	default:
		return "miss"
	}
}

// Config sizes the cache.
type Config struct {
	// CapacityBytes is the global budget; <= 0 disables the cache.
	CapacityBytes int64
	// TTL bounds entry age; <= 0 means no TTL.
	TTL time.Duration
	// TenantBytes caps any one tenant's share of the budget; <= 0 means
	// no per-tenant cap.
	TenantBytes int64
	// Now is injectable for tests; nil means time.Now.
	Now func() time.Time
	// Events, when set, journals store/evict/invalidate decisions into the
	// flight recorder under site "rescache" (hit/subsumed events are emitted
	// by the master, which knows the query ID).
	Events *events.Recorder
}

// entry is one cached result. Entries live in three structures at once: the
// byKey exact map, the per-shape slice (subsumption scans), and the global
// LRU list.
type entry struct {
	key     string // fingerprint + "\x00" + literalKey
	fp      string
	litKey  string
	lits    []types.Value
	slots   []plan.LitSlot
	tables  []string
	tenant  string
	res     *exec.Result
	bytes   int64
	expires time.Time // zero when no TTL

	prev, next *entry
}

// ghost is an evicted entry's key with its old size — no rows.
type ghost struct {
	key        string
	tables     []string
	bytes      int64
	prev, next *ghost
}

// Cache is safe for concurrent use. All methods are no-ops on a nil
// receiver, so callers need no cache-enabled branches.
type Cache struct {
	cfg Config

	mu          sync.Mutex
	byKey       map[string]*entry
	shapes      map[string][]*entry
	head, tail  *entry // LRU: head = most recent
	bytes       int64
	tenantBytes map[string]int64

	ghosts               map[string]*ghost
	ghostHead, ghostTail *ghost
	ghostBytes           int64

	hits, subsumedHits, misses int64
	evictions, invalidations   int64
	expirations, shadowHits    int64
	storeSkips                 int64
}

// New builds a cache; returns nil when the capacity is zero or negative so
// callers can wire the nil-safe disabled form unconditionally.
func New(cfg Config) *Cache {
	if cfg.CapacityBytes <= 0 {
		return nil
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Cache{
		cfg:         cfg,
		byKey:       make(map[string]*entry),
		shapes:      make(map[string][]*entry),
		tenantBytes: make(map[string]int64),
		ghosts:      make(map[string]*ghost),
	}
}

func entryKey(p *plan.PhysicalPlan) string {
	return p.Fingerprint + "\x00" + p.LiteralKey
}

// Lookup serves the query from cache if possible. The returned result is a
// deep copy the caller owns. Results are shared across tenants: quotas are
// write-side attribution, not read isolation (the master authorizes the
// query against the catalog before it ever consults the cache).
func (c *Cache) Lookup(p *plan.PhysicalPlan) (*exec.Result, Outcome) {
	if c == nil || p == nil {
		return nil, Miss
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.cfg.Now()

	if e, ok := c.byKey[entryKey(p)]; ok {
		if c.expiredLocked(e, t) {
			c.removeLocked(e, &c.expirations)
		} else {
			c.touchLocked(e)
			c.hits++
			return cloneResult(e.res), Hit
		}
	}

	// Subsumption: scan the shape's entries for one whose predicate this
	// query implies, then re-filter its rows with this query's own filter.
	if filter, ok := p.ReuseFilter(); ok {
		for _, e := range c.shapes[p.Fingerprint] {
			if c.expiredLocked(e, t) {
				continue // removed lazily by the next exact lookup or sweep
			}
			if !implies(e.slots, p.Literals, e.lits) {
				continue
			}
			c.touchLocked(e)
			c.subsumedHits++
			out := &exec.Result{
				Columns:        append([]string(nil), e.res.Columns...),
				Types:          append([]types.Type(nil), e.res.Types...),
				ProcessedRatio: e.res.ProcessedRatio,
			}
			for _, row := range e.res.Rows {
				if filter.Match(row) {
					cp := make([]types.Value, len(row))
					copy(cp, row)
					out.Rows = append(out.Rows, cp)
				}
			}
			return out, SubsumedHit
		}
	}

	c.misses++
	if g, ok := c.ghosts[entryKey(p)]; ok {
		// A cache with twice the budget would (likely) still hold this.
		c.shadowHits++
		c.removeGhostLocked(g)
	}
	return nil, Miss
}

// Store caches a completed result under the plan's identity, attributed to
// the tenant. The result is deep-copied; partial or truncated results must
// not be stored (the master gates on that).
func (c *Cache) Store(p *plan.PhysicalPlan, tenant string, res *exec.Result) {
	if c == nil || p == nil || res == nil {
		return
	}
	size := resultBytes(res)
	if size > c.cfg.CapacityBytes || (c.cfg.TenantBytes > 0 && size > c.cfg.TenantBytes) {
		c.mu.Lock()
		c.storeSkips++
		c.mu.Unlock()
		return
	}
	e := &entry{
		key:    entryKey(p),
		fp:     p.Fingerprint,
		litKey: p.LiteralKey,
		lits:   append([]types.Value(nil), p.Literals...),
		slots:  append([]plan.LitSlot(nil), p.ReuseSlots...),
		tables: planTables(p),
		tenant: tenant,
		res:    cloneResult(res),
		bytes:  size,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.TTL > 0 {
		e.expires = c.cfg.Now().Add(c.cfg.TTL)
	}
	if old, ok := c.byKey[e.key]; ok {
		c.removeLocked(old, nil)
	}
	if g, ok := c.ghosts[e.key]; ok {
		c.removeGhostLocked(g)
	}
	c.byKey[e.key] = e
	c.shapes[e.fp] = append(c.shapes[e.fp], e)
	c.pushFrontLocked(e)
	c.bytes += e.bytes
	c.tenantBytes[e.tenant] += e.bytes

	// Tenant quota first (evict the tenant's own LRU tail), then the global
	// budget.
	if c.cfg.TenantBytes > 0 {
		for c.tenantBytes[e.tenant] > c.cfg.TenantBytes {
			victim := c.tailOfTenantLocked(e.tenant, e)
			if victim == nil {
				break
			}
			c.evictLocked(victim)
		}
	}
	for c.bytes > c.cfg.CapacityBytes && c.tail != nil {
		c.evictLocked(c.tail)
	}
	c.cfg.Events.Emit("rescache", events.CacheStore, "", -1,
		fmt.Sprintf("%s bytes=%d", e.fp, e.bytes))
}

// InvalidateTable drops every entry (and ghost) whose query read the table.
// Called by the master on catalog changes and by ingest when partitions are
// written or rewritten.
func (c *Cache) InvalidateTable(table string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for e := c.head; e != nil; {
		next := e.next
		if containsStr(e.tables, table) {
			c.removeLocked(e, &c.invalidations)
			dropped++
		}
		e = next
	}
	if dropped > 0 {
		c.cfg.Events.Emit("rescache", events.CacheInvalidate, "", -1,
			fmt.Sprintf("%s entries=%d", table, dropped))
	}
	for g := c.ghostHead; g != nil; {
		next := g.next
		if containsStr(g.tables, table) {
			c.removeGhostLocked(g)
		}
		g = next
	}
}

// Stats is a snapshot of the cache's counters and occupancy.
type Stats struct {
	Hits, SubsumedHits, Misses int64
	Evictions, Invalidations   int64
	Expirations, ShadowHits    int64
	StoreSkips                 int64
	Bytes, GhostBytes          int64
	Entries, Ghosts            int
}

// Snapshot returns current counters.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, SubsumedHits: c.subsumedHits, Misses: c.misses,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Expirations: c.expirations, ShadowHits: c.shadowHits,
		StoreSkips: c.storeSkips,
		Bytes:      c.bytes, GhostBytes: c.ghostBytes,
		Entries: len(c.byKey), Ghosts: len(c.ghosts),
	}
}

// ShadowHitRatio estimates the hit ratio a cache at twice the byte budget
// would reach: (real hits + ghost hits) / lookups. Returns 0 with no
// lookups yet.
func (c *Cache) ShadowHitRatio() float64 {
	s := c.Snapshot()
	total := s.Hits + s.SubsumedHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.SubsumedHits+s.ShadowHits) / float64(total)
}

// HitRatio is the real hit ratio (exact + subsumed over lookups).
func (c *Cache) HitRatio() float64 {
	s := c.Snapshot()
	total := s.Hits + s.SubsumedHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.SubsumedHits) / float64(total)
}

// ---- internals (all require c.mu) ----

func (c *Cache) expiredLocked(e *entry, t time.Time) bool {
	return !e.expires.IsZero() && t.After(e.expires)
}

func (c *Cache) touchLocked(e *entry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

func (c *Cache) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// removeLocked detaches the entry from every structure; counter (when non
// nil) is incremented. No ghost is left behind — use evictLocked for
// capacity evictions that should feed the shadow gauge.
func (c *Cache) removeLocked(e *entry, counter *int64) {
	c.unlinkLocked(e)
	delete(c.byKey, e.key)
	c.dropShapeLocked(e)
	c.bytes -= e.bytes
	c.tenantBytes[e.tenant] -= e.bytes
	if c.tenantBytes[e.tenant] <= 0 {
		delete(c.tenantBytes, e.tenant)
	}
	if counter != nil {
		*counter++
	}
}

// evictLocked removes for capacity and records a ghost.
func (c *Cache) evictLocked(e *entry) {
	c.removeLocked(e, &c.evictions)
	c.cfg.Events.Emit("rescache", events.CacheEvict, "", -1, e.fp)
	g := &ghost{key: e.key, tables: e.tables, bytes: e.bytes}
	c.ghosts[g.key] = g
	g.next = c.ghostHead
	if c.ghostHead != nil {
		c.ghostHead.prev = g
	}
	c.ghostHead = g
	if c.ghostTail == nil {
		c.ghostTail = g
	}
	c.ghostBytes += g.bytes
	// Ghost budget equals the main budget: main + ghost together model a
	// cache at 2x capacity.
	for c.ghostBytes > c.cfg.CapacityBytes && c.ghostTail != nil {
		c.removeGhostLocked(c.ghostTail)
	}
}

func (c *Cache) removeGhostLocked(g *ghost) {
	if g.prev != nil {
		g.prev.next = g.next
	} else {
		c.ghostHead = g.next
	}
	if g.next != nil {
		g.next.prev = g.prev
	} else {
		c.ghostTail = g.prev
	}
	g.prev, g.next = nil, nil
	delete(c.ghosts, g.key)
	c.ghostBytes -= g.bytes
}

func (c *Cache) dropShapeLocked(e *entry) {
	list := c.shapes[e.fp]
	for i, x := range list {
		if x == e {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(c.shapes, e.fp)
	} else {
		c.shapes[e.fp] = list
	}
}

// tailOfTenantLocked finds the least-recently-used entry of the tenant,
// excluding the just-inserted one.
func (c *Cache) tailOfTenantLocked(tenant string, skip *entry) *entry {
	for e := c.tail; e != nil; e = e.prev {
		if e != skip && e.tenant == tenant {
			return e
		}
	}
	return nil
}

// implies reports whether the new literal vector's predicate implies the
// cached one under the shared slot classification — i.e. every row the new
// query accepts, the cached query accepted too.
func implies(slots []plan.LitSlot, newLits, oldLits []types.Value) bool {
	if len(newLits) != len(oldLits) || len(slots) != len(newLits) {
		return false
	}
	for i, s := range slots {
		nv, ov := newLits[i], oldLits[i]
		if !s.Flexible {
			if !types.Equal(nv, ov) || nv.T != ov.T {
				return false
			}
			continue
		}
		switch s.Op {
		case sqlparser.OpGt, sqlparser.OpGe:
			cmp, err := types.Compare(nv, ov)
			if err != nil || cmp < 0 {
				return false
			}
		case sqlparser.OpLt, sqlparser.OpLe:
			cmp, err := types.Compare(nv, ov)
			if err != nil || cmp > 0 {
				return false
			}
		case sqlparser.OpContains:
			// new CONTAINS "abc" implies cached CONTAINS "b".
			if nv.T != types.String || ov.T != types.String || !strings.Contains(nv.S, ov.S) {
				return false
			}
		default:
			// Eq, Ne and anything unexpected: exact match only.
			if !types.Equal(nv, ov) || nv.T != ov.T {
				return false
			}
		}
	}
	return true
}

func planTables(p *plan.PhysicalPlan) []string {
	tables := []string{p.Fact().Meta.Name}
	for _, d := range p.Dims {
		tables = append(tables, d.Table.Meta.Name)
	}
	return tables
}

func cloneResult(r *exec.Result) *exec.Result {
	out := &exec.Result{
		Columns:        append([]string(nil), r.Columns...),
		Types:          append([]types.Type(nil), r.Types...),
		Partial:        r.Partial,
		ProcessedRatio: r.ProcessedRatio,
	}
	if r.Rows != nil {
		out.Rows = make([][]types.Value, len(r.Rows))
		for i, row := range r.Rows {
			cp := make([]types.Value, len(row))
			copy(cp, row)
			out.Rows[i] = cp
		}
	}
	return out
}

// resultBytes estimates the in-memory footprint of a result.
func resultBytes(r *exec.Result) int64 {
	const valueOverhead = 48 // tagged-union Value + slice bookkeeping
	size := int64(64)
	for _, col := range r.Columns {
		size += int64(len(col)) + 16
	}
	for _, row := range r.Rows {
		size += 24
		for _, v := range row {
			size += valueOverhead + int64(len(v.S))
		}
	}
	return size
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
