// Package sim provides the cluster cost model that stands in for the
// paper's 4,000-node testbed (DESIGN.md §2). Storage plugins and the
// transport charge simulated costs (bytes moved per device class, operation
// latencies) to a Bill; the harness converts bills into simulated wall-clock
// response times by computing the critical path across the execution tree.
//
// The defaults mirror the paper's hardware: 4-core 2.4 GHz Xeon, 3 TB SATA
// disks (~120 MB/s sequential), 500 GB SSD (~400 MB/s), 1 Gbps full-duplex
// Ethernet (~110 MB/s effective), and millisecond-scale RPC latency.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// DeviceClass labels where bytes were read from or sent over.
type DeviceClass int

// Device classes charged by the storage and transport layers.
const (
	// DeviceHDD is a SATA spinning disk (local FS, HDFS datanode).
	DeviceHDD DeviceClass = iota
	// DeviceSSD is the SSD cache tier.
	DeviceSSD
	// DeviceMemory is an in-memory read (SmartIndex hit, memfs).
	DeviceMemory
	// DeviceNetwork is bytes moved between servers.
	DeviceNetwork
	// DeviceCold is the Fatman cold-archive tier (volunteer machines,
	// throttled bandwidth, high seek latency).
	DeviceCold
	numDevices
)

// String returns the device class name.
func (d DeviceClass) String() string {
	switch d {
	case DeviceHDD:
		return "hdd"
	case DeviceSSD:
		return "ssd"
	case DeviceMemory:
		return "mem"
	case DeviceNetwork:
		return "net"
	case DeviceCold:
		return "cold"
	default:
		return fmt.Sprintf("device(%d)", int(d))
	}
}

// CostModel converts bytes and operations into simulated time.
type CostModel struct {
	// BandwidthBytesPerSec per device class.
	Bandwidth [numDevices]float64
	// SeekLatency charged once per read operation, per device class.
	SeekLatency [numDevices]time.Duration
	// RPCLatency charged per RPC hop.
	RPCLatency time.Duration
	// CPUBytesPerSec models predicate-evaluation throughput per core,
	// charged per byte actually scanned and filtered.
	CPUBytesPerSec float64
}

// DefaultCostModel mirrors the paper's per-node hardware (§VI-A).
func DefaultCostModel() *CostModel {
	m := &CostModel{
		RPCLatency:     500 * time.Microsecond,
		CPUBytesPerSec: 600e6, // predicate eval over packed columns
	}
	m.Bandwidth[DeviceHDD] = 120e6
	m.Bandwidth[DeviceSSD] = 400e6
	m.Bandwidth[DeviceMemory] = 8e9
	m.Bandwidth[DeviceNetwork] = 110e6 // 1 Gbps effective
	m.Bandwidth[DeviceCold] = 30e6     // throttled volunteer nodes
	m.SeekLatency[DeviceHDD] = 8 * time.Millisecond
	m.SeekLatency[DeviceSSD] = 100 * time.Microsecond
	m.SeekLatency[DeviceMemory] = 0
	m.SeekLatency[DeviceNetwork] = 0
	m.SeekLatency[DeviceCold] = 40 * time.Millisecond
	return m
}

// ReadCost returns the simulated time to read n bytes from a device,
// including one seek.
func (m *CostModel) ReadCost(d DeviceClass, n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	bw := m.Bandwidth[d]
	if bw <= 0 {
		return m.SeekLatency[d]
	}
	return m.SeekLatency[d] + time.Duration(float64(n)/bw*float64(time.Second))
}

// TransferCost returns the simulated time to move n bytes over the network
// across `hops` switch hops (one RPC latency per hop).
func (m *CostModel) TransferCost(n int64, hops int) time.Duration {
	if hops < 1 {
		hops = 1
	}
	return time.Duration(hops)*m.RPCLatency +
		time.Duration(float64(n)/m.Bandwidth[DeviceNetwork]*float64(time.Second))
}

// ScanCost returns the simulated CPU time to evaluate predicates over n
// bytes of column data.
func (m *CostModel) ScanCost(n int64) time.Duration {
	if m.CPUBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.CPUBytesPerSec * float64(time.Second))
}

// Bill accumulates simulated costs. Bills are cheap and concurrency-safe;
// every task execution gets one, and the scheduler folds task bills into a
// per-query critical path.
type Bill struct {
	mu    sync.Mutex
	bytes [numDevices]int64
	ops   [numDevices]int64
	time  time.Duration
	// Per-category breakdown of time, feeding the trace spans behind
	// EXPLAIN ANALYZE: read time per device class, network transfer time,
	// CPU scan time, and raw charged durations.
	devTime      [numDevices]time.Duration
	transferTime time.Duration
	scanTime     time.Duration
	otherTime    time.Duration
	spillBytes   int64
	spillTime    time.Duration
}

// NewBill returns an empty bill.
func NewBill() *Bill { return &Bill{} }

// ChargeRead records a read of n bytes from device d under model m.
func (b *Bill) ChargeRead(m *CostModel, d DeviceClass, n int64) {
	cost := m.ReadCost(d, n)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bytes[d] += n
	b.ops[d]++
	b.time += cost
	b.devTime[d] += cost
}

// ChargeScan records CPU predicate evaluation over n bytes.
func (b *Bill) ChargeScan(m *CostModel, n int64) {
	cost := m.ScanCost(n)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.time += cost
	b.scanTime += cost
}

// ChargeTransfer records a network transfer of n bytes over hops hops.
func (b *Bill) ChargeTransfer(m *CostModel, n int64, hops int) {
	cost := m.TransferCost(n, hops)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bytes[DeviceNetwork] += n
	b.ops[DeviceNetwork]++
	b.time += cost
	b.transferTime += cost
}

// ChargeSpill records an operator spilling n bytes to device d under its
// memory grant (grace-hash partitions written out and read back). Spill I/O
// is tracked apart from plain reads so EXPLAIN ANALYZE can attribute it, and
// SpillBytes lets tests assert billed bytes match bytes actually written.
func (b *Bill) ChargeSpill(m *CostModel, d DeviceClass, n int64) {
	cost := m.ReadCost(d, n)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bytes[d] += n
	b.ops[d]++
	b.time += cost
	b.devTime[d] += cost
	b.spillBytes += n
	b.spillTime += cost
}

// ChargeDuration adds raw simulated time (e.g. queueing delay).
func (b *Bill) ChargeDuration(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.time += d
	b.otherTime += d
}

// Add folds another bill's charges into b (serial composition).
func (b *Bill) Add(other *Bill) {
	if other == nil || other == b {
		return
	}
	other.mu.Lock()
	bytes, ops, t := other.bytes, other.ops, other.time
	devTime, transfer, scan, raw := other.devTime, other.transferTime, other.scanTime, other.otherTime
	spillB, spillT := other.spillBytes, other.spillTime
	other.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.bytes {
		b.bytes[i] += bytes[i]
		b.ops[i] += ops[i]
		b.devTime[i] += devTime[i]
	}
	b.time += t
	b.transferTime += transfer
	b.scanTime += scan
	b.otherTime += raw
	b.spillBytes += spillB
	b.spillTime += spillT
}

// AddParallel folds bills of concurrently executed workers into b — the
// intra-task parallel composition of the leaf scan pipeline. Resource
// totals (bytes, ops and the per-category time breakdowns) accumulate
// across all children, since every byte was really moved and every CPU
// cycle really spent; elapsed simulated time advances only by the
// children's critical path (the slowest worker), so a task split across N
// workers models real parallel speedup instead of summing serially. As
// with any parallel profile, the category breakdowns are resource time and
// may sum to more than Time().
func (b *Bill) AddParallel(children ...*Bill) {
	times := make([]time.Duration, 0, len(children))
	for _, c := range children {
		if c == nil || c == b {
			continue
		}
		c.mu.Lock()
		bytes, ops, t := c.bytes, c.ops, c.time
		devTime, transfer, scan, raw := c.devTime, c.transferTime, c.scanTime, c.otherTime
		spillB, spillT := c.spillBytes, c.spillTime
		c.mu.Unlock()
		times = append(times, t)
		b.mu.Lock()
		for i := range b.bytes {
			b.bytes[i] += bytes[i]
			b.ops[i] += ops[i]
			b.devTime[i] += devTime[i]
		}
		b.transferTime += transfer
		b.scanTime += scan
		b.otherTime += raw
		b.spillBytes += spillB
		b.spillTime += spillT
		b.mu.Unlock()
	}
	elapsed := CriticalPath(0, times...)
	b.mu.Lock()
	b.time += elapsed
	b.mu.Unlock()
}

// Time returns the accumulated simulated time.
func (b *Bill) Time() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.time
}

// Bytes returns the bytes charged to device d.
func (b *Bill) Bytes(d DeviceClass) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes[d]
}

// Ops returns the operation count charged to device d.
func (b *Bill) Ops(d DeviceClass) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ops[d]
}

// TimeOf returns the read time charged against device d.
func (b *Bill) TimeOf(d DeviceClass) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.devTime[d]
}

// TransferTime returns the accumulated network-transfer time.
func (b *Bill) TransferTime() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transferTime
}

// ScanTime returns the accumulated CPU predicate-evaluation time.
func (b *Bill) ScanTime() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.scanTime
}

// OtherTime returns raw durations charged via ChargeDuration.
func (b *Bill) OtherTime() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.otherTime
}

// SpillBytes returns the bytes written by operator spills.
func (b *Bill) SpillBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spillBytes
}

// SpillTime returns the simulated time charged to operator spill I/O.
func (b *Bill) SpillTime() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spillTime
}

// Reset zeroes the bill.
func (b *Bill) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bytes = [numDevices]int64{}
	b.ops = [numDevices]int64{}
	b.time = 0
	b.devTime = [numDevices]time.Duration{}
	b.transferTime = 0
	b.scanTime = 0
	b.otherTime = 0
	b.spillBytes = 0
	b.spillTime = 0
}

// CriticalPath returns the simulated response time of a fan-out stage:
// the maximum of the children's times plus the parent's own time. This is
// how the harness composes per-leaf bills through stem servers up to the
// master (paper Fig. 3: results are summarized bottom-up).
func CriticalPath(parent time.Duration, children ...time.Duration) time.Duration {
	max := time.Duration(0)
	for _, c := range children {
		if c > max {
			max = c
		}
	}
	return parent + max
}
