package sim

import (
	"sync"
	"testing"
	"time"
)

func TestDeviceClassString(t *testing.T) {
	want := map[DeviceClass]string{
		DeviceHDD: "hdd", DeviceSSD: "ssd", DeviceMemory: "mem",
		DeviceNetwork: "net", DeviceCold: "cold",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), s)
		}
	}
	if DeviceClass(99).String() != "device(99)" {
		t.Error("unknown device string")
	}
}

func TestReadCostOrdering(t *testing.T) {
	m := DefaultCostModel()
	n := int64(64 << 20)
	hdd := m.ReadCost(DeviceHDD, n)
	ssd := m.ReadCost(DeviceSSD, n)
	mem := m.ReadCost(DeviceMemory, n)
	cold := m.ReadCost(DeviceCold, n)
	if !(mem < ssd && ssd < hdd && hdd < cold) {
		t.Errorf("device cost ordering violated: mem=%v ssd=%v hdd=%v cold=%v", mem, ssd, hdd, cold)
	}
}

func TestReadCostNegativeBytes(t *testing.T) {
	m := DefaultCostModel()
	if got := m.ReadCost(DeviceHDD, -5); got != m.SeekLatency[DeviceHDD] {
		t.Errorf("negative bytes cost = %v", got)
	}
}

func TestReadCostZeroBandwidth(t *testing.T) {
	m := DefaultCostModel()
	m.Bandwidth[DeviceHDD] = 0
	if got := m.ReadCost(DeviceHDD, 100); got != m.SeekLatency[DeviceHDD] {
		t.Errorf("zero bandwidth cost = %v", got)
	}
}

func TestTransferCostHops(t *testing.T) {
	m := DefaultCostModel()
	one := m.TransferCost(0, 1)
	three := m.TransferCost(0, 3)
	if three != 3*one {
		t.Errorf("hop scaling: 1=%v 3=%v", one, three)
	}
	if m.TransferCost(0, 0) != one {
		t.Error("hops<1 should clamp to 1")
	}
}

func TestScanCost(t *testing.T) {
	m := DefaultCostModel()
	if m.ScanCost(0) != 0 {
		t.Error("zero bytes should cost 0")
	}
	if m.ScanCost(int64(m.CPUBytesPerSec)) != time.Second {
		t.Errorf("1s of bytes = %v", m.ScanCost(int64(m.CPUBytesPerSec)))
	}
	m.CPUBytesPerSec = 0
	if m.ScanCost(100) != 0 {
		t.Error("zero CPU rate should cost 0")
	}
}

func TestBillAccumulation(t *testing.T) {
	m := DefaultCostModel()
	b := NewBill()
	b.ChargeRead(m, DeviceHDD, 1000)
	b.ChargeRead(m, DeviceHDD, 2000)
	b.ChargeTransfer(m, 500, 2)
	b.ChargeScan(m, 3000)
	b.ChargeDuration(time.Millisecond)
	if b.Bytes(DeviceHDD) != 3000 || b.Ops(DeviceHDD) != 2 {
		t.Errorf("hdd = %d bytes %d ops", b.Bytes(DeviceHDD), b.Ops(DeviceHDD))
	}
	if b.Bytes(DeviceNetwork) != 500 {
		t.Errorf("net bytes = %d", b.Bytes(DeviceNetwork))
	}
	want := m.ReadCost(DeviceHDD, 1000) + m.ReadCost(DeviceHDD, 2000) +
		m.TransferCost(500, 2) + m.ScanCost(3000) + time.Millisecond
	if b.Time() != want {
		t.Errorf("Time = %v, want %v", b.Time(), want)
	}
}

func TestBillAdd(t *testing.T) {
	m := DefaultCostModel()
	a, b := NewBill(), NewBill()
	a.ChargeRead(m, DeviceSSD, 100)
	b.ChargeRead(m, DeviceSSD, 200)
	a.Add(b)
	if a.Bytes(DeviceSSD) != 300 || a.Ops(DeviceSSD) != 2 {
		t.Errorf("after Add: %d bytes %d ops", a.Bytes(DeviceSSD), a.Ops(DeviceSSD))
	}
	// Self-add and nil-add are no-ops.
	before := a.Time()
	a.Add(a)
	a.Add(nil)
	if a.Time() != before {
		t.Error("self/nil Add should not change the bill")
	}
}

func TestBillReset(t *testing.T) {
	m := DefaultCostModel()
	b := NewBill()
	b.ChargeRead(m, DeviceHDD, 100)
	b.Reset()
	if b.Time() != 0 || b.Bytes(DeviceHDD) != 0 || b.Ops(DeviceHDD) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestBillConcurrent(t *testing.T) {
	m := DefaultCostModel()
	b := NewBill()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.ChargeRead(m, DeviceMemory, 10)
			}
		}()
	}
	wg.Wait()
	if b.Bytes(DeviceMemory) != 8000 || b.Ops(DeviceMemory) != 800 {
		t.Errorf("concurrent bill: %d bytes %d ops", b.Bytes(DeviceMemory), b.Ops(DeviceMemory))
	}
}

func TestCriticalPath(t *testing.T) {
	got := CriticalPath(time.Second, 2*time.Second, 5*time.Second, time.Second)
	if got != 6*time.Second {
		t.Errorf("CriticalPath = %v", got)
	}
	if CriticalPath(time.Second) != time.Second {
		t.Error("no children should return parent time")
	}
}

func TestAddParallel(t *testing.T) {
	m := DefaultCostModel()
	parent := NewBill()
	parent.ChargeDuration(time.Second) // work done before the fan-out

	slow, fast := NewBill(), NewBill()
	slow.ChargeDuration(4 * time.Second)
	slow.ChargeRead(m, DeviceHDD, 1000)
	fast.ChargeDuration(1 * time.Second)
	fast.ChargeRead(m, DeviceHDD, 500)
	fast.ChargeScan(m, 600)

	slowTime, fastTime := slow.Time(), fast.Time()
	parent.AddParallel(slow, fast, nil)

	// Elapsed time advances by the critical path (the slowest worker) on
	// top of the parent's own time.
	want := time.Second + slowTime
	if got := parent.Time(); got != want {
		t.Errorf("parallel time = %v, want %v (slow=%v fast=%v)", got, want, slowTime, fastTime)
	}
	// Resource totals sum across workers: every byte really moved.
	if got := parent.Bytes(DeviceHDD); got != 1500 {
		t.Errorf("parallel bytes = %d, want 1500", got)
	}
	if got := parent.Ops(DeviceHDD); got != 2 {
		t.Errorf("parallel ops = %d, want 2", got)
	}
	if parent.ScanTime() != fast.ScanTime() {
		t.Errorf("scan time %v not carried over", fast.ScanTime())
	}
	// Category breakdowns are resource time and may exceed Time().
	if parent.OtherTime() != 6*time.Second {
		t.Errorf("other time = %v, want 6s", parent.OtherTime())
	}

	// Degenerate compositions: no children is a no-op, a single child
	// behaves like serial Add.
	solo := NewBill()
	solo.AddParallel()
	if solo.Time() != 0 {
		t.Errorf("empty AddParallel advanced time to %v", solo.Time())
	}
	one := NewBill()
	one.AddParallel(fast)
	if one.Time() != fastTime {
		t.Errorf("single-child AddParallel = %v, want %v", one.Time(), fastTime)
	}
}
