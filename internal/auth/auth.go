// Package auth implements Feisu's authentication and authorization layer
// (paper §V-A): token-based single-sign-on standing in for the X.509/PAM
// machinery of the production system, per-storage-domain access control
// with credential mapping ("mapping their authentication information to
// running job credential"), and the per-user quotas enforced by the
// master's Entry Guard (§III-C: "checks user identity, accessed resource
// right and quota before submitting a query").
package auth

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the authorization layer.
var (
	ErrBadToken      = errors.New("auth: unknown or revoked token")
	ErrDenied        = errors.New("auth: access denied")
	ErrQuotaExceeded = errors.New("auth: quota exceeded")
)

// Credential identifies an authenticated principal inside a running job.
type Credential struct {
	User string
	// DomainUsers maps storage schemes to the identity Feisu assumes in
	// that domain (the SSO credential mapping).
	DomainUsers map[string]string
}

// Authority is the in-memory identity provider: it issues tokens, maps
// users into storage domains, and evaluates per-domain ACLs.
type Authority struct {
	mu      sync.Mutex
	tokens  map[string]string            // token -> user
	domains map[string]map[string]string // user -> scheme -> domain identity
	acls    map[string]map[string]bool   // scheme -> user -> allowed
}

// NewAuthority returns an empty identity provider.
func NewAuthority() *Authority {
	return &Authority{
		tokens:  make(map[string]string),
		domains: make(map[string]map[string]string),
		acls:    make(map[string]map[string]bool),
	}
}

// Register creates a user and returns a fresh token.
func (a *Authority) Register(user string) (string, error) {
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		return "", err
	}
	token := hex.EncodeToString(buf)
	a.mu.Lock()
	a.tokens[token] = user
	a.mu.Unlock()
	return token, nil
}

// Revoke invalidates a token.
func (a *Authority) Revoke(token string) {
	a.mu.Lock()
	delete(a.tokens, token)
	a.mu.Unlock()
}

// MapDomain records that user acts as domainUser in the given storage
// scheme ("" is the local filesystem domain).
func (a *Authority) MapDomain(user, scheme, domainUser string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.domains[user]
	if !ok {
		m = make(map[string]string)
		a.domains[user] = m
	}
	m[scheme] = domainUser
}

// Grant allows user to read the given storage scheme's domain.
func (a *Authority) Grant(user, scheme string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.acls[scheme]
	if !ok {
		m = make(map[string]bool)
		a.acls[scheme] = m
	}
	m[user] = true
}

// Authenticate resolves a token to a job credential carrying the user's
// domain mappings.
func (a *Authority) Authenticate(token string) (Credential, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	user, ok := a.tokens[token]
	if !ok {
		return Credential{}, ErrBadToken
	}
	cred := Credential{User: user, DomainUsers: make(map[string]string)}
	for scheme, du := range a.domains[user] {
		cred.DomainUsers[scheme] = du
	}
	return cred, nil
}

// Authorize checks that the credential may read the storage scheme.
func (a *Authority) Authorize(cred Credential, scheme string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.acls[scheme][cred.User] {
		return nil
	}
	return fmt.Errorf("%w: user %q on domain %q", ErrDenied, cred.User, scheme)
}

// Quotas limits per-user concurrent queries and total admitted queries.
type Quotas struct {
	mu        sync.Mutex
	maxActive int
	maxTotal  int64
	active    map[string]int
	total     map[string]int64
}

// NewQuotas returns quotas; maxActive<=0 or maxTotal<=0 disable that limit.
func NewQuotas(maxActive int, maxTotal int64) *Quotas {
	return &Quotas{
		maxActive: maxActive,
		maxTotal:  maxTotal,
		active:    make(map[string]int),
		total:     make(map[string]int64),
	}
}

// Acquire admits one query for the user; callers must Release it.
func (q *Quotas) Acquire(user string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.maxActive > 0 && q.active[user] >= q.maxActive {
		return fmt.Errorf("%w: user %q has %d active queries", ErrQuotaExceeded, user, q.active[user])
	}
	if q.maxTotal > 0 && q.total[user] >= q.maxTotal {
		return fmt.Errorf("%w: user %q exhausted total quota", ErrQuotaExceeded, user)
	}
	q.active[user]++
	q.total[user]++
	return nil
}

// Release returns one admitted slot.
func (q *Quotas) Release(user string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.active[user] > 0 {
		q.active[user]--
	}
}

// Active returns the user's in-flight query count.
func (q *Quotas) Active(user string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.active[user]
}
