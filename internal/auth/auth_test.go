package auth

import (
	"errors"
	"testing"
)

func TestRegisterAuthenticate(t *testing.T) {
	a := NewAuthority()
	tok, err := a.Register("li")
	if err != nil || tok == "" {
		t.Fatalf("register: %q, %v", tok, err)
	}
	cred, err := a.Authenticate(tok)
	if err != nil || cred.User != "li" {
		t.Fatalf("authenticate: %+v, %v", cred, err)
	}
	if _, err := a.Authenticate("bogus"); !errors.Is(err, ErrBadToken) {
		t.Errorf("bad token err = %v", err)
	}
}

func TestRevoke(t *testing.T) {
	a := NewAuthority()
	tok, _ := a.Register("li")
	a.Revoke(tok)
	if _, err := a.Authenticate(tok); !errors.Is(err, ErrBadToken) {
		t.Errorf("revoked token should fail, got %v", err)
	}
}

func TestDomainMapping(t *testing.T) {
	a := NewAuthority()
	tok, _ := a.Register("li")
	a.MapDomain("li", "hdfs", "hdfs-svc-li")
	a.MapDomain("li", "ffs", "archive-li")
	cred, _ := a.Authenticate(tok)
	if cred.DomainUsers["hdfs"] != "hdfs-svc-li" || cred.DomainUsers["ffs"] != "archive-li" {
		t.Errorf("domain users = %v", cred.DomainUsers)
	}
}

func TestAuthorize(t *testing.T) {
	a := NewAuthority()
	tok, _ := a.Register("li")
	a.Grant("li", "hdfs")
	cred, _ := a.Authenticate(tok)
	if err := a.Authorize(cred, "hdfs"); err != nil {
		t.Errorf("granted domain: %v", err)
	}
	if err := a.Authorize(cred, "ffs"); !errors.Is(err, ErrDenied) {
		t.Errorf("ungranted domain err = %v", err)
	}
}

func TestQuotasActive(t *testing.T) {
	q := NewQuotas(2, 0)
	if err := q.Acquire("li"); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire("li"); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire("li"); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("third acquire = %v", err)
	}
	// Other users are independent.
	if err := q.Acquire("zhang"); err != nil {
		t.Errorf("other user: %v", err)
	}
	q.Release("li")
	if err := q.Acquire("li"); err != nil {
		t.Errorf("after release: %v", err)
	}
	if q.Active("li") != 2 {
		t.Errorf("active = %d", q.Active("li"))
	}
}

func TestQuotasTotal(t *testing.T) {
	q := NewQuotas(0, 2)
	_ = q.Acquire("li")
	q.Release("li")
	_ = q.Acquire("li")
	q.Release("li")
	if err := q.Acquire("li"); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("total quota = %v", err)
	}
}

func TestQuotasUnlimited(t *testing.T) {
	q := NewQuotas(0, 0)
	for i := 0; i < 100; i++ {
		if err := q.Acquire("li"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReleaseNeverNegative(t *testing.T) {
	q := NewQuotas(1, 0)
	q.Release("li")
	if q.Active("li") != 0 {
		t.Errorf("active = %d", q.Active("li"))
	}
}
