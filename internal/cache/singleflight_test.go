package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
)

// blockingReader parks every Column call until release is closed, so a test
// can pile up a miss herd on one chunk.
type blockingReader struct {
	meta    *colstore.FileMeta
	release chan struct{}
	calls   atomic.Int32
	fail    bool
}

func (b *blockingReader) Meta(ctx context.Context, path string) (*colstore.FileMeta, error) {
	return b.meta, nil
}

func (b *blockingReader) Column(ctx context.Context, path string, meta *colstore.FileMeta, block, col int) (*colstore.Column, error) {
	b.calls.Add(1)
	<-b.release
	if b.fail {
		return nil, errors.New("boom")
	}
	c := colstore.NewColumn(types.Int64)
	_ = c.Append(types.NewInt(42))
	return c, nil
}

// TestSingleflightDedupesMissHerd: N concurrent misses on one chunk issue
// exactly one storage read; the followers wait on the leader's in-flight
// call and are billed (and counted) as hits.
func TestSingleflightDedupesMissHerd(t *testing.T) {
	const n = 8
	f := &blockingReader{meta: testMeta(1, 1, 100), release: make(chan struct{})}
	r := NewReader(f, Options{CapacityBytes: 1000, Prefixes: []string{"/"}, Model: sim.DefaultCostModel()})

	var wg sync.WaitGroup
	bills := make([]*sim.Bill, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		bills[i] = sim.NewBill()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Column(storage.WithBill(context.Background(), bills[i]), "/t", f.meta, 0, 0)
		}(i)
	}
	// Wait until the leader is inside the storage read and every follower
	// has had a chance to join the in-flight call.
	deadline := time.Now().Add(5 * time.Second)
	for r.HerdWaits.Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("herd did not assemble: herd_waits=%d", r.HerdWaits.Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(f.release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	if got := f.calls.Load(); got != 1 {
		t.Fatalf("underlying reads = %d, want 1 (singleflight)", got)
	}
	if r.Misses.Value() != 1 {
		t.Errorf("misses = %d, want 1", r.Misses.Value())
	}
	if r.Hits.Value() != n-1 {
		t.Errorf("hits = %d, want %d (herd followers count as hits)", r.Hits.Value(), n-1)
	}
	if r.HerdWaits.Value() != n-1 {
		t.Errorf("herd_waits = %d, want %d", r.HerdWaits.Value(), n-1)
	}
	// Followers are billed as SSD hits: by the time the leader's read
	// lands, the chunk is on SSD for them.
	ssdBilled := 0
	for _, b := range bills {
		if b.Bytes(sim.DeviceSSD) == 100 {
			ssdBilled++
		}
	}
	if ssdBilled != n-1 {
		t.Errorf("followers billed as SSD hits = %d, want %d", ssdBilled, n-1)
	}
}

// TestSingleflightLeaderErrorPropagates: a failed leader read fails the
// whole herd, and nothing is cached.
func TestSingleflightLeaderErrorPropagates(t *testing.T) {
	const n = 4
	f := &blockingReader{meta: testMeta(1, 1, 100), release: make(chan struct{}), fail: true}
	r := NewReader(f, Options{CapacityBytes: 1000, Prefixes: []string{"/"}})

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Column(context.Background(), "/t", f.meta, 0, 0)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.HerdWaits.Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("herd did not assemble: herd_waits=%d", r.HerdWaits.Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(f.release)
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("reader %d: expected the leader's error", i)
		}
	}
	if got := f.calls.Load(); got != 1 {
		t.Fatalf("underlying reads = %d, want 1", got)
	}
	if r.Bytes() != 0 {
		t.Error("failed read must not be cached")
	}
	// The chunk is fetchable again after the failure (no stuck in-flight
	// entry).
	f.fail = false
	f.release = make(chan struct{})
	close(f.release)
	if _, err := r.Column(context.Background(), "/t", f.meta, 0, 0); err != nil {
		t.Fatalf("retry after failed leader: %v", err)
	}
}

// TestSingleflightFollowerHonorsContext: a follower whose context is
// canceled stops waiting instead of blocking on a stuck leader.
func TestSingleflightFollowerHonorsContext(t *testing.T) {
	f := &blockingReader{meta: testMeta(1, 1, 100), release: make(chan struct{})}
	r := NewReader(f, Options{CapacityBytes: 1000, Prefixes: []string{"/"}})

	go func() { _, _ = r.Column(context.Background(), "/t", f.meta, 0, 0) }() // leader, parked
	deadline := time.Now().Add(5 * time.Second)
	for f.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached storage")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Column(ctx, "/t", f.meta, 0, 0)
		done <- err
	}()
	for r.HerdWaits.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the in-flight call")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled follower still waiting on the leader")
	}
	close(f.release) // unpark the leader for cleanup
}
