package cache

import (
	"context"
	"errors"
	"testing"

	"repro/internal/colstore"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/types"
)

// fakeReader counts underlying reads.
type fakeReader struct {
	meta  *colstore.FileMeta
	reads int
	fail  bool
}

func (f *fakeReader) Meta(ctx context.Context, path string) (*colstore.FileMeta, error) {
	return f.meta, nil
}

func (f *fakeReader) Column(ctx context.Context, path string, meta *colstore.FileMeta, block, col int) (*colstore.Column, error) {
	if f.fail {
		return nil, errors.New("boom")
	}
	f.reads++
	c := colstore.NewColumn(types.Int64)
	_ = c.Append(types.NewInt(int64(block*10 + col)))
	return c, nil
}

func testMeta(nBlocks, nCols int, chunk int64) *colstore.FileMeta {
	m := &colstore.FileMeta{Schema: types.MustSchema(types.Field{Name: "a", Type: types.Int64})}
	for b := 0; b < nBlocks; b++ {
		bm := colstore.BlockMeta{Ordinal: b}
		for c := 0; c < nCols; c++ {
			bm.ColExtents = append(bm.ColExtents, colstore.ColExtent{Off: 0, Len: chunk})
		}
		m.Blocks = append(m.Blocks, bm)
	}
	return m
}

func TestCacheHitAvoidsUnderlyingRead(t *testing.T) {
	f := &fakeReader{meta: testMeta(2, 1, 100)}
	r := NewReader(f, Options{CapacityBytes: 1000, Prefixes: []string{"/hot/"}, Model: sim.DefaultCostModel()})
	ctx := context.Background()

	if _, err := r.Column(ctx, "/hot/t", f.meta, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Column(ctx, "/hot/t", f.meta, 0, 0); err != nil {
		t.Fatal(err)
	}
	if f.reads != 1 {
		t.Errorf("underlying reads = %d, want 1", f.reads)
	}
	if r.Hits.Value() != 1 || r.Misses.Value() != 1 {
		t.Errorf("hits=%d misses=%d", r.Hits.Value(), r.Misses.Value())
	}
	if r.MissRatio() != 0.5 {
		t.Errorf("miss ratio = %v", r.MissRatio())
	}
}

func TestCacheHitBilledAsSSD(t *testing.T) {
	f := &fakeReader{meta: testMeta(1, 1, 100)}
	model := sim.DefaultCostModel()
	r := NewReader(f, Options{CapacityBytes: 1000, Prefixes: []string{"/"}, Model: model})
	ctx := context.Background()
	if _, err := r.Column(ctx, "/t", f.meta, 0, 0); err != nil {
		t.Fatal(err)
	}
	bill := sim.NewBill()
	if _, err := r.Column(storage.WithBill(ctx, bill), "/t", f.meta, 0, 0); err != nil {
		t.Fatal(err)
	}
	if bill.Bytes(sim.DeviceSSD) != 100 {
		t.Errorf("ssd bytes = %d", bill.Bytes(sim.DeviceSSD))
	}
}

func TestAdmissionPreference(t *testing.T) {
	f := &fakeReader{meta: testMeta(1, 1, 100)}
	r := NewReader(f, Options{CapacityBytes: 1000, Prefixes: []string{"/hot/"}})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := r.Column(ctx, "/cold/t", f.meta, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.reads != 3 || r.Bypass.Value() != 3 {
		t.Errorf("reads=%d bypass=%d", f.reads, r.Bypass.Value())
	}
	if r.Bytes() != 0 {
		t.Error("non-admitted data must not be cached")
	}
}

func TestCacheDisabled(t *testing.T) {
	f := &fakeReader{meta: testMeta(1, 1, 100)}
	r := NewReader(f, Options{CapacityBytes: 0, Prefixes: []string{"/"}})
	ctx := context.Background()
	_, _ = r.Column(ctx, "/t", f.meta, 0, 0)
	_, _ = r.Column(ctx, "/t", f.meta, 0, 0)
	if f.reads != 2 {
		t.Errorf("disabled cache reads = %d", f.reads)
	}
}

func TestLRUEviction(t *testing.T) {
	f := &fakeReader{meta: testMeta(3, 1, 100)}
	r := NewReader(f, Options{CapacityBytes: 250, Prefixes: []string{"/"}})
	ctx := context.Background()
	// Fill blocks 0, 1; touch 0; insert 2 -> evict 1.
	_, _ = r.Column(ctx, "/t", f.meta, 0, 0)
	_, _ = r.Column(ctx, "/t", f.meta, 1, 0)
	_, _ = r.Column(ctx, "/t", f.meta, 0, 0) // hit, refresh
	_, _ = r.Column(ctx, "/t", f.meta, 2, 0)
	if r.Bytes() != 200 {
		t.Errorf("bytes = %d", r.Bytes())
	}
	f.reads = 0
	_, _ = r.Column(ctx, "/t", f.meta, 0, 0)
	if f.reads != 0 {
		t.Error("block 0 should still be cached")
	}
	_, _ = r.Column(ctx, "/t", f.meta, 1, 0)
	if f.reads != 1 {
		t.Error("block 1 should have been evicted")
	}
}

func TestOversizeChunkNotCached(t *testing.T) {
	f := &fakeReader{meta: testMeta(1, 1, 1000)}
	r := NewReader(f, Options{CapacityBytes: 100, Prefixes: []string{"/"}})
	ctx := context.Background()
	_, _ = r.Column(ctx, "/t", f.meta, 0, 0)
	if r.Bytes() != 0 {
		t.Error("oversize chunk must not be cached")
	}
}

func TestErrorPassthrough(t *testing.T) {
	f := &fakeReader{meta: testMeta(1, 1, 100), fail: true}
	r := NewReader(f, Options{CapacityBytes: 1000, Prefixes: []string{"/"}})
	if _, err := r.Column(context.Background(), "/t", f.meta, 0, 0); err == nil {
		t.Error("underlying error should pass through")
	}
	if r.Bytes() != 0 {
		t.Error("failed read must not be cached")
	}
}

func TestMetaDelegates(t *testing.T) {
	f := &fakeReader{meta: testMeta(1, 1, 100)}
	r := NewReader(f, Options{})
	m, err := r.Meta(context.Background(), "/t")
	if err != nil || m != f.meta {
		t.Error("Meta should delegate")
	}
}

func TestInvalidatePathDropsStaleChunks(t *testing.T) {
	f := &fakeReader{meta: testMeta(2, 2, 100)}
	r := NewReader(f, Options{CapacityBytes: 10000, Prefixes: []string{"/hot/"}})
	ctx := context.Background()

	// Warm two files: 4 chunks of /hot/a, 1 chunk of /hot/b.
	for b := 0; b < 2; b++ {
		for c := 0; c < 2; c++ {
			if _, err := r.Column(ctx, "/hot/a", f.meta, b, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := r.Column(ctx, "/hot/b", f.meta, 0, 0); err != nil {
		t.Fatal(err)
	}
	if r.Bytes() != 500 {
		t.Fatalf("warm bytes = %d, want 500", r.Bytes())
	}

	if n := r.InvalidatePath("/hot/a"); n != 4 {
		t.Errorf("InvalidatePath dropped %d chunks, want 4", n)
	}
	if r.Bytes() != 100 {
		t.Errorf("bytes after invalidation = %d, want 100 (only /hot/b)", r.Bytes())
	}
	if r.Evictions.Value() != 0 {
		t.Errorf("invalidation counted as eviction: %d", r.Evictions.Value())
	}

	// The invalidated file re-reads from storage; the survivor still hits.
	f.reads = 0
	if _, err := r.Column(ctx, "/hot/a", f.meta, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Column(ctx, "/hot/b", f.meta, 0, 0); err != nil {
		t.Fatal(err)
	}
	if f.reads != 1 {
		t.Errorf("underlying reads after invalidation = %d, want 1", f.reads)
	}

	// Prefix match is per-file: "/hot/a" must not drop "/hot/ab".
	if _, err := r.Column(ctx, "/hot/ab", f.meta, 0, 0); err != nil {
		t.Fatal(err)
	}
	if n := r.InvalidatePath("/hot/a"); n != 1 {
		t.Errorf("second invalidation dropped %d, want 1", n)
	}
	if n := r.InvalidatePath("/hot/ab"); n != 1 {
		t.Errorf("sibling file dropped %d chunks, want its own 1", n)
	}

	var nilReader *Reader
	if nilReader.InvalidatePath("/x") != 0 {
		t.Error("nil reader should be a no-op")
	}
}
