// Package cache implements Feisu's SSD data-cache tier (paper §IV-B): an
// LRU cache of column chunks in front of the storage plugins. The paper
// found that purely automatic admission performs poorly under ad-hoc load
// ("all of which incur more than 80% of cache miss rates"), so admission is
// gated by manually configured preferences: only data under preferred path
// prefixes is cached.
package cache

import (
	"context"
	"strings"
	"sync"

	"repro/internal/colstore"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Options configure the SSD cache.
type Options struct {
	// CapacityBytes caps resident cached bytes; <=0 disables the cache.
	CapacityBytes int64
	// Prefixes lists the path prefixes admitted to the cache (the paper's
	// manual preferences). Empty admits nothing.
	Prefixes []string
	// Model prices SSD hits; nil disables cost accounting.
	Model *sim.CostModel
}

// Reader wraps a PartitionReader with an SSD column-chunk cache. Hits are
// billed as SSD reads instead of reaching the underlying store. Concurrent
// misses on one chunk are deduplicated: the first reader fetches from
// storage while herd followers wait on the in-flight call and are billed
// (and counted) as hits, so a miss herd issues exactly one storage read.
type Reader struct {
	inner exec.PartitionReader
	opt   Options

	mu       sync.Mutex
	items    map[string]*item
	inflight map[string]*inflightCall
	head     *item // most recent
	tail     *item
	bytes    int64

	Hits   metrics.Counter
	Misses metrics.Counter
	// Bypass counts reads not admitted by preference.
	Bypass metrics.Counter
	// HerdWaits counts reads that joined an in-flight fetch instead of
	// issuing a duplicate storage read.
	HerdWaits metrics.Counter
	// Evictions counts chunks pushed out by LRU capacity pressure.
	Evictions metrics.Counter
}

type item struct {
	key        string
	col        *colstore.Column
	size       int64
	prev, next *item
}

// inflightCall is one outstanding storage fetch that duplicate misses
// join. col and err are written before done is closed.
type inflightCall struct {
	done chan struct{}
	col  *colstore.Column
	err  error
}

// NewReader wraps inner with the cache.
func NewReader(inner exec.PartitionReader, opt Options) *Reader {
	return &Reader{inner: inner, opt: opt, items: make(map[string]*item), inflight: make(map[string]*inflightCall)}
}

// RegisterMetrics publishes the cache's counters into a central registry
// under the given name prefix (e.g. "leaf0.cache.").
func (r *Reader) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Register(prefix+"hits", &r.Hits)
	reg.Register(prefix+"misses", &r.Misses)
	reg.Register(prefix+"bypass", &r.Bypass)
	reg.Register(prefix+"herd_waits", &r.HerdWaits)
	reg.Register(prefix+"evictions", &r.Evictions)
}

// Meta delegates to the wrapped reader.
func (r *Reader) Meta(ctx context.Context, path string) (*colstore.FileMeta, error) {
	return r.inner.Meta(ctx, path)
}

// admitted applies the manual preference rule.
func (r *Reader) admitted(path string) bool {
	for _, p := range r.opt.Prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// Column serves a column chunk, from SSD when cached.
func (r *Reader) Column(ctx context.Context, path string, meta *colstore.FileMeta, block, col int) (*colstore.Column, error) {
	if r.opt.CapacityBytes <= 0 || !r.admitted(path) {
		r.Bypass.Inc()
		trace.FromContext(ctx).Count("cache.bypass", 1)
		return r.inner.Column(ctx, path, meta, block, col)
	}
	key := cacheKey(path, block, col)
	size := chunkSize(meta, block, col)

	r.mu.Lock()
	if it, ok := r.items[key]; ok {
		r.moveToFront(it)
		colv := it.col
		r.mu.Unlock()
		r.chargeHit(ctx, size)
		return colv, nil
	}
	if call, ok := r.inflight[key]; ok {
		// Another reader is already fetching this chunk: wait for it
		// instead of issuing a duplicate storage read. Followers are
		// billed as hits — by the time the leader's read completes, the
		// chunk is on SSD for them.
		r.mu.Unlock()
		r.HerdWaits.Inc()
		select {
		case <-call.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if call.err != nil {
			return nil, call.err
		}
		r.chargeHit(ctx, size)
		return call.col, nil
	}
	call := &inflightCall{done: make(chan struct{})}
	r.inflight[key] = call
	r.mu.Unlock()
	r.Misses.Inc()
	trace.FromContext(ctx).Count("cache.miss", 1)

	c, err := r.inner.Column(ctx, path, meta, block, col)

	r.mu.Lock()
	delete(r.inflight, key)
	if err == nil && size <= r.opt.CapacityBytes {
		if _, dup := r.items[key]; !dup {
			it := &item{key: key, col: c, size: size}
			r.items[key] = it
			r.pushFront(it)
			r.bytes += size
			for r.bytes > r.opt.CapacityBytes && r.tail != nil {
				r.evict(r.tail)
			}
		}
	}
	r.mu.Unlock()
	call.col, call.err = c, err
	close(call.done)
	return c, err
}

// chargeHit counts and bills one cache hit as an SSD read.
func (r *Reader) chargeHit(ctx context.Context, size int64) {
	r.Hits.Inc()
	trace.FromContext(ctx).Count("cache.hit", 1)
	if b := storage.BillFrom(ctx); b != nil && r.opt.Model != nil {
		b.ChargeRead(r.opt.Model, sim.DeviceSSD, size)
	}
}

func cacheKey(path string, block, col int) string {
	return path + "#" + itoa(block) + "#" + itoa(col)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func chunkSize(meta *colstore.FileMeta, block, col int) int64 {
	if block < len(meta.Blocks) && col < len(meta.Blocks[block].ColExtents) {
		return meta.Blocks[block].ColExtents[col].Len
	}
	return 0
}

// --- intrusive LRU list; caller holds r.mu ---

func (r *Reader) pushFront(it *item) {
	it.prev = nil
	it.next = r.head
	if r.head != nil {
		r.head.prev = it
	}
	r.head = it
	if r.tail == nil {
		r.tail = it
	}
}

func (r *Reader) unlink(it *item) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		r.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		r.tail = it.prev
	}
	it.prev, it.next = nil, nil
}

func (r *Reader) moveToFront(it *item) {
	if r.head == it {
		return
	}
	r.unlink(it)
	r.pushFront(it)
}

func (r *Reader) evict(it *item) {
	r.unlink(it)
	delete(r.items, it.key)
	r.bytes -= it.size
	r.Evictions.Inc()
}

// InvalidatePath drops every cached chunk belonging to the partition file
// at path (ingest rewrote it, so resident chunks are stale). Invalidation
// does not count as eviction — the chunks were not pushed out by pressure.
// Nil-safe. Returns the number of chunks dropped.
func (r *Reader) InvalidatePath(path string) int {
	if r == nil {
		return 0
	}
	prefix := path + "#"
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for key, it := range r.items {
		if strings.HasPrefix(key, prefix) {
			r.unlink(it)
			delete(r.items, key)
			r.bytes -= it.size
			n++
		}
	}
	return n
}

// Bytes returns resident cached bytes.
func (r *Reader) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// CacheLoad reports the cache's heartbeat gauges. It implements
// cluster.CacheLoadReporter without importing the cluster package.
func (r *Reader) CacheLoad() (hits, misses, evictions, bytes, capacity int64) {
	return r.Hits.Value(), r.Misses.Value(), r.Evictions.Value(), r.Bytes(), r.opt.CapacityBytes
}

// MissRatio returns misses / (hits + misses); 0 with no traffic.
func (r *Reader) MissRatio() float64 {
	h, m := r.Hits.Value(), r.Misses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}
