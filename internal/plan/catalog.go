// Package plan implements Feisu's query planner: name/type binding over the
// catalog, predicate normalization to conjunctive form (the representation
// SmartIndex keys on, paper §IV-A), predicate pushdown and column pruning,
// and the dissection of a query plan into per-partition sub-plans that the
// master dispatches to stem and leaf servers (paper §III-B).
package plan

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// PartitionMeta describes one partition file of a table. Partitions are the
// unit of task dissection and of locality-aware scheduling.
type PartitionMeta struct {
	// Path is the full prefixed storage path ("/hdfs/...", "/ffs/...",
	// or a local path).
	Path string
	// Rows and Bytes are catalog-recorded sizes used by the cost-based
	// scheduler; zero means unknown.
	Rows  int64
	Bytes int64
}

// TableMeta is the catalog entry for a table.
type TableMeta struct {
	Name       string
	Schema     *types.Schema
	Partitions []PartitionMeta
}

// Rows returns the catalog row count across partitions.
func (t *TableMeta) Rows() int64 {
	var n int64
	for _, p := range t.Partitions {
		n += p.Rows
	}
	return n
}

// Bytes returns the catalog byte count across partitions.
func (t *TableMeta) Bytes() int64 {
	var n int64
	for _, p := range t.Partitions {
		n += p.Bytes
	}
	return n
}

// Catalog resolves table names. The master's job manager owns the real
// implementation; tests use MapCatalog.
type Catalog interface {
	Lookup(name string) (*TableMeta, error)
}

// MapCatalog is an in-memory Catalog.
type MapCatalog map[string]*TableMeta

// Lookup implements Catalog.
func (m MapCatalog) Lookup(name string) (*TableMeta, error) {
	if t, ok := m[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("plan: unknown table %q", name)
}

// Tables returns the catalog's table names, sorted.
func (m MapCatalog) Tables() []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
