package plan

import (
	"fmt"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// OutMode distinguishes aggregation queries (partial aggregation on leaves,
// merge on stems, finalize at the master) from plain selections (leaves emit
// projected rows).
type OutMode int

// Output modes.
const (
	ModeSelect OutMode = iota
	ModeAgg
)

// AggSpec is one distinct group-aggregate computed by the query.
type AggSpec struct {
	Func string         // COUNT, SUM, MIN, MAX, AVG
	Arg  sqlparser.Expr // nil for COUNT(*)
	Star bool
	Key  string // canonical call string; substitution key in output exprs
}

// DimPlan is one broadcast dimension table of the star join.
type DimPlan struct {
	Table    *BoundTable
	Type     sqlparser.JoinType
	FactKeys []sqlparser.Expr // key expressions over the fact row
	DimKeys  []string         // matching dimension columns
	Residual []Clause         // extra ON conditions checked per candidate
	Needed   []string         // dimension columns shipped to leaves
	// Data is the materialized dimension relation (Needed columns, in
	// order), loaded by the master before dispatch and broadcast with the
	// sub-plans.
	Data [][]types.Value
}

// PhysicalPlan is the optimized, dissectable plan.
type PhysicalPlan struct {
	A        *Analyzed
	Mode     OutMode
	FactCols []string // fact columns read from storage (pruned set)
	Filter   CNF      // fact-only clauses, pushed to the scan
	Post     []Clause // clauses evaluated after the join
	Dims     []*DimPlan
	GroupBy  []sqlparser.Expr
	Aggs     []AggSpec
	// ScanLimit lets leaves stop early on plain SELECT ... LIMIT without
	// ORDER BY; -1 otherwise.
	ScanLimit int64
	// SQL is the canonical rendering of the statement, literals included.
	SQL string
	// Fingerprint is the normalized query shape: the canonical rendering
	// with every literal lifted to a typed placeholder. All literal variants
	// of one query share it — the slowlog's shape key and the result cache's
	// primary key. (Fingerprint, LiteralKey) together identify the exact
	// logical query.
	Fingerprint string
	// Literals holds the bound literal values in placeholder order.
	Literals []types.Value
	// LiteralKey is the stable typed rendering of Literals ("" when the
	// query has none).
	LiteralKey string
	// ReuseSlots classifies each literal for predicate-subsumption reuse.
	ReuseSlots []LitSlot
	// Shuffle, when set, marks a repartitioned plan: a hash-shuffled join
	// (derived map sub-plans inside) or a group-by shuffle. Nil for pure
	// broadcast/star plans.
	Shuffle *ShuffleSpec
}

// Fact returns the plan's fact table.
func (p *PhysicalPlan) Fact() *BoundTable { return p.A.Fact() }

// Tasks dissects the plan into one sub-plan per fact partition.
func (p *PhysicalPlan) Tasks() []TaskSpec {
	fact := p.Fact()
	tasks := make([]TaskSpec, 0, len(fact.Meta.Partitions))
	for i, part := range fact.Meta.Partitions {
		tasks = append(tasks, TaskSpec{Plan: p, Partition: part, Ordinal: i})
	}
	return tasks
}

// TaskSpec is one leaf sub-plan: scan one fact partition under the shared
// plan. Its Key is the dedup identity for result reuse.
type TaskSpec struct {
	Plan      *PhysicalPlan
	Partition PartitionMeta
	Ordinal   int
	// Workers is the intra-task scan parallelism: how many goroutines the
	// executor may use to scan this partition's blocks concurrently.
	// 0 means GOMAXPROCS. Results are identical for any value, so Workers
	// is execution tuning and stays out of Key.
	Workers int
}

// Key identifies the task's work content; identical keys compute identical
// results (same logical plan, same partition). The normalized fingerprint
// alone is NOT enough — literal variants share it — so the bound-literal
// key is part of the identity.
func (t TaskSpec) Key() string {
	return t.Plan.Fingerprint + "|" + t.Plan.LiteralKey + "@" + t.Partition.Path
}

// Build turns an analyzed query into a physical plan.
func Build(a *Analyzed) (*PhysicalPlan, error) {
	p := &PhysicalPlan{A: a, ScanLimit: -1}
	fact := a.Fact()
	factBind := fact.Ref.Binding()

	if a.HasAgg {
		p.Mode = ModeAgg
	}

	// Dimension skeletons: comma tables default to inner joins keyed from
	// WHERE; explicit JOINs carry their ON conditions.
	dimOf := make(map[string]*DimPlan)
	for _, bt := range a.Tables[1:] {
		d := &DimPlan{Table: bt, Type: sqlparser.JoinInner}
		p.Dims = append(p.Dims, d)
		dimOf[bt.Ref.Binding()] = d
	}
	for _, j := range a.Stmt.Joins {
		d := dimOf[j.Table.Binding()]
		d.Type = j.Type
		if d.Type == sqlparser.JoinRightOuter {
			// The broadcast executor preserves only the fact side; RIGHT
			// OUTER needs the repartition path (BuildWith).
			return nil, fmt.Errorf("plan: RIGHT OUTER JOIN %q requires a repartition shuffle", d.Table.Ref.Binding())
		}
		if j.On == nil {
			continue
		}
		onCNF := ToCNF(j.On)
		for _, cl := range onCNF.Clauses {
			if ok, fk, dk := equiJoinKey(cl, factBind, d.Table.Ref.Binding()); ok {
				d.FactKeys = append(d.FactKeys, fk)
				d.DimKeys = append(d.DimKeys, dk)
				continue
			}
			if err := clauseWithin(cl, factBind, d.Table.Ref.Binding()); err != nil {
				return nil, fmt.Errorf("plan: JOIN ON for %q: %w", d.Table.Ref.Binding(), err)
			}
			d.Residual = append(d.Residual, cl)
		}
	}

	// WHERE: split into pushed-down fact clauses, implicit join keys for
	// comma tables, and post-join clauses.
	where := ToCNF(a.Where)
	for _, cl := range where.Clauses {
		if onlyTable(cl, factBind) {
			p.Filter.Clauses = append(p.Filter.Clauses, cl)
			continue
		}
		claimed := false
		for _, d := range p.Dims {
			if wasJoined(a.Stmt, d.Table.Ref) {
				continue // explicit JOIN: WHERE stays a filter
			}
			if ok, fk, dk := equiJoinKey(cl, factBind, d.Table.Ref.Binding()); ok {
				d.FactKeys = append(d.FactKeys, fk)
				d.DimKeys = append(d.DimKeys, dk)
				claimed = true
				break
			}
		}
		if !claimed {
			p.Post = append(p.Post, cl)
		}
	}
	for _, d := range p.Dims {
		if len(d.FactKeys) == 0 && d.Type != sqlparser.JoinCross {
			d.Type = sqlparser.JoinCross
		}
		if d.Type == sqlparser.JoinLeftOuter && len(d.FactKeys) == 0 {
			return nil, fmt.Errorf("plan: LEFT OUTER JOIN %q needs at least one equi-join key", d.Table.Ref.Binding())
		}
	}

	// Aggregates and grouping.
	if p.Mode == ModeAgg {
		seen := make(map[string]bool)
		for _, oi := range a.Outputs {
			collectAggs(oi.Expr, seen, &p.Aggs)
		}
		p.GroupBy = a.GroupBy
	} else {
		if a.Limit >= 0 && len(a.OrderBy) == 0 {
			p.ScanLimit = a.Limit
		}
	}

	// Column pruning: everything any surviving expression touches.
	var refs []ColRef
	for _, oi := range a.Outputs {
		ColumnsOf(oi.Expr, &refs)
	}
	for _, g := range p.GroupBy {
		ColumnsOf(g, &refs)
	}
	for _, cl := range append(append([]Clause{}, p.Filter.Clauses...), p.Post...) {
		clauseColumns(cl, &refs)
	}
	for _, d := range p.Dims {
		for _, fk := range d.FactKeys {
			ColumnsOf(fk, &refs)
		}
		for _, dk := range d.DimKeys {
			addCol(&refs, ColRef{Table: d.Table.Ref.Binding(), Col: dk})
		}
		for _, cl := range d.Residual {
			clauseColumns(cl, &refs)
		}
	}
	for _, r := range refs {
		if r.Table == factBind {
			p.FactCols = appendUnique(p.FactCols, r.Col)
		} else if d, ok := dimOf[r.Table]; ok {
			d.Needed = appendUnique(d.Needed, r.Col)
		}
	}

	p.SQL = a.Stmt.String()
	p.Fingerprint, p.Literals, p.ReuseSlots = Normalize(a.Stmt)
	p.LiteralKey = LiteralKey(p.Literals)
	return p, nil
}

// Plan runs Analyze + BuildWith under the default planner options.
func Plan(stmt *sqlparser.SelectStmt, cat Catalog) (*PhysicalPlan, error) {
	return PlanWith(stmt, cat, DefaultOptions())
}

func appendUnique(list []string, s string) []string {
	for _, e := range list {
		if e == s {
			return list
		}
	}
	return append(list, s)
}

// collectAggs appends each distinct aggregate call in the expression.
func collectAggs(e sqlparser.Expr, seen map[string]bool, out *[]AggSpec) {
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		if isAggName(x.Name) && x.Within == nil && !x.WithinRecord {
			key := x.String()
			if !seen[key] {
				seen[key] = true
				spec := AggSpec{Func: x.Name, Star: x.Star, Key: key}
				if !x.Star {
					spec.Arg = x.Args[0]
				}
				*out = append(*out, spec)
			}
			return
		}
		for _, a := range x.Args {
			collectAggs(a, seen, out)
		}
	case *sqlparser.BinaryExpr:
		collectAggs(x.L, seen, out)
		collectAggs(x.R, seen, out)
	case *sqlparser.NotExpr:
		collectAggs(x.X, seen, out)
	case *sqlparser.NegExpr:
		collectAggs(x.X, seen, out)
	case *sqlparser.IsNullExpr:
		collectAggs(x.X, seen, out)
	}
}

// equiJoinKey recognizes a clause that is exactly `fact.col = dim.col`
// (either order) and returns the fact-side expression and dim column.
func equiJoinKey(cl Clause, factBind, dimBind string) (bool, sqlparser.Expr, string) {
	if len(cl.Atoms) != 0 || len(cl.Opaque) != 1 {
		return false, nil, ""
	}
	b, ok := cl.Opaque[0].(*sqlparser.BinaryExpr)
	if !ok || b.Op != sqlparser.OpEq {
		return false, nil, ""
	}
	l, lok := b.L.(*sqlparser.ColumnRef)
	r, rok := b.R.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return false, nil, ""
	}
	switch {
	case l.Table == factBind && r.Table == dimBind:
		return true, l, r.Column
	case r.Table == factBind && l.Table == dimBind:
		return true, r, l.Column
	default:
		return false, nil, ""
	}
}

// onlyTable reports whether the clause references only the given binding.
func onlyTable(cl Clause, bind string) bool {
	var refs []ColRef
	clauseColumns(cl, &refs)
	for _, r := range refs {
		if r.Table != bind {
			return false
		}
	}
	return true
}

// clauseWithin verifies a residual join clause references only the fact
// table and the joined dimension (star schema: dims never join dims).
func clauseWithin(cl Clause, factBind, dimBind string) error {
	var refs []ColRef
	clauseColumns(cl, &refs)
	for _, r := range refs {
		if r.Table != factBind && r.Table != dimBind {
			return fmt.Errorf("references third table %q (star schema requires fact-dimension joins)", r.Table)
		}
	}
	return nil
}

func clauseColumns(cl Clause, sink *[]ColRef) {
	for _, a := range cl.Atoms {
		addCol(sink, ColRef{Table: a.Table, Col: a.Col})
	}
	for _, o := range cl.Opaque {
		ColumnsOf(o, sink)
	}
}

// wasJoined reports whether the table arrived via an explicit JOIN clause.
func wasJoined(stmt *sqlparser.SelectStmt, ref sqlparser.TableRef) bool {
	for _, j := range stmt.Joins {
		if j.Table.Binding() == ref.Binding() {
			return true
		}
	}
	return false
}
