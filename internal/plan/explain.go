package plan

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Describe renders the physical plan for humans: the tree the master built,
// what was pushed down, what each leaf sub-plan will do, and how the query
// was dissected — the reproduction's EXPLAIN.
func (p *PhysicalPlan) Describe() string {
	var sb strings.Builder
	fact := p.Fact()
	mode := "select"
	if p.Mode == ModeAgg {
		mode = "aggregate"
	}
	fmt.Fprintf(&sb, "query: %s\n", p.SQL)
	fmt.Fprintf(&sb, "fingerprint: %s\n", p.Fingerprint)
	fmt.Fprintf(&sb, "mode: %s\n", mode)
	fmt.Fprintf(&sb, "fact table: %s (%d partitions, %d rows cataloged)\n",
		fact.Meta.Name, len(fact.Meta.Partitions), fact.Meta.Rows())
	fmt.Fprintf(&sb, "fact columns read: %s\n", strings.Join(p.FactCols, ", "))

	if len(p.Filter.Clauses) > 0 {
		sb.WriteString("pushed-down filter (CNF, evaluated at leaves with SmartIndex):\n")
		for _, cl := range p.Filter.Clauses {
			sb.WriteString("  - " + describeClause(cl) + "\n")
		}
	}
	for _, d := range p.Dims {
		fmt.Fprintf(&sb, "broadcast %s %s", strings.ToLower(d.Type.String()), d.Table.Meta.Name)
		if len(d.DimKeys) > 0 {
			keys := make([]string, len(d.DimKeys))
			for i := range d.DimKeys {
				keys[i] = fmt.Sprintf("%s = %s.%s", d.FactKeys[i], d.Table.Ref.Binding(), d.DimKeys[i])
			}
			fmt.Fprintf(&sb, " on %s", strings.Join(keys, " AND "))
		}
		if len(d.Residual) > 0 {
			fmt.Fprintf(&sb, " with %d residual condition(s)", len(d.Residual))
		}
		fmt.Fprintf(&sb, " shipping columns [%s]\n", strings.Join(d.Needed, ", "))
	}
	if sh := p.Shuffle; sh != nil {
		if sh.GroupShuffle {
			fmt.Fprintf(&sb, "repartition group-by: partial groups hash-shuffled over %d partition(s), merged at reducers\n", sh.Partitions)
			fmt.Fprintf(&sb, "  reducer memory grant: %d bytes (grace-hash spill beyond)\n", sh.MemoryGrant)
		} else {
			fmt.Fprintf(&sb, "repartition %s %s over %d partition(s):\n",
				strings.ToLower(sh.JoinType.String()), sh.Build.Meta.Name, sh.Partitions)
			keys := make([]string, sh.Keys)
			for i := range keys {
				keys[i] = fmt.Sprintf("%s = %s", sh.ProbePlan.A.Outputs[i].Expr, sh.BuildPlan.A.Outputs[i].Expr)
			}
			fmt.Fprintf(&sb, "  keys: %s\n", strings.Join(keys, " AND "))
			fmt.Fprintf(&sb, "  probe ships [%s]\n", joinColRefs(sh.ProbeCols))
			fmt.Fprintf(&sb, "  build ships [%s]\n", joinColRefs(sh.BuildCols))
			if len(sh.BuildPlan.Filter.Clauses) > 0 {
				sb.WriteString("  build-side filter:\n")
				for _, cl := range sh.BuildPlan.Filter.Clauses {
					sb.WriteString("    - " + describeClause(cl) + "\n")
				}
			}
			if len(sh.ProbePlan.Post) > 0 {
				sb.WriteString("  probe-side post filter:\n")
				for _, cl := range sh.ProbePlan.Post {
					sb.WriteString("    - " + describeClause(cl) + "\n")
				}
			}
			if len(sh.Residual) > 0 {
				fmt.Fprintf(&sb, "  with %d residual condition(s)\n", len(sh.Residual))
			}
			fmt.Fprintf(&sb, "  reducer memory grant: %d bytes (grace-hash spill beyond)\n", sh.MemoryGrant)
		}
	}
	if len(p.Post) > 0 {
		sb.WriteString("post-join filter:\n")
		for _, cl := range p.Post {
			sb.WriteString("  - " + describeClause(cl) + "\n")
		}
	}
	if p.Mode == ModeAgg {
		aggs := make([]string, len(p.Aggs))
		for i, a := range p.Aggs {
			aggs[i] = a.Key
		}
		fmt.Fprintf(&sb, "partial aggregates at leaves: %s\n", strings.Join(aggs, ", "))
		if len(p.GroupBy) > 0 {
			keys := make([]string, len(p.GroupBy))
			for i, g := range p.GroupBy {
				keys[i] = g.String()
			}
			fmt.Fprintf(&sb, "group by: %s\n", strings.Join(keys, ", "))
		}
	}
	if p.ScanLimit >= 0 {
		fmt.Fprintf(&sb, "scan limit pushed to leaves: %d\n", p.ScanLimit)
	}
	if a := p.A; a.Having != nil {
		fmt.Fprintf(&sb, "having (at master): %s\n", a.Having)
	}
	if len(p.A.OrderBy) > 0 {
		fmt.Fprintf(&sb, "order by (at master): %d key(s)\n", len(p.A.OrderBy))
	}
	fmt.Fprintf(&sb, "dissection: %d leaf sub-plan(s), one per fact partition\n", len(fact.Meta.Partitions))
	return sb.String()
}

// DescribeAnalyze renders the plan followed by the executed query's span
// tree — the reproduction's EXPLAIN ANALYZE. The trace shows per-stage
// simulated and wall times plus index-hit/derived/miss and cache
// hit/miss/bypass counters collected during execution, and closes with the
// critical-path attribution: end-to-end latency partitioned into exclusive
// segments (queue wait, plan, schedule, slowest-leaf scan, transfer, merge,
// finalize) that sum exactly to the total.
func (p *PhysicalPlan) DescribeAnalyze(root *trace.Span) string {
	var sb strings.Builder
	sb.WriteString(p.Describe())
	sb.WriteString("\nexecution trace:\n")
	sb.WriteString(root.Render())
	if cp := trace.AnalyzeCriticalPath(root); cp != nil && cp.Total > 0 {
		sb.WriteString("\n")
		sb.WriteString(cp.Render())
	}
	return sb.String()
}

func joinColRefs(refs []ColRef) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.Table + "." + r.Col
	}
	return strings.Join(parts, ", ")
}

func describeClause(cl Clause) string {
	parts := make([]string, 0, len(cl.Atoms)+len(cl.Opaque))
	for _, a := range cl.Atoms {
		parts = append(parts, a.String()+" [indexable]")
	}
	for _, o := range cl.Opaque {
		parts = append(parts, o.String())
	}
	return strings.Join(parts, " OR ")
}
