package plan

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// BoundTable is one table of the query after catalog binding. Ordinal 0 is
// the fact table (the first FROM entry); all others are dimensions that the
// planner broadcasts to leaves (star-schema execution, paper §III-A).
type BoundTable struct {
	Ref     sqlparser.TableRef
	Meta    *TableMeta
	Ordinal int
}

// OutputItem is one column of the query result.
type OutputItem struct {
	Expr sqlparser.Expr
	Name string
	Type types.Type
	// Agg marks expressions containing group aggregates.
	Agg bool
	// Hidden items back HAVING/ORDER BY references not in the select list
	// and are dropped before results reach the client.
	Hidden bool
}

// OrderKey orders by an output column.
type OrderKey struct {
	Output int
	Desc   bool
}

// Analyzed is a fully bound and type-checked query.
type Analyzed struct {
	Stmt    *sqlparser.SelectStmt
	Tables  []*BoundTable
	Where   sqlparser.Expr // bound; nil when absent
	Outputs []OutputItem
	HasAgg  bool
	GroupBy []sqlparser.Expr // bound
	Having  sqlparser.Expr   // bound, rewritten over outputs
	OrderBy []OrderKey
	Limit   int64
}

// Fact returns the fact table.
func (a *Analyzed) Fact() *BoundTable { return a.Tables[0] }

// analyzer carries binding state.
type analyzer struct {
	tables []*BoundTable
	byBind map[string]*BoundTable
}

// Analyze binds the statement against the catalog and type-checks it.
func Analyze(stmt *sqlparser.SelectStmt, cat Catalog) (*Analyzed, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("plan: query has no FROM table")
	}
	a := &analyzer{byBind: make(map[string]*BoundTable)}
	addTable := func(ref sqlparser.TableRef) error {
		meta, err := cat.Lookup(ref.Name)
		if err != nil {
			return err
		}
		bt := &BoundTable{Ref: ref, Meta: meta, Ordinal: len(a.tables)}
		bind := ref.Binding()
		if _, dup := a.byBind[bind]; dup {
			return fmt.Errorf("plan: duplicate table binding %q", bind)
		}
		a.byBind[bind] = bt
		a.tables = append(a.tables, bt)
		return nil
	}
	for _, ref := range stmt.From {
		if err := addTable(ref); err != nil {
			return nil, err
		}
	}
	for _, j := range stmt.Joins {
		if err := addTable(j.Table); err != nil {
			return nil, err
		}
	}

	out := &Analyzed{Stmt: stmt, Tables: a.tables, Limit: stmt.Limit}

	// Bind WHERE and join conditions.
	if stmt.Where != nil {
		if err := a.bindExpr(stmt.Where); err != nil {
			return nil, err
		}
		t, err := a.typeOf(stmt.Where)
		if err != nil {
			return nil, err
		}
		if t != types.Bool && t != types.Null {
			return nil, fmt.Errorf("plan: WHERE must be boolean, got %s", t)
		}
		out.Where = stmt.Where
	}
	for _, j := range stmt.Joins {
		if j.On == nil {
			continue
		}
		if err := a.bindExpr(j.On); err != nil {
			return nil, err
		}
		if t, err := a.typeOf(j.On); err != nil {
			return nil, err
		} else if t != types.Bool {
			return nil, fmt.Errorf("plan: JOIN ON must be boolean, got %s", t)
		}
	}

	// Select list: expand *, bind, name, detect aggregates.
	aliases := make(map[string]int) // alias -> output index
	for _, item := range stmt.Items {
		if item.Star {
			for _, bt := range a.tables {
				for _, f := range bt.Meta.Schema.Fields {
					ref := &sqlparser.ColumnRef{Parts: []string{bt.Ref.Binding(), f.Name}}
					if err := a.bindExpr(ref); err != nil {
						return nil, err
					}
					out.Outputs = append(out.Outputs, OutputItem{Expr: ref, Name: f.Name, Type: f.Type})
				}
			}
			continue
		}
		if err := a.bindExpr(item.Expr); err != nil {
			return nil, err
		}
		t, err := a.typeOf(item.Expr)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			if c, ok := item.Expr.(*sqlparser.ColumnRef); ok {
				name = c.Column
			} else {
				name = item.Expr.String()
			}
		}
		oi := OutputItem{Expr: item.Expr, Name: name, Type: t, Agg: containsAgg(item.Expr)}
		if item.Alias != "" {
			aliases[item.Alias] = len(out.Outputs)
		}
		out.Outputs = append(out.Outputs, oi)
	}
	for _, oi := range out.Outputs {
		if oi.Agg {
			out.HasAgg = true
		}
	}
	if stmt.Having != nil && containsAgg(stmt.Having) {
		out.HasAgg = true
	}

	// GROUP BY: resolve aliases, bind.
	for _, g := range stmt.GroupBy {
		expr := g
		if c, ok := g.(*sqlparser.ColumnRef); ok && len(c.Parts) == 1 {
			if idx, isAlias := aliases[c.Parts[0]]; isAlias {
				expr = out.Outputs[idx].Expr
			}
		}
		if expr == g { // not an alias: bind as a column expression
			if err := a.bindExpr(expr); err != nil {
				return nil, err
			}
		}
		if containsAgg(expr) {
			return nil, fmt.Errorf("plan: GROUP BY cannot contain aggregates")
		}
		out.GroupBy = append(out.GroupBy, expr)
	}
	if len(out.GroupBy) > 0 {
		out.HasAgg = true
	}

	// With aggregation, every non-aggregate output must be a grouping key.
	if out.HasAgg {
		groupKeys := make(map[string]bool, len(out.GroupBy))
		for _, g := range out.GroupBy {
			groupKeys[g.String()] = true
		}
		for _, oi := range out.Outputs {
			if oi.Agg {
				continue
			}
			if _, isLit := oi.Expr.(*sqlparser.Literal); isLit {
				continue
			}
			if !groupKeys[oi.Expr.String()] {
				return nil, fmt.Errorf("plan: output %q must appear in GROUP BY or inside an aggregate", oi.Name)
			}
		}
	}

	// HAVING: bind, then rewrite over output columns (adding hidden ones).
	if stmt.Having != nil {
		if err := a.bindExpr(stmt.Having); err != nil {
			return nil, err
		}
		if !out.HasAgg {
			return nil, fmt.Errorf("plan: HAVING requires aggregation")
		}
		if t, err := a.typeOf(stmt.Having); err != nil {
			return nil, err
		} else if t != types.Bool {
			return nil, fmt.Errorf("plan: HAVING must be boolean, got %s", t)
		}
		out.Having = stmt.Having
		if err := out.ensureHavingBacked(a); err != nil {
			return nil, err
		}
	}

	// ORDER BY: resolve to output columns, adding hidden items when needed.
	for _, ob := range stmt.OrderBy {
		expr := ob.Expr
		if c, ok := expr.(*sqlparser.ColumnRef); ok && len(c.Parts) == 1 {
			if idx, isAlias := aliases[c.Parts[0]]; isAlias {
				out.OrderBy = append(out.OrderBy, OrderKey{Output: idx, Desc: ob.Desc})
				continue
			}
		}
		if err := a.bindExpr(expr); err != nil {
			return nil, err
		}
		idx, err := out.resolveToOutput(a, expr)
		if err != nil {
			return nil, err
		}
		out.OrderBy = append(out.OrderBy, OrderKey{Output: idx, Desc: ob.Desc})
	}

	return out, nil
}

// resolveToOutput finds (or appends as hidden) an output column computing
// expr.
func (o *Analyzed) resolveToOutput(a *analyzer, expr sqlparser.Expr) (int, error) {
	key := expr.String()
	for i, oi := range o.Outputs {
		if oi.Expr.String() == key {
			return i, nil
		}
	}
	isAgg := containsAgg(expr)
	if o.HasAgg && !isAgg {
		ok := false
		for _, g := range o.GroupBy {
			if g.String() == key {
				ok = true
				break
			}
		}
		if !ok {
			return 0, fmt.Errorf("plan: %q is neither selected, aggregated, nor grouped", key)
		}
	}
	t, err := a.typeOf(expr)
	if err != nil {
		return 0, err
	}
	o.Outputs = append(o.Outputs, OutputItem{Expr: expr, Name: key, Type: t, Agg: isAgg, Hidden: true})
	return len(o.Outputs) - 1, nil
}

// ensureHavingBacked guarantees every aggregate and grouping reference in
// HAVING has a backing output column, so HAVING can run over result rows.
func (o *Analyzed) ensureHavingBacked(a *analyzer) error {
	var visit func(e sqlparser.Expr) error
	visit = func(e sqlparser.Expr) error {
		switch x := e.(type) {
		case *sqlparser.FuncCall:
			if isAggName(x.Name) && x.Within == nil && !x.WithinRecord {
				_, err := o.resolveToOutput(a, x)
				return err
			}
			for _, arg := range x.Args {
				if err := visit(arg); err != nil {
					return err
				}
			}
		case *sqlparser.ColumnRef:
			_, err := o.resolveToOutput(a, x)
			return err
		case *sqlparser.BinaryExpr:
			if err := visit(x.L); err != nil {
				return err
			}
			return visit(x.R)
		case *sqlparser.NotExpr:
			return visit(x.X)
		case *sqlparser.NegExpr:
			return visit(x.X)
		case *sqlparser.IsNullExpr:
			return visit(x.X)
		}
		return nil
	}
	return visit(o.Having)
}

// bindExpr resolves every ColumnRef in the expression tree in place.
func (a *analyzer) bindExpr(e sqlparser.Expr) error {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		return a.bindColumn(x)
	case *sqlparser.Literal:
		return nil
	case *sqlparser.BinaryExpr:
		if err := a.bindExpr(x.L); err != nil {
			return err
		}
		return a.bindExpr(x.R)
	case *sqlparser.NotExpr:
		return a.bindExpr(x.X)
	case *sqlparser.NegExpr:
		return a.bindExpr(x.X)
	case *sqlparser.IsNullExpr:
		return a.bindExpr(x.X)
	case *sqlparser.FuncCall:
		for _, arg := range x.Args {
			if err := a.bindExpr(arg); err != nil {
				return err
			}
		}
		if x.Within != nil {
			if err := a.bindColumn(x.Within); err != nil {
				return err
			}
		}
		return a.checkCall(x)
	default:
		return fmt.Errorf("plan: cannot bind %T", e)
	}
}

// bindColumn resolves a dotted reference: "binding.rest" when the first
// segment is a table binding, otherwise the whole dotted path is tried as a
// flattened column name in every table.
func (a *analyzer) bindColumn(c *sqlparser.ColumnRef) error {
	if c.Column != "" {
		return nil // already bound
	}
	if len(c.Parts) >= 2 {
		if bt, ok := a.byBind[c.Parts[0]]; ok {
			name := strings.Join(c.Parts[1:], ".")
			if _, found := bt.Meta.Schema.Field(name); found {
				c.Table = bt.Ref.Binding()
				c.Column = name
				return nil
			}
			return fmt.Errorf("plan: table %q has no column %q", c.Parts[0], name)
		}
	}
	name := strings.Join(c.Parts, ".")
	var owner *BoundTable
	for _, bt := range a.tables {
		if _, found := bt.Meta.Schema.Field(name); found {
			if owner != nil {
				return fmt.Errorf("plan: column %q is ambiguous between %q and %q", name, owner.Ref.Binding(), bt.Ref.Binding())
			}
			owner = bt
		}
	}
	if owner == nil {
		return fmt.Errorf("plan: unknown column %q", name)
	}
	c.Table = owner.Ref.Binding()
	c.Column = name
	return nil
}

// field returns the schema field of a bound reference.
func (a *analyzer) field(c *sqlparser.ColumnRef) (types.Field, error) {
	bt, ok := a.byBind[c.Table]
	if !ok {
		return types.Field{}, fmt.Errorf("plan: unbound column %s", c)
	}
	f, ok := bt.Meta.Schema.Field(c.Column)
	if !ok {
		return types.Field{}, fmt.Errorf("plan: column %s vanished", c)
	}
	return f, nil
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true}

func isAggName(n string) bool { return aggNames[n] }

// containsAgg reports whether the expression contains a group aggregate
// (WITHIN-scoped calls are per-record scalars, not group aggregates).
func containsAgg(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		if isAggName(x.Name) && x.Within == nil && !x.WithinRecord {
			return true
		}
		for _, a := range x.Args {
			if containsAgg(a) {
				return true
			}
		}
	case *sqlparser.BinaryExpr:
		return containsAgg(x.L) || containsAgg(x.R)
	case *sqlparser.NotExpr:
		return containsAgg(x.X)
	case *sqlparser.NegExpr:
		return containsAgg(x.X)
	case *sqlparser.IsNullExpr:
		return containsAgg(x.X)
	}
	return false
}

// checkCall validates a function call's shape.
func (a *analyzer) checkCall(x *sqlparser.FuncCall) error {
	if !isAggName(x.Name) {
		return fmt.Errorf("plan: unknown function %q", x.Name)
	}
	if x.Star {
		if x.Name != "COUNT" {
			return fmt.Errorf("plan: %s(*) is not valid", x.Name)
		}
		if x.Within != nil || x.WithinRecord {
			return fmt.Errorf("plan: COUNT(*) cannot take WITHIN")
		}
		return nil
	}
	if len(x.Args) != 1 {
		return fmt.Errorf("plan: %s takes exactly one argument", x.Name)
	}
	if x.Within != nil || x.WithinRecord {
		// WITHIN aggregates run per record over a repeated field
		// (paper §III-A); the argument must be a repeated column.
		c, ok := x.Args[0].(*sqlparser.ColumnRef)
		if !ok {
			return fmt.Errorf("plan: %s ... WITHIN requires a repeated column argument", x.Name)
		}
		f, err := a.field(c)
		if err != nil {
			return err
		}
		if !f.Repeated {
			return fmt.Errorf("plan: WITHIN aggregate over non-repeated column %q", c.Column)
		}
		if containsAgg(x.Args[0]) {
			return fmt.Errorf("plan: nested aggregates")
		}
		return nil
	}
	if containsAgg(x.Args[0]) {
		return fmt.Errorf("plan: nested aggregates")
	}
	if x.Name != "COUNT" && x.Name != "MIN" && x.Name != "MAX" {
		if t, err := a.typeOf(x.Args[0]); err != nil {
			return err
		} else if !t.Numeric() && t != types.Null {
			return fmt.Errorf("plan: %s over non-numeric %s", x.Name, t)
		}
	}
	return nil
}

// typeOf infers the type of a bound expression.
func (a *analyzer) typeOf(e sqlparser.Expr) (types.Type, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Value.T, nil
	case *sqlparser.ColumnRef:
		f, err := a.field(x)
		if err != nil {
			return types.Null, err
		}
		return f.Type, nil
	case *sqlparser.NotExpr:
		t, err := a.typeOf(x.X)
		if err != nil {
			return types.Null, err
		}
		if t != types.Bool && t != types.Null {
			return types.Null, fmt.Errorf("plan: NOT over %s", t)
		}
		return types.Bool, nil
	case *sqlparser.IsNullExpr:
		if _, err := a.typeOf(x.X); err != nil {
			return types.Null, err
		}
		return types.Bool, nil
	case *sqlparser.NegExpr:
		t, err := a.typeOf(x.X)
		if err != nil {
			return types.Null, err
		}
		if !t.Numeric() && t != types.Null {
			return types.Null, fmt.Errorf("plan: negation of %s", t)
		}
		return t, nil
	case *sqlparser.FuncCall:
		switch x.Name {
		case "COUNT":
			return types.Int64, nil
		case "AVG":
			return types.Float64, nil
		case "SUM":
			if x.WithinRecord || x.Within != nil {
				c := x.Args[0].(*sqlparser.ColumnRef)
				f, err := a.field(c)
				if err != nil {
					return types.Null, err
				}
				return f.Type, nil
			}
			return a.typeOf(x.Args[0])
		case "MIN", "MAX":
			return a.typeOf(x.Args[0])
		default:
			return types.Null, fmt.Errorf("plan: unknown function %q", x.Name)
		}
	case *sqlparser.BinaryExpr:
		lt, err := a.typeOf(x.L)
		if err != nil {
			return types.Null, err
		}
		rt, err := a.typeOf(x.R)
		if err != nil {
			return types.Null, err
		}
		switch x.Op {
		case sqlparser.OpAnd, sqlparser.OpOr:
			for _, t := range []types.Type{lt, rt} {
				if t != types.Bool && t != types.Null {
					return types.Null, fmt.Errorf("plan: %s over %s", x.Op, t)
				}
			}
			return types.Bool, nil
		case sqlparser.OpContains:
			if lt != types.String && lt != types.Null || rt != types.String && rt != types.Null {
				return types.Null, fmt.Errorf("plan: CONTAINS needs strings, got %s and %s", lt, rt)
			}
			return types.Bool, nil
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
			if !comparable(lt, rt) {
				return types.Null, fmt.Errorf("plan: cannot compare %s with %s", lt, rt)
			}
			return types.Bool, nil
		case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv, sqlparser.OpMod:
			if lt == types.Null || rt == types.Null {
				return types.Null, nil
			}
			if !lt.Numeric() || !rt.Numeric() {
				return types.Null, fmt.Errorf("plan: arithmetic over %s and %s", lt, rt)
			}
			if x.Op == sqlparser.OpDiv || lt == types.Float64 || rt == types.Float64 {
				return types.Float64, nil
			}
			return types.Int64, nil
		default:
			return types.Null, fmt.Errorf("plan: unhandled operator %s", x.Op)
		}
	default:
		return types.Null, fmt.Errorf("plan: cannot type %T", e)
	}
}

func comparable(a, b types.Type) bool {
	if a == types.Null || b == types.Null {
		return true
	}
	if a.Numeric() && b.Numeric() {
		return true
	}
	return a == b
}
