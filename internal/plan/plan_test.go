package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

func testCatalog() MapCatalog {
	logs := types.MustSchema(
		types.Field{Name: "query", Type: types.String},
		types.Field{Name: "url", Type: types.String},
		types.Field{Name: "clicks", Type: types.Int64},
		types.Field{Name: "pos", Type: types.Int64},
		types.Field{Name: "score", Type: types.Float64},
		types.Field{Name: "uid", Type: types.Int64},
		types.Field{Name: "click.pos", Type: types.Int64, Repeated: true},
	)
	users := types.MustSchema(
		types.Field{Name: "uid", Type: types.Int64},
		types.Field{Name: "city", Type: types.String},
		types.Field{Name: "vip", Type: types.Bool},
	)
	return MapCatalog{
		"logs": &TableMeta{Name: "logs", Schema: logs, Partitions: []PartitionMeta{
			{Path: "/hdfs/logs/p0", Rows: 100, Bytes: 1000},
			{Path: "/hdfs/logs/p1", Rows: 100, Bytes: 1000},
		}},
		"users": &TableMeta{Name: "users", Schema: users, Partitions: []PartitionMeta{
			{Path: "/ffs/users/p0", Rows: 10, Bytes: 100},
		}},
	}
}

func analyzeSQL(t *testing.T, sql string) *Analyzed {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	a, err := Analyze(stmt, testCatalog())
	if err != nil {
		t.Fatalf("analyze %q: %v", sql, err)
	}
	return a
}

func planSQL(t *testing.T, sql string) *PhysicalPlan {
	t.Helper()
	p, err := Build(analyzeSQL(t, sql))
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	return p
}

func TestCatalogLookup(t *testing.T) {
	cat := testCatalog()
	tm, err := cat.Lookup("logs")
	if err != nil || tm.Name != "logs" {
		t.Fatalf("lookup = %v, %v", tm, err)
	}
	if tm.Rows() != 200 || tm.Bytes() != 2000 {
		t.Errorf("rows=%d bytes=%d", tm.Rows(), tm.Bytes())
	}
	if _, err := cat.Lookup("missing"); err == nil {
		t.Error("missing table should fail")
	}
	if got := cat.Tables(); len(got) != 2 || got[0] != "logs" {
		t.Errorf("tables = %v", got)
	}
}

func TestAnalyzeBindsColumns(t *testing.T) {
	a := analyzeSQL(t, "SELECT url FROM logs WHERE clicks > 10")
	c := a.Outputs[0].Expr.(*sqlparser.ColumnRef)
	if c.Table != "logs" || c.Column != "url" {
		t.Errorf("binding = %q.%q", c.Table, c.Column)
	}
	if a.Outputs[0].Type != types.String {
		t.Errorf("type = %v", a.Outputs[0].Type)
	}
	w := a.Where.(*sqlparser.BinaryExpr)
	if w.L.(*sqlparser.ColumnRef).Column != "clicks" {
		t.Error("where not bound")
	}
}

func TestAnalyzeDottedFlattenedColumn(t *testing.T) {
	a := analyzeSQL(t, "SELECT SUM(click.pos) WITHIN RECORD FROM logs")
	fc := a.Outputs[0].Expr.(*sqlparser.FuncCall)
	c := fc.Args[0].(*sqlparser.ColumnRef)
	if c.Column != "click.pos" || c.Table != "logs" {
		t.Errorf("binding = %q.%q", c.Table, c.Column)
	}
	if a.HasAgg {
		t.Error("WITHIN RECORD is per-record, not a group aggregate")
	}
}

func TestAnalyzeQualifiedAndAmbiguous(t *testing.T) {
	a := analyzeSQL(t, "SELECT l.uid FROM logs l, users WHERE l.uid = users.uid")
	c := a.Outputs[0].Expr.(*sqlparser.ColumnRef)
	if c.Table != "l" || c.Column != "uid" {
		t.Errorf("binding = %q.%q", c.Table, c.Column)
	}
	// Unqualified uid is ambiguous between logs and users.
	stmt, _ := sqlparser.Parse("SELECT uid FROM logs, users")
	if _, err := Analyze(stmt, testCatalog()); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous error = %v", err)
	}
}

func TestAnalyzeStarExpansion(t *testing.T) {
	a := analyzeSQL(t, "SELECT * FROM users")
	if len(a.Outputs) != 3 || a.Outputs[1].Name != "city" {
		t.Errorf("outputs = %+v", a.Outputs)
	}
}

func TestAnalyzeAggregation(t *testing.T) {
	a := analyzeSQL(t, "SELECT url, COUNT(*) AS n, AVG(score) FROM logs GROUP BY url HAVING COUNT(*) > 5 ORDER BY n DESC LIMIT 3")
	if !a.HasAgg || len(a.GroupBy) != 1 {
		t.Fatalf("agg = %v groupby = %d", a.HasAgg, len(a.GroupBy))
	}
	if !a.Outputs[1].Agg || !a.Outputs[2].Agg || a.Outputs[0].Agg {
		t.Error("agg flags wrong")
	}
	if a.Having == nil {
		t.Error("having missing")
	}
	if len(a.OrderBy) != 1 || a.OrderBy[0].Output != 1 || !a.OrderBy[0].Desc {
		t.Errorf("orderby = %+v", a.OrderBy)
	}
	if a.Limit != 3 {
		t.Errorf("limit = %d", a.Limit)
	}
}

func TestAnalyzeGroupByAlias(t *testing.T) {
	a := analyzeSQL(t, "SELECT url AS u, COUNT(*) FROM logs GROUP BY u")
	if len(a.GroupBy) != 1 {
		t.Fatal("groupby missing")
	}
	c, ok := a.GroupBy[0].(*sqlparser.ColumnRef)
	if !ok || c.Column != "url" {
		t.Errorf("groupby = %#v", a.GroupBy[0])
	}
}

func TestAnalyzeHiddenOrderKey(t *testing.T) {
	// ORDER BY an unselected aggregate forces a hidden output.
	a := analyzeSQL(t, "SELECT url FROM logs GROUP BY url ORDER BY COUNT(*) DESC")
	if len(a.Outputs) != 2 || !a.Outputs[1].Hidden || !a.Outputs[1].Agg {
		t.Fatalf("outputs = %+v", a.Outputs)
	}
	if a.OrderBy[0].Output != 1 {
		t.Errorf("order key = %+v", a.OrderBy[0])
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := []struct{ sql, want string }{
		{"SELECT nosuch FROM logs", "unknown column"},
		{"SELECT url FROM nosuch", "unknown table"},
		{"SELECT url FROM logs WHERE clicks + 1", "boolean"},
		{"SELECT url, COUNT(*) FROM logs", "GROUP BY"},
		{"SELECT url FROM logs GROUP BY COUNT(*)", "aggregates"},
		{"SELECT COUNT(*) FROM logs HAVING url = 'x'", "grouped"},
		{"SELECT url FROM logs HAVING COUNT(*) > 1", ""}, // HasAgg via having is fine? no: outputs must group
		{"SELECT SUM(url) FROM logs", "non-numeric"},
		{"SELECT SUM(pos) WITHIN RECORD FROM logs", "non-repeated"},
		{"SELECT url FROM logs, logs", "duplicate table binding"},
		{"SELECT url FROM logs WHERE query CONTAINS 5", "CONTAINS"},
		{"SELECT url, COUNT(*) FROM logs GROUP BY url ORDER BY score", "neither selected"},
		{"SELECT MIN(score, pos) FROM logs", "one argument"},
		{"SELECT AVG(COUNT(*)) FROM logs", "nested"},
	}
	for _, c := range bad {
		stmt, err := sqlparser.Parse(c.sql)
		if err != nil {
			t.Errorf("parse %q: %v", c.sql, err)
			continue
		}
		_, err = Analyze(stmt, testCatalog())
		if err == nil {
			t.Errorf("Analyze(%q) should fail", c.sql)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("Analyze(%q) = %v, want containing %q", c.sql, err, c.want)
		}
	}
}

func TestToCNFSimpleAnd(t *testing.T) {
	a := analyzeSQL(t, "SELECT url FROM logs WHERE clicks > 0 AND clicks <= 5")
	cnf := ToCNF(a.Where)
	if len(cnf.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(cnf.Clauses))
	}
	for _, cl := range cnf.Clauses {
		if !cl.Indexable() || len(cl.Atoms) != 1 {
			t.Errorf("clause = %+v", cl)
		}
	}
	if cnf.Clauses[0].Atoms[0].Key() != "clicks > 0" {
		t.Errorf("key = %q", cnf.Clauses[0].Atoms[0].Key())
	}
}

func TestToCNFNotPushdown(t *testing.T) {
	// The paper's Fig. 7 rewriting: !(c > 5) becomes c <= 5.
	a := analyzeSQL(t, "SELECT url FROM logs WHERE clicks > 0 AND !(clicks > 5)")
	cnf := ToCNF(a.Where)
	if len(cnf.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(cnf.Clauses))
	}
	if got := cnf.Clauses[1].Atoms[0].Key(); got != "clicks <= 5" {
		t.Errorf("negation pushdown = %q", got)
	}
}

func TestToCNFDeMorganDistribution(t *testing.T) {
	a := analyzeSQL(t, "SELECT url FROM logs WHERE NOT (clicks > 5 OR score < 0.5) AND (pos = 1 OR pos = 2)")
	cnf := ToCNF(a.Where)
	// NOT(x OR y) -> two clauses; (p OR q) -> one clause with two atoms.
	if len(cnf.Clauses) != 3 {
		t.Fatalf("clauses = %d: %+v", len(cnf.Clauses), cnf.Clauses)
	}
	last := cnf.Clauses[2]
	if len(last.Atoms) != 2 || !last.Indexable() {
		t.Errorf("or clause = %+v", last)
	}
}

func TestToCNFOrOfAnds(t *testing.T) {
	a := analyzeSQL(t, "SELECT url FROM logs WHERE (clicks > 1 AND pos = 2) OR score > 0.9")
	cnf := ToCNF(a.Where)
	// (A AND B) OR C -> (A OR C) AND (B OR C).
	if len(cnf.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(cnf.Clauses))
	}
	for _, cl := range cnf.Clauses {
		if len(cl.Atoms) != 2 {
			t.Errorf("clause atoms = %d", len(cl.Atoms))
		}
	}
}

func TestToCNFContainsNegation(t *testing.T) {
	a := analyzeSQL(t, "SELECT url FROM logs WHERE NOT (query CONTAINS 'spam')")
	cnf := ToCNF(a.Where)
	if len(cnf.Clauses) != 1 || len(cnf.Clauses[0].Atoms) != 1 {
		t.Fatalf("cnf = %+v", cnf)
	}
	atom := cnf.Clauses[0].Atoms[0]
	if !atom.Negated || atom.Op != sqlparser.OpContains {
		t.Errorf("atom = %+v", atom)
	}
	if atom.Key() != "query CONTAINS 'spam'" && !strings.Contains(atom.Key(), "CONTAINS") {
		t.Errorf("key = %q", atom.Key())
	}
}

func TestToCNFLiteralOnLeft(t *testing.T) {
	a := analyzeSQL(t, "SELECT url FROM logs WHERE 5 < clicks")
	cnf := ToCNF(a.Where)
	atom := cnf.Clauses[0].Atoms[0]
	if atom.Col != "clicks" || atom.Op != sqlparser.OpGt {
		t.Errorf("flipped atom = %+v", atom)
	}
}

func TestToCNFNil(t *testing.T) {
	if got := ToCNF(nil); len(got.Clauses) != 0 {
		t.Errorf("nil CNF = %+v", got)
	}
}

func TestEvalAtom(t *testing.T) {
	atom := Atom{Col: "c", Op: sqlparser.OpGt, Val: types.NewInt(5)}
	if !EvalAtom(atom, types.NewInt(6)) || EvalAtom(atom, types.NewInt(5)) {
		t.Error("Gt eval wrong")
	}
	if EvalAtom(atom, types.NullValue()) {
		t.Error("NULL should not satisfy")
	}
	cont := Atom{Col: "s", Op: sqlparser.OpContains, Val: types.NewString("am")}
	if !EvalAtom(cont, types.NewString("spam")) || EvalAtom(cont, types.NewString("ok")) {
		t.Error("contains eval wrong")
	}
	ncont := cont
	ncont.Negated = true
	if EvalAtom(ncont, types.NewString("spam")) || !EvalAtom(ncont, types.NewString("ok")) {
		t.Error("negated contains eval wrong")
	}
	eq := Atom{Col: "c", Op: sqlparser.OpEq, Val: types.NewFloat(2)}
	if !EvalAtom(eq, types.NewInt(2)) {
		t.Error("cross-type equality")
	}
}

func TestBuildPushdownAndPruning(t *testing.T) {
	p := planSQL(t, "SELECT url FROM logs WHERE clicks > 10 AND score > 0.5")
	if p.Mode != ModeSelect {
		t.Error("mode should be select")
	}
	if len(p.Filter.Clauses) != 2 || len(p.Post) != 0 {
		t.Errorf("filter=%d post=%d", len(p.Filter.Clauses), len(p.Post))
	}
	want := map[string]bool{"url": true, "clicks": true, "score": true}
	if len(p.FactCols) != len(want) {
		t.Errorf("FactCols = %v", p.FactCols)
	}
	for _, c := range p.FactCols {
		if !want[c] {
			t.Errorf("unexpected column %q", c)
		}
	}
	if len(p.Tasks()) != 2 {
		t.Errorf("tasks = %d", len(p.Tasks()))
	}
}

func TestBuildImplicitJoin(t *testing.T) {
	p := planSQL(t, "SELECT city, COUNT(*) FROM logs, users WHERE logs.uid = users.uid AND clicks > 0 GROUP BY city")
	if len(p.Dims) != 1 {
		t.Fatalf("dims = %d", len(p.Dims))
	}
	d := p.Dims[0]
	if d.Type != sqlparser.JoinInner || len(d.FactKeys) != 1 || d.DimKeys[0] != "uid" {
		t.Errorf("dim = %+v", d)
	}
	if len(p.Filter.Clauses) != 1 {
		t.Errorf("pushed filter = %d", len(p.Filter.Clauses))
	}
	if len(p.Post) != 0 {
		t.Errorf("post = %+v", p.Post)
	}
	foundCity := false
	for _, c := range d.Needed {
		if c == "city" {
			foundCity = true
		}
	}
	if !foundCity {
		t.Errorf("dim needed = %v", d.Needed)
	}
}

func TestBuildExplicitJoinWithResidual(t *testing.T) {
	p := planSQL(t, "SELECT url FROM logs l LEFT JOIN users u ON l.uid = u.uid AND u.vip = TRUE WHERE score > 0 OR u.city = 'bj'")
	d := p.Dims[0]
	if d.Type != sqlparser.JoinLeftOuter || len(d.FactKeys) != 1 {
		t.Fatalf("dim = %+v", d)
	}
	if len(d.Residual) != 1 {
		t.Errorf("residual = %+v", d.Residual)
	}
	// WHERE references both tables -> post-join clause.
	if len(p.Post) != 1 || len(p.Filter.Clauses) != 0 {
		t.Errorf("filter=%d post=%d", len(p.Filter.Clauses), len(p.Post))
	}
}

func TestBuildCrossJoinFallback(t *testing.T) {
	p := planSQL(t, "SELECT url FROM logs, users WHERE clicks > 0")
	if p.Dims[0].Type != sqlparser.JoinCross {
		t.Errorf("keyless comma join should become cross, got %v", p.Dims[0].Type)
	}
}

func TestBuildAggSpecs(t *testing.T) {
	p := planSQL(t, "SELECT url, COUNT(*), SUM(clicks), AVG(score), COUNT(*) FROM logs GROUP BY url")
	if len(p.Aggs) != 3 { // COUNT(*) deduped
		t.Fatalf("aggs = %+v", p.Aggs)
	}
	if p.Aggs[0].Func != "COUNT" || !p.Aggs[0].Star {
		t.Errorf("agg0 = %+v", p.Aggs[0])
	}
	if p.Mode != ModeAgg {
		t.Error("mode should be agg")
	}
}

func TestBuildScanLimitPushdown(t *testing.T) {
	p := planSQL(t, "SELECT url FROM logs LIMIT 7")
	if p.ScanLimit != 7 {
		t.Errorf("ScanLimit = %d", p.ScanLimit)
	}
	p = planSQL(t, "SELECT url FROM logs ORDER BY url LIMIT 7")
	if p.ScanLimit != -1 {
		t.Errorf("ordered limit should not push down, got %d", p.ScanLimit)
	}
}

func TestTaskKeysIdentifyWork(t *testing.T) {
	p1 := planSQL(t, "SELECT url FROM logs WHERE clicks > 10")
	p2 := planSQL(t, "SELECT url FROM logs WHERE clicks > 10")
	p3 := planSQL(t, "SELECT url FROM logs WHERE clicks > 11")
	if p1.Tasks()[0].Key() != p2.Tasks()[0].Key() {
		t.Error("identical queries should share task keys")
	}
	if p1.Tasks()[0].Key() == p3.Tasks()[0].Key() {
		t.Error("different predicates must not share task keys")
	}
	if p1.Tasks()[0].Key() == p1.Tasks()[1].Key() {
		t.Error("different partitions must not share task keys")
	}
}

func TestColumnsOfDedup(t *testing.T) {
	a := analyzeSQL(t, "SELECT clicks + clicks FROM logs")
	var refs []ColRef
	ColumnsOf(a.Outputs[0].Expr, &refs)
	if len(refs) != 1 {
		t.Errorf("refs = %v", refs)
	}
}

func TestDescribe(t *testing.T) {
	p := planSQL(t, "SELECT city, COUNT(*) AS n FROM logs, users WHERE logs.uid = users.uid AND clicks > 3 GROUP BY city HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5")
	desc := p.Describe()
	for _, want := range []string{
		"mode: aggregate",
		"fact table: logs (2 partitions",
		"clicks > 3 [indexable]",
		"broadcast inner join users on logs.uid = users.uid",
		"partial aggregates at leaves: COUNT(*)",
		"group by: users.city",
		"having (at master)",
		"dissection: 2 leaf sub-plan(s)",
	} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
	p2 := planSQL(t, "SELECT url FROM logs LIMIT 4")
	if !strings.Contains(p2.Describe(), "scan limit pushed to leaves: 4") {
		t.Errorf("select describe:\n%s", p2.Describe())
	}
}

func TestPlanConvenience(t *testing.T) {
	stmt, err := sqlparser.Parse("SELECT COUNT(*) FROM logs WHERE clicks > 1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Plan(stmt, testCatalog())
	if err != nil || p.Mode != ModeAgg {
		t.Fatalf("Plan = %+v, %v", p, err)
	}
	if _, err := Plan(stmt, MapCatalog{}); err == nil {
		t.Error("Plan over empty catalog should fail")
	}
}

func TestFlipAllOperators(t *testing.T) {
	// Literal-on-left comparisons flip into canonical atoms.
	cases := map[string]string{
		"SELECT url FROM logs WHERE 5 < clicks":  "clicks > 5",
		"SELECT url FROM logs WHERE 5 <= clicks": "clicks >= 5",
		"SELECT url FROM logs WHERE 5 > clicks":  "clicks < 5",
		"SELECT url FROM logs WHERE 5 >= clicks": "clicks <= 5",
		"SELECT url FROM logs WHERE 5 = clicks":  "clicks = 5",
		"SELECT url FROM logs WHERE 5 != clicks": "clicks != 5",
	}
	for sql, want := range cases {
		a := analyzeSQL(t, sql)
		cnf := ToCNF(a.Where)
		if got := cnf.Clauses[0].Atoms[0].Key(); got != want {
			t.Errorf("%q atom = %q, want %q", sql, got, want)
		}
	}
}

func TestCNFBlowupCap(t *testing.T) {
	// A deeply alternated OR-of-ANDs beyond the cap collapses into one
	// opaque clause rather than exploding.
	var sb strings.Builder
	sb.WriteString("SELECT url FROM logs WHERE ")
	for i := 0; i < 9; i++ {
		if i > 0 {
			sb.WriteString(" OR ")
		}
		fmt.Fprintf(&sb, "(clicks = %d AND pos = %d)", i, i)
	}
	a := analyzeSQL(t, sb.String())
	cnf := ToCNF(a.Where)
	// 2^9 = 512 > cap, so distribution must have been abandoned at some
	// level; the result stays small.
	if len(cnf.Clauses) > 64 {
		t.Errorf("clauses = %d, blowup not capped", len(cnf.Clauses))
	}
}

func TestAtomString(t *testing.T) {
	a := Atom{Col: "c", Op: sqlparser.OpGt, Val: types.NewInt(5)}
	if a.String() != "c > 5" {
		t.Errorf("String = %q", a.String())
	}
	a.Negated = true
	if a.String() != "NOT(c > 5)" {
		t.Errorf("negated String = %q", a.String())
	}
}
