package plan

import (
	"fmt"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// The paper's SmartIndex keys on predicates "converted to the conjunctive
// form" (§IV-A): WHERE becomes a conjunction of clauses, each clause a
// disjunction of leaf predicates. Leaves of the shape `column OP literal`
// become Atoms — the unit the index caches bitmaps for.

// Atom is one indexable leaf predicate over a single column.
type Atom struct {
	Table string
	Col   string
	Op    sqlparser.BinaryOp
	Val   types.Value
	// Negated is set only for operators without a complement (CONTAINS);
	// comparison negations are folded into Op by the NOT pushdown.
	Negated bool
}

// Key returns the canonical identity of the positive form of the atom,
// which is the SmartIndex cache key ("op/colname/colvalue" in the paper's
// index schema, Fig. 6).
func (a Atom) Key() string {
	return fmt.Sprintf("%s %s %s", a.Col, a.Op, a.Val.String())
}

// String renders the atom including negation.
func (a Atom) String() string {
	if a.Negated {
		return "NOT(" + a.Key() + ")"
	}
	return a.Key()
}

// Clause is one disjunction: it holds indexable atoms plus opaque leaves
// that must be evaluated row-wise. The clause is satisfied when any leaf is.
type Clause struct {
	Atoms  []Atom
	Opaque []sqlparser.Expr
}

// Indexable reports whether every leaf of the clause is an atom, i.e. the
// whole clause can be answered from bitmaps.
func (c Clause) Indexable() bool { return len(c.Opaque) == 0 }

// CNF is a conjunction of clauses; all must hold.
type CNF struct {
	Clauses []Clause
}

// maxClauses bounds OR-distribution blowup; beyond it the offending subtree
// is kept as one opaque leaf.
const maxClauses = 64

// ToCNF normalizes a bound boolean expression: NOT is pushed to the leaves
// (flipping comparisons, De Morgan over AND/OR), then AND/OR are distributed
// into conjunctive normal form with a blowup cap.
func ToCNF(e sqlparser.Expr) CNF {
	if e == nil {
		return CNF{}
	}
	pushed := pushNot(e, false)
	clauses := distribute(pushed)
	out := CNF{Clauses: make([]Clause, 0, len(clauses))}
	for _, cl := range clauses {
		out.Clauses = append(out.Clauses, classify(cl))
	}
	return out
}

// pushNot returns the expression with negations pushed to the leaves.
func pushNot(e sqlparser.Expr, neg bool) sqlparser.Expr {
	switch x := e.(type) {
	case *sqlparser.NotExpr:
		return pushNot(x.X, !neg)
	case *sqlparser.IsNullExpr:
		if neg { // NOT (x IS NULL) == x IS NOT NULL
			return &sqlparser.IsNullExpr{X: x.X, Not: !x.Not}
		}
		return x
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case sqlparser.OpAnd:
			l, r := pushNot(x.L, neg), pushNot(x.R, neg)
			if neg { // De Morgan
				return &sqlparser.BinaryExpr{Op: sqlparser.OpOr, L: l, R: r}
			}
			return &sqlparser.BinaryExpr{Op: sqlparser.OpAnd, L: l, R: r}
		case sqlparser.OpOr:
			l, r := pushNot(x.L, neg), pushNot(x.R, neg)
			if neg {
				return &sqlparser.BinaryExpr{Op: sqlparser.OpAnd, L: l, R: r}
			}
			return &sqlparser.BinaryExpr{Op: sqlparser.OpOr, L: l, R: r}
		default:
			if neg {
				if flipped, ok := x.Op.Negate(); ok {
					return &sqlparser.BinaryExpr{Op: flipped, L: x.L, R: x.R}
				}
				return &sqlparser.NotExpr{X: x}
			}
			return x
		}
	default:
		if neg {
			return &sqlparser.NotExpr{X: e}
		}
		return e
	}
}

// distribute converts a NOT-pushed expression to a list of OR-clauses.
func distribute(e sqlparser.Expr) []sqlparser.Expr {
	if b, ok := e.(*sqlparser.BinaryExpr); ok {
		switch b.Op {
		case sqlparser.OpAnd:
			return append(distribute(b.L), distribute(b.R)...)
		case sqlparser.OpOr:
			ls, rs := distribute(b.L), distribute(b.R)
			if len(ls)*len(rs) > maxClauses {
				return []sqlparser.Expr{e}
			}
			out := make([]sqlparser.Expr, 0, len(ls)*len(rs))
			for _, l := range ls {
				for _, r := range rs {
					out = append(out, &sqlparser.BinaryExpr{Op: sqlparser.OpOr, L: l, R: r})
				}
			}
			return out
		}
	}
	return []sqlparser.Expr{e}
}

// classify splits one OR-clause into atoms and opaque leaves.
func classify(clause sqlparser.Expr) Clause {
	var c Clause
	var walk func(e sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == sqlparser.OpOr {
			walk(b.L)
			walk(b.R)
			return
		}
		if a, ok := atomOf(e); ok {
			c.Atoms = append(c.Atoms, a)
			return
		}
		c.Opaque = append(c.Opaque, e)
	}
	walk(clause)
	return c
}

// atomOf extracts an Atom from a leaf of the form `col OP literal` (either
// side), or NOT(col CONTAINS literal).
func atomOf(e sqlparser.Expr) (Atom, bool) {
	if n, ok := e.(*sqlparser.NotExpr); ok {
		a, ok := atomOf(n.X)
		if !ok || a.Negated {
			return Atom{}, false
		}
		if _, invertible := a.Op.Negate(); invertible {
			// pushNot already handles these; be safe anyway.
			op, _ := a.Op.Negate()
			a.Op = op
			return a, true
		}
		a.Negated = true
		return a, true
	}
	b, ok := e.(*sqlparser.BinaryExpr)
	if !ok || !b.Op.Comparison() {
		return Atom{}, false
	}
	if col, okc := b.L.(*sqlparser.ColumnRef); okc {
		if lit, okl := b.R.(*sqlparser.Literal); okl && col.Column != "" {
			return Atom{Table: col.Table, Col: col.Column, Op: b.Op, Val: lit.Value}, true
		}
	}
	if col, okc := b.R.(*sqlparser.ColumnRef); okc {
		if lit, okl := b.L.(*sqlparser.Literal); okl && col.Column != "" && b.Op != sqlparser.OpContains {
			return Atom{Table: col.Table, Col: col.Column, Op: flip(b.Op), Val: lit.Value}, true
		}
	}
	return Atom{}, false
}

// flip mirrors a comparison when operands swap sides.
func flip(op sqlparser.BinaryOp) sqlparser.BinaryOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	default:
		return op // =, != are symmetric
	}
}

// EvalAtom evaluates the atom against one value. NULL input yields false
// (SQL three-valued logic collapses to false at the filter boundary).
func EvalAtom(a Atom, v types.Value) bool {
	if v.IsNull() || a.Val.IsNull() {
		return false
	}
	var res bool
	if a.Op == sqlparser.OpContains {
		if v.T != types.String || a.Val.T != types.String {
			return false
		}
		res = contains(v.S, a.Val.S)
	} else {
		cmp, err := types.Compare(v, a.Val)
		if err != nil {
			return false
		}
		switch a.Op {
		case sqlparser.OpEq:
			res = cmp == 0
		case sqlparser.OpNe:
			res = cmp != 0
		case sqlparser.OpLt:
			res = cmp < 0
		case sqlparser.OpLe:
			res = cmp <= 0
		case sqlparser.OpGt:
			res = cmp > 0
		case sqlparser.OpGe:
			res = cmp >= 0
		default:
			return false
		}
	}
	if a.Negated {
		return !res
	}
	return res
}

func contains(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// ColumnsOf collects the distinct (table, column) pairs referenced by the
// expression, in first-appearance order — the planner's column pruning input.
func ColumnsOf(e sqlparser.Expr, sink *[]ColRef) {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		addCol(sink, ColRef{Table: x.Table, Col: x.Column})
	case *sqlparser.BinaryExpr:
		ColumnsOf(x.L, sink)
		ColumnsOf(x.R, sink)
	case *sqlparser.NotExpr:
		ColumnsOf(x.X, sink)
	case *sqlparser.NegExpr:
		ColumnsOf(x.X, sink)
	case *sqlparser.IsNullExpr:
		ColumnsOf(x.X, sink)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			ColumnsOf(a, sink)
		}
		if x.Within != nil {
			ColumnsOf(x.Within, sink)
		}
	}
}

// ColRef names a bound column.
type ColRef struct {
	Table string
	Col   string
}

func addCol(sink *[]ColRef, c ColRef) {
	for _, e := range *sink {
		if e == c {
			return
		}
	}
	*sink = append(*sink, c)
}
