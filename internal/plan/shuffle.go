package plan

import (
	"fmt"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Shuffle planning: when a join's build side is too large to broadcast (or
// the join is RIGHT OUTER, which the broadcast executor cannot preserve),
// the planner emits a hash-partitioned repartition shuffle instead of a
// star-schema broadcast. Both join inputs are scanned by ordinary map tasks
// (derived sub-plans below), hash-partitioned on the equi-join keys, and
// streamed to reducers that run the partitioned hash join. A grouped
// aggregation over a large fact table repartitions partial groups by group
// key the same way (GroupShuffle).

// Options tune the physical planner's shuffle decisions. The zero value of
// each field selects the default; negative values have per-field meanings
// documented below.
type Options struct {
	// BroadcastThreshold is the catalog byte size above which a join's
	// build side is repartitioned instead of broadcast. 0 uses the default
	// (16 MB); negative repartitions every eligible join (tests force the
	// distributed path this way).
	BroadcastThreshold int64
	// ShufflePartitions is the hash-partition fan-out. <=0 uses 4.
	ShufflePartitions int
	// GroupShuffleRows repartitions a grouped aggregation whose fact table
	// reaches this many cataloged rows. 0 uses the default (1M rows);
	// negative disables group shuffling.
	GroupShuffleRows int64
	// MemoryGrantBytes is each reducer operator's memory grant; exceeding
	// it triggers grace-hash spill to storage. <=0 uses 64 MB.
	MemoryGrantBytes int64
}

// DefaultOptions returns the planner defaults (what Plan uses).
func DefaultOptions() Options {
	return Options{
		BroadcastThreshold: 16 << 20,
		ShufflePartitions:  4,
		GroupShuffleRows:   1 << 20,
		MemoryGrantBytes:   64 << 20,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.BroadcastThreshold == 0 {
		o.BroadcastThreshold = d.BroadcastThreshold
	}
	if o.ShufflePartitions <= 0 {
		o.ShufflePartitions = d.ShufflePartitions
	}
	if o.GroupShuffleRows == 0 {
		o.GroupShuffleRows = d.GroupShuffleRows
	}
	if o.MemoryGrantBytes <= 0 {
		o.MemoryGrantBytes = d.MemoryGrantBytes
	}
	return o
}

// ShuffleSpec describes a plan's repartition stage. For a repartition join,
// ProbePlan and BuildPlan are ordinary select-mode map sub-plans whose
// output rows are laid out as [key values..., shipped columns...]; leaves
// hash rows on the leading Keys values and stream them to reducers, which
// run the partitioned hash join and evaluate the top plan's outputs over
// the joined rows. For GroupShuffle there is no build side: map tasks run
// the top plan itself (partial aggregation as usual) and leaves repartition
// the partial groups by group key.
type ShuffleSpec struct {
	// Partitions is the hash fan-out; partition p of attempt rows goes to
	// reducer p mod len(reducers).
	Partitions int
	// MemoryGrant bounds each reducer operator's resident bytes before
	// grace-hash spill kicks in.
	MemoryGrant int64

	// GroupShuffle marks a repartitioned grouped aggregation (no join
	// build side; every join field below is zero).
	GroupShuffle bool

	// Build is the repartitioned build-side table.
	Build *BoundTable
	// JoinType is Inner, LeftOuter (probe/fact side preserved) or
	// RightOuter (build side preserved).
	JoinType sqlparser.JoinType
	// ProbePlan scans the fact table (with any remaining broadcast
	// dimensions attached); BuildPlan scans the build table.
	ProbePlan *PhysicalPlan
	BuildPlan *PhysicalPlan
	// Keys is the number of leading key columns in both map outputs.
	Keys int
	// ProbeCols / BuildCols name the shipped columns after the keys, in
	// row order — the reducer's column resolution map.
	ProbeCols []ColRef
	BuildCols []ColRef
	// Residual holds extra ON conditions of the repartition join, checked
	// per candidate match before the row counts as joined. Unlike broadcast
	// residuals these may reference any table of the query.
	Residual []Clause
}

// PlanWith is Plan with explicit planner options.
func PlanWith(stmt *sqlparser.SelectStmt, cat Catalog, opts Options) (*PhysicalPlan, error) {
	a, err := Analyze(stmt, cat)
	if err != nil {
		return nil, err
	}
	return BuildWith(a, opts)
}

// BuildWith turns an analyzed query into a physical plan under the given
// planner options, choosing broadcast vs repartition per join.
func BuildWith(a *Analyzed, opts Options) (*PhysicalPlan, error) {
	opts = opts.withDefaults()
	build, rightOuter, err := chooseBuild(a, opts)
	if err != nil {
		return nil, err
	}
	if build != nil {
		p, err := buildShuffleJoin(a, opts, build)
		if err != nil && !rightOuter {
			// Size-triggered repartition that cannot be planned falls back
			// to broadcast; RIGHT OUTER has no broadcast fallback.
			return Build(a)
		}
		return p, err
	}
	p, err := Build(a)
	if err != nil {
		return nil, err
	}
	if opts.GroupShuffleRows > 0 && p.Mode == ModeAgg && len(p.GroupBy) > 0 &&
		p.Fact().Meta.Rows() >= opts.GroupShuffleRows {
		p.Shuffle = &ShuffleSpec{
			GroupShuffle: true,
			Partitions:   opts.ShufflePartitions,
			MemoryGrant:  opts.MemoryGrantBytes,
		}
	}
	return p, nil
}

// chooseBuild picks the repartitioned build side: the RIGHT OUTER joined
// table when present (mandatory — the broadcast executor only preserves the
// fact side), otherwise the largest dimension over the broadcast threshold
// that has at least one usable equi-join key.
func chooseBuild(a *Analyzed, opts Options) (*BoundTable, bool, error) {
	var ro *BoundTable
	for _, j := range a.Stmt.Joins {
		if j.Type != sqlparser.JoinRightOuter {
			continue
		}
		if ro != nil {
			return nil, false, fmt.Errorf("plan: at most one RIGHT OUTER JOIN is supported")
		}
		for _, bt := range a.Tables {
			if bt.Ref.Binding() == j.Table.Binding() {
				ro = bt
			}
		}
	}
	if ro != nil {
		if countEquiKeys(a, ro) == 0 {
			return nil, true, fmt.Errorf("plan: RIGHT OUTER JOIN %q needs at least one equi-join key", ro.Ref.Binding())
		}
		if hasWithinAgg(a) {
			return nil, true, fmt.Errorf("plan: RIGHT OUTER JOIN cannot be combined with WITHIN aggregates")
		}
		return ro, true, nil
	}
	if hasWithinAgg(a) {
		return nil, false, nil // WITHIN needs leaf-local repeated columns
	}
	var best *BoundTable
	for _, bt := range a.Tables[1:] {
		if opts.BroadcastThreshold >= 0 && bt.Meta.Bytes() <= opts.BroadcastThreshold {
			continue
		}
		if countEquiKeys(a, bt) == 0 {
			continue
		}
		if best == nil || bt.Meta.Bytes() > best.Meta.Bytes() {
			best = bt
		}
	}
	return best, false, nil
}

// countEquiKeys counts usable `probe.col = build.col` keys: from the ON
// clause for explicitly joined tables, from top-level WHERE conjuncts for
// comma tables (mirroring Build's implicit-join-key extraction).
func countEquiKeys(a *Analyzed, build *BoundTable) int {
	bind := build.Ref.Binding()
	n := 0
	if wasJoined(a.Stmt, build.Ref) {
		for _, j := range a.Stmt.Joins {
			if j.Table.Binding() != bind || j.On == nil {
				continue
			}
			for _, cl := range ToCNF(j.On).Clauses {
				if ok, _, _ := shuffleEquiKey(cl, bind); ok {
					n++
				}
			}
		}
		return n
	}
	if a.Where != nil {
		for _, cl := range ToCNF(a.Where).Clauses {
			if ok, _, _ := shuffleEquiKey(cl, bind); ok {
				n++
			}
		}
	}
	return n
}

// shuffleEquiKey recognizes `probe.col = build.col` (either operand order)
// where the probe side is any non-build binding — unlike equiJoinKey, the
// probe column need not belong to the fact table, which is what lifts the
// star-schema (fact-dimension only) restriction for repartitioned joins.
func shuffleEquiKey(cl Clause, buildBind string) (bool, sqlparser.Expr, string) {
	if len(cl.Atoms) != 0 || len(cl.Opaque) != 1 {
		return false, nil, ""
	}
	b, ok := cl.Opaque[0].(*sqlparser.BinaryExpr)
	if !ok || b.Op != sqlparser.OpEq {
		return false, nil, ""
	}
	l, lok := b.L.(*sqlparser.ColumnRef)
	r, rok := b.R.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return false, nil, ""
	}
	switch {
	case l.Table != buildBind && r.Table == buildBind:
		return true, l, r.Column
	case r.Table != buildBind && l.Table == buildBind:
		return true, r, l.Column
	default:
		return false, nil, ""
	}
}

// buildShuffleJoin plans a repartitioned join with build as the build side.
func buildShuffleJoin(a *Analyzed, opts Options, build *BoundTable) (*PhysicalPlan, error) {
	p := &PhysicalPlan{A: a, ScanLimit: -1}
	if a.HasAgg {
		p.Mode = ModeAgg
	}
	factBind := a.Fact().Ref.Binding()
	buildBind := build.Ref.Binding()
	sh := &ShuffleSpec{
		Partitions:  opts.ShufflePartitions,
		MemoryGrant: opts.MemoryGrantBytes,
		Build:       build,
		JoinType:    sqlparser.JoinInner,
	}
	p.Shuffle = sh

	// Broadcast skeletons for every non-build dimension; these ride along
	// inside the probe-side map plan exactly as in a star plan.
	dimOf := make(map[string]*DimPlan)
	for _, bt := range a.Tables[1:] {
		if bt == build {
			continue
		}
		d := &DimPlan{Table: bt, Type: sqlparser.JoinInner}
		p.Dims = append(p.Dims, d)
		dimOf[bt.Ref.Binding()] = d
	}

	var probeKeys []sqlparser.Expr
	var buildKeys []string
	var buildFilter CNF
	for _, j := range a.Stmt.Joins {
		bind := j.Table.Binding()
		if bind == buildBind {
			sh.JoinType = j.Type
			if j.Type == sqlparser.JoinCross {
				return nil, fmt.Errorf("plan: cannot repartition a CROSS JOIN against %q", buildBind)
			}
			for _, cl := range ToCNF(j.On).Clauses {
				if ok, pk, bk := shuffleEquiKey(cl, buildBind); ok {
					probeKeys = append(probeKeys, pk)
					buildKeys = append(buildKeys, bk)
					continue
				}
				sh.Residual = append(sh.Residual, cl)
			}
			continue
		}
		d := dimOf[bind]
		d.Type = j.Type
		if j.Type == sqlparser.JoinRightOuter {
			return nil, fmt.Errorf("plan: at most one RIGHT OUTER JOIN is supported")
		}
		if j.On == nil {
			continue
		}
		for _, cl := range ToCNF(j.On).Clauses {
			if ok, fk, dk := equiJoinKey(cl, factBind, bind); ok {
				d.FactKeys = append(d.FactKeys, fk)
				d.DimKeys = append(d.DimKeys, dk)
				continue
			}
			if err := clauseWithin(cl, factBind, bind); err != nil {
				return nil, fmt.Errorf("plan: JOIN ON for %q: %w", bind, err)
			}
			d.Residual = append(d.Residual, cl)
		}
	}

	// WHERE routing. Pushing a clause below the join is only sound when the
	// tables it references are on a preserved-as-scanned side: a clause over
	// the null-extended side must see the NULLs, so it stays a reducer-side
	// post filter.
	var probeFilter CNF
	var probePost []Clause
	where := ToCNF(a.Where)
	for _, cl := range where.Clauses {
		refsBuild := clauseRefsTable(cl, buildBind)
		switch {
		case !refsBuild:
			if sh.JoinType == sqlparser.JoinRightOuter {
				// Probe columns are null-extended for unmatched build rows;
				// the clause must run after that extension.
				p.Post = append(p.Post, cl)
				continue
			}
			if onlyTable(cl, factBind) {
				probeFilter.Clauses = append(probeFilter.Clauses, cl)
				continue
			}
			claimed := false
			for _, d := range p.Dims {
				if wasJoined(a.Stmt, d.Table.Ref) {
					continue
				}
				if ok, fk, dk := equiJoinKey(cl, factBind, d.Table.Ref.Binding()); ok {
					d.FactKeys = append(d.FactKeys, fk)
					d.DimKeys = append(d.DimKeys, dk)
					claimed = true
					break
				}
			}
			if !claimed {
				probePost = append(probePost, cl)
			}
		case onlyTable(cl, buildBind):
			if sh.JoinType == sqlparser.JoinLeftOuter {
				p.Post = append(p.Post, cl)
			} else {
				buildFilter.Clauses = append(buildFilter.Clauses, cl)
			}
		default:
			if !wasJoined(a.Stmt, build.Ref) {
				if ok, pk, bk := shuffleEquiKey(cl, buildBind); ok {
					probeKeys = append(probeKeys, pk)
					buildKeys = append(buildKeys, bk)
					continue
				}
			}
			p.Post = append(p.Post, cl)
		}
	}
	if len(probeKeys) == 0 {
		return nil, fmt.Errorf("plan: repartition join against %q has no equi-join key", buildBind)
	}
	for _, d := range p.Dims {
		if len(d.FactKeys) == 0 && d.Type != sqlparser.JoinCross {
			d.Type = sqlparser.JoinCross
		}
		if d.Type == sqlparser.JoinLeftOuter && len(d.FactKeys) == 0 {
			return nil, fmt.Errorf("plan: LEFT OUTER JOIN %q needs at least one equi-join key", d.Table.Ref.Binding())
		}
	}

	if p.Mode == ModeAgg {
		seen := make(map[string]bool)
		for _, oi := range a.Outputs {
			collectAggs(oi.Expr, seen, &p.Aggs)
		}
		p.GroupBy = a.GroupBy
	}

	// Columns the reducer evaluates over the joined row.
	var reduceRefs []ColRef
	for _, oi := range a.Outputs {
		ColumnsOf(oi.Expr, &reduceRefs)
	}
	for _, g := range p.GroupBy {
		ColumnsOf(g, &reduceRefs)
	}
	for _, cl := range p.Post {
		clauseColumns(cl, &reduceRefs)
	}
	for _, cl := range sh.Residual {
		clauseColumns(cl, &reduceRefs)
	}
	for _, r := range reduceRefs {
		if r.Table == buildBind {
			addCol(&sh.BuildCols, r)
		} else {
			addCol(&sh.ProbeCols, r)
		}
	}
	sh.Keys = len(probeKeys)

	p.SQL = a.Stmt.String()
	p.Fingerprint, p.Literals, p.ReuseSlots = Normalize(a.Stmt)
	p.LiteralKey = LiteralKey(p.Literals)

	sh.ProbePlan = deriveMapPlan(p, probeTables(a, build), probeKeys, sh.ProbeCols, probeFilter, probePost, p.Dims, "probe")
	buildKeyExprs := make([]sqlparser.Expr, len(buildKeys))
	for i, bk := range buildKeys {
		buildKeyExprs[i] = boundColRef(buildBind, bk)
	}
	buildBT := &BoundTable{Ref: build.Ref, Meta: build.Meta}
	sh.BuildPlan = deriveMapPlan(p, []*BoundTable{buildBT}, buildKeyExprs, sh.BuildCols, buildFilter, nil, nil, "build")
	// Mirror the probe scan's pruning and pushed filter at the top level so
	// EXPLAIN and authorization see what the fact scan actually touches.
	p.FactCols = sh.ProbePlan.FactCols
	p.Filter = sh.ProbePlan.Filter
	return p, nil
}

// probeTables returns the probe-side table list: fact first, then every
// non-build dimension.
func probeTables(a *Analyzed, build *BoundTable) []*BoundTable {
	out := []*BoundTable{a.Fact()}
	for _, bt := range a.Tables[1:] {
		if bt != build {
			out = append(out, bt)
		}
	}
	return out
}

// deriveMapPlan builds one shuffle map sub-plan: a select-mode scan of
// tables[0] (with dims attached for the probe side) whose synthetic output
// row is [keys..., ship columns...]. Leaves execute it with the ordinary
// task machinery; only the shuffle routing of its result rows is new.
func deriveMapPlan(parent *PhysicalPlan, tables []*BoundTable, keys []sqlparser.Expr, ship []ColRef, filter CNF, post []Clause, dims []*DimPlan, side string) *PhysicalPlan {
	outs := make([]OutputItem, 0, len(keys)+len(ship))
	for i, k := range keys {
		outs = append(outs, OutputItem{Expr: k, Name: fmt.Sprintf("__key%d", i), Type: types.Null})
	}
	for _, r := range ship {
		outs = append(outs, OutputItem{
			Expr: boundColRef(r.Table, r.Col),
			Name: r.Col,
			Type: tableColType(tables, r),
		})
	}
	a := &Analyzed{Stmt: parent.A.Stmt, Tables: tables, Outputs: outs, Limit: -1}
	mp := &PhysicalPlan{
		A:           a,
		Mode:        ModeSelect,
		Filter:      filter,
		Post:        post,
		Dims:        dims,
		ScanLimit:   -1,
		SQL:         parent.SQL,
		Fingerprint: parent.Fingerprint + "#shuffle-" + side,
		LiteralKey:  parent.LiteralKey,
	}
	// Column pruning for the map scan.
	var refs []ColRef
	for _, oi := range outs {
		ColumnsOf(oi.Expr, &refs)
	}
	for _, cl := range append(append([]Clause{}, filter.Clauses...), post...) {
		clauseColumns(cl, &refs)
	}
	for _, d := range dims {
		for _, fk := range d.FactKeys {
			ColumnsOf(fk, &refs)
		}
		for _, dk := range d.DimKeys {
			addCol(&refs, ColRef{Table: d.Table.Ref.Binding(), Col: dk})
		}
		for _, cl := range d.Residual {
			clauseColumns(cl, &refs)
		}
	}
	scanBind := tables[0].Ref.Binding()
	dimOf := make(map[string]*DimPlan, len(dims))
	for _, d := range dims {
		dimOf[d.Table.Ref.Binding()] = d
	}
	for _, r := range refs {
		if r.Table == scanBind {
			mp.FactCols = appendUnique(mp.FactCols, r.Col)
		} else if d, ok := dimOf[r.Table]; ok {
			d.Needed = appendUnique(d.Needed, r.Col)
		}
	}
	return mp
}

func boundColRef(table, col string) *sqlparser.ColumnRef {
	return &sqlparser.ColumnRef{Parts: []string{table, col}, Table: table, Column: col}
}

func tableColType(tables []*BoundTable, r ColRef) types.Type {
	for _, bt := range tables {
		if bt.Ref.Binding() == r.Table {
			if f, ok := bt.Meta.Schema.Field(r.Col); ok {
				return f.Type
			}
		}
	}
	return types.Null
}

func clauseRefsTable(cl Clause, bind string) bool {
	var refs []ColRef
	clauseColumns(cl, &refs)
	for _, r := range refs {
		if r.Table == bind {
			return true
		}
	}
	return false
}

// hasWithinAgg reports whether the query uses WITHIN / WITHIN RECORD
// aggregates, which evaluate over leaf-local repeated columns and cannot
// cross a shuffle (shipped rows carry scalars only).
func hasWithinAgg(a *Analyzed) bool {
	for _, oi := range a.Outputs {
		if exprHasWithin(oi.Expr) {
			return true
		}
	}
	for _, g := range a.GroupBy {
		if exprHasWithin(g) {
			return true
		}
	}
	if a.Where != nil && exprHasWithin(a.Where) {
		return true
	}
	if a.Having != nil && exprHasWithin(a.Having) {
		return true
	}
	for _, j := range a.Stmt.Joins {
		if j.On != nil && exprHasWithin(j.On) {
			return true
		}
	}
	return false
}

func exprHasWithin(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		if x.Within != nil || x.WithinRecord {
			return true
		}
		for _, arg := range x.Args {
			if exprHasWithin(arg) {
				return true
			}
		}
	case *sqlparser.BinaryExpr:
		return exprHasWithin(x.L) || exprHasWithin(x.R)
	case *sqlparser.NotExpr:
		return exprHasWithin(x.X)
	case *sqlparser.NegExpr:
		return exprHasWithin(x.X)
	case *sqlparser.IsNullExpr:
		return exprHasWithin(x.X)
	}
	return false
}
