package plan

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Regression for the literal-embedding fingerprint: two literal variants of
// one query shape must share a fingerprint but keep distinct literal keys.
func TestFingerprintCollapsesLiteralVariants(t *testing.T) {
	p1 := planSQL(t, "SELECT url FROM logs WHERE clicks > 10")
	p2 := planSQL(t, "SELECT url FROM logs WHERE clicks > 20")
	if p1.Fingerprint != p2.Fingerprint {
		t.Fatalf("literal variants must share a fingerprint:\n%s\n%s", p1.Fingerprint, p2.Fingerprint)
	}
	if p1.LiteralKey == p2.LiteralKey {
		t.Fatalf("different literals must have different literal keys: %q", p1.LiteralKey)
	}
	if strings.Contains(p1.Fingerprint, "10") {
		t.Errorf("fingerprint still embeds the literal: %s", p1.Fingerprint)
	}
	if !strings.Contains(p1.Fingerprint, "?:BIGINT") {
		t.Errorf("fingerprint missing typed placeholder: %s", p1.Fingerprint)
	}
	if p1.SQL == p1.Fingerprint {
		t.Error("SQL should keep the literal-embedding rendering")
	}
}

func TestFingerprintDistinguishesShapes(t *testing.T) {
	pairs := [][2]string{
		{"SELECT url FROM logs WHERE clicks > 10", "SELECT url FROM logs WHERE clicks >= 10"},
		{"SELECT url FROM logs WHERE clicks > 10", "SELECT url FROM logs WHERE pos > 10"},
		{"SELECT url FROM logs WHERE clicks > 10", "SELECT query FROM logs WHERE clicks > 10"},
		{"SELECT url FROM logs LIMIT 4", "SELECT url FROM logs LIMIT 5"},
		{"SELECT url FROM logs WHERE clicks > 10", "SELECT url FROM logs WHERE score > 10.0"},
	}
	for _, pq := range pairs {
		a, b := planSQL(t, pq[0]), planSQL(t, pq[1])
		if a.Fingerprint == b.Fingerprint {
			t.Errorf("%q and %q must not share fingerprint %q", pq[0], pq[1], a.Fingerprint)
		}
	}
}

// Task keys are the job manager's dedup identity: literal variants share a
// fingerprint but MUST NOT share task keys, or one query's rows would be
// served as another's.
func TestTaskKeysDistinguishLiteralVariants(t *testing.T) {
	p1 := planSQL(t, "SELECT url FROM logs WHERE clicks > 10")
	p2 := planSQL(t, "SELECT url FROM logs WHERE clicks > 20")
	if p1.Fingerprint != p2.Fingerprint {
		t.Fatal("precondition: shared fingerprint")
	}
	if p1.Tasks()[0].Key() == p2.Tasks()[0].Key() {
		t.Fatal("literal variants must not share task keys")
	}
}

func TestLiteralKeyTypeTagged(t *testing.T) {
	i := LiteralKey([]types.Value{types.NewInt(3)})
	f := LiteralKey([]types.Value{types.NewFloat(3)})
	if i == f {
		t.Fatalf("BIGINT 3 and DOUBLE 3.0 must not share a literal key: %q", i)
	}
	if LiteralKey(nil) != "" {
		t.Error("empty vector renders empty key")
	}
}

func TestNormalizeSlotClassification(t *testing.T) {
	cases := []struct {
		sql  string
		want []LitSlot
	}{
		// Top-level conjuncts: flexible, column-left-normalized ops.
		{"SELECT url FROM logs WHERE clicks > 10 AND score <= 0.5",
			[]LitSlot{{true, sqlparser.OpGt}, {true, sqlparser.OpLe}}},
		// Literal on the left flips the recorded op.
		{"SELECT url FROM logs WHERE 10 < clicks",
			[]LitSlot{{true, sqlparser.OpGt}}},
		// OR-disjuncts are rigid.
		{"SELECT url FROM logs WHERE clicks > 10 OR pos = 1",
			[]LitSlot{{false, 0}, {false, 0}}},
		// Literals outside WHERE are rigid.
		{"SELECT clicks + 5 FROM logs WHERE clicks > 10",
			[]LitSlot{{false, 0}, {true, sqlparser.OpGt}}},
		// NOT blocks flexibility (negated CONTAINS keeps its literal rigid).
		{"SELECT url FROM logs WHERE NOT (url CONTAINS 'x')",
			[]LitSlot{{false, 0}}},
		// CONTAINS with the column on the left is flexible.
		{"SELECT url FROM logs WHERE url CONTAINS 'x'",
			[]LitSlot{{true, sqlparser.OpContains}}},
		// Column-column comparison binds no literal.
		{"SELECT url FROM logs WHERE clicks > pos", nil},
	}
	for _, c := range cases {
		p := planSQL(t, c.sql)
		if len(p.ReuseSlots) != len(c.want) {
			t.Errorf("%q: slots = %+v, want %+v", c.sql, p.ReuseSlots, c.want)
			continue
		}
		for i := range c.want {
			got := p.ReuseSlots[i]
			if got.Flexible != c.want[i].Flexible || (got.Flexible && got.Op != c.want[i].Op) {
				t.Errorf("%q slot %d = %+v, want %+v", c.sql, i, got, c.want[i])
			}
		}
	}
}

// The normalized rendering with literals substituted back must match the
// canonical Stmt.String() — the walker mirrors it placeholder for literal.
func TestNormalizeMirrorsCanonicalRendering(t *testing.T) {
	queries := []string{
		"SELECT url, clicks FROM logs WHERE clicks > 3 AND score <= 0.5 ORDER BY url LIMIT 7",
		"SELECT city, COUNT(*) AS n FROM logs, users WHERE logs.uid = users.uid AND clicks > 3 GROUP BY city HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5",
		"SELECT url FROM logs WHERE NOT (url CONTAINS 'spam') AND (clicks > 2 OR pos <= 3)",
		"SELECT SUM(click.pos) WITHIN RECORD FROM logs WHERE query = 'maps'",
		"SELECT -clicks FROM logs WHERE 5 < clicks",
	}
	for _, sql := range queries {
		a := analyzeSQL(t, sql)
		fp, lits, slots := Normalize(a.Stmt)
		if len(lits) != len(slots) {
			t.Fatalf("%q: %d literals, %d slots", sql, len(lits), len(slots))
		}
		// Substitute literal renderings back into the placeholders in order.
		got := fp
		for _, v := range lits {
			lit := &sqlparser.Literal{Value: v}
			got = strings.Replace(got, "?:"+v.T.String(), lit.String(), 1)
		}
		if want := a.Stmt.String(); got != want {
			t.Errorf("%q: substituted fingerprint diverges\n got: %s\nwant: %s", sql, got, want)
		}
	}
}

func TestReuseFilterEligibility(t *testing.T) {
	ineligible := []string{
		"SELECT COUNT(*) FROM logs WHERE clicks > 10",             // aggregate
		"SELECT url FROM logs WHERE clicks > 10 LIMIT 5",          // limit truncates
		"SELECT city FROM logs, users WHERE logs.uid = users.uid", // join
		"SELECT url FROM logs WHERE clicks + pos > 10",            // opaque clause
		"SELECT url FROM logs WHERE clicks > 10",                  // filter col not projected
	}
	for _, sql := range ineligible {
		p := planSQL(t, sql)
		if _, ok := p.ReuseFilter(); ok {
			t.Errorf("%q should be ineligible for subsumption reuse", sql)
		}
	}
	p := planSQL(t, "SELECT url, clicks, pos FROM logs WHERE clicks > 10 AND pos <= 3")
	f, ok := p.ReuseFilter()
	if !ok {
		t.Fatal("projected-filter select should be eligible")
	}
	if len(f.Clauses) != 2 {
		t.Fatalf("clauses = %+v", f.Clauses)
	}
	// url="a" clicks=11 pos=2 passes; clicks=10 fails; pos=4 fails.
	mk := func(c, p int64) []types.Value {
		return []types.Value{types.NewString("a"), types.NewInt(c), types.NewInt(p)}
	}
	if !f.Match(mk(11, 2)) {
		t.Error("row 11/2 should match")
	}
	if f.Match(mk(10, 2)) || f.Match(mk(11, 4)) {
		t.Error("non-qualifying rows must not match")
	}
}

// ORDER BY over a hidden key stays eligible only when the filter columns are
// visible; the hidden output itself must not shift visible indices.
func TestReuseFilterHiddenOrderKey(t *testing.T) {
	p := planSQL(t, "SELECT url, clicks FROM logs WHERE clicks > 2 ORDER BY pos")
	if _, ok := p.ReuseFilter(); ok {
		// pos is hidden (ORDER BY only): filter col clicks IS visible, so
		// eligibility holds; check index mapping against visible positions.
		f, _ := p.ReuseFilter()
		for _, cl := range f.Clauses {
			for _, ra := range cl {
				if ra.Out != 1 {
					t.Errorf("clicks should map to visible index 1, got %d", ra.Out)
				}
			}
		}
	}
}
