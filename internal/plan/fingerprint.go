package plan

import (
	"strconv"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Query fingerprint normalization. The canonical Stmt.String() rendering
// embeds literal values, so `WHERE b > 10` and `WHERE b > 20` would never
// share an identity — useless for slowlog shape aggregation and for the
// master's semantic result cache. Normalize lifts every literal out of the
// rendering, replacing it with a typed placeholder (`?:BIGINT`), and returns
// the bound literal vector alongside. The pair (Fingerprint, LiteralKey)
// is exactly as precise as the old literal-embedding fingerprint; the
// Fingerprint alone groups all literal variants of one query shape.

// LitSlot classifies one bound literal of a normalized fingerprint for
// predicate-subsumption reuse.
type LitSlot struct {
	// Flexible marks a literal bound as `column OP literal` (either operand
	// order) in a top-level AND-conjunct of WHERE. Flexible slots may differ
	// between a cached entry and a new query as long as the new predicate
	// implies the cached one; all other (rigid) slots must match exactly.
	Flexible bool
	// Op is the comparison, normalized to the column-on-left form.
	Op sqlparser.BinaryOp
}

// Normalize renders the statement exactly like Stmt.String() but with every
// literal replaced by a typed placeholder. It returns the normalized shape,
// the literal vector in placeholder order, and the per-literal reuse slots.
func Normalize(s *sqlparser.SelectStmt) (string, []types.Value, []LitSlot) {
	n := &normalizer{}
	n.stmt(s)
	return n.sb.String(), n.lits, n.slots
}

// LiteralKey renders a literal vector as a stable key. Values are tagged
// with their type so BIGINT 3 and DOUBLE 3.0 (both rendering as "3") stay
// distinct; strconv-quoted strings cannot contain the raw separator.
func LiteralKey(lits []types.Value) string {
	if len(lits) == 0 {
		return ""
	}
	parts := make([]string, len(lits))
	for i, v := range lits {
		parts[i] = v.T.String() + ":" + v.String()
	}
	return strings.Join(parts, "\x1f")
}

type normalizer struct {
	sb    strings.Builder
	lits  []types.Value
	slots []LitSlot
}

// stmt mirrors SelectStmt.String clause for clause; only WHERE walks with
// flexibility on (subsumption reuses pushed-down scan predicates, nothing
// from projections, grouping, HAVING or ordering).
func (n *normalizer) stmt(s *sqlparser.SelectStmt) {
	n.sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			n.sb.WriteString(", ")
		}
		if it.Star {
			n.sb.WriteByte('*')
			continue
		}
		n.expr(it.Expr, false)
		if it.Alias != "" {
			n.sb.WriteString(" AS " + it.Alias)
		}
	}
	n.sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			n.sb.WriteString(", ")
		}
		n.sb.WriteString(t.Name)
		if t.Alias != "" {
			n.sb.WriteString(" AS " + t.Alias)
		}
	}
	for _, j := range s.Joins {
		n.sb.WriteString(" " + j.Type.String() + " " + j.Table.Name)
		if j.Table.Alias != "" {
			n.sb.WriteString(" AS " + j.Table.Alias)
		}
		if j.On != nil {
			n.sb.WriteString(" ON ")
			n.expr(j.On, false)
		}
	}
	if s.Where != nil {
		n.sb.WriteString(" WHERE ")
		n.expr(s.Where, true)
	}
	if len(s.GroupBy) > 0 {
		n.sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				n.sb.WriteString(", ")
			}
			n.expr(g, false)
		}
	}
	if s.Having != nil {
		n.sb.WriteString(" HAVING ")
		n.expr(s.Having, false)
	}
	if len(s.OrderBy) > 0 {
		n.sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				n.sb.WriteString(", ")
			}
			n.expr(o.Expr, false)
			if o.Desc {
				n.sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		// LIMIT stays literal in the shape: a different limit is a different
		// result, so limit variants must not share cache entries.
		n.sb.WriteString(" LIMIT ")
		n.sb.WriteString(strconv.FormatInt(s.Limit, 10))
	}
}

// expr mirrors each node's String(). flex is true only while the walk is
// inside the top-level AND spine of WHERE; it turns `column OP literal`
// comparisons there into flexible slots.
func (n *normalizer) expr(e sqlparser.Expr, flex bool) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		n.placeholder(x.Value, LitSlot{})
	case *sqlparser.ColumnRef:
		n.sb.WriteString(x.String())
	case *sqlparser.NotExpr:
		n.sb.WriteString("NOT ")
		n.expr(x.X, false)
	case *sqlparser.IsNullExpr:
		n.sb.WriteByte('(')
		n.expr(x.X, false)
		if x.Not {
			n.sb.WriteString(" IS NOT NULL)")
		} else {
			n.sb.WriteString(" IS NULL)")
		}
	case *sqlparser.NegExpr:
		n.sb.WriteByte('-')
		n.expr(x.X, false)
	case *sqlparser.FuncCall:
		n.sb.WriteString(x.Name)
		n.sb.WriteByte('(')
		if x.Star {
			n.sb.WriteByte('*')
		}
		for i, a := range x.Args {
			if i > 0 {
				n.sb.WriteString(", ")
			}
			n.expr(a, false)
		}
		n.sb.WriteByte(')')
		if x.WithinRecord {
			n.sb.WriteString(" WITHIN RECORD")
		} else if x.Within != nil {
			n.sb.WriteString(" WITHIN " + x.Within.String())
		}
	case *sqlparser.BinaryExpr:
		n.binary(x, flex)
	default:
		// Unknown node kinds have no literal children today; render as-is.
		n.sb.WriteString(e.String())
	}
}

func (n *normalizer) binary(b *sqlparser.BinaryExpr, flex bool) {
	n.sb.WriteByte('(')
	defer n.sb.WriteByte(')')

	if flex && b.Op == sqlparser.OpAnd {
		// AND keeps the conjunct spine flexible on both sides.
		n.expr(b.L, true)
		n.sb.WriteString(" " + b.Op.String() + " ")
		n.expr(b.R, true)
		return
	}
	if flex && b.Op.Comparison() {
		// The same shapes atomOf() accepts: col OP lit, or lit OP col with
		// the operator flipped (CONTAINS never flips).
		if col, okc := b.L.(*sqlparser.ColumnRef); okc && col.Column != "" {
			if lit, okl := b.R.(*sqlparser.Literal); okl {
				n.sb.WriteString(col.String())
				n.sb.WriteString(" " + b.Op.String() + " ")
				n.placeholder(lit.Value, LitSlot{Flexible: true, Op: b.Op})
				return
			}
		}
		if col, okc := b.R.(*sqlparser.ColumnRef); okc && col.Column != "" && b.Op != sqlparser.OpContains {
			if lit, okl := b.L.(*sqlparser.Literal); okl {
				n.placeholder(lit.Value, LitSlot{Flexible: true, Op: flip(b.Op)})
				n.sb.WriteString(" " + b.Op.String() + " ")
				n.sb.WriteString(col.String())
				return
			}
		}
	}
	n.expr(b.L, false)
	n.sb.WriteString(" " + b.Op.String() + " ")
	n.expr(b.R, false)
}

// placeholder emits `?:TYPE` (no literal rendering starts with '?', so
// placeholders cannot collide with a residual literal) and records the
// value and its reuse slot.
func (n *normalizer) placeholder(v types.Value, slot LitSlot) {
	n.sb.WriteString("?:")
	n.sb.WriteString(v.T.String())
	n.lits = append(n.lits, v)
	n.slots = append(n.slots, slot)
}

// ReuseAtom is one pushed-down predicate atom mapped to the visible output
// column that carries its value — the unit of subsumption re-filtering.
type ReuseAtom struct {
	Out  int // index into the final (visible) result row
	Atom Atom
}

// ReuseFilter is the full pushed-down predicate of a subsumption-eligible
// plan in CNF over visible output columns. A cached superset result is
// re-filtered row by row with the new query's ReuseFilter.
type ReuseFilter struct {
	Clauses [][]ReuseAtom
}

// Match evaluates the filter against one visible result row.
func (f *ReuseFilter) Match(row []types.Value) bool {
	for _, cl := range f.Clauses {
		ok := false
		for _, ra := range cl {
			if ra.Out < len(row) && EvalAtom(ra.Atom, row[ra.Out]) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// ReuseFilter builds the subsumption re-filter for the plan and reports
// whether the plan is eligible for subsumption reuse at all. Eligibility is
// a property of the normalized shape — every plan sharing a fingerprint has
// the same answer. The conditions guarantee a cached result row set is a
// superset of any subsumed query's rows AND that re-filtering the finalized
// rows reproduces exactly what cold execution would:
//
//   - plain select (no aggregation, no dimension joins, no post-join
//     clauses, no HAVING): finalized rows map 1:1 to scanned fact rows;
//   - no LIMIT: the cached row set was not truncated;
//   - every pushed-down clause fully indexable (atoms only) and every atom
//     column present verbatim as a visible output column, so the filter can
//     be evaluated over the cached rows.
func (p *PhysicalPlan) ReuseFilter() (*ReuseFilter, bool) {
	if p.Mode != ModeSelect || len(p.Dims) > 0 || len(p.Post) > 0 ||
		p.A.Having != nil || p.A.Limit >= 0 || p.Shuffle != nil {
		// Shuffle plans push their predicates into derived map sub-plans, so
		// the top-level Filter does not describe the produced row set.
		return nil, false
	}
	// Visible output index of each direct column reference.
	vis := make(map[ColRef]int)
	idx := 0
	for _, oi := range p.A.Outputs {
		if oi.Hidden {
			continue
		}
		if cr, ok := oi.Expr.(*sqlparser.ColumnRef); ok {
			key := ColRef{Table: cr.Table, Col: cr.Column}
			if _, dup := vis[key]; !dup {
				vis[key] = idx
			}
		}
		idx++
	}
	f := &ReuseFilter{}
	for _, cl := range p.Filter.Clauses {
		if !cl.Indexable() {
			return nil, false
		}
		ras := make([]ReuseAtom, 0, len(cl.Atoms))
		for _, a := range cl.Atoms {
			out, ok := vis[ColRef{Table: a.Table, Col: a.Col}]
			if !ok {
				return nil, false
			}
			ras = append(ras, ReuseAtom{Out: out, Atom: a})
		}
		f.Clauses = append(f.Clauses, ras)
	}
	return f, true
}
