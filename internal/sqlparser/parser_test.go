package sqlparser

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/types"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, b2 FROM t WHERE x >= 1.5 AND y != 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF")
	}
	// Spot checks.
	if toks[0].Kind != TokKeyword || toks[0].Text != "SELECT" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "a" {
		t.Errorf("tok1 = %+v", toks[1])
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokString && tok.Text == "it's" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped string not lexed; kinds=%v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("SELECT a # b"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestLexNumberDotIdent(t *testing.T) {
	toks, err := Lex("1.x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "1" || toks[1].Text != "." || toks[2].Text != "x" {
		t.Errorf("toks = %v %v %v", toks[0], toks[1], toks[2])
	}
}

func TestParseMinimal(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t1")
	if len(stmt.Items) != 1 || len(stmt.From) != 1 || stmt.From[0].Name != "t1" {
		t.Errorf("stmt = %+v", stmt)
	}
	if stmt.Limit != -1 {
		t.Errorf("Limit = %d", stmt.Limit)
	}
}

func TestParsePaperQ1(t *testing.T) {
	// The paper's Q1 (§IV-C3).
	stmt := mustParse(t, "SELECT COUNT(*) FROM T WHERE (c2 > 0) AND (c2 <= 5)")
	fc, ok := stmt.Items[0].Expr.(*FuncCall)
	if !ok || fc.Name != "COUNT" || !fc.Star {
		t.Fatalf("item = %#v", stmt.Items[0].Expr)
	}
	w, ok := stmt.Where.(*BinaryExpr)
	if !ok || w.Op != OpAnd {
		t.Fatalf("where = %#v", stmt.Where)
	}
	if w.String() != "((c2 > 0) AND (c2 <= 5))" {
		t.Errorf("where string = %q", w.String())
	}
}

func TestParseBangNegation(t *testing.T) {
	// The paper's Q11: ... WHERE C2 > 0 AND !(C2 > 5).
	stmt := mustParse(t, "SELECT a FROM T WHERE C2 > 0 AND !(C2 > 5)")
	w := stmt.Where.(*BinaryExpr)
	if _, ok := w.R.(*NotExpr); !ok {
		t.Errorf("right side should be NOT, got %#v", w.R)
	}
}

func TestParseFullGrammar(t *testing.T) {
	sql := `SELECT t.a AS x, SUM(b) total, COUNT(*)
	        FROM t1 AS t, t2
	        LEFT OUTER JOIN dim AS d ON t.k = d.k AND t.v = d.v
	        WHERE a > 3 OR NOT (b CONTAINS 'spam')
	        GROUP BY x, c
	        HAVING SUM(b) > 10
	        ORDER BY total DESC, x ASC
	        LIMIT 50;`
	stmt := mustParse(t, sql)
	if len(stmt.Items) != 3 {
		t.Errorf("items = %d", len(stmt.Items))
	}
	if stmt.Items[0].Alias != "x" || stmt.Items[1].Alias != "total" {
		t.Errorf("aliases = %q %q", stmt.Items[0].Alias, stmt.Items[1].Alias)
	}
	if len(stmt.From) != 2 || stmt.From[0].Binding() != "t" {
		t.Errorf("from = %+v", stmt.From)
	}
	if len(stmt.Joins) != 1 || stmt.Joins[0].Type != JoinLeftOuter || stmt.Joins[0].Table.Binding() != "d" {
		t.Errorf("joins = %+v", stmt.Joins)
	}
	if stmt.Joins[0].On == nil {
		t.Error("join missing ON")
	}
	if len(stmt.GroupBy) != 2 || stmt.Having == nil {
		t.Error("group by / having missing")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 50 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestParseJoinVariants(t *testing.T) {
	cases := map[string]JoinType{
		"SELECT a FROM t JOIN u ON t.x = u.x":             JoinInner,
		"SELECT a FROM t INNER JOIN u ON t.x = u.x":       JoinInner,
		"SELECT a FROM t LEFT JOIN u ON t.x = u.x":        JoinLeftOuter,
		"SELECT a FROM t RIGHT OUTER JOIN u ON t.x = u.x": JoinRightOuter,
	}
	for sql, want := range cases {
		stmt := mustParse(t, sql)
		if stmt.Joins[0].Type != want {
			t.Errorf("%q: join = %v, want %v", sql, stmt.Joins[0].Type, want)
		}
	}
	stmt := mustParse(t, "SELECT a FROM t CROSS JOIN u")
	if stmt.Joins[0].Type != JoinCross || stmt.Joins[0].On != nil {
		t.Errorf("cross join = %+v", stmt.Joins[0])
	}
}

func TestParseWithin(t *testing.T) {
	stmt := mustParse(t, "SELECT id, COUNT(clicks.pos) WITHIN RECORD FROM t")
	fc := stmt.Items[1].Expr.(*FuncCall)
	if !fc.WithinRecord {
		t.Errorf("call = %+v", fc)
	}
	stmt = mustParse(t, "SELECT SUM(clicks.pos) WITHIN clicks FROM t")
	fc = stmt.Items[0].Expr.(*FuncCall)
	if fc.Within == nil || fc.Within.String() != "clicks" {
		t.Errorf("within = %+v", fc.Within)
	}
}

func TestParseStar(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t LIMIT 3")
	if !stmt.Items[0].Star {
		t.Error("star not parsed")
	}
}

func TestParseDottedColumns(t *testing.T) {
	stmt := mustParse(t, "SELECT click.pos FROM t WHERE user.geo.city = 'bj'")
	c := stmt.Items[0].Expr.(*ColumnRef)
	if len(c.Parts) != 2 || c.Parts[0] != "click" || c.Parts[1] != "pos" {
		t.Errorf("parts = %v", c.Parts)
	}
	w := stmt.Where.(*BinaryExpr)
	lc := w.L.(*ColumnRef)
	if len(lc.Parts) != 3 {
		t.Errorf("where parts = %v", lc.Parts)
	}
}

func TestParseLiterals(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE b = -5 AND c = 2.5 AND d = TRUE AND e = NULL AND f = 'x'")
	s := stmt.Where.String()
	for _, want := range []string{"-5", "2.5", "true", "NULL", "'x'"} {
		if !strings.Contains(s, want) {
			t.Errorf("where %q missing %q", s, want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := stmt.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %#v", stmt.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Errorf("right = %#v", or.R)
	}

	stmt = mustParse(t, "SELECT a + b * c FROM t")
	add := stmt.Items[0].Expr.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("top = %v", add.Op)
	}
	if mul := add.R.(*BinaryExpr); mul.Op != OpMul {
		t.Errorf("right = %v", mul.Op)
	}
}

func TestParseNegativeLiteralFolding(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE b > -3")
	cmp := stmt.Where.(*BinaryExpr)
	lit, ok := cmp.R.(*Literal)
	if !ok || lit.Value.I != -3 {
		t.Errorf("folded literal = %#v", cmp.R)
	}
	stmt = mustParse(t, "SELECT -a FROM t")
	if _, ok := stmt.Items[0].Expr.(*NegExpr); !ok {
		t.Errorf("neg expr = %#v", stmt.Items[0].Expr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET a = 1",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t JOIN u",
		"SELECT a FROM t extra extra2",
		"SELECT a FROM t WHERE (a = 1",
		"SELECT COUNT() FROM t",
		"SELECT a. FROM t",
		"SELECT SUM(a) WITHIN 3 FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestStringRoundTripStable(t *testing.T) {
	// Canonical rendering must be parse-stable: parse(s).String() is a
	// fixed point. SmartIndex keys depend on this.
	sqls := []string{
		"SELECT a FROM t1 WHERE ((b > 0) AND (c <= 5))",
		"SELECT COUNT(*) FROM T WHERE (c2 > 0)",
		"SELECT a AS x, SUM(b) AS s FROM t GROUP BY x HAVING (SUM(b) > 2) ORDER BY s DESC LIMIT 10",
		"SELECT a FROM t WHERE (b CONTAINS 'x')",
		"SELECT SUM(c.p) WITHIN RECORD FROM t",
	}
	for _, sql := range sqls {
		s1 := mustParse(t, sql).String()
		s2 := mustParse(t, s1).String()
		if s1 != s2 {
			t.Errorf("not a fixed point:\n  %q\n  %q", s1, s2)
		}
	}
}

func TestBinaryOpNegate(t *testing.T) {
	cases := map[BinaryOp]BinaryOp{
		OpEq: OpNe, OpNe: OpEq, OpLt: OpGe, OpGe: OpLt, OpGt: OpLe, OpLe: OpGt,
	}
	for op, want := range cases {
		got, ok := op.Negate()
		if !ok || got != want {
			t.Errorf("%v.Negate() = %v, %v", op, got, ok)
		}
	}
	if _, ok := OpContains.Negate(); ok {
		t.Error("CONTAINS should not negate")
	}
	if _, ok := OpAdd.Negate(); ok {
		t.Error("+ should not negate")
	}
}

func TestLiteralValueTypes(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE x = 9223372036854775807")
	lit := stmt.Where.(*BinaryExpr).R.(*Literal)
	if lit.Value.T != types.Int64 {
		t.Errorf("type = %v", lit.Value.T)
	}
}

func TestStringRenderings(t *testing.T) {
	// Operator spellings, incl. ones only produced programmatically.
	for op, want := range map[BinaryOp]string{
		OpOr: "OR", OpAnd: "AND", OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=",
		OpGt: ">", OpGe: ">=", OpContains: "CONTAINS", OpAdd: "+", OpSub: "-",
		OpMul: "*", OpDiv: "/", OpMod: "%",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if BinaryOp(99).String() != "op(99)" {
		t.Error("unknown op string")
	}
	if !OpContains.Comparison() || OpAdd.Comparison() || !OpEq.Comparison() {
		t.Error("Comparison classification")
	}
	for jt, want := range map[JoinType]string{
		JoinInner: "INNER JOIN", JoinLeftOuter: "LEFT OUTER JOIN",
		JoinRightOuter: "RIGHT OUTER JOIN", JoinCross: "CROSS JOIN",
	} {
		if jt.String() != want {
			t.Errorf("%d join = %q", jt, jt.String())
		}
	}
	if JoinType(9).String() != "join(9)" {
		t.Error("unknown join string")
	}
}

func TestStatementStringFull(t *testing.T) {
	stmt := mustParse(t, `SELECT a AS x, COUNT(*) FROM t1 AS t, t2
		LEFT OUTER JOIN d AS dd ON t.k = dd.k
		CROSS JOIN e
		WHERE NOT (a > 1) GROUP BY x HAVING COUNT(*) > 0 ORDER BY x LIMIT 2`)
	s := stmt.String()
	for _, want := range []string{
		"SELECT a AS x, COUNT(*)", "FROM t1 AS t, t2",
		"LEFT OUTER JOIN d AS dd ON", "CROSS JOIN e",
		"WHERE NOT (a > 1)", "GROUP BY x", "HAVING", "ORDER BY x", "LIMIT 2",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
	// Round trip through the parser is stable.
	if mustParse(t, s).String() != s {
		t.Errorf("not a fixed point: %q", s)
	}
}

func TestNegExprAndWithinString(t *testing.T) {
	stmt := mustParse(t, "SELECT -a, SUM(b.c) WITHIN b FROM t")
	if got := stmt.Items[0].Expr.String(); got != "-a" {
		t.Errorf("neg string = %q", got)
	}
	if got := stmt.Items[1].Expr.String(); got != "SUM(b.c) WITHIN b" {
		t.Errorf("within string = %q", got)
	}
}

func TestErrorType(t *testing.T) {
	_, err := Parse("SELECT")
	var perr *Error
	if !errors.As(err, &perr) {
		t.Fatalf("error type = %T", err)
	}
	if perr.Pos <= 0 || !strings.Contains(perr.Error(), "position") {
		t.Errorf("error = %v", perr)
	}
}

func TestEOFTokenString(t *testing.T) {
	toks, _ := Lex("")
	if toks[0].String() != "end of input" {
		t.Errorf("EOF string = %q", toks[0].String())
	}
	toks, _ = Lex("x")
	if toks[0].String() != `"x"` {
		t.Errorf("token string = %q", toks[0].String())
	}
}
