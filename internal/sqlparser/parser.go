package sqlparser

import (
	"strconv"
	"strings"

	"repro/internal/types"
)

// Parse parses one SELECT statement (optionally ;-terminated), with an
// optional EXPLAIN [ANALYZE] prefix.
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	explain := p.acceptKw("EXPLAIN")
	analyze := explain && p.acceptKw("ANALYZE")
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Explain = explain
	stmt.Analyze = analyze
	if p.peek().Kind == TokOp && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, errf(p.peek().Pos, "unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// acceptKw consumes the keyword if it is next.
func (p *parser) acceptKw(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return errf(p.peek().Pos, "expected %s, found %s", kw, p.peek())
	}
	return nil
}

// acceptOp consumes the operator token if it is next.
func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.Kind == TokOp && t.Text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return errf(p.peek().Pos, "expected %q, found %s", op, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}

	// FROM.
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, tr)
		if !p.acceptOp(",") {
			break
		}
	}

	// JOIN clauses.
	for {
		jt, isJoin, err := p.parseJoinType()
		if err != nil {
			return nil, err
		}
		if !isJoin {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		j := Join{Type: jt, Table: tr}
		if jt != JoinCross {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = cond
		}
		stmt.Joins = append(stmt.Joins, j)
	}

	// WHERE.
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}

	// GROUP BY.
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	// HAVING.
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}

	// ORDER BY.
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	// LIMIT.
	if p.acceptKw("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, errf(t.Pos, "expected LIMIT count, found %s", t)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, errf(t.Pos, "bad LIMIT count %q", t.Text)
		}
		p.next()
		stmt.Limit = n
	}

	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		t := p.peek()
		if t.Kind != TokIdent {
			return SelectItem{}, errf(t.Pos, "expected alias after AS, found %s", t)
		}
		p.next()
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		// Bare alias (grammar: expr1 [[AS] expr_alias1]).
		p.next()
		item.Alias = t.Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return TableRef{}, errf(t.Pos, "expected table name, found %s", t)
	}
	p.next()
	tr := TableRef{Name: t.Text}
	if p.acceptKw("AS") {
		a := p.peek()
		if a.Kind != TokIdent {
			return TableRef{}, errf(a.Pos, "expected alias after AS, found %s", a)
		}
		p.next()
		tr.Alias = a.Text
	} else if a := p.peek(); a.Kind == TokIdent {
		p.next()
		tr.Alias = a.Text
	}
	return tr, nil
}

// parseJoinType recognizes [INNER | [LEFT|RIGHT] OUTER | CROSS] JOIN.
func (p *parser) parseJoinType() (JoinType, bool, error) {
	switch {
	case p.acceptKw("JOIN"):
		return JoinInner, true, nil
	case p.acceptKw("INNER"):
		if err := p.expectKw("JOIN"); err != nil {
			return 0, false, err
		}
		return JoinInner, true, nil
	case p.acceptKw("CROSS"):
		if err := p.expectKw("JOIN"); err != nil {
			return 0, false, err
		}
		return JoinCross, true, nil
	case p.acceptKw("LEFT"):
		p.acceptKw("OUTER")
		if err := p.expectKw("JOIN"); err != nil {
			return 0, false, err
		}
		return JoinLeftOuter, true, nil
	case p.acceptKw("RIGHT"):
		p.acceptKw("OUTER")
		if err := p.expectKw("JOIN"); err != nil {
			return 0, false, err
		}
		return JoinRightOuter, true, nil
	default:
		return 0, false, nil
	}
}

// Expression precedence (low to high): OR, AND, NOT, comparison, additive,
// multiplicative, unary minus, primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") || p.acceptOp("!") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.acceptKw("IS") {
		not := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: not}, nil
	}
	var op BinaryOp
	switch t := p.peek(); {
	case t.Kind == TokOp && t.Text == "=":
		op = OpEq
	case t.Kind == TokOp && (t.Text == "!=" || t.Text == "<>"):
		op = OpNe
	case t.Kind == TokOp && t.Text == "<":
		op = OpLt
	case t.Kind == TokOp && t.Text == "<=":
		op = OpLe
	case t.Kind == TokOp && t.Text == ">":
		op = OpGt
	case t.Kind == TokOp && t.Text == ">=":
		op = OpGe
	case t.Kind == TokKeyword && t.Text == "CONTAINS":
		op = OpContains
	default:
		return l, nil
	}
	p.next()
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.acceptOp("+"):
			op = OpAdd
		case p.acceptOp("-"):
			op = OpSub
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.acceptOp("*"):
			op = OpMul
		case p.acceptOp("/"):
			op = OpDiv
		case p.acceptOp("%"):
			op = OpMod
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately so canonical strings stay stable.
		if lit, ok := x.(*Literal); ok {
			switch lit.Value.T {
			case types.Int64:
				return &Literal{Value: types.NewInt(-lit.Value.I)}, nil
			case types.Float64:
				return &Literal{Value: types.NewFloat(-lit.Value.F)}, nil
			}
		}
		return &NegExpr{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if strings.ContainsRune(t.Text, '.') {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, errf(t.Pos, "bad number %q", t.Text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad number %q", t.Text)
		}
		return &Literal{Value: types.NewInt(n)}, nil
	case t.Kind == TokString:
		p.next()
		return &Literal{Value: types.NewString(t.Text)}, nil
	case t.Kind == TokKeyword && t.Text == "TRUE":
		p.next()
		return &Literal{Value: types.NewBool(true)}, nil
	case t.Kind == TokKeyword && t.Text == "FALSE":
		p.next()
		return &Literal{Value: types.NewBool(false)}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return &Literal{Value: types.NullValue()}, nil
	case t.Kind == TokOp && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		return p.parseIdentExpr()
	default:
		return nil, errf(t.Pos, "unexpected %s in expression", t)
	}
}

// parseIdentExpr parses either a function call or a (possibly dotted)
// column reference.
func (p *parser) parseIdentExpr() (Expr, error) {
	t := p.next() // ident
	if p.acceptOp("(") {
		return p.parseFuncCall(t)
	}
	parts := []string{t.Text}
	for p.acceptOp(".") {
		seg := p.peek()
		if seg.Kind != TokIdent {
			return nil, errf(seg.Pos, "expected identifier after '.', found %s", seg)
		}
		p.next()
		parts = append(parts, seg.Text)
	}
	return &ColumnRef{Parts: parts}, nil
}

func (p *parser) parseFuncCall(name Token) (Expr, error) {
	call := &FuncCall{Name: strings.ToUpper(name.Text)}
	if p.acceptOp("*") {
		call.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	} else if p.acceptOp(")") {
		return nil, errf(p.peek().Pos, "%s() requires an argument", call.Name)
	} else {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("WITHIN") {
		if p.acceptKw("RECORD") {
			call.WithinRecord = true
			return call, nil
		}
		if p.peek().Kind != TokIdent {
			return nil, errf(p.peek().Pos, "WITHIN requires a column reference, found %s", p.peek())
		}
		e, err := p.parseIdentExpr()
		if err != nil {
			return nil, err
		}
		col, ok := e.(*ColumnRef)
		if !ok {
			return nil, errf(p.peek().Pos, "WITHIN requires a column reference")
		}
		call.Within = col
	}
	return call, nil
}
