package sqlparser

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// fuzzCorpus seeds FuzzParse with the dialect's full surface as documented
// in docs/SQL.md: every clause, operator, literal form, join shape and the
// WITHIN RECORD aggregate.
var fuzzCorpus = []string{
	"SELECT COUNT(*) FROM T1",
	"SELECT clicks FROM T1 WHERE clicks > 5",
	"SELECT url, clicks FROM T1 WHERE uid < 40000 ORDER BY url DESC, clicks LIMIT 20",
	"SELECT region, SUM(clicks) AS s FROM T1 GROUP BY region HAVING s > 10 ORDER BY s",
	"SELECT SUM(clicks) + COUNT(*) FROM T1 WHERE NOT (pos > 7) OR query CONTAINS 'a'",
	"SELECT AVG(score) FROM T1 WHERE dwell < 120.5 AND spam = FALSE",
	"SELECT id, COUNT(clicks.pos) WITHIN RECORD AS nclicks FROM events",
	"SELECT MAX(price) FROM sales JOIN stores ON sales.sid = stores.id AND sales.day = stores.day",
	"SELECT a.x FROM t1 AS a LEFT OUTER JOIN t2 AS b ON a.k = b.k WHERE b.v IS NULL",
	"SELECT x FROM t1, t2 WHERE t1.k = t2.k",
	"SELECT x FROM t1 CROSS JOIN t2 LIMIT 3",
	"SELECT s FROM logs WHERE s = 'it''s' AND v % 2 = 0",
	"SELECT v FROM logs WHERE !(v > 5) AND v != 3 OR v <> 4",
	"SELECT v / 0, v * -7, v - 2.5 FROM logs WHERE b = TRUE AND n = NULL",
	"SELECT click.pos FROM events WHERE click.pos >= 2",
	"SELECT f.id AS a, d.name AS b FROM orders f JOIN users d ON f.k = d.k ORDER BY a, b DESC LIMIT 40",
	"SELECT f.grp AS g, COUNT(*) AS n, SUM(f.v) AS s FROM orders f RIGHT OUTER JOIN users d ON d.k = f.k GROUP BY f.grp HAVING COUNT(*) > 3",
	"SELECT d.cat AS g0, MIN(d.name) AS a0, AVG(f.v) AS a1 FROM orders f, users d WHERE f.k = d.k AND (f.k IS NOT NULL OR d.w > 5) GROUP BY d.cat",
	"SELECT COUNT(d.k) FROM orders f LEFT OUTER JOIN users d ON f.k = d.k WHERE (f.v > 10 AND d.cat = 2) IS NULL",
	"SELECT MAX(a.v) FROM t1 a JOIN t1 b ON a.k = b.k JOIN t2 c ON b.k = c.k GROUP BY a.k ORDER BY MAX(a.v) DESC",
	"select lower, \t mixed\nFROM t1 wHeRe lower <= 9",
	"SELECT",
	"SELECT FROM WHERE",
	"SELECT * FROM t ORDER BY",
	"SELECT 'unterminated FROM t",
	"",
}

// FuzzParse asserts two properties over arbitrary input: the parser never
// panics, and accepted statements render (String) to a canonical form that
// re-parses to the same canonical form — the fixed point SmartIndex keys
// rely on (core cache keys are canonical renderings).
func FuzzParse(f *testing.F) {
	for _, q := range fuzzCorpus {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", input)
		}
		s1 := stmt.String()
		if !utf8.ValidString(s1) && utf8.ValidString(input) {
			t.Fatalf("canonical form of valid-UTF8 input %q is invalid UTF-8: %q", input, s1)
		}
		stmt2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: Parse(%q) -> %q -> %v", input, s1, err)
		}
		if s2 := stmt2.String(); s2 != s1 {
			t.Fatalf("canonical form is not a fixed point:\ninput: %q\nonce:  %q\ntwice: %q", input, s1, s2)
		}
	})
}

// TestFuzzCorpusSmoke keeps the seed corpus itself honest under plain `go
// test`: the well-formed seeds must parse, the malformed ones must error
// (not panic), and no seed may be whitespace-trimmed away by accident.
func TestFuzzCorpusSmoke(t *testing.T) {
	parsed := 0
	for _, q := range fuzzCorpus {
		stmt, err := Parse(q)
		if err != nil {
			continue
		}
		parsed++
		if !strings.HasPrefix(stmt.String(), "SELECT") {
			t.Errorf("canonical form of %q does not start with SELECT: %q", q, stmt.String())
		}
	}
	if parsed < 14 {
		t.Fatalf("only %d corpus seeds parse; the corpus should cover the accepted dialect broadly", parsed)
	}
}
