package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Expr is any expression node. Implementations render a canonical SQL form
// via String; the SmartIndex uses these renderings as stable predicate keys.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators, in no particular order.
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the canonical operator spelling.
func (op BinaryOp) String() string {
	switch op {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "CONTAINS"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Comparison reports whether the operator yields a boolean from two scalars.
func (op BinaryOp) Comparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpContains:
		return true
	default:
		return false
	}
}

// Negate returns the complementary comparison (paper Fig. 7: rewriting
// C2 <= 5 as !(C2 > 5) lets a cached index serve the negation via bit-NOT).
// ok is false for non-invertible operators.
func (op BinaryOp) Negate() (BinaryOp, bool) {
	switch op {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	default:
		return op, false
	}
}

// ColumnRef names a column, optionally qualified ("t1.col" or the flattened
// JSON path "click.pos" — the analyzer disambiguates).
type ColumnRef struct {
	// Parts holds the dotted segments as written.
	Parts []string
	// Table and Column are filled by the analyzer after binding.
	Table  string
	Column string
}

func (*ColumnRef) exprNode() {}

// String renders the reference as written.
func (c *ColumnRef) String() string {
	if c.Column != "" {
		if c.Table != "" {
			return c.Table + "." + c.Column
		}
		return c.Column
	}
	return strings.Join(c.Parts, ".")
}

// Literal is a constant value.
type Literal struct{ Value types.Value }

func (*Literal) exprNode() {}

// String renders the literal; strings use SQL single quotes. Doubles
// render in plain decimal with a forced fraction point — the dialect has
// no exponent syntax, and an integral-looking rendering ("-0" for -0.0)
// would re-parse as BIGINT and break the canonical fixed point.
func (l *Literal) String() string {
	switch l.Value.T {
	case types.String:
		return "'" + strings.ReplaceAll(l.Value.S, "'", "''") + "'"
	case types.Float64:
		s := strconv.FormatFloat(l.Value.F, 'f', -1, 64)
		if !strings.ContainsRune(s, '.') {
			s += ".0"
		}
		return s
	}
	return l.Value.String()
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
}

func (*BinaryExpr) exprNode() {}

// String renders with full parenthesization for canonical predicate keys.
func (b *BinaryExpr) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// IsNullExpr tests an expression for SQL NULL (x IS NULL / x IS NOT NULL).
// Unlike comparisons it never yields unknown: the result is always TRUE or
// FALSE, which is what makes it usable for three-way TLP partitioning.
type IsNullExpr struct {
	X   Expr
	Not bool // true for IS NOT NULL
}

func (*IsNullExpr) exprNode() {}

// String renders with full parenthesization, like BinaryExpr.
func (i *IsNullExpr) String() string {
	if i.Not {
		return "(" + i.X.String() + " IS NOT NULL)"
	}
	return "(" + i.X.String() + " IS NULL)"
}

// NotExpr is logical negation (NOT x or !x).
type NotExpr struct{ X Expr }

func (*NotExpr) exprNode() {}

// String renders as NOT (...).
func (n *NotExpr) String() string { return "NOT " + n.X.String() }

// NegExpr is arithmetic negation.
type NegExpr struct{ X Expr }

func (*NegExpr) exprNode() {}

// String renders as -(...).
func (n *NegExpr) String() string { return "-" + n.X.String() }

// FuncCall is an aggregate or scalar function call. Star marks COUNT(*).
// Within carries the column of the WITHIN clause of paper §III-A
// ("aggr_func(expr3) WITHIN expr4"); WithinRecord marks WITHIN RECORD.
type FuncCall struct {
	Name         string // upper-cased
	Args         []Expr
	Star         bool
	Within       *ColumnRef
	WithinRecord bool
}

func (*FuncCall) exprNode() {}

// String renders the call canonically.
func (f *FuncCall) String() string {
	var sb strings.Builder
	sb.WriteString(f.Name)
	sb.WriteByte('(')
	if f.Star {
		sb.WriteByte('*')
	}
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte(')')
	if f.WithinRecord {
		sb.WriteString(" WITHIN RECORD")
	} else if f.Within != nil {
		sb.WriteString(" WITHIN " + f.Within.String())
	}
	return sb.String()
}

// SelectItem is one output expression with its optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	// Star marks a bare `SELECT *`.
	Star bool
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the table is referred to by in expressions.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinType enumerates the paper's join forms.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeftOuter
	JoinRightOuter
	JoinCross
)

// String returns the SQL join keyword.
func (j JoinType) String() string {
	switch j {
	case JoinInner:
		return "INNER JOIN"
	case JoinLeftOuter:
		return "LEFT OUTER JOIN"
	case JoinRightOuter:
		return "RIGHT OUTER JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return fmt.Sprintf("join(%d)", int(j))
	}
}

// Join is one JOIN clause.
type Join struct {
	Type  JoinType
	Table TableRef
	On    Expr // nil for CROSS JOIN
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is the parsed query.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Joins   []Join
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int64 // -1 when absent

	// Explain marks an EXPLAIN-prefixed statement: plan only, no
	// execution. Analyze additionally executes the query with the span
	// tracer on and renders the trace (EXPLAIN ANALYZE). Both are
	// statement modifiers and do not participate in the canonical String
	// form, so an analyzed query shares its reuse fingerprint with the
	// plain query it wraps.
	Explain bool
	Analyze bool
}

// String renders the statement canonically (used in logs and result reuse
// fingerprints).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteByte('*')
			continue
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Name)
		if t.Alias != "" {
			sb.WriteString(" AS " + t.Alias)
		}
	}
	for _, j := range s.Joins {
		sb.WriteString(" " + j.Type.String() + " " + j.Table.Name)
		if j.Table.Alias != "" {
			sb.WriteString(" AS " + j.Table.Alias)
		}
		if j.On != nil {
			sb.WriteString(" ON " + j.On.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}
