package sqlparser

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lex tokenizes the input. String literals use single quotes with ”
// escaping. Comments are not part of the paper's grammar and are rejected.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c) || c >= utf8.RuneSelf:
			// Identifiers are ASCII words plus any Unicode letters/digits;
			// non-ASCII bytes are decoded as full runes so invalid UTF-8 is
			// rejected here instead of round-tripping into mojibake.
			start := i
			for i < n {
				b := input[i]
				if isIdentPart(b) {
					i++
					continue
				}
				if b < utf8.RuneSelf {
					break
				}
				r, size := utf8.DecodeRuneInString(input[i:])
				if r == utf8.RuneError && size == 1 {
					return nil, errf(i+1, "invalid UTF-8 byte 0x%02x", b)
				}
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					break
				}
				i += size
			}
			if i == start {
				r, _ := utf8.DecodeRuneInString(input[start:])
				return nil, errf(start+1, "unexpected character %q", string(r))
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start + 1})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start + 1})
			}
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' && !seenDot) {
				if input[i] == '.' {
					// "1.x" where x is not a digit is "1" "." "x".
					if i+1 >= n || input[i+1] < '0' || input[i+1] > '9' {
						break
					}
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start + 1})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, errf(start+1, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start + 1})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "!=", "<>", "<=", ">=":
				toks = append(toks, Token{Kind: TokOp, Text: two, Pos: start + 1})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '!', '.', ',', '(', ')', ';':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: start + 1})
				i++
			default:
				return nil, errf(start+1, "unexpected character %q", string(rune(c)))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n + 1})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
