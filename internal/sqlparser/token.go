// Package sqlparser implements the lexer and recursive-descent parser for
// Feisu's query language — the star-schema SQL subset printed in paper
// §III-A, including the WITHIN aggregation clause, the CONTAINS string
// operator used by the evaluation workload (§VI-B), and the `!` negation
// that appears in the paper's Fig. 7 plan-rewriting example.
package sqlparser

import "fmt"

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp     // operators and punctuation: = != <> < <= > >= + - * / % ! . , ( ) ;
	TokParamQ // unused placeholder for future prepared statements
)

// Token is one lexeme with its source position (1-based column offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep original case
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords recognized by the lexer (paper §III-A grammar plus literals).
var keywords = map[string]bool{
	"SELECT": true, "AS": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "ASC": true, "DESC": true,
	"JOIN": true, "INNER": true, "OUTER": true, "LEFT": true,
	"RIGHT": true, "CROSS": true, "ON": true,
	"AND": true, "OR": true, "NOT": true, "IS": true,
	"WITHIN": true, "CONTAINS": true, "RECORD": true,
	"TRUE": true, "FALSE": true, "NULL": true,
	"EXPLAIN": true, "ANALYZE": true,
}

// Error is a parse or lex error with position information.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: position %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
