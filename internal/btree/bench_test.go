package btree

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(types.NewInt(rng.Int63n(1<<20)), int32(i))
	}
}

func BenchmarkIndexLookupRange(b *testing.B) {
	x := NewIndex()
	c := colOf()
	for i := int64(0); i < 4096; i++ {
		_ = c.Append(types.NewInt(i % 97))
	}
	x.ObserveColumn("b0", "c", c, 4096)
	a := plan.Atom{Col: "c", Op: sqlparser.OpGt, Val: types.NewInt(50)}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := x.Lookup(ctx, "b0", a, 4096); !ok {
			b.Fatal("miss")
		}
	}
}
