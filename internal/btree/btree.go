// Package btree implements the B-tree secondary index Feisu is compared
// against in the paper's Fig. 9(b). Each indexed (block, column) pair gets
// an in-memory B-tree mapping column values to row ids; predicate atoms are
// answered by range scans. Unlike SmartIndex, the B-tree avoids re-reading
// the column but still pays tree traversal and row-id materialization per
// query, which is why its curve is flat while SmartIndex keeps improving.
package btree

import (
	"fmt"

	"repro/internal/types"
)

// degree is the minimum fan-out; nodes hold [degree-1, 2*degree-1] keys.
const degree = 32

// Tree is a B-tree from types.Value keys to row-id lists (duplicates are
// folded into one key's list).
type Tree struct {
	root *node
	size int // distinct keys
}

type item struct {
	key  types.Value
	rows []int32
}

type node struct {
	items    []item
	children []*node // nil for leaves
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: &node{}} }

// Len returns the number of distinct keys.
func (t *Tree) Len() int { return t.size }

func (n *node) leaf() bool { return len(n.children) == 0 }

// find returns the position of key in n.items and whether it is present.
func (n *node) find(key types.Value) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		cmp, err := types.Compare(n.items[mid].key, key)
		if err != nil {
			// Mixed incomparable types cannot occur in one column; order
			// them by type tag for safety.
			cmp = int(n.items[mid].key.T) - int(key.T)
		}
		if cmp < 0 {
			lo = mid + 1
		} else if cmp > 0 {
			hi = mid
		} else {
			return mid, true
		}
	}
	return lo, false
}

// Insert adds row to key's list.
func (t *Tree) Insert(key types.Value, row int32) {
	if len(t.root.items) == 2*degree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	if t.insertNonFull(t.root, key, row) {
		t.size++
	}
}

// insertNonFull inserts into a node known to have room; it reports whether
// a new distinct key was created.
func (t *Tree) insertNonFull(n *node, key types.Value, row int32) bool {
	for {
		i, found := n.find(key)
		if found {
			n.items[i].rows = append(n.items[i].rows, row)
			return false
		}
		if n.leaf() {
			n.items = append(n.items, item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item{key: key, rows: []int32{row}}
			return true
		}
		if len(n.children[i].items) == 2*degree-1 {
			n.splitChild(i)
			cmp, err := types.Compare(key, n.items[i].key)
			if err == nil && cmp == 0 {
				n.items[i].rows = append(n.items[i].rows, row)
				return false
			}
			if err == nil && cmp > 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at index i.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := degree - 1
	up := child.items[mid]
	right := &node{items: append([]item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = up
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Lookup returns the row ids for an exact key.
func (t *Tree) Lookup(key types.Value) []int32 {
	n := t.root
	for {
		i, found := n.find(key)
		if found {
			return n.items[i].rows
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// Range calls fn for every (key, rows) with min <= key <= max, ascending.
// A NULL min means unbounded below; a NULL max unbounded above. fn may
// return false to stop early.
func (t *Tree) Range(min, max types.Value, fn func(key types.Value, rows []int32) bool) {
	t.rangeNode(t.root, min, max, fn)
}

func (t *Tree) rangeNode(n *node, min, max types.Value, fn func(types.Value, []int32) bool) bool {
	start := 0
	if !min.IsNull() {
		start, _ = n.find(min)
	}
	for i := start; i <= len(n.items); i++ {
		if !n.leaf() {
			if !t.rangeNode(n.children[i], min, max, fn) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		it := n.items[i]
		if !min.IsNull() {
			if cmp, err := types.Compare(it.key, min); err != nil || cmp < 0 {
				continue
			}
		}
		if !max.IsNull() {
			if cmp, err := types.Compare(it.key, max); err != nil || cmp > 0 {
				return false
			}
		}
		if !fn(it.key, it.rows) {
			return false
		}
	}
	return true
}

// Walk visits every key ascending (testing helper).
func (t *Tree) Walk(fn func(key types.Value, rows []int32) bool) {
	t.Range(types.NullValue(), types.NullValue(), fn)
}

// check validates B-tree invariants (testing helper).
func (t *Tree) check() error {
	_, err := t.checkNode(t.root, true)
	return err
}

func (t *Tree) checkNode(n *node, root bool) (int, error) {
	if !root && len(n.items) < degree-1 {
		return 0, fmt.Errorf("btree: underfull node (%d items)", len(n.items))
	}
	if len(n.items) > 2*degree-1 {
		return 0, fmt.Errorf("btree: overfull node (%d items)", len(n.items))
	}
	for i := 1; i < len(n.items); i++ {
		cmp, err := types.Compare(n.items[i-1].key, n.items[i].key)
		if err == nil && cmp >= 0 {
			return 0, fmt.Errorf("btree: unsorted keys at %d", i)
		}
	}
	if n.leaf() {
		return 1, nil
	}
	if len(n.children) != len(n.items)+1 {
		return 0, fmt.Errorf("btree: %d children for %d items", len(n.children), len(n.items))
	}
	depth := -1
	for _, c := range n.children {
		d, err := t.checkNode(c, false)
		if err != nil {
			return 0, err
		}
		if depth == -1 {
			depth = d
		} else if d != depth {
			return 0, fmt.Errorf("btree: uneven leaf depth")
		}
	}
	return depth + 1, nil
}
