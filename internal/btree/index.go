package btree

import (
	"context"
	"sync"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// Index adapts per-(block, column) B-trees to the executor's IndexSource
// interface: once a column has been observed, comparison atoms over it are
// answered by tree range scans instead of column re-reads. It implements
// both exec.IndexSource and exec.ColumnObserver.
type Index struct {
	// Model prices lookups: unlike SmartIndex's cached vectors, a B-tree
	// must traverse the tree and materialize matching row ids on every
	// query — the computation the paper credits SmartIndex with avoiding.
	Model *sim.CostModel

	mu    sync.Mutex
	trees map[string]*colTree // blockID + "|" + column
	// Builds counts trees constructed; Lookups counts tree-served atoms.
	Builds  int64
	Lookups int64
}

type colTree struct {
	tree    *Tree
	numRows int
}

// NewIndex returns an empty B-tree index manager.
func NewIndex() *Index { return &Index{trees: make(map[string]*colTree)} }

// ObserveColumn builds (once) the B-tree for a column the executor just
// read. Repeated columns index their flattened values per record.
func (x *Index) ObserveColumn(blockID, colName string, c *colstore.Column, numRows int) {
	k := blockID + "|" + colName
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.trees[k]; ok {
		return
	}
	t := New()
	if c.Offsets != nil {
		for r := 0; r < numRows; r++ {
			for i := c.Offsets[r]; i < c.Offsets[r+1]; i++ {
				if v := c.Value(int(i)); !v.IsNull() {
					t.Insert(v, int32(r))
				}
			}
		}
	} else {
		for r := 0; r < c.Len(); r++ {
			if v := c.Value(r); !v.IsNull() {
				t.Insert(v, int32(r))
			}
		}
	}
	x.trees[k] = &colTree{tree: t, numRows: numRows}
	x.Builds++
}

// Lookup implements exec.IndexSource by range-scanning the column's tree.
// CONTAINS atoms cannot be answered by a B-tree and miss.
func (x *Index) Lookup(ctx context.Context, blockID string, a plan.Atom, n int) (*bitmap.Bitmap, bool) {
	if a.Op == sqlparser.OpContains || a.Negated {
		return nil, false
	}
	x.mu.Lock()
	ct, ok := x.trees[blockID+"|"+a.Col]
	x.mu.Unlock()
	if !ok || ct.numRows != n {
		return nil, false
	}
	out := bitmap.New(n)
	set := func(rows []int32) {
		for _, r := range rows {
			out.Set(int(r))
		}
	}
	t := ct.tree
	switch a.Op {
	case sqlparser.OpEq:
		set(t.Lookup(a.Val))
	case sqlparser.OpNe:
		t.Walk(func(k types.Value, rows []int32) bool {
			if cmp, err := types.Compare(k, a.Val); err != nil || cmp != 0 {
				set(rows)
			}
			return true
		})
	case sqlparser.OpLt, sqlparser.OpLe:
		t.Range(types.NullValue(), a.Val, func(k types.Value, rows []int32) bool {
			if a.Op == sqlparser.OpLt {
				if cmp, err := types.Compare(k, a.Val); err == nil && cmp == 0 {
					return true
				}
			}
			set(rows)
			return true
		})
	case sqlparser.OpGt, sqlparser.OpGe:
		t.Range(a.Val, types.NullValue(), func(k types.Value, rows []int32) bool {
			if a.Op == sqlparser.OpGt {
				if cmp, err := types.Compare(k, a.Val); err == nil && cmp == 0 {
					return true
				}
			}
			set(rows)
			return true
		})
	default:
		return nil, false
	}
	x.mu.Lock()
	x.Lookups++
	x.mu.Unlock()
	if x.Model != nil {
		if b := storage.BillFrom(ctx); b != nil {
			// Traversal plus per-matched-row materialization, priced as
			// CPU work over the touched bytes.
			b.ChargeScan(x.Model, int64(out.Count())*16+int64(n))
		}
	}
	return out, true
}

// Store implements exec.IndexSource as a no-op: the B-tree baseline indexes
// columns, not predicate results.
func (x *Index) Store(string, plan.Atom, *bitmap.Bitmap, colstore.Stats) {}
