package btree

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

func TestInsertLookup(t *testing.T) {
	tr := New()
	for i := int64(0); i < 500; i++ {
		tr.Insert(types.NewInt(i%100), int32(i))
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
	rows := tr.Lookup(types.NewInt(7))
	if len(rows) != 5 {
		t.Errorf("Lookup(7) = %v", rows)
	}
	if got := tr.Lookup(types.NewInt(1000)); got != nil {
		t.Errorf("missing key = %v", got)
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScan(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(types.NewInt(i), int32(i))
	}
	var got []int64
	tr.Range(types.NewInt(10), types.NewInt(20), func(k types.Value, rows []int32) bool {
		got = append(got, k.I)
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Errorf("range = %v", got)
	}
	// Unbounded below.
	got = got[:0]
	tr.Range(types.NullValue(), types.NewInt(3), func(k types.Value, rows []int32) bool {
		got = append(got, k.I)
		return true
	})
	if len(got) != 4 {
		t.Errorf("unbounded-low range = %v", got)
	}
	// Early stop.
	count := 0
	tr.Range(types.NullValue(), types.NullValue(), func(types.Value, []int32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop count = %d", count)
	}
}

func TestWalkSorted(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		tr.Insert(types.NewInt(rng.Int63n(500)), int32(i))
	}
	prev := int64(-1)
	tr.Walk(func(k types.Value, rows []int32) bool {
		if k.I <= prev {
			t.Fatalf("unsorted walk: %d after %d", k.I, prev)
		}
		prev = k.I
		return true
	})
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New()
	words := []string{"pear", "apple", "mango", "fig", "banana"}
	for i, w := range words {
		tr.Insert(types.NewString(w), int32(i))
	}
	var got []string
	tr.Range(types.NewString("b"), types.NewString("n"), func(k types.Value, _ []int32) bool {
		got = append(got, k.S)
		return true
	})
	want := []string{"banana", "fig", "mango"}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range[%d] = %q", i, got[i])
		}
	}
}

func TestTreeInvariantProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%3000 + 1
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		counts := map[int64]int{}
		for i := 0; i < n; i++ {
			k := rng.Int63n(200)
			counts[k]++
			tr.Insert(types.NewInt(k), int32(i))
		}
		if tr.check() != nil || tr.Len() != len(counts) {
			return false
		}
		for k, c := range counts {
			if len(tr.Lookup(types.NewInt(k))) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func colOf(vals ...int64) *colstore.Column {
	c := colstore.NewColumn(types.Int64)
	for _, v := range vals {
		_ = c.Append(types.NewInt(v))
	}
	return c
}

func TestIndexObserveAndLookup(t *testing.T) {
	x := NewIndex()
	col := colOf(5, 1, 9, 1, 7)
	x.ObserveColumn("b0", "c", col, 5)
	if x.Builds != 1 {
		t.Errorf("builds = %d", x.Builds)
	}
	x.ObserveColumn("b0", "c", col, 5) // idempotent
	if x.Builds != 1 {
		t.Error("re-observe should not rebuild")
	}

	cases := []struct {
		op   sqlparser.BinaryOp
		val  int64
		want []int
	}{
		{sqlparser.OpEq, 1, []int{1, 3}},
		{sqlparser.OpNe, 1, []int{0, 2, 4}},
		{sqlparser.OpGt, 5, []int{2, 4}},
		{sqlparser.OpGe, 5, []int{0, 2, 4}},
		{sqlparser.OpLt, 5, []int{1, 3}},
		{sqlparser.OpLe, 5, []int{0, 1, 3}},
	}
	for _, c := range cases {
		bm, ok := x.Lookup(context.Background(), "b0", plan.Atom{Col: "c", Op: c.op, Val: types.NewInt(c.val)}, 5)
		if !ok {
			t.Fatalf("%v %d should hit", c.op, c.val)
		}
		got := bm.Selected()
		if len(got) != len(c.want) {
			t.Errorf("%v %d = %v, want %v", c.op, c.val, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v %d = %v, want %v", c.op, c.val, got, c.want)
				break
			}
		}
	}
}

func TestIndexMisses(t *testing.T) {
	x := NewIndex()
	a := plan.Atom{Col: "c", Op: sqlparser.OpGt, Val: types.NewInt(1)}
	if _, ok := x.Lookup(context.Background(), "b0", a, 5); ok {
		t.Error("unobserved column should miss")
	}
	x.ObserveColumn("b0", "c", colOf(1, 2, 3), 3)
	if _, ok := x.Lookup(context.Background(), "b0", a, 5); ok {
		t.Error("row-count mismatch should miss")
	}
	cont := plan.Atom{Col: "c", Op: sqlparser.OpContains, Val: types.NewString("x")}
	if _, ok := x.Lookup(context.Background(), "b0", cont, 3); ok {
		t.Error("CONTAINS should miss")
	}
}

func TestIndexRepeatedColumn(t *testing.T) {
	x := NewIndex()
	c := colstore.NewColumn(types.Int64)
	// record 0: [1, 9]; record 1: []; record 2: [4].
	_ = c.Append(types.NewInt(1))
	_ = c.Append(types.NewInt(9))
	_ = c.Append(types.NewInt(4))
	c.Offsets = []int32{0, 2, 2, 3}
	x.ObserveColumn("b0", "pos", c, 3)
	bm, ok := x.Lookup(context.Background(), "b0", plan.Atom{Col: "pos", Op: sqlparser.OpGt, Val: types.NewInt(3)}, 3)
	if !ok {
		t.Fatal("should hit")
	}
	got := bm.Selected()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("repeated lookup = %v", got)
	}
}

func TestIndexNullsExcluded(t *testing.T) {
	x := NewIndex()
	c := colstore.NewColumn(types.Int64)
	_ = c.Append(types.NewInt(1))
	_ = c.Append(types.NullValue())
	_ = c.Append(types.NewInt(3))
	x.ObserveColumn("b0", "c", c, 3)
	bm, ok := x.Lookup(context.Background(), "b0", plan.Atom{Col: "c", Op: sqlparser.OpNe, Val: types.NewInt(99)}, 3)
	if !ok {
		t.Fatal("should hit")
	}
	if bm.Get(1) {
		t.Error("NULL row must not satisfy any predicate")
	}
}
