// Package colstore implements Feisu's columnar block format (paper §III-A):
// tables are split into partitions; each partition file holds a sequence of
// row-group blocks; each block stores one compressed chunk per column plus
// min/max statistics. Nested JSON records are flattened into columns, and
// repeated (array) fields keep per-record offsets so WITHIN-record
// aggregation can reconstruct record boundaries.
package colstore

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/bloom"
	"repro/internal/types"
)

// Column is the in-memory representation of one column of a block: a typed
// vector with an optional null bitmap, plus record offsets when the column
// is repeated.
type Column struct {
	Type types.Type
	// Nulls marks NULL positions; nil means no NULLs. A set bit means the
	// value at that index is NULL.
	Nulls *bitmap.Bitmap
	// Exactly one of the value slices is used, selected by Type.
	Ints   []int64
	Floats []float64
	Bools  []bool
	Strs   []string
	// Offsets is non-nil only for repeated columns: Offsets[r] .. Offsets[r+1]
	// is the half-open range of flattened values belonging to record r.
	// len(Offsets) == numRecords+1.
	Offsets []int32
}

// NewColumn returns an empty column of the given type.
func NewColumn(t types.Type) *Column { return &Column{Type: t} }

// Len returns the number of values in the column (flattened length for
// repeated columns).
func (c *Column) Len() int {
	switch c.Type {
	case types.Int64:
		return len(c.Ints)
	case types.Float64:
		return len(c.Floats)
	case types.Bool:
		return len(c.Bools)
	case types.String:
		return len(c.Strs)
	default:
		return 0
	}
}

// IsNull reports whether the value at index i is NULL.
func (c *Column) IsNull(i int) bool { return c.Nulls != nil && c.Nulls.Get(i) }

// Value returns the value at index i as a types.Value.
func (c *Column) Value(i int) types.Value {
	if c.IsNull(i) {
		return types.NullValue()
	}
	switch c.Type {
	case types.Int64:
		return types.NewInt(c.Ints[i])
	case types.Float64:
		return types.NewFloat(c.Floats[i])
	case types.Bool:
		return types.NewBool(c.Bools[i])
	case types.String:
		return types.NewString(c.Strs[i])
	default:
		return types.NullValue()
	}
}

// Append adds a value, extending the null bitmap lazily. Appending a value
// of the wrong type is an error.
func (c *Column) Append(v types.Value) error {
	if v.IsNull() {
		c.appendZero()
		if c.Nulls == nil {
			c.Nulls = bitmap.New(0)
		}
		c.ensureNullLen()
		c.Nulls.Set(c.Len() - 1)
		return nil
	}
	coerced, err := types.Coerce(v, c.Type)
	if err != nil {
		return fmt.Errorf("colstore: append %s to %s column: %w", v.T, c.Type, err)
	}
	switch c.Type {
	case types.Int64:
		c.Ints = append(c.Ints, coerced.I)
	case types.Float64:
		c.Floats = append(c.Floats, coerced.F)
	case types.Bool:
		c.Bools = append(c.Bools, coerced.B)
	case types.String:
		c.Strs = append(c.Strs, coerced.S)
	default:
		return fmt.Errorf("colstore: append to column of type %s", c.Type)
	}
	if c.Nulls != nil {
		c.ensureNullLen()
	}
	return nil
}

func (c *Column) appendZero() {
	switch c.Type {
	case types.Int64:
		c.Ints = append(c.Ints, 0)
	case types.Float64:
		c.Floats = append(c.Floats, 0)
	case types.Bool:
		c.Bools = append(c.Bools, false)
	case types.String:
		c.Strs = append(c.Strs, "")
	}
}

// ensureNullLen grows the null bitmap to match the value count. bitmap has a
// fixed length, so rebuild when it lags (amortized by doubling).
func (c *Column) ensureNullLen() {
	n := c.Len()
	if c.Nulls.Len() >= n {
		return
	}
	grown := bitmap.New(n * 2)
	c.Nulls.ForEachSet(func(i int) { grown.Set(i) })
	c.Nulls = grown
}

// finishNulls trims the lazily grown null bitmap to exactly n bits, or drops
// it entirely when no value is NULL.
func (c *Column) finishNulls(n int) {
	if c.Nulls == nil {
		return
	}
	trimmed := bitmap.New(n)
	any := false
	c.Nulls.ForEachSet(func(i int) {
		if i < n {
			trimmed.Set(i)
			any = true
		}
	})
	if !any {
		c.Nulls = nil
		return
	}
	c.Nulls = trimmed
}

// Stats summarises one column chunk for block pruning: min/max over
// non-null values, the null count, and a bloom filter over the chunk's
// values — the "range bloom" metadata of the paper's index schema (Fig. 6).
// The range answers ordered predicates; the bloom proves equality
// predicates all-false when the value is certainly absent.
type Stats struct {
	Min, Max  types.Value
	NullCount int
	Bloom     *bloom.Filter
}

// BloomKey canonicalizes a value for bloom membership so that values equal
// under types.Compare share a key (2 and 2.0 both render "2").
func BloomKey(v types.Value) []byte { return []byte(v.String()) }

// ComputeStats scans the column and returns its stats.
func (c *Column) ComputeStats() Stats {
	var st Stats
	n := c.Len()
	if n > 0 {
		st.Bloom = bloom.New(n, 0.01)
	}
	for i := 0; i < n; i++ {
		if c.IsNull(i) {
			st.NullCount++
			continue
		}
		v := c.Value(i)
		st.Bloom.Add(BloomKey(v))
		if st.Min.IsNull() {
			st.Min, st.Max = v, v
			continue
		}
		if cmp, err := types.Compare(v, st.Min); err == nil && cmp < 0 {
			st.Min = v
		}
		if cmp, err := types.Compare(v, st.Max); err == nil && cmp > 0 {
			st.Max = v
		}
	}
	return st
}
