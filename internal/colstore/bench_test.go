package colstore

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

func benchFile(b *testing.B, rows int) ([]byte, *FileMeta) {
	b.Helper()
	schema := types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "s", Type: types.String},
		types.Field{Name: "f", Type: types.Float64},
	)
	w := NewWriter(schema, 1024)
	for i := 0; i < rows; i++ {
		if err := w.Append(types.Row{
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("r%d", i%16)), types.NewFloat(float64(i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		b.Fatal(err)
	}
	meta, err := ReadMeta(data)
	if err != nil {
		b.Fatal(err)
	}
	return data, meta
}

func BenchmarkWriterAppend(b *testing.B) {
	schema := types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "s", Type: types.String},
	)
	w := NewWriter(schema, 4096)
	row := types.Row{types.NewInt(1), types.NewString("abc")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Append(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBlock(b *testing.B) {
	data, meta := benchFile(b, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBlock(data, meta, i%len(meta.Blocks), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSingleColumn(b *testing.B) {
	data, meta := benchFile(b, 8192)
	ext := meta.Blocks[0].ColExtents[0]
	payload := data[ext.Off : ext.Off+ext.Len]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeColumn(types.Int64, payload); err != nil {
			b.Fatal(err)
		}
	}
}
