package colstore

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/types"
)

// FlattenJSON converts one nested JSON record into the per-field value lists
// expected by Block.AppendRecord. Field names in the schema are dotted paths
// into the JSON object (e.g. "click.pos"); a path segment that crosses a
// JSON array marks the field repeated and yields one value per element.
// Missing paths yield NULL (scalar) or an empty list (repeated). This is the
// paper's "nested data format such as json ... flatten[ed] into columns".
func FlattenJSON(schema *types.Schema, data []byte) ([][]types.Value, error) {
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("colstore: bad json record: %w", err)
	}
	rec := make([][]types.Value, schema.Len())
	for i, f := range schema.Fields {
		vals, err := extractPath(root, strings.Split(f.Name, "."), f)
		if err != nil {
			return nil, fmt.Errorf("colstore: field %q: %w", f.Name, err)
		}
		if !f.Repeated {
			if len(vals) == 0 {
				vals = []types.Value{types.NullValue()}
			} else if len(vals) > 1 {
				return nil, fmt.Errorf("colstore: field %q is scalar but json has %d values", f.Name, len(vals))
			}
		}
		rec[i] = vals
	}
	return rec, nil
}

// extractPath walks the JSON value along the path, fanning out over arrays.
func extractPath(v any, path []string, f types.Field) ([]types.Value, error) {
	if v == nil {
		return nil, nil
	}
	if arr, ok := v.([]any); ok {
		var out []types.Value
		for _, elem := range arr {
			vals, err := extractPath(elem, path, f)
			if err != nil {
				return nil, err
			}
			out = append(out, vals...)
		}
		return out, nil
	}
	if len(path) == 0 {
		val, err := convertScalar(v, f.Type)
		if err != nil {
			return nil, err
		}
		return []types.Value{val}, nil
	}
	obj, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("expected object at %q, got %T", path[0], v)
	}
	child, ok := obj[path[0]]
	if !ok {
		return nil, nil
	}
	return extractPath(child, path[1:], f)
}

func convertScalar(v any, t types.Type) (types.Value, error) {
	switch x := v.(type) {
	case nil:
		return types.NullValue(), nil
	case float64:
		if t == types.Int64 {
			return types.NewInt(int64(x)), nil
		}
		return types.NewFloat(x), nil
	case bool:
		if t != types.Bool {
			return types.Value{}, fmt.Errorf("json bool into %s column", t)
		}
		return types.NewBool(x), nil
	case string:
		if t != types.String {
			return types.Value{}, fmt.Errorf("json string into %s column", t)
		}
		return types.NewString(x), nil
	case json.Number:
		return types.Value{}, fmt.Errorf("unexpected json.Number")
	default:
		return types.Value{}, fmt.Errorf("json %T into %s column", v, t)
	}
}
