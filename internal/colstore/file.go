package colstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/bloom"
	"repro/internal/types"
)

// ErrChecksum reports a column payload whose bytes do not match the CRC
// recorded in the footer — a corrupt read from the storage tier. Callers
// treat it as a retryable read failure (a replica or retry may be clean).
var ErrChecksum = errors.New("colstore: column checksum mismatch")

// VerifyExtent checks payload bytes against the extent's recorded CRC.
// Extents with CRC 0 (pre-checksum files) are accepted unverified.
func VerifyExtent(e ColExtent, payload []byte) error {
	if e.CRC == 0 {
		return nil
	}
	if got := crc32.ChecksumIEEE(payload); got != e.CRC {
		return fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, e.CRC)
	}
	return nil
}

// File format:
//
//	magic "FEISU1\n"
//	block payloads, back to back
//	footer:
//	  schema: uvarint nFields, per field: name, type byte, repeated byte
//	  uvarint nBlocks, per block: uvarint offset, size, numRows,
//	    per column: stats (min value, max value, uvarint nullCount)
//	uint32 footerLen (little-endian)
//	magic tail "FSU1"
//
// Values in stats are serialized as: type byte + payload.

var (
	fileMagic = []byte("FEISU1\n")
	tailMagic = []byte("FSU1")
)

// BlockMeta locates one block inside a partition file and carries its
// pruning statistics.
type BlockMeta struct {
	Ordinal int
	Offset  int64
	Size    int64
	Stats   BlockStats
	// ColExtents are the absolute per-column payload locations in the
	// file, enabling column-granular range reads.
	ColExtents []ColExtent
}

// FileMeta is the parsed footer of a partition file.
type FileMeta struct {
	Schema *types.Schema
	Blocks []BlockMeta
}

func appendValue(dst []byte, v types.Value) []byte {
	dst = append(dst, byte(v.T))
	switch v.T {
	case types.Null:
	case types.Int64:
		dst = binary.AppendUvarint(dst, uint64(v.I))
	case types.Float64:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
	case types.Bool:
		if v.B {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case types.String:
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	}
	return dst
}

func readValue(p []byte) (types.Value, []byte, error) {
	if len(p) == 0 {
		return types.Value{}, nil, fmt.Errorf("colstore: truncated value")
	}
	t := types.Type(p[0])
	p = p[1:]
	switch t {
	case types.Null:
		return types.NullValue(), p, nil
	case types.Int64:
		u, off := binary.Uvarint(p)
		if off <= 0 {
			return types.Value{}, nil, fmt.Errorf("colstore: truncated int value")
		}
		return types.NewInt(int64(u)), p[off:], nil
	case types.Float64:
		if len(p) < 8 {
			return types.Value{}, nil, fmt.Errorf("colstore: truncated float value")
		}
		return types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(p))), p[8:], nil
	case types.Bool:
		if len(p) < 1 {
			return types.Value{}, nil, fmt.Errorf("colstore: truncated bool value")
		}
		return types.NewBool(p[0] == 1), p[1:], nil
	case types.String:
		l, off := binary.Uvarint(p)
		if off <= 0 || uint64(len(p)-off) < l {
			return types.Value{}, nil, fmt.Errorf("colstore: truncated string value")
		}
		return types.NewString(string(p[off : off+int(l)])), p[off+int(l):], nil
	default:
		return types.Value{}, nil, fmt.Errorf("colstore: bad value type %d", t)
	}
}

// Writer accumulates rows into blocks and produces a serialized partition
// file. The zero value is not usable; call NewWriter.
type Writer struct {
	schema       *types.Schema
	rowsPerBlock int
	cur          *Block
	buf          bytes.Buffer
	blocks       []BlockMeta
}

// NewWriter returns a writer producing blocks of rowsPerBlock records.
func NewWriter(schema *types.Schema, rowsPerBlock int) *Writer {
	if rowsPerBlock <= 0 {
		rowsPerBlock = 4096
	}
	w := &Writer{schema: schema, rowsPerBlock: rowsPerBlock, cur: NewBlock(schema)}
	w.buf.Write(fileMagic)
	return w
}

// Append adds one record of scalar values (see Block.AppendRow).
func (w *Writer) Append(row types.Row) error {
	if err := w.cur.AppendRow(row); err != nil {
		return err
	}
	return w.maybeFlush()
}

// AppendRecord adds one record with per-field value lists (repeated fields).
func (w *Writer) AppendRecord(rec [][]types.Value) error {
	if err := w.cur.AppendRecord(rec); err != nil {
		return err
	}
	return w.maybeFlush()
}

func (w *Writer) maybeFlush() error {
	if w.cur.NumRows >= w.rowsPerBlock {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if w.cur.NumRows == 0 {
		return nil
	}
	payload, extents, err := w.cur.Marshal()
	if err != nil {
		return err
	}
	meta := BlockMeta{
		Ordinal: len(w.blocks),
		Offset:  int64(w.buf.Len()),
		Size:    int64(len(payload)),
		Stats:   w.cur.ComputeStats(),
	}
	meta.ColExtents = make([]ColExtent, len(extents))
	for i, e := range extents {
		meta.ColExtents[i] = ColExtent{
			Off: meta.Offset + e.Off,
			Len: e.Len,
			CRC: crc32.ChecksumIEEE(payload[e.Off : e.Off+e.Len]),
		}
	}
	w.buf.Write(payload)
	w.blocks = append(w.blocks, meta)
	w.cur = NewBlock(w.schema)
	return nil
}

// Finish flushes the last block, appends the footer and returns the complete
// file contents. The writer must not be reused afterwards.
func (w *Writer) Finish() ([]byte, error) {
	if err := w.flushBlock(); err != nil {
		return nil, err
	}
	footer := w.marshalFooter()
	w.buf.Write(footer)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(footer)))
	w.buf.Write(lenBuf[:])
	w.buf.Write(tailMagic)
	return w.buf.Bytes(), nil
}

func (w *Writer) marshalFooter() []byte {
	var f []byte
	f = binary.AppendUvarint(f, uint64(w.schema.Len()))
	for _, fd := range w.schema.Fields {
		f = binary.AppendUvarint(f, uint64(len(fd.Name)))
		f = append(f, fd.Name...)
		f = append(f, byte(fd.Type))
		if fd.Repeated {
			f = append(f, 1)
		} else {
			f = append(f, 0)
		}
	}
	f = binary.AppendUvarint(f, uint64(len(w.blocks)))
	for _, bm := range w.blocks {
		f = binary.AppendUvarint(f, uint64(bm.Offset))
		f = binary.AppendUvarint(f, uint64(bm.Size))
		f = binary.AppendUvarint(f, uint64(bm.Stats.NumRows))
		for ci, cs := range bm.Stats.Columns {
			f = appendValue(f, cs.Min)
			f = appendValue(f, cs.Max)
			f = binary.AppendUvarint(f, uint64(cs.NullCount))
			f = binary.AppendUvarint(f, uint64(bm.ColExtents[ci].Off))
			f = binary.AppendUvarint(f, uint64(bm.ColExtents[ci].Len))
			f = binary.AppendUvarint(f, uint64(bm.ColExtents[ci].CRC))
			if cs.Bloom != nil {
				bf := cs.Bloom.Marshal()
				f = append(f, 1)
				f = binary.AppendUvarint(f, uint64(len(bf)))
				f = append(f, bf...)
			} else {
				f = append(f, 0)
			}
		}
	}
	return f
}

// ReadMeta parses the footer of a partition file.
func ReadMeta(data []byte) (*FileMeta, error) {
	if len(data) < len(fileMagic)+4+len(tailMagic) {
		return nil, fmt.Errorf("colstore: file too small")
	}
	if !bytes.HasPrefix(data, fileMagic) {
		return nil, fmt.Errorf("colstore: bad file magic")
	}
	if !bytes.Equal(data[len(data)-len(tailMagic):], tailMagic) {
		return nil, fmt.Errorf("colstore: bad tail magic")
	}
	flenPos := len(data) - len(tailMagic) - 4
	footerLen := int(binary.LittleEndian.Uint32(data[flenPos:]))
	if footerLen < 0 || flenPos-footerLen < len(fileMagic) {
		return nil, fmt.Errorf("colstore: bad footer length %d", footerLen)
	}
	meta, err := ParseFooter(data[flenPos-footerLen : flenPos])
	if err != nil {
		return nil, err
	}
	for i, bm := range meta.Blocks {
		if bm.Offset < int64(len(fileMagic)) || bm.Offset+bm.Size > int64(flenPos-footerLen) {
			return nil, fmt.Errorf("colstore: block %d out of bounds", i)
		}
	}
	return meta, nil
}

// FooterTailLen is the fixed number of trailing bytes holding the footer
// length and tail magic; remote readers fetch it first, then the footer.
const FooterTailLen = 4 + 4 // uint32 length + "FSU1"

// ParseFooterTail validates the trailing FooterTailLen bytes and returns the
// footer length.
func ParseFooterTail(tail []byte) (int, error) {
	if len(tail) != FooterTailLen || !bytes.Equal(tail[4:], tailMagic) {
		return 0, fmt.Errorf("colstore: bad footer tail")
	}
	return int(binary.LittleEndian.Uint32(tail)), nil
}

// ParseFooter parses the footer bytes alone (no surrounding file needed), as
// fetched by a range read guided by ParseFooterTail.
func ParseFooter(f []byte) (*FileMeta, error) {
	nFields, off := binary.Uvarint(f)
	if off <= 0 {
		return nil, fmt.Errorf("colstore: bad footer schema")
	}
	f = f[off:]
	fields := make([]types.Field, 0, nFields)
	for i := uint64(0); i < nFields; i++ {
		l, off := binary.Uvarint(f)
		if off <= 0 || uint64(len(f)-off) < l+2 {
			return nil, fmt.Errorf("colstore: truncated footer field")
		}
		name := string(f[off : off+int(l)])
		f = f[off+int(l):]
		fields = append(fields, types.Field{Name: name, Type: types.Type(f[0]), Repeated: f[1] == 1})
		f = f[2:]
	}
	schema, err := types.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("colstore: footer schema: %w", err)
	}

	nBlocks, off := binary.Uvarint(f)
	if off <= 0 {
		return nil, fmt.Errorf("colstore: bad footer block count")
	}
	f = f[off:]
	meta := &FileMeta{Schema: schema, Blocks: make([]BlockMeta, 0, nBlocks)}
	for i := uint64(0); i < nBlocks; i++ {
		var bm BlockMeta
		bm.Ordinal = int(i)
		vals := make([]uint64, 3)
		for j := range vals {
			v, off := binary.Uvarint(f)
			if off <= 0 {
				return nil, fmt.Errorf("colstore: truncated block meta")
			}
			vals[j] = v
			f = f[off:]
		}
		bm.Offset, bm.Size = int64(vals[0]), int64(vals[1])
		bm.Stats.NumRows = int(vals[2])
		bm.Stats.Columns = make([]Stats, schema.Len())
		bm.ColExtents = make([]ColExtent, schema.Len())
		for c := range bm.Stats.Columns {
			var cs Stats
			if cs.Min, f, err = readValue(f); err != nil {
				return nil, err
			}
			if cs.Max, f, err = readValue(f); err != nil {
				return nil, err
			}
			nc, off := binary.Uvarint(f)
			if off <= 0 {
				return nil, fmt.Errorf("colstore: truncated null count")
			}
			cs.NullCount = int(nc)
			f = f[off:]
			eo, off := binary.Uvarint(f)
			if off <= 0 {
				return nil, fmt.Errorf("colstore: truncated column extent offset")
			}
			f = f[off:]
			el, off := binary.Uvarint(f)
			if off <= 0 {
				return nil, fmt.Errorf("colstore: truncated column extent length")
			}
			f = f[off:]
			ec, off := binary.Uvarint(f)
			if off <= 0 {
				return nil, fmt.Errorf("colstore: truncated column extent checksum")
			}
			f = f[off:]
			if len(f) == 0 {
				return nil, fmt.Errorf("colstore: truncated bloom flag")
			}
			hasBloom := f[0]
			f = f[1:]
			if hasBloom == 1 {
				bl, off := binary.Uvarint(f)
				if off <= 0 || uint64(len(f)-off) < bl {
					return nil, fmt.Errorf("colstore: truncated bloom filter")
				}
				filt, err := bloom.Unmarshal(f[off : off+int(bl)])
				if err != nil {
					return nil, fmt.Errorf("colstore: %w", err)
				}
				cs.Bloom = filt
				f = f[off+int(bl):]
			}
			bm.ColExtents[c] = ColExtent{Off: int64(eo), Len: int64(el), CRC: uint32(ec)}
			bm.Stats.Columns[c] = cs
		}
		meta.Blocks = append(meta.Blocks, bm)
	}
	return meta, nil
}

// ReadBlock decodes block ordinal from the file, decoding only wantCols when
// non-nil (column pruning).
func ReadBlock(data []byte, meta *FileMeta, ordinal int, wantCols []int) (*Block, error) {
	if ordinal < 0 || ordinal >= len(meta.Blocks) {
		return nil, fmt.Errorf("colstore: block ordinal %d out of range", ordinal)
	}
	bm := meta.Blocks[ordinal]
	if bm.Offset+bm.Size > int64(len(data)) {
		return nil, fmt.Errorf("colstore: block %d extends past file", ordinal)
	}
	return UnmarshalBlock(meta.Schema, data[bm.Offset:bm.Offset+bm.Size], wantCols)
}
