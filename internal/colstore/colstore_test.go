package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func testSchema() *types.Schema {
	return types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "score", Type: types.Float64},
		types.Field{Name: "ok", Type: types.Bool},
		types.Field{Name: "url", Type: types.String},
	)
}

func TestColumnAppendAndValue(t *testing.T) {
	c := NewColumn(types.Int64)
	for i := int64(0); i < 5; i++ {
		if err := c.Append(types.NewInt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v := c.Value(3); v.I != 3 {
		t.Errorf("Value(3) = %v", v)
	}
}

func TestColumnNulls(t *testing.T) {
	c := NewColumn(types.String)
	mustAppend(t, c, types.NewString("a"))
	mustAppend(t, c, types.NullValue())
	mustAppend(t, c, types.NewString("b"))
	if !c.IsNull(1) || c.IsNull(0) || c.IsNull(2) {
		t.Error("null tracking wrong")
	}
	if !c.Value(1).IsNull() {
		t.Error("Value(1) should be NULL")
	}
	if c.Value(2).S != "b" {
		t.Errorf("Value(2) = %v", c.Value(2))
	}
}

func mustAppend(t *testing.T, c *Column, v types.Value) {
	t.Helper()
	if err := c.Append(v); err != nil {
		t.Fatal(err)
	}
}

func TestColumnAppendCoercion(t *testing.T) {
	c := NewColumn(types.Float64)
	mustAppend(t, c, types.NewInt(3))
	if c.Value(0).F != 3.0 {
		t.Errorf("coerced value = %v", c.Value(0))
	}
	if err := c.Append(types.NewString("x")); err == nil {
		t.Error("string into float column should fail")
	}
}

func TestComputeStats(t *testing.T) {
	c := NewColumn(types.Int64)
	for _, v := range []int64{5, -2, 9, 3} {
		mustAppend(t, c, types.NewInt(v))
	}
	mustAppend(t, c, types.NullValue())
	st := c.ComputeStats()
	if st.Min.I != -2 || st.Max.I != 9 || st.NullCount != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestComputeStatsAllNull(t *testing.T) {
	c := NewColumn(types.Int64)
	mustAppend(t, c, types.NullValue())
	st := c.ComputeStats()
	if !st.Min.IsNull() || !st.Max.IsNull() || st.NullCount != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBlockAppendRowAndRoundTrip(t *testing.T) {
	schema := testSchema()
	b := NewBlock(schema)
	rows := []types.Row{
		{types.NewInt(1), types.NewFloat(0.5), types.NewBool(true), types.NewString("http://a")},
		{types.NewInt(2), types.NullValue(), types.NewBool(false), types.NewString("http://b")},
		{types.NewInt(3), types.NewFloat(-1), types.NullValue(), types.NullValue()},
	}
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	data, _, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBlock(schema, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows != 3 {
		t.Fatalf("NumRows = %d", got.NumRows)
	}
	for ri, want := range rows {
		gotRow := got.Row(ri)
		for ci := range want {
			if !types.Equal(gotRow[ci], want[ci]) {
				t.Errorf("row %d col %d = %v, want %v", ri, ci, gotRow[ci], want[ci])
			}
		}
	}
}

func TestBlockAppendRowWrongArity(t *testing.T) {
	b := NewBlock(testSchema())
	if err := b.AppendRow(types.Row{types.NewInt(1)}); err == nil {
		t.Error("short row should fail")
	}
}

func TestBlockColumnPruning(t *testing.T) {
	schema := testSchema()
	b := NewBlock(schema)
	for i := 0; i < 10; i++ {
		if err := b.AppendRow(types.Row{
			types.NewInt(int64(i)), types.NewFloat(float64(i)), types.NewBool(i%2 == 0), types.NewString("u"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	data, _, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBlock(schema, data, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Columns[0].Len() != 10 || got.Columns[2].Len() != 10 {
		t.Error("wanted columns not decoded")
	}
	if got.Columns[1].Len() != 0 || got.Columns[3].Len() != 0 {
		t.Error("pruned columns should be empty")
	}
}

func TestRepeatedFieldRoundTrip(t *testing.T) {
	schema := types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "tags", Type: types.String, Repeated: true},
	)
	b := NewBlock(schema)
	recs := [][][]types.Value{
		{{types.NewInt(1)}, {types.NewString("a"), types.NewString("b")}},
		{{types.NewInt(2)}, {}},
		{{types.NewInt(3)}, {types.NewString("c")}},
	}
	for _, rec := range recs {
		if err := b.AppendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	data, _, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBlock(schema, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows != 3 {
		t.Fatalf("NumRows = %d", got.NumRows)
	}
	if vs := got.RepeatedValues(1, 0); len(vs) != 2 || vs[0].S != "a" || vs[1].S != "b" {
		t.Errorf("record 0 tags = %v", vs)
	}
	if vs := got.RepeatedValues(1, 1); len(vs) != 0 {
		t.Errorf("record 1 tags = %v", vs)
	}
	if vs := got.RepeatedValues(1, 2); len(vs) != 1 || vs[0].S != "c" {
		t.Errorf("record 2 tags = %v", vs)
	}
	// Row() yields first element or NULL for repeated.
	if r := got.Row(1); !r[1].IsNull() {
		t.Errorf("empty repeated should surface as NULL, got %v", r[1])
	}
}

func TestScalarFieldArityError(t *testing.T) {
	b := NewBlock(testSchema())
	rec := [][]types.Value{
		{types.NewInt(1), types.NewInt(2)}, // two values in scalar field
		{types.NewFloat(0)}, {types.NewBool(true)}, {types.NewString("")},
	}
	if err := b.AppendRecord(rec); err == nil {
		t.Error("multi-valued scalar should fail")
	}
}

func TestFileWriterReaderRoundTrip(t *testing.T) {
	schema := testSchema()
	w := NewWriter(schema, 4)
	const n = 11
	for i := 0; i < n; i++ {
		if err := w.Append(types.Row{
			types.NewInt(int64(i)), types.NewFloat(float64(i) / 2), types.NewBool(i%3 == 0), types.NewString("url"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	meta, err := ReadMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Blocks) != 3 { // 4+4+3
		t.Fatalf("blocks = %d", len(meta.Blocks))
	}
	if meta.Schema.String() != schema.String() {
		t.Errorf("schema round trip = %q", meta.Schema.String())
	}
	total := 0
	for bi := range meta.Blocks {
		blk, err := ReadBlock(data, meta, bi, nil)
		if err != nil {
			t.Fatal(err)
		}
		total += blk.NumRows
		for r := 0; r < blk.NumRows; r++ {
			row := blk.Row(r)
			if int(row[0].I) != total-blk.NumRows+r {
				t.Errorf("block %d row %d id = %v", bi, r, row[0])
			}
		}
	}
	if total != n {
		t.Errorf("total rows = %d, want %d", total, n)
	}
}

func TestFileFooterStats(t *testing.T) {
	schema := testSchema()
	w := NewWriter(schema, 100)
	for i := 0; i < 10; i++ {
		if err := w.Append(types.Row{
			types.NewInt(int64(i * 10)), types.NewFloat(1), types.NewBool(true), types.NewString("u"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	meta, err := ReadMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	st := meta.Blocks[0].Stats.Columns[0]
	if st.Min.I != 0 || st.Max.I != 90 {
		t.Errorf("id stats = %+v", st)
	}
}

func TestReadMetaErrors(t *testing.T) {
	if _, err := ReadMeta(nil); err == nil {
		t.Error("empty file should fail")
	}
	if _, err := ReadMeta([]byte("not a feisu file, definitely not....")); err == nil {
		t.Error("bad magic should fail")
	}
	w := NewWriter(testSchema(), 10)
	_ = w.Append(types.Row{types.NewInt(1), types.NewFloat(1), types.NewBool(true), types.NewString("u")})
	data, _ := w.Finish()
	corrupt := append([]byte{}, data...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := ReadMeta(corrupt); err == nil {
		t.Error("bad tail magic should fail")
	}
}

func TestReadBlockOutOfRange(t *testing.T) {
	w := NewWriter(testSchema(), 10)
	_ = w.Append(types.Row{types.NewInt(1), types.NewFloat(1), types.NewBool(true), types.NewString("u")})
	data, _ := w.Finish()
	meta, err := ReadMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBlock(data, meta, 5, nil); err == nil {
		t.Error("out-of-range ordinal should fail")
	}
	if _, err := ReadBlock(data, meta, -1, nil); err == nil {
		t.Error("negative ordinal should fail")
	}
}

func TestEmptyFile(t *testing.T) {
	w := NewWriter(testSchema(), 10)
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	meta, err := ReadMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Blocks) != 0 {
		t.Errorf("blocks = %d", len(meta.Blocks))
	}
}

func TestFlattenJSONScalar(t *testing.T) {
	schema := types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "user.name", Type: types.String},
		types.Field{Name: "user.vip", Type: types.Bool},
		types.Field{Name: "score", Type: types.Float64},
	)
	rec, err := FlattenJSON(schema, []byte(`{"id": 7, "user": {"name": "li", "vip": true}, "score": 2.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if rec[0][0].I != 7 || rec[1][0].S != "li" || !rec[2][0].B || rec[3][0].F != 2.5 {
		t.Errorf("rec = %v", rec)
	}
}

func TestFlattenJSONMissingIsNull(t *testing.T) {
	schema := types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "absent.deep", Type: types.String},
	)
	rec, err := FlattenJSON(schema, []byte(`{"id": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if !rec[1][0].IsNull() {
		t.Errorf("missing path should be NULL, got %v", rec[1])
	}
}

func TestFlattenJSONRepeated(t *testing.T) {
	schema := types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "clicks.pos", Type: types.Int64, Repeated: true},
	)
	rec, err := FlattenJSON(schema, []byte(`{"id": 1, "clicks": [{"pos": 3}, {"pos": 8}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec[1]) != 2 || rec[1][0].I != 3 || rec[1][1].I != 8 {
		t.Errorf("clicks.pos = %v", rec[1])
	}
}

func TestFlattenJSONErrors(t *testing.T) {
	schema := types.MustSchema(types.Field{Name: "id", Type: types.Int64})
	if _, err := FlattenJSON(schema, []byte(`{bad`)); err == nil {
		t.Error("bad json should fail")
	}
	schema2 := types.MustSchema(types.Field{Name: "a", Type: types.Int64})
	if _, err := FlattenJSON(schema2, []byte(`{"a": [1,2]}`)); err == nil {
		t.Error("array into scalar should fail")
	}
	schema3 := types.MustSchema(types.Field{Name: "a.b", Type: types.Int64})
	if _, err := FlattenJSON(schema3, []byte(`{"a": 5}`)); err == nil {
		t.Error("scalar where object expected should fail")
	}
	schema4 := types.MustSchema(types.Field{Name: "a", Type: types.Bool})
	if _, err := FlattenJSON(schema4, []byte(`{"a": "str"}`)); err == nil {
		t.Error("string into bool should fail")
	}
}

func TestFlattenIntoBlockEndToEnd(t *testing.T) {
	schema := types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "tags", Type: types.String, Repeated: true},
	)
	b := NewBlock(schema)
	docs := []string{
		`{"id": 1, "tags": ["x", "y"]}`,
		`{"id": 2}`,
	}
	for _, d := range docs {
		rec, err := FlattenJSON(schema, []byte(d))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AppendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if vs := b.RepeatedValues(1, 0); len(vs) != 2 {
		t.Errorf("tags of record 0 = %v", vs)
	}
	if vs := b.RepeatedValues(1, 1); len(vs) != 0 {
		t.Errorf("tags of record 1 = %v", vs)
	}
}

func TestBlockRoundTripProperty(t *testing.T) {
	schema := types.MustSchema(
		types.Field{Name: "a", Type: types.Int64},
		types.Field{Name: "b", Type: types.String},
	)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		rng := rand.New(rand.NewSource(seed))
		b := NewBlock(schema)
		rows := make([]types.Row, n)
		for i := range rows {
			var a, s types.Value
			if rng.Intn(5) == 0 {
				a = types.NullValue()
			} else {
				a = types.NewInt(rng.Int63n(1000) - 500)
			}
			if rng.Intn(5) == 0 {
				s = types.NullValue()
			} else {
				s = types.NewString(string(rune('a' + rng.Intn(26))))
			}
			rows[i] = types.Row{a, s}
			if err := b.AppendRow(rows[i]); err != nil {
				return false
			}
		}
		data, _, err := b.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalBlock(schema, data, nil)
		if err != nil || got.NumRows != n {
			return false
		}
		for i := range rows {
			gr := got.Row(i)
			if !types.Equal(gr[0], rows[i][0]) || !types.Equal(gr[1], rows[i][1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStatsBloomMembership(t *testing.T) {
	c := NewColumn(types.Int64)
	for _, v := range []int64{2, 4, 6, 8} {
		mustAppend(t, c, types.NewInt(v))
	}
	st := c.ComputeStats()
	if st.Bloom == nil {
		t.Fatal("bloom missing")
	}
	for _, v := range []int64{2, 4, 6, 8} {
		if !st.Bloom.MayContain(BloomKey(types.NewInt(v))) {
			t.Errorf("bloom lost %d", v)
		}
	}
	// 5 is inside [2,8] but absent; the bloom can prove it (w.h.p.).
	if st.Bloom.MayContain(BloomKey(types.NewInt(5))) {
		t.Log("false positive on 5 (allowed, unlikely)")
	}
	// Cross-type equality shares keys.
	if !st.Bloom.MayContain(BloomKey(types.NewFloat(4.0))) {
		t.Error("float 4.0 should share the key of int 4")
	}
}

func TestFooterBloomRoundTrip(t *testing.T) {
	schema := types.MustSchema(types.Field{Name: "id", Type: types.Int64})
	w := NewWriter(schema, 100)
	for i := 0; i < 10; i++ {
		if err := w.Append(types.Row{types.NewInt(int64(i * 2))}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	meta, err := ReadMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	bl := meta.Blocks[0].Stats.Columns[0].Bloom
	if bl == nil {
		t.Fatal("footer lost the bloom")
	}
	if !bl.MayContain(BloomKey(types.NewInt(4))) {
		t.Error("bloom lost 4 through the footer")
	}
}
