package colstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/encoding"
	"repro/internal/types"
)

// Block is one row group: a fixed set of records stored column-wise.
// NumRows counts *records*; repeated columns may hold more flattened values
// than NumRows.
type Block struct {
	Schema  *types.Schema
	NumRows int
	Columns []*Column
}

// NewBlock returns an empty block for the schema.
func NewBlock(schema *types.Schema) *Block {
	cols := make([]*Column, schema.Len())
	for i, f := range schema.Fields {
		cols[i] = NewColumn(f.Type)
		if f.Repeated {
			cols[i].Offsets = []int32{0}
		}
	}
	return &Block{Schema: schema, Columns: cols}
}

// AppendRow adds one record. For repeated fields the row carries a single
// types.Value per flattened element via AppendRepeated; AppendRow expects
// scalar fields only and appends one NULL element slot to repeated fields,
// so use AppendRecord for mixed schemas.
func (b *Block) AppendRow(row types.Row) error {
	if len(row) != b.Schema.Len() {
		return fmt.Errorf("colstore: row has %d values, schema has %d", len(row), b.Schema.Len())
	}
	rec := make([][]types.Value, len(row))
	for i, v := range row {
		if b.Schema.Fields[i].Repeated {
			if v.IsNull() {
				rec[i] = nil
			} else {
				rec[i] = []types.Value{v}
			}
		} else {
			rec[i] = []types.Value{v}
		}
	}
	return b.AppendRecord(rec)
}

// AppendRecord adds one record where each field carries zero or more values.
// Scalar fields must carry exactly one value; repeated fields may carry any
// number (including zero).
func (b *Block) AppendRecord(rec [][]types.Value) error {
	if len(rec) != b.Schema.Len() {
		return fmt.Errorf("colstore: record has %d fields, schema has %d", len(rec), b.Schema.Len())
	}
	for i, vals := range rec {
		f := b.Schema.Fields[i]
		col := b.Columns[i]
		if !f.Repeated {
			if len(vals) != 1 {
				return fmt.Errorf("colstore: scalar field %q got %d values", f.Name, len(vals))
			}
			if err := col.Append(vals[0]); err != nil {
				return err
			}
			continue
		}
		for _, v := range vals {
			if err := col.Append(v); err != nil {
				return err
			}
		}
		col.Offsets = append(col.Offsets, int32(col.Len()))
	}
	b.NumRows++
	return nil
}

// Row materialises record r as a row. Repeated fields yield their first
// element (or NULL when empty); use RepeatedValues for the full list.
func (b *Block) Row(r int) types.Row {
	row := make(types.Row, len(b.Columns))
	for i, col := range b.Columns {
		if col.Offsets != nil {
			start, end := col.Offsets[r], col.Offsets[r+1]
			if start == end {
				row[i] = types.NullValue()
			} else {
				row[i] = col.Value(int(start))
			}
			continue
		}
		row[i] = col.Value(r)
	}
	return row
}

// RepeatedValues returns all flattened values of repeated column ci for
// record r.
func (b *Block) RepeatedValues(ci, r int) []types.Value {
	col := b.Columns[ci]
	if col.Offsets == nil {
		return []types.Value{col.Value(r)}
	}
	start, end := col.Offsets[r], col.Offsets[r+1]
	out := make([]types.Value, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, col.Value(int(i)))
	}
	return out
}

// finish trims the lazily grown bookkeeping before the block is sealed.
func (b *Block) finish() {
	for _, col := range b.Columns {
		col.finishNulls(col.Len())
	}
}

// BlockStats is the per-column statistics of a sealed block, stored in the
// file footer for block pruning.
type BlockStats struct {
	NumRows int
	Columns []Stats
}

// ComputeStats builds footer statistics for the block.
func (b *Block) ComputeStats() BlockStats {
	st := BlockStats{NumRows: b.NumRows, Columns: make([]Stats, len(b.Columns))}
	for i, col := range b.Columns {
		st.Columns[i] = col.ComputeStats()
	}
	return st
}

// --- block (de)serialization ---
//
// Layout:
//   uvarint numRows
//   uvarint numCols
//   per column directory entry: uvarint payloadSize
//   per column payload:
//     byte hasNulls; if 1: uvarint len + null bitmap (bitmap.Marshal)
//     byte hasOffsets; if 1: encoded int64 offsets (encoding.EncodeInt64s)
//     encoded values (encoding.Encode*)

// ColExtent locates one column's payload inside a serialized block,
// relative to the block start. The file footer records absolute extents so
// leaves can read exactly the columns a query needs — the I/O saving that
// SmartIndex and column pruning deliver in the paper.
type ColExtent struct {
	Off int64
	Len int64
	// CRC is the IEEE CRC-32 of the payload bytes, letting range readers
	// detect corrupt returns from a faulty storage tier before decoding.
	// 0 means "not recorded" (files written before checksums existed).
	CRC uint32
}

// Marshal serializes the block. It returns the bytes together with the
// per-column extents inside them.
func (b *Block) Marshal() ([]byte, []ColExtent, error) {
	b.finish()
	payloads := make([][]byte, len(b.Columns))
	for i, col := range b.Columns {
		var p []byte
		if col.Nulls != nil {
			nb := col.Nulls.Marshal()
			p = append(p, 1)
			p = binary.AppendUvarint(p, uint64(len(nb)))
			p = append(p, nb...)
		} else {
			p = append(p, 0)
		}
		if col.Offsets != nil {
			offs := make([]int64, len(col.Offsets))
			for j, o := range col.Offsets {
				offs[j] = int64(o)
			}
			p = append(p, 1)
			enc := encoding.EncodeInt64s(offs)
			p = binary.AppendUvarint(p, uint64(len(enc)))
			p = append(p, enc...)
		} else {
			p = append(p, 0)
		}
		switch col.Type {
		case types.Int64:
			p = append(p, encoding.EncodeInt64s(col.Ints)...)
		case types.Float64:
			p = append(p, encoding.EncodeFloat64s(col.Floats)...)
		case types.Bool:
			p = append(p, encoding.EncodeBools(col.Bools)...)
		case types.String:
			p = append(p, encoding.EncodeStrings(col.Strs)...)
		default:
			return nil, nil, fmt.Errorf("colstore: cannot serialize column type %s", col.Type)
		}
		payloads[i] = p
	}
	out := binary.AppendUvarint(nil, uint64(b.NumRows))
	out = binary.AppendUvarint(out, uint64(len(b.Columns)))
	for _, p := range payloads {
		out = binary.AppendUvarint(out, uint64(len(p)))
	}
	extents := make([]ColExtent, len(payloads))
	for i, p := range payloads {
		extents[i] = ColExtent{Off: int64(len(out)), Len: int64(len(p))}
		out = append(out, p...)
	}
	return out, extents, nil
}

// UnmarshalBlock parses a serialized block. When wantCols is non-nil, only
// the listed column ordinals are decoded (column pruning); other columns are
// left as empty placeholders of the right type.
func UnmarshalBlock(schema *types.Schema, data []byte, wantCols []int) (*Block, error) {
	numRows, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, fmt.Errorf("colstore: bad block header")
	}
	data = data[off:]
	numCols, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, fmt.Errorf("colstore: bad block column count")
	}
	data = data[off:]
	if int(numCols) != schema.Len() {
		return nil, fmt.Errorf("colstore: block has %d columns, schema has %d", numCols, schema.Len())
	}
	sizes := make([]int, numCols)
	for i := range sizes {
		s, off := binary.Uvarint(data)
		if off <= 0 {
			return nil, fmt.Errorf("colstore: bad block directory")
		}
		sizes[i] = int(s)
		data = data[off:]
	}
	want := make(map[int]bool, len(wantCols))
	for _, c := range wantCols {
		want[c] = true
	}
	b := &Block{Schema: schema, NumRows: int(numRows), Columns: make([]*Column, numCols)}
	for i := 0; i < int(numCols); i++ {
		if len(data) < sizes[i] {
			return nil, fmt.Errorf("colstore: truncated column %d", i)
		}
		payload := data[:sizes[i]]
		data = data[sizes[i]:]
		if wantCols != nil && !want[i] {
			b.Columns[i] = NewColumn(schema.Fields[i].Type)
			continue
		}
		col, err := unmarshalColumn(schema.Fields[i].Type, payload)
		if err != nil {
			return nil, fmt.Errorf("colstore: column %d (%s): %w", i, schema.Fields[i].Name, err)
		}
		b.Columns[i] = col
	}
	return b, nil
}

// DecodeColumn parses one column payload (located by its footer extent)
// without touching the rest of the block.
func DecodeColumn(t types.Type, payload []byte) (*Column, error) {
	return unmarshalColumn(t, payload)
}

func unmarshalColumn(t types.Type, p []byte) (*Column, error) {
	col := NewColumn(t)
	if len(p) == 0 {
		return nil, fmt.Errorf("empty payload")
	}
	hasNulls := p[0]
	p = p[1:]
	if hasNulls == 1 {
		l, off := binary.Uvarint(p)
		if off <= 0 || len(p)-off < int(l) {
			return nil, fmt.Errorf("truncated null bitmap")
		}
		nb, err := bitmap.Unmarshal(p[off : off+int(l)])
		if err != nil {
			return nil, err
		}
		col.Nulls = nb
		p = p[off+int(l):]
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("missing offsets flag")
	}
	hasOffsets := p[0]
	p = p[1:]
	if hasOffsets == 1 {
		l, off := binary.Uvarint(p)
		if off <= 0 || len(p)-off < int(l) {
			return nil, fmt.Errorf("truncated offsets")
		}
		offs, err := encoding.DecodeInt64s(p[off : off+int(l)])
		if err != nil {
			return nil, err
		}
		col.Offsets = make([]int32, len(offs))
		for i, o := range offs {
			col.Offsets[i] = int32(o)
		}
		p = p[off+int(l):]
	}
	var err error
	switch t {
	case types.Int64:
		col.Ints, err = encoding.DecodeInt64s(p)
	case types.Float64:
		col.Floats, err = encoding.DecodeFloat64s(p)
	case types.Bool:
		col.Bools, err = encoding.DecodeBools(p)
	case types.String:
		col.Strs, err = encoding.DecodeStrings(p)
	default:
		err = fmt.Errorf("unsupported type %s", t)
	}
	if err != nil {
		return nil, err
	}
	return col, nil
}
