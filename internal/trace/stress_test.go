package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSpanConcurrentStress hammers one span tree from many goroutines —
// children attached, counters and attrs mutated, sims charged, Finish
// racing — while readers render, walk and analyze it concurrently. Run
// under -race (verify.sh does) this is the tracer's thread-safety gate:
// production queries attach sibling task spans from different goroutines
// while the telemetry server may be rendering the same tree.
func TestSpanConcurrentStress(t *testing.T) {
	root := New("master/query")
	const writers, readers, iters = 8, 4, 200

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			branch := root.Child(fmt.Sprintf("stem/s%d", w))
			for i := 0; i < iters; i++ {
				task := branch.Child(fmt.Sprintf("task#%d @ leaf%d", i, w))
				leaf := task.Child(fmt.Sprintf("leaf/leaf%d", w))
				leaf.SetSim(time.Duration(i) * time.Microsecond)
				leaf.Count("rows.scanned", int64(i))
				leaf.SetAttr("partition", fmt.Sprintf("/mem/p%d", i))
				leaf.Finish()
				task.AddSim(time.Duration(i) * time.Microsecond)
				task.Count("rows", 1)
				task.Finish()
				branch.Count("tasks", 1)
				root.Count("tasks", 1)
				root.SetAttr("round", fmt.Sprint(i))
			}
			branch.SetSim(time.Duration(iters) * time.Microsecond)
			branch.Finish()
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				_ = root.Render()
				_ = root.TotalSim()
				_ = root.FindAll("task#")
				_ = root.Counts()
				_ = AnalyzeCriticalPath(root)
				_ = ToJaeger(StoredTrace{QueryID: "qstress", Root: root})
				root.Finish() // racing Finish: first one must win, no panic
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := root.CountValue("tasks"); got != writers*iters {
		t.Fatalf("root tasks counter = %d, want %d", got, writers*iters)
	}
	if len(root.Children()) != writers {
		t.Fatalf("root has %d children, want %d", len(root.Children()), writers)
	}
}
