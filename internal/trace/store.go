package trace

import (
	"sync"
	"time"
)

// StoredTrace is one finished query's trace plus the identifiers used to
// look it up: the query's causal ID and its normalized plan fingerprint.
type StoredTrace struct {
	QueryID     string
	Fingerprint string
	SQL         string
	When        time.Time
	Wall        time.Duration
	Sim         time.Duration
	Root        *Span
}

// Store retains the last N finished query traces in a ring, so "why was
// that query slow" stays answerable after the query is gone. Lookups
// accept either a query ID or a plan fingerprint (newest match wins).
// All methods are nil-safe.
type Store struct {
	mu   sync.Mutex
	ring []StoredTrace
	next int
	wrap bool
}

// DefaultStoreSize is the trace retention used when NewStore is given
// n <= 0.
const DefaultStoreSize = 32

// NewStore builds a trace store retaining the last n traces.
func NewStore(n int) *Store {
	if n <= 0 {
		n = DefaultStoreSize
	}
	return &Store{ring: make([]StoredTrace, n)}
}

// Add retains one finished trace, evicting the oldest when full. Traces
// without a root span are ignored.
func (st *Store) Add(t StoredTrace) {
	if st == nil || t.Root == nil {
		return
	}
	st.mu.Lock()
	st.ring[st.next] = t
	st.next++
	if st.next == len(st.ring) {
		st.next = 0
		st.wrap = true
	}
	st.mu.Unlock()
}

// Traces returns the retained traces, newest first.
func (st *Store) Traces() []StoredTrace {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []StoredTrace
	for i := st.next - 1; i >= 0; i-- {
		out = append(out, st.ring[i])
	}
	if st.wrap {
		for i := len(st.ring) - 1; i >= st.next; i-- {
			out = append(out, st.ring[i])
		}
	}
	return out
}

// Get returns the newest retained trace whose query ID or plan
// fingerprint equals id.
func (st *Store) Get(id string) (StoredTrace, bool) {
	for _, t := range st.Traces() {
		if t.QueryID == id || t.Fingerprint == id {
			return t, true
		}
	}
	return StoredTrace{}, false
}

// Len reports how many traces are retained.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.wrap {
		return len(st.ring)
	}
	return st.next
}
