package trace

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// buildQueryTrace assembles a synthetic master/query span tree with the
// production shape: admission, load-dims, execute (stems → tasks → leaf +
// transfer children), finalize.
func buildQueryTrace(queueWait, dims time.Duration, leaves map[string][]time.Duration, transferFrac float64, finalize time.Duration, rpc time.Duration) *Span {
	root := New("master/query")
	a := root.Child("master/admission")
	a.SetWall(queueWait)
	d := root.Child("master/load-dims")
	d.SetSim(dims)
	ex := root.Child("master/execute")
	stem := ex.Child("stem/s0")
	var busiest time.Duration
	ord := 0
	for leaf, tasks := range leaves {
		var leafSum time.Duration
		for _, taskSim := range tasks {
			t := stem.Child(fmt.Sprintf("task#%d @ %s", ord, leaf))
			ord++
			scan := time.Duration(float64(taskSim) * (1 - transferFrac))
			ls := t.Child("leaf/" + leaf)
			ls.SetSim(scan)
			tr := t.Child("reply-transfer")
			tr.SetSim(taskSim - scan)
			t.SetSim(taskSim)
			leafSum += taskSim
		}
		if leafSum > busiest {
			busiest = leafSum
		}
	}
	ex.SetSim(busiest)
	f := root.Child("master/finalize")
	f.SetSim(finalize)
	root.SetSim(busiest + dims + finalize + rpc)
	root.Finish()
	return root
}

func checkPartition(t *testing.T, cp *CriticalPath) {
	t.Helper()
	if cp == nil {
		t.Fatal("nil critical path")
	}
	var sum time.Duration
	seen := map[string]bool{}
	for _, seg := range cp.Segments {
		if seg.Dur < 0 {
			t.Errorf("segment %s negative: %v", seg.Name, seg.Dur)
		}
		if seen[seg.Name] {
			t.Errorf("segment %s appears twice", seg.Name)
		}
		seen[seg.Name] = true
		sum += seg.Dur
	}
	if sum != cp.Total {
		t.Errorf("segments sum to %v, want total %v", sum, cp.Total)
	}
	if want := cp.QueueWait + 0; cp.Total < want {
		t.Errorf("total %v below queue wait %v", cp.Total, cp.QueueWait)
	}
}

func TestCriticalPathBasic(t *testing.T) {
	root := buildQueryTrace(
		2*time.Millisecond, // queue wait
		1*time.Millisecond, // load-dims
		map[string][]time.Duration{"leaf0": {4 * time.Millisecond}, "leaf1": {8 * time.Millisecond, 2 * time.Millisecond}},
		0.25,                 // transfer share
		500*time.Microsecond, // finalize
		200*time.Microsecond, // rpc residual
	)
	cp := AnalyzeCriticalPath(root)
	checkPartition(t, cp)
	if cp.CriticalLeaf != "leaf1" {
		t.Errorf("critical leaf = %q, want leaf1", cp.CriticalLeaf)
	}
	byName := map[string]time.Duration{}
	for _, s := range cp.Segments {
		byName[s.Name] = s.Dur
	}
	if byName["queue-wait"] != 2*time.Millisecond {
		t.Errorf("queue-wait = %v", byName["queue-wait"])
	}
	if byName["plan+load-dims"] != time.Millisecond {
		t.Errorf("plan+load-dims = %v", byName["plan+load-dims"])
	}
	if byName["schedule+dispatch"] != 200*time.Microsecond {
		t.Errorf("schedule+dispatch = %v", byName["schedule+dispatch"])
	}
	// leaf1's chain: 10ms total, 7.5ms scan / 2.5ms transfer.
	if got := byName["scan @ leaf1"]; got != 7500*time.Microsecond {
		t.Errorf("scan = %v, want 7.5ms", got)
	}
	if got := byName["transfer"]; got != 2500*time.Microsecond {
		t.Errorf("transfer = %v, want 2.5ms", got)
	}
	if cp.Total != root.Sim()+2*time.Millisecond {
		t.Errorf("total = %v", cp.Total)
	}
}

func TestCriticalPathNilAndEmpty(t *testing.T) {
	if AnalyzeCriticalPath(nil) != nil {
		t.Fatal("nil root should yield nil analysis")
	}
	// Result-cache hit: a root with no execution children and zero sim.
	root := New("master/query")
	c := root.Child("master/result-cache")
	c.Finish()
	root.Finish()
	cp := AnalyzeCriticalPath(root)
	checkPartition(t, cp)
	if cp.Total != 0 {
		t.Errorf("cache-hit total = %v, want 0", cp.Total)
	}
	if cp.Summary() != "" {
		t.Errorf("cache-hit summary = %q, want empty", cp.Summary())
	}
}

// TestCriticalPathPartitionProperty is the property test: for randomized
// span trees — including inconsistent ones where stage sims exceed the
// root's — the segments are pairwise-disjoint stages and sum exactly to
// queue wait + root sim.
func TestCriticalPathPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		nLeaves := 1 + rng.Intn(4)
		leaves := map[string][]time.Duration{}
		for l := 0; l < nLeaves; l++ {
			n := 1 + rng.Intn(3)
			tasks := make([]time.Duration, n)
			for j := range tasks {
				tasks[j] = time.Duration(rng.Intn(10_000_000))
			}
			leaves[fmt.Sprintf("leaf%d", l)] = tasks
		}
		root := buildQueryTrace(
			time.Duration(rng.Intn(5_000_000)),
			time.Duration(rng.Intn(2_000_000)),
			leaves,
			rng.Float64()*0.5,
			time.Duration(rng.Intn(1_000_000)),
			time.Duration(rng.Intn(500_000)),
		)
		if i%3 == 0 {
			// Perturb into an inconsistent tree: overcharge a stage so the
			// clamping path is exercised.
			root.Find("master/load-dims").SetSim(root.Sim() * 2)
		}
		if i%5 == 0 {
			root.SetSim(0)
		}
		cp := AnalyzeCriticalPath(root)
		checkPartition(t, cp)
	}
}

func TestCriticalPathRenderAndSummary(t *testing.T) {
	root := buildQueryTrace(0, time.Millisecond,
		map[string][]time.Duration{"leaf0": {8 * time.Millisecond}}, 0.25, 0, time.Millisecond)
	cp := AnalyzeCriticalPath(root)
	out := cp.Render()
	for _, want := range []string{"critical path", "total=", "queue-wait", "scan @ leaf0", "transfer", "finalize", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q in:\n%s", want, out)
		}
	}
	sum := cp.Summary()
	if !strings.Contains(sum, "scan @ leaf0") {
		t.Errorf("Summary() = %q, want scan segment", sum)
	}
	if strings.Contains(sum, "finalize") {
		t.Errorf("Summary() = %q includes a 0%% segment", sum)
	}
	if (*CriticalPath)(nil).Render() != "" || (*CriticalPath)(nil).Summary() != "" {
		t.Error("nil CriticalPath should render empty")
	}
}
