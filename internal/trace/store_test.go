package trace

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func storedTrace(id, fp string) StoredTrace {
	root := New("master/query")
	c := root.Child("master/execute")
	c.SetSim(time.Millisecond)
	c.Count("rows", 42)
	c.SetAttr("stage", "execute")
	c.Finish()
	root.SetSim(time.Millisecond)
	root.Finish()
	return StoredTrace{QueryID: id, Fingerprint: fp, SQL: "SELECT 1", When: time.Now(),
		Wall: root.Wall(), Sim: time.Millisecond, Root: root}
}

func TestStoreRingAndLookup(t *testing.T) {
	st := NewStore(3)
	for i := 0; i < 5; i++ {
		st.Add(storedTrace(fmt.Sprintf("q%d", i), fmt.Sprintf("fp%d", i%2)))
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	ts := st.Traces()
	if len(ts) != 3 || ts[0].QueryID != "q4" || ts[2].QueryID != "q2" {
		t.Fatalf("Traces() = %v", ids(ts))
	}
	if _, ok := st.Get("q1"); ok {
		t.Fatal("evicted trace still resolvable")
	}
	got, ok := st.Get("q3")
	if !ok || got.QueryID != "q3" {
		t.Fatalf("Get(q3) = %v, %v", got.QueryID, ok)
	}
	// Fingerprint lookup returns the newest match: fp0 matches q2 and q4.
	got, ok = st.Get("fp0")
	if !ok || got.QueryID != "q4" {
		t.Fatalf("Get(fp0) = %v, want q4", got.QueryID)
	}
}

func TestStoreNilSafe(t *testing.T) {
	var st *Store
	st.Add(storedTrace("q", "fp"))
	if st.Len() != 0 || st.Traces() != nil {
		t.Fatal("nil store retained something")
	}
	if _, ok := st.Get("q"); ok {
		t.Fatal("nil store resolved a trace")
	}
	// A trace without a root span is ignored.
	st2 := NewStore(2)
	st2.Add(StoredTrace{QueryID: "q"})
	if st2.Len() != 0 {
		t.Fatal("rootless trace retained")
	}
}

func TestToJaegerShape(t *testing.T) {
	doc := ToJaeger(storedTrace("q7", "fpX"))
	if len(doc.Data) != 1 {
		t.Fatalf("data length %d", len(doc.Data))
	}
	tr := doc.Data[0]
	if len(tr.TraceID) != 32 {
		t.Errorf("traceID %q not 128-bit hex", tr.TraceID)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	rootSpan, childSpan := tr.Spans[0], tr.Spans[1]
	if len(rootSpan.References) != 0 {
		t.Error("root span has a parent reference")
	}
	if len(childSpan.References) != 1 || childSpan.References[0].SpanID != rootSpan.SpanID ||
		childSpan.References[0].RefType != "CHILD_OF" {
		t.Errorf("child references = %+v", childSpan.References)
	}
	if rootSpan.StartTime == 0 {
		t.Error("root startTime unset")
	}
	tagVal := func(s JaegerSpan, key string) any {
		for _, tg := range s.Tags {
			if tg.Key == key {
				return tg.Value
			}
		}
		return nil
	}
	if tagVal(rootSpan, "query.id") != "q7" || tagVal(rootSpan, "query.sql") != "SELECT 1" {
		t.Errorf("root tags = %+v", rootSpan.Tags)
	}
	if tagVal(childSpan, "rows") != int64(42) || tagVal(childSpan, "stage") != "execute" {
		t.Errorf("child tags = %+v", childSpan.Tags)
	}
	if tagVal(childSpan, "sim_us") != int64(1000) {
		t.Errorf("child sim tag = %v", tagVal(childSpan, "sim_us"))
	}
	// Wall rounds to 0µs for in-process spans; the sim duration stands in.
	if childSpan.Duration == 0 {
		t.Error("child duration 0 despite sim time")
	}
	if _, err := json.Marshal(doc); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// Same query, same IDs: exports are stable.
	if doc2 := ToJaeger(storedTrace("q7", "fpX")); doc2.Data[0].TraceID != tr.TraceID {
		t.Error("trace ID not stable across exports")
	}
}

func ids(ts []StoredTrace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.QueryID
	}
	return out
}
