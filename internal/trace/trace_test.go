package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := New("query")
	root.SetAttr("user", "alice")
	root.AddSim(10 * time.Millisecond)
	root.AddSim(5 * time.Millisecond)

	c1 := root.Child("stem/stem0")
	c1.SetSim(7 * time.Millisecond)
	c1.Count("tasks", 2)
	c1.Count("tasks", 1)
	leaf := c1.Child("leaf/leaf0")
	leaf.SetSim(3 * time.Millisecond)
	leaf.Finish()
	c1.Finish()
	root.Finish()

	if got := root.Sim(); got != 15*time.Millisecond {
		t.Fatalf("root sim = %v, want 15ms", got)
	}
	if got := root.TotalSim(); got != 25*time.Millisecond {
		t.Fatalf("total sim = %v, want 25ms", got)
	}
	if root.Wall() <= 0 {
		t.Fatal("finished root has zero wall time")
	}
	if got := c1.CountValue("tasks"); got != 3 {
		t.Fatalf("tasks count = %d, want 3", got)
	}
	if got := root.Attr("user"); got != "alice" {
		t.Fatalf("attr user = %q", got)
	}
	if root.Find("leaf/") != leaf {
		t.Fatal("Find did not locate the leaf span")
	}
	if n := len(root.FindAll("stem/")); n != 1 {
		t.Fatalf("FindAll(stem/) = %d spans, want 1", n)
	}
}

func TestFinishIdempotent(t *testing.T) {
	s := New("x")
	s.Finish()
	first := s.Wall()
	time.Sleep(time.Millisecond)
	s.Finish()
	if s.Wall() != first {
		t.Fatal("second Finish overwrote the wall time")
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	// Every method must be a no-op on nil so untraced hot paths are free.
	s.Finish()
	s.AddSim(time.Second)
	s.SetSim(time.Second)
	s.Count("x", 1)
	s.SetAttr("k", "v")
	c := s.Child("child")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	if s.Sim() != 0 || s.Wall() != 0 || s.Name() != "" || s.Render() != "" {
		t.Fatal("nil span reported non-zero state")
	}
	if s.Find("x") != nil || s.FindAll("x") != nil || s.Counts() != nil || s.Children() != nil {
		t.Fatal("nil span reported descendants")
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "scan")
	if s != nil {
		t.Fatal("StartSpan created a span without an active trace")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan changed the context without an active trace")
	}
}

func TestStartSpanWithTrace(t *testing.T) {
	root := New("query")
	ctx := NewContext(context.Background(), root)
	ctx2, s := StartSpan(ctx, "scan")
	if s == nil {
		t.Fatal("StartSpan returned nil under an active trace")
	}
	if FromContext(ctx2) != s {
		t.Fatal("returned context does not carry the child span")
	}
	if root.Find("scan") != s {
		t.Fatal("child did not attach to the root")
	}
}

func TestRender(t *testing.T) {
	root := New("master/query")
	root.SetSim(20 * time.Millisecond)
	c := root.Child("leaf/leaf0")
	c.SetSim(5 * time.Millisecond)
	c.Count("index.hit", 2)
	c.SetAttr("partition", "/hdfs/t1/p0")
	c.Finish()
	root.Finish()

	out := root.Render()
	for _, want := range []string{"master/query", "sim=20ms", "└─ leaf/leaf0", "index.hit=2", "{partition=/hdfs/t1/p0}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentChildren(t *testing.T) {
	root := New("query")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("task")
			c.Count("rows", 1)
			c.AddSim(time.Microsecond)
			c.Finish()
		}()
	}
	wg.Wait()
	if n := len(root.Children()); n != 16 {
		t.Fatalf("got %d children, want 16", n)
	}
}
