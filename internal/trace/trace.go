// Package trace is Feisu's per-query span tracer: the measurement layer
// behind EXPLAIN ANALYZE and the benchmark harness' per-stage breakdowns.
// A query carries one span tree through the execution path — master
// (plan / load-dims / execute / finalize), stem servers, leaf tasks, and
// inside a leaf the scan with its SmartIndex, SSD-cache and storage
// activity. Every span records both wall-clock duration (real in-process
// time) and simulated time (the sim.CostModel charges that stand in for
// the paper's 4,000-node hardware), plus named counters (rows, index and
// cache hits) and free-form attributes.
//
// Spans travel via context.Context exactly like sim bills do: the fabric
// is in-process, so a child server's spans attach directly to the parent
// span carried by the call context. All Span methods are safe on a nil
// receiver and StartSpan is a no-op without an active trace, so the hot
// path pays nothing when tracing is off.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"context"
)

// Span is one node of a query's trace tree. Spans are safe for concurrent
// use: sibling tasks running on different goroutines attach children and
// counters under the span's lock.
type Span struct {
	name string

	mu       sync.Mutex
	start    time.Time
	wall     time.Duration
	sim      time.Duration
	attrs    []Attr
	counts   map[string]int64
	children []*Span
}

// Attr is one key=value label on a span.
type Attr struct {
	Key, Value string
}

// New starts a root span.
func New(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Start returns the span's wall-clock start time (zero on nil) — the
// anchor for exported trace formats (Jaeger startTime).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child starts a child span. Safe on nil (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish records the span's wall-clock duration. Safe on nil; calling
// Finish twice keeps the first measurement.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.wall == 0 {
		s.wall = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetWall overwrites the span's wall-clock duration — for spans measuring
// an interval that happened before the span object existed (e.g. admission
// queue wait, measured before the trace root is created). A later Finish
// keeps this value.
func (s *Span) SetWall(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.wall = d
	s.mu.Unlock()
}

// AddSim charges simulated time to the span.
func (s *Span) AddSim(d time.Duration) {
	if s == nil || d == 0 {
		return
	}
	s.mu.Lock()
	s.sim += d
	s.mu.Unlock()
}

// SetSim overwrites the span's simulated time (used for critical-path
// summaries where charges would double-count).
func (s *Span) SetSim(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sim = d
	s.mu.Unlock()
}

// Sim returns the span's own simulated time (excluding children).
func (s *Span) Sim() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sim
}

// Wall returns the span's wall-clock duration (zero before Finish).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wall
}

// Count adds n to a named counter on the span.
func (s *Span) Count(name string, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make(map[string]int64)
	}
	s.counts[name] += n
	s.mu.Unlock()
}

// CountValue returns a counter's value (0 when absent or nil span).
func (s *Span) CountValue(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[name]
}

// Counts returns a copy of the span's counters.
func (s *Span) Counts() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// SetAttr sets a key=value label (replacing an existing key).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attr returns a label's value ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Children returns a copy of the span's current children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span in the subtree (depth-first, s included)
// whose name starts with prefix, or nil.
func (s *Span) Find(prefix string) *Span {
	if s == nil {
		return nil
	}
	if strings.HasPrefix(s.Name(), prefix) {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(prefix); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every span in the subtree whose name starts with prefix,
// depth-first.
func (s *Span) FindAll(prefix string) []*Span {
	if s == nil {
		return nil
	}
	var out []*Span
	if strings.HasPrefix(s.Name(), prefix) {
		out = append(out, s)
	}
	for _, c := range s.Children() {
		out = append(out, c.FindAll(prefix)...)
	}
	return out
}

// TotalSim returns the span's own simulated time plus all descendants'.
// Parallel children sum (busy time), so this is an activity total, not a
// response time; per-level critical paths are set by the servers that own
// the fan-out.
func (s *Span) TotalSim() time.Duration {
	if s == nil {
		return 0
	}
	total := s.Sim()
	for _, c := range s.Children() {
		total += c.TotalSim()
	}
	return total
}

// Render formats the span tree, one span per line:
//
//	name  sim=12.3ms wall=1.04ms  rows.scanned=4096 index.hit=3  {part=/hdfs/t1/p0}
//	├─ child ...
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	s.render(&sb, "", "")
	return sb.String()
}

func (s *Span) render(sb *strings.Builder, selfPrefix, childPrefix string) {
	sb.WriteString(selfPrefix)
	sb.WriteString(s.Name())

	s.mu.Lock()
	sim, wall := s.sim, s.wall
	attrs := append([]Attr(nil), s.attrs...)
	counts := make([]string, 0, len(s.counts))
	for k, v := range s.counts {
		counts = append(counts, fmt.Sprintf("%s=%d", k, v))
	}
	s.mu.Unlock()
	sort.Strings(counts)

	if sim > 0 {
		fmt.Fprintf(sb, "  sim=%s", fmtDur(sim))
	}
	if wall > 0 {
		fmt.Fprintf(sb, " wall=%s", fmtDur(wall))
	}
	if len(counts) > 0 {
		sb.WriteString("  " + strings.Join(counts, " "))
	}
	if len(attrs) > 0 {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = a.Key + "=" + a.Value
		}
		sb.WriteString("  {" + strings.Join(parts, " ") + "}")
	}
	sb.WriteByte('\n')

	children := s.Children()
	for i, c := range children {
		if i == len(children)-1 {
			c.render(sb, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			c.render(sb, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// fmtDur rounds durations for readable rendering.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

type spanKey struct{}

// NewContext attaches a span to the context; downstream servers and
// executors hang their spans off it.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the context's active span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a child of the context's active span and returns a
// context carrying the child. Without an active trace it returns the
// context unchanged and a nil span (all of whose methods are no-ops).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.Child(name)
	return NewContext(ctx, c), c
}
