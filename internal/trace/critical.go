package trace

import (
	"fmt"
	"strings"
	"time"
)

// Segment is one exclusive slice of a query's end-to-end latency.
type Segment struct {
	Name string
	Dur  time.Duration
	// Wall marks a segment measured in wall-clock time (queue wait); every
	// other segment is simulated time from the cost model.
	Wall bool
}

// CriticalPath attributes a finished query's end-to-end latency to
// disjoint segments. Total is the admission queue wait (wall) plus the
// root span's simulated response time; the segments partition it exactly
// (they are disjoint and sum to Total by construction), so the largest
// segment is the one that actually gated the query.
type CriticalPath struct {
	Total     time.Duration
	QueueWait time.Duration
	// CriticalLeaf names the leaf whose task chain dominated the execute
	// stage ("" when the query executed no tasks, e.g. a result-cache hit).
	CriticalLeaf string
	Segments     []Segment
}

// AnalyzeCriticalPath walks a finished master/query span tree and splits
// its end-to-end latency into exclusive segments:
//
//	queue-wait         admission queue time (wall clock)
//	plan+load-dims     master-side planning and dimension materialization
//	schedule+dispatch  RPC fan-out/fan-in and scheduling overhead
//	scan @ <leaf>      the critical leaf's execution (storage + predicate CPU)
//	transfer           spill fetch and reply transfer on the critical chain
//	stem-merge         execute-stage time outside the critical leaf chain
//	finalize           master-side final aggregation and sorting
//
// The execute stage is attributed to the leaf with the largest summed task
// sim time — the chain the master actually waited on. Returns nil only for
// a nil root.
func AnalyzeCriticalPath(root *Span) *CriticalPath {
	if root == nil {
		return nil
	}
	cp := &CriticalPath{
		QueueWait: root.Find("master/admission").Wall(),
	}
	rootSim := root.Sim()
	cp.Total = cp.QueueWait + rootSim

	// Allocate the root's sim time to the master stages, clamping each to
	// the unallocated remainder so the segments always partition Total even
	// on inconsistent trees; whatever is left over is the scheduling and
	// RPC overhead the stages don't claim.
	remaining := rootSim
	take := func(d time.Duration) time.Duration {
		if d < 0 {
			d = 0
		}
		if d > remaining {
			d = remaining
		}
		remaining -= d
		return d
	}
	planSeg := take(root.Find("master/load-dims").Sim())
	execSeg := take(root.Find("master/execute").Sim())
	finalSeg := take(root.Find("master/finalize").Sim())
	schedSeg := remaining

	// Split the execute stage along the critical leaf chain: group task
	// spans by leaf, pick the busiest leaf, and divide its chain into leaf
	// execution (scan) vs spill-fetch/reply-transfer. Raw components are
	// rescaled to exactly execSeg so clamping above cannot break the
	// partition.
	scanRaw, transferRaw, otherRaw := splitExecute(root, cp)

	// A repartitioned query records its keyed-frame transfer as its own
	// pipeline stage; carve it out of the execute remainder so EXPLAIN
	// ANALYZE attributes shuffle bytes separately from reply transfer.
	// Non-shuffle queries have no such span and keep the classic segments.
	shuffleSpan := root.Find("shuffle-transfer")
	var shuffleRaw time.Duration
	if shuffleSpan != nil {
		shuffleRaw = shuffleSpan.Sim()
		if shuffleRaw > otherRaw {
			shuffleRaw = otherRaw
		}
		otherRaw -= shuffleRaw
	}
	scanSeg, transferSeg, shuffleSeg, otherSeg := scale4(scanRaw, transferRaw, shuffleRaw, otherRaw, execSeg)

	scanName := "scan"
	if cp.CriticalLeaf != "" {
		scanName = "scan @ " + cp.CriticalLeaf
	}
	cp.Segments = []Segment{
		{Name: "queue-wait", Dur: cp.QueueWait, Wall: true},
		{Name: "plan+load-dims", Dur: planSeg},
		{Name: "schedule+dispatch", Dur: schedSeg},
		{Name: scanName, Dur: scanSeg},
		{Name: "transfer", Dur: transferSeg},
	}
	if shuffleSpan != nil {
		cp.Segments = append(cp.Segments, Segment{Name: "shuffle-transfer", Dur: shuffleSeg})
	}
	cp.Segments = append(cp.Segments,
		Segment{Name: "stem-merge", Dur: otherSeg},
		Segment{Name: "finalize", Dur: finalSeg},
	)
	return cp
}

// splitExecute measures the execute stage's raw components off the span
// tree: the critical leaf's execution-only time, its transfer overhead,
// and everything charged to the stage outside that chain.
func splitExecute(root *Span, cp *CriticalPath) (scan, transfer, other time.Duration) {
	ex := root.Find("master/execute")
	if ex == nil {
		return 0, 0, 0
	}
	leafTotal := make(map[string]time.Duration)
	leafScan := make(map[string]time.Duration)
	for _, task := range ex.FindAll("task#") {
		leaf := taskLeaf(task.Name())
		if leaf == "" {
			continue
		}
		leafTotal[leaf] += task.Sim()
		// A task span's own sim is the full response time; its "leaf/" child
		// carries the execution-only component (spill-fetch and
		// reply-transfer children carry the rest).
		for _, c := range task.Children() {
			if strings.HasPrefix(c.Name(), "leaf/") {
				leafScan[leaf] += c.Sim()
			}
		}
	}
	for leaf, total := range leafTotal {
		if cp.CriticalLeaf == "" || total > leafTotal[cp.CriticalLeaf] ||
			(total == leafTotal[cp.CriticalLeaf] && leaf < cp.CriticalLeaf) {
			cp.CriticalLeaf = leaf
		}
	}
	if cp.CriticalLeaf == "" {
		return 0, 0, 0
	}
	critTotal := leafTotal[cp.CriticalLeaf]
	scan = leafScan[cp.CriticalLeaf]
	if scan > critTotal {
		scan = critTotal
	}
	transfer = critTotal - scan
	if exSim := ex.Sim(); exSim > critTotal {
		other = exSim - critTotal
	}
	return scan, transfer, other
}

// taskLeaf extracts the leaf name from a "task#N @ leaf" span name.
func taskLeaf(name string) string {
	if i := strings.Index(name, " @ "); i >= 0 {
		return name[i+3:]
	}
	return ""
}

// scale4 rescales four raw components to sum exactly to budget,
// preserving their proportions (integer nanoseconds; the rounding
// remainder lands on the first component). All-zero raws put the whole
// budget on the first (scan) component.
func scale4(a, b, c, d, budget time.Duration) (time.Duration, time.Duration, time.Duration, time.Duration) {
	if budget <= 0 {
		return 0, 0, 0, 0
	}
	sum := a + b + c + d
	if sum <= 0 {
		return budget, 0, 0, 0
	}
	sb := time.Duration(int64(b) * int64(budget) / int64(sum))
	sc := time.Duration(int64(c) * int64(budget) / int64(sum))
	sd := time.Duration(int64(d) * int64(budget) / int64(sum))
	return budget - sb - sc - sd, sb, sc, sd
}

// Render formats the critical path, one segment per line with its share
// of the end-to-end total. Durations use the trace's sim=/wall= token
// format so tooling that normalizes trace output covers this block too.
func (cp *CriticalPath) Render() string {
	if cp == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical path  total=%s\n", fmtDur(cp.Total))
	for _, seg := range cp.Segments {
		unit := "sim"
		if seg.Wall {
			unit = "wall"
		}
		pct := 0.0
		if cp.Total > 0 {
			pct = 100 * float64(seg.Dur) / float64(cp.Total)
		}
		fmt.Fprintf(&sb, "  %-18s %s=%-10s %5.1f%%\n", seg.Name, unit, fmtDur(seg.Dur), pct)
	}
	return sb.String()
}

// Summary is the one-line form for slow-query-log entries: every segment
// holding at least a 1% share, in canonical order so related entries line
// up column-wise.
func (cp *CriticalPath) Summary() string {
	if cp == nil || cp.Total <= 0 {
		return ""
	}
	parts := make([]string, 0, len(cp.Segments))
	for _, seg := range cp.Segments {
		pct := 100 * float64(seg.Dur) / float64(cp.Total)
		if pct < 1 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.0f%%", seg.Name, pct))
	}
	return strings.Join(parts, ", ")
}
