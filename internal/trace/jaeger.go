package trace

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Jaeger-compatible JSON trace export: the structures below marshal into
// the document shape Jaeger's HTTP API serves (GET /api/traces/{id}), so
// a stored Feisu trace drops straight into the Jaeger UI or any tooling
// built against it. Wall-clock start/duration map onto Jaeger's native
// microsecond fields; the cost model's simulated durations, counters and
// attributes ride along as span tags.

// JaegerDoc is the top-level export document: {"data": [trace]}.
type JaegerDoc struct {
	Data []JaegerTrace `json:"data"`
}

// JaegerTrace is one trace with its flattened span list.
type JaegerTrace struct {
	TraceID   string                   `json:"traceID"`
	Spans     []JaegerSpan             `json:"spans"`
	Processes map[string]JaegerProcess `json:"processes"`
}

// JaegerSpan is one span in Jaeger's flat representation; parent links are
// CHILD_OF references.
type JaegerSpan struct {
	TraceID       string      `json:"traceID"`
	SpanID        string      `json:"spanID"`
	OperationName string      `json:"operationName"`
	References    []JaegerRef `json:"references"`
	StartTime     int64       `json:"startTime"` // µs since epoch
	Duration      int64       `json:"duration"`  // µs
	Tags          []JaegerTag `json:"tags"`
	ProcessID     string      `json:"processID"`
}

// JaegerRef links a span to its parent.
type JaegerRef struct {
	RefType string `json:"refType"`
	TraceID string `json:"traceID"`
	SpanID  string `json:"spanID"`
}

// JaegerTag is one key/value annotation.
type JaegerTag struct {
	Key   string `json:"key"`
	Type  string `json:"type"`
	Value any    `json:"value"`
}

// JaegerProcess names the emitting service.
type JaegerProcess struct {
	ServiceName string `json:"serviceName"`
}

// ToJaeger converts a stored trace into the Jaeger JSON document shape.
// The trace ID is derived from the query ID (stable across exports of the
// same query); span IDs are depth-first ordinals.
func ToJaeger(t StoredTrace) JaegerDoc {
	traceID := hashID(t.QueryID + "|" + t.Fingerprint)
	jt := JaegerTrace{
		TraceID:   traceID,
		Processes: map[string]JaegerProcess{"p1": {ServiceName: "feisu"}},
	}
	var next int
	var walk func(s *Span, parent string)
	walk = func(s *Span, parent string) {
		next++
		id := fmt.Sprintf("%016x", next)
		js := JaegerSpan{
			TraceID:       traceID,
			SpanID:        id,
			OperationName: s.Name(),
			References:    []JaegerRef{},
			StartTime:     s.Start().UnixMicro(),
			Duration:      s.Wall().Microseconds(),
			ProcessID:     "p1",
		}
		if parent != "" {
			js.References = []JaegerRef{{RefType: "CHILD_OF", TraceID: traceID, SpanID: parent}}
		}
		if sim := s.Sim(); sim > 0 {
			js.Tags = append(js.Tags, JaegerTag{Key: "sim_us", Type: "int64", Value: sim.Microseconds()})
			// Wall duration can round to 0µs for in-process spans; surface the
			// simulated duration there too so the UI shows a usable bar.
			if js.Duration == 0 {
				js.Duration = sim.Microseconds()
			}
		}
		counts := s.Counts()
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			js.Tags = append(js.Tags, JaegerTag{Key: k, Type: "int64", Value: counts[k]})
		}
		s.mu.Lock()
		attrs := append([]Attr(nil), s.attrs...)
		s.mu.Unlock()
		for _, a := range attrs {
			js.Tags = append(js.Tags, JaegerTag{Key: a.Key, Type: "string", Value: a.Value})
		}
		jt.Spans = append(jt.Spans, js)
		for _, c := range s.Children() {
			walk(c, id)
		}
	}
	if t.Root != nil {
		walk(t.Root, "")
		// Root-level metadata tags.
		if len(jt.Spans) > 0 {
			root := &jt.Spans[0]
			if t.QueryID != "" {
				root.Tags = append(root.Tags, JaegerTag{Key: "query.id", Type: "string", Value: t.QueryID})
			}
			if t.Fingerprint != "" {
				root.Tags = append(root.Tags, JaegerTag{Key: "query.fingerprint", Type: "string", Value: t.Fingerprint})
			}
			if t.SQL != "" {
				root.Tags = append(root.Tags, JaegerTag{Key: "query.sql", Type: "string", Value: t.SQL})
			}
			if t.Sim > 0 {
				root.Tags = append(root.Tags, JaegerTag{Key: "query.sim_us", Type: "int64", Value: t.Sim.Microseconds()})
			}
		}
	}
	return JaegerDoc{Data: []JaegerTrace{jt}}
}

// hashID derives a stable 128-bit hex trace ID from a string key.
func hashID(key string) string {
	h1 := fnv.New64a()
	h1.Write([]byte(key))
	h2 := fnv.New64a()
	h2.Write([]byte("feisu|" + key))
	return fmt.Sprintf("%016x%016x", h1.Sum64(), h2.Sum64())
}
