package chaos

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// ErrInjectedRead is the error returned by injected storage read failures.
var ErrInjectedRead = errors.New("chaos: injected storage read error")

// WrapStore decorates a store with the plane's storage faults: slow reads,
// read errors, and payload corruption. Writes pass through untouched (a
// corrupted write would poison every later read, which is not replayable
// chaos but permanent data loss). The wrapper serves range reads itself so
// it composes with stores that lack RangeReader.
func (p *Plane) WrapStore(s storage.Store) storage.Store {
	return &chaosStore{inner: s, p: p}
}

type chaosStore struct {
	inner storage.Store
	p     *Plane
}

func (c *chaosStore) Scheme() string                 { return c.inner.Scheme() }
func (c *chaosStore) Device() sim.DeviceClass        { return c.inner.Device() }
func (c *chaosStore) Locations(path string) []string { return c.inner.Locations(path) }

func (c *chaosStore) WriteFile(ctx context.Context, path string, data []byte) error {
	return c.inner.WriteFile(ctx, path, data)
}

func (c *chaosStore) Stat(ctx context.Context, path string) (storage.FileInfo, error) {
	return c.inner.Stat(ctx, path)
}

func (c *chaosStore) List(ctx context.Context, prefix string) ([]string, error) {
	return c.inner.List(ctx, prefix)
}

// readFault draws the slow-read and read-error decisions for one read.
func (c *chaosStore) readFault(ctx context.Context, path string) error {
	st := c.p.cfg.Storage
	if !st.Enabled() {
		return nil
	}
	site := "storage/" + schemeSite(c.inner.Scheme())
	if st.SlowReadDelay > 0 && c.p.decide(site+"/slow", st.SlowRead, "slowread", path) {
		c.p.SlowReads.Inc()
		select {
		case <-time.After(st.SlowReadDelay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if c.p.decide(site+"/err", st.ReadErr, "readerr", path) {
		c.p.ReadErrs.Inc()
		return fmt.Errorf("%w: %s", ErrInjectedRead, path)
	}
	return nil
}

// maybeCorrupt flips one byte of a copy of data (the store's own buffers
// are never mutated). Detection is downstream: colstore column checksums
// fail the read, and the task is retried.
func (c *chaosStore) maybeCorrupt(path string, data []byte) []byte {
	st := c.p.cfg.Storage
	if st.Corrupt <= 0 || len(data) == 0 {
		return data
	}
	site := "storage/" + schemeSite(c.inner.Scheme())
	if !c.p.decide(site+"/corrupt", st.Corrupt, "corrupt", path) {
		return data
	}
	c.p.Corruptions.Inc()
	out := append([]byte(nil), data...)
	out[c.p.intn(site+"/corrupt", len(out))] ^= 0xFF
	return out
}

func (c *chaosStore) ReadFile(ctx context.Context, path string) ([]byte, error) {
	if err := c.readFault(ctx, path); err != nil {
		return nil, err
	}
	data, err := c.inner.ReadFile(ctx, path)
	if err != nil {
		return nil, err
	}
	return c.maybeCorrupt(path, data), nil
}

// ReadRange implements storage.RangeReader, delegating to the inner store's
// range support when present.
func (c *chaosStore) ReadRange(ctx context.Context, path string, off, length int64) ([]byte, error) {
	if err := c.readFault(ctx, path); err != nil {
		return nil, err
	}
	var data []byte
	var err error
	if rr, ok := c.inner.(storage.RangeReader); ok {
		data, err = rr.ReadRange(ctx, path, off, length)
	} else {
		data, err = c.inner.ReadFile(ctx, path)
		if err == nil {
			if off < 0 || length < 0 || off+length > int64(len(data)) {
				return nil, fmt.Errorf("chaos: range [%d,%d) outside %s of %d bytes", off, off+length, path, len(data))
			}
			data = append([]byte(nil), data[off:off+length]...)
		}
	}
	if err != nil {
		return nil, err
	}
	return c.maybeCorrupt(path, data), nil
}

// schemeSite names the local store's site ("" scheme) readably.
func schemeSite(scheme string) string {
	if scheme == "" {
		return "local"
	}
	return scheme
}
