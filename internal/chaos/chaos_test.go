package chaos

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/transport"
)

// driveWorkload pushes one fixed workload through a plane: transport
// decisions on a few links, storage reads through a wrapped store, and
// lifecycle ticks over fake targets. It is the reference workload for the
// replay tests.
func driveWorkload(t *testing.T, p *Plane) {
	t.Helper()
	ctx := context.Background()
	links := [][2]string{{"master", "leaf0"}, {"master", "leaf1"}, {"stem0", "leaf0"}}
	mem := storage.NewMemFS("", nil)
	if err := mem.WriteFile(ctx, "/blk", []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	wrapped := p.WrapStore(mem)
	targets, _ := fakeTargets(3)
	ctl := p.NewController(targets, []string{"master"})
	for i := 0; i < 200; i++ {
		for _, l := range links {
			p.Intercept(ctx, l[0], l[1], transport.Read, 64)
		}
		wrapped.ReadFile(ctx, "/blk")
		ctl.Tick()
	}
	ctl.Stop()
}

// fakeTarget records lifecycle transitions for assertions.
type fakeTarget struct {
	id string

	mu       sync.Mutex
	down     bool
	stall    time.Duration
	kills    int
	restarts int
}

func (f *fakeTarget) ID() string { return f.id }
func (f *fakeTarget) Kill() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = true
	f.kills++
}
func (f *fakeTarget) Restart() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = false
	f.restarts++
}
func (f *fakeTarget) SetStall(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stall = d
}
func (f *fakeTarget) snapshot() (down bool, stall time.Duration, kills, restarts int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down, f.stall, f.kills, f.restarts
}

func fakeTargets(n int) ([]Target, []*fakeTarget) {
	fakes := make([]*fakeTarget, n)
	targets := make([]Target, n)
	for i := range fakes {
		fakes[i] = &fakeTarget{id: fmt.Sprintf("leaf%d", i)}
		targets[i] = fakes[i]
	}
	return targets, fakes
}

// TestScheduleReplay is the seed-replay guarantee: two planes with the same
// seed driven through the same workload record the identical failure
// schedule, event for event. This is what makes a failed chaos run
// reproducible from its logged seed alone.
func TestScheduleReplay(t *testing.T) {
	cfg := *Default(42)
	cfg.Storage.SlowReadDelay = 0 // keep the replay runs fast
	cfg.Storage.SlowRead = 0
	a, b := New(cfg), New(cfg)
	driveWorkload(t, a)
	driveWorkload(t, b)

	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 {
		t.Fatal("workload fired no faults; chaos config too weak for the test")
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("same seed produced different schedules:\nrun A: %d events\nrun B: %d events", len(ea), len(eb))
	}
	if a.FaultCount() != b.FaultCount() {
		t.Fatalf("fault counts differ: %d vs %d", a.FaultCount(), b.FaultCount())
	}

	// A different seed must yield a different schedule (with ~200 draws per
	// site the chance of collision is negligible).
	other := cfg
	other.Seed = 43
	c := New(other)
	driveWorkload(t, c)
	if reflect.DeepEqual(ea, c.Events()) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleIndependentOfInterleaving drives the same per-link workloads
// sequentially on one plane and concurrently on another: the canonical
// Events() order must match, because each decision site owns a private
// stream.
func TestScheduleIndependentOfInterleaving(t *testing.T) {
	cfg := *Default(7)
	ctx := context.Background()
	links := [][2]string{{"master", "leaf0"}, {"master", "leaf1"}, {"master", "leaf2"}, {"stem0", "leaf1"}}

	seq := New(cfg)
	for _, l := range links {
		for i := 0; i < 300; i++ {
			seq.Intercept(ctx, l[0], l[1], transport.Read, 64)
		}
	}

	conc := New(cfg)
	var wg sync.WaitGroup
	for _, l := range links {
		wg.Add(1)
		go func(from, to string) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				conc.Intercept(ctx, from, to, transport.Read, 64)
			}
		}(l[0], l[1])
	}
	wg.Wait()

	if !reflect.DeepEqual(seq.Events(), conc.Events()) {
		t.Fatal("goroutine interleaving changed the canonical fault schedule")
	}
}

func TestInterceptFaultKinds(t *testing.T) {
	ctx := context.Background()
	t.Run("drop", func(t *testing.T) {
		p := New(Config{Seed: 1, Transport: TransportChaos{Drop: 1}})
		f := p.Intercept(ctx, "a", "b", transport.Read, 1)
		if !f.Drop {
			t.Fatal("Drop=1 did not drop")
		}
		if p.Drops.Value() != 1 {
			t.Fatalf("Drops = %d, want 1", p.Drops.Value())
		}
	})
	t.Run("control drop", func(t *testing.T) {
		// DropControl adds drop probability only for Control-class messages.
		p := New(Config{Seed: 1, Transport: TransportChaos{DropControl: 1}})
		if f := p.Intercept(ctx, "a", "b", transport.Read, 1); f.Drop {
			t.Fatal("DropControl dropped a Data message")
		}
		if f := p.Intercept(ctx, "a", "b", transport.Control, 1); !f.Drop {
			t.Fatal("DropControl=1 did not drop a Control message")
		}
	})
	t.Run("delay", func(t *testing.T) {
		p := New(Config{Seed: 1, Transport: TransportChaos{Delay: 1, MaxDelay: 5 * time.Millisecond}})
		f := p.Intercept(ctx, "a", "b", transport.Read, 1)
		if f.Delay <= 0 || f.Delay > 5*time.Millisecond {
			t.Fatalf("delay %v outside (0, 5ms]", f.Delay)
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		p := New(Config{Seed: 1, Transport: TransportChaos{Duplicate: 1}})
		if f := p.Intercept(ctx, "a", "b", transport.Read, 1); !f.Duplicate {
			t.Fatal("Duplicate=1 did not duplicate")
		}
	})
	t.Run("disabled", func(t *testing.T) {
		p := New(Config{Seed: 1})
		if f := p.Intercept(ctx, "a", "b", transport.Read, 1); f.Drop || f.Duplicate || f.Delay != 0 {
			t.Fatalf("zero config injected a fault: %+v", f)
		}
	})
}

func TestPartition(t *testing.T) {
	p := New(Config{Seed: 1})
	p.Partition("leaf0", "master")
	// Both directions and both argument orders are blocked.
	for _, pair := range [][2]string{{"leaf0", "master"}, {"master", "leaf0"}} {
		f := p.Intercept(context.Background(), pair[0], pair[1], transport.Read, 1)
		if !f.Drop || !errors.Is(f.Err, ErrPartitioned) {
			t.Fatalf("partitioned call %v not blocked: %+v", pair, f)
		}
	}
	if p.Partitions.Value() != 2 {
		t.Fatalf("Partitions = %d, want 2", p.Partitions.Value())
	}
	p.Heal("master", "leaf0")
	if f := p.Intercept(context.Background(), "leaf0", "master", transport.Read, 1); f.Drop {
		t.Fatal("healed partition still blocking")
	}
	if p.Partitioned("leaf0", "leaf1") {
		t.Fatal("unrelated pair reported partitioned")
	}
}

func TestStorageReadError(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemFS("", nil)
	if err := mem.WriteFile(ctx, "/f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	p := New(Config{Seed: 1, Storage: StorageChaos{ReadErr: 1}})
	s := p.WrapStore(mem)
	if _, err := s.ReadFile(ctx, "/f"); !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("ReadErr=1: got %v, want ErrInjectedRead", err)
	}
	if p.ReadErrs.Value() == 0 {
		t.Fatal("ReadErrs counter not incremented")
	}
	// Writes are never failed or corrupted.
	if err := s.WriteFile(ctx, "/g", []byte("x")); err != nil {
		t.Fatalf("write through chaos store: %v", err)
	}
}

func TestStorageCorruption(t *testing.T) {
	ctx := context.Background()
	orig := []byte("0123456789abcdef")
	mem := storage.NewMemFS("", nil)
	if err := mem.WriteFile(ctx, "/f", orig); err != nil {
		t.Fatal(err)
	}
	p := New(Config{Seed: 1, Storage: StorageChaos{Corrupt: 1}})
	s := p.WrapStore(mem)
	got, err := s.ReadFile(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("corruption changed length: %d -> %d", len(orig), len(got))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
	// The store's own copy must be untouched: a clean plane reads it back.
	clean, err := mem.ReadFile(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(clean) != string(orig) {
		t.Fatal("corruption leaked into the underlying store")
	}
}

// rangelessStore hides MemFS's RangeReader behind the plain Store interface
// so the wrapper's fallback path (full read + slice) is exercised.
type rangelessStore struct{ storage.Store }

func TestStorageReadRangeFallback(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemFS("", nil)
	if err := mem.WriteFile(ctx, "/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	p := New(Config{Seed: 1})
	s := p.WrapStore(rangelessStore{mem}).(storage.RangeReader)
	got, err := s.ReadRange(ctx, "/f", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "2345" {
		t.Fatalf("ReadRange fallback = %q, want %q", got, "2345")
	}
	if _, err := s.ReadRange(ctx, "/f", 8, 4); err == nil {
		t.Fatal("out-of-bounds range did not error")
	}
}

func TestControllerKillRestart(t *testing.T) {
	p := New(Config{Seed: 1, Lifecycle: LifecycleChaos{Kill: 1, DownTicks: 2, MaxDown: 1}})
	targets, fakes := fakeTargets(3)
	ctl := p.NewController(targets, nil)

	ctl.Tick()
	downs := 0
	for _, f := range fakes {
		if down, _, _, _ := f.snapshot(); down {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("after first tick %d targets down, want 1", downs)
	}
	if p.Kills.Value() != 1 {
		t.Fatalf("Kills = %d, want 1", p.Kills.Value())
	}

	// MaxDown=1: further ticks may draw kill decisions but must not take a
	// second target down while one is still dead.
	ctl.Tick() // down counter 2 -> 1, no new kill allowed
	downs = 0
	for _, f := range fakes {
		if down, _, _, _ := f.snapshot(); down {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("MaxDown=1 violated: %d targets down", downs)
	}

	// The next tick expires the down timer: the victim restarts (and with
	// Kill=1 a fresh victim may immediately be chosen).
	ctl.Tick()
	restarts := 0
	for _, f := range fakes {
		if _, _, _, r := f.snapshot(); r > 0 {
			restarts++
		}
	}
	if restarts == 0 {
		t.Fatal("down timer expired but no target restarted")
	}
	if p.Restarts.Value() == 0 {
		t.Fatal("Restarts counter not incremented")
	}
}

func TestControllerNeverKillsLastAlive(t *testing.T) {
	p := New(Config{Seed: 1, Lifecycle: LifecycleChaos{Kill: 1, DownTicks: 100, MaxDown: 10}})
	targets, fakes := fakeTargets(2)
	ctl := p.NewController(targets, nil)
	for i := 0; i < 20; i++ {
		ctl.Tick()
		alive := 0
		for _, f := range fakes {
			if down, _, _, _ := f.snapshot(); !down {
				alive++
			}
		}
		if alive == 0 {
			t.Fatalf("tick %d: controller killed the last alive target", i+1)
		}
	}
}

func TestControllerStraggleAndHeal(t *testing.T) {
	p := New(Config{Seed: 1, Lifecycle: LifecycleChaos{
		Straggle: 1, StraggleDelay: 5 * time.Millisecond, StraggleTicks: 3,
		Partition: 1, PartitionTicks: 3,
	}})
	targets, fakes := fakeTargets(2)
	ctl := p.NewController(targets, []string{"master"})
	ctl.Tick()

	stalled := 0
	for _, f := range fakes {
		if _, stall, _, _ := f.snapshot(); stall == 5*time.Millisecond {
			stalled++
		}
	}
	if stalled != 1 {
		t.Fatalf("%d targets stalled after tick, want 1", stalled)
	}
	partitioned := p.Partitioned("leaf0", "master") || p.Partitioned("leaf1", "master")
	if !partitioned {
		t.Fatal("Partition=1 tick did not partition any target from master")
	}

	ctl.Heal()
	for _, f := range fakes {
		if down, stall, _, _ := f.snapshot(); down || stall != 0 {
			t.Fatalf("target %s not healed: down=%v stall=%v", f.id, down, stall)
		}
	}
	if p.Partitioned("leaf0", "master") || p.Partitioned("leaf1", "master") {
		t.Fatal("Heal left a partition active")
	}
}

func TestControllerBackgroundTicker(t *testing.T) {
	cfg := Config{Seed: 1, Lifecycle: LifecycleChaos{
		Straggle: 1, StraggleDelay: time.Millisecond, StraggleTicks: 1,
		TickInterval: time.Millisecond,
	}}
	p := New(cfg)
	targets, _ := fakeTargets(2)
	ctl := p.NewController(targets, nil)
	ctl.Start()
	deadline := time.Now().Add(2 * time.Second)
	for ctl.Ticks() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctl.Stop()
	if got := ctl.Ticks(); got < 3 {
		t.Fatalf("background ticker advanced only %d ticks", got)
	}
	// Stop is idempotent and Start after Stop works.
	ctl.Stop()
}

func TestEventsBounded(t *testing.T) {
	p := New(Config{Seed: 1, Transport: TransportChaos{Drop: 1}})
	ctx := context.Background()
	for i := 0; i < maxEvents+50; i++ {
		p.Intercept(ctx, "a", "b", transport.Read, 1)
	}
	if len(p.Events()) != maxEvents {
		t.Fatalf("event log holds %d entries, want cap %d", len(p.Events()), maxEvents)
	}
	if p.EventsLost() != 50 {
		t.Fatalf("EventsLost = %d, want 50", p.EventsLost())
	}
}
