// Soak: concurrent queries race a chaos controller that kills, restarts,
// slows and partitions leaves. Run with -race (scripts/verify.sh does); the
// value of the test is that every lifecycle transition — fabric down-flags,
// suspect marking, hedges, retries, heals on Close — happens while queries
// are in flight.
package chaos_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	feisu "repro"
	"repro/internal/chaos"
	"repro/internal/workload"
)

func TestSoakConcurrentQueriesUnderChaos(t *testing.T) {
	cfg := feisu.Config{
		Leaves:            4,
		HeartbeatInterval: -1,
		TaskTimeout:       250 * time.Millisecond,
	}
	cfg.Chaos = chaos.Default(11)
	cfg.Chaos.Lifecycle.TickInterval = 0 // the soak loop ticks
	sys, err := feisu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ctx := context.Background()
	spec := workload.T1Spec()
	spec.Partitions = 4
	spec.RowsPerPart = 128
	meta, err := workload.Generate(ctx, sys.Router(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT COUNT(*) FROM T1 WHERE clicks > 3",
		"SELECT region, SUM(clicks) FROM T1 GROUP BY region",
		"SELECT MAX(dwell) FROM T1 WHERE pos = 2",
		"SELECT url, clicks FROM T1 WHERE uid < 30000 ORDER BY url, clicks LIMIT 10",
	}
	workers, perWorker := 4, 12
	if testing.Short() {
		perWorker = 4
	}

	// Lifecycle chaos on a 2ms cadence until the workers drain: every few
	// ticks a leaf dies, straggles or gets partitioned, and heals again.
	stopTicks := make(chan struct{})
	ticksDone := make(chan struct{})
	go func() {
		defer close(ticksDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sys.ChaosTick()
			case <-stopTicks:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var partials, failures atomic.Int64
	var firstErr atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				_, stats, err := sys.QueryStats(ctx, q, feisu.WithPartialResults())
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				if len(stats.TaskErrors) > 0 {
					partials.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopTicks)
	<-ticksDone

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d/%d queries failed outright under chaos seed %d (first: %v); chaos may only degrade, never break",
			n, workers*perWorker, sys.Chaos().Seed(), firstErr.Load())
	}
	// The soak must actually have soaked: leaves died and were revived
	// while the queries above all completed.
	plane := sys.Chaos()
	if plane.Kills.Value() == 0 {
		t.Fatal("no leaf was killed during the soak; lengthen the run or raise Lifecycle.Kill")
	}
	if plane.Restarts.Value() == 0 {
		t.Fatal("no leaf restarted during the soak")
	}
	t.Logf("soak seed %d: %d queries, %d partial, faults=%d (kills=%d restarts=%d straggles=%d retries=%d hedged=%d)",
		plane.Seed(), workers*perWorker, partials.Load(), plane.FaultCount(),
		plane.Kills.Value(), plane.Restarts.Value(), plane.Straggles.Value(),
		sys.Master().Retries.Value(), sys.Master().HedgesFired.Value())
}
