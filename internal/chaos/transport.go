package chaos

import (
	"context"
	"errors"

	"repro/internal/transport"
)

// ErrPartitioned is returned for calls blocked by an active pairwise
// partition.
var ErrPartitioned = errors.New("chaos: network partition")

// Intercept implements transport.Interceptor: one decision stream per
// directed link keeps schedules independent across links.
func (p *Plane) Intercept(ctx context.Context, from, to string, class transport.Class, size int64) transport.Fault {
	if p.Partitioned(from, to) {
		p.Partitions.Inc()
		return transport.Fault{Drop: true, Err: ErrPartitioned}
	}
	t := p.cfg.Transport
	if !t.Enabled() {
		return transport.Fault{}
	}
	site := "transport/" + from + "->" + to
	link := from + "->" + to
	drop := t.Drop
	if class == transport.Control {
		drop += t.DropControl
	}
	if p.decide(site+"/drop", drop, "drop", link) {
		p.Drops.Inc()
		return transport.Fault{Drop: true}
	}
	var f transport.Fault
	if t.MaxDelay > 0 && p.decide(site+"/delay", t.Delay, "delay", link) {
		p.Delays.Inc()
		f.Delay = p.duration(site+"/delay", t.MaxDelay)
	}
	if p.decide(site+"/dup", t.Duplicate, "dup", link) {
		p.Dups.Inc()
		f.Duplicate = true
	}
	return f
}
