// Package chaos is Feisu's deterministic fault-injection plane: the test
// scaffolding that turns the failure modes of a 4,000-node deployment —
// message loss, network partitions, slow or corrupting storage tiers, leaf
// crashes and stragglers (paper §I, §V) — into reproducible test inputs.
//
// Every fault decision is drawn from a rand stream derived from one seed,
// so a failure schedule can be replayed exactly by constructing a new Plane
// with the same seed and driving it with the same workload. Streams are
// keyed by decision *site* (one per transport link, storage scheme and the
// lifecycle controller), so concurrent sites do not perturb each other's
// schedules: the per-site fault sequences are identical across runs even
// when goroutine interleavings differ.
//
// The Plane plugs into the rest of the system through three surfaces:
//
//   - transport: the Plane implements transport.Interceptor (message drop,
//     delay, duplication, and pairwise partitions);
//   - storage: WrapStore decorates a storage.Store with slow reads, read
//     errors and payload corruption (caught by colstore block checksums);
//   - cluster lifecycle: a Controller crashes/restarts and slows down
//     Targets (leaf servers) on a deterministic tick schedule.
//
// Fired faults are counted (for metrics export) and recorded in a bounded
// event log (Events) — the replayable failure schedule.
package chaos

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// maxEvents bounds the event log; later events are counted but not kept.
const maxEvents = 8192

// Config shapes a Plane. Zero-valued sections disable that fault family.
type Config struct {
	// Seed drives every fault decision; the same seed over the same
	// workload reproduces the same failure schedule.
	Seed int64
	// Transport configures message-level faults.
	Transport TransportChaos
	// Storage configures storage-read faults.
	Storage StorageChaos
	// Lifecycle configures the crash/restart/straggler controller.
	Lifecycle LifecycleChaos
}

// TransportChaos sets per-message fault probabilities.
type TransportChaos struct {
	// Drop is the probability a message is dropped (any class).
	Drop float64
	// DropControl is *additional* drop probability for Control-class
	// messages — heartbeat and dispatch loss.
	DropControl float64
	// Delay is the probability a message is delayed; the pause is uniform
	// in (0, MaxDelay].
	Delay    float64
	MaxDelay time.Duration
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
}

// Enabled reports whether any transport fault can fire.
func (t TransportChaos) Enabled() bool {
	return t.Drop > 0 || t.DropControl > 0 || (t.Delay > 0 && t.MaxDelay > 0) || t.Duplicate > 0
}

// StorageChaos sets per-read fault probabilities for wrapped stores.
type StorageChaos struct {
	// SlowRead is the probability a read pauses for SlowReadDelay.
	SlowRead      float64
	SlowReadDelay time.Duration
	// ReadErr is the probability a read fails with ErrInjectedRead.
	ReadErr float64
	// Corrupt is the probability a read returns flipped bytes (detected
	// downstream by colstore column checksums).
	Corrupt float64
}

// Enabled reports whether any storage fault can fire.
func (s StorageChaos) Enabled() bool {
	return (s.SlowRead > 0 && s.SlowReadDelay > 0) || s.ReadErr > 0 || s.Corrupt > 0
}

// LifecycleChaos sets the per-tick probabilities of the Controller.
type LifecycleChaos struct {
	// Kill is the per-tick probability of crashing one alive target.
	Kill float64
	// DownTicks is how many ticks a killed target stays down (default 2).
	DownTicks int
	// MaxDown caps concurrently-down targets (default 1); the controller
	// also never kills the last alive target.
	MaxDown int
	// Straggle is the per-tick probability of slowing one target down by
	// StraggleDelay per task for StraggleTicks ticks (default 2).
	Straggle      float64
	StraggleDelay time.Duration
	StraggleTicks int
	// Partition is the per-tick probability of a pairwise partition
	// between a target and a peer, healed after PartitionTicks (default 2).
	Partition      float64
	PartitionTicks int
	// TickInterval, when positive, makes feisu.System drive the controller
	// from a background goroutine; 0 leaves ticking to the caller
	// (deterministic tests tick manually).
	TickInterval time.Duration
}

// Enabled reports whether any lifecycle fault can fire.
func (l LifecycleChaos) Enabled() bool {
	return l.Kill > 0 || (l.Straggle > 0 && l.StraggleDelay > 0) || l.Partition > 0
}

// Default returns a moderate all-families configuration: enough chaos to
// exercise every recovery path while letting retries and hedges keep
// queries completing.
func Default(seed int64) *Config {
	return &Config{
		Seed: seed,
		Transport: TransportChaos{
			Drop:      0.02,
			Delay:     0.10,
			MaxDelay:  2 * time.Millisecond,
			Duplicate: 0.02,
		},
		Storage: StorageChaos{
			SlowRead:      0.05,
			SlowReadDelay: time.Millisecond,
			ReadErr:       0.01,
			Corrupt:       0.01,
		},
		Lifecycle: LifecycleChaos{
			Kill:           0.15,
			DownTicks:      2,
			MaxDown:        1,
			Straggle:       0.10,
			StraggleDelay:  3 * time.Millisecond,
			StraggleTicks:  2,
			Partition:      0.05,
			PartitionTicks: 1,
		},
	}
}

// Event is one fired fault in the replayable schedule.
type Event struct {
	// Site is the decision site, e.g. "transport/master->leaf0" or
	// "lifecycle".
	Site string
	// Seq is the per-site fault sequence number (1-based). Site+Seq
	// identifies an event independently of goroutine interleaving.
	Seq int
	// Kind names the fault: drop, delay, dup, partition, slowread,
	// readerr, corrupt, kill, restart, straggle, heal.
	Kind string
	// Detail carries the fault target (node, path, pair).
	Detail string
}

// Plane is one seeded fault-injection plane.
type Plane struct {
	cfg Config

	mu      sync.Mutex
	streams map[string]*stream
	events  []Event
	lost    int // events beyond maxEvents
	parts   map[[2]string]bool
	sink    func(Event)

	// Fired-fault counters, exported as feisu_chaos_faults_total{kind=...}.
	Drops       metrics.Counter
	Delays      metrics.Counter
	Dups        metrics.Counter
	Partitions  metrics.Counter // calls blocked by an active partition
	SlowReads   metrics.Counter
	ReadErrs    metrics.Counter
	Corruptions metrics.Counter
	Kills       metrics.Counter
	Restarts    metrics.Counter
	Straggles   metrics.Counter
}

// stream is one decision site's private rand source.
type stream struct {
	mu  sync.Mutex
	rng *rand.Rand
	seq int
}

// New builds a Plane from the config.
func New(cfg Config) *Plane {
	return &Plane{
		cfg:     cfg,
		streams: make(map[string]*stream),
		parts:   make(map[[2]string]bool),
	}
}

// Seed returns the plane's seed (for logging failed runs).
func (p *Plane) Seed() int64 { return p.cfg.Seed }

// Config returns the plane's configuration.
func (p *Plane) Config() Config { return p.cfg }

// site returns the stream for a decision site, creating it on first use.
// The stream's source mixes the plane seed with a hash of the site name so
// sites are independent but individually reproducible.
func (p *Plane) site(name string) *stream {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.streams[name]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(name))
		src := int64(h.Sum64() ^ (uint64(p.cfg.Seed) * 0x9E3779B97F4A7C15))
		s = &stream{rng: rand.New(rand.NewSource(src))}
		p.streams[name] = s
	}
	return s
}

// SetSink installs a callback invoked with every fired fault — the bridge
// that mirrors the chaos schedule into the cluster flight recorder. Install
// it before faults start firing; the callback runs outside the plane's lock
// and must be safe for concurrent use.
func (p *Plane) SetSink(fn func(Event)) {
	p.mu.Lock()
	p.sink = fn
	p.mu.Unlock()
}

// record appends a fired fault to the event log and returns its per-site
// sequence number.
func (p *Plane) record(site, kind, detail string, seq int) {
	ev := Event{Site: site, Seq: seq, Kind: kind, Detail: detail}
	p.mu.Lock()
	if len(p.events) < maxEvents {
		p.events = append(p.events, ev)
	} else {
		p.lost++
	}
	sink := p.sink
	p.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

// note records a non-probabilistic event (restart, heal) on the site's
// sequence without consuming randomness.
func (p *Plane) note(site, kind, detail string) {
	s := p.site(site)
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.mu.Unlock()
	p.record(site, kind, detail, seq)
}

// decide draws one fault decision at the site; a fired fault is logged
// under the given kind and detail.
func (p *Plane) decide(site string, prob float64, kind, detail string) bool {
	if prob <= 0 {
		return false
	}
	s := p.site(site)
	s.mu.Lock()
	fired := s.rng.Float64() < prob
	var seq int
	if fired {
		s.seq++
		seq = s.seq
	}
	s.mu.Unlock()
	if fired {
		p.record(site, kind, detail, seq)
	}
	return fired
}

// duration draws a uniform duration in (0, max] from the site's stream.
func (p *Plane) duration(site string, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	s := p.site(site)
	s.mu.Lock()
	d := time.Duration(s.rng.Int63n(int64(max))) + 1
	s.mu.Unlock()
	return d
}

// intn draws from [0, n) on the site's stream.
func (p *Plane) intn(site string, n int) int {
	s := p.site(site)
	s.mu.Lock()
	v := s.rng.Intn(n)
	s.mu.Unlock()
	return v
}

// Events returns the fired-fault schedule recorded so far, sorted by site
// then per-site sequence — a canonical order that is stable across
// goroutine interleavings, so two runs of the same seed and workload can be
// compared directly.
func (p *Plane) Events() []Event {
	p.mu.Lock()
	out := append([]Event(nil), p.events...)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// EventsLost reports how many fired faults overflowed the bounded log.
func (p *Plane) EventsLost() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lost
}

// FaultCount sums every fired-fault counter.
func (p *Plane) FaultCount() int64 {
	total := int64(0)
	for _, c := range []*metrics.Counter{
		&p.Drops, &p.Delays, &p.Dups, &p.Partitions, &p.SlowReads,
		&p.ReadErrs, &p.Corruptions, &p.Kills, &p.Restarts, &p.Straggles,
	} {
		total += c.Value()
	}
	return total
}

// RegisterMetrics exports the fired-fault counters as the labeled family
// feisu_chaos_faults_total{kind=...}.
func (p *Plane) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for kind, c := range map[string]*metrics.Counter{
		"transport_drop":      &p.Drops,
		"transport_delay":     &p.Delays,
		"transport_duplicate": &p.Dups,
		"partition_blocked":   &p.Partitions,
		"storage_slow_read":   &p.SlowReads,
		"storage_read_error":  &p.ReadErrs,
		"storage_corruption":  &p.Corruptions,
		"leaf_kill":           &p.Kills,
		"leaf_restart":        &p.Restarts,
		"leaf_straggle":       &p.Straggles,
	} {
		reg.RegisterCounterWith("feisu_chaos_faults_total", c, metrics.L("kind", kind))
	}
}

// pairKey canonicalizes an unordered node pair.
func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition blocks all traffic between a and b (both directions) until
// Heal.
func (p *Plane) Partition(a, b string) {
	p.mu.Lock()
	p.parts[pairKey(a, b)] = true
	p.mu.Unlock()
}

// Heal removes the partition between a and b.
func (p *Plane) Heal(a, b string) {
	p.mu.Lock()
	delete(p.parts, pairKey(a, b))
	p.mu.Unlock()
}

// HealAll removes every partition.
func (p *Plane) HealAll() {
	p.mu.Lock()
	p.parts = make(map[[2]string]bool)
	p.mu.Unlock()
}

// Partitioned reports whether a and b are currently partitioned.
func (p *Plane) Partitioned(a, b string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.parts[pairKey(a, b)]
}
