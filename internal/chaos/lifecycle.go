package chaos

import (
	"sort"
	"sync"
	"time"
)

// Target is a cluster node the Controller can degrade. feisu.System adapts
// each leaf server (fabric down-flag + server stop/restart + stall knob)
// into this interface.
type Target interface {
	// ID names the target (its fabric node name).
	ID() string
	// Kill crashes the target: unreachable on the fabric, server halted.
	Kill()
	// Restart revives a killed target and re-announces it (heartbeat).
	Restart()
	// SetStall adds a per-task pause (0 clears it) — a straggler knob.
	SetStall(d time.Duration)
}

// Controller drives lifecycle chaos over a set of targets on a
// deterministic tick schedule. Each Tick draws kill/straggle/partition
// decisions from the plane's "lifecycle" stream; because ticks are
// totally ordered (callers tick from one goroutine, or the built-in
// ticker does), the schedule is a pure function of seed and tick count.
type Controller struct {
	p       *Plane
	cfg     LifecycleChaos
	targets []Target
	peers   []string // partition counterparties: master and stems

	mu         sync.Mutex
	tick       int
	down       map[string]int // target ID -> ticks until restart
	straggling map[string]int // target ID -> ticks until stall clears
	parts      map[[2]string]int
	stop       chan struct{}
	done       chan struct{}
}

// NewController builds a controller over targets; peers are the node names
// partitions may cut targets off from (typically the master and stems).
func (p *Plane) NewController(targets []Target, peers []string) *Controller {
	cfg := p.cfg.Lifecycle
	if cfg.DownTicks <= 0 {
		cfg.DownTicks = 2
	}
	if cfg.MaxDown <= 0 {
		cfg.MaxDown = 1
	}
	if cfg.StraggleTicks <= 0 {
		cfg.StraggleTicks = 2
	}
	if cfg.PartitionTicks <= 0 {
		cfg.PartitionTicks = 1
	}
	return &Controller{
		p:          p,
		cfg:        cfg,
		targets:    targets,
		peers:      peers,
		down:       make(map[string]int),
		straggling: make(map[string]int),
		parts:      make(map[[2]string]int),
	}
}

// Tick advances the chaos clock one step: expired faults heal, then new
// kill/straggle/partition decisions are drawn. Safe for concurrent use,
// but determinism requires totally ordered ticks.
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	c.expireLocked()
	if !c.cfg.Enabled() || len(c.targets) == 0 {
		return
	}
	c.maybeKillLocked()
	c.maybeStraggleLocked()
	c.maybePartitionLocked()
}

// Ticks reports how many ticks have elapsed.
func (c *Controller) Ticks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tick
}

// expireLocked heals faults whose duration has elapsed.
func (c *Controller) expireLocked() {
	for id, left := range c.down {
		if left--; left > 0 {
			c.down[id] = left
			continue
		}
		delete(c.down, id)
		if t := c.target(id); t != nil {
			t.Restart()
			c.p.Restarts.Inc()
			c.p.note("lifecycle", "restart", id)
		}
	}
	for id, left := range c.straggling {
		if left--; left > 0 {
			c.straggling[id] = left
			continue
		}
		delete(c.straggling, id)
		if t := c.target(id); t != nil {
			t.SetStall(0)
		}
	}
	for pair, left := range c.parts {
		if left--; left > 0 {
			c.parts[pair] = left
			continue
		}
		delete(c.parts, pair)
		c.p.Heal(pair[0], pair[1])
		c.p.note("lifecycle", "heal", pair[0]+"|"+pair[1])
	}
}

func (c *Controller) target(id string) Target {
	for _, t := range c.targets {
		if t.ID() == id {
			return t
		}
	}
	return nil
}

// aliveLocked returns targets currently up, in stable (slice) order.
func (c *Controller) aliveLocked() []Target {
	out := make([]Target, 0, len(c.targets))
	for _, t := range c.targets {
		if _, dead := c.down[t.ID()]; !dead {
			out = append(out, t)
		}
	}
	return out
}

func (c *Controller) maybeKillLocked() {
	if !c.p.decide("lifecycle", c.cfg.Kill, "kill?", "") {
		return
	}
	alive := c.aliveLocked()
	// Never kill the last alive target, and respect the concurrency cap.
	if len(alive) <= 1 || len(c.down) >= c.cfg.MaxDown {
		return
	}
	victim := alive[c.p.intn("lifecycle", len(alive))]
	victim.Kill()
	c.down[victim.ID()] = c.cfg.DownTicks
	c.p.Kills.Inc()
	c.p.note("lifecycle", "kill", victim.ID())
}

func (c *Controller) maybeStraggleLocked() {
	if c.cfg.StraggleDelay <= 0 || !c.p.decide("lifecycle", c.cfg.Straggle, "straggle?", "") {
		return
	}
	alive := c.aliveLocked()
	if len(alive) == 0 {
		return
	}
	t := alive[c.p.intn("lifecycle", len(alive))]
	if _, already := c.straggling[t.ID()]; already {
		c.straggling[t.ID()] = c.cfg.StraggleTicks // extend
		return
	}
	t.SetStall(c.cfg.StraggleDelay)
	c.straggling[t.ID()] = c.cfg.StraggleTicks
	c.p.Straggles.Inc()
	c.p.note("lifecycle", "straggle", t.ID())
}

func (c *Controller) maybePartitionLocked() {
	if len(c.peers) == 0 || !c.p.decide("lifecycle", c.cfg.Partition, "partition?", "") {
		return
	}
	alive := c.aliveLocked()
	if len(alive) == 0 {
		return
	}
	t := alive[c.p.intn("lifecycle", len(alive))]
	peer := c.peers[c.p.intn("lifecycle", len(c.peers))]
	pair := pairKey(t.ID(), peer)
	if _, already := c.parts[pair]; already {
		c.parts[pair] = c.cfg.PartitionTicks
		return
	}
	c.p.Partition(t.ID(), peer)
	c.parts[pair] = c.cfg.PartitionTicks
	c.p.note("lifecycle", "partition", pair[0]+"|"+pair[1])
}

// Heal restores every active fault: down targets restart, stalls clear,
// partitions lift. The tick counter keeps its value.
func (c *Controller) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.down))
	for id := range c.down {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		delete(c.down, id)
		if t := c.target(id); t != nil {
			t.Restart()
			c.p.Restarts.Inc()
			c.p.note("lifecycle", "restart", id)
		}
	}
	for id := range c.straggling {
		delete(c.straggling, id)
		if t := c.target(id); t != nil {
			t.SetStall(0)
		}
	}
	for pair := range c.parts {
		delete(c.parts, pair)
		c.p.Heal(pair[0], pair[1])
	}
}

// Start launches the background ticker when TickInterval is positive; with
// a zero interval it is a no-op (callers tick manually). Stop is required
// after a successful Start.
func (c *Controller) Start() {
	if c.cfg.TickInterval <= 0 {
		return
	}
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(c.cfg.TickInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				c.Tick()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the background ticker (if running) and heals all faults so
// shutdown finds every node reachable.
func (c *Controller) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	c.Heal()
}
