package encoding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInt64RoundTripPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63() // wide range defeats delta/RLE
	}
	checkInts(t, vals)
}

func TestInt64RoundTripDelta(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(1700000000 + i*3) // sorted timestamps: delta wins
	}
	enc := EncodeInt64s(vals)
	if enc[0] != tagDeltaVarint {
		t.Errorf("sorted ints should use delta, got tag %d", enc[0])
	}
	if len(enc) >= 8*len(vals) {
		t.Errorf("delta encoding not smaller: %d bytes", len(enc))
	}
	checkInts(t, vals)
}

func TestInt64RoundTripRLE(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i / 200) // long runs
	}
	enc := EncodeInt64s(vals)
	if enc[0] != tagRunLengthInt {
		t.Errorf("runs should use RLE, got tag %d", enc[0])
	}
	if len(enc) > 100 {
		t.Errorf("RLE encoding too large: %d bytes", len(enc))
	}
	checkInts(t, vals)
}

func TestInt64Extremes(t *testing.T) {
	checkInts(t, []int64{math.MaxInt64, math.MinInt64, 0, -1, 1})
	checkInts(t, nil)
	checkInts(t, []int64{42})
}

func checkInts(t *testing.T, vals []int64) {
	t.Helper()
	got, err := DecodeInt64s(EncodeInt64s(vals))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len = %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("vals[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestDecodeInt64sErrors(t *testing.T) {
	if _, err := DecodeInt64s(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := DecodeInt64s([]byte{tagPlainInt}); err == nil {
		t.Error("missing length should fail")
	}
	if _, err := DecodeInt64s([]byte{tagPlainInt, 2, 0, 0}); err == nil {
		t.Error("truncated payload should fail")
	}
	if _, err := DecodeInt64s([]byte{99, 1, 0}); err == nil {
		t.Error("unknown tag should fail")
	}
	// RLE run count overflowing declared length.
	bad := []byte{tagRunLengthInt, 2, 10, 0}
	if _, err := DecodeInt64s(bad); err == nil {
		t.Error("overflowing RLE run should fail")
	}
	// Zero-count RLE run loops forever unless rejected.
	bad2 := []byte{tagRunLengthInt, 2, 0, 0}
	if _, err := DecodeInt64s(bad2); err == nil {
		t.Error("zero-count RLE run should fail")
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	got, err := DecodeFloat64s(EncodeFloat64s(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("vals[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestFloat64NaN(t *testing.T) {
	got, err := DecodeFloat64s(EncodeFloat64s([]float64{math.NaN()}))
	if err != nil || len(got) != 1 || !math.IsNaN(got[0]) {
		t.Errorf("NaN round trip: %v, %v", got, err)
	}
}

func TestFloat64Errors(t *testing.T) {
	if _, err := DecodeFloat64s(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := DecodeFloat64s([]byte{tagPlainInt, 0}); err == nil {
		t.Error("wrong tag should fail")
	}
	if _, err := DecodeFloat64s([]byte{tagPlainFloat, 1, 0}); err == nil {
		t.Error("truncated should fail")
	}
}

func TestBoolRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100} {
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = i%3 == 0
		}
		got, err := DecodeBools(EncodeBools(vals))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("n=%d vals[%d] = %v", n, i, got[i])
			}
		}
	}
}

func TestBoolErrors(t *testing.T) {
	if _, err := DecodeBools(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := DecodeBools([]byte{tagPackedBool, 9, 0}); err == nil {
		t.Error("truncated should fail")
	}
}

func TestStringRoundTripPlain(t *testing.T) {
	vals := []string{"alpha", "beta", "", "日本語", "a\x00b", "long string with spaces"}
	enc := EncodeStrings(vals)
	if enc[0] != tagPlainString {
		t.Errorf("distinct strings should be plain, got tag %d", enc[0])
	}
	checkStrings(t, vals)
}

func TestStringRoundTripDict(t *testing.T) {
	vals := make([]string, 1000)
	for i := range vals {
		vals[i] = []string{"search", "map", "music"}[i%3]
	}
	enc := EncodeStrings(vals)
	if enc[0] != tagDictString {
		t.Errorf("low-cardinality strings should be dict, got tag %d", enc[0])
	}
	plain := encodePlainString(vals)
	if len(enc) >= len(plain) {
		t.Errorf("dict %d bytes not smaller than plain %d", len(enc), len(plain))
	}
	checkStrings(t, vals)
}

func checkStrings(t *testing.T, vals []string) {
	t.Helper()
	got, err := DecodeStrings(EncodeStrings(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len = %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("vals[%d] = %q, want %q", i, got[i], vals[i])
		}
	}
}

func TestStringEmpty(t *testing.T) {
	checkStrings(t, nil)
	checkStrings(t, []string{""})
}

func TestDecodeStringsErrors(t *testing.T) {
	if _, err := DecodeStrings(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := DecodeStrings([]byte{tagPlainString, 1, 5, 'a'}); err == nil {
		t.Error("truncated string should fail")
	}
	if _, err := DecodeStrings([]byte{tagDictString, 1, 1, 1, 'a', 9}); err == nil {
		t.Error("out-of-range dict code should fail")
	}
	if _, err := DecodeStrings([]byte{99, 0}); err == nil {
		t.Error("unknown tag should fail")
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		got, err := DecodeInt64s(EncodeInt64s(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		got, err := DecodeStrings(EncodeStrings(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
