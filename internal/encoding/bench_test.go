package encoding

import (
	"math/rand"
	"testing"
)

func BenchmarkEncodeIntsDelta(b *testing.B) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(1700000000 + i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeInt64s(vals)
	}
}

func BenchmarkEncodeIntsRLE(b *testing.B) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(i / 512)
	}
	for i := 0; i < b.N; i++ {
		_ = EncodeInt64s(vals)
	}
}

func BenchmarkDecodeIntsDelta(b *testing.B) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(1700000000 + i)
	}
	enc := EncodeInt64s(vals)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInt64s(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeStringsDict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	words := []string{"weather", "music", "maps", "news"}
	vals := make([]string, 4096)
	for i := range vals {
		vals[i] = words[rng.Intn(len(words))]
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeStrings(vals)
	}
}

func BenchmarkDecodeStringsDict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	words := []string{"weather", "music", "maps", "news"}
	vals := make([]string, 4096)
	for i := range vals {
		vals[i] = words[rng.Intn(len(words))]
	}
	enc := EncodeStrings(vals)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeStrings(enc); err != nil {
			b.Fatal(err)
		}
	}
}
