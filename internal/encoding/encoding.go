// Package encoding implements the compression-friendly columnar encodings
// used by Feisu's block format (paper §I: "organizes data sets into
// partitions using a compression-friendly columnar format").
//
// Each encoded column chunk is self-describing: a one-byte encoding tag
// followed by the payload, so readers never need out-of-band metadata to
// decode. The encoder picks the cheapest encoding per chunk:
//
//	int64:   plain / delta-varint / run-length
//	float64: plain
//	bool:    bit-packed
//	string:  plain (length-prefixed) / dictionary
package encoding

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoding tags. The tag is the first byte of every encoded chunk.
const (
	tagPlainInt     byte = 1
	tagDeltaVarint  byte = 2
	tagRunLengthInt byte = 3
	tagPlainFloat   byte = 4
	tagPackedBool   byte = 5
	tagPlainString  byte = 6
	tagDictString   byte = 7
)

// zigzag encodes a signed int as unsigned for varint efficiency.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag reverses zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// EncodeInt64s encodes vals, choosing between plain, delta-varint and
// run-length encodings by estimated size.
func EncodeInt64s(vals []int64) []byte {
	// Estimate run-length benefit.
	runs := 0
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		runs++
		i = j
	}
	if len(vals) > 0 && runs <= len(vals)/4 {
		return encodeRunLengthInt(vals, runs)
	}
	delta := encodeDeltaVarint(vals)
	if len(delta) < 8*len(vals)+2 {
		return delta
	}
	return encodePlainInt(vals)
}

func encodePlainInt(vals []int64) []byte {
	out := make([]byte, 0, 1+binary.MaxVarintLen64+8*len(vals))
	out = append(out, tagPlainInt)
	out = appendUvarint(out, uint64(len(vals)))
	var tmp [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		out = append(out, tmp[:]...)
	}
	return out
}

func encodeDeltaVarint(vals []int64) []byte {
	out := make([]byte, 0, 1+binary.MaxVarintLen64+2*len(vals))
	out = append(out, tagDeltaVarint)
	out = appendUvarint(out, uint64(len(vals)))
	prev := int64(0)
	for _, v := range vals {
		out = appendUvarint(out, zigzag(v-prev))
		prev = v
	}
	return out
}

func encodeRunLengthInt(vals []int64, runs int) []byte {
	out := make([]byte, 0, 1+binary.MaxVarintLen64+runs*4)
	out = append(out, tagRunLengthInt)
	out = appendUvarint(out, uint64(len(vals)))
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		out = appendUvarint(out, uint64(j-i))
		out = appendUvarint(out, zigzag(vals[i]))
		i = j
	}
	return out
}

// DecodeInt64s decodes a chunk produced by EncodeInt64s.
func DecodeInt64s(data []byte) ([]int64, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("encoding: empty int chunk")
	}
	tag, data := data[0], data[1:]
	n, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, fmt.Errorf("encoding: bad int chunk length")
	}
	data = data[off:]
	out := make([]int64, 0, n)
	switch tag {
	case tagPlainInt:
		if len(data) < int(n)*8 {
			return nil, fmt.Errorf("encoding: truncated plain int chunk")
		}
		for i := uint64(0); i < n; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(data[i*8:])))
		}
	case tagDeltaVarint:
		prev := int64(0)
		for i := uint64(0); i < n; i++ {
			d, off := binary.Uvarint(data)
			if off <= 0 {
				return nil, fmt.Errorf("encoding: truncated delta chunk at %d", i)
			}
			data = data[off:]
			prev += unzigzag(d)
			out = append(out, prev)
		}
	case tagRunLengthInt:
		for uint64(len(out)) < n {
			cnt, off := binary.Uvarint(data)
			if off <= 0 {
				return nil, fmt.Errorf("encoding: truncated RLE count")
			}
			data = data[off:]
			zv, off := binary.Uvarint(data)
			if off <= 0 {
				return nil, fmt.Errorf("encoding: truncated RLE value")
			}
			data = data[off:]
			v := unzigzag(zv)
			if cnt == 0 || uint64(len(out))+cnt > n {
				return nil, fmt.Errorf("encoding: RLE run overflows chunk")
			}
			for k := uint64(0); k < cnt; k++ {
				out = append(out, v)
			}
		}
	default:
		return nil, fmt.Errorf("encoding: unexpected int tag %d", tag)
	}
	return out, nil
}

// EncodeFloat64s encodes vals as plain little-endian bits.
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 0, 1+binary.MaxVarintLen64+8*len(vals))
	out = append(out, tagPlainFloat)
	out = appendUvarint(out, uint64(len(vals)))
	var tmp [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		out = append(out, tmp[:]...)
	}
	return out
}

// DecodeFloat64s decodes a chunk produced by EncodeFloat64s.
func DecodeFloat64s(data []byte) ([]float64, error) {
	if len(data) == 0 || data[0] != tagPlainFloat {
		return nil, fmt.Errorf("encoding: not a float chunk")
	}
	n, off := binary.Uvarint(data[1:])
	if off <= 0 {
		return nil, fmt.Errorf("encoding: bad float chunk length")
	}
	payload := data[1+off:]
	if len(payload) < int(n)*8 {
		return nil, fmt.Errorf("encoding: truncated float chunk")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return out, nil
}

// EncodeBools bit-packs vals.
func EncodeBools(vals []bool) []byte {
	out := make([]byte, 0, 1+binary.MaxVarintLen64+(len(vals)+7)/8)
	out = append(out, tagPackedBool)
	out = appendUvarint(out, uint64(len(vals)))
	var cur byte
	for i, v := range vals {
		if v {
			cur |= 1 << uint(i%8)
		}
		if i%8 == 7 {
			out = append(out, cur)
			cur = 0
		}
	}
	if len(vals)%8 != 0 {
		out = append(out, cur)
	}
	return out
}

// DecodeBools decodes a chunk produced by EncodeBools.
func DecodeBools(data []byte) ([]bool, error) {
	if len(data) == 0 || data[0] != tagPackedBool {
		return nil, fmt.Errorf("encoding: not a bool chunk")
	}
	n, off := binary.Uvarint(data[1:])
	if off <= 0 {
		return nil, fmt.Errorf("encoding: bad bool chunk length")
	}
	payload := data[1+off:]
	if len(payload) < (int(n)+7)/8 {
		return nil, fmt.Errorf("encoding: truncated bool chunk")
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = payload[i/8]&(1<<uint(i%8)) != 0
	}
	return out, nil
}

// EncodeStrings encodes vals, choosing dictionary encoding when the column
// has low cardinality and plain length-prefixed encoding otherwise.
func EncodeStrings(vals []string) []byte {
	distinct := make(map[string]int)
	for _, v := range vals {
		if _, ok := distinct[v]; !ok {
			distinct[v] = len(distinct)
		}
		if len(distinct) > len(vals)/2+1 {
			break
		}
	}
	if len(vals) > 4 && len(distinct) <= len(vals)/2 {
		return encodeDictString(vals)
	}
	return encodePlainString(vals)
}

func encodePlainString(vals []string) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, v := range vals {
		size += binary.MaxVarintLen64 + len(v)
	}
	out := make([]byte, 0, size)
	out = append(out, tagPlainString)
	out = appendUvarint(out, uint64(len(vals)))
	for _, v := range vals {
		out = appendUvarint(out, uint64(len(v)))
		out = append(out, v...)
	}
	return out
}

func encodeDictString(vals []string) []byte {
	dict := make(map[string]uint64)
	var order []string
	for _, v := range vals {
		if _, ok := dict[v]; !ok {
			dict[v] = uint64(len(order))
			order = append(order, v)
		}
	}
	out := []byte{tagDictString}
	out = appendUvarint(out, uint64(len(vals)))
	out = appendUvarint(out, uint64(len(order)))
	for _, v := range order {
		out = appendUvarint(out, uint64(len(v)))
		out = append(out, v...)
	}
	for _, v := range vals {
		out = appendUvarint(out, dict[v])
	}
	return out
}

// DecodeStrings decodes a chunk produced by EncodeStrings.
func DecodeStrings(data []byte) ([]string, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("encoding: empty string chunk")
	}
	tag, data := data[0], data[1:]
	n, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, fmt.Errorf("encoding: bad string chunk length")
	}
	data = data[off:]
	readStr := func() (string, error) {
		l, off := binary.Uvarint(data)
		if off <= 0 || uint64(len(data)-off) < l {
			return "", fmt.Errorf("encoding: truncated string")
		}
		s := string(data[off : off+int(l)])
		data = data[off+int(l):]
		return s, nil
	}
	out := make([]string, 0, n)
	switch tag {
	case tagPlainString:
		for i := uint64(0); i < n; i++ {
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	case tagDictString:
		dn, off := binary.Uvarint(data)
		if off <= 0 {
			return nil, fmt.Errorf("encoding: bad dictionary size")
		}
		data = data[off:]
		dict := make([]string, 0, dn)
		for i := uint64(0); i < dn; i++ {
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			dict = append(dict, s)
		}
		for i := uint64(0); i < n; i++ {
			idx, off := binary.Uvarint(data)
			if off <= 0 {
				return nil, fmt.Errorf("encoding: truncated dict code")
			}
			data = data[off:]
			if idx >= uint64(len(dict)) {
				return nil, fmt.Errorf("encoding: dict code %d out of range", idx)
			}
			out = append(out, dict[idx])
		}
	default:
		return nil, fmt.Errorf("encoding: unexpected string tag %d", tag)
	}
	return out, nil
}
