// Package exec implements Feisu's vectorized execution operators: the leaf
// server's partition scan (block pruning, SmartIndex-assisted filtering,
// broadcast hash join, partial aggregation, WITHIN-record aggregation), the
// stem server's partial-result merging, and the master's finalization
// (output expressions over aggregates, HAVING, ORDER BY, LIMIT) — the
// bottom-up summarization of paper Fig. 3.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Env supplies column values to the expression evaluator.
type Env interface {
	// Col returns the value of a bound column; repeated columns yield
	// their first element or NULL in scalar position.
	Col(table, col string) (types.Value, error)
	// Repeated returns all per-record elements of a repeated column.
	Repeated(table, col string) ([]types.Value, error)
	// Sub returns a substitution for the whole expression (the master
	// substitutes aggregate results and group keys); ok=false descends.
	Sub(e sqlparser.Expr) (types.Value, bool)
}

// Eval evaluates a bound expression. Comparison and logic follow SQL
// three-valued semantics with NULL collapsing to "unknown"; the filter
// boundary treats unknown as false.
func Eval(e sqlparser.Expr, env Env) (types.Value, error) {
	if v, ok := env.Sub(e); ok {
		return v, nil
	}
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Value, nil
	case *sqlparser.ColumnRef:
		return env.Col(x.Table, x.Column)
	case *sqlparser.NegExpr:
		v, err := Eval(x.X, env)
		if err != nil || v.IsNull() {
			return v, err
		}
		switch v.T {
		case types.Int64:
			return types.NewInt(-v.I), nil
		case types.Float64:
			return types.NewFloat(-v.F), nil
		default:
			return types.Value{}, fmt.Errorf("exec: negation of %s", v.T)
		}
	case *sqlparser.NotExpr:
		v, err := Eval(x.X, env)
		if err != nil || v.IsNull() {
			return v, err
		}
		if v.T != types.Bool {
			return types.Value{}, fmt.Errorf("exec: NOT over %s", v.T)
		}
		return types.NewBool(!v.B), nil
	case *sqlparser.IsNullExpr:
		v, err := Eval(x.X, env)
		if err != nil {
			return types.Value{}, err
		}
		// IS [NOT] NULL is total: never unknown, unlike comparisons.
		return types.NewBool(v.IsNull() != x.Not), nil
	case *sqlparser.BinaryExpr:
		return evalBinary(x, env)
	case *sqlparser.FuncCall:
		if x.Within != nil || x.WithinRecord {
			return evalWithin(x, env)
		}
		return types.Value{}, fmt.Errorf("exec: aggregate %s in row context", x.Name)
	default:
		return types.Value{}, fmt.Errorf("exec: cannot evaluate %T", e)
	}
}

func evalBinary(x *sqlparser.BinaryExpr, env Env) (types.Value, error) {
	switch x.Op {
	case sqlparser.OpAnd, sqlparser.OpOr:
		return evalLogic(x, env)
	}
	l, err := Eval(x.L, env)
	if err != nil {
		return types.Value{}, err
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return types.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return types.NullValue(), nil
	}
	switch x.Op {
	case sqlparser.OpContains:
		if l.T != types.String || r.T != types.String {
			return types.Value{}, fmt.Errorf("exec: CONTAINS over %s and %s", l.T, r.T)
		}
		return types.NewBool(strings.Contains(l.S, r.S)), nil
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		cmp, err := types.Compare(l, r)
		if err != nil {
			return types.Value{}, err
		}
		var b bool
		switch x.Op {
		case sqlparser.OpEq:
			b = cmp == 0
		case sqlparser.OpNe:
			b = cmp != 0
		case sqlparser.OpLt:
			b = cmp < 0
		case sqlparser.OpLe:
			b = cmp <= 0
		case sqlparser.OpGt:
			b = cmp > 0
		case sqlparser.OpGe:
			b = cmp >= 0
		}
		return types.NewBool(b), nil
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv, sqlparser.OpMod:
		return evalArith(x.Op, l, r)
	default:
		return types.Value{}, fmt.Errorf("exec: unhandled operator %s", x.Op)
	}
}

// evalLogic implements three-valued AND/OR with short circuits.
func evalLogic(x *sqlparser.BinaryExpr, env Env) (types.Value, error) {
	l, err := Eval(x.L, env)
	if err != nil {
		return types.Value{}, err
	}
	if !l.IsNull() && l.T != types.Bool {
		return types.Value{}, fmt.Errorf("exec: %s over %s", x.Op, l.T)
	}
	if x.Op == sqlparser.OpAnd && !l.IsNull() && !l.B {
		return types.NewBool(false), nil
	}
	if x.Op == sqlparser.OpOr && !l.IsNull() && l.B {
		return types.NewBool(true), nil
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return types.Value{}, err
	}
	if !r.IsNull() && r.T != types.Bool {
		return types.Value{}, fmt.Errorf("exec: %s over %s", x.Op, r.T)
	}
	switch {
	case x.Op == sqlparser.OpAnd:
		if !r.IsNull() && !r.B {
			return types.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return types.NullValue(), nil
		}
		return types.NewBool(true), nil
	default: // OR
		if !r.IsNull() && r.B {
			return types.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return types.NullValue(), nil
		}
		return types.NewBool(false), nil
	}
}

func evalArith(op sqlparser.BinaryOp, l, r types.Value) (types.Value, error) {
	if !l.T.Numeric() || !r.T.Numeric() {
		return types.Value{}, fmt.Errorf("exec: arithmetic over %s and %s", l.T, r.T)
	}
	if op == sqlparser.OpDiv {
		rf := r.AsFloat()
		if rf == 0 {
			return types.NullValue(), nil // SQL-style: division by zero yields NULL
		}
		return types.NewFloat(l.AsFloat() / rf), nil
	}
	if op == sqlparser.OpMod {
		if l.T != types.Int64 || r.T != types.Int64 {
			return types.Value{}, fmt.Errorf("exec: %% needs integers")
		}
		if r.I == 0 {
			return types.NullValue(), nil
		}
		return types.NewInt(l.I % r.I), nil
	}
	if l.T == types.Float64 || r.T == types.Float64 {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case sqlparser.OpAdd:
			return types.NewFloat(lf + rf), nil
		case sqlparser.OpSub:
			return types.NewFloat(lf - rf), nil
		default:
			return types.NewFloat(lf * rf), nil
		}
	}
	switch op {
	case sqlparser.OpAdd:
		return types.NewInt(l.I + r.I), nil
	case sqlparser.OpSub:
		return types.NewInt(l.I - r.I), nil
	default:
		return types.NewInt(l.I * r.I), nil
	}
}

// evalWithin computes a per-record aggregate over a repeated field (paper
// §III-A: "aggr_func(expr3) WITHIN expr4"). Feisu's flattening keeps one
// repetition level, so WITHIN <path> and WITHIN RECORD share record scope.
func evalWithin(x *sqlparser.FuncCall, env Env) (types.Value, error) {
	col, ok := x.Args[0].(*sqlparser.ColumnRef)
	if !ok {
		return types.Value{}, fmt.Errorf("exec: WITHIN aggregate needs a column argument")
	}
	vals, err := env.Repeated(col.Table, col.Column)
	if err != nil {
		return types.Value{}, err
	}
	var cell Cell
	for _, v := range vals {
		cell.Update(v, false)
	}
	return cell.Final(x.Name)
}

// EvalBool evaluates a boolean expression at the filter boundary: NULL and
// unknown collapse to false.
func EvalBool(e sqlparser.Expr, env Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	return v.T == types.Bool && v.B, nil
}
