package exec

import (
	"testing"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// pruneColumn builds an int column (v==nullMark rows become NULL) and its
// computed stats, so every table entry is checked against the real stats a
// block footer would carry (bloom included).
func pruneColumn(vals []int64, nulls []int) (*colstore.Column, colstore.Stats) {
	c := &colstore.Column{Type: types.Int64, Ints: append([]int64(nil), vals...)}
	if len(nulls) > 0 {
		c.Nulls = bitmap.New(len(vals))
		for _, i := range nulls {
			c.Nulls.Set(i)
			c.Ints[i] = 0
		}
	}
	return c, c.ComputeStats()
}

// anyRowMatches is the ground truth pruning must never contradict.
func anyRowMatches(a plan.Atom, c *colstore.Column) bool {
	for r := 0; r < c.Len(); r++ {
		if plan.EvalAtom(a, c.Value(r)) {
			return true
		}
	}
	return false
}

// TestAtomImpossibleBoundaries drives every operator across the boundary
// probes (below min, ==min, interior, ==max, above max, NULL literal,
// incomparable literal) over plain, mixed-NULL, constant and all-NULL
// chunks. Each case asserts both the expected pruning decision and — the
// safety property — that a pruned atom really matches no row.
func TestAtomImpossibleBoundaries(t *testing.T) {
	plain, plainStats := pruneColumn([]int64{2, 4, 7}, nil)               // min 2, max 7
	mixed, mixedStats := pruneColumn([]int64{2, 0, 4, 7, 0}, []int{1, 4}) // same range + NULLs
	constant, constantStats := pruneColumn([]int64{5, 0, 5}, []int{1})    // min==max==5 + NULL
	allNull, allNullStats := pruneColumn([]int64{0, 0}, []int{0, 1})      // no non-NULL value
	chunks := []struct {
		name  string
		col   *colstore.Column
		stats colstore.Stats
	}{
		{"plain", plain, plainStats},
		{"mixed-null", mixed, mixedStats},
		{"constant", constant, constantStats},
		{"all-null", allNull, allNullStats},
	}

	ops := []struct {
		op   sqlparser.BinaryOp
		name string
		// want[probe] is the expected pruning decision on the plain and
		// mixed-null chunks (range 2..7), probes below/min/interior/max/above.
		want [5]bool
	}{
		{sqlparser.OpEq, "=", [5]bool{true, false, false, false, true}},
		{sqlparser.OpNe, "!=", [5]bool{false, false, false, false, false}},
		{sqlparser.OpLt, "<", [5]bool{true, true, false, false, false}},
		{sqlparser.OpLe, "<=", [5]bool{true, false, false, false, false}},
		{sqlparser.OpGt, ">", [5]bool{false, false, false, true, true}},
		{sqlparser.OpGe, ">=", [5]bool{false, false, false, false, true}},
	}
	probes := []int64{1, 2, 4, 7, 9} // below, ==min, interior, ==max, above

	for _, ch := range chunks {
		for _, o := range ops {
			for pi, probe := range probes {
				a := plan.Atom{Table: "t", Col: "c", Op: o.op, Val: types.NewInt(probe)}
				got := atomImpossible(a, ch.stats)
				if got && anyRowMatches(a, ch.col) {
					t.Fatalf("%s: pruned c %s %d but a row matches", ch.name, o.name, probe)
				}
				switch ch.name {
				case "plain", "mixed-null":
					// NULL rows must not change range-pruning decisions:
					// they satisfy no comparison.
					if got != o.want[pi] {
						t.Errorf("%s: c %s %d pruned=%v, want %v", ch.name, o.name, probe, got, o.want[pi])
					}
				case "all-null":
					if !got {
						t.Errorf("all-null: c %s %d not pruned", o.name, probe)
					}
				}
			}
			// NULL literal matches nothing for any operator.
			a := plan.Atom{Table: "t", Col: "c", Op: o.op, Val: types.NullValue()}
			if !atomImpossible(a, ch.stats) {
				t.Errorf("%s: c %s NULL not pruned", ch.name, o.name)
			}
		}
	}

	// != prunes exactly the constant chunk at the constant value.
	ne := func(v int64) plan.Atom {
		return plan.Atom{Table: "t", Col: "c", Op: sqlparser.OpNe, Val: types.NewInt(v)}
	}
	if !atomImpossible(ne(5), constantStats) {
		t.Error("constant chunk: c != 5 should be pruned (min==max==5, NULLs match nothing)")
	}
	if atomImpossible(ne(6), constantStats) {
		t.Error("constant chunk: c != 6 must not be pruned")
	}

	// Negated atoms: never range-pruned on chunks with values (the stats
	// cannot see what the negation misses), but an all-NULL chunk prunes
	// even negations — EvalAtom rejects NULL before the negation applies.
	notContains := plan.Atom{Table: "t", Col: "c", Op: sqlparser.OpContains, Negated: true, Val: types.NewString("x")}
	if atomImpossible(notContains, plainStats) {
		t.Error("NOT CONTAINS pruned on a chunk with values")
	}
	if !atomImpossible(notContains, allNullStats) {
		t.Error("NOT CONTAINS not pruned on an all-NULL chunk")
	}

	// Incomparable literal: stats prove nothing, no pruning.
	if atomImpossible(plan.Atom{Table: "t", Col: "c", Op: sqlparser.OpLt, Val: types.NewString("z")}, plainStats) {
		t.Error("incomparable literal pruned")
	}

	// Bloom: equality on a value inside the range but absent from the chunk.
	if !atomImpossible(plan.Atom{Table: "t", Col: "c", Op: sqlparser.OpEq, Val: types.NewInt(3)}, plainStats) {
		t.Error("bloom should prune c = 3 (in range 2..7 but absent)")
	}
}

// TestClauseImpossible: a clause is pruned only when every OR-leaf is
// impossible and nothing opaque hides in it.
func TestClauseImpossible(t *testing.T) {
	_, stats := pruneColumn([]int64{2, 4, 7}, nil)
	s := &scanner{colIdx: map[string]int{"c": 0}}
	bm := colstore.BlockMeta{Stats: colstore.BlockStats{NumRows: 3, Columns: []colstore.Stats{stats}}}

	below := plan.Atom{Table: "t", Col: "c", Op: sqlparser.OpLt, Val: types.NewInt(2)}
	inside := plan.Atom{Table: "t", Col: "c", Op: sqlparser.OpEq, Val: types.NewInt(4)}

	if !s.clauseImpossible(plan.Clause{Atoms: []plan.Atom{below}}, bm) {
		t.Error("clause with a single impossible atom not pruned")
	}
	if s.clauseImpossible(plan.Clause{Atoms: []plan.Atom{below, inside}}, bm) {
		t.Error("OR with a satisfiable leaf was pruned")
	}
	if s.clauseImpossible(plan.Clause{}, bm) {
		t.Error("empty clause pruned")
	}
	if s.clauseImpossible(plan.Clause{Atoms: []plan.Atom{below}, Opaque: []sqlparser.Expr{&sqlparser.Literal{}}}, bm) {
		t.Error("clause with an opaque leaf pruned")
	}
	// Unknown column: stats unavailable, no pruning.
	unknown := plan.Atom{Table: "t", Col: "zz", Op: sqlparser.OpLt, Val: types.NewInt(2)}
	if s.clauseImpossible(plan.Clause{Atoms: []plan.Atom{unknown}}, bm) {
		t.Error("clause over unknown column pruned")
	}
}
