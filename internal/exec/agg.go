package exec

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Cell is the mergeable partial state of one aggregate: it carries enough
// for COUNT, SUM, MIN, MAX and AVG simultaneously, so leaves compute
// partials once, stems merge them, and the master finalizes (paper Fig. 3's
// bottom-up summarization).
type Cell struct {
	Count int64
	SumI  int64
	SumF  float64
	Float bool // sum has been promoted to float
	Min   types.Value
	Max   types.Value
}

// Update folds one input value. star marks COUNT(*) semantics: every row
// counts regardless of v.
func (c *Cell) Update(v types.Value, star bool) {
	if star {
		c.Count++
		return
	}
	if v.IsNull() {
		return
	}
	c.Count++
	switch v.T {
	case types.Int64:
		if c.Float {
			c.SumF += float64(v.I)
		} else {
			c.SumI += v.I
		}
	case types.Float64:
		if !c.Float {
			c.Float = true
			c.SumF = float64(c.SumI)
			c.SumI = 0
		}
		c.SumF += v.F
	}
	if c.Min.IsNull() {
		c.Min, c.Max = v, v
		return
	}
	if cmp, err := types.Compare(v, c.Min); err == nil && cmp < 0 {
		c.Min = v
	}
	if cmp, err := types.Compare(v, c.Max); err == nil && cmp > 0 {
		c.Max = v
	}
}

// Merge folds another partial cell into c.
func (c *Cell) Merge(o Cell) {
	c.Count += o.Count
	switch {
	case c.Float || o.Float:
		if !c.Float {
			c.SumF = float64(c.SumI)
			c.SumI = 0
			c.Float = true
		}
		c.SumF += o.SumF + float64(o.SumI)
	default:
		c.SumI += o.SumI
	}
	if !o.Min.IsNull() {
		if c.Min.IsNull() {
			c.Min, c.Max = o.Min, o.Max
		} else {
			if cmp, err := types.Compare(o.Min, c.Min); err == nil && cmp < 0 {
				c.Min = o.Min
			}
			if cmp, err := types.Compare(o.Max, c.Max); err == nil && cmp > 0 {
				c.Max = o.Max
			}
		}
	}
}

// Final produces the aggregate's value.
func (c *Cell) Final(fn string) (types.Value, error) {
	switch fn {
	case "COUNT":
		return types.NewInt(c.Count), nil
	case "SUM":
		if c.Count == 0 {
			return types.NullValue(), nil
		}
		if c.Float {
			return types.NewFloat(c.SumF), nil
		}
		return types.NewInt(c.SumI), nil
	case "AVG":
		if c.Count == 0 {
			return types.NullValue(), nil
		}
		sum := c.SumF
		if !c.Float {
			sum = float64(c.SumI)
		}
		return types.NewFloat(sum / float64(c.Count)), nil
	case "MIN":
		return c.Min, nil
	case "MAX":
		return c.Max, nil
	default:
		return types.Value{}, fmt.Errorf("exec: unknown aggregate %q", fn)
	}
}

// Group is one grouping key with its aggregate cells (aligned with the
// plan's AggSpecs).
type Group struct {
	Keys  []types.Value
	Cells []Cell
}

// Groups is a partial aggregation result, keyed by encoded group key.
type Groups struct {
	NumAggs int
	M       map[string]*Group
}

// NewGroups returns an empty partial result for numAggs aggregate specs.
func NewGroups(numAggs int) *Groups {
	return &Groups{NumAggs: numAggs, M: make(map[string]*Group)}
}

// GroupKey encodes key values into a map key. Each element is
// self-delimiting (type byte, uvarint length, rendered value), so the
// encoding is injective: no value containing a separator-like byte can make
// two distinct key tuples collide (a NUL-joined encoding merged groups like
// ["a\x00","b"] and ["a","\x00b"]).
func GroupKey(keys []types.Value) string {
	if len(keys) == 0 {
		return ""
	}
	var sb strings.Builder
	var lenBuf [binary.MaxVarintLen64]byte
	for _, k := range keys {
		sb.WriteByte(byte(k.T))
		s := k.String()
		sb.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(s)))])
		sb.WriteString(s)
	}
	return sb.String()
}

// Get returns (creating if needed) the group for the keys.
func (g *Groups) Get(keys []types.Value) *Group {
	k := GroupKey(keys)
	grp, ok := g.M[k]
	if !ok {
		kc := make([]types.Value, len(keys))
		copy(kc, keys)
		grp = &Group{Keys: kc, Cells: make([]Cell, g.NumAggs)}
		g.M[k] = grp
	}
	return grp
}

// Merge folds another partial result into g (the stem server's job).
func (g *Groups) Merge(o *Groups) {
	for k, og := range o.M {
		grp, ok := g.M[k]
		if !ok {
			g.M[k] = og
			continue
		}
		for i := range grp.Cells {
			grp.Cells[i].Merge(og.Cells[i])
		}
	}
}

// UpdateRow folds one joined row into the group state: group keys and
// aggregate arguments are evaluated against env.
func (g *Groups) UpdateRow(groupBy []sqlparser.Expr, aggs []plan.AggSpec, env Env) error {
	keys := make([]types.Value, len(groupBy))
	for i, expr := range groupBy {
		v, err := Eval(expr, env)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	grp := g.Get(keys)
	for i, spec := range aggs {
		if spec.Star {
			grp.Cells[i].Update(types.Value{}, true)
			continue
		}
		v, err := Eval(spec.Arg, env)
		if err != nil {
			return err
		}
		grp.Cells[i].Update(v, false)
	}
	return nil
}
