package exec

import (
	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Vectorized predicate kernels: simple comparison atoms (=, !=, <, <=, >, >=
// over INT/FLOAT/STRING columns) are evaluated for a whole column chunk in
// one tight typed loop that accumulates match bits in a register word,
// instead of boxing every row into a types.Value and walking the expression
// tree. The kernels are exact drop-in replacements for the row-at-a-time
// path: NULL rows never match, and float comparisons reproduce
// types.Compare's ordering (including its NaN-compares-equal collapse) by
// being written in terms of < and > only.

// evalAtomKernel evaluates the atom over a flat (non-repeated) column in a
// typed loop. ok=false means the caller must fall back to the row-wise path
// (repeated columns, CONTAINS, negated atoms, boolean operands, or a length
// mismatch). A type pairing that types.Compare rejects matches no row, so it
// yields an all-false bitmap — exactly what per-row EvalAtom produces.
func evalAtomKernel(a plan.Atom, col *colstore.Column, n int) (*bitmap.Bitmap, bool) {
	if a.Negated || a.Op == sqlparser.OpContains || col.Offsets != nil || col.Len() != n {
		return nil, false
	}
	if col.Nulls != nil && col.Nulls.Len() != n {
		return nil, false
	}
	switch a.Op {
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
	default:
		return nil, false
	}
	if a.Val.IsNull() {
		// EvalAtom is false for every row against a NULL literal.
		return bitmap.New(n), true
	}
	out := bitmap.New(n)
	switch col.Type {
	case types.Int64:
		switch a.Val.T {
		case types.Int64:
			kernelCompare(col.Ints, a.Val.I, a.Op, out)
		case types.Float64:
			kernelCompareIntFloat(col.Ints, a.Val.F, a.Op, out)
		default:
			// Incomparable literal: no row matches.
		}
	case types.Float64:
		if a.Val.T.Numeric() {
			kernelCompare(col.Floats, a.Val.AsFloat(), a.Op, out)
		}
	case types.String:
		if a.Val.T == types.String {
			kernelCompare(col.Strs, a.Val.S, a.Op, out)
		}
	default:
		return nil, false // booleans keep the row-wise path
	}
	if col.Nulls != nil {
		// Values at NULL positions are zero-filled and may have matched;
		// NULL satisfies no comparison.
		out.AndNot(col.Nulls)
	}
	return out, true
}

// kernelCompare runs one comparison over the whole value slice, flushing
// match bits a word at a time. The predicates are expressed with < and >
// only so that float semantics match types.Compare exactly: NaN is neither
// below nor above any value, which Compare collapses to "equal".
func kernelCompare[T int64 | float64 | string](vals []T, v T, op sqlparser.BinaryOp, out *bitmap.Bitmap) {
	var w uint64
	wi := 0
	flush := func(i int) {
		if i&63 == 63 {
			out.SetWord(wi, w)
			wi++
			w = 0
		}
	}
	switch op {
	case sqlparser.OpEq:
		for i, x := range vals {
			if !(x < v) && !(x > v) {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpNe:
		for i, x := range vals {
			if x < v || x > v {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpLt:
		for i, x := range vals {
			if x < v {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpLe:
		for i, x := range vals {
			if !(x > v) {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpGt:
		for i, x := range vals {
			if x > v {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpGe:
		for i, x := range vals {
			if !(x < v) {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	}
	if len(vals)&63 != 0 {
		out.SetWord(wi, w)
	}
}

// kernelCompareIntFloat compares an INT column against a FLOAT literal in
// the float domain, mirroring types.Compare's mixed-numeric promotion.
func kernelCompareIntFloat(vals []int64, v float64, op sqlparser.BinaryOp, out *bitmap.Bitmap) {
	var w uint64
	wi := 0
	flush := func(i int) {
		if i&63 == 63 {
			out.SetWord(wi, w)
			wi++
			w = 0
		}
	}
	switch op {
	case sqlparser.OpEq:
		for i, x := range vals {
			f := float64(x)
			if !(f < v) && !(f > v) {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpNe:
		for i, x := range vals {
			f := float64(x)
			if f < v || f > v {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpLt:
		for i, x := range vals {
			if float64(x) < v {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpLe:
		for i, x := range vals {
			if !(float64(x) > v) {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpGt:
		for i, x := range vals {
			if float64(x) > v {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	case sqlparser.OpGe:
		for i, x := range vals {
			if !(float64(x) < v) {
				w |= 1 << uint(i&63)
			}
			flush(i)
		}
	}
	if len(vals)&63 != 0 {
		out.SetWord(wi, w)
	}
}
