package exec

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Shuffle operators: the reducer side of a hash-partitioned repartition.
// Map tasks (ordinary RunTaskModel scans over the planner's derived
// sub-plans) emit rows laid out as [key values..., shipped columns...];
// leaves route each row to a partition with ShufflePartition; the reducer
// owning a partition pushes the staged rows through a PartitionedHashJoin
// (repartition joins) or a PartitionedAgg (group-by shuffles). Operators
// take a memory grant and grace-hash spill to a SpillStore when the
// resident build state outgrows it; spill I/O is charged through
// sim.Bill.ChargeSpill so tests can assert billed bytes == written bytes.

// spillFanout is the grace-hash sub-bucket count per spill level.
const spillFanout = 4

// maxSpillDepth bounds grace-hash recursion: an overflowing sub-bucket is
// re-partitioned at most once more; beyond that it is processed in memory
// regardless of the grant (matching one-level recursive grace hash).
const maxSpillDepth = 1

// hashPartKey maps an encoded group key to a partition. The salt separates
// the shuffle's routing hash from the grace-hash bucket hashes so a spill
// level does not degenerate into a single bucket.
func hashPartKey(key string, salt uint64, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], salt)
	h.Write(b[:])
	io.WriteString(h, key)
	return int(h.Sum64() % uint64(parts))
}

// ShufflePartition routes one map-output row: hash of the leading `keys`
// values, modulo `parts`. Deterministic across processes and retries.
func ShufflePartition(row []types.Value, keys, parts int) int {
	return hashPartKey(GroupKey(row[:keys]), 0, parts)
}

// GroupShufflePartition routes one partial group by its key values.
func GroupShufflePartition(keys []types.Value, parts int) int {
	return hashPartKey(GroupKey(keys), 0, parts)
}

// SpillStore persists row chunks for grace-hash spilling. Implementations
// must return exactly the rows written for a handle, in order.
type SpillStore interface {
	Write(rows [][]types.Value) (handle string, bytes int64, err error)
	Read(handle string) (rows [][]types.Value, bytes int64, err error)
}

// MemSpillStore is an in-memory SpillStore for tests and local execution.
type MemSpillStore struct {
	chunks  map[string][][]types.Value
	sizes   map[string]int64
	next    int
	Written int64 // total bytes accepted, for billing assertions
}

// NewMemSpillStore returns an empty in-memory spill store.
func NewMemSpillStore() *MemSpillStore {
	return &MemSpillStore{chunks: make(map[string][][]types.Value), sizes: make(map[string]int64)}
}

// Write implements SpillStore.
func (m *MemSpillStore) Write(rows [][]types.Value) (string, int64, error) {
	var n int64
	for _, r := range rows {
		n += estimateRow(r)
	}
	h := fmt.Sprintf("mem-%d", m.next)
	m.next++
	m.chunks[h] = rows
	m.sizes[h] = n
	m.Written += n
	return h, n, nil
}

// Read implements SpillStore.
func (m *MemSpillStore) Read(handle string) ([][]types.Value, int64, error) {
	rows, ok := m.chunks[handle]
	if !ok {
		return nil, 0, fmt.Errorf("exec: unknown spill chunk %q", handle)
	}
	return rows, m.sizes[handle], nil
}

// ShuffleBilling carries the cost hooks shared by the shuffle operators.
// Model/Bill may be nil (no accounting); OnSpill, when set, observes each
// spill write (the cluster layer turns it into shuffle.spill events).
type ShuffleBilling struct {
	Model   *sim.CostModel
	Bill    *sim.Bill
	OnSpill func(bytes int64)
}

func (b ShuffleBilling) chargeSpill(n int64) {
	if b.Bill != nil && b.Model != nil {
		b.Bill.ChargeSpill(b.Model, sim.DeviceHDD, n)
	}
	if b.OnSpill != nil {
		b.OnSpill(n)
	}
}

func (b ShuffleBilling) chargeReadBack(n int64) {
	if b.Bill != nil && b.Model != nil {
		b.Bill.ChargeRead(b.Model, sim.DeviceHDD, n)
	}
}

// shuffleEnv evaluates reducer-side expressions over one joined row: shipped
// probe and build columns resolved by name, NULL for the null-extended side
// of an outer join. Repeated columns never cross a shuffle (the planner
// rejects WITHIN), so Repeated always errors.
type shuffleEnv struct {
	cols map[plan.ColRef]types.Value
}

func (e *shuffleEnv) Col(table, col string) (types.Value, error) {
	v, ok := e.cols[plan.ColRef{Table: table, Col: col}]
	if !ok {
		return types.Value{}, fmt.Errorf("exec: column %s.%s not shipped through shuffle", table, col)
	}
	return v, nil
}

func (e *shuffleEnv) Repeated(table, col string) ([]types.Value, error) {
	return nil, fmt.Errorf("exec: repeated column %s.%s cannot cross a shuffle", table, col)
}

func (e *shuffleEnv) Sub(sqlparser.Expr) (types.Value, bool) { return types.Value{}, false }

// clauseTrue evaluates one CNF clause (disjunction of atoms and opaque
// expressions) under the filter boundary's unknown-is-false rule.
func clauseTrue(cl plan.Clause, env Env) (bool, error) {
	for _, a := range cl.Atoms {
		v, err := env.Col(a.Table, a.Col)
		if err != nil {
			return false, err
		}
		if plan.EvalAtom(a, v) {
			return true, nil
		}
	}
	for _, op := range cl.Opaque {
		ok, err := EvalBool(op, env)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// joinState sequences the operator's push protocol.
type joinState int

const (
	stateBuild joinState = iota
	stateProbe
	stateFlushed
)

// PartitionedHashJoin joins one shuffle partition: PushBuild all build-side
// rows, then PushProbe the probe-side rows, then Flush. The build hash
// table lives under the memory grant; on overflow the operator grace-hash
// partitions build AND probe rows into spill sub-buckets and joins them
// bucket-by-bucket at Flush. Results are identical either way, and
// deterministic: buckets are processed in fixed order and right-outer
// unmatched rows are emitted in build arrival order.
type PartitionedHashJoin struct {
	p       *plan.PhysicalPlan
	sh      *plan.ShuffleSpec
	grant   int64
	spill   SpillStore
	billing ShuffleBilling

	state joinState
	// in-memory build side
	build [][]types.Value
	table map[string][]int
	bytes int64
	// right-outer match tracking for the in-memory path
	matched []bool
	// spill state: per sub-bucket chunk handles
	spilled      bool
	buildChunks  [][]string
	probeChunks  [][]string
	SpilledBytes int64

	out *TaskResult
}

// NewPartitionedHashJoin builds the reducer join operator for one partition
// of the plan's shuffle. A nil spill store disables spilling (the grant is
// ignored); grant <= 0 with a store spills immediately.
func NewPartitionedHashJoin(p *plan.PhysicalPlan, spill SpillStore, billing ShuffleBilling) *PartitionedHashJoin {
	j := &PartitionedHashJoin{
		p:       p,
		sh:      p.Shuffle,
		grant:   p.Shuffle.MemoryGrant,
		spill:   spill,
		billing: billing,
		table:   make(map[string][]int),
		out:     &TaskResult{},
	}
	if p.Mode == plan.ModeAgg {
		j.out.Groups = NewGroups(len(p.Aggs))
	}
	return j
}

// PushBuild stages build-side rows ([keys..., build ship columns...]).
func (j *PartitionedHashJoin) PushBuild(rows [][]types.Value) error {
	if j.state != stateBuild {
		return fmt.Errorf("exec: PushBuild after probe phase started")
	}
	if j.spilled {
		return j.spillRows(rows, &j.buildChunks)
	}
	for _, r := range rows {
		j.build = append(j.build, r)
		j.bytes += estimateRow(r)
	}
	if j.spill != nil && j.bytes > j.grant {
		// Grace-hash overflow: move the whole resident build side out.
		j.spilled = true
		j.buildChunks = make([][]string, spillFanout)
		j.probeChunks = make([][]string, spillFanout)
		staged := j.build
		j.build, j.bytes = nil, 0
		if err := j.spillRows(staged, &j.buildChunks); err != nil {
			return err
		}
	}
	return nil
}

// PushProbe streams probe-side rows; the build side is implicitly complete
// after the first call. In-memory builds join immediately; spilled builds
// buffer the probe rows into matching sub-buckets.
func (j *PartitionedHashJoin) PushProbe(rows [][]types.Value) error {
	switch j.state {
	case stateFlushed:
		return fmt.Errorf("exec: PushProbe after Flush")
	case stateBuild:
		j.state = stateProbe
		if !j.spilled {
			j.indexBuild()
		}
	}
	if j.spilled {
		return j.spillRows(rows, &j.probeChunks)
	}
	for _, r := range rows {
		if err := j.probeRow(j.table, j.build, j.matched, r); err != nil {
			return err
		}
	}
	return nil
}

// Flush completes the join and returns the partition's result. For spilled
// operators this is where the sub-buckets are read back and joined.
func (j *PartitionedHashJoin) Flush() (*TaskResult, error) {
	if j.state == stateFlushed {
		return nil, fmt.Errorf("exec: double Flush")
	}
	if j.state == stateBuild && !j.spilled {
		j.indexBuild()
	}
	j.state = stateFlushed
	if !j.spilled {
		if err := j.emitRightUnmatched(j.build, j.matched); err != nil {
			return nil, err
		}
		return j.out, nil
	}
	for b := 0; b < spillFanout; b++ {
		build, err := j.readChunks(j.buildChunks[b])
		if err != nil {
			return nil, err
		}
		probe, err := j.readChunks(j.probeChunks[b])
		if err != nil {
			return nil, err
		}
		if err := j.joinBucket(build, probe, 1); err != nil {
			return nil, err
		}
	}
	return j.out, nil
}

func (j *PartitionedHashJoin) indexBuild() {
	for i, r := range j.build {
		k := GroupKey(r[:j.sh.Keys])
		j.table[k] = append(j.table[k], i)
	}
	if j.sh.JoinType == sqlparser.JoinRightOuter {
		j.matched = make([]bool, len(j.build))
	}
}

// spillRows partitions a batch by grace hash (salt 1) and writes one chunk
// per non-empty sub-bucket.
func (j *PartitionedHashJoin) spillRows(rows [][]types.Value, chunks *[][]string) error {
	parts := make([][][]types.Value, spillFanout)
	for _, r := range rows {
		b := hashPartKey(GroupKey(r[:j.sh.Keys]), 1, spillFanout)
		parts[b] = append(parts[b], r)
	}
	for b, p := range parts {
		if len(p) == 0 {
			continue
		}
		h, n, err := j.spill.Write(p)
		if err != nil {
			return err
		}
		(*chunks)[b] = append((*chunks)[b], h)
		j.SpilledBytes += n
		j.billing.chargeSpill(n)
	}
	return nil
}

func (j *PartitionedHashJoin) readChunks(handles []string) ([][]types.Value, error) {
	var rows [][]types.Value
	for _, h := range handles {
		chunk, n, err := j.spill.Read(h)
		if err != nil {
			return nil, err
		}
		j.billing.chargeReadBack(n)
		rows = append(rows, chunk...)
	}
	return rows, nil
}

// joinBucket joins one grace-hash sub-bucket, recursing one more level if
// the bucket's build side still exceeds the grant.
func (j *PartitionedHashJoin) joinBucket(build, probe [][]types.Value, depth int) error {
	if depth <= maxSpillDepth {
		var n int64
		for _, r := range build {
			n += estimateRow(r)
		}
		if n > j.grant {
			// Re-partition with the next salt level; sub-sub-buckets are
			// joined unconditionally (one-level recursion).
			salt := uint64(depth + 1)
			bparts := make([][][]types.Value, spillFanout)
			pparts := make([][][]types.Value, spillFanout)
			for _, r := range build {
				b := hashPartKey(GroupKey(r[:j.sh.Keys]), salt, spillFanout)
				bparts[b] = append(bparts[b], r)
			}
			for _, r := range probe {
				b := hashPartKey(GroupKey(r[:j.sh.Keys]), salt, spillFanout)
				pparts[b] = append(pparts[b], r)
			}
			for b := 0; b < spillFanout; b++ {
				if err := j.joinBucket(bparts[b], pparts[b], depth+1); err != nil {
					return err
				}
			}
			return nil
		}
	}
	table := make(map[string][]int, len(build))
	for i, r := range build {
		k := GroupKey(r[:j.sh.Keys])
		table[k] = append(table[k], i)
	}
	var matched []bool
	if j.sh.JoinType == sqlparser.JoinRightOuter {
		matched = make([]bool, len(build))
	}
	for _, r := range probe {
		if err := j.probeRow(table, build, matched, r); err != nil {
			return err
		}
	}
	return j.emitRightUnmatched(build, matched)
}

// probeRow joins one probe row against a build table. NULL key values never
// join (SQL equality is unknown); LEFT OUTER preserves the probe row with a
// null-extended build side.
func (j *PartitionedHashJoin) probeRow(table map[string][]int, build [][]types.Value, matched []bool, row []types.Value) error {
	nullKey := false
	for _, v := range row[:j.sh.Keys] {
		if v.IsNull() {
			nullKey = true
			break
		}
	}
	var cands []int
	if !nullKey {
		cands = table[GroupKey(row[:j.sh.Keys])]
	}
	any := false
	for _, bi := range cands {
		env := j.envFor(row, build[bi])
		ok, err := j.residualOK(env)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		any = true
		if matched != nil {
			matched[bi] = true
		}
		if err := j.emit(env); err != nil {
			return err
		}
	}
	if !any && j.sh.JoinType == sqlparser.JoinLeftOuter {
		return j.emit(j.envFor(row, nil))
	}
	return nil
}

// emitRightUnmatched null-extends build rows no probe row matched, in build
// arrival order (determinism).
func (j *PartitionedHashJoin) emitRightUnmatched(build [][]types.Value, matched []bool) error {
	if j.sh.JoinType != sqlparser.JoinRightOuter || matched == nil {
		return nil
	}
	for i, ok := range matched {
		if ok {
			continue
		}
		if err := j.emit(j.envFor(nil, build[i])); err != nil {
			return err
		}
	}
	return nil
}

// envFor lays out one joined row. A nil probe or build side null-extends
// its shipped columns (outer-join preservation).
func (j *PartitionedHashJoin) envFor(probe, build []types.Value) *shuffleEnv {
	cols := make(map[plan.ColRef]types.Value, len(j.sh.ProbeCols)+len(j.sh.BuildCols))
	for i, r := range j.sh.ProbeCols {
		if probe == nil {
			cols[r] = types.NullValue()
		} else {
			cols[r] = probe[j.sh.Keys+i]
		}
	}
	for i, r := range j.sh.BuildCols {
		if build == nil {
			cols[r] = types.NullValue()
		} else {
			cols[r] = build[j.sh.Keys+i]
		}
	}
	return &shuffleEnv{cols: cols}
}

func (j *PartitionedHashJoin) residualOK(env Env) (bool, error) {
	for _, cl := range j.sh.Residual {
		ok, err := clauseTrue(cl, env)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// emit applies the top plan's post-join clauses, then either folds the row
// into the partial aggregation or projects the output expressions —
// mirroring the broadcast scanner's emitJoined.
func (j *PartitionedHashJoin) emit(env Env) error {
	for _, cl := range j.p.Post {
		ok, err := clauseTrue(cl, env)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	j.out.Stats.RowsEmitted++
	if j.p.Mode == plan.ModeAgg {
		return j.out.Groups.UpdateRow(j.p.GroupBy, j.p.Aggs, env)
	}
	row := make([]types.Value, len(j.p.A.Outputs))
	for i, oi := range j.p.A.Outputs {
		v, err := Eval(oi.Expr, env)
		if err != nil {
			return err
		}
		row[i] = v
	}
	j.out.Rows = append(j.out.Rows, row)
	return nil
}

// PartitionedAgg merges one shuffle partition's partial groups under a
// memory grant: Push partial Groups (from map tasks), Flush the merged
// result. On overflow the resident groups are grace-hash spilled by group
// key and re-merged bucket-by-bucket at Flush; since buckets partition the
// key space, the union of bucket merges is exactly the in-memory answer.
type PartitionedAgg struct {
	numAggs int
	grant   int64
	spill   SpillStore
	billing ShuffleBilling

	mem     *Groups
	bytes   int64
	spilled bool
	chunks  [][]string
	flushed bool

	SpilledBytes int64
}

// NewPartitionedAgg builds the reducer merge operator for one partition of
// a group-by shuffle. A nil spill store disables spilling.
func NewPartitionedAgg(numAggs int, grant int64, spill SpillStore, billing ShuffleBilling) *PartitionedAgg {
	return &PartitionedAgg{
		numAggs: numAggs,
		grant:   grant,
		spill:   spill,
		billing: billing,
		mem:     NewGroups(numAggs),
	}
}

// Push folds one map task's partial groups into the partition state.
func (a *PartitionedAgg) Push(g *Groups) error {
	if a.flushed {
		return fmt.Errorf("exec: Push after Flush")
	}
	if a.spilled {
		return a.spillGroups(g)
	}
	for k, og := range g.M {
		grp, ok := a.mem.M[k]
		if !ok {
			kc := make([]types.Value, len(og.Keys))
			copy(kc, og.Keys)
			cc := make([]Cell, len(og.Cells))
			copy(cc, og.Cells)
			a.mem.M[k] = &Group{Keys: kc, Cells: cc}
			a.bytes += estimateRow(og.Keys) + int64(len(og.Cells))*48
			continue
		}
		for i := range grp.Cells {
			grp.Cells[i].Merge(og.Cells[i])
		}
	}
	if a.spill != nil && a.bytes > a.grant {
		a.spilled = true
		a.chunks = make([][]string, spillFanout)
		staged := a.mem
		a.mem, a.bytes = NewGroups(a.numAggs), 0
		return a.spillGroups(staged)
	}
	return nil
}

// Flush returns the partition's fully merged groups.
func (a *PartitionedAgg) Flush() (*Groups, error) {
	if a.flushed {
		return nil, fmt.Errorf("exec: double Flush")
	}
	a.flushed = true
	if !a.spilled {
		return a.mem, nil
	}
	out := NewGroups(a.numAggs)
	for b := 0; b < spillFanout; b++ {
		bucket := NewGroups(a.numAggs)
		for _, h := range a.chunks[b] {
			rows, n, err := a.spill.Read(h)
			if err != nil {
				return nil, err
			}
			a.billing.chargeReadBack(n)
			for _, row := range rows {
				grp, err := decodeGroupRow(row, a.numAggs)
				if err != nil {
					return nil, err
				}
				mg := bucket.Get(grp.Keys)
				for i := range mg.Cells {
					mg.Cells[i].Merge(grp.Cells[i])
				}
			}
		}
		out.Merge(bucket)
	}
	return out, nil
}

// spillGroups encodes groups as rows, partitions them by group key (salt 1)
// and writes one chunk per non-empty sub-bucket.
func (a *PartitionedAgg) spillGroups(g *Groups) error {
	parts := make([][][]types.Value, spillFanout)
	for k, grp := range g.M {
		b := hashPartKey(k, 1, spillFanout)
		parts[b] = append(parts[b], encodeGroupRow(grp))
	}
	for b, p := range parts {
		if len(p) == 0 {
			continue
		}
		h, n, err := a.spill.Write(p)
		if err != nil {
			return err
		}
		a.chunks[b] = append(a.chunks[b], h)
		a.SpilledBytes += n
		a.billing.chargeSpill(n)
	}
	return nil
}

// encodeGroupRow flattens a group into a value row the SpillStore can hold:
// [key count, keys..., per aggregate: count, sumI, sumF, float?, min, max].
func encodeGroupRow(g *Group) []types.Value {
	row := make([]types.Value, 0, 1+len(g.Keys)+len(g.Cells)*6)
	row = append(row, types.NewInt(int64(len(g.Keys))))
	row = append(row, g.Keys...)
	for _, c := range g.Cells {
		row = append(row,
			types.NewInt(c.Count), types.NewInt(c.SumI), types.NewFloat(c.SumF),
			types.NewBool(c.Float), c.Min, c.Max)
	}
	return row
}

func decodeGroupRow(row []types.Value, numAggs int) (*Group, error) {
	if len(row) < 1 {
		return nil, fmt.Errorf("exec: truncated spilled group row")
	}
	nk := int(row[0].I)
	if len(row) != 1+nk+numAggs*6 {
		return nil, fmt.Errorf("exec: spilled group row has %d values, want %d", len(row), 1+nk+numAggs*6)
	}
	g := &Group{Keys: append([]types.Value(nil), row[1:1+nk]...), Cells: make([]Cell, numAggs)}
	for i := 0; i < numAggs; i++ {
		off := 1 + nk + i*6
		g.Cells[i] = Cell{
			Count: row[off].I,
			SumI:  row[off+1].I,
			SumF:  row[off+2].F,
			Float: row[off+3].B,
			Min:   row[off+4],
			Max:   row[off+5],
		}
	}
	return g, nil
}
