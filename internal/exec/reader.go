package exec

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/colstore"
	"repro/internal/storage"
)

// StoreReader reads partition metadata and column chunks through the common
// storage layer with range reads, caching footers (they are tiny and
// immutable — the leaf's light-weight process holds them naturally, paper
// §III-B).
type StoreReader struct {
	Router *storage.Router

	mu    sync.Mutex
	metas map[string]*colstore.FileMeta
}

// NewStoreReader wraps a storage router.
func NewStoreReader(r *storage.Router) *StoreReader {
	return &StoreReader{Router: r, metas: make(map[string]*colstore.FileMeta)}
}

// Meta implements PartitionReader: the footer is located via the fixed-size
// tail, then range-read and parsed once.
func (sr *StoreReader) Meta(ctx context.Context, path string) (*colstore.FileMeta, error) {
	sr.mu.Lock()
	if m, ok := sr.metas[path]; ok {
		sr.mu.Unlock()
		return m, nil
	}
	sr.mu.Unlock()

	fi, err := sr.Router.Stat(ctx, path)
	if err != nil {
		return nil, err
	}
	if fi.Size < int64(colstore.FooterTailLen) {
		return nil, fmt.Errorf("exec: %s too small to be a partition file", path)
	}
	tail, err := sr.Router.ReadRange(ctx, path, fi.Size-int64(colstore.FooterTailLen), int64(colstore.FooterTailLen))
	if err != nil {
		return nil, err
	}
	flen, err := colstore.ParseFooterTail(tail)
	if err != nil {
		return nil, fmt.Errorf("exec: %s: %w", path, err)
	}
	fstart := fi.Size - int64(colstore.FooterTailLen) - int64(flen)
	if fstart < 0 {
		return nil, fmt.Errorf("exec: %s footer larger than file", path)
	}
	footer, err := sr.Router.ReadRange(ctx, path, fstart, int64(flen))
	if err != nil {
		return nil, err
	}
	meta, err := colstore.ParseFooter(footer)
	if err != nil {
		return nil, fmt.Errorf("exec: %s: %w", path, err)
	}
	sr.mu.Lock()
	sr.metas[path] = meta
	sr.mu.Unlock()
	return meta, nil
}

// Column implements PartitionReader via a single range read of the column's
// extent.
func (sr *StoreReader) Column(ctx context.Context, path string, meta *colstore.FileMeta, block, col int) (*colstore.Column, error) {
	if block < 0 || block >= len(meta.Blocks) {
		return nil, fmt.Errorf("exec: block %d out of range for %s", block, path)
	}
	bm := meta.Blocks[block]
	if col < 0 || col >= len(bm.ColExtents) {
		return nil, fmt.Errorf("exec: column %d out of range for %s block %d", col, path, block)
	}
	ext := bm.ColExtents[col]
	payload, err := sr.Router.ReadRange(ctx, path, ext.Off, ext.Len)
	if err != nil {
		return nil, err
	}
	if err := colstore.VerifyExtent(ext, payload); err != nil {
		return nil, fmt.Errorf("exec: read %s block %d col %d: %w", path, block, col, err)
	}
	c, err := colstore.DecodeColumn(meta.Schema.Fields[col].Type, payload)
	if err != nil {
		return nil, fmt.Errorf("exec: decode %s block %d col %d: %w", path, block, col, err)
	}
	return c, nil
}

// InvalidateMeta drops a cached footer (tests and data refresh paths).
func (sr *StoreReader) InvalidateMeta(path string) {
	sr.mu.Lock()
	delete(sr.metas, path)
	sr.mu.Unlock()
}
