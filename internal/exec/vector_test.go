package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

var kernelOps = []sqlparser.BinaryOp{
	sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt,
	sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe,
}

// rowWiseAtom is the reference the kernels must match bit for bit.
func rowWiseAtom(a plan.Atom, col *colstore.Column, n int) *bitmap.Bitmap {
	out := bitmap.New(n)
	for r := 0; r < n; r++ {
		if plan.EvalAtom(a, col.Value(r)) {
			out.Set(r)
		}
	}
	return out
}

// withNulls marks every third row NULL (zeroing the stored value, like the
// writer does) and returns the column.
func withNulls(col *colstore.Column, n int) *colstore.Column {
	col.Nulls = bitmap.New(n)
	for i := 0; i < n; i += 3 {
		col.Nulls.Set(i)
		switch col.Type {
		case types.Int64:
			col.Ints[i] = 0
		case types.Float64:
			col.Floats[i] = 0
		case types.String:
			col.Strs[i] = ""
		}
	}
	return col
}

func intColumn(rng *rand.Rand, n int) *colstore.Column {
	c := &colstore.Column{Type: types.Int64, Ints: make([]int64, n)}
	for i := range c.Ints {
		c.Ints[i] = rng.Int63n(7) - 3
	}
	if n > 1 {
		c.Ints[0] = math.MaxInt64
		c.Ints[1] = math.MinInt64
	}
	return c
}

func floatColumn(rng *rand.Rand, n int) *colstore.Column {
	c := &colstore.Column{Type: types.Float64, Floats: make([]float64, n)}
	for i := range c.Floats {
		c.Floats[i] = float64(rng.Intn(5)) - 1.5
	}
	if n > 3 {
		c.Floats[1] = math.NaN()
		c.Floats[2] = math.Inf(1)
		c.Floats[3] = math.Inf(-1)
	}
	return c
}

func stringColumn(rng *rand.Rand, n int) *colstore.Column {
	words := []string{"", "a", "ab", "b", "ba", "\x00", "zz"}
	c := &colstore.Column{Type: types.String, Strs: make([]string, n)}
	for i := range c.Strs {
		c.Strs[i] = words[rng.Intn(len(words))]
	}
	return c
}

// TestKernelMatchesEvalAtom cross-checks every vectorizable operator over
// every column type (with and without NULLs, at word-boundary lengths)
// against the row-at-a-time EvalAtom path, including the awkward literals:
// mixed int/float comparisons, NaN, and incomparable types.
func TestKernelMatchesEvalAtom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	literals := []types.Value{
		types.NewInt(0), types.NewInt(2), types.NewInt(math.MaxInt64),
		types.NewFloat(-1.5), types.NewFloat(0.5), types.NewFloat(math.NaN()),
		types.NewString("ab"), types.NewString("\x00"), types.NewString(""),
		types.NewBool(true), types.NullValue(),
	}
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		cols := []*colstore.Column{
			intColumn(rng, n), floatColumn(rng, n), stringColumn(rng, n),
		}
		if n > 0 {
			cols = append(cols,
				withNulls(intColumn(rng, n), n),
				withNulls(floatColumn(rng, n), n),
				withNulls(stringColumn(rng, n), n),
			)
		}
		for ci, col := range cols {
			for _, op := range kernelOps {
				for li, lit := range literals {
					a := plan.Atom{Table: "t", Col: "c", Op: op, Val: lit}
					got, ok := evalAtomKernel(a, col, n)
					if !ok {
						t.Fatalf("n=%d col=%d op=%v lit=%d: kernel refused a flat comparison", n, ci, op, li)
					}
					want := rowWiseAtom(a, col, n)
					if !got.Equal(want) {
						t.Fatalf("n=%d col=%d op=%v lit=%v: kernel %v != row-wise %v",
							n, ci, op, lit, got.Selected(), want.Selected())
					}
				}
			}
		}
	}
}

// TestKernelFallbacks verifies the kernel refuses exactly the shapes that
// need the row-wise path: repeated columns, CONTAINS, negated atoms, bool
// columns, and length mismatches.
func TestKernelFallbacks(t *testing.T) {
	flat := &colstore.Column{Type: types.Int64, Ints: []int64{1, 2, 3}}
	repeated := &colstore.Column{Type: types.Int64, Ints: []int64{1, 2, 3}, Offsets: []int32{0, 2, 3}}
	boolCol := &colstore.Column{Type: types.Bool, Bools: []bool{true, false, true}}
	eq := plan.Atom{Op: sqlparser.OpEq, Val: types.NewInt(2)}

	cases := []struct {
		name string
		a    plan.Atom
		col  *colstore.Column
		n    int
	}{
		{"repeated", eq, repeated, 2},
		{"contains", plan.Atom{Op: sqlparser.OpContains, Val: types.NewString("x")}, flat, 3},
		{"negated", plan.Atom{Op: sqlparser.OpContains, Negated: true, Val: types.NewString("x")}, flat, 3},
		{"bool", eq, boolCol, 3},
		{"length-mismatch", eq, flat, 4},
	}
	for _, tc := range cases {
		if _, ok := evalAtomKernel(tc.a, tc.col, tc.n); ok {
			t.Errorf("%s: kernel accepted a shape it cannot evaluate", tc.name)
		}
	}
	// The fallback must still produce the right answer end to end.
	out := evalAtomOverColumn(plan.Atom{Op: sqlparser.OpEq, Val: types.NewInt(2)}, repeated, 2)
	if got := fmt.Sprint(out.Selected()); got != "[0]" {
		t.Errorf("repeated-column fallback selected %s, want [0]", got)
	}
}
