package exec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// harness builds an in-memory two-table catalog and runs SQL end to end.
type harness struct {
	t      *testing.T
	cat    plan.MapCatalog
	router *storage.Router
	reader *StoreReader
	idx    IndexSource
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	router := storage.NewRouter(storage.NewMemFS("", nil))
	h := &harness{t: t, cat: plan.MapCatalog{}, router: router, reader: NewStoreReader(router)}

	// Fact table: search logs with a repeated click.pos column.
	logs := types.MustSchema(
		types.Field{Name: "query", Type: types.String},
		types.Field{Name: "url", Type: types.String},
		types.Field{Name: "clicks", Type: types.Int64},
		types.Field{Name: "score", Type: types.Float64},
		types.Field{Name: "uid", Type: types.Int64},
		types.Field{Name: "click.pos", Type: types.Int64, Repeated: true},
	)
	w := colstore.NewWriter(logs, 4) // small blocks exercise pruning
	rows := []struct {
		query  string
		url    string
		clicks int64
		score  float64
		uid    int64
		pos    []int64
	}{
		{"weather", "http://a", 1, 0.9, 1, []int64{1, 3}},
		{"weather", "http://b", 5, 0.5, 2, []int64{2}},
		{"music", "http://c", 3, 0.1, 1, nil},
		{"spam offer", "http://d", 0, 0.0, 3, []int64{9}},
		{"news", "http://e", 8, 0.7, 2, []int64{1}},
		{"news", "http://f", 2, 0.3, 9, nil}, // uid 9 has no user row
		{"maps", "http://g", 7, 0.6, 1, []int64{4, 5, 6}},
		{"maps", "http://h", 4, 0.2, 3, nil},
	}
	for _, r := range rows {
		rec := [][]types.Value{
			{types.NewString(r.query)},
			{types.NewString(r.url)},
			{types.NewInt(r.clicks)},
			{types.NewFloat(r.score)},
			{types.NewInt(r.uid)},
			nil,
		}
		for _, p := range r.pos {
			rec[5] = append(rec[5], types.NewInt(p))
		}
		if err := w.AppendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := router.WriteFile(ctx, "/logs/p0", data); err != nil {
		t.Fatal(err)
	}
	h.cat["logs"] = &plan.TableMeta{Name: "logs", Schema: logs, Partitions: []plan.PartitionMeta{
		{Path: "/logs/p0", Rows: int64(len(rows)), Bytes: int64(len(data))},
	}}

	// Dimension: users.
	users := types.MustSchema(
		types.Field{Name: "uid", Type: types.Int64},
		types.Field{Name: "city", Type: types.String},
		types.Field{Name: "vip", Type: types.Bool},
	)
	h.cat["users"] = &plan.TableMeta{Name: "users", Schema: users}
	return h
}

// userRows is the broadcast dimension data, aligned to Needed columns.
func (h *harness) userData(needed []string) [][]types.Value {
	full := map[string][]types.Value{
		"uid":  {types.NewInt(1), types.NewInt(2), types.NewInt(3)},
		"city": {types.NewString("bj"), types.NewString("sh"), types.NewString("bj")},
		"vip":  {types.NewBool(true), types.NewBool(false), types.NewBool(false)},
	}
	out := make([][]types.Value, 3)
	for r := 0; r < 3; r++ {
		row := make([]types.Value, len(needed))
		for i, c := range needed {
			row[i] = full[c][r]
		}
		out[r] = row
	}
	return out
}

// run plans and executes sql over the harness tables.
func (h *harness) run(sql string) (*Result, *TaskResult) {
	h.t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		h.t.Fatalf("parse %q: %v", sql, err)
	}
	p, err := plan.Plan(stmt, h.cat)
	if err != nil {
		h.t.Fatalf("plan %q: %v", sql, err)
	}
	for _, d := range p.Dims {
		if d.Table.Meta.Name == "users" {
			d.Data = h.userData(d.Needed)
		}
	}
	ctx := context.Background()
	var merged *TaskResult
	for _, task := range p.Tasks() {
		tr, err := RunTask(ctx, task, h.reader, h.idx)
		if err != nil {
			h.t.Fatalf("run %q: %v", sql, err)
		}
		merged = MergeResults(p, merged, tr)
	}
	res, err := Finalize(p, merged)
	if err != nil {
		h.t.Fatalf("finalize %q: %v", sql, err)
	}
	return res, merged
}

func intAt(t *testing.T, res *Result, r, c int) int64 {
	t.Helper()
	v := res.Rows[r][c]
	if v.T != types.Int64 {
		t.Fatalf("row %d col %d = %v, want int", r, c, v)
	}
	return v.I
}

func TestScanCountStar(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*) FROM logs")
	if len(res.Rows) != 1 || intAt(t, res, 0, 0) != 8 {
		t.Errorf("count = %+v", res.Rows)
	}
}

func TestScanFilterAtoms(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*) FROM logs WHERE clicks > 2 AND clicks <= 7")
	// clicks: 1,5,3,0,8,2,7,4 -> in (2,7]: 5,3,7,4 = 4 rows.
	if intAt(t, res, 0, 0) != 4 {
		t.Errorf("count = %+v", res.Rows)
	}
}

func TestScanProjectionAndOrder(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT url, clicks FROM logs WHERE clicks >= 7 ORDER BY clicks DESC")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0][0].S != "http://e" || res.Rows[1][0].S != "http://g" {
		t.Errorf("order = %+v", res.Rows)
	}
	if res.Columns[0] != "url" || res.Columns[1] != "clicks" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestScanContains(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*) FROM logs WHERE query CONTAINS 'spam'")
	if intAt(t, res, 0, 0) != 1 {
		t.Errorf("contains = %+v", res.Rows)
	}
	res, _ = h.run("SELECT COUNT(*) FROM logs WHERE NOT (query CONTAINS 'spam')")
	if intAt(t, res, 0, 0) != 7 {
		t.Errorf("not contains = %+v", res.Rows)
	}
}

func TestScanOrClause(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*) FROM logs WHERE clicks = 8 OR score > 0.8")
	// clicks=8 (e), score 0.9 (a) -> 2.
	if intAt(t, res, 0, 0) != 2 {
		t.Errorf("or = %+v", res.Rows)
	}
}

func TestScanBangNegationPaperQ11(t *testing.T) {
	h := newHarness(t)
	// Fig. 7's rewrite: c > 0 AND !(c > 5)  ==  c in (0,5].
	res, _ := h.run("SELECT COUNT(*) FROM logs WHERE clicks > 0 AND !(clicks > 5)")
	// clicks in (0,5]: 1,5,3,2,4 = 5.
	if intAt(t, res, 0, 0) != 5 {
		t.Errorf("count = %+v", res.Rows)
	}
}

func TestGroupByHavingOrderLimit(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT query, COUNT(*) AS n, SUM(clicks) AS s FROM logs GROUP BY query HAVING COUNT(*) > 1 ORDER BY s DESC LIMIT 2")
	// groups with count>1: weather(2, sum 6), news(2, sum 10), maps(2, sum 11).
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0][0].S != "maps" || intAt(t, res, 0, 2) != 11 {
		t.Errorf("row0 = %+v", res.Rows[0])
	}
	if res.Rows[1][0].S != "news" || intAt(t, res, 1, 2) != 10 {
		t.Errorf("row1 = %+v", res.Rows[1])
	}
}

func TestAggFunctions(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*), SUM(clicks), MIN(clicks), MAX(clicks), AVG(clicks) FROM logs")
	row := res.Rows[0]
	if row[0].I != 8 || row[1].I != 30 || row[2].I != 0 || row[3].I != 8 {
		t.Errorf("aggs = %+v", row)
	}
	if row[4].T != types.Float64 || row[4].F != 3.75 {
		t.Errorf("avg = %+v", row[4])
	}
}

func TestAggEmptyInput(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*), SUM(clicks) FROM logs WHERE clicks > 1000")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty agg = %+v", res.Rows)
	}
}

func TestGroupByEmptyYieldsNoRows(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT query, COUNT(*) FROM logs WHERE clicks > 1000 GROUP BY query")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestInnerJoin(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT city, COUNT(*) AS n FROM logs, users WHERE logs.uid = users.uid GROUP BY city ORDER BY n DESC")
	// uid1 x3 (bj), uid2 x2 (sh), uid3 x2 (bj), uid9 dropped -> bj 5, sh 2.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0][0].S != "bj" || intAt(t, res, 0, 1) != 5 {
		t.Errorf("row0 = %+v", res.Rows[0])
	}
	if res.Rows[1][0].S != "sh" || intAt(t, res, 1, 1) != 2 {
		t.Errorf("row1 = %+v", res.Rows[1])
	}
}

func TestLeftOuterJoin(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*) FROM logs LEFT JOIN users ON logs.uid = users.uid")
	if intAt(t, res, 0, 0) != 8 { // all fact rows preserved
		t.Errorf("left join count = %+v", res.Rows)
	}
	res, _ = h.run("SELECT url FROM logs LEFT JOIN users ON logs.uid = users.uid WHERE users.city = 'sh' ORDER BY url")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "http://b" || res.Rows[1][0].S != "http://e" {
		t.Errorf("sh rows = %+v", res.Rows)
	}
}

func TestJoinResidualCondition(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*) FROM logs JOIN users ON logs.uid = users.uid AND users.vip = TRUE")
	// Only uid 1 is vip: 3 fact rows.
	if intAt(t, res, 0, 0) != 3 {
		t.Errorf("residual join = %+v", res.Rows)
	}
}

func TestCrossJoin(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*) FROM logs CROSS JOIN users")
	if intAt(t, res, 0, 0) != 24 { // 8 x 3
		t.Errorf("cross = %+v", res.Rows)
	}
}

func TestWithinRecordAggregation(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT url, COUNT(click.pos) WITHIN RECORD AS nclicks FROM logs WHERE clicks = 7")
	// http://g has click.pos [4,5,6].
	if len(res.Rows) != 1 || intAt(t, res, 0, 1) != 3 {
		t.Errorf("within = %+v", res.Rows)
	}
	res, _ = h.run("SELECT SUM(click.pos) WITHIN RECORD FROM logs WHERE url = 'http://a'")
	if intAt(t, res, 0, 0) != 4 { // 1+3
		t.Errorf("within sum = %+v", res.Rows)
	}
}

func TestRepeatedColumnAtomAnySemantics(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT COUNT(*) FROM logs WHERE click.pos > 4")
	// records with any pos>4: d(9), g(5,6) -> 2.
	if intAt(t, res, 0, 0) != 2 {
		t.Errorf("repeated atom = %+v", res.Rows)
	}
}

func TestSelectLimitEarlyStop(t *testing.T) {
	h := newHarness(t)
	res, merged := h.run("SELECT url FROM logs LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if merged.Stats.RowsEmitted != 3 {
		t.Errorf("emitted = %d, want early stop at 3", merged.Stats.RowsEmitted)
	}
}

func TestBlockPruningByStats(t *testing.T) {
	h := newHarness(t)
	// clicks per block (4 rows each): block0 has 0..5, block1 has 2..8.
	_, merged := h.run("SELECT COUNT(*) FROM logs WHERE clicks > 100")
	if merged.Stats.BlocksPruned != 2 {
		t.Errorf("pruned = %+v", merged.Stats)
	}
	if merged.Stats.ColumnReads != 0 {
		t.Errorf("pruned scan should read nothing, got %d reads", merged.Stats.ColumnReads)
	}
}

func TestArithmeticInOutputs(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT clicks * 2 + 1 AS x FROM logs WHERE url = 'http://c'")
	if intAt(t, res, 0, 0) != 7 {
		t.Errorf("arith = %+v", res.Rows)
	}
	res, _ = h.run("SELECT SUM(clicks) / COUNT(*) FROM logs")
	if res.Rows[0][0].T != types.Float64 || res.Rows[0][0].F != 3.75 {
		t.Errorf("expr over aggs = %+v", res.Rows[0])
	}
}

func TestSelectStar(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT * FROM logs WHERE clicks = 8")
	if len(res.Rows) != 1 || len(res.Columns) != 6 {
		t.Fatalf("star = %v rows, %v cols", len(res.Rows), res.Columns)
	}
	if res.Rows[0][1].S != "http://e" {
		t.Errorf("row = %+v", res.Rows[0])
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	h := newHarness(t)
	res, _ := h.run("SELECT score / clicks FROM logs WHERE url = 'http://d'")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("div by zero = %+v", res.Rows[0][0])
	}
}

// mapIndex is a trivial IndexSource for tests.
type mapIndex struct {
	m map[string]*bitmap.Bitmap
}

func newMapIndex() *mapIndex { return &mapIndex{m: make(map[string]*bitmap.Bitmap)} }

func (mi *mapIndex) Lookup(_ context.Context, blockID string, a plan.Atom, n int) (*bitmap.Bitmap, bool) {
	bm, ok := mi.m[blockID+"|"+a.Key()]
	if !ok || bm.Len() != n {
		return nil, false
	}
	if a.Negated { // test data is NULL-free; bit-NOT is sound here
		neg := bm.Clone()
		neg.Not()
		return neg, true
	}
	return bm, true
}

func (mi *mapIndex) Store(blockID string, a plan.Atom, bm *bitmap.Bitmap, _ colstore.Stats) {
	mi.m[blockID+"|"+a.Key()] = bm.Clone() // Store's contract: copy if retained
}

func TestIndexAvoidsColumnReads(t *testing.T) {
	h := newHarness(t)
	h.idx = newMapIndex()
	_, first := h.run("SELECT COUNT(*) FROM logs WHERE clicks > 2")
	if first.Stats.IndexMisses == 0 || first.Stats.ColumnReads == 0 {
		t.Fatalf("first run should miss and read: %+v", first.Stats)
	}
	_, second := h.run("SELECT COUNT(*) FROM logs WHERE clicks > 2")
	if second.Stats.IndexHits == 0 || second.Stats.IndexMisses != 0 {
		t.Errorf("second run should hit: %+v", second.Stats)
	}
	if second.Stats.ColumnReads != 0 {
		t.Errorf("second run should read no columns, got %d", second.Stats.ColumnReads)
	}
	if second.Stats.ShortCircuits == 0 {
		t.Errorf("fully indexed COUNT(*) should short-circuit: %+v", second.Stats)
	}
}

func TestIndexNegatedContains(t *testing.T) {
	h := newHarness(t)
	h.idx = newMapIndex()
	r1, _ := h.run("SELECT COUNT(*) FROM logs WHERE query CONTAINS 'spam'")
	r2, second := h.run("SELECT COUNT(*) FROM logs WHERE NOT (query CONTAINS 'spam')")
	if r1.Rows[0][0].I+r2.Rows[0][0].I != 8 {
		t.Errorf("complement counts: %v + %v", r1.Rows[0][0], r2.Rows[0][0])
	}
	if second.Stats.IndexHits == 0 {
		t.Errorf("negated form should hit the positive index: %+v", second.Stats)
	}
}

// stripedMapIndex extends mapIndex with the StripedSource hot path: every
// stored entry is also served in cache-line-striped form.
type stripedMapIndex struct {
	mapIndex
	stripedLookups int
}

func (si *stripedMapIndex) LookupStriped(_ context.Context, blockID string, a plan.Atom, n int) (*bitmap.Striped, bool) {
	si.stripedLookups++
	bm, ok := si.m[blockID+"|"+a.Key()]
	if !ok || bm.Len() != n {
		return nil, false
	}
	if a.Negated { // NULL-free test data: complement is sound
		bm = bm.Clone()
		bm.Not()
	}
	return bitmap.Stripe(bm), true
}

func TestScanStripedFastPath(t *testing.T) {
	h := newHarness(t)
	si := &stripedMapIndex{mapIndex: *newMapIndex()}
	h.idx = si

	cold, first := h.run("SELECT COUNT(*) FROM logs WHERE clicks > 2")
	if first.Stats.IndexMisses == 0 {
		t.Fatalf("first run should miss: %+v", first.Stats)
	}
	warm, second := h.run("SELECT COUNT(*) FROM logs WHERE clicks > 2")
	if second.Stats.IndexHits == 0 || second.Stats.ColumnReads != 0 {
		t.Fatalf("striped run should answer from the index: %+v", second.Stats)
	}
	if si.stripedLookups == 0 {
		t.Fatal("striped source was never probed")
	}
	if cold.Rows[0][0].I != warm.Rows[0][0].I {
		t.Fatalf("striped path changed the answer: %v vs %v", cold.Rows[0][0], warm.Rows[0][0])
	}

	// The pre-negated striped form folds into the selection the same way.
	neg, _ := h.run("SELECT COUNT(*) FROM logs WHERE NOT (clicks > 2)")
	if cold.Rows[0][0].I+neg.Rows[0][0].I != 8 {
		t.Fatalf("striped complement counts: %v + %v", cold.Rows[0][0], neg.Rows[0][0])
	}

	// An all-zeros striped answer empties the selection before any later
	// clause or output work (CONTAINS is not stats-prunable, so the block
	// reaches the index).
	h.run("SELECT COUNT(*) FROM logs WHERE query CONTAINS 'nosuch'")
	before := si.stripedLookups
	empty, stats := h.run("SELECT COUNT(*) FROM logs WHERE query CONTAINS 'nosuch' AND clicks > 0")
	if empty.Rows[0][0].I != 0 {
		t.Fatalf("empty striped selection = %+v", empty.Rows)
	}
	if si.stripedLookups == before {
		t.Fatal("empty-clause run never touched the striped source")
	}
	if stats.Stats.BlocksEmpty == 0 {
		t.Fatalf("all-zeros striped answer did not empty the block selection: %+v", stats.Stats)
	}
}

// brokenStripedIndex serves a striped bitmap of the wrong length — the
// corruption guard in the scanner must fail the task, not mis-select.
type brokenStripedIndex struct{ mapIndex }

func (bi *brokenStripedIndex) LookupStriped(context.Context, string, plan.Atom, int) (*bitmap.Striped, bool) {
	return bitmap.Stripe(bitmap.New(3)), true
}

func TestScanStripedLengthMismatchFails(t *testing.T) {
	h := newHarness(t)
	h.idx = &brokenStripedIndex{mapIndex: *newMapIndex()}
	stmt, err := sqlparser.Parse("SELECT COUNT(*) FROM logs WHERE clicks > 2")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Plan(stmt, h.cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range p.Tasks() {
		if _, err := RunTask(context.Background(), task, h.reader, h.idx); err == nil {
			t.Fatal("length-mismatched striped bitmap did not fail the scan")
		}
	}
}

func TestMergeResultsSelectLimit(t *testing.T) {
	h := newHarness(t)
	stmt, _ := sqlparser.Parse("SELECT url FROM logs LIMIT 2")
	p, err := plan.Plan(stmt, h.cat)
	if err != nil {
		t.Fatal(err)
	}
	a := &TaskResult{Rows: [][]types.Value{{types.NewString("x")}, {types.NewString("y")}}}
	b := &TaskResult{Rows: [][]types.Value{{types.NewString("z")}}}
	m := MergeResults(p, a, b)
	if len(m.Rows) != 2 {
		t.Errorf("merged rows = %d", len(m.Rows))
	}
	if MergeResults(p, nil, b) != b || MergeResults(p, b, nil) != b {
		t.Error("nil merge identities")
	}
}

func TestCellPropertyMergeEquivalence(t *testing.T) {
	// Updating one cell with all values must equal merging two cells that
	// split the values — the leaf/stem/master decomposition invariant.
	vals := []types.Value{
		types.NewInt(3), types.NewInt(-1), types.NullValue(), types.NewFloat(2.5),
		types.NewInt(10), types.NewFloat(-0.5), types.NullValue(),
	}
	for split := 0; split <= len(vals); split++ {
		var whole, left, right Cell
		for i, v := range vals {
			whole.Update(v, false)
			if i < split {
				left.Update(v, false)
			} else {
				right.Update(v, false)
			}
		}
		left.Merge(right)
		for _, fn := range []string{"COUNT", "SUM", "AVG", "MIN", "MAX"} {
			w, err1 := whole.Final(fn)
			m, err2 := left.Final(fn)
			if err1 != nil || err2 != nil {
				t.Fatalf("final: %v %v", err1, err2)
			}
			if !types.Equal(w, m) {
				t.Errorf("split %d %s: whole=%v merged=%v", split, fn, w, m)
			}
		}
	}
}

func TestStoreReaderMetaCaching(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	m1, err := h.reader.Meta(ctx, "/logs/p0")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := h.reader.Meta(ctx, "/logs/p0")
	if err != nil || m1 != m2 {
		t.Error("meta should be cached")
	}
	h.reader.InvalidateMeta("/logs/p0")
	m3, err := h.reader.Meta(ctx, "/logs/p0")
	if err != nil || m3 == m1 {
		t.Error("invalidate should re-read")
	}
}

func TestStoreReaderErrors(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	if _, err := h.reader.Meta(ctx, "/missing"); err == nil {
		t.Error("missing file should fail")
	}
	_ = h.router.WriteFile(ctx, "/tiny", []byte("x"))
	if _, err := h.reader.Meta(ctx, "/tiny"); err == nil {
		t.Error("tiny file should fail")
	}
	meta, _ := h.reader.Meta(ctx, "/logs/p0")
	if _, err := h.reader.Column(ctx, "/logs/p0", meta, 99, 0); err == nil {
		t.Error("bad block should fail")
	}
	if _, err := h.reader.Column(ctx, "/logs/p0", meta, 0, 99); err == nil {
		t.Error("bad column should fail")
	}
}

func TestEvalThreeValuedLogic(t *testing.T) {
	env := litEnv{}
	null := &sqlparser.Literal{Value: types.NullValue()}
	tru := &sqlparser.Literal{Value: types.NewBool(true)}
	fls := &sqlparser.Literal{Value: types.NewBool(false)}

	cases := []struct {
		e    sqlparser.Expr
		want types.Value
	}{
		{&sqlparser.BinaryExpr{Op: sqlparser.OpAnd, L: null, R: fls}, types.NewBool(false)},
		{&sqlparser.BinaryExpr{Op: sqlparser.OpAnd, L: null, R: tru}, types.NullValue()},
		{&sqlparser.BinaryExpr{Op: sqlparser.OpOr, L: null, R: tru}, types.NewBool(true)},
		{&sqlparser.BinaryExpr{Op: sqlparser.OpOr, L: null, R: fls}, types.NullValue()},
		{&sqlparser.NotExpr{X: null}, types.NullValue()},
	}
	for i, c := range cases {
		got, err := Eval(c.e, env)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !types.Equal(got, c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("case %d = %v, want %v", i, got, c.want)
		}
	}
}

type litEnv struct{}

func (litEnv) Col(table, col string) (types.Value, error) {
	return types.Value{}, nil
}
func (litEnv) Repeated(table, col string) ([]types.Value, error) { return nil, nil }
func (litEnv) Sub(sqlparser.Expr) (types.Value, bool)            { return types.Value{}, false }

func TestEvalErrors(t *testing.T) {
	env := litEnv{}
	str := &sqlparser.Literal{Value: types.NewString("x")}
	one := &sqlparser.Literal{Value: types.NewInt(1)}
	if _, err := Eval(&sqlparser.NegExpr{X: str}, env); err == nil {
		t.Error("negate string should fail")
	}
	if _, err := Eval(&sqlparser.NotExpr{X: one}, env); err == nil {
		t.Error("NOT int should fail")
	}
	if _, err := Eval(&sqlparser.BinaryExpr{Op: sqlparser.OpAdd, L: str, R: one}, env); err == nil {
		t.Error("string + int should fail")
	}
	agg := &sqlparser.FuncCall{Name: "COUNT", Star: true}
	if _, err := Eval(agg, env); err == nil {
		t.Error("bare aggregate in row context should fail")
	}
}

func TestEvalModulo(t *testing.T) {
	env := litEnv{}
	mod := &sqlparser.BinaryExpr{
		Op: sqlparser.OpMod,
		L:  &sqlparser.Literal{Value: types.NewInt(7)},
		R:  &sqlparser.Literal{Value: types.NewInt(3)},
	}
	v, err := Eval(mod, env)
	if err != nil || v.I != 1 {
		t.Errorf("7%%3 = %v, %v", v, err)
	}
	modZero := &sqlparser.BinaryExpr{
		Op: sqlparser.OpMod,
		L:  &sqlparser.Literal{Value: types.NewInt(7)},
		R:  &sqlparser.Literal{Value: types.NewInt(0)},
	}
	v, err = Eval(modZero, env)
	if err != nil || !v.IsNull() {
		t.Errorf("7%%0 = %v, %v", v, err)
	}
}

func TestTaskResultEstimateBytes(t *testing.T) {
	r := &TaskResult{Rows: [][]types.Value{{types.NewString("abc"), types.NewInt(1)}}}
	if r.EstimateBytes() <= 0 {
		t.Error("estimate should be positive")
	}
	g := NewGroups(1)
	g.Get([]types.Value{types.NewString("k")})
	r2 := &TaskResult{Groups: g}
	if r2.EstimateBytes() <= 0 {
		t.Error("group estimate should be positive")
	}
}

func TestFinalizeNilMerged(t *testing.T) {
	// A table with zero partitions produces no task results; global
	// aggregation must still yield its empty-input row.
	h := newHarness(t)
	h.cat["empty"] = &plan.TableMeta{Name: "empty", Schema: h.cat["logs"].Schema}
	stmt, _ := sqlparser.Parse("SELECT COUNT(*), SUM(clicks) FROM empty")
	p, err := plan.Plan(stmt, h.cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Finalize(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("rows = %+v", res.Rows)
	}
	// Select mode over no tasks yields no rows.
	stmt2, _ := sqlparser.Parse("SELECT url FROM empty")
	p2, err := plan.Plan(stmt2, h.cat)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Finalize(p2, nil)
	if err != nil || len(res2.Rows) != 0 {
		t.Errorf("select rows = %+v, %v", res2.Rows, err)
	}
}

func TestOrClauseDoesNotCorruptIndexCache(t *testing.T) {
	// Regression: an OR clause whose first atom is an index hit must not
	// OR the second atom's bits into the cached bitmap.
	h := newHarness(t)
	h.idx = newMapIndex()
	// Warm both atoms individually.
	r1, _ := h.run("SELECT COUNT(*) FROM logs WHERE clicks > 6")
	r2, _ := h.run("SELECT COUNT(*) FROM logs WHERE score > 0.55")
	// OR query: first atom served from the cache.
	h.run("SELECT COUNT(*) FROM logs WHERE clicks > 6 OR score > 0.55")
	// The individual predicates must still answer exactly as before.
	r1b, s1 := h.run("SELECT COUNT(*) FROM logs WHERE clicks > 6")
	r2b, s2 := h.run("SELECT COUNT(*) FROM logs WHERE score > 0.55")
	if r1b.Rows[0][0].I != r1.Rows[0][0].I {
		t.Errorf("clicks>6 drifted: %v -> %v", r1.Rows[0][0], r1b.Rows[0][0])
	}
	if r2b.Rows[0][0].I != r2.Rows[0][0].I {
		t.Errorf("score>0.55 drifted: %v -> %v", r2.Rows[0][0], r2b.Rows[0][0])
	}
	if s1.Stats.IndexHits == 0 || s2.Stats.IndexHits == 0 {
		t.Error("re-runs should be index-served")
	}
}

func TestScanOpaqueLeafColumnComparison(t *testing.T) {
	// A column-vs-column comparison is not an indexable atom; it runs
	// through the opaque row-wise path.
	h := newHarness(t)
	res, merged := h.run("SELECT COUNT(*) FROM logs WHERE clicks > uid")
	// rows: (1,1)(5,2)(3,1)(0,3)(8,2)(2,9)(7,1)(4,3) -> clicks>uid: b,c,e,g,h = 5.
	if intAt(t, res, 0, 0) != 5 {
		t.Errorf("opaque filter = %+v", res.Rows)
	}
	if merged.Stats.IndexHits != 0 {
		t.Errorf("opaque clause must not hit the index: %+v", merged.Stats)
	}
	// Mixed clause: atom OR opaque.
	res, _ = h.run("SELECT COUNT(*) FROM logs WHERE clicks = 0 OR clicks > uid")
	if intAt(t, res, 0, 0) != 6 {
		t.Errorf("mixed clause = %+v", res.Rows)
	}
}

func TestUnorderedGroupByDeterministic(t *testing.T) {
	h := newHarness(t)
	r1, _ := h.run("SELECT query, COUNT(*) FROM logs GROUP BY query")
	r2, _ := h.run("SELECT query, COUNT(*) FROM logs GROUP BY query")
	if len(r1.Rows) != 5 {
		t.Fatalf("groups = %d", len(r1.Rows))
	}
	for i := range r1.Rows {
		if r1.Rows[i][0].S != r2.Rows[i][0].S {
			t.Fatalf("unordered group-by order not deterministic: %v vs %v", r1.Rows[i], r2.Rows[i])
		}
	}
}

func TestGroupsMergeDirect(t *testing.T) {
	// The stem-side merge: groups present on one side only, and on both.
	a, b := NewGroups(1), NewGroups(1)
	ga := a.Get([]types.Value{types.NewString("x")})
	ga.Cells[0].Update(types.NewInt(1), false)
	gb := b.Get([]types.Value{types.NewString("x")})
	gb.Cells[0].Update(types.NewInt(2), false)
	gOnly := b.Get([]types.Value{types.NewString("y")})
	gOnly.Cells[0].Update(types.NewInt(7), false)

	a.Merge(b)
	if len(a.M) != 2 {
		t.Fatalf("merged groups = %d", len(a.M))
	}
	x := a.M[GroupKey([]types.Value{types.NewString("x")})]
	if x.Cells[0].Count != 2 || x.Cells[0].SumI != 3 {
		t.Errorf("x cell = %+v", x.Cells[0])
	}
	y := a.M[GroupKey([]types.Value{types.NewString("y")})]
	if y.Cells[0].SumI != 7 {
		t.Errorf("y cell = %+v", y.Cells[0])
	}
}

func TestAggEnvErrorPaths(t *testing.T) {
	env := &aggEnv{subs: map[string]types.Value{}}
	if _, err := env.Col("t", "c"); err == nil {
		t.Error("aggEnv.Col should fail")
	}
	if _, err := env.Repeated("t", "c"); err == nil {
		t.Error("aggEnv.Repeated should fail")
	}
}

func TestEvalContainsTypeError(t *testing.T) {
	env := litEnv{}
	bad := &sqlparser.BinaryExpr{
		Op: sqlparser.OpContains,
		L:  &sqlparser.Literal{Value: types.NewInt(1)},
		R:  &sqlparser.Literal{Value: types.NewString("x")},
	}
	if _, err := Eval(bad, env); err == nil {
		t.Error("CONTAINS over int should fail at eval")
	}
}

func TestBloomPruningEquality(t *testing.T) {
	// clicks per 4-row block: block0 {1,5,3,0}, block1 {8,2,7,4}. The value
	// 6 lies inside both min/max ranges but exists in neither block: only
	// the bloom can prune it (with high probability both blocks prune).
	h := newHarness(t)
	_, merged := h.run("SELECT COUNT(*) FROM logs WHERE clicks = 6")
	if merged.Stats.BlocksPruned == 0 {
		t.Errorf("bloom should prune range-covered but absent equality: %+v", merged.Stats)
	}
	// Present values are never pruned away.
	res, _ := h.run("SELECT COUNT(*) FROM logs WHERE clicks = 7")
	if intAt(t, res, 0, 0) != 1 {
		t.Errorf("clicks=7 count = %+v", res.Rows)
	}
}

// TestFilterMatchesBruteForceProperty cross-checks the whole filter stack
// (CNF pushdown, stats pruning, bloom pruning, SmartIndex bitmaps) against
// a row-by-row reference evaluation for randomized predicates.
func TestFilterMatchesBruteForceProperty(t *testing.T) {
	h := newHarness(t)
	h.idx = newMapIndex()
	// Reference data mirrors newHarness' rows.
	clicks := []int64{1, 5, 3, 0, 8, 2, 7, 4}
	scores := []float64{0.9, 0.5, 0.1, 0.0, 0.7, 0.3, 0.6, 0.2}
	queries := []string{"weather", "weather", "music", "spam offer", "news", "news", "maps", "maps"}

	rng := rand.New(rand.NewSource(99))
	ops := []string{">", ">=", "<", "<=", "=", "!="}
	evalInt := func(v int64, op string, x int64) bool {
		switch op {
		case ">":
			return v > x
		case ">=":
			return v >= x
		case "<":
			return v < x
		case "<=":
			return v <= x
		case "=":
			return v == x
		default:
			return v != x
		}
	}
	for trial := 0; trial < 120; trial++ {
		op1, op2 := ops[rng.Intn(len(ops))], ops[rng.Intn(len(ops))]
		x, y := int64(rng.Intn(10)), rng.Float64()
		conj := rng.Intn(2) == 0
		neg := rng.Intn(3) == 0
		term2 := fmt.Sprintf("score %s %.2f", op2, y)
		if neg {
			term2 = "NOT (" + term2 + ")"
		}
		connector := " OR "
		if conj {
			connector = " AND "
		}
		sql := fmt.Sprintf("SELECT COUNT(*) FROM logs WHERE clicks %s %d%s%s", op1, x, connector, term2)
		res, _ := h.run(sql)

		want := int64(0)
		for i := range clicks {
			a := evalInt(clicks[i], op1, x)
			// Reference float comparison against the rounded literal.
			yy := math.Round(y*100) / 100
			var b bool
			switch op2 {
			case ">":
				b = scores[i] > yy
			case ">=":
				b = scores[i] >= yy
			case "<":
				b = scores[i] < yy
			case "<=":
				b = scores[i] <= yy
			case "=":
				b = scores[i] == yy
			default:
				b = scores[i] != yy
			}
			if neg {
				b = !b
			}
			ok := a || b
			if conj {
				ok = a && b
			}
			if ok {
				want++
			}
		}
		if got := res.Rows[0][0].I; got != want {
			t.Fatalf("trial %d %q: engine %d, brute force %d (queries=%v)", trial, sql, got, want, queries[:0])
		}
	}
}

func TestRunTaskErrors(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()

	// Partition lacking a planned column.
	stmt, _ := sqlparser.Parse("SELECT clicks FROM logs")
	p, err := plan.Plan(stmt, h.cat)
	if err != nil {
		t.Fatal(err)
	}
	task := p.Tasks()[0]
	task.Partition.Path = "/missing"
	if _, err := RunTask(ctx, task, h.reader, nil); err == nil {
		t.Error("missing partition should fail")
	}

	// Schema mismatch: table whose catalog claims a column the file lacks.
	badSchema := types.MustSchema(
		types.Field{Name: "query", Type: types.String},
		types.Field{Name: "ghost", Type: types.Int64},
	)
	h.cat["ghostly"] = &plan.TableMeta{Name: "ghostly", Schema: badSchema, Partitions: []plan.PartitionMeta{
		{Path: "/logs/p0", Rows: 8},
	}}
	stmt2, _ := sqlparser.Parse("SELECT ghost FROM ghostly")
	p2, err := plan.Plan(stmt2, h.cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTask(ctx, p2.Tasks()[0], h.reader, nil); err == nil {
		t.Error("column missing from file should fail")
	}
}

func TestJoinEnvUnknownTable(t *testing.T) {
	h := newHarness(t)
	// Dimension column referenced but not shipped: exercised via a plan
	// mutated to drop the needed column.
	stmt, _ := sqlparser.Parse("SELECT COUNT(*) FROM logs JOIN users ON logs.uid = users.uid WHERE users.city = 'bj'")
	p, err := plan.Plan(stmt, h.cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range p.Dims {
		d.Data = h.userData(d.Needed)
		d.Needed = d.Needed[:1] // drop a shipped column after materialization
	}
	_, err = RunTask(context.Background(), p.Tasks()[0], h.reader, nil)
	if err == nil {
		t.Error("unshipped dim column should fail at eval")
	}
}
