package exec

import (
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Result is the final query result returned to the client.
type Result struct {
	Columns []string
	Types   []types.Type
	Rows    [][]types.Value
	// Partial marks a result assembled from an incomplete task set (the
	// paper's processed-ratio / elapse-time early return, §III-C).
	Partial bool
	// ProcessedRatio is the fraction of tasks whose results are included.
	ProcessedRatio float64
}

// MergeResults folds leaf/stem partial results together — the stem server's
// aggregation step. Select-mode rows are concatenated (bounded by limit when
// non-negative and no ordering is pending); agg-mode groups are merged.
func MergeResults(p *plan.PhysicalPlan, acc, next *TaskResult) *TaskResult {
	if acc == nil {
		return next
	}
	if next == nil {
		return acc
	}
	if p.Mode == plan.ModeAgg {
		acc.Groups.Merge(next.Groups)
	} else {
		acc.Rows = append(acc.Rows, next.Rows...)
		if p.ScanLimit >= 0 && int64(len(acc.Rows)) > p.ScanLimit {
			acc.Rows = acc.Rows[:p.ScanLimit]
		}
	}
	acc.Stats.Add(next.Stats)
	return acc
}

// Finalize turns the merged partial result into the client-facing rows:
// aggregate finalization, output-expression evaluation, HAVING, ORDER BY
// and LIMIT (the master's half of paper Fig. 3).
func Finalize(p *plan.PhysicalPlan, merged *TaskResult) (*Result, error) {
	a := p.A
	res := &Result{}
	for _, oi := range a.Outputs {
		if oi.Hidden {
			continue
		}
		res.Columns = append(res.Columns, oi.Name)
		res.Types = append(res.Types, oi.Type)
	}

	var wide [][]types.Value // all outputs including hidden
	if p.Mode == plan.ModeAgg {
		var groups *Groups
		if merged != nil {
			groups = merged.Groups
		}
		if groups == nil {
			groups = NewGroups(len(p.Aggs))
		}
		// A global aggregation with no input rows still yields one group.
		if len(groups.M) == 0 && len(p.GroupBy) == 0 {
			groups.Get(nil)
		}
		for _, grp := range groups.M {
			env, err := newAggEnv(p, grp)
			if err != nil {
				return nil, err
			}
			if a.Having != nil {
				ok, err := EvalBool(a.Having, env)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			row := make([]types.Value, len(a.Outputs))
			for i, oi := range a.Outputs {
				v, err := Eval(oi.Expr, env)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			wide = append(wide, row)
		}
	} else {
		if merged != nil {
			wide = merged.Rows
		}
	}

	if len(a.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(wide, func(i, j int) bool {
			for _, k := range a.OrderBy {
				cmp, err := types.Compare(wide[i][k.Output], wide[j][k.Output])
				if err != nil {
					sortErr = err
					return false
				}
				if cmp == 0 {
					continue
				}
				if k.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	} else if p.Mode == plan.ModeAgg {
		// Deterministic output for unordered aggregations.
		sort.SliceStable(wide, func(i, j int) bool {
			return rowKey(wide[i]) < rowKey(wide[j])
		})
	}

	if a.Limit >= 0 && int64(len(wide)) > a.Limit {
		wide = wide[:a.Limit]
	}

	// Drop hidden columns.
	visible := make([]int, 0, len(a.Outputs))
	for i, oi := range a.Outputs {
		if !oi.Hidden {
			visible = append(visible, i)
		}
	}
	res.Rows = make([][]types.Value, len(wide))
	for ri, row := range wide {
		out := make([]types.Value, len(visible))
		for i, ci := range visible {
			out[i] = row[ci]
		}
		res.Rows[ri] = out
	}
	return res, nil
}

func rowKey(row []types.Value) string {
	return GroupKey(row)
}

// aggEnv substitutes aggregate results and group keys into output
// expressions.
type aggEnv struct {
	subs map[string]types.Value
}

func newAggEnv(p *plan.PhysicalPlan, grp *Group) (*aggEnv, error) {
	env := &aggEnv{subs: make(map[string]types.Value, len(p.Aggs)+len(p.GroupBy))}
	for i, spec := range p.Aggs {
		v, err := grp.Cells[i].Final(spec.Func)
		if err != nil {
			return nil, err
		}
		env.subs[spec.Key] = v
	}
	for i, g := range p.GroupBy {
		env.subs[g.String()] = grp.Keys[i]
	}
	return env, nil
}

// Col implements Env: bare column references are valid only when they are
// grouping keys, which the substitution map already covers.
func (e *aggEnv) Col(table, col string) (types.Value, error) {
	return types.Value{}, fmt.Errorf("exec: column %s.%s referenced outside GROUP BY", table, col)
}

// Repeated implements Env.
func (e *aggEnv) Repeated(table, col string) ([]types.Value, error) {
	return nil, fmt.Errorf("exec: repeated column %s.%s in aggregate context", table, col)
}

// Sub implements Env.
func (e *aggEnv) Sub(expr sqlparser.Expr) (types.Value, bool) {
	v, ok := e.subs[expr.String()]
	return v, ok
}
