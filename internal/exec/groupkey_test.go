package exec

import (
	"testing"

	"repro/internal/types"
)

// TestGroupKeyInjective is the regression test for the NUL-joined encoding,
// which merged distinct GROUP BY tuples whenever a string value contained a
// NUL followed by a byte that parsed as a type tag.
func TestGroupKeyInjective(t *testing.T) {
	s := func(vals ...string) []types.Value {
		out := make([]types.Value, len(vals))
		for i, v := range vals {
			out[i] = types.NewString(v)
		}
		return out
	}
	tuples := [][]types.Value{
		s("a\x00", "b"),
		s("a", "\x00b"),
		s("a\x00\x04b"), // embeds what used to be separator + type tag
		s("a", "b"),
		s("ab"),
		s("a", ""),
		s("", "a"),
		s(""),
		{},
		{types.NewInt(1)},
		{types.NewString("1")},
		{types.NewFloat(1)},
		{types.NullValue()},
		{types.NewInt(12), types.NewInt(3)},
		{types.NewInt(1), types.NewInt(23)},
	}
	seen := make(map[string]int)
	for i, tup := range tuples {
		k := GroupKey(tup)
		if j, dup := seen[k]; dup {
			t.Errorf("tuples %d and %d collide on key %q", j, i, k)
		}
		seen[k] = i
	}
}

// TestGroupKeyDeterministic: equal tuples must keep mapping to equal keys
// (the property Merge and the dimension hash join rely on).
func TestGroupKeyDeterministic(t *testing.T) {
	a := []types.Value{types.NewString("x\x00y"), types.NewInt(-5)}
	b := []types.Value{types.NewString("x\x00y"), types.NewInt(-5)}
	if GroupKey(a) != GroupKey(b) {
		t.Fatal("equal tuples produced different keys")
	}
}
