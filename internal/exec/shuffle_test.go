package exec

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// shuffleHarness holds a fact table and a file-backed join table so shuffle
// map plans can be executed with the ordinary task machinery.
type shuffleHarness struct {
	t      *testing.T
	cat    plan.MapCatalog
	reader *StoreReader
}

func newShuffleHarness(t *testing.T) *shuffleHarness {
	t.Helper()
	router := storage.NewRouter(storage.NewMemFS("", nil))
	h := &shuffleHarness{t: t, cat: plan.MapCatalog{}, reader: NewStoreReader(router)}

	orders := types.MustSchema(
		types.Field{Name: "k", Type: types.Int64},
		types.Field{Name: "region", Type: types.String},
		types.Field{Name: "amt", Type: types.Int64},
	)
	type orow struct {
		k   int64
		reg string
		amt int64
	}
	odata := []orow{
		{1, "east", 10}, {2, "west", 20}, {3, "east", 30}, {4, "west", 40},
		{5, "east", 50}, {1, "west", 60}, {2, "east", 70}, {9, "west", 80},
		{3, "east", 90}, {9, "east", 100},
	}
	h.writeTable(router, "orders", orders, 2, func(add func([][]types.Value)) {
		for _, r := range odata {
			add([][]types.Value{{types.NewInt(r.k)}, {types.NewString(r.reg)}, {types.NewInt(r.amt)}})
		}
	})

	items := types.MustSchema(
		types.Field{Name: "k", Type: types.Int64},
		types.Field{Name: "name", Type: types.String},
		types.Field{Name: "price", Type: types.Int64},
	)
	type irow struct {
		k     int64
		name  string
		price int64
	}
	idata := []irow{
		{1, "apple", 5}, {2, "pear", 7}, {3, "plum", 3}, {4, "fig", 11},
		{7, "kiwi", 13}, {8, "date", 17},
	}
	h.writeTable(router, "items", items, 3, func(add func([][]types.Value)) {
		for _, r := range idata {
			add([][]types.Value{{types.NewInt(r.k)}, {types.NewString(r.name)}, {types.NewInt(r.price)}})
		}
	})
	return h
}

// writeTable stores records into two partitions of the named table.
func (h *shuffleHarness) writeTable(router *storage.Router, name string, schema *types.Schema, blockRows int, fill func(add func([][]types.Value))) {
	h.t.Helper()
	var parts []plan.PartitionMeta
	var recs [][][]types.Value
	fill(func(rec [][]types.Value) { recs = append(recs, rec) })
	half := (len(recs) + 1) / 2
	for pi, chunk := range [][][][]types.Value{recs[:half], recs[half:]} {
		w := colstore.NewWriter(schema, blockRows)
		for _, rec := range chunk {
			if err := w.AppendRecord(rec); err != nil {
				h.t.Fatal(err)
			}
		}
		data, err := w.Finish()
		if err != nil {
			h.t.Fatal(err)
		}
		path := fmt.Sprintf("/%s/p%d", name, pi)
		if err := router.WriteFile(context.Background(), path, data); err != nil {
			h.t.Fatal(err)
		}
		parts = append(parts, plan.PartitionMeta{Path: path, Rows: int64(len(chunk)), Bytes: int64(len(data))})
	}
	h.cat[name] = &plan.TableMeta{Name: name, Schema: schema, Partitions: parts}
}

func (h *shuffleHarness) plan(sql string, opts plan.Options) *plan.PhysicalPlan {
	h.t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		h.t.Fatalf("parse %q: %v", sql, err)
	}
	p, err := plan.PlanWith(stmt, h.cat, opts)
	if err != nil {
		h.t.Fatalf("plan %q: %v", sql, err)
	}
	return p
}

// runPlanRows executes every task of a (derived) select-mode plan and
// returns the concatenated rows in task order.
func (h *shuffleHarness) runPlanRows(p *plan.PhysicalPlan) [][]types.Value {
	h.t.Helper()
	var rows [][]types.Value
	for _, task := range p.Tasks() {
		tr, err := RunTask(context.Background(), task, h.reader, nil)
		if err != nil {
			h.t.Fatal(err)
		}
		rows = append(rows, tr.Rows...)
	}
	return rows
}

// runShuffled executes sql through the full local shuffle pipeline: map
// scans of the derived plans, hash routing, one reducer operator per
// partition, master-side merge and finalize.
func (h *shuffleHarness) runShuffled(sql string, opts plan.Options, spill SpillStore, billing ShuffleBilling) (*Result, []*PartitionedHashJoin) {
	h.t.Helper()
	p := h.plan(sql, opts)
	sh := p.Shuffle
	if sh == nil || sh.GroupShuffle {
		h.t.Fatalf("plan for %q did not repartition a join (shuffle=%+v)", sql, sh)
	}
	parts := sh.Partitions
	probeParts := make([][][]types.Value, parts)
	for _, r := range h.runPlanRows(sh.ProbePlan) {
		i := ShufflePartition(r, sh.Keys, parts)
		probeParts[i] = append(probeParts[i], r)
	}
	buildParts := make([][][]types.Value, parts)
	for _, r := range h.runPlanRows(sh.BuildPlan) {
		i := ShufflePartition(r, sh.Keys, parts)
		buildParts[i] = append(buildParts[i], r)
	}
	var merged *TaskResult
	var ops []*PartitionedHashJoin
	for i := 0; i < parts; i++ {
		op := NewPartitionedHashJoin(p, spill, billing)
		ops = append(ops, op)
		if err := op.PushBuild(buildParts[i]); err != nil {
			h.t.Fatal(err)
		}
		if err := op.PushProbe(probeParts[i]); err != nil {
			h.t.Fatal(err)
		}
		tr, err := op.Flush()
		if err != nil {
			h.t.Fatal(err)
		}
		merged = MergeResults(p, merged, tr)
	}
	res, err := Finalize(p, merged)
	if err != nil {
		h.t.Fatal(err)
	}
	return res, ops
}

// runBroadcast executes sql on the classic broadcast path, loading the join
// table as a broadcast dimension.
func (h *shuffleHarness) runBroadcast(sql string) *Result {
	h.t.Helper()
	p := h.plan(sql, plan.DefaultOptions())
	if p.Shuffle != nil {
		h.t.Fatalf("broadcast plan for %q unexpectedly shuffled", sql)
	}
	for _, d := range p.Dims {
		d.Data = h.dimData(d.Table.Meta, d.Needed)
	}
	var merged *TaskResult
	for _, task := range p.Tasks() {
		tr, err := RunTask(context.Background(), task, h.reader, nil)
		if err != nil {
			h.t.Fatal(err)
		}
		merged = MergeResults(p, merged, tr)
	}
	res, err := Finalize(p, merged)
	if err != nil {
		h.t.Fatal(err)
	}
	return res
}

// dimData materializes a stored table's Needed columns (what the master's
// loadDims does through the cluster).
func (h *shuffleHarness) dimData(meta *plan.TableMeta, needed []string) [][]types.Value {
	h.t.Helper()
	full := plan.TableMeta{Name: meta.Name, Schema: meta.Schema, Partitions: meta.Partitions}
	stmt, err := sqlparser.Parse("SELECT " + joinCols(needed) + " FROM " + meta.Name)
	if err != nil {
		h.t.Fatal(err)
	}
	p, err := plan.Plan(stmt, plan.MapCatalog{meta.Name: &full})
	if err != nil {
		h.t.Fatal(err)
	}
	return h.runPlanRows(p)
}

func joinCols(cols []string) string {
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += ", "
		}
		out += c
	}
	return out
}

// forceShuffle repartitions every eligible join regardless of size.
func forceShuffle() plan.Options {
	o := plan.DefaultOptions()
	o.BroadcastThreshold = -1
	o.ShufflePartitions = 3
	return o
}

func renderRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		s := ""
		for j, v := range row {
			if j > 0 {
				s += "|"
			}
			s += v.String()
		}
		out[i] = s
	}
	return out
}

func requireSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	w, g := renderRows(want), renderRows(got)
	sort.Strings(w)
	sort.Strings(g)
	if !reflect.DeepEqual(w, g) {
		t.Fatalf("results differ:\nbroadcast: %v\nshuffled:  %v", w, g)
	}
}

func TestShuffleJoinMatchesBroadcastInner(t *testing.T) {
	h := newShuffleHarness(t)
	sql := "SELECT o.region, i.name, o.amt FROM orders o JOIN items i ON o.k = i.k"
	requireSameResult(t, h.runBroadcast(sql), firstResult(h.runShuffled(sql, forceShuffle(), nil, ShuffleBilling{})))
}

func TestShuffleJoinMatchesBroadcastLeftOuter(t *testing.T) {
	h := newShuffleHarness(t)
	sql := "SELECT o.k, o.amt, i.name FROM orders o LEFT OUTER JOIN items i ON o.k = i.k"
	requireSameResult(t, h.runBroadcast(sql), firstResult(h.runShuffled(sql, forceShuffle(), nil, ShuffleBilling{})))
}

func TestShuffleJoinMatchesBroadcastAgg(t *testing.T) {
	h := newShuffleHarness(t)
	sql := "SELECT o.region, COUNT(*), SUM(i.price) FROM orders o JOIN items i ON o.k = i.k GROUP BY o.region ORDER BY o.region"
	requireSameResult(t, h.runBroadcast(sql), firstResult(h.runShuffled(sql, forceShuffle(), nil, ShuffleBilling{})))
}

func TestShuffleJoinMatchesBroadcastResidualAndWhere(t *testing.T) {
	h := newShuffleHarness(t)
	sql := "SELECT o.k, i.price FROM orders o JOIN items i ON o.k = i.k AND i.price > o.k WHERE o.amt > 15 AND i.price < 12"
	requireSameResult(t, h.runBroadcast(sql), firstResult(h.runShuffled(sql, forceShuffle(), nil, ShuffleBilling{})))
}

func firstResult(res *Result, _ []*PartitionedHashJoin) *Result { return res }

func TestShuffleRightOuterJoin(t *testing.T) {
	h := newShuffleHarness(t)
	// Build rows with keys 4, 7, 8 have no matching order (k=4 exists).
	sql := "SELECT o.amt, i.name FROM orders o RIGHT OUTER JOIN items i ON o.k = i.k ORDER BY i.name"
	res, _ := h.runShuffled(sql, forceShuffle(), nil, ShuffleBilling{})
	got := renderRows(res)
	sort.Strings(got)
	want := []string{
		`10|"apple"`, `60|"apple"`, // k=1 twice
		`20|"pear"`, `70|"pear"`, // k=2
		`30|"plum"`, `90|"plum"`, // k=3
		`40|"fig"`,    // k=4
		`NULL|"date"`, // k=8 unmatched, preserved
		`NULL|"kiwi"`, // k=7 unmatched, preserved
	}
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("right outer rows = %v, want %v", got, want)
	}
}

func TestShuffleSpillBitIdenticalAndBilled(t *testing.T) {
	h := newShuffleHarness(t)
	sql := "SELECT o.region, i.name, o.amt FROM orders o JOIN items i ON o.k = i.k"

	clean, _ := h.runShuffled(sql, forceShuffle(), nil, ShuffleBilling{})

	opts := forceShuffle()
	opts.MemoryGrantBytes = 1 // force grace-hash spill on the first build batch
	store := NewMemSpillStore()
	bill := sim.NewBill()
	billing := ShuffleBilling{Model: sim.DefaultCostModel(), Bill: bill}
	spilled, ops := h.runShuffled(sql, opts, store, billing)

	requireSameResult(t, clean, spilled)
	var opBytes int64
	anySpilled := false
	for _, op := range ops {
		opBytes += op.SpilledBytes
		if op.SpilledBytes > 0 {
			anySpilled = true
		}
	}
	if !anySpilled {
		t.Fatal("expected at least one operator to spill under a 1-byte grant")
	}
	if bill.SpillBytes() != store.Written || bill.SpillBytes() != opBytes {
		t.Fatalf("billed spill bytes %d, store wrote %d, operators report %d",
			bill.SpillBytes(), store.Written, opBytes)
	}
	if bill.SpillTime() <= 0 {
		t.Fatal("spill writes should charge simulated time")
	}
}

func TestShuffleSpillOneLevelRecursion(t *testing.T) {
	h := newShuffleHarness(t)
	sql := "SELECT o.k, i.name FROM orders o JOIN items i ON o.k = i.k"
	clean, _ := h.runShuffled(sql, forceShuffle(), nil, ShuffleBilling{})

	// Partitions=1 funnels all rows into one operator; the 1-byte grant
	// keeps every sub-bucket over grant, exercising the recursive split.
	opts := forceShuffle()
	opts.ShufflePartitions = 1
	opts.MemoryGrantBytes = 1
	store := NewMemSpillStore()
	spilled, ops := h.runShuffled(sql, opts, store, ShuffleBilling{})
	requireSameResult(t, clean, spilled)
	if ops[0].SpilledBytes == 0 {
		t.Fatal("operator should have spilled")
	}
}

func TestPartitionedHashJoinNullKeysNeverJoin(t *testing.T) {
	h := newShuffleHarness(t)
	p := h.plan("SELECT o.amt, i.price FROM orders o LEFT OUTER JOIN items i ON o.k = i.k", forceShuffle())
	sh := p.Shuffle
	if sh == nil {
		t.Fatal("expected shuffle plan")
	}
	op := NewPartitionedHashJoin(p, nil, ShuffleBilling{})
	null := types.NullValue()
	// Build: NULL key row and key=1. Probe: NULL key (must null-extend, not
	// match the NULL build row) and key=1 (matches).
	if err := op.PushBuild([][]types.Value{
		{null, types.NewInt(111)},
		{types.NewInt(1), types.NewInt(5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := op.PushProbe([][]types.Value{
		{null, types.NewInt(10)},
		{types.NewInt(1), types.NewInt(60)},
	}); err != nil {
		t.Fatal(err)
	}
	tr, err := op.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(tr.Rows))
	for i, r := range tr.Rows {
		got[i] = r[0].String() + "|" + r[1].String()
	}
	sort.Strings(got)
	want := []string{"10|NULL", "60|5"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestShufflePartitionDeterministicAndInRange(t *testing.T) {
	row := []types.Value{types.NewInt(42), types.NewString("x")}
	p1 := ShufflePartition(row, 1, 7)
	for i := 0; i < 10; i++ {
		if got := ShufflePartition(row, 1, 7); got != p1 {
			t.Fatalf("partition changed: %d then %d", p1, got)
		}
	}
	seen := map[int]bool{}
	for k := int64(0); k < 100; k++ {
		p := ShufflePartition([]types.Value{types.NewInt(k)}, 1, 4)
		if p < 0 || p >= 4 {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatal("hash should spread keys over partitions")
	}
}

// runGroupShuffle executes a group-by shuffle locally: map tasks run the
// top plan, partial groups are routed by group key, reducers merge.
func (h *shuffleHarness) runGroupShuffle(sql string, opts plan.Options, spill SpillStore, billing ShuffleBilling) (*Result, []*PartitionedAgg) {
	h.t.Helper()
	p := h.plan(sql, opts)
	sh := p.Shuffle
	if sh == nil || !sh.GroupShuffle {
		h.t.Fatalf("plan for %q did not group-shuffle (shuffle=%+v)", sql, sh)
	}
	aggs := make([]*PartitionedAgg, sh.Partitions)
	for i := range aggs {
		aggs[i] = NewPartitionedAgg(len(p.Aggs), sh.MemoryGrant, spill, billing)
	}
	for _, task := range p.Tasks() {
		tr, err := RunTask(context.Background(), task, h.reader, nil)
		if err != nil {
			h.t.Fatal(err)
		}
		parts := make([]*Groups, sh.Partitions)
		for i := range parts {
			parts[i] = NewGroups(len(p.Aggs))
		}
		for k, g := range tr.Groups.M {
			i := GroupShufflePartition(g.Keys, sh.Partitions)
			parts[i].M[k] = g
		}
		for i, g := range parts {
			if err := aggs[i].Push(g); err != nil {
				h.t.Fatal(err)
			}
		}
	}
	merged := &TaskResult{Groups: NewGroups(len(p.Aggs))}
	for _, a := range aggs {
		g, err := a.Flush()
		if err != nil {
			h.t.Fatal(err)
		}
		merged.Groups.Merge(g)
	}
	res, err := Finalize(p, merged)
	if err != nil {
		h.t.Fatal(err)
	}
	return res, aggs
}

func TestGroupShuffleMatchesSingleNode(t *testing.T) {
	h := newShuffleHarness(t)
	sql := "SELECT region, COUNT(*), SUM(amt), MIN(k), MAX(k) FROM orders GROUP BY region ORDER BY region"

	baseOpts := plan.DefaultOptions()
	baseOpts.GroupShuffleRows = -1 // classic path
	p := h.plan(sql, baseOpts)
	if p.Shuffle != nil {
		t.Fatal("group shuffle should be disabled")
	}
	var merged *TaskResult
	for _, task := range p.Tasks() {
		tr, err := RunTask(context.Background(), task, h.reader, nil)
		if err != nil {
			t.Fatal(err)
		}
		merged = MergeResults(p, merged, tr)
	}
	want, err := Finalize(p, merged)
	if err != nil {
		t.Fatal(err)
	}

	opts := plan.DefaultOptions()
	opts.GroupShuffleRows = 1 // repartition even tiny tables
	opts.ShufflePartitions = 3
	got, _ := h.runGroupShuffle(sql, opts, nil, ShuffleBilling{})
	requireSameResult(t, want, got)
}

func TestPartitionedAggSpillMatchesAndBills(t *testing.T) {
	h := newShuffleHarness(t)
	sql := "SELECT k, COUNT(*), SUM(amt) FROM orders GROUP BY k ORDER BY k"

	opts := plan.DefaultOptions()
	opts.GroupShuffleRows = 1
	opts.ShufflePartitions = 2
	clean, _ := h.runGroupShuffle(sql, opts, nil, ShuffleBilling{})

	spillOpts := opts
	spillOpts.MemoryGrantBytes = 1
	store := NewMemSpillStore()
	bill := sim.NewBill()
	billing := ShuffleBilling{Model: sim.DefaultCostModel(), Bill: bill}
	spilled, aggs := h.runGroupShuffle(sql, spillOpts, store, billing)
	requireSameResult(t, clean, spilled)

	var opBytes int64
	for _, a := range aggs {
		opBytes += a.SpilledBytes
	}
	if opBytes == 0 {
		t.Fatal("aggregation should have spilled under a 1-byte grant")
	}
	if bill.SpillBytes() != store.Written || bill.SpillBytes() != opBytes {
		t.Fatalf("billed %d, store wrote %d, operators report %d", bill.SpillBytes(), store.Written, opBytes)
	}
}

func TestShuffleOperatorProtocolErrors(t *testing.T) {
	h := newShuffleHarness(t)
	p := h.plan("SELECT o.amt FROM orders o JOIN items i ON o.k = i.k", forceShuffle())
	op := NewPartitionedHashJoin(p, nil, ShuffleBilling{})
	if err := op.PushProbe(nil); err != nil {
		t.Fatal(err)
	}
	if err := op.PushBuild(nil); err == nil {
		t.Fatal("PushBuild after probe should fail")
	}
	if _, err := op.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := op.Flush(); err == nil {
		t.Fatal("double Flush should fail")
	}
	if err := op.PushProbe(nil); err == nil {
		t.Fatal("PushProbe after Flush should fail")
	}

	a := NewPartitionedAgg(1, 1<<20, nil, ShuffleBilling{})
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := a.Push(NewGroups(1)); err == nil {
		t.Fatal("Push after Flush should fail")
	}
	if _, err := a.Flush(); err == nil {
		t.Fatal("double Flush should fail")
	}
}
