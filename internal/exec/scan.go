package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/types"
)

// PartitionReader supplies partition metadata and individual column chunks.
// The production implementation reads byte ranges through the common
// storage layer (StoreReader); the SSD cache wraps it.
type PartitionReader interface {
	Meta(ctx context.Context, path string) (*colstore.FileMeta, error)
	Column(ctx context.Context, path string, meta *colstore.FileMeta, block, col int) (*colstore.Column, error)
}

// IndexSource is the SmartIndex seen from the executor: bitmaps of predicate
// evaluation results per (block, atom). A nil IndexSource disables indexing.
// Lookup may satisfy an atom from a complementary cached entry via bit-NOT
// (paper Fig. 7); Store always receives the atom's positive form result.
type IndexSource interface {
	// Lookup returns the positive-form evaluation bitmap for the atom over
	// the block of n records, when the index can answer it (directly, via a
	// complementary cached entry, or from range metadata). Implementations
	// charge their simulated lookup cost to the context's bill.
	Lookup(ctx context.Context, blockID string, atom plan.Atom, n int) (*bitmap.Bitmap, bool)
	// Store offers the atom's freshly evaluated positive-form bitmap. The
	// executor keeps using (and may mutate) bm after the call, so an index
	// that retains it must copy it.
	Store(blockID string, atom plan.Atom, bm *bitmap.Bitmap, stats colstore.Stats)
}

// StripedSource is optionally implemented by index sources that keep hot
// entries in the cache-line-striped layout. LookupStriped returns the
// atom's evaluation result in striped form (negation already applied for a
// negated atom, pre-materialized by the index) so single-atom clauses fold
// into the selection word-at-a-time without materializing a dense bitmap.
// A probe miss is silent: the caller falls back to Lookup, which does the
// full hit/miss accounting.
type StripedSource interface {
	LookupStriped(ctx context.Context, blockID string, atom plan.Atom, n int) (*bitmap.Striped, bool)
}

// ColumnObserver is implemented by index sources that index raw columns as
// the executor reads them (the B-tree baseline of paper Fig. 9b).
type ColumnObserver interface {
	ObserveColumn(blockID, colName string, c *colstore.Column, numRows int)
}

// ScanStats counts what the scan did; the evaluation harness reports these.
type ScanStats struct {
	BlocksTotal   int64
	BlocksPruned  int64 // skipped via footer min/max stats
	BlocksEmpty   int64 // selection became empty before any output work
	IndexHits     int64
	IndexMisses   int64
	ColumnReads   int64 // column chunks fetched from storage
	RowsScanned   int64 // records whose selection was decided
	RowsSelected  int64
	RowsEmitted   int64
	ShortCircuits int64 // blocks answered purely from bitmaps (no data read)
}

// Add folds other into s.
func (s *ScanStats) Add(o ScanStats) {
	s.BlocksTotal += o.BlocksTotal
	s.BlocksPruned += o.BlocksPruned
	s.BlocksEmpty += o.BlocksEmpty
	s.IndexHits += o.IndexHits
	s.IndexMisses += o.IndexMisses
	s.ColumnReads += o.ColumnReads
	s.RowsScanned += o.RowsScanned
	s.RowsSelected += o.RowsSelected
	s.RowsEmitted += o.RowsEmitted
	s.ShortCircuits += o.ShortCircuits
}

// TaskResult is one leaf sub-plan's output: projected rows (select mode) or
// partial aggregates (agg mode).
type TaskResult struct {
	Rows   [][]types.Value
	Groups *Groups
	Stats  ScanStats
}

// EstimateBytes approximates the result's wire size for the transport's
// simulated billing.
func (r *TaskResult) EstimateBytes() int64 {
	var n int64
	for _, row := range r.Rows {
		n += estimateRow(row)
	}
	if r.Groups != nil {
		for _, g := range r.Groups.M {
			n += estimateRow(g.Keys) + int64(len(g.Cells))*48
		}
	}
	return n + 64
}

func estimateRow(vals []types.Value) int64 {
	n := int64(0)
	for _, v := range vals {
		n += 9 + int64(len(v.S))
	}
	return n
}

// RunTask executes one sub-plan: scan the fact partition, filter with
// SmartIndex assistance, join broadcast dimensions, and emit projected rows
// or partial aggregates. Billing uses only the context's bill; predicate
// CPU time is not priced (local execution paths).
func RunTask(ctx context.Context, task plan.TaskSpec, reader PartitionReader, idx IndexSource) (*TaskResult, error) {
	return RunTaskModel(ctx, task, reader, idx, nil)
}

// RunTaskModel is RunTask with a cost model: when non-nil, predicate
// evaluation over fetched column bytes is charged as CPU scan time, and a
// task split across workers composes per-worker bills along the critical
// path. Leaves pass their model; local/test paths pass nil.
func RunTaskModel(ctx context.Context, task plan.TaskSpec, reader PartitionReader, idx IndexSource, model *sim.CostModel) (*TaskResult, error) {
	p := task.Plan
	// The scan span collects the per-task breakdown behind EXPLAIN
	// ANALYZE: index and cache instrumentation downstream counts into it
	// via the context.
	ctx, span := trace.StartSpan(ctx, "scan")
	span.SetAttr("partition", task.Partition.Path)
	defer span.Finish()
	meta, err := reader.Meta(ctx, task.Partition.Path)
	if err != nil {
		return nil, fmt.Errorf("exec: meta %s: %w", task.Partition.Path, err)
	}
	s := &scanner{
		ctx:    ctx,
		plan:   p,
		path:   task.Partition.Path,
		meta:   meta,
		reader: reader,
		idx:    idx,
		model:  model,
		fact:   p.Fact().Ref.Binding(),
	}
	if idx != nil {
		s.sidx, _ = idx.(StripedSource)
	}
	if err := s.resolveColumns(); err != nil {
		return nil, err
	}
	if err := s.buildDimTables(); err != nil {
		return nil, err
	}

	res := &TaskResult{}
	if p.Mode == plan.ModeAgg {
		res.Groups = NewGroups(len(p.Aggs))
	}
	nb := len(meta.Blocks)
	workers := effectiveWorkers(task.Workers, nb, p)
	switch {
	case p.ScanLimit >= 0:
		// Pushed-down LIMIT stops mid-stream; its cross-block early exit
		// is inherently serial, so it keeps the direct-accumulation path.
		for bi := 0; bi < nb; bi++ {
			res.Stats.BlocksTotal++
			done, err := s.scanBlock(bi, res)
			if err != nil {
				return nil, err
			}
			if done {
				break
			}
		}
	case workers <= 1:
		// Serial reference path: per-block partials merged in block order —
		// the same result structure the parallel path produces, so both are
		// bit-identical (float aggregation order included).
		for bi := 0; bi < nb; bi++ {
			part, err := s.scanBlockPartial(bi)
			if err != nil {
				return nil, err
			}
			mergePartial(res, part)
		}
	default:
		if err := s.scanParallel(ctx, workers, nb, res); err != nil {
			return nil, err
		}
	}
	span.Count("blocks.total", res.Stats.BlocksTotal)
	span.Count("blocks.pruned", res.Stats.BlocksPruned)
	span.Count("blocks.shortcircuit", res.Stats.ShortCircuits)
	span.Count("index.hit", res.Stats.IndexHits)
	span.Count("index.miss", res.Stats.IndexMisses)
	span.Count("columns.read", res.Stats.ColumnReads)
	span.Count("rows.scanned", res.Stats.RowsScanned)
	span.Count("rows.selected", res.Stats.RowsSelected)
	span.Count("rows.emitted", res.Stats.RowsEmitted)
	return res, nil
}

// effectiveWorkers resolves the intra-task parallelism degree: the task's
// request (0 means GOMAXPROCS), clamped to the block count. LIMIT pushdown
// forces serial execution because its early exit crosses block boundaries.
func effectiveWorkers(requested, blocks int, p *plan.PhysicalPlan) int {
	if p.ScanLimit >= 0 {
		return 1
	}
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > blocks {
		w = blocks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scanBlockPartial scans one block into a fresh partial result. Partials are
// merged in ascending block order by both the serial and parallel paths, so
// float aggregation order — and therefore every output bit — is independent
// of the worker count.
func (s *scanner) scanBlockPartial(bi int) (*TaskResult, error) {
	part := &TaskResult{}
	if s.plan.Mode == plan.ModeAgg {
		part.Groups = NewGroups(len(s.plan.Aggs))
	}
	part.Stats.BlocksTotal++
	if _, err := s.scanBlock(bi, part); err != nil {
		return nil, err
	}
	return part, nil
}

// mergePartial folds one block's partial into the task result.
func mergePartial(res, part *TaskResult) {
	res.Stats.Add(part.Stats)
	res.Rows = append(res.Rows, part.Rows...)
	if part.Groups != nil && res.Groups != nil {
		res.Groups.Merge(part.Groups)
	}
}

// scanParallel fans the task's blocks over a bounded worker pool. Blocks are
// statically striped (worker w takes blocks w, w+N, w+2N, ...) so each
// worker's charge set — and hence its bill — is deterministic regardless of
// goroutine scheduling. Worker bills compose into the task bill along the
// critical path: resource totals sum, elapsed time advances by the slowest
// worker, which is what models intra-node parallel speedup in simulation.
func (s *scanner) scanParallel(ctx context.Context, workers, nb int, res *TaskResult) error {
	partials := make([]*TaskResult, nb)
	errs := make([]error, nb)
	parentBill := storage.BillFrom(ctx)
	bills := make([]*sim.Bill, 0, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wctx := ctx
		if parentBill != nil {
			b := sim.NewBill()
			bills = append(bills, b)
			wctx = storage.WithBill(ctx, b)
		}
		ws := s.forWorker(wctx)
		wg.Add(1)
		go func(w int, ws *scanner) {
			defer wg.Done()
			for bi := w; bi < nb; bi += workers {
				part, err := ws.scanBlockPartial(bi)
				if err != nil {
					errs[bi] = err
					return
				}
				partials[bi] = part
			}
		}(w, ws)
	}
	wg.Wait()
	if parentBill != nil {
		parentBill.AddParallel(bills...)
	}
	for bi := 0; bi < nb; bi++ {
		// Errors surface in block order: the lowest failing block wins, so
		// the reported error does not depend on worker interleaving. A nil
		// partial past a failing block belongs to the same stripe and is
		// never reached.
		if errs[bi] != nil {
			return errs[bi]
		}
		if partials[bi] != nil {
			mergePartial(res, partials[bi])
		}
	}
	return nil
}

// forWorker derives a worker-private scanner: shared read-only task state
// (plan, meta, resolved columns, dimension hash tables), private context
// (carrying the worker's bill) and per-block scratch.
func (s *scanner) forWorker(ctx context.Context) *scanner {
	ws := *s
	ws.ctx = ctx
	ws.block = 0
	ws.cols = nil
	ws.stats = nil
	return &ws
}

// scanner carries per-task state.
type scanner struct {
	ctx    context.Context
	plan   *plan.PhysicalPlan
	path   string
	meta   *colstore.FileMeta
	reader PartitionReader
	idx    IndexSource
	sidx   StripedSource  // idx's striped fast path, when it has one
	model  *sim.CostModel // nil: predicate CPU time is not billed
	fact   string

	colIdx map[string]int // fact column name -> file ordinal
	dims   []*dimTable

	// per-block state
	block int
	cols  map[int]*colstore.Column
	stats *ScanStats
}

type dimTable struct {
	plan    *plan.DimPlan
	colIdx  map[string]int // dim column -> index in Data rows
	hash    map[string][]int
	binding string
}

func (s *scanner) resolveColumns() error {
	s.colIdx = make(map[string]int, len(s.plan.FactCols))
	for _, name := range s.plan.FactCols {
		ord := s.meta.Schema.Index(name)
		if ord < 0 {
			return fmt.Errorf("exec: partition %s lacks column %q", s.path, name)
		}
		s.colIdx[name] = ord
	}
	return nil
}

func (s *scanner) buildDimTables() error {
	for _, d := range s.plan.Dims {
		dt := &dimTable{plan: d, binding: d.Table.Ref.Binding(), colIdx: make(map[string]int)}
		for i, c := range d.Needed {
			dt.colIdx[c] = i
		}
		if len(d.DimKeys) > 0 {
			dt.hash = make(map[string][]int, len(d.Data))
			keyIdx := make([]int, len(d.DimKeys))
			for i, k := range d.DimKeys {
				ord, ok := dt.colIdx[k]
				if !ok {
					return fmt.Errorf("exec: join key %q of dimension %s not among shipped columns %v", k, dt.binding, d.Needed)
				}
				keyIdx[i] = ord
			}
			keyVals := make([]types.Value, len(keyIdx))
			for ri, row := range d.Data {
				for i, ki := range keyIdx {
					keyVals[i] = row[ki]
				}
				k := GroupKey(keyVals)
				dt.hash[k] = append(dt.hash[k], ri)
			}
		}
		s.dims = append(s.dims, dt)
	}
	return nil
}

// blockID identifies a block for SmartIndex keys.
func (s *scanner) blockID(block int) string {
	return fmt.Sprintf("%s#%d", s.path, block)
}

// column fetches (and caches for the current block) a fact column chunk.
func (s *scanner) column(name string) (*colstore.Column, error) {
	ord := s.colIdx[name]
	if c, ok := s.cols[ord]; ok {
		return c, nil
	}
	c, err := s.reader.Column(s.ctx, s.path, s.meta, s.block, ord)
	if err != nil {
		return nil, err
	}
	s.cols[ord] = c
	s.stats.ColumnReads++
	if s.model != nil {
		// Predicate evaluation over the chunk is CPU work, priced per byte
		// fetched; with several workers this lands on per-worker bills and
		// composes along the critical path.
		if b := storage.BillFrom(s.ctx); b != nil {
			b.ChargeScan(s.model, s.meta.Blocks[s.block].ColExtents[ord].Len)
		}
	}
	return c, nil
}

// scanBlock processes one block; it returns done=true when a pushed-down
// LIMIT is satisfied.
func (s *scanner) scanBlock(bi int, res *TaskResult) (bool, error) {
	bm := s.meta.Blocks[bi]
	s.block = bi
	s.cols = make(map[int]*colstore.Column)
	s.stats = &res.Stats

	// Footer-stats pruning: a block where some clause cannot be satisfied
	// by any row is skipped without touching data or indexes.
	for _, cl := range s.plan.Filter.Clauses {
		if s.clauseImpossible(cl, bm) {
			res.Stats.BlocksPruned++
			return false, nil
		}
	}

	sel, decided, err := s.selection(bm)
	if err != nil {
		return false, err
	}
	res.Stats.RowsScanned += int64(bm.Stats.NumRows)
	selected := sel.Count()
	res.Stats.RowsSelected += int64(selected)
	if selected == 0 {
		res.Stats.BlocksEmpty++
		return false, nil
	}

	// The paper's headline shortcut (Fig. 7): a fully indexed COUNT(*)
	// needs no data access at all.
	if s.plan.Mode == plan.ModeAgg && s.pureCountStar() {
		if decided && len(s.cols) == 0 {
			res.Stats.ShortCircuits++
		}
		grp := res.Groups.Get(nil)
		for i := range s.plan.Aggs {
			grp.Cells[i].Count += int64(selected)
		}
		return false, nil
	}

	// Row-wise output over selected records.
	emitDone := false
	var rowErr error
	sel.ForEachSet(func(r int) {
		if emitDone || rowErr != nil {
			return
		}
		done, err := s.emitRecord(r, res)
		if err != nil {
			rowErr = err
			return
		}
		if done {
			emitDone = true
		}
	})
	return emitDone, rowErr
}

// pureCountStar reports whether the block's work reduces to counting
// selected rows: aggregation with no grouping, no dims, no post filter and
// only COUNT(*) aggregates.
func (s *scanner) pureCountStar() bool {
	if len(s.plan.GroupBy) != 0 || len(s.plan.Dims) != 0 || len(s.plan.Post) != 0 {
		return false
	}
	for _, a := range s.plan.Aggs {
		if !a.Star {
			return false
		}
	}
	return len(s.plan.Aggs) > 0
}

// clauseImpossible prunes via footer min/max: true when every leaf of the
// clause is an atom that no row in the block can satisfy.
func (s *scanner) clauseImpossible(cl plan.Clause, bm colstore.BlockMeta) bool {
	if len(cl.Opaque) > 0 || len(cl.Atoms) == 0 {
		return false
	}
	for _, a := range cl.Atoms {
		ord, ok := s.colIdx[a.Col]
		if !ok {
			return false
		}
		if !atomImpossible(a, bm.Stats.Columns[ord]) {
			return false
		}
	}
	return true
}

// atomImpossible reports whether stats prove no value satisfies the atom:
// the min/max range for ordered comparisons, plus the block's bloom filter
// for equality (the "range bloom" of paper Fig. 6). NULL handling leans on
// EvalAtom's guard ordering: a NULL value (or NULL literal) is false before
// negation applies, so NULL rows satisfy neither an atom nor its negation
// and never block pruning on their own.
func atomImpossible(a plan.Atom, st colstore.Stats) bool {
	if st.Min.IsNull() {
		// Min is NULL exactly when the chunk has no non-NULL value; an
		// all-NULL (or empty) chunk satisfies no atom, negated included.
		return true
	}
	if a.Val.IsNull() {
		// A NULL literal matches nothing, for every operator.
		return true
	}
	if a.Negated || a.Op == sqlparser.OpContains {
		// Min/max say nothing about substring membership or about what a
		// negation misses in a mixed-NULL chunk.
		return false
	}
	if a.Op == sqlparser.OpEq && st.Bloom != nil && !st.Bloom.MayContain(colstore.BloomKey(a.Val)) {
		return true
	}
	cmpMin, errMin := types.Compare(a.Val, st.Min)
	cmpMax, errMax := types.Compare(a.Val, st.Max)
	if errMin != nil || errMax != nil {
		return false
	}
	switch a.Op {
	case sqlparser.OpEq:
		return cmpMin < 0 || cmpMax > 0
	case sqlparser.OpNe:
		// Every non-NULL value equals val, so != matches no non-NULL row;
		// NULL rows match nothing regardless.
		return cmpMin == 0 && cmpMax == 0
	case sqlparser.OpLt:
		return cmpMin <= 0 // val <= min: nothing below val
	case sqlparser.OpLe:
		return cmpMin < 0
	case sqlparser.OpGt:
		return cmpMax >= 0
	case sqlparser.OpGe:
		return cmpMax > 0
	default:
		return false
	}
}

// selection computes the block's selection bitmap from the pushed-down CNF.
// decided reports whether every clause was answered from bitmaps.
func (s *scanner) selection(bm colstore.BlockMeta) (*bitmap.Bitmap, bool, error) {
	n := bm.Stats.NumRows
	sel := bitmap.NewFull(n)
	allIndexed := true
	for _, cl := range s.plan.Filter.Clauses {
		// Single-atom clauses take the striped hot path when the index holds
		// the entry in cache-line layout: the (pre-negated) striped form is
		// folded into the running selection word-at-a-time, skipping the
		// dense materialization of the generic path. The selection content
		// is identical either way; only hit accounting differs.
		if s.sidx != nil && len(cl.Atoms) == 1 && len(cl.Opaque) == 0 {
			if sb, ok := s.sidx.LookupStriped(s.ctx, s.blockID(s.block), cl.Atoms[0], n); ok {
				if sb.Len() != n {
					return nil, false, fmt.Errorf("exec: striped index bitmap length %d != block rows %d", sb.Len(), n)
				}
				s.stats.IndexHits++
				sb.AndInto(sel)
				if !sel.Any() {
					return sel, allIndexed, nil
				}
				continue
			}
		}
		// clauseBm accumulates the OR of the clause's leaves. Bitmaps
		// fetched from the index are owned by the cache and must never be
		// mutated; owned tracks whether clauseBm is safe to OR into, and a
		// lazy clone happens on the first mutation of a borrowed bitmap.
		var clauseBm *bitmap.Bitmap
		owned := false
		or := func(bm *bitmap.Bitmap, own bool) {
			if clauseBm == nil {
				clauseBm, owned = bm, own
				return
			}
			if !owned {
				clauseBm = clauseBm.Clone()
				owned = true
			}
			clauseBm.Or(bm)
		}
		for _, a := range cl.Atoms {
			abm, fromIndex, err := s.atomBitmap(a, n)
			if err != nil {
				return nil, false, err
			}
			if !fromIndex {
				allIndexed = false
			}
			// Freshly evaluated bitmaps are ours; index answers are
			// borrowed from the cache.
			or(abm, !fromIndex)
		}
		for _, op := range cl.Opaque {
			allIndexed = false
			obm, err := s.opaqueBitmap(op, n)
			if err != nil {
				return nil, false, err
			}
			or(obm, true)
		}
		if clauseBm != nil {
			sel.And(clauseBm)
			if !sel.Any() {
				return sel, allIndexed, nil
			}
		}
	}
	return sel, allIndexed, nil
}

// atomBitmap resolves one atom: SmartIndex hit, or evaluate + store.
// fromIndex reports a cache hit. The atom is passed to the index with its
// negation intact: only the index knows whether bit-NOT is sound for the
// block (it is not when the column has NULLs, which satisfy neither the
// predicate nor its negation).
func (s *scanner) atomBitmap(a plan.Atom, n int) (*bitmap.Bitmap, bool, error) {
	blockID := s.blockID(s.block)
	if s.idx != nil {
		if cached, ok := s.idx.Lookup(s.ctx, blockID, a, n); ok {
			s.stats.IndexHits++
			if cached.Len() != n {
				return nil, false, fmt.Errorf("exec: index bitmap length %d != block rows %d", cached.Len(), n)
			}
			return cached, true, nil
		}
		s.stats.IndexMisses++
	}
	col, err := s.column(a.Col)
	if err != nil {
		return nil, false, err
	}
	if obs, ok := s.idx.(ColumnObserver); ok {
		obs.ObserveColumn(blockID, a.Col, col, n)
	}
	pos := evalAtomOverColumn(positive(a), col, n)
	if s.idx != nil {
		ord := s.colIdx[a.Col]
		s.idx.Store(blockID, positive(a), pos, s.meta.Blocks[s.block].Stats.Columns[ord])
	}
	if a.Negated {
		// Evaluate the negated form directly over the column: NULLs (and
		// for repeated columns, records with no matching element) follow
		// EvalAtom's semantics rather than a blind bit-NOT.
		return evalAtomOverColumn(a, col, n), false, nil
	}
	return pos, false, nil
}

// positive strips negation so the index stores the canonical form.
func positive(a plan.Atom) plan.Atom {
	a.Negated = false
	return a
}

// evalAtomOverColumn evaluates the atom for every record. Simple
// comparisons over flat columns take the vectorized kernel; repeated
// columns (ANY-element semantics), CONTAINS, negation and booleans fall
// back to the row-wise tree walk.
func evalAtomOverColumn(a plan.Atom, col *colstore.Column, n int) *bitmap.Bitmap {
	if out, ok := evalAtomKernel(a, col, n); ok {
		return out
	}
	out := bitmap.New(n)
	if col.Offsets != nil {
		for r := 0; r < n; r++ {
			start, end := col.Offsets[r], col.Offsets[r+1]
			for i := start; i < end; i++ {
				if plan.EvalAtom(a, col.Value(int(i))) {
					out.Set(r)
					break
				}
			}
		}
		return out
	}
	for r := 0; r < n; r++ {
		if plan.EvalAtom(a, col.Value(r)) {
			out.Set(r)
		}
	}
	return out
}

// opaqueBitmap evaluates a non-atom leaf row-wise over fact columns.
func (s *scanner) opaqueBitmap(e sqlparser.Expr, n int) (*bitmap.Bitmap, error) {
	out := bitmap.New(n)
	env := &factEnv{s: s}
	for r := 0; r < n; r++ {
		env.row = r
		ok, err := EvalBool(e, env)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Set(r)
		}
	}
	return out, nil
}

// emitRecord joins record r against the dimensions and emits outputs or
// updates partial aggregates. done=true when the pushed-down limit is hit.
func (s *scanner) emitRecord(r int, res *TaskResult) (bool, error) {
	env := &joinEnv{fact: &factEnv{s: s, row: r}, dimRows: make([]int, len(s.dims))}
	return s.joinFrom(0, env, res)
}

// joinFrom recursively expands dimension matches (star join fan-out).
func (s *scanner) joinFrom(di int, env *joinEnv, res *TaskResult) (bool, error) {
	if di == len(s.dims) {
		return s.emitJoined(env, res)
	}
	dt := s.dims[di]
	d := dt.plan

	var candidates []int
	switch {
	case len(d.DimKeys) == 0: // cross join
		candidates = make([]int, len(d.Data))
		for i := range d.Data {
			candidates[i] = i
		}
	default:
		keyVals := make([]types.Value, len(d.FactKeys))
		for i, fk := range d.FactKeys {
			v, err := Eval(fk, env.fact)
			if err != nil {
				return false, err
			}
			if v.IsNull() { // NULL keys never join
				candidates = nil
				keyVals = nil
				break
			}
			keyVals[i] = v
		}
		if keyVals != nil {
			candidates = dt.hash[GroupKey(keyVals)]
		}
	}

	matched := false
	for _, ri := range candidates {
		env.dimRows[di] = ri
		env.present = append(env.present, di)
		ok, err := s.residualOK(dt, env)
		if err != nil {
			return false, err
		}
		if ok {
			done, err := s.joinFrom(di+1, env, res)
			if err != nil || done {
				env.present = env.present[:len(env.present)-1]
				return done, err
			}
			matched = true
		}
		env.present = env.present[:len(env.present)-1]
	}
	if !matched && d.Type == sqlparser.JoinLeftOuter {
		// Preserve the fact row with NULL dimension columns.
		return s.joinFrom(di+1, env, res)
	}
	return false, nil
}

func (s *scanner) residualOK(dt *dimTable, env *joinEnv) (bool, error) {
	for _, cl := range dt.plan.Residual {
		ok, err := s.clauseHolds(cl, env)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (s *scanner) clauseHolds(cl plan.Clause, env Env) (bool, error) {
	for _, a := range cl.Atoms {
		v, err := env.Col(a.Table, a.Col)
		if err != nil {
			return false, err
		}
		if plan.EvalAtom(a, v) {
			return true, nil
		}
	}
	for _, op := range cl.Opaque {
		ok, err := EvalBool(op, env)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// emitJoined applies post-join clauses then emits the joined row.
func (s *scanner) emitJoined(env *joinEnv, res *TaskResult) (bool, error) {
	for _, cl := range s.plan.Post {
		ok, err := s.clauseHolds(cl, env)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	res.Stats.RowsEmitted++
	if s.plan.Mode == plan.ModeAgg {
		return false, res.Groups.UpdateRow(s.plan.GroupBy, s.plan.Aggs, env)
	}
	row := make([]types.Value, len(s.plan.A.Outputs))
	for i, oi := range s.plan.A.Outputs {
		v, err := Eval(oi.Expr, env)
		if err != nil {
			return false, err
		}
		row[i] = v
	}
	res.Rows = append(res.Rows, row)
	return s.plan.ScanLimit >= 0 && int64(len(res.Rows)) >= s.plan.ScanLimit, nil
}

// factEnv exposes the current fact record's columns.
type factEnv struct {
	s   *scanner
	row int
}

// Col implements Env over the fact block.
func (e *factEnv) Col(table, col string) (types.Value, error) {
	if table != e.s.fact {
		return types.Value{}, fmt.Errorf("exec: column %s.%s not available in fact scan", table, col)
	}
	c, err := e.s.column(col)
	if err != nil {
		return types.Value{}, err
	}
	if c.Offsets != nil {
		start, end := c.Offsets[e.row], c.Offsets[e.row+1]
		if start == end {
			return types.NullValue(), nil
		}
		return c.Value(int(start)), nil
	}
	return c.Value(e.row), nil
}

// Repeated implements Env.
func (e *factEnv) Repeated(table, col string) ([]types.Value, error) {
	if table != e.s.fact {
		return nil, fmt.Errorf("exec: repeated column %s.%s outside fact table", table, col)
	}
	c, err := e.s.column(col)
	if err != nil {
		return nil, err
	}
	if c.Offsets == nil {
		return []types.Value{c.Value(e.row)}, nil
	}
	start, end := c.Offsets[e.row], c.Offsets[e.row+1]
	out := make([]types.Value, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, c.Value(int(i)))
	}
	return out, nil
}

// Sub implements Env; leaves have no substitutions.
func (e *factEnv) Sub(sqlparser.Expr) (types.Value, bool) { return types.Value{}, false }

// joinEnv exposes fact columns plus the currently matched dimension rows.
type joinEnv struct {
	fact    *factEnv
	dimRows []int
	present []int // dim ordinals currently bound (in join order)
}

// Col implements Env across fact and joined dimensions.
func (e *joinEnv) Col(table, col string) (types.Value, error) {
	if table == e.s().fact {
		return e.fact.Col(table, col)
	}
	for di, dt := range e.s().dims {
		if dt.binding != table {
			continue
		}
		if !e.bound(di) {
			return types.NullValue(), nil // left-outer non-match
		}
		ci, ok := dt.colIdx[col]
		if !ok {
			return types.Value{}, fmt.Errorf("exec: dimension %s has no shipped column %q", table, col)
		}
		return dt.plan.Data[e.dimRows[di]][ci], nil
	}
	return types.Value{}, fmt.Errorf("exec: unknown table %q", table)
}

func (e *joinEnv) bound(di int) bool {
	for _, p := range e.present {
		if p == di {
			return true
		}
	}
	return false
}

func (e *joinEnv) s() *scanner { return e.fact.s }

// Repeated implements Env (fact table only).
func (e *joinEnv) Repeated(table, col string) ([]types.Value, error) {
	return e.fact.Repeated(table, col)
}

// Sub implements Env.
func (e *joinEnv) Sub(sqlparser.Expr) (types.Value, bool) { return types.Value{}, false }
