package ingest

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

func logSchema() *types.Schema {
	return types.MustSchema(
		types.Field{Name: "ts", Type: types.Int64},
		types.Field{Name: "user.name", Type: types.String},
		types.Field{Name: "clicks.pos", Type: types.Int64, Repeated: true},
	)
}

func newConverter(t *testing.T) (*Converter, *storage.Router) {
	t.Helper()
	router := storage.NewRouter(storage.NewMemFS("", nil))
	router.Register(storage.NewMemFS("hdfs", nil))
	return &Converter{
		Router:    router,
		Schema:    logSchema(),
		SrcPrefix: "/var/log/app",
		DstPrefix: "/hdfs/applogs",
	}, router
}

func writeRaw(t *testing.T, router *storage.Router, path, content string) {
	t.Helper()
	if err := router.WriteFile(context.Background(), path, []byte(content)); err != nil {
		t.Fatal(err)
	}
}

func TestScanOnceConvertsNewFiles(t *testing.T) {
	conv, router := newConverter(t)
	ctx := context.Background()
	writeRaw(t, router, "/var/log/app/0001.json",
		`{"ts": 1, "user": {"name": "li"}, "clicks": [{"pos": 2}, {"pos": 5}]}
{"ts": 2, "user": {"name": "wang"}}`)

	parts, err := conv.ScanOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || parts[0].Rows != 2 {
		t.Fatalf("parts = %+v", parts)
	}
	// Converted partition is a valid Feisu file with the right contents.
	data, err := router.ReadFile(ctx, parts[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := colstore.ReadMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := colstore.ReadBlock(data, meta, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumRows != 2 {
		t.Errorf("rows = %d", blk.NumRows)
	}
	if vs := blk.RepeatedValues(2, 0); len(vs) != 2 || vs[1].I != 5 {
		t.Errorf("clicks.pos = %v", vs)
	}
	if row := blk.Row(1); row[1].S != "wang" {
		t.Errorf("row 1 = %v", row)
	}

	// Re-scan: nothing new.
	parts, err = conv.ScanOnce(ctx)
	if err != nil || len(parts) != 0 {
		t.Errorf("rescan = %v, %v", parts, err)
	}
}

func TestScanOncePicksUpLaterFiles(t *testing.T) {
	conv, router := newConverter(t)
	ctx := context.Background()
	writeRaw(t, router, "/var/log/app/a.json", `{"ts": 1}`)
	if parts, _ := conv.ScanOnce(ctx); len(parts) != 1 {
		t.Fatal("first file not converted")
	}
	writeRaw(t, router, "/var/log/app/b.json", `{"ts": 2}`)
	parts, err := conv.ScanOnce(ctx)
	if err != nil || len(parts) != 1 {
		t.Fatalf("second scan = %v, %v", parts, err)
	}
}

func TestLenientSkipsMalformed(t *testing.T) {
	conv, router := newConverter(t)
	writeRaw(t, router, "/var/log/app/x.json",
		"{\"ts\": 1}\nnot json at all\n{\"ts\": \"wrong type\"}\n{\"ts\": 3}")
	parts, err := conv.ScanOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || parts[0].Rows != 2 {
		t.Fatalf("parts = %+v", parts)
	}
	if conv.SkippedRecords != 2 {
		t.Errorf("skipped = %d", conv.SkippedRecords)
	}
}

func TestStrictFailsOnMalformed(t *testing.T) {
	conv, router := newConverter(t)
	conv.Strict = true
	writeRaw(t, router, "/var/log/app/x.json", "{\"ts\": 1}\nnot json")
	if _, err := conv.ScanOnce(context.Background()); err == nil {
		t.Fatal("strict mode should fail")
	}
}

func TestEmptyFileYieldsNoPartition(t *testing.T) {
	conv, router := newConverter(t)
	writeRaw(t, router, "/var/log/app/empty.json", "\n\n")
	parts, err := conv.ScanOnce(context.Background())
	if err != nil || len(parts) != 0 {
		t.Errorf("parts = %v, %v", parts, err)
	}
	// The empty file is still marked processed.
	parts, _ = conv.ScanOnce(context.Background())
	if len(parts) != 0 {
		t.Error("empty file rescanned")
	}
}

func TestWatcherDeliversBatches(t *testing.T) {
	conv, router := newConverter(t)
	var mu sync.Mutex
	var got []plan.PartitionMeta
	w := &Watcher{
		Conv: conv,
		OnNew: func(ctx context.Context, parts []plan.PartitionMeta) error {
			mu.Lock()
			got = append(got, parts...)
			mu.Unlock()
			return nil
		},
	}
	writeRaw(t, router, "/var/log/app/a.json", `{"ts": 1}`)
	w.Start(5 * time.Millisecond)
	defer w.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	writeRaw(t, router, "/var/log/app/b.json", `{"ts": 2}`)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher missed the second file")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWatcherReportsErrors(t *testing.T) {
	conv, router := newConverter(t)
	conv.Strict = true
	writeRaw(t, router, "/var/log/app/bad.json", "not json")
	errs := make(chan error, 1)
	w := &Watcher{
		Conv:    conv,
		OnError: func(err error) { errs <- err },
	}
	w.tick()
	select {
	case <-errs:
	default:
		t.Fatal("error not reported")
	}
}

func TestManyFilesDeterministicOrder(t *testing.T) {
	conv, router := newConverter(t)
	for i := 0; i < 5; i++ {
		writeRaw(t, router, fmt.Sprintf("/var/log/app/%04d.json", i), fmt.Sprintf(`{"ts": %d}`, i))
	}
	parts, err := conv.ScanOnce(context.Background())
	if err != nil || len(parts) != 5 {
		t.Fatalf("parts = %v, %v", parts, err)
	}
	for i := 1; i < len(parts); i++ {
		if parts[i].Path <= parts[i-1].Path {
			t.Errorf("partition order not deterministic: %v", parts)
		}
	}
}

// TestInvalidateHookFiresPerWrittenPartition pins the invalidation contract:
// the hook fires once per written partition, with the destination path,
// before ScanOnce returns it — and never for empty files (nothing written).
func TestInvalidateHookFiresPerWrittenPartition(t *testing.T) {
	conv, router := newConverter(t)
	var invalidated []string
	conv.Invalidate = func(path string) { invalidated = append(invalidated, path) }
	ctx := context.Background()
	writeRaw(t, router, "/var/log/app/a.json", `{"ts": 1}`)
	writeRaw(t, router, "/var/log/app/b.json", `{"ts": 2}`)
	writeRaw(t, router, "/var/log/app/empty.json", "")

	parts, err := conv.ScanOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || len(invalidated) != 2 {
		t.Fatalf("parts=%d invalidations=%d, want 2 and 2", len(parts), len(invalidated))
	}
	for i, p := range parts {
		if invalidated[i] != p.Path {
			t.Errorf("invalidation %d = %q, want partition path %q", i, invalidated[i], p.Path)
		}
	}
}

// A converter that lost its done/seq state (process restart) reuses sequence
// numbers and overwrites earlier output; the hook must fire for the rewritten
// path so stale cached bytes get dropped.
func TestInvalidateHookFiresOnRewrite(t *testing.T) {
	conv, router := newConverter(t)
	ctx := context.Background()
	writeRaw(t, router, "/var/log/app/a.json", `{"ts": 1, "user": {"name": "old"}}`)
	first, err := conv.ScanOnce(ctx)
	if err != nil || len(first) != 1 {
		t.Fatalf("first scan = %v, %v", first, err)
	}

	// Restarted converter: same prefixes, fresh state, changed source.
	writeRaw(t, router, "/var/log/app/a.json", `{"ts": 9, "user": {"name": "new"}}`)
	conv2, _ := newConverter(t)
	conv2.Router = router
	var invalidated []string
	conv2.Invalidate = func(path string) { invalidated = append(invalidated, path) }
	second, err := conv2.ScanOnce(ctx)
	if err != nil || len(second) != 1 {
		t.Fatalf("second scan = %v, %v", second, err)
	}
	if second[0].Path != first[0].Path {
		t.Fatalf("restart did not reuse the sequence: %q vs %q", second[0].Path, first[0].Path)
	}
	if len(invalidated) != 1 || invalidated[0] != first[0].Path {
		t.Errorf("rewrite invalidated %v, want [%s]", invalidated, first[0].Path)
	}
}
