// Package ingest implements the paper's leaf-side conversion process
// (§III-B): "each storage node in a specific storage system is deployed a
// light-weight process, which monitors the storage for newly generated
// data (e.g., log data) and converts the data into Feisu in columnar
// format when new data arrive."
//
// A Converter scans a source prefix for raw JSON-lines files, flattens
// each record into the table schema (nested objects become dotted columns,
// arrays become repeated fields), writes a columnar partition next to the
// destination prefix, and reports the new partition metadata so the master
// can extend the catalog. A Watcher polls the converter on an interval.
package ingest

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// Converter turns raw JSON-lines files into Feisu partitions.
type Converter struct {
	Router *storage.Router
	Schema *types.Schema
	// SrcPrefix is watched for raw files (e.g. "/var/log/search/").
	SrcPrefix string
	// DstPrefix receives partition files (e.g. "/hdfs/search-logs").
	DstPrefix string
	// RowsPerBlock sizes row groups; 0 uses the colstore default.
	RowsPerBlock int
	// Strict fails the whole file on the first malformed record; by
	// default malformed lines are counted and skipped (production logs
	// are dirty).
	Strict bool
	// Invalidate, when set, is called with each partition path this
	// converter (re)writes, before the partition is reported upward. It
	// lets the embedding system drop stale cached state for the path —
	// footer metadata, SSD column chunks, semantic result-cache entries —
	// so readers never serve bytes from a superseded file. This matters
	// when a restarted converter reuses sequence numbers and overwrites
	// an earlier conversion's output.
	Invalidate func(path string)

	mu   sync.Mutex
	done map[string]bool
	seq  int

	// SkippedRecords counts malformed lines dropped in lenient mode.
	SkippedRecords int64
}

// ScanOnce converts every not-yet-processed source file and returns the
// new partitions, sorted by source path for determinism.
func (c *Converter) ScanOnce(ctx context.Context) ([]plan.PartitionMeta, error) {
	src, inPrefix := c.Router.Resolve(c.SrcPrefix)
	if src == nil {
		return nil, fmt.Errorf("ingest: no store for %q", c.SrcPrefix)
	}
	files, err := src.List(ctx, inPrefix)
	if err != nil {
		return nil, fmt.Errorf("ingest: list %q: %w", c.SrcPrefix, err)
	}
	sort.Strings(files)

	var out []plan.PartitionMeta
	for _, f := range files {
		full := c.fullSrcPath(f)
		c.mu.Lock()
		if c.done == nil {
			c.done = make(map[string]bool)
		}
		seen := c.done[full]
		c.mu.Unlock()
		if seen {
			continue
		}
		part, err := c.convert(ctx, full)
		if err != nil {
			return out, fmt.Errorf("ingest: convert %s: %w", full, err)
		}
		c.mu.Lock()
		c.done[full] = true
		c.mu.Unlock()
		if part != nil {
			out = append(out, *part)
		}
	}
	return out, nil
}

// fullSrcPath rebuilds the routed path for a listed in-store path.
func (c *Converter) fullSrcPath(inStore string) string {
	store, _ := c.Router.Resolve(c.SrcPrefix)
	if store.Scheme() == "" {
		return inStore
	}
	return "/" + store.Scheme() + inStore
}

// convert turns one JSON-lines file into a partition; empty files yield
// nil without error.
func (c *Converter) convert(ctx context.Context, srcPath string) (*plan.PartitionMeta, error) {
	raw, err := c.Router.ReadFile(ctx, srcPath)
	if err != nil {
		return nil, err
	}
	w := colstore.NewWriter(c.Schema, c.RowsPerBlock)
	rows := int64(0)
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := colstore.FlattenJSON(c.Schema, line)
		if err == nil {
			err = w.AppendRecord(rec)
		}
		if err != nil {
			if c.Strict {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			c.mu.Lock()
			c.SkippedRecords++
			c.mu.Unlock()
			continue
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rows == 0 {
		return nil, nil
	}
	data, err := w.Finish()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	dst := fmt.Sprintf("%s/conv-%05d", strings.TrimRight(c.DstPrefix, "/"), seq)
	if err := c.Router.WriteFile(ctx, dst, data); err != nil {
		return nil, err
	}
	if c.Invalidate != nil {
		c.Invalidate(dst)
	}
	return &plan.PartitionMeta{Path: dst, Rows: rows, Bytes: int64(len(data))}, nil
}

// Watcher polls a Converter and hands new partitions to a callback (the
// master's catalog update).
type Watcher struct {
	Conv *Converter
	// OnNew receives each batch of freshly converted partitions.
	OnNew func(ctx context.Context, parts []plan.PartitionMeta) error
	// OnError observes scan failures (optional); the watcher keeps going.
	OnError func(error)

	stop chan struct{}
	wg   sync.WaitGroup
}

// Start begins polling at the interval until Stop.
func (w *Watcher) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	w.stop = make(chan struct{})
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			w.tick()
			select {
			case <-w.stop:
				return
			case <-t.C:
			}
		}
	}()
}

func (w *Watcher) tick() {
	ctx := context.Background()
	parts, err := w.Conv.ScanOnce(ctx)
	if err != nil {
		if w.OnError != nil {
			w.OnError(err)
		}
		return
	}
	if len(parts) > 0 && w.OnNew != nil {
		if err := w.OnNew(ctx, parts); err != nil && w.OnError != nil {
			w.OnError(err)
		}
	}
}

// Stop ends polling and waits for the loop to exit.
func (w *Watcher) Stop() {
	if w.stop != nil {
		close(w.stop)
		w.wg.Wait()
		w.stop = nil
	}
}
