// Package types defines the scalar datatypes, values, schemas and rows shared
// by every layer of the Feisu engine: the columnar store, the SQL planner,
// the execution operators and the SmartIndex.
//
// Feisu stores data in columnar format and flattens nested (JSON) records
// into columns (paper §III-A), so the type system is deliberately small:
// 64-bit integers, 64-bit floats, booleans and strings, plus NULL.
package types

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"
)

// Type identifies a scalar datatype.
type Type uint8

// Supported scalar types.
const (
	// Null is the type of an untyped NULL literal.
	Null Type = iota
	// Int64 is a 64-bit signed integer.
	Int64
	// Float64 is a 64-bit IEEE-754 float.
	Float64
	// Bool is a boolean.
	Bool
	// String is a UTF-8 string.
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Bool:
		return "BOOLEAN"
	case String:
		return "STRING"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType maps a type name (case-insensitive) to a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "BIGINT", "INT", "INT64", "INTEGER", "LONG":
		return Int64, nil
	case "DOUBLE", "FLOAT", "FLOAT64", "REAL":
		return Float64, nil
	case "BOOLEAN", "BOOL":
		return Bool, nil
	case "STRING", "VARCHAR", "TEXT":
		return String, nil
	default:
		return Null, fmt.Errorf("types: unknown type name %q", s)
	}
}

// Numeric reports whether the type is a numeric type.
func (t Type) Numeric() bool { return t == Int64 || t == Float64 }

// Value is a single scalar value. The zero Value is NULL.
//
// Value is a compact tagged union: exactly one of the payload fields is
// meaningful, selected by T. Strings are held by reference; everything else
// is inline, so Value is cheap to copy.
type Value struct {
	T Type
	I int64
	F float64
	S string
	B bool
}

// NewInt returns an Int64 value.
func NewInt(v int64) Value { return Value{T: Int64, I: v} }

// NewFloat returns a Float64 value.
func NewFloat(v float64) Value { return Value{T: Float64, F: v} }

// NewBool returns a Bool value.
func NewBool(v bool) Value { return Value{T: Bool, B: v} }

// NewString returns a String value.
func NewString(v string) Value { return Value{T: String, S: v} }

// NullValue is the NULL value.
func NullValue() Value { return Value{} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.T == Null }

// AsFloat converts a numeric value to float64. It panics on non-numeric
// types; callers must check Numeric() first.
func (v Value) AsFloat() float64 {
	switch v.T {
	case Int64:
		return float64(v.I)
	case Float64:
		return v.F
	default:
		panic(fmt.Sprintf("types: AsFloat on %s", v.T))
	}
}

// String renders the value for display and for stable hashing of predicate
// atoms (SmartIndex keys embed the rendered value).
func (v Value) String() string {
	switch v.T {
	case Null:
		return "NULL"
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	case String:
		return strconv.Quote(v.S)
	default:
		return fmt.Sprintf("Value(%d)", uint8(v.T))
	}
}

// Compare compares two values. NULLs compare less than everything and equal
// to each other (total order for sorting). Numeric types compare across
// Int64/Float64. Comparing incompatible non-null types returns an error.
func Compare(a, b Value) (int, error) {
	if a.T == Null || b.T == Null {
		switch {
		case a.T == Null && b.T == Null:
			return 0, nil
		case a.T == Null:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.T.Numeric() && b.T.Numeric() {
		if a.T == Int64 && b.T == Int64 {
			switch {
			case a.I < b.I:
				return -1, nil
			case a.I > b.I:
				return 1, nil
			default:
				return 0, nil
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.T != b.T {
		return 0, fmt.Errorf("types: cannot compare %s with %s", a.T, b.T)
	}
	switch a.T {
	case Bool:
		switch {
		case !a.B && b.B:
			return -1, nil
		case a.B && !b.B:
			return 1, nil
		default:
			return 0, nil
		}
	case String:
		return strings.Compare(a.S, b.S), nil
	default:
		return 0, fmt.Errorf("types: cannot compare %s values", a.T)
	}
}

// Equal reports whether two values are equal under Compare semantics,
// treating NULL == NULL as true (useful for grouping keys).
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Coerce converts v to the target type when a lossless or conventional
// conversion exists (int<->float, string parsing is NOT performed here).
func Coerce(v Value, target Type) (Value, error) {
	if v.T == target || v.T == Null {
		return v, nil
	}
	switch {
	case v.T == Int64 && target == Float64:
		return NewFloat(float64(v.I)), nil
	case v.T == Float64 && target == Int64:
		return NewInt(int64(v.F)), nil
	default:
		return Value{}, fmt.Errorf("types: cannot coerce %s to %s", v.T, target)
	}
}

// Field describes one column of a schema. Flattened nested fields keep their
// dotted JSON path as the name (e.g. "click.pos"). Repeated marks columns
// flattened from JSON arrays; they carry record offsets in the column store
// and support WITHIN-record aggregation.
type Field struct {
	Name     string
	Type     Type
	Repeated bool
}

// Schema is an ordered list of fields.
type Schema struct {
	Fields []Field
	byName map[string]int
}

// NewSchema builds a schema and its name index. Duplicate names are an error.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{Fields: fields, byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("types: field %d has empty name", i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("types: duplicate field name %q", f.Name)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// GobEncode serializes only the field list; the name index is derived
// state. Without this, gob would silently drop the unexported byName map
// and a schema shipped over the wire transport could not resolve columns.
func (s *Schema) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.Fields); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds the schema, including the name index, from the field
// list written by GobEncode.
func (s *Schema) GobDecode(b []byte) error {
	var fields []Field
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&fields); err != nil {
		return err
	}
	ns, err := NewSchema(fields...)
	if err != nil {
		return err
	}
	*s = *ns
	return nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the ordinal of the named field, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Field returns the field with the given name.
func (s *Schema) Field(name string) (Field, bool) {
	i := s.Index(name)
	if i < 0 {
		return Field{}, false
	}
	return s.Fields[i], true
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.Fields) }

// Project returns a new schema containing the named fields in order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		f, ok := s.Field(n)
		if !ok {
			return nil, fmt.Errorf("types: unknown field %q", n)
		}
		fields = append(fields, f)
	}
	return NewSchema(fields...)
}

// String renders the schema as "name TYPE, ...".
func (s *Schema) String() string {
	var b strings.Builder
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type.String())
		if f.Repeated {
			b.WriteString(" REPEATED")
		}
	}
	return b.String()
}

// Row is one tuple of values, positionally aligned with a schema.
type Row []Value
