package types

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Null: "NULL", Int64: "BIGINT", Float64: "DOUBLE", Bool: "BOOLEAN", String: "STRING",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type = %q", got)
	}
}

func TestParseType(t *testing.T) {
	ok := map[string]Type{
		"bigint": Int64, "INT": Int64, "integer": Int64, "long": Int64,
		"double": Float64, "FLOAT": Float64, "real": Float64,
		"bool": Bool, "BOOLEAN": Bool,
		"string": String, "varchar": String, "TEXT": String,
	}
	for s, want := range ok {
		got, err := ParseType(s)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewString("a b"), `"a b"`},
		{NullValue(), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueIsNullAndNumeric(t *testing.T) {
	if !NullValue().IsNull() {
		t.Error("NullValue should be null")
	}
	if NewInt(0).IsNull() {
		t.Error("NewInt(0) should not be null")
	}
	if !Int64.Numeric() || !Float64.Numeric() {
		t.Error("int64/float64 should be numeric")
	}
	if Bool.Numeric() || String.Numeric() || Null.Numeric() {
		t.Error("bool/string/null should not be numeric")
	}
}

func TestAsFloat(t *testing.T) {
	if got := NewInt(3).AsFloat(); got != 3.0 {
		t.Errorf("AsFloat int = %v", got)
	}
	if got := NewFloat(2.5).AsFloat(); got != 2.5 {
		t.Errorf("AsFloat float = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("AsFloat on string should panic")
		}
	}()
	NewString("x").AsFloat()
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(1.5), NewInt(1), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{NullValue(), NewInt(1), -1},
		{NewInt(1), NullValue(), 1},
		{NullValue(), NullValue(), 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v) error: %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncompatible(t *testing.T) {
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Error("string vs int should fail")
	}
	if _, err := Compare(NewBool(true), NewFloat(1)); err == nil {
		t.Error("bool vs float should fail")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(NullValue(), NullValue()) {
		t.Error("NULL should Equal NULL for grouping")
	}
	if !Equal(NewInt(2), NewFloat(2)) {
		t.Error("2 should equal 2.0")
	}
	if Equal(NewInt(2), NewString("2")) {
		t.Error("2 should not equal \"2\"")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewInt(3), Float64)
	if err != nil || v.T != Float64 || v.F != 3.0 {
		t.Errorf("Coerce int->float = %v, %v", v, err)
	}
	v, err = Coerce(NewFloat(3.9), Int64)
	if err != nil || v.T != Int64 || v.I != 3 {
		t.Errorf("Coerce float->int = %v, %v", v, err)
	}
	v, err = Coerce(NullValue(), Int64)
	if err != nil || !v.IsNull() {
		t.Errorf("Coerce null = %v, %v", v, err)
	}
	if _, err = Coerce(NewString("x"), Int64); err == nil {
		t.Error("Coerce string->int should fail")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		c1, _ := Compare(NewInt(a), NewInt(b))
		c2, _ := Compare(NewInt(b), NewInt(a))
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		va, vb, vc := NewFloat(a), NewFloat(b), NewFloat(c)
		ab, _ := Compare(va, vb)
		bc, _ := Compare(vb, vc)
		ac, _ := Compare(va, vc)
		if ab <= 0 && bc <= 0 {
			return ac <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		v := NewString(s)
		return v.T == String && v.S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewSchema(t *testing.T) {
	s, err := NewSchema(Field{Name: "a", Type: Int64}, Field{Name: "b", Type: String})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Index("a") != 0 || s.Index("b") != 1 || s.Index("c") != -1 {
		t.Error("Index lookup wrong")
	}
	f, ok := s.Field("b")
	if !ok || f.Type != String {
		t.Error("Field lookup wrong")
	}
	if _, ok := s.Field("zzz"); ok {
		t.Error("missing field should not be found")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Field{Name: "a", Type: Int64}, Field{Name: "a", Type: String}); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewSchema(Field{Name: "", Type: Int64}); err == nil {
		t.Error("empty name should fail")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on duplicate")
		}
	}()
	MustSchema(Field{Name: "a", Type: Int64}, Field{Name: "a", Type: Int64})
}

func TestSchemaProject(t *testing.T) {
	s := MustSchema(
		Field{Name: "a", Type: Int64},
		Field{Name: "b", Type: String},
		Field{Name: "c", Type: Float64},
	)
	p, err := s.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Fields[0].Name != "c" || p.Fields[1].Name != "a" {
		t.Errorf("Project = %v", p.Fields)
	}
	if _, err := s.Project("missing"); err == nil {
		t.Error("projecting missing field should fail")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(
		Field{Name: "a", Type: Int64},
		Field{Name: "tags", Type: String, Repeated: true},
	)
	want := "a BIGINT, tags STRING REPEATED"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSchemaGobRoundTrip(t *testing.T) {
	s := MustSchema(
		Field{Name: "a", Type: Int64},
		Field{Name: "click.pos", Type: String, Repeated: true},
		Field{Name: "b", Type: Float64},
	)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	var got *Schema
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Fields) != 3 || got.Fields[1].Name != "click.pos" || !got.Fields[1].Repeated {
		t.Fatalf("fields lost: %+v", got.Fields)
	}
	// The derived name index must be rebuilt, not silently dropped.
	for i, f := range s.Fields {
		if got.Index(f.Name) != i {
			t.Errorf("Index(%q) = %d, want %d", f.Name, got.Index(f.Name), i)
		}
	}
	if got.Index("missing") != -1 {
		t.Error("unknown column resolved")
	}
}
