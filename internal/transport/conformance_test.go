package transport

// Transport conformance battery: every behavioral contract of the Network
// seam, run identically against the in-process Fabric (the deterministic
// test double) and the TCP wire transport. The cluster-level suites
// (differential, metamorphic, chaos equivalence) get the same guarantee via
// FEISU_TRANSPORT=tcp; this battery is the fast, focused version.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

type confPayload struct {
	N    int
	S    string
	Blob []byte
}

type confReply struct {
	Echo string
	N    int
	Blob []byte
}

func init() {
	RegisterPayload(confPayload{})
	RegisterPayload(confReply{})
}

type netCase struct {
	name string
	mk   func(t *testing.T, topo *Topology, opt Options) Network
}

func netCases() []netCase {
	return []netCase{
		{"fabric", func(t *testing.T, topo *Topology, opt Options) Network {
			return NewFabric(topo, opt)
		}},
		{"tcp", func(t *testing.T, topo *Topology, opt Options) Network {
			tr, err := NewTCP(topo, opt, TCPOptions{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { tr.Close() })
			return tr
		}},
	}
}

// fixedFault returns the same Fault for every message.
type fixedFault struct{ f Fault }

func (ff fixedFault) Intercept(ctx context.Context, from, to string, class Class, size int64) Fault {
	return ff.f
}

func TestConformanceRoundTrip(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			n := nc.mk(t, nil, Options{})
			n.Register("leaf1", func(ctx context.Context, from string, payload any) (any, error) {
				p := payload.(confPayload)
				if from != "master" {
					return nil, fmt.Errorf("from = %q", from)
				}
				return confReply{Echo: p.S, N: p.N * 2, Blob: p.Blob}, nil
			})
			got, err := n.Call(context.Background(), "master", "leaf1", Control, confPayload{N: 21, S: "hi", Blob: []byte{1, 2, 3}}, 100)
			if err != nil {
				t.Fatal(err)
			}
			r := got.(confReply)
			if r.Echo != "hi" || r.N != 42 || len(r.Blob) != 3 {
				t.Errorf("reply = %+v", r)
			}
			c := n.Counters()
			if c.Msgs[Control].Value() != 1 || c.Bytes[Control].Value() != 100 {
				t.Errorf("counters = %d msgs %d bytes", c.Msgs[Control].Value(), c.Bytes[Control].Value())
			}
		})
	}
}

func TestConformanceNilPayloadAndReply(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			n := nc.mk(t, nil, Options{})
			n.Register("x", func(ctx context.Context, from string, payload any) (any, error) {
				if payload != nil {
					return nil, fmt.Errorf("payload = %v, want nil", payload)
				}
				return nil, nil
			})
			got, err := n.Call(context.Background(), "m", "x", Control, nil, 0)
			if err != nil || got != nil {
				t.Fatalf("nil round trip = %v, %v", got, err)
			}
		})
	}
}

func TestConformanceUnknownDownDeregister(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			n := nc.mk(t, nil, Options{})
			if _, err := n.Call(context.Background(), "m", "ghost", Control, nil, 0); !errors.Is(err, ErrUnknownNode) {
				t.Errorf("unknown = %v", err)
			}
			n.Register("x", func(context.Context, string, any) (any, error) { return nil, nil })
			n.SetDown("x", true)
			if _, err := n.Call(context.Background(), "m", "x", Control, nil, 0); !errors.Is(err, ErrUnknownNode) {
				t.Errorf("down = %v", err)
			}
			n.SetDown("x", false)
			if _, err := n.Call(context.Background(), "m", "x", Control, nil, 0); err != nil {
				t.Errorf("up again = %v", err)
			}
			n.Deregister("x")
			if _, err := n.Call(context.Background(), "m", "x", Control, nil, 0); !errors.Is(err, ErrUnknownNode) {
				t.Errorf("deregistered = %v", err)
			}
		})
	}
}

// Handler errors must preserve both the message and typed sentinels across
// the transport: the stem's failover logic switches on
// errors.Is(err, ErrUnknownNode).
func TestConformanceHandlerErrors(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			n := nc.mk(t, nil, Options{})
			n.Register("x", func(ctx context.Context, from string, payload any) (any, error) {
				switch payload.(string) {
				case "plain":
					return nil, errors.New("scan failed: extent 7 corrupt")
				case "unknown":
					return nil, fmt.Errorf("forwarding: %w", ErrUnknownNode)
				default:
					return nil, fmt.Errorf("chaos: %w", ErrInjected)
				}
			})
			_, err := n.Call(context.Background(), "m", "x", Control, "plain", 0)
			if err == nil || !strings.Contains(err.Error(), "extent 7 corrupt") {
				t.Errorf("plain error = %v", err)
			}
			if _, err := n.Call(context.Background(), "m", "x", Control, "unknown", 0); !errors.Is(err, ErrUnknownNode) {
				t.Errorf("sentinel ErrUnknownNode lost: %v", err)
			}
			if _, err := n.Call(context.Background(), "m", "x", Control, "injected", 0); !errors.Is(err, ErrInjected) {
				t.Errorf("sentinel ErrInjected lost: %v", err)
			}
		})
	}
}

func TestConformanceInterceptorDropAndDelay(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			n := nc.mk(t, nil, Options{})
			var calls atomic.Int32
			n.Register("x", func(context.Context, string, any) (any, error) {
				calls.Add(1)
				return "ok", nil
			})
			custom := errors.New("link flap")
			n.SetInterceptor(fixedFault{Fault{Drop: true, Err: custom}})
			if _, err := n.Call(context.Background(), "m", "x", Control, "p", 1); !errors.Is(err, custom) {
				t.Errorf("drop err = %v", err)
			}
			if calls.Load() != 0 {
				t.Error("dropped message reached handler")
			}
			n.SetInterceptor(fixedFault{Fault{Drop: true}})
			if _, err := n.Call(context.Background(), "m", "x", Control, "p", 1); !errors.Is(err, ErrInjected) {
				t.Errorf("default drop err = %v", err)
			}
			n.SetInterceptor(fixedFault{Fault{Delay: 20 * time.Millisecond}})
			start := time.Now()
			if _, err := n.Call(context.Background(), "m", "x", Control, "p", 1); err != nil {
				t.Fatal(err)
			}
			if time.Since(start) < 20*time.Millisecond {
				t.Error("delay not applied")
			}
			// A delay longer than the deadline fails the call.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			n.SetInterceptor(fixedFault{Fault{Delay: time.Second}})
			if _, err := n.Call(ctx, "m", "x", Control, "p", 1); err == nil {
				t.Error("delayed past deadline should fail")
			}
		})
	}
}

// Satellite regression: at-least-once duplication delivers twice, bills
// both copies through the cost model and counters, and the caller sees the
// surviving reply even when one copy fails.
func TestConformanceDuplicateBillsBothDeliveries(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			topo := NewTopology()
			topo.Place("m", "r1", "dc1")
			topo.Place("l", "r2", "dc1") // same dc: 4 hops
			model := sim.DefaultCostModel()
			n := nc.mk(t, topo, Options{Model: model})
			var calls atomic.Int32
			n.Register("l", func(context.Context, string, any) (any, error) {
				calls.Add(1)
				return "ok", nil
			})
			n.SetInterceptor(fixedFault{Fault{Duplicate: true}})
			bill := sim.NewBill()
			ctx := storage.WithBill(context.Background(), bill)
			got, err := n.Call(ctx, "m", "l", Read, "p", 1000)
			if err != nil || got != "ok" {
				t.Fatalf("call = %v, %v", got, err)
			}
			if calls.Load() != 2 {
				t.Errorf("handler invoked %d times, want 2", calls.Load())
			}
			want := 2 * model.TransferCost(1000, 4)
			if bill.Time() != want {
				t.Errorf("bill = %v, want %v (both deliveries billed)", bill.Time(), want)
			}
			c := n.Counters()
			if c.Msgs[Read].Value() != 2 || c.Bytes[Read].Value() != 2000 {
				t.Errorf("counters = %d msgs %d bytes, want 2 / 2000", c.Msgs[Read].Value(), c.Bytes[Read].Value())
			}
		})
	}
}

func TestConformanceDuplicateSurvivingReply(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			n := nc.mk(t, nil, Options{})
			var calls atomic.Int32
			failOn := func(k int32) Handler {
				return func(context.Context, string, any) (any, error) {
					if calls.Add(1) == k {
						return nil, errors.New("transient")
					}
					return "survived", nil
				}
			}
			n.SetInterceptor(fixedFault{Fault{Duplicate: true}})

			// First delivery fails, duplicate succeeds: the duplicate's reply
			// must surface (this was masked before the fix).
			n.Register("x", failOn(1))
			got, err := n.Call(context.Background(), "m", "x", Control, "p", 1)
			if err != nil || got != "survived" {
				t.Errorf("first-fails: got %v, %v; want surviving reply", got, err)
			}

			// First succeeds, duplicate fails: still a success.
			calls.Store(0)
			n.Register("x", failOn(2))
			got, err = n.Call(context.Background(), "m", "x", Control, "p", 1)
			if err != nil || got != "survived" {
				t.Errorf("second-fails: got %v, %v; want surviving reply", got, err)
			}

			// Both fail: the error surfaces.
			n.Register("x", func(context.Context, string, any) (any, error) {
				return nil, errors.New("hard down")
			})
			if _, err = n.Call(context.Background(), "m", "x", Control, "p", 1); err == nil {
				t.Error("both-fail: want error")
			}
		})
	}
}

func TestConformanceControlBypassesDataSlots(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			n := nc.mk(t, nil, Options{DataSlots: 1})
			block := make(chan struct{})
			started := make(chan struct{})
			var once sync.Once
			n.Register("leaf", func(ctx context.Context, from string, payload any) (any, error) {
				if payload.(string) == "slow" {
					once.Do(func() { close(started) })
					<-block
				}
				return "ok", nil
			})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = n.Call(context.Background(), "m", "leaf", Read, "slow", 1)
			}()
			<-started

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			if _, err := n.Call(ctx, "m", "leaf", Write, "fast", 1); err == nil {
				t.Error("data call should time out while slot is held")
			}
			got, err := n.Call(context.Background(), "m", "leaf", Control, "ping", 1)
			if err != nil || got != "ok" {
				t.Errorf("control call = %v, %v", got, err)
			}
			close(block)
			wg.Wait()
		})
	}
}

// Large payloads and replies must survive intact (over TCP this exercises
// the streamed framePayload chain: bodies above 256 KiB span frames).
func TestConformanceLargeStreamingPayload(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			n := nc.mk(t, nil, Options{})
			n.Register("leaf", func(ctx context.Context, from string, payload any) (any, error) {
				p := payload.(confPayload)
				return confReply{N: len(p.Blob), Blob: p.Blob}, nil
			})
			blob := make([]byte, 700_000)
			for i := range blob {
				blob[i] = byte(i * 31)
			}
			got, err := n.Call(context.Background(), "m", "leaf", Read, confPayload{Blob: blob}, int64(len(blob)))
			if err != nil {
				t.Fatal(err)
			}
			r := got.(confReply)
			if r.N != len(blob) || len(r.Blob) != len(blob) {
				t.Fatalf("reply sizes = %d, %d", r.N, len(r.Blob))
			}
			for i := range blob {
				if r.Blob[i] != blob[i] {
					t.Fatalf("byte %d corrupted: %d != %d", i, r.Blob[i], blob[i])
				}
			}
		})
	}
}

func TestConformanceConcurrentCalls(t *testing.T) {
	for _, nc := range netCases() {
		t.Run(nc.name, func(t *testing.T) {
			n := nc.mk(t, nil, Options{DataSlots: 4})
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("leaf%d", i)
				n.Register(name, func(ctx context.Context, from string, payload any) (any, error) {
					p := payload.(confPayload)
					return confReply{N: p.N + 1, Echo: name}, nil
				})
			}
			classes := []Class{Control, Write, Read, Shuffle}
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for k := 0; k < 20; k++ {
						to := fmt.Sprintf("leaf%d", (g+k)%4)
						got, err := n.Call(context.Background(), "m", to, classes[k%4], confPayload{N: k}, 64)
						if err != nil {
							errs <- err
							return
						}
						r := got.(confReply)
						if r.N != k+1 || r.Echo != to {
							errs <- fmt.Errorf("reply %+v for to=%s k=%d", r, to, k)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
