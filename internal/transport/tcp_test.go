package transport

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestTCP(t *testing.T, topo *Topology, opt Options, tcpOpt TCPOptions) *TCP {
	t.Helper()
	tr, err := NewTCP(topo, opt, tcpOpt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// Two processes: t1 hosts the master, t2 hosts two leaves. Static peer
// config points t1 at t2; the handshake teaches t1 about every node behind
// that address.
func TestTCPCrossProcessDiscovery(t *testing.T) {
	t1 := newTestTCP(t, nil, Options{}, TCPOptions{})
	t2 := newTestTCP(t, nil, Options{}, TCPOptions{})
	t2.Register("leaf1", func(ctx context.Context, from string, payload any) (any, error) {
		return "pong:" + payload.(string), nil
	})
	t2.Register("leaf2", func(ctx context.Context, from string, payload any) (any, error) {
		return "two", nil
	})
	t1.Register("master", func(ctx context.Context, from string, payload any) (any, error) {
		return nil, nil
	})

	t1.AddPeer("leaf1", t2.Addr())
	got, err := t1.Call(context.Background(), "master", "leaf1", Control, "hi", 2)
	if err != nil || got != "pong:hi" {
		t.Fatalf("cross-process call = %v, %v", got, err)
	}
	// leaf2 was never configured, but the handshake with t2 advertised it.
	got, err = t1.Call(context.Background(), "master", "leaf2", Control, "x", 1)
	if err != nil || got != "two" {
		t.Fatalf("discovered-node call = %v, %v", got, err)
	}

	// Explicit discovery works without any static peer entry.
	t3 := newTestTCP(t, nil, Options{}, TCPOptions{})
	nodes, err := t3.Discover(context.Background(), t2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("discovered %v, want leaf1+leaf2", nodes)
	}
	if got, err := t3.Call(context.Background(), "probe", "leaf2", Control, "x", 1); err != nil || got != "two" {
		t.Fatalf("post-discovery call = %v, %v", got, err)
	}
}

// A raw connection speaking the wrong codec version must be refused during
// the handshake.
func TestTCPHandshakeVersionMismatch(t *testing.T) {
	tr := newTestTCP(t, nil, Options{}, TCPOptions{})
	c, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	body, err := encodeGob(helloMsg{Version: CodecVersion + 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(c, frame{kind: frameHello, body: body}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	f, err := readFrame(c)
	if err != nil {
		t.Fatalf("want an error frame, got %v", err)
	}
	if f.kind != frameError {
		t.Fatalf("frame kind = %d, want frameError", f.kind)
	}
	if !strings.Contains(decodeErrorFrame(f).Error(), "version") {
		t.Errorf("err = %v", decodeErrorFrame(f))
	}
}

// DataConns bounds in-flight data-lane calls per peer while Control keeps
// its own lane.
func TestTCPPoolBackpressure(t *testing.T) {
	srv := newTestTCP(t, nil, Options{}, TCPOptions{})
	block := make(chan struct{})
	var inflight atomic.Int32
	srv.Register("leaf", func(ctx context.Context, from string, payload any) (any, error) {
		if payload.(string) == "slow" {
			inflight.Add(1)
			<-block
		}
		return "ok", nil
	})
	cli := newTestTCP(t, nil, Options{}, TCPOptions{DataConns: 1})
	cli.AddPeer("leaf", srv.Addr())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = cli.Call(context.Background(), "m", "leaf", Shuffle, "slow", 1)
	}()
	for inflight.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// The single data slot is held: a second data call must wait and a
	// short deadline expires at the pool, never reaching the server.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, "m", "leaf", Read, "fast", 1); err == nil {
		t.Error("data call should block at the pool")
	}
	// Control rides its own lane.
	if got, err := cli.Call(context.Background(), "m", "leaf", Control, "ping", 1); err != nil || got != "ok" {
		t.Errorf("control call = %v, %v", got, err)
	}
	close(block)
	wg.Wait()

	// With the slot free the data lane drains normally.
	if got, err := cli.Call(context.Background(), "m", "leaf", Read, "fast", 1); err != nil || got != "ok" {
		t.Errorf("post-drain call = %v, %v", got, err)
	}
	if cli.WireBytes[Control].Value() == 0 || cli.WireBytes[Read].Value() == 0 {
		t.Error("wire byte counters should be non-zero")
	}
}

// Context cancellation mid-call unblocks the caller even with no deadline.
func TestTCPCancelInFlight(t *testing.T) {
	srv := newTestTCP(t, nil, Options{}, TCPOptions{})
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	srv.Register("leaf", func(ctx context.Context, from string, payload any) (any, error) {
		close(started)
		<-block
		return "late", nil
	})
	cli := newTestTCP(t, nil, Options{}, TCPOptions{})
	cli.AddPeer("leaf", srv.Addr())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cli.Call(ctx, "m", "leaf", Control, "x", 1)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock the call")
	}
}

func TestTCPCloseUnblocksAndRefuses(t *testing.T) {
	tr, err := NewTCP(nil, Options{}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Register("x", func(context.Context, string, any) (any, error) { return "ok", nil })
	if _, err := tr.Call(context.Background(), "m", "x", Control, "p", 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second close = %v", err)
	}
	if _, err := tr.Call(context.Background(), "m", "x", Control, "p", 1); err == nil {
		t.Error("call after close should fail")
	}
}

// gateInterceptor holds every call between the endpoint snapshot and
// delivery, so the restart below is guaranteed to land in that window.
type gateInterceptor struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateInterceptor) Intercept(ctx context.Context, from, to string, class Class, size int64) Fault {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return Fault{}
}

// Satellite regression (run under -race): a Deregister+Register (leaf
// restart) while a Call is in flight must not deliver to the dead handler —
// the generation check at delivery time fails the call instead.
func TestFabricStaleEndpointAcrossRestart(t *testing.T) {
	f := NewFabric(nil, Options{})
	var oldCalls, newCalls atomic.Int32
	f.Register("leaf", func(context.Context, string, any) (any, error) {
		oldCalls.Add(1)
		return "old", nil
	})
	gate := &gateInterceptor{entered: make(chan struct{}), release: make(chan struct{})}
	f.SetInterceptor(gate)

	done := make(chan error, 1)
	go func() {
		_, err := f.Call(context.Background(), "m", "leaf", Control, "x", 1)
		done <- err
	}()
	<-gate.entered
	// Restart the leaf while the call is stalled pre-delivery.
	f.Deregister("leaf")
	f.Register("leaf", func(context.Context, string, any) (any, error) {
		newCalls.Add(1)
		return "new", nil
	})
	close(gate.release)

	err := <-done
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("stale delivery: err = %v, want ErrUnknownNode", err)
	}
	if oldCalls.Load() != 0 {
		t.Error("message delivered to the dead (pre-restart) handler")
	}
	if newCalls.Load() != 0 {
		t.Error("message delivered to the new incarnation without a fresh Call")
	}
	// A fresh call reaches the new incarnation.
	f.SetInterceptor(nil)
	got, err := f.Call(context.Background(), "m", "leaf", Control, "x", 1)
	if err != nil || got != "new" {
		t.Errorf("post-restart call = %v, %v", got, err)
	}
}

// The same restart while the call is parked in the data-slot queue: the
// delivery-time re-check must also cover the slot path (the token is
// released back to the snapshot endpoint's own channel, never leaked into
// the new incarnation's).
func TestFabricStaleEndpointInSlotQueue(t *testing.T) {
	f := NewFabric(nil, Options{DataSlots: 1})
	var oldCalls atomic.Int32
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	f.Register("leaf", func(ctx context.Context, from string, payload any) (any, error) {
		oldCalls.Add(1)
		if payload.(string) == "slow" {
			once.Do(func() { close(started) })
			<-block
		}
		return "old", nil
	})

	// Occupy the single data slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = f.Call(context.Background(), "m", "leaf", Read, "slow", 1)
	}()
	<-started

	// Second call queues on the slot; restart the leaf, then free the slot.
	done := make(chan error, 1)
	go func() {
		_, err := f.Call(context.Background(), "m", "leaf", Read, "queued", 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the call park on the slot channel
	f.Deregister("leaf")
	f.Register("leaf", func(context.Context, string, any) (any, error) { return "new", nil })
	close(block)
	wg.Wait()

	if err := <-done; !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("queued call after restart: err = %v, want ErrUnknownNode", err)
	}
	if got := oldCalls.Load(); got != 1 {
		t.Errorf("old handler calls = %d, want only the pre-restart one", got)
	}
}
