package transport

// Per-peer connection pools with the paper's lane discipline (§V-C):
// Control gets a dedicated, uncapped lane so cluster commands and
// heartbeats are never queued behind bulk transfer, while Write/Read/
// Shuffle share a bounded set of data-lane slots per peer — a saturated
// peer backpressures new data calls at the pool instead of stacking
// unbounded sockets.

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// wireConn is one framed connection, dedicated to a single in-flight call
// at a time (checkout → request/reply → return).
type wireConn struct {
	c net.Conn
}

// peerPool manages connections to one peer address.
type peerPool struct {
	addr string
	dial func(ctx context.Context, addr string) (*wireConn, error)

	dataSem chan struct{} // nil = unlimited; caps in-flight data-lane calls

	mu      sync.Mutex
	closed  bool
	control []*wireConn            // idle control-lane conns
	data    []*wireConn            // idle data-lane conns
	live    map[*wireConn]struct{} // every open conn, for Close
}

func newPeerPool(addr string, dataConns int, dial func(ctx context.Context, addr string) (*wireConn, error)) *peerPool {
	p := &peerPool{addr: addr, dial: dial, live: make(map[*wireConn]struct{})}
	if dataConns > 0 {
		p.dataSem = make(chan struct{}, dataConns)
	}
	return p
}

// get checks out a connection for one call of the given class. Data-lane
// checkouts block (context-bounded) once the per-peer slot cap is reached;
// control-lane checkouts never wait on data traffic.
func (p *peerPool) get(ctx context.Context, class Class) (*wireConn, error) {
	if class != Control && p.dataSem != nil {
		select {
		case p.dataSem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	wc, err := p.checkout(ctx, class)
	if err != nil && class != Control && p.dataSem != nil {
		<-p.dataSem
	}
	return wc, err
}

func (p *peerPool) checkout(ctx context.Context, class Class) (*wireConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("transport: pool for %s closed", p.addr)
	}
	idle := &p.data
	if class == Control {
		idle = &p.control
	}
	if n := len(*idle); n > 0 {
		wc := (*idle)[n-1]
		*idle = (*idle)[:n-1]
		p.mu.Unlock()
		return wc, nil
	}
	p.mu.Unlock()

	wc, err := p.dial(ctx, p.addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		wc.c.Close()
		return nil, fmt.Errorf("transport: pool for %s closed", p.addr)
	}
	p.live[wc] = struct{}{}
	p.mu.Unlock()
	return wc, nil
}

// put returns a connection after a call. A broken conn (any framing or I/O
// error mid-call) is closed rather than reused. The data-lane slot is
// released either way — the cap bounds in-flight calls, not idle sockets.
func (p *peerPool) put(wc *wireConn, class Class, broken bool) {
	p.mu.Lock()
	if broken || p.closed {
		delete(p.live, wc)
		p.mu.Unlock()
		wc.c.Close()
	} else {
		if class == Control {
			p.control = append(p.control, wc)
		} else {
			p.data = append(p.data, wc)
		}
		p.mu.Unlock()
	}
	if class != Control && p.dataSem != nil {
		<-p.dataSem
	}
}

// close tears down every connection, idle or in flight.
func (p *peerPool) close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]*wireConn, 0, len(p.live))
	for wc := range p.live {
		conns = append(conns, wc)
	}
	p.live = make(map[*wireConn]struct{})
	p.control, p.data = nil, nil
	p.mu.Unlock()
	for _, wc := range conns {
		wc.c.Close()
	}
}
