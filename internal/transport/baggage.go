package transport

// In-process baggage relay for the TCP transport. Observability state — the
// active trace span, the per-query sim bill — rides the caller's context in
// the sim fabric, where handlers run in the caller's process by construction.
// Over TCP those values cannot cross the socket (a *trace.Span is a live
// object), but when both ends of a loopback call live in the same process
// (single-process "tcp" mode, the conformance suites) the caller stashes its
// context under a relay ID carried in the wire header and the server recovers
// the values, layering them under the connection's lifecycle context. A
// genuinely remote process misses the lookup and proceeds without caller
// baggage — exactly how an RPC system behaves before distributed-trace
// propagation is wired up; each process then keeps its own spans.

import (
	"context"
	"sync"
	"sync/atomic"
)

var (
	baggageSeq atomic.Uint64
	baggageMu  sync.Mutex
	baggage    = map[uint64]context.Context{}
)

// stashBaggage registers ctx for the duration of a call and returns its relay
// ID (never 0). The caller must release it with unstashBaggage.
func stashBaggage(ctx context.Context) uint64 {
	id := baggageSeq.Add(1)
	baggageMu.Lock()
	baggage[id] = ctx
	baggageMu.Unlock()
	return id
}

func unstashBaggage(id uint64) {
	baggageMu.Lock()
	delete(baggage, id)
	baggageMu.Unlock()
}

// withBaggage layers the stashed caller context's values — when the call
// looped back into this process — under the server context: values resolve
// from the caller first, lifecycle (cancellation, deadlines) stays with the
// serving connection.
func withBaggage(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	baggageMu.Lock()
	vals, ok := baggage[id]
	baggageMu.Unlock()
	if !ok {
		return ctx
	}
	return baggageCtx{Context: ctx, values: vals}
}

type baggageCtx struct {
	context.Context
	values context.Context
}

func (c baggageCtx) Value(k any) any {
	if v := c.values.Value(k); v != nil {
		return v
	}
	return c.Context.Value(k)
}
