package transport

// Wire codec for the TCP transport: length-prefixed frames with a version
// byte, and a gob-based payload envelope. Every cluster RPC payload and
// reply type must be registered via RegisterPayload before it can cross a
// socket; the in-process Fabric passes values by reference and never
// touches this file, which is exactly why the payload round-trip
// conformance test exists — it catches types that only break once they
// meet the wire.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync"
)

// CodecVersion is the wire protocol version spoken by the TCP transport.
// Both ends carry it in every frame header and refuse mismatches during the
// handshake; bump it whenever the frame layout or payload encoding changes
// incompatibly.
const CodecVersion = 1

const frameMagic = 0xFE15

// Frame kinds.
const (
	frameHello    byte = iota + 1 // client → server, first frame on a conn
	frameHelloAck                 // server → client: hosted node names
	frameCall                     // gob(callHeader), then payload chunks
	framePayload                  // one chunk of a payload/reply body
	frameReply                    // empty body; reply chunks follow
	frameError                    // [code byte] + error text
)

// Frame flags.
const (
	flagMore       byte = 1 << iota // another chunk of this body follows
	flagNilPayload                  // the payload/reply is a nil interface
)

// maxFrameBody bounds one frame's body; larger bodies (big Read results,
// shuffle frames) stream as a chain of flagMore frames so a bulk reply
// never occupies the wire in one indivisible write.
const maxFrameBody = 256 << 10

// maxPayload bounds a reassembled payload, as a corrupted-length guard.
const maxPayload = 1 << 30

// frameHeaderLen is the fixed frame prefix:
// magic(2) version(1) kind(1) class(1) flags(1) bodyLen(4).
const frameHeaderLen = 10

type frame struct {
	kind  byte
	class byte
	flags byte
	body  []byte
}

func writeFrame(w io.Writer, f frame) error {
	if len(f.body) > maxFrameBody {
		return fmt.Errorf("transport: frame body %d exceeds max %d", len(f.body), maxFrameBody)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], frameMagic)
	hdr[2] = CodecVersion
	hdr[3] = f.kind
	hdr[4] = f.class
	hdr[5] = f.flags
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(f.body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.body)
	return err
}

func readFrame(r io.Reader) (frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if m := binary.BigEndian.Uint16(hdr[0:2]); m != frameMagic {
		return frame{}, fmt.Errorf("transport: bad frame magic %#x", m)
	}
	if hdr[2] != CodecVersion {
		return frame{}, fmt.Errorf("transport: peer speaks codec version %d, want %d", hdr[2], CodecVersion)
	}
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > maxFrameBody {
		return frame{}, fmt.Errorf("transport: frame body %d exceeds max %d", n, maxFrameBody)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	return frame{kind: hdr[3], class: hdr[4], flags: hdr[5], body: body}, nil
}

// writeChunks streams body as a framePayload chain, flagMore on all but the
// last frame.
func writeChunks(w io.Writer, class byte, body []byte) error {
	for {
		n := len(body)
		if n > maxFrameBody {
			n = maxFrameBody
		}
		f := frame{kind: framePayload, class: class, body: body[:n]}
		body = body[n:]
		if len(body) > 0 {
			f.flags = flagMore
		}
		if err := writeFrame(w, f); err != nil {
			return err
		}
		if len(body) == 0 {
			return nil
		}
	}
}

// readChunks reassembles a framePayload chain into one body.
func readChunks(r io.Reader) ([]byte, error) {
	var buf bytes.Buffer
	for {
		f, err := readFrame(r)
		if err != nil {
			return nil, err
		}
		if f.kind != framePayload {
			return nil, fmt.Errorf("transport: unexpected frame kind %d inside payload stream", f.kind)
		}
		if buf.Len()+len(f.body) > maxPayload {
			return nil, fmt.Errorf("transport: payload exceeds max %d", maxPayload)
		}
		buf.Write(f.body)
		if f.flags&flagMore == 0 {
			return buf.Bytes(), nil
		}
	}
}

// callHeader precedes a call's payload chunks on the wire.
type callHeader struct {
	From  string
	To    string
	Class int
	Size  int64 // simulated payload size, billed server-side counters
	// Baggage is the caller's in-process context relay ID (see baggage.go);
	// meaningful only when the call loops back into the caller's own process.
	Baggage uint64
}

// helloMsg opens every connection; helloAck answers with the node names
// hosted behind the listener (discovery: dialing any peer address tells you
// which cluster members answer there).
type helloMsg struct {
	Version int
	From    string // dialing process's first registered node, informational
}

type helloAck struct {
	Version int
	Nodes   []string
}

// encodeGob / decodeGob serialize the fixed protocol structs (handshake,
// call headers) — not payloads, which go through the envelope below.
func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

func decodeGob(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("transport: decode %T: %w", v, err)
	}
	return nil
}

// --- payload envelope ------------------------------------------------------

// envelope wraps a payload so gob can carry any registered concrete type
// (and nil) behind a single static wire type.
type envelope struct {
	P any
}

var payloadReg struct {
	sync.Mutex
	types map[string]reflect.Type
}

// RegisterPayload registers a payload or reply type with the wire codec.
// Pass a value of the concrete type that crosses Call (the same concrete
// type the receiver type-asserts): RegisterPayload(taskMsg{}),
// RegisterPayload(&sqlparser.Literal{}), …  Registration is idempotent and
// must happen identically in every process (init-time in the owning
// package).
func RegisterPayload(v any) {
	gob.Register(v)
	t := reflect.TypeOf(v)
	payloadReg.Lock()
	if payloadReg.types == nil {
		payloadReg.types = make(map[string]reflect.Type)
	}
	payloadReg.types[t.String()] = t
	payloadReg.Unlock()
}

// RegisteredPayloads returns every registered concrete payload type, sorted
// by name. The payload round-trip conformance test walks this list.
func RegisteredPayloads() []reflect.Type {
	payloadReg.Lock()
	defer payloadReg.Unlock()
	names := make([]string, 0, len(payloadReg.types))
	for n := range payloadReg.types {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]reflect.Type, 0, len(names))
	for _, n := range names {
		out = append(out, payloadReg.types[n])
	}
	return out
}

// EncodePayload serializes a payload (or reply) for the wire.
func EncodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{P: v}); err != nil {
		return nil, fmt.Errorf("transport: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// DecodePayload reverses EncodePayload.
func DecodePayload(b []byte) (any, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("transport: decode payload: %w", err)
	}
	return env.P, nil
}

// --- wire errors -----------------------------------------------------------

// Error codes carried in frameError. Typed sentinels must survive the wire:
// the stem decides Unreachable from errors.Is(err, ErrUnknownNode), and
// chaos accounting recognizes ErrInjected.
const (
	errCodeGeneric     byte = 0
	errCodeUnknownNode byte = 1
	errCodeInjected    byte = 2
)

func errorCode(err error) byte {
	switch {
	case errors.Is(err, ErrUnknownNode):
		return errCodeUnknownNode
	case errors.Is(err, ErrInjected):
		return errCodeInjected
	default:
		return errCodeGeneric
	}
}

// wireError reconstructs a remote error, preserving the remote message and
// the typed sentinel (if any) for errors.Is.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

func decodeError(code byte, msg string) error {
	switch code {
	case errCodeUnknownNode:
		return &wireError{msg: msg, sentinel: ErrUnknownNode}
	case errCodeInjected:
		return &wireError{msg: msg, sentinel: ErrInjected}
	default:
		return &wireError{msg: msg}
	}
}

func encodeErrorFrame(class byte, err error) frame {
	body := append([]byte{errorCode(err)}, err.Error()...)
	if len(body) > maxFrameBody {
		body = body[:maxFrameBody]
	}
	return frame{kind: frameError, class: class, body: body}
}

func decodeErrorFrame(f frame) error {
	if len(f.body) == 0 {
		return &wireError{msg: "transport: remote error"}
	}
	return decodeError(f.body[0], string(f.body[1:]))
}
