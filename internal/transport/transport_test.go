package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

func TestTopologyDistance(t *testing.T) {
	topo := NewTopology()
	topo.Place("a", "r1", "dc1")
	topo.Place("b", "r1", "dc1")
	topo.Place("c", "r2", "dc1")
	topo.Place("d", "r9", "dc2")
	cases := []struct {
		x, y string
		want int
	}{
		{"a", "a", 0}, {"a", "b", 1}, {"a", "c", 2}, {"a", "d", 3}, {"a", "unknown", 3},
	}
	for _, c := range cases {
		if got := topo.Distance(c.x, c.y); got != c.want {
			t.Errorf("Distance(%s,%s) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
	if topo.Hops("a", "a") != 0 || topo.Hops("a", "b") != 2 || topo.Hops("a", "c") != 4 || topo.Hops("a", "d") != 6 {
		t.Error("hops mapping wrong")
	}
}

func TestCallRoundTrip(t *testing.T) {
	f := NewFabric(nil, Options{})
	f.Register("leaf1", func(ctx context.Context, from string, payload any) (any, error) {
		return payload.(int) * 2, nil
	})
	got, err := f.Call(context.Background(), "master", "leaf1", Control, 21, 100)
	if err != nil || got.(int) != 42 {
		t.Fatalf("call = %v, %v", got, err)
	}
	if f.Msgs[Control].Value() != 1 || f.Bytes[Control].Value() != 100 {
		t.Errorf("counters = %d msgs %d bytes", f.Msgs[Control].Value(), f.Bytes[Control].Value())
	}
}

func TestCallUnknownAndDown(t *testing.T) {
	f := NewFabric(nil, Options{})
	if _, err := f.Call(context.Background(), "m", "ghost", Control, nil, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown = %v", err)
	}
	f.Register("n", func(context.Context, string, any) (any, error) { return nil, nil })
	f.SetDown("n", true)
	if _, err := f.Call(context.Background(), "m", "n", Control, nil, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("down = %v", err)
	}
	f.SetDown("n", false)
	if _, err := f.Call(context.Background(), "m", "n", Control, nil, 0); err != nil {
		t.Errorf("up again = %v", err)
	}
	f.Deregister("n")
	if _, err := f.Call(context.Background(), "m", "n", Control, nil, 0); err == nil {
		t.Error("deregistered should fail")
	}
}

func TestBilling(t *testing.T) {
	topo := NewTopology()
	topo.Place("m", "r1", "dc1")
	topo.Place("l", "r2", "dc1") // same dc: 4 hops
	model := sim.DefaultCostModel()
	f := NewFabric(topo, Options{Model: model})
	f.Register("l", func(context.Context, string, any) (any, error) { return nil, nil })

	bill := sim.NewBill()
	ctx := storage.WithBill(context.Background(), bill)
	if _, err := f.Call(ctx, "m", "l", Read, nil, 1000); err != nil {
		t.Fatal(err)
	}
	want := model.TransferCost(1000, 4)
	if bill.Time() != want {
		t.Errorf("bill = %v, want %v", bill.Time(), want)
	}
	// Local (same-node) calls are free.
	f.Register("m", func(context.Context, string, any) (any, error) { return nil, nil })
	before := bill.Time()
	if _, err := f.Call(ctx, "m", "m", Read, nil, 1000); err != nil {
		t.Fatal(err)
	}
	if bill.Time() != before {
		t.Error("same-node call should not charge network")
	}
}

func TestControlBypassesDataSlots(t *testing.T) {
	f := NewFabric(nil, Options{DataSlots: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	f.Register("leaf", func(ctx context.Context, from string, payload any) (any, error) {
		if payload == "slow" {
			close(started)
			<-block
		}
		return "ok", nil
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = f.Call(context.Background(), "m", "leaf", Read, "slow", 1)
	}()
	<-started

	// A second data-class call must block (slot taken): give it a short
	// deadline and expect failure.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := f.Call(ctx, "m", "leaf", Write, "fast", 1); err == nil {
		t.Error("data call should time out while slot is held")
	}

	// Control traffic must get through immediately.
	got, err := f.Call(context.Background(), "m", "leaf", Control, "ping", 1)
	if err != nil || got != "ok" {
		t.Errorf("control call = %v, %v", got, err)
	}

	close(block)
	wg.Wait()
}

func TestClassString(t *testing.T) {
	if Control.String() != "control" || Write.String() != "write" || Read.String() != "read" {
		t.Error("class names")
	}
	if Class(9).String() != "class(9)" {
		t.Error("unknown class")
	}
}

func TestNodes(t *testing.T) {
	f := NewFabric(nil, Options{})
	f.Register("a", func(context.Context, string, any) (any, error) { return nil, nil })
	f.Register("b", func(context.Context, string, any) (any, error) { return nil, nil })
	if got := f.Nodes(); len(got) != 2 {
		t.Errorf("nodes = %v", got)
	}
}
