// Package transport is Feisu's in-process message fabric, standing in for
// the production RPC channels. It keeps the paper's traffic-flow discipline
// (§V-C): control/state flow has the highest priority and always gets
// through (the production system reserves switch bandwidth for it via TOS),
// write flow (intermediate data to global storage) comes second, and read
// data flow has the lowest priority. Endpoint capacity models a server's
// RPC worker pool: control messages use a reserved lane, while write and
// read messages compete for the remaining slots.
//
// Every call charges simulated network cost (bytes over the topology-derived
// hop count) to the sim.Bill carried by the context, so the benchmark
// harness can reconstruct cluster-scale timings.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Class is a traffic class (paper §V-C).
type Class int

// Traffic classes in descending priority.
const (
	// Control carries cluster commands, heartbeats, task dispatch.
	Control Class = iota
	// Write carries intermediate results toward global storage.
	Write
	// Read carries analyzed data back to the requester.
	Read
	// Shuffle carries keyed repartition frames between shuffle stages. It
	// shares the data lane with Write/Read (competes for DataSlots) but is
	// counted separately so EXPLAIN ANALYZE can attribute transfer bytes to
	// the shuffle segment.
	Shuffle
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Control:
		return "control"
	case Write:
		return "write"
	case Read:
		return "read"
	case Shuffle:
		return "shuffle"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ErrUnknownNode is returned when the destination is not registered.
var ErrUnknownNode = errors.New("transport: unknown node")

// ErrInjected is the default error for messages failed by an Interceptor
// (fault injection); recovery paths treat it like any delivery failure.
var ErrInjected = errors.New("transport: injected fault")

// Fault is an Interceptor's decision for one message. The zero value
// delivers the message untouched.
type Fault struct {
	// Drop fails the call without delivering.
	Drop bool
	// Err overrides the error returned for a dropped message
	// (defaults to ErrInjected).
	Err error
	// Delay pauses delivery (bounded by the call context).
	Delay time.Duration
	// Duplicate delivers the message twice, modeling at-least-once
	// retransmission; handlers are expected to be idempotent.
	Duplicate bool
}

// Interceptor inspects every Call before delivery and can inject faults —
// the hook the chaos plane (internal/chaos) drives. Implementations must be
// safe for concurrent use.
type Interceptor interface {
	Intercept(ctx context.Context, from, to string, class Class, size int64) Fault
}

// Handler processes one message addressed to a node.
type Handler func(ctx context.Context, from string, payload any) (any, error)

// ClassCounters tracks delivered messages and bytes per traffic class.
// Both transports embed it so the accounting surface is identical.
type ClassCounters struct {
	Msgs  [4]metrics.Counter
	Bytes [4]metrics.Counter
}

// Counters exposes the per-class counters behind the Network interface.
func (c *ClassCounters) Counters() *ClassCounters { return c }

func (c *ClassCounters) count(class Class, size int64) {
	c.Msgs[class].Inc()
	c.Bytes[class].Add(size)
}

// Network is the cluster messaging seam: the in-process Fabric (the
// deterministic test double) and the TCP wire transport both satisfy it,
// so masters, stems and leaves are transport-agnostic.
type Network interface {
	// Call delivers a message and waits for the reply. size is the
	// simulated payload size in bytes, fed to the cost model and counters.
	Call(ctx context.Context, from, to string, class Class, payload any, size int64) (any, error)
	// Register attaches a handler to a node name.
	Register(node string, h Handler)
	// Deregister removes a node (server crash).
	Deregister(node string)
	// SetDown marks a node unreachable without removing it.
	SetDown(node string, down bool)
	// SetInterceptor installs (or, with nil, removes) the fault hook.
	SetInterceptor(i Interceptor)
	// Topology returns the placement map used for hop accounting.
	Topology() *Topology
	// Nodes returns the registered node names (live and down).
	Nodes() []string
	// Counters returns the per-class delivery counters.
	Counters() *ClassCounters
}

// Topology records node placement for hop counts and locality decisions.
type Topology struct {
	mu     sync.RWMutex
	rackOf map[string]string
	dcOf   map[string]string
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{rackOf: make(map[string]string), dcOf: make(map[string]string)}
}

// Place records a node's rack and datacenter.
func (t *Topology) Place(node, rack, dc string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rackOf[node] = rack
	t.dcOf[node] = dc
}

// Distance returns 0 for the same node, 1 within a rack, 2 within a
// datacenter and 3 across datacenters. Unknown nodes are assumed remote.
func (t *Topology) Distance(a, b string) int {
	if a == b {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	ra, oka := t.rackOf[a], true
	rb, okb := t.rackOf[b], true
	if ra == "" {
		oka = false
	}
	if rb == "" {
		okb = false
	}
	if !oka || !okb {
		return 3
	}
	if ra == rb {
		return 1
	}
	if t.dcOf[a] == t.dcOf[b] {
		return 2
	}
	return 3
}

// Hops converts a distance into switch hops for cost accounting.
func (t *Topology) Hops(a, b string) int {
	switch t.Distance(a, b) {
	case 0:
		return 0
	case 1:
		return 2
	case 2:
		return 4
	default:
		return 6
	}
}

// Options configure a Fabric.
type Options struct {
	// Model prices transfers; nil disables cost accounting.
	Model *sim.CostModel
	// DataSlots is each endpoint's worker capacity shared by Write and
	// Read traffic; Control always has a free lane. <=0 means unlimited.
	DataSlots int
}

// Both transports satisfy the seam.
var (
	_ Network = (*Fabric)(nil)
	_ Network = (*TCP)(nil)
)

// Fabric connects named endpoints.
type Fabric struct {
	opt  Options
	topo *Topology

	mu          sync.RWMutex
	nodes       map[string]*endpoint
	gen         uint64 // bumped on every Register; stamps endpoints
	interceptor Interceptor

	// per-class counters
	ClassCounters
}

type endpoint struct {
	handler Handler
	slots   chan struct{} // nil when unlimited
	down    bool
	gen     uint64 // registration generation; a restart gets a new one
}

// NewFabric returns a fabric over the topology.
func NewFabric(topo *Topology, opt Options) *Fabric {
	if topo == nil {
		topo = NewTopology()
	}
	return &Fabric{opt: opt, topo: topo, nodes: make(map[string]*endpoint)}
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() *Topology { return f.topo }

// Register attaches a handler to a node name. Re-registering a name (a
// restarted server) installs a fresh endpoint with a new generation; calls
// that snapshotted the previous endpoint fail instead of reaching the dead
// handler.
func (f *Fabric) Register(node string, h Handler) {
	ep := &endpoint{handler: h}
	if f.opt.DataSlots > 0 {
		ep.slots = make(chan struct{}, f.opt.DataSlots)
	}
	f.mu.Lock()
	f.gen++
	ep.gen = f.gen
	f.nodes[node] = ep
	f.mu.Unlock()
}

// Deregister removes a node (server crash).
func (f *Fabric) Deregister(node string) {
	f.mu.Lock()
	delete(f.nodes, node)
	f.mu.Unlock()
}

// SetDown marks a node unreachable without removing it (partition / crash
// injection for fault-tolerance tests).
func (f *Fabric) SetDown(node string, down bool) {
	f.mu.Lock()
	if ep, ok := f.nodes[node]; ok {
		ep.down = down
	}
	f.mu.Unlock()
}

// SetInterceptor installs (or, with nil, removes) the fault-injection hook
// consulted on every Call.
func (f *Fabric) SetInterceptor(i Interceptor) {
	f.mu.Lock()
	f.interceptor = i
	f.mu.Unlock()
}

// Call delivers a message and waits for the reply. size is the simulated
// payload size in bytes (in-process payloads are passed by reference; the
// size feeds the cost model and counters).
func (f *Fabric) Call(ctx context.Context, from, to string, class Class, payload any, size int64) (any, error) {
	f.mu.RLock()
	ep, ok := f.nodes[to]
	icpt := f.interceptor
	down := ok && ep.down
	f.mu.RUnlock()
	if !ok || down {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}

	duplicate := false
	if icpt != nil {
		fault := icpt.Intercept(ctx, from, to, class, size)
		if fault.Drop {
			err := fault.Err
			if err == nil {
				err = ErrInjected
			}
			return nil, fmt.Errorf("transport: %s call %s->%s: %w", class, from, to, err)
		}
		if fault.Delay > 0 {
			select {
			case <-time.After(fault.Delay):
			case <-ctx.Done():
				return nil, fmt.Errorf("transport: %s call %s->%s: %w", class, from, to, ctx.Err())
			}
		}
		duplicate = fault.Duplicate
	}

	// Write/Read traffic competes for the endpoint's worker slots;
	// Control bypasses them (the reserved-bandwidth lane).
	if class != Control && ep.slots != nil {
		select {
		case ep.slots <- struct{}{}:
			defer func() { <-ep.slots }()
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: %s call %s->%s: %w", class, from, to, ctx.Err())
		}
	}

	deliveries := 1
	if duplicate {
		// At-least-once retransmission: both copies cross the wire, so both
		// count against the class counters and the transfer bill.
		deliveries = 2
	}
	var (
		reply     any
		lastErr   error
		delivered bool
	)
	for i := 0; i < deliveries; i++ {
		f.count(class, size)
		if b := storage.BillFrom(ctx); b != nil && f.opt.Model != nil {
			if hops := f.topo.Hops(from, to); hops > 0 {
				b.ChargeTransfer(f.opt.Model, size, hops)
			}
		}
		r, err := f.deliver(ctx, to, ep, from, payload)
		if err != nil {
			lastErr = err
			continue
		}
		// The surviving reply is the last successful one; an earlier failed
		// copy must not mask it (and vice versa — one success is enough).
		reply, delivered = r, true
	}
	if delivered {
		return reply, nil
	}
	return nil, lastErr
}

// deliver invokes the endpoint's handler after re-checking that the very
// endpoint snapshotted at call time is still the live registration. Without
// the generation check a concurrent Deregister+Register (leaf restart)
// would hand the message to the dead handler.
func (f *Fabric) deliver(ctx context.Context, to string, ep *endpoint, from string, payload any) (any, error) {
	f.mu.RLock()
	cur, ok := f.nodes[to]
	stale := !ok || cur.gen != ep.gen || cur.down
	f.mu.RUnlock()
	if stale {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	return ep.handler(ctx, from, payload)
}

// Nodes returns the registered node names (live and down).
func (f *Fabric) Nodes() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.nodes))
	for n := range f.nodes {
		out = append(out, n)
	}
	return out
}
