package transport

// TCP is the real wire transport behind the Network seam: length-prefixed
// framed messages over pooled TCP connections, with the same traffic-class
// discipline as the in-process Fabric. One process runs one listener; every
// node Registered in that process is served behind it, and frames carry the
// destination name so a feisu-node process can host a master, stem, or
// leaf (or, in conformance tests, a whole cluster). Calls to local nodes
// still cross the socket — the point of this transport is that nothing is
// delivered by function call.
//
// Faults (the chaos plane) are injected on the caller side, exactly where
// Fabric injects them, so seeded chaos schedules behave identically on
// both transports.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// TCPOptions configure the wire transport on top of the shared Options.
type TCPOptions struct {
	// ListenAddr is the shared listener address for every node Registered
	// in this process. Default "127.0.0.1:0" (ephemeral loopback).
	ListenAddr string
	// DataConns caps in-flight data-lane (Write/Read/Shuffle) calls per
	// peer address; Control has its own uncapped lane. <=0 means unlimited
	// client-side — the server-side per-endpoint DataSlots still apply.
	DataConns int
}

// TCP implements Network over real sockets.
type TCP struct {
	opt    Options
	tcpOpt TCPOptions
	topo   *Topology
	ln     net.Listener
	addr   string

	ClassCounters
	// WireBytes counts real encoded bytes per class (requests + replies,
	// measured after gob encoding). The embedded ClassCounters mirror the
	// Fabric contract and count the caller-declared simulated sizes.
	WireBytes [4]metrics.Counter

	mu          sync.RWMutex
	local       map[string]*tcpEndpoint
	gen         uint64
	peers       map[string]string // remote node -> dial address
	downRemote  map[string]bool   // SetDown for non-local nodes
	pools       map[string]*peerPool
	interceptor Interceptor
	closed      bool

	baseCtx   context.Context
	baseStop  context.CancelFunc
	acceptErr error
	wg        sync.WaitGroup
}

type tcpEndpoint struct {
	handler Handler
	slots   chan struct{} // nil when unlimited
	down    bool
	gen     uint64
}

// NewTCP starts the process's listener and returns the transport.
func NewTCP(topo *Topology, opt Options, tcpOpt TCPOptions) (*TCP, error) {
	if topo == nil {
		topo = NewTopology()
	}
	if tcpOpt.ListenAddr == "" {
		tcpOpt.ListenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", tcpOpt.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", tcpOpt.ListenAddr, err)
	}
	ctx, stop := context.WithCancel(context.Background())
	t := &TCP{
		opt:        opt,
		tcpOpt:     tcpOpt,
		topo:       topo,
		ln:         ln,
		addr:       ln.Addr().String(),
		local:      make(map[string]*tcpEndpoint),
		peers:      make(map[string]string),
		downRemote: make(map[string]bool),
		pools:      make(map[string]*peerPool),
		baseCtx:    ctx,
		baseStop:   stop,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener address (host:port) other processes dial.
func (t *TCP) Addr() string { return t.addr }

// Topology returns the placement map used for hop accounting.
func (t *TCP) Topology() *Topology { return t.topo }

// Register hosts a node behind this process's listener. Re-registering a
// name installs a fresh endpoint with a new generation (server restart).
func (t *TCP) Register(node string, h Handler) {
	ep := &tcpEndpoint{handler: h}
	if t.opt.DataSlots > 0 {
		ep.slots = make(chan struct{}, t.opt.DataSlots)
	}
	t.mu.Lock()
	t.gen++
	ep.gen = t.gen
	t.local[node] = ep
	t.mu.Unlock()
}

// Deregister removes a hosted node (server crash).
func (t *TCP) Deregister(node string) {
	t.mu.Lock()
	delete(t.local, node)
	t.mu.Unlock()
}

// SetDown marks a node unreachable without removing it. For hosted nodes
// the server refuses delivery; for remote nodes the caller side refuses.
func (t *TCP) SetDown(node string, down bool) {
	t.mu.Lock()
	if ep, ok := t.local[node]; ok {
		ep.down = down
	} else {
		t.downRemote[node] = down
	}
	t.mu.Unlock()
}

// SetInterceptor installs (or removes) the fault-injection hook.
func (t *TCP) SetInterceptor(i Interceptor) {
	t.mu.Lock()
	t.interceptor = i
	t.mu.Unlock()
}

// AddPeer records where a remote node can be dialed (static discovery,
// the -peers flag of cmd/feisu-node).
func (t *TCP) AddPeer(node, addr string) {
	t.mu.Lock()
	t.peers[node] = addr
	t.mu.Unlock()
}

// Discover dials addr, handshakes, and records every node hosted there.
// It returns the discovered node names.
func (t *TCP) Discover(ctx context.Context, addr string) ([]string, error) {
	wc, err := t.dialPeer(ctx, addr)
	if err != nil {
		return nil, err
	}
	wc.c.Close()
	t.mu.RLock()
	var nodes []string
	for n, a := range t.peers {
		if a == addr {
			nodes = append(nodes, n)
		}
	}
	t.mu.RUnlock()
	return nodes, nil
}

// Nodes returns hosted and known-remote node names.
func (t *TCP) Nodes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[string]bool, len(t.local)+len(t.peers))
	out := make([]string, 0, len(t.local)+len(t.peers))
	for n := range t.local {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for n := range t.peers {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Close stops the listener and tears down every pool and connection.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	pools := t.pools
	t.pools = make(map[string]*peerPool)
	t.mu.Unlock()
	t.baseStop()
	err := t.ln.Close()
	for _, p := range pools {
		p.close()
	}
	t.wg.Wait()
	return err
}

// resolve maps a destination node to a dial address.
func (t *TCP) resolve(to string) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if _, ok := t.local[to]; ok {
		return t.addr, nil
	}
	if t.downRemote[to] {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if addr, ok := t.peers[to]; ok {
		return addr, nil
	}
	return "", fmt.Errorf("%w: %q", ErrUnknownNode, to)
}

// Call delivers a message over the wire and waits for the reply. The
// at-least-once duplicate semantics, billing, and counter behavior match
// Fabric.Call exactly.
func (t *TCP) Call(ctx context.Context, from, to string, class Class, payload any, size int64) (any, error) {
	t.mu.RLock()
	icpt := t.interceptor
	t.mu.RUnlock()

	duplicate := false
	if icpt != nil {
		fault := icpt.Intercept(ctx, from, to, class, size)
		if fault.Drop {
			err := fault.Err
			if err == nil {
				err = ErrInjected
			}
			return nil, fmt.Errorf("transport: %s call %s->%s: %w", class, from, to, err)
		}
		if fault.Delay > 0 {
			select {
			case <-time.After(fault.Delay):
			case <-ctx.Done():
				return nil, fmt.Errorf("transport: %s call %s->%s: %w", class, from, to, ctx.Err())
			}
		}
		duplicate = fault.Duplicate
	}

	addr, err := t.resolve(to)
	if err != nil {
		return nil, err
	}
	body, err := EncodePayload(payload)
	if err != nil {
		return nil, err
	}
	bag := stashBaggage(ctx)
	defer unstashBaggage(bag)

	deliveries := 1
	if duplicate {
		deliveries = 2
	}
	var (
		reply     any
		lastErr   error
		delivered bool
	)
	for i := 0; i < deliveries; i++ {
		t.count(class, size)
		if b := storage.BillFrom(ctx); b != nil && t.opt.Model != nil {
			if hops := t.topo.Hops(from, to); hops > 0 {
				b.ChargeTransfer(t.opt.Model, size, hops)
			}
		}
		r, err := t.roundTrip(ctx, addr, from, to, class, payload == nil, body, size, bag)
		if err != nil {
			lastErr = err
			continue
		}
		reply, delivered = r, true
	}
	if delivered {
		return reply, nil
	}
	return nil, lastErr
}

// roundTrip performs one request/reply exchange on a pooled connection.
func (t *TCP) roundTrip(ctx context.Context, addr, from, to string, class Class, nilPayload bool, body []byte, size int64, bag uint64) (any, error) {
	pool := t.poolFor(addr)
	wc, err := pool.get(ctx, class)
	if err != nil {
		return nil, fmt.Errorf("transport: %s call %s->%s: %w", class, from, to, err)
	}
	broken := true
	defer func() { pool.put(wc, class, broken) }()

	// Context plumbing: honor the deadline directly, and unblock the
	// socket (via an immediate deadline) if the context is canceled while
	// the call is in flight. A canceled call abandons the connection.
	if d, ok := ctx.Deadline(); ok {
		wc.c.SetDeadline(d)
	} else {
		wc.c.SetDeadline(time.Time{})
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			wc.c.SetDeadline(time.Unix(1, 0))
		case <-watchDone:
		}
	}()

	hdr, err := encodeGob(callHeader{From: from, To: to, Class: int(class), Size: size, Baggage: bag})
	if err != nil {
		return nil, err
	}
	cf := frame{kind: frameCall, class: byte(class), body: hdr}
	if nilPayload {
		cf.flags |= flagNilPayload
	}
	if err := writeFrame(wc.c, cf); err != nil {
		return nil, callErr(ctx, class, from, to, err)
	}
	if !nilPayload {
		if err := writeChunks(wc.c, byte(class), body); err != nil {
			return nil, callErr(ctx, class, from, to, err)
		}
		t.WireBytes[class].Add(int64(len(body)))
	}

	rf, err := readFrame(wc.c)
	if err != nil {
		return nil, callErr(ctx, class, from, to, err)
	}
	switch rf.kind {
	case frameError:
		broken = false
		return nil, decodeErrorFrame(rf)
	case frameReply:
		if rf.flags&flagNilPayload != 0 {
			broken = false
			return nil, nil
		}
		rb, err := readChunks(wc.c)
		if err != nil {
			return nil, callErr(ctx, class, from, to, err)
		}
		t.WireBytes[class].Add(int64(len(rb)))
		out, err := DecodePayload(rb)
		if err != nil {
			return nil, err
		}
		broken = false
		return out, nil
	default:
		return nil, fmt.Errorf("transport: %s call %s->%s: unexpected reply frame kind %d", class, from, to, rf.kind)
	}
}

func callErr(ctx context.Context, class Class, from, to string, err error) error {
	if ctx.Err() != nil {
		err = ctx.Err()
	}
	return fmt.Errorf("transport: %s call %s->%s: %w", class, from, to, err)
}

func (t *TCP) poolFor(addr string) *peerPool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.pools[addr]; ok {
		return p
	}
	p := newPeerPool(addr, t.tcpOpt.DataConns, t.dialPeer)
	t.pools[addr] = p
	return p
}

// dialPeer opens and handshakes one connection, learning the nodes hosted
// at addr.
func (t *TCP) dialPeer(ctx context.Context, addr string) (*wireConn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	t.mu.RLock()
	var self string
	for n := range t.local {
		self = n
		break
	}
	t.mu.RUnlock()
	hello, err := encodeGob(helloMsg{Version: CodecVersion, From: self})
	if err != nil {
		c.Close()
		return nil, err
	}
	if d, ok := ctx.Deadline(); ok {
		c.SetDeadline(d)
	}
	if err := writeFrame(c, frame{kind: frameHello, body: hello}); err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake write to %s: %w", addr, err)
	}
	af, err := readFrame(c)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake read from %s: %w", addr, err)
	}
	if af.kind == frameError {
		c.Close()
		return nil, decodeErrorFrame(af)
	}
	if af.kind != frameHelloAck {
		c.Close()
		return nil, fmt.Errorf("transport: handshake with %s: unexpected frame kind %d", addr, af.kind)
	}
	var ack helloAck
	if err := decodeGob(af.body, &ack); err != nil {
		c.Close()
		return nil, err
	}
	if ack.Version != CodecVersion {
		c.Close()
		return nil, fmt.Errorf("transport: peer %s speaks codec version %d, want %d", addr, ack.Version, CodecVersion)
	}
	c.SetDeadline(time.Time{})
	// Handshake doubles as discovery: remember which nodes answer here.
	t.mu.Lock()
	for _, n := range ack.Nodes {
		if _, hosted := t.local[n]; !hosted {
			t.peers[n] = addr
		}
	}
	t.mu.Unlock()
	return &wireConn{c: c}, nil
}

// --- server side -----------------------------------------------------------

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			t.mu.Lock()
			if !t.closed {
				t.acceptErr = err
			}
			t.mu.Unlock()
			return
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

func (t *TCP) serveConn(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	ctx, cancel := context.WithCancel(t.baseCtx)
	defer cancel()
	stop := context.AfterFunc(t.baseCtx, func() { c.SetDeadline(time.Unix(1, 0)) })
	defer stop()

	// Handshake first: version check, then advertise hosted nodes.
	hf, err := readFrame(c)
	if err != nil || hf.kind != frameHello {
		return
	}
	var hello helloMsg
	if err := decodeGob(hf.body, &hello); err != nil {
		return
	}
	if hello.Version != CodecVersion {
		writeFrame(c, encodeErrorFrame(0, fmt.Errorf("transport: codec version %d not supported (want %d)", hello.Version, CodecVersion)))
		return
	}
	t.mu.RLock()
	nodes := make([]string, 0, len(t.local))
	for n := range t.local {
		nodes = append(nodes, n)
	}
	t.mu.RUnlock()
	ab, err := encodeGob(helloAck{Version: CodecVersion, Nodes: nodes})
	if err != nil {
		return
	}
	if err := writeFrame(c, frame{kind: frameHelloAck, body: ab}); err != nil {
		return
	}

	// One request at a time per connection; the pools on the caller side
	// provide the concurrency.
	for {
		cf, err := readFrame(c)
		if err != nil {
			return
		}
		if cf.kind != frameCall {
			return
		}
		var hdr callHeader
		if err := decodeGob(cf.body, &hdr); err != nil {
			return
		}
		var payload any
		if cf.flags&flagNilPayload == 0 {
			pb, err := readChunks(c)
			if err != nil {
				return
			}
			payload, err = DecodePayload(pb)
			if err != nil {
				writeFrame(c, encodeErrorFrame(cf.class, err))
				continue
			}
		}
		reply, err := t.serveCall(ctx, hdr, payload)
		if err != nil {
			if writeFrame(c, encodeErrorFrame(cf.class, err)) != nil {
				return
			}
			continue
		}
		rf := frame{kind: frameReply, class: cf.class}
		var rb []byte
		if reply == nil {
			rf.flags |= flagNilPayload
		} else {
			rb, err = EncodePayload(reply)
			if err != nil {
				if writeFrame(c, encodeErrorFrame(cf.class, err)) != nil {
					return
				}
				continue
			}
		}
		if err := writeFrame(c, rf); err != nil {
			return
		}
		if reply != nil {
			if err := writeChunks(c, cf.class, rb); err != nil {
				return
			}
		}
	}
}

// serveCall resolves the destination endpoint at delivery time (liveness/
// generation semantics shared with Fabric) and invokes its handler, holding
// a data slot for non-Control traffic.
func (t *TCP) serveCall(ctx context.Context, hdr callHeader, payload any) (any, error) {
	ctx = withBaggage(ctx, hdr.Baggage)
	t.mu.RLock()
	ep, ok := t.local[hdr.To]
	down := ok && ep.down
	t.mu.RUnlock()
	if !ok || down {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, hdr.To)
	}
	class := Class(hdr.Class)
	if class != Control && ep.slots != nil {
		select {
		case ep.slots <- struct{}{}:
			defer func() { <-ep.slots }()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Re-check at delivery time: a Deregister+Register while waiting for a
	// slot must not hand the message to the dead handler.
	t.mu.RLock()
	cur, ok := t.local[hdr.To]
	stale := !ok || cur.gen != ep.gen || cur.down
	t.mu.RUnlock()
	if stale {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, hdr.To)
	}
	return ep.handler(ctx, hdr.From, payload)
}
