// Package telemetry is Feisu's fleet-observability surface: an optional
// net/http exporter serving Prometheus-format metrics (/metrics), a
// cluster health probe (/healthz), the slow-query log (/debug/slowlog)
// and, behind a flag, pprof. It complements the per-query trace spans of
// package trace: spans answer "where did this query go", telemetry answers
// "how is the fleet doing" without attaching a tracer to each request.
package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// Options configure the exporter.
type Options struct {
	// Registry supplies the metric families for /metrics.
	Registry *metrics.Registry
	// Health, when set, supplies the fleet view: /healthz and the
	// feisu_node_* series on /metrics.
	Health func() cluster.ClusterHealth
	// Slowlog, when set, backs /debug/slowlog.
	Slowlog *Slowlog
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Server is a running exporter.
type Server struct {
	opt Options
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (host:port; port 0 picks an ephemeral port) and
// serves the telemetry endpoints until Close.
func Start(addr string, opt Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{opt: opt, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	if opt.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with an ephemeral port).
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// URL returns the exporter's base URL.
func (s *Server) URL() string {
	return "http://" + s.Addr()
}

// Close stops the exporter.
func (s *Server) Close() error {
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	fams := s.opt.Registry.Families()
	if s.opt.Health != nil {
		fams = mergeFamilies(fams, healthFamilies(s.opt.Health()))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteText(w, fams)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.opt.Health == nil {
		fmt.Fprintln(w, "ok")
		return
	}
	h := s.opt.Health()
	if h.Healthy() {
		fmt.Fprintf(w, "ok: %d nodes alive\n", h.Alive)
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, "unhealthy: %d alive, %d degraded, %d dead\n", h.Alive, h.Degraded, h.Dead)
	for _, n := range h.Nodes {
		if n.State != cluster.StateAlive {
			fmt.Fprintf(w, "  %s (%s): %s, last heartbeat %s ago\n", n.Name, n.Kind, n.State, n.Age.Round(time.Millisecond))
		}
	}
}

func (s *Server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.opt.Slowlog == nil {
		fmt.Fprintln(w, "slowlog is not enabled")
		return
	}
	fmt.Fprintf(w, "slow queries recorded: %d (showing most recent %d)\n\n",
		s.opt.Slowlog.Total(), len(s.opt.Slowlog.Entries()))
	fmt.Fprint(w, RenderSlowlog(s.opt.Slowlog.Entries()))
}

// healthFamilies converts a ClusterHealth view into gauge families. Load
// gauges are emitted only for non-stale nodes — a dead leaf's series
// disappears from the scrape rather than freezing at its last value —
// while feisu_node_up and feisu_node_stale always report every known node.
func healthFamilies(h cluster.ClusterHealth) []metrics.Family {
	mk := func(name string) metrics.Family {
		return metrics.Family{Name: name, Type: metrics.TypeGauge}
	}
	up := mk("feisu_node_up")
	stale := mk("feisu_node_stale")
	active := mk("feisu_node_active_tasks")
	queue := mk("feisu_node_queue_depth")
	done := mk("feisu_node_tasks_done")
	idxBytes := mk("feisu_node_index_bytes")
	idxEntries := mk("feisu_node_index_entries")
	idxBudget := mk("feisu_node_index_budget_bytes")
	cacheRatio := mk("feisu_node_cache_hit_ratio")
	cacheEvict := mk("feisu_node_cache_evictions")
	cacheBytes := mk("feisu_node_cache_bytes")

	for _, n := range h.Nodes {
		labels := []metrics.Label{metrics.L("kind", n.Kind.String()), metrics.L("node", n.Name)}
		add := func(f *metrics.Family, v float64) {
			f.Samples = append(f.Samples, metrics.Sample{Labels: labels, Value: v})
		}
		add(&up, boolGauge(n.State != cluster.StateDead))
		add(&stale, boolGauge(n.Stale))
		if n.Stale {
			continue
		}
		add(&active, float64(n.Load.ActiveTasks))
		add(&queue, float64(n.Load.QueueDepth))
		add(&done, float64(n.Load.TasksDone))
		add(&idxBytes, float64(n.Load.IndexBytes))
		add(&idxEntries, float64(n.Load.IndexEntries))
		if n.Load.IndexBudget > 0 {
			add(&idxBudget, float64(n.Load.IndexBudget))
		}
		if n.Load.CacheHits+n.Load.CacheMisses > 0 {
			add(&cacheRatio, n.Load.CacheHitRatio())
		}
		add(&cacheEvict, float64(n.Load.CacheEvictions))
		add(&cacheBytes, float64(n.Load.CacheBytes))
	}
	var out []metrics.Family
	for _, f := range []metrics.Family{up, stale, active, queue, done, idxBytes, idxEntries, idxBudget, cacheRatio, cacheEvict, cacheBytes} {
		if len(f.Samples) > 0 {
			out = append(out, f)
		}
	}
	return out
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// mergeFamilies combines two family sets back into one name-sorted list.
func mergeFamilies(a, b []metrics.Family) []metrics.Family {
	out := append(append([]metrics.Family(nil), a...), b...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
