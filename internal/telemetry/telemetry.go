// Package telemetry is Feisu's fleet-observability surface: an optional
// net/http exporter serving Prometheus-format metrics (/metrics), a
// cluster health probe (/healthz), the slow-query log (/debug/slowlog)
// and, behind a flag, pprof. It complements the per-query trace spans of
// package trace: spans answer "where did this query go", telemetry answers
// "how is the fleet doing" without attaching a tracer to each request.
package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Version identifies the build on feisu_build_info; binaries may overwrite
// it at startup (or via -ldflags "-X repro/internal/telemetry.Version=...").
var Version = "dev"

// Options configure the exporter.
type Options struct {
	// Registry supplies the metric families for /metrics.
	Registry *metrics.Registry
	// Health, when set, supplies the fleet view: /healthz and the
	// feisu_node_* series on /metrics.
	Health func() cluster.ClusterHealth
	// Slowlog, when set, backs /debug/slowlog.
	Slowlog *Slowlog
	// ActiveQueries, when set, backs /debug/queries: the master's live
	// per-query progress view (text table, or JSON with ?format=json).
	ActiveQueries func() []cluster.QueryProgress
	// Traces, when set, backs /debug/trace/ (index of retained finished
	// traces) and /debug/trace/{id} (one trace as Jaeger-compatible JSON,
	// addressed by query ID or plan fingerprint).
	Traces *trace.Store
	// Events, when set, backs /debug/events: the flight recorder's retained
	// journal (text, or JSON with ?format=json).
	Events *events.Recorder
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Server is a running exporter.
type Server struct {
	opt     Options
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// Start listens on addr (host:port; port 0 picks an ephemeral port) and
// serves the telemetry endpoints until Close.
func Start(addr string, opt Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{opt: opt, ln: ln, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/debug/queries", s.handleQueries)
	mux.HandleFunc("/debug/trace/", s.handleTrace)
	mux.HandleFunc("/debug/events", s.handleEvents)
	if opt.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with an ephemeral port).
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// URL returns the exporter's base URL.
func (s *Server) URL() string {
	return "http://" + s.Addr()
}

// Close stops the exporter gracefully: in-flight scrapes get a short grace
// period to finish before the listener and remaining connections are torn
// down (a scrape cut mid-body used to surface as a truncated /metrics page).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	fams := s.opt.Registry.Families()
	if s.opt.Health != nil {
		fams = mergeFamilies(fams, healthFamilies(s.opt.Health()))
	}
	fams = mergeFamilies(fams, s.buildFamilies())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteText(w, fams)
}

// buildFamilies emits the exporter's own identity series: feisu_build_info
// (constant 1, version/go labels) and feisu_uptime_seconds since Start.
func (s *Server) buildFamilies() []metrics.Family {
	info := metrics.Family{Name: "feisu_build_info", Type: metrics.TypeGauge}
	info.Samples = append(info.Samples, metrics.Sample{
		Labels: []metrics.Label{metrics.L("go", runtime.Version()), metrics.L("version", Version)},
		Value:  1,
	})
	up := metrics.Family{Name: "feisu_uptime_seconds", Type: metrics.TypeGauge}
	up.Samples = append(up.Samples, metrics.Sample{Value: time.Since(s.started).Seconds()})
	return []metrics.Family{info, up}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.opt.Health == nil {
		fmt.Fprintln(w, "ok")
		return
	}
	h := s.opt.Health()
	if h.Healthy() {
		fmt.Fprintf(w, "ok: %d nodes alive\n", h.Alive)
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, "unhealthy: %d alive, %d degraded, %d dead\n", h.Alive, h.Degraded, h.Dead)
	for _, n := range h.Nodes {
		if n.State != cluster.StateAlive {
			fmt.Fprintf(w, "  %s (%s): %s, last heartbeat %s ago\n", n.Name, n.Kind, n.State, n.Age.Round(time.Millisecond))
		}
	}
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	if s.opt.Slowlog == nil {
		if wantJSON(r) {
			writeJSON(w, map[string]any{"enabled": false, "entries": []SlowQuery{}})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "slowlog is not enabled")
		return
	}
	entries := s.opt.Slowlog.Entries()
	if n := queryInt(r, "n"); n > 0 && n < len(entries) {
		entries = entries[:n] // newest first
	}
	if wantJSON(r) {
		writeJSON(w, map[string]any{
			"enabled": true,
			"total":   s.opt.Slowlog.Total(),
			"entries": entries,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "slow queries recorded: %d (showing most recent %d)\n\n",
		s.opt.Slowlog.Total(), len(entries))
	fmt.Fprint(w, RenderSlowlog(entries))
}

// handleQueries serves the live per-query progress table (?format=json for
// the structured form) — the HTTP face of the REPL's `\watch`.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if s.opt.ActiveQueries == nil {
		http.Error(w, "active-query progress is not wired", http.StatusNotFound)
		return
	}
	active := s.opt.ActiveQueries()
	if wantJSON(r) {
		writeJSON(w, map[string]any{"active": len(active), "queries": active})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, cluster.RenderProgress(active))
}

// handleTrace serves finished traces: /debug/trace/ lists what the store
// retains, /debug/trace/{id} returns one trace (by query ID or plan
// fingerprint) as Jaeger-compatible JSON, importable into the Jaeger UI.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.opt.Traces == nil {
		http.Error(w, "trace store is not wired", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if id == "" {
		type row struct {
			QueryID     string        `json:"queryId"`
			Fingerprint string        `json:"fingerprint"`
			SQL         string        `json:"sql"`
			When        time.Time     `json:"when"`
			Wall        time.Duration `json:"wall"`
			Sim         time.Duration `json:"sim"`
		}
		var rows []row
		for _, t := range s.opt.Traces.Traces() {
			rows = append(rows, row{t.QueryID, t.Fingerprint, t.SQL, t.When, t.Wall, t.Sim})
		}
		writeJSON(w, map[string]any{"traces": rows})
		return
	}
	t, ok := s.opt.Traces.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no retained trace for %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, trace.ToJaeger(t))
}

// handleEvents serves the flight recorder's retained journal, newest last.
// ?format=json returns the raw events; ?n= bounds the count (most recent
// kept); ?query= filters by causal query ID.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opt.Events == nil {
		http.Error(w, "flight recorder is not wired", http.StatusNotFound)
		return
	}
	evs := s.opt.Events.Events()
	if q := r.URL.Query().Get("query"); q != "" {
		evs = s.opt.Events.ForQuery(q)
	}
	if n := queryInt(r, "n"); n > 0 && n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	if wantJSON(r) {
		writeJSON(w, map[string]any{
			"total":   s.opt.Events.Total(),
			"dropped": s.opt.Events.Dropped(),
			"events":  evs,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "events recorded: %d, overwritten: %d (showing %d)\n\n",
		s.opt.Events.Total(), s.opt.Events.Dropped(), len(evs))
	for _, e := range evs {
		fmt.Fprintln(w, e.String())
	}
}

// wantJSON reports whether the request asked for ?format=json.
func wantJSON(r *http.Request) bool {
	return r.URL.Query().Get("format") == "json"
}

// queryInt parses an integer query parameter, 0 when absent or malformed.
func queryInt(r *http.Request, key string) int {
	n, err := strconv.Atoi(r.URL.Query().Get(key))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// writeJSON marshals v with indentation onto the response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// healthFamilies converts a ClusterHealth view into gauge families. Load
// gauges are emitted only for non-stale nodes — a dead leaf's series
// disappears from the scrape rather than freezing at its last value —
// while feisu_node_up and feisu_node_stale always report every known node.
func healthFamilies(h cluster.ClusterHealth) []metrics.Family {
	mk := func(name string) metrics.Family {
		return metrics.Family{Name: name, Type: metrics.TypeGauge}
	}
	up := mk("feisu_node_up")
	stale := mk("feisu_node_stale")
	active := mk("feisu_node_active_tasks")
	queue := mk("feisu_node_queue_depth")
	done := mk("feisu_node_tasks_done")
	idxBytes := mk("feisu_node_index_bytes")
	idxEntries := mk("feisu_node_index_entries")
	idxBudget := mk("feisu_node_index_budget_bytes")
	cacheRatio := mk("feisu_node_cache_hit_ratio")
	cacheEvict := mk("feisu_node_cache_evictions")
	cacheBytes := mk("feisu_node_cache_bytes")

	for _, n := range h.Nodes {
		labels := []metrics.Label{metrics.L("kind", n.Kind.String()), metrics.L("node", n.Name)}
		add := func(f *metrics.Family, v float64) {
			f.Samples = append(f.Samples, metrics.Sample{Labels: labels, Value: v})
		}
		add(&up, boolGauge(n.State != cluster.StateDead))
		add(&stale, boolGauge(n.Stale))
		if n.Stale {
			continue
		}
		add(&active, float64(n.Load.ActiveTasks))
		add(&queue, float64(n.Load.QueueDepth))
		add(&done, float64(n.Load.TasksDone))
		add(&idxBytes, float64(n.Load.IndexBytes))
		add(&idxEntries, float64(n.Load.IndexEntries))
		if n.Load.IndexBudget > 0 {
			add(&idxBudget, float64(n.Load.IndexBudget))
		}
		if n.Load.CacheHits+n.Load.CacheMisses > 0 {
			add(&cacheRatio, n.Load.CacheHitRatio())
		}
		add(&cacheEvict, float64(n.Load.CacheEvictions))
		add(&cacheBytes, float64(n.Load.CacheBytes))
	}
	var out []metrics.Family
	for _, f := range []metrics.Family{up, stale, active, queue, done, idxBytes, idxEntries, idxBudget, cacheRatio, cacheEvict, cacheBytes} {
		if len(f.Samples) > 0 {
			out = append(out, f)
		}
	}
	return out
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// mergeFamilies combines two family sets back into one name-sorted list.
func mergeFamilies(a, b []metrics.Family) []metrics.Family {
	out := append(append([]metrics.Family(nil), a...), b...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
