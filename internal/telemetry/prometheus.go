package telemetry

import (
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// WriteText renders metric families in the Prometheus text exposition
// format (version 0.0.4): a `# TYPE` header per family, one sample line
// per label set, and histograms expanded into cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`. Families are assumed pre-sorted by name
// (metrics.Registry.Families guarantees it), which keeps scrapes diffable.
func WriteText(w io.Writer, fams []metrics.Family) error {
	var sb strings.Builder
	for _, f := range fams {
		sb.WriteString("# TYPE ")
		sb.WriteString(f.Name)
		sb.WriteByte(' ')
		sb.WriteString(f.Type.String())
		sb.WriteByte('\n')
		for _, s := range f.Samples {
			if f.Type == metrics.TypeHistogram && s.Hist != nil {
				writeHistogram(&sb, f.Name, s)
				continue
			}
			writeSample(&sb, f.Name, s.Labels, "", "", s.Value)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeHistogram expands one histogram sample into its bucket/sum/count
// series. Bucket counts are cumulative; the mandatory le="+Inf" bucket
// equals the total count.
func writeHistogram(sb *strings.Builder, name string, s metrics.Sample) {
	h := s.Hist
	for _, b := range h.Buckets {
		writeSample(sb, name+"_bucket", s.Labels, "le", formatValue(b.UpperBound), float64(b.Count))
	}
	writeSample(sb, name+"_bucket", s.Labels, "le", "+Inf", float64(h.Count))
	writeSample(sb, name+"_sum", s.Labels, "", "", h.Sum)
	writeSample(sb, name+"_count", s.Labels, "", "", float64(h.Count))
}

// writeSample emits one exposition line. extraKey/extraVal append a
// synthetic label (the histogram `le` bound) after the sample's own labels.
func writeSample(sb *strings.Builder, name string, labels []metrics.Label, extraKey, extraVal string, v float64) {
	sb.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		sb.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				sb.WriteByte(',')
			}
			first = false
			sb.WriteString(l.Key)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				sb.WriteByte(',')
			}
			sb.WriteString(extraKey)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(extraVal))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// formatValue renders a float the way Prometheus expects: shortest exact
// decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
