package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// StageTiming is one per-stage line of a slow query's breakdown, extracted
// from the query's trace spans.
type StageTiming struct {
	Name string
	Sim  time.Duration
	Wall time.Duration
}

// SlowQuery is one slow-query log entry: identity (SQL + plan
// fingerprint), timings, scheduling outcome, the per-stage breakdown and
// the aggregated index/cache counters from the trace.
type SlowQuery struct {
	// Seq is the entry's monotonically increasing sequence number (later
	// entries have larger Seq, surviving ring-buffer wraparound).
	Seq         int64
	When        time.Time
	SQL         string
	Fingerprint string
	Wall        time.Duration
	Sim         time.Duration
	Tasks       int
	Reused      int
	Backups     int
	Failed      int
	Stages      []StageTiming
	Counters    map[string]int64
	// CriticalPath is the critical-path analyzer's one-line attribution
	// ("scan @ leaf2 61%, transfer 22%, ..."), empty when no trace was kept.
	CriticalPath string
}

// Slowlog is a fixed-capacity ring buffer of slow queries. A query is slow
// when its wall time or simulated time exceeds the configured threshold
// (either may be disabled with <=0; with both disabled nothing is ever
// recorded). Safe for concurrent use.
type Slowlog struct {
	wallThresh time.Duration
	simThresh  time.Duration

	mu      sync.Mutex
	entries []SlowQuery // ring storage; len == capacity once full
	next    int         // next write position
	seq     int64
	total   int64
	cap     int
}

// NewSlowlog returns a ring of the given capacity (default 128 when <=0).
func NewSlowlog(capacity int, wallThresh, simThresh time.Duration) *Slowlog {
	if capacity <= 0 {
		capacity = 128
	}
	return &Slowlog{cap: capacity, wallThresh: wallThresh, simThresh: simThresh}
}

// Enabled reports whether any threshold is active.
func (l *Slowlog) Enabled() bool {
	return l != nil && (l.wallThresh > 0 || l.simThresh > 0)
}

// Slow reports whether a query with these timings crosses a threshold.
func (l *Slowlog) Slow(wall, sim time.Duration) bool {
	if l == nil {
		return false
	}
	return (l.wallThresh > 0 && wall >= l.wallThresh) ||
		(l.simThresh > 0 && sim >= l.simThresh)
}

// Record appends an entry, evicting the oldest once the ring is full. The
// entry's Seq is assigned here.
func (l *Slowlog) Record(q SlowQuery) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	l.total++
	q.Seq = l.seq
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, q)
		l.next = len(l.entries) % l.cap
	} else {
		l.entries[l.next] = q
		l.next = (l.next + 1) % l.cap
	}
	l.mu.Unlock()
}

// Entries returns a copy of the retained entries, newest first.
func (l *Slowlog) Entries() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.entries))
	// Walk backwards from the most recent write.
	for i := 0; i < len(l.entries); i++ {
		idx := (l.next - 1 - i + len(l.entries)) % len(l.entries)
		out = append(out, l.entries[idx])
	}
	return out
}

// Total returns how many slow queries have ever been recorded (including
// entries the ring has since evicted).
func (l *Slowlog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// StagesFromTrace extracts a per-stage breakdown from a query's root span:
// the root's direct children (master/load-dims, master/execute,
// master/finalize) plus an aggregated busy total over all leaf task spans,
// so the breakdown shows both the critical path and the fan-out volume.
func StagesFromTrace(root *trace.Span) []StageTiming {
	if root == nil {
		return nil
	}
	var out []StageTiming
	for _, c := range root.Children() {
		out = append(out, StageTiming{Name: c.Name(), Sim: c.Sim(), Wall: c.Wall()})
	}
	leaves := root.FindAll("leaf/")
	if len(leaves) > 0 {
		agg := StageTiming{Name: fmt.Sprintf("leaf tasks ×%d (busy total)", len(leaves))}
		for _, l := range leaves {
			agg.Sim += l.Sim()
			agg.Wall += l.Wall()
		}
		out = append(out, agg)
	}
	return out
}

// CountersFromTrace sums every named counter across the whole span tree
// (index.hit, cache.miss, rows.scanned, ...).
func CountersFromTrace(root *trace.Span) map[string]int64 {
	if root == nil {
		return nil
	}
	out := make(map[string]int64)
	var walk func(s *trace.Span)
	walk = func(s *trace.Span) {
		for k, v := range s.Counts() {
			out[k] += v
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	if len(out) == 0 {
		return nil
	}
	return out
}

// RenderSlowlog formats entries (as returned by Entries, newest first) for
// the \slowlog command and /debug/slowlog endpoint.
func RenderSlowlog(entries []SlowQuery) string {
	if len(entries) == 0 {
		return "slowlog is empty\n"
	}
	var sb strings.Builder
	for _, q := range entries {
		fmt.Fprintf(&sb, "#%d %s wall=%s sim=%s tasks=%d reused=%d backups=%d failed=%d\n",
			q.Seq, q.When.Format(time.RFC3339), q.Wall.Round(time.Microsecond),
			q.Sim.Round(time.Microsecond), q.Tasks, q.Reused, q.Backups, q.Failed)
		fmt.Fprintf(&sb, "  query: %s\n", q.SQL)
		if q.Fingerprint != "" && q.Fingerprint != q.SQL {
			fmt.Fprintf(&sb, "  fingerprint: %s\n", q.Fingerprint)
		}
		for _, st := range q.Stages {
			fmt.Fprintf(&sb, "  stage %-28s sim=%-12s wall=%s\n",
				st.Name, st.Sim.Round(time.Microsecond), st.Wall.Round(time.Microsecond))
		}
		if q.CriticalPath != "" {
			fmt.Fprintf(&sb, "  critical path: %s\n", q.CriticalPath)
		}
		if len(q.Counters) > 0 {
			keys := make([]string, 0, len(q.Counters))
			for k := range q.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%d", k, q.Counters[k])
			}
			fmt.Fprintf(&sb, "  counters: %s\n", strings.Join(parts, " "))
		}
	}
	return sb.String()
}
