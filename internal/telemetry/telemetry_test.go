package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestWriteTextFormat(t *testing.T) {
	r := metrics.NewRegistry()
	r.CounterWith("feisu_tasks_total", metrics.L("leaf", "leaf1")).Add(3)
	r.CounterWith("feisu_tasks_total", metrics.L("leaf", "leaf0")).Add(7)
	r.GaugeWith("feisu_cache_bytes", metrics.L("leaf", "leaf0")).Set(1024)
	r.HistogramWith("feisu_query_seconds").Observe(0.5)
	r.Counter("master.queries").Add(2) // legacy flat counter

	var sb strings.Builder
	if err := WriteText(&sb, r.Families()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE feisu_tasks_total counter\n",
		`feisu_tasks_total{leaf="leaf0"} 7` + "\n",
		`feisu_tasks_total{leaf="leaf1"} 3` + "\n",
		"# TYPE feisu_cache_bytes gauge\n",
		`feisu_cache_bytes{leaf="leaf0"} 1024` + "\n",
		"# TYPE feisu_query_seconds histogram\n",
		`feisu_query_seconds_bucket{le="+Inf"} 1` + "\n",
		"feisu_query_seconds_sum 0.5\n",
		"feisu_query_seconds_count 1\n",
		"master_queries 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Samples within a family sort by label value.
	if strings.Index(out, `leaf="leaf0"} 7`) > strings.Index(out, `leaf="leaf1"} 3`) {
		t.Error("samples not sorted by label value")
	}
}

// TestWriteTextStableOrdering: two scrapes of the same registry render
// byte-identical output, and families appear name-sorted.
func TestWriteTextStableOrdering(t *testing.T) {
	r := metrics.NewRegistry()
	for i := 0; i < 8; i++ {
		r.CounterWith("feisu_b_total", metrics.L("leaf", fmt.Sprintf("leaf%d", i))).Inc()
		r.GaugeWith("feisu_a_bytes", metrics.L("leaf", fmt.Sprintf("leaf%d", i))).Set(float64(i))
	}
	var one, two strings.Builder
	if err := WriteText(&one, r.Families()); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&two, r.Families()); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("two scrapes of an unchanged registry differ")
	}
	if strings.Index(one.String(), "feisu_a_bytes") > strings.Index(one.String(), "feisu_b_total") {
		t.Error("families not sorted by name")
	}
}

func TestWriteTextLabelEscaping(t *testing.T) {
	r := metrics.NewRegistry()
	r.CounterWith("feisu_paths_total", metrics.L("path", "a\\b\"c\nd")).Inc()
	var sb strings.Builder
	if err := WriteText(&sb, r.Families()); err != nil {
		t.Fatal(err)
	}
	want := `feisu_paths_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label missing; want %q in:\n%s", want, sb.String())
	}
}

func TestSlowlogRing(t *testing.T) {
	l := NewSlowlog(3, time.Millisecond, 0)
	if !l.Enabled() {
		t.Fatal("Enabled = false with a wall threshold")
	}
	if l.Slow(0, time.Hour) {
		t.Error("sim threshold disabled but sim time triggered")
	}
	if !l.Slow(2*time.Millisecond, 0) {
		t.Error("2ms wall should be slow at a 1ms threshold")
	}
	for i := 1; i <= 5; i++ {
		l.Record(SlowQuery{SQL: fmt.Sprintf("q%d", i)})
	}
	if l.Total() != 5 {
		t.Errorf("Total = %d", l.Total())
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("ring retained %d, want 3", len(got))
	}
	// Newest first, oldest two evicted.
	for i, want := range []string{"q5", "q4", "q3"} {
		if got[i].SQL != want {
			t.Errorf("entry %d = %s, want %s", i, got[i].SQL, want)
		}
	}
	if got[0].Seq != 5 || got[2].Seq != 3 {
		t.Errorf("seqs = %d..%d, want 5..3", got[0].Seq, got[2].Seq)
	}
}

func TestSlowlogDisabled(t *testing.T) {
	l := NewSlowlog(4, 0, 0)
	if l.Enabled() || l.Slow(time.Hour, time.Hour) {
		t.Error("no thresholds: nothing is ever slow")
	}
	var nilLog *Slowlog
	if nilLog.Enabled() || nilLog.Slow(1, 1) || nilLog.Entries() != nil || nilLog.Total() != 0 {
		t.Error("nil slowlog must be inert")
	}
	nilLog.Record(SlowQuery{}) // must not panic
}

func TestStagesAndCountersFromTrace(t *testing.T) {
	root := trace.New("master/query")
	d := root.Child("master/load-dims")
	d.SetSim(2 * time.Millisecond)
	d.Finish()
	e := root.Child("master/execute")
	leaf := e.Child("leaf/leaf0")
	leaf.SetSim(5 * time.Millisecond)
	leaf.Count("index.hit", 3)
	sc := leaf.Child("scan")
	sc.Count("rows.scanned", 100)
	sc.Finish()
	leaf.Finish()
	e.SetSim(5 * time.Millisecond)
	e.Finish()
	root.Finish()

	stages := StagesFromTrace(root)
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "master/load-dims") || !strings.Contains(joined, "master/execute") {
		t.Errorf("stages = %v", names)
	}
	if !strings.Contains(joined, "leaf tasks ×1") {
		t.Errorf("missing aggregated leaf stage: %v", names)
	}
	counters := CountersFromTrace(root)
	if counters["index.hit"] != 3 || counters["rows.scanned"] != 100 {
		t.Errorf("counters = %v", counters)
	}
	if StagesFromTrace(nil) != nil || CountersFromTrace(nil) != nil {
		t.Error("nil trace must yield nil")
	}
}

// TestServerEndpoints starts the exporter on an ephemeral port and checks
// all three endpoints end to end, including the 503 flip when a node dies.
func TestServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.CounterWith("feisu_queries_total").Add(9)

	now := time.Unix(0, 0)
	mgr := cluster.NewClusterManager(10 * time.Second)
	mgr.Now = func() time.Time { return now }
	mgr.HeartbeatLoad("leaf0", cluster.KindLeaf, cluster.LoadSnapshot{ActiveTasks: 1, IndexBytes: 2048, CacheHits: 3, CacheMisses: 1})

	slow := NewSlowlog(8, time.Nanosecond, 0)
	slow.Record(SlowQuery{SQL: "SELECT slow", Wall: time.Second, When: time.Unix(0, 0)})

	srv, err := Start("127.0.0.1:0", Options{Registry: reg, Health: mgr.Health, Slowlog: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"feisu_queries_total 9",
		`feisu_node_up{kind="leaf",node="leaf0"} 1`,
		`feisu_node_index_bytes{kind="leaf",node="leaf0"} 2048`,
		`feisu_node_cache_hit_ratio{kind="leaf",node="leaf0"} 0.75`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	if code, body = get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	if code, body = get("/debug/slowlog"); code != 200 || !strings.Contains(body, "SELECT slow") {
		t.Errorf("/debug/slowlog = %d %q", code, body)
	}

	// Kill the node: /healthz flips to 503 and its load series vanish
	// from /metrics while feisu_node_up reports 0.
	now = now.Add(time.Minute)
	if code, body = get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "leaf0") {
		t.Errorf("/healthz after death = %d %q", code, body)
	}
	_, body = get("/metrics")
	if !strings.Contains(body, `feisu_node_up{kind="leaf",node="leaf0"} 0`) {
		t.Errorf("dead node not reported down:\n%s", body)
	}
	if strings.Contains(body, "feisu_node_index_bytes") {
		t.Errorf("stale load gauge still exported:\n%s", body)
	}
	if !strings.Contains(body, `feisu_node_stale{kind="leaf",node="leaf0"} 1`) {
		t.Errorf("stale marker missing:\n%s", body)
	}
}
