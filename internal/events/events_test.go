package events

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Site: "x", Kind: QuerySubmit})
	r.Emit("x", QueryDone, "q1", -1, "")
	r.EmitSim("x", TaskCollected, "q1", 0, time.Millisecond, "")
	r.SetEnabled(true)
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder Events() = %v", got)
	}
	if r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder has counts")
	}
}

func TestRecordAssignsSequences(t *testing.T) {
	r := New(8)
	r.Emit("master", QuerySubmit, "q1", -1, "")
	r.Emit("master", QueryAdmitted, "q1", -1, "")
	r.Emit(TaskSite("q1", 0), TaskScheduled, "q1", 0, "leaf0")
	r.Emit("master", QueryDone, "q1", -1, "rows=1")

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq=%d, want %d", i, e.Seq, i+1)
		}
		if e.Wall.IsZero() {
			t.Errorf("event %d: zero wall timestamp", i)
		}
	}
	if evs[0].SiteSeq != 1 || evs[1].SiteSeq != 2 || evs[3].SiteSeq != 3 {
		t.Errorf("master site seqs = %d,%d,%d, want 1,2,3", evs[0].SiteSeq, evs[1].SiteSeq, evs[3].SiteSeq)
	}
	if evs[2].SiteSeq != 1 {
		t.Errorf("task site seq = %d, want 1", evs[2].SiteSeq)
	}
	if r.Total() != 4 || r.Dropped() != 0 {
		t.Fatalf("Total=%d Dropped=%d, want 4, 0", r.Total(), r.Dropped())
	}
}

func TestRingOverwritesOldestAndCountsDrops(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Emit("s", QuerySubmit, fmt.Sprintf("q%d", i), -1, "")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// Oldest retained is q6 (q0..q5 overwritten).
	if evs[0].Query != "q6" || evs[3].Query != "q9" {
		t.Fatalf("retained window %s..%s, want q6..q9", evs[0].Query, evs[3].Query)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained events out of arrival order: %v", evs)
		}
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("Total=%d Dropped=%d, want 10, 6", r.Total(), r.Dropped())
	}
}

func TestDisabledRecorderDrops(t *testing.T) {
	r := New(4)
	r.SetEnabled(false)
	r.Emit("s", QuerySubmit, "q1", -1, "")
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatal("disabled recorder accepted an event")
	}
	r.SetEnabled(true)
	r.Emit("s", QuerySubmit, "q2", -1, "")
	if r.Total() != 1 {
		t.Fatal("re-enabled recorder dropped an event")
	}
}

func TestCanonicalOrderIndependentOfArrival(t *testing.T) {
	// Two interleavings of the same per-site streams must produce the same
	// canonical journal.
	build := func(order []int) []Event {
		r := New(16)
		streams := [][]Event{
			{{Site: "a", Kind: QuerySubmit}, {Site: "a", Kind: QueryDone}},
			{{Site: "b", Kind: TaskScheduled, Task: 0}, {Site: "b", Kind: TaskCollected, Task: 0}},
		}
		idx := []int{0, 0}
		for _, s := range order {
			r.Record(streams[s][idx[s]])
			idx[s]++
		}
		canon := r.Canonical()
		for i := range canon {
			canon[i].Seq, canon[i].Wall = 0, time.Time{} // arrival-dependent
		}
		return canon
	}
	a := build([]int{0, 0, 1, 1})
	b := build([]int{1, 0, 1, 0})
	if len(a) != len(b) {
		t.Fatalf("canonical lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("canonical[%d] differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestForQuery(t *testing.T) {
	r := New(16)
	r.Emit("m", QuerySubmit, "q1", -1, "")
	r.Emit("m", QuerySubmit, "q2", -1, "")
	r.Emit(TaskSite("q1", 0), TaskCollected, "q1", 0, "")
	got := r.ForQuery("q1")
	if len(got) != 2 {
		t.Fatalf("ForQuery(q1) = %d events, want 2", len(got))
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 42, Site: "task/q3#1", SiteSeq: 2, Kind: TaskRetry,
		Query: "q3", Task: 1, Sim: 1200 * time.Microsecond, Detail: "leaf2: read error"}
	s := e.String()
	for _, want := range []string{"#42", "task/q3#1+2", "task.retry", "q3", "t1", "sim=1.2ms", "read error"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	// Query-scoped events omit the task ordinal.
	e2 := Event{Seq: 1, Site: "m", SiteSeq: 1, Kind: QueryDone, Query: "q1", Task: -1}
	if strings.Contains(e2.String(), " t-1") {
		t.Errorf("String() = %q shows negative task", e2.String())
	}
}

func TestConcurrentRecordKeepsInvariants(t *testing.T) {
	r := New(64)
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			site := fmt.Sprintf("site%d", g)
			for i := 0; i < per; i++ {
				r.Emit(site, TaskDispatched, "q1", i, "")
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != goroutines*per {
		t.Fatalf("Total=%d, want %d", r.Total(), goroutines*per)
	}
	if r.Dropped() != goroutines*per-64 {
		t.Fatalf("Dropped=%d, want %d", r.Dropped(), goroutines*per-64)
	}
	// Per-site sequences within the retained window are strictly increasing.
	last := map[string]uint64{}
	for _, e := range r.Events() {
		if e.SiteSeq <= last[e.Site] {
			t.Fatalf("site %s seq went backwards: %d after %d", e.Site, e.SiteSeq, last[e.Site])
		}
		last[e.Site] = e.SiteSeq
	}
}
