// Package events is Feisu's cluster flight recorder: an always-on, bounded
// journal of the structured decisions a query passes through — admission
// (queued / admitted / shed), scheduling (task scheduled / dispatched /
// collected), recovery (retry / hedge / partial result), the semantic
// result cache (hit / subsumed / store / evict / invalidate), worker state
// transitions, ingest invalidations, and bridged chaos-plane faults.
//
// Events carry causal identifiers (query ID, task ordinal) plus both a
// wall-clock timestamp and, where known, the simulated-time charge of the
// step, so an incident timeline can be read either in real time or in the
// cost model's units.
//
// Determinism is the design constraint carried over from internal/chaos:
// every event names an emitting *site* and receives a per-site sequence
// number under the recorder's lock. Sites are chosen fine-grained enough
// (one per task lifecycle, one per chaos decision stream, one per cache)
// that the (site, seq)-sorted journal of a seeded run is reproducible even
// though goroutine interleaving varies — the property the flight-recorder
// determinism test locks in.
//
// The recorder itself is a fixed-capacity ring guarded by a mutex whose
// critical section is a few stores (assign sequence numbers, copy one
// struct); when the ring wraps, the oldest entry is overwritten and a drop
// counter advances so readers know the journal is truncated. All methods
// are nil-safe and Record is a no-op while the recorder is disabled, so
// instrumented code never needs to guard call sites.
package events

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event. Kinds are dotted component.action names so a
// journal line reads as a sentence and prefix filters stay cheap.
type Kind string

// The event taxonomy. Emission sites are noted per group.
const (
	// Query lifecycle (master).
	QuerySubmit   Kind = "query.submit"   // query arrived at the master
	QueryQueued   Kind = "query.queued"   // admission made it wait
	QueryAdmitted Kind = "query.admitted" // admission granted a slot
	QueryShed     Kind = "query.shed"     // admission rejected it
	QueryDone     Kind = "query.done"     // finished (Detail carries row count)
	QueryError    Kind = "query.error"    // finished with an error

	// Task lifecycle (master scheduler, stems, master collector).
	TaskScheduled  Kind = "task.scheduled" // placement decided (Detail = leaf)
	TaskDispatched Kind = "task.dispatched"
	TaskCollected  Kind = "task.collected"
	TaskRetry      Kind = "task.retry"
	TaskHedge      Kind = "task.hedge"     // backup attempt launched
	TaskHedgeWon   Kind = "task.hedge-won" // the backup beat the primary
	TaskPartial    Kind = "task.partial"   // gave up; query proceeds partial

	// Semantic result cache.
	CacheHit        Kind = "rescache.hit"
	CacheSubsumed   Kind = "rescache.subsumed"
	CacheStore      Kind = "rescache.store"
	CacheEvict      Kind = "rescache.evict"
	CacheInvalidate Kind = "rescache.invalidate"

	// Leaf execution (leaf servers; Sim carries the task's execution bill).
	LeafExec Kind = "leaf.exec"

	// Worker state transitions (cluster manager).
	WorkerSuspect   Kind = "worker.suspect"
	WorkerRecovered Kind = "worker.recovered"

	// Ingest.
	IngestInvalidate Kind = "ingest.invalidate"

	// Repartition shuffle (master orchestration + reducer commits; Sim on
	// map/reduce events carries the stage's execution bill).
	ShuffleMap    Kind = "shuffle.map"    // one map task finished on a leaf
	ShuffleRetry  Kind = "shuffle.retry"  // map task re-dispatched after a failure
	ShuffleCommit Kind = "shuffle.commit" // reducer committed a map attempt's frames
	ShuffleReduce Kind = "shuffle.reduce" // reducer finished one partition
	ShuffleSpill  Kind = "shuffle.spill"  // operator exceeded its memory grant

	// Chaos-plane bridge: faults arrive as "chaos.<kind>" (kill, restart,
	// straggle, recover, partition, heal, drop, delay, read-err, corrupt).
	ChaosPrefix = "chaos."
)

// Event is one journal entry.
type Event struct {
	// Seq is the global arrival index (1-based, monotonic). It orders the
	// journal as it happened on this host; it is NOT stable across runs.
	Seq uint64 `json:"seq"`
	// Site names the emitting decision stream; SiteSeq is the event's
	// 1-based position within it. The (Site, SiteSeq) order of a seeded
	// run is deterministic.
	Site    string `json:"site"`
	SiteSeq uint64 `json:"siteSeq"`

	Kind  Kind   `json:"kind"`
	Query string `json:"query,omitempty"` // causal query ID ("q000012")
	Task  int    `json:"task"`            // task ordinal, -1 when not task-scoped

	Wall time.Time     `json:"wall"`          // wall-clock timestamp
	Sim  time.Duration `json:"sim,omitempty"` // simulated-time charge, when known

	Detail string `json:"detail,omitempty"`
}

// String renders one journal line:
//
//	#42 task/q000003#1+2 task.retry q000003 t1 sim=1.2ms leaf2: chaos: read error
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s+%d %s", e.Seq, e.Site, e.SiteSeq, e.Kind)
	if e.Query != "" {
		s += " " + e.Query
	}
	if e.Task >= 0 {
		s += fmt.Sprintf(" t%d", e.Task)
	}
	if e.Sim > 0 {
		s += fmt.Sprintf(" sim=%s", e.Sim)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Recorder is the bounded journal. The zero value is unusable; build one
// with New. A nil *Recorder is a valid, always-off recorder.
type Recorder struct {
	enabled atomic.Bool
	total   atomic.Uint64 // events accepted (including overwritten)
	dropped atomic.Uint64 // events overwritten by ring wrap

	mu    sync.Mutex
	ring  []Event
	next  int  // ring slot for the next event
	wrap  bool // ring has wrapped at least once
	sites map[string]uint64
}

// DefaultCapacity is the journal size used when New is given n <= 0.
const DefaultCapacity = 4096

// New builds an enabled recorder holding the last n events (DefaultCapacity
// when n <= 0).
func New(n int) *Recorder {
	if n <= 0 {
		n = DefaultCapacity
	}
	r := &Recorder{
		ring:  make([]Event, n),
		sites: make(map[string]uint64),
	}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether the recorder is accepting events (false on nil).
func (r *Recorder) Enabled() bool {
	return r != nil && r.enabled.Load()
}

// SetEnabled flips recording on or off. Disabled recorders drop events
// before taking the lock — the state read is a single atomic load, which is
// what the flightrec overhead experiment measures against.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Record journals one event, assigning its global and per-site sequence
// numbers and stamping Wall if unset. Safe on nil and while disabled (both
// no-ops).
func (r *Recorder) Record(e Event) {
	if r == nil || !r.enabled.Load() {
		return
	}
	if e.Wall.IsZero() {
		e.Wall = time.Now()
	}
	if e.Site == "" {
		e.Site = "unknown"
	}
	r.mu.Lock()
	r.sites[e.Site]++
	e.SiteSeq = r.sites[e.Site]
	e.Seq = r.total.Add(1)
	if r.wrap {
		r.dropped.Add(1)
	}
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrap = true
	}
	r.mu.Unlock()
}

// Emit is the common-case Record: site, kind, causal IDs and a detail
// string. Pass task < 0 for query-scoped events.
func (r *Recorder) Emit(site string, kind Kind, query string, task int, detail string) {
	r.Record(Event{Site: site, Kind: kind, Query: query, Task: task, Detail: detail})
}

// EmitSim is Emit with a simulated-time charge attached.
func (r *Recorder) EmitSim(site string, kind Kind, query string, task int, sim time.Duration, detail string) {
	r.Record(Event{Site: site, Kind: kind, Query: query, Task: task, Sim: sim, Detail: detail})
}

// Events returns the retained journal in arrival (global Seq) order,
// oldest first. Nil recorders return nil.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrap {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Canonical returns the retained journal sorted by (Site, SiteSeq) — the
// run-to-run reproducible order for a seeded schedule, independent of how
// goroutines interleaved their appends.
func (r *Recorder) Canonical() []Event {
	evs := r.Events()
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Site != evs[j].Site {
			return evs[i].Site < evs[j].Site
		}
		return evs[i].SiteSeq < evs[j].SiteSeq
	})
	return evs
}

// Query returns the retained events carrying the given query ID, in
// arrival order.
func (r *Recorder) ForQuery(id string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Query == id {
			out = append(out, e)
		}
	}
	return out
}

// Total returns how many events were ever accepted (0 on nil).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Dropped returns how many accepted events were overwritten by ring wrap
// (0 on nil).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// TaskSite names the per-task decision stream used for task lifecycle
// events: every task's scheduled → dispatched → (retry|hedge)* → collected
// chain is causally ordered within its own site, which keeps the canonical
// journal deterministic even when sibling tasks race.
func TaskSite(query string, ordinal int) string {
	return fmt.Sprintf("task/%s#%d", query, ordinal)
}
