package cluster

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"repro/internal/plan"
	"repro/internal/transport"
)

// Locator resolves a partition path to the nodes holding a replica of it.
// *storage.Router implements it; tests inject fixed placements.
type Locator interface {
	Locations(path string) []string
}

// JobScheduler creates scheduling plans: it places each sub-plan on the
// leaf that holds the data when available, otherwise on a replica holder,
// otherwise on the alive leaf with the lowest network distance to the data
// and the lightest load (paper §III-B: "Feisu always schedules a task to
// the leaf server that contains the data if the server is available ...
// otherwise to an available server that has a low network transfer
// overhead"). Placement is load-aware: ties at equal locality break by the
// live heartbeat load (active + queued tasks plus this master's in-flight
// dispatches), and SlotsPerLeaf caps how many concurrent tasks a leaf may
// be assigned — a saturated holder sheds new placements to a replica
// instead of queueing blind behind its backlog.
type JobScheduler struct {
	Manager *ClusterManager
	Locator Locator
	Topo    *transport.Topology
	// SlotsPerLeaf caps a leaf's concurrent task load at placement time;
	// <=0 means unbounded. When every candidate is saturated the cap is
	// waived and the least-loaded candidate is used: the admission queue
	// upstream, not placement failure, is the overload defense.
	SlotsPerLeaf int
	// LocalityOff disables data-locality placement (ablation benchmark):
	// tasks land on uniformly random alive leaves.
	LocalityOff bool
	// Affinity enables cache-affinity placement: tasks for the same
	// partition land on the same leaf (rendezvous hashing over the open
	// candidates, data holders preferred), so leaf-local footer and SSD
	// caches keep hitting across repeated queries. When every candidate is
	// saturated (the slot cap is waived) the scheduler falls through to the
	// load-aware path — load wins over affinity under pressure.
	Affinity bool

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Place picks a leaf for the task, excluding the given nodes (used when
// issuing backup tasks). It returns an error when no leaf is alive.
//
// Selection order:
//  1. among candidates under the slot cap (all candidates when every one is
//     saturated): a live data holder with the lowest load, ties by name;
//  2. otherwise the candidate minimizing (network distance to the nearest
//     holder, load, name).
func (s *JobScheduler) Place(task plan.TaskSpec, exclude map[string]bool) (string, error) {
	alive := s.Manager.AliveWorkers(KindLeaf)
	candidates := make([]string, 0, len(alive))
	for _, l := range alive {
		if !exclude[l] {
			candidates = append(candidates, l)
		}
	}
	if len(candidates) == 0 {
		return "", fmt.Errorf("cluster: no available leaf server for %s", task.Partition.Path)
	}
	if s.LocalityOff {
		s.rngMu.Lock()
		if s.rng == nil {
			s.rng = rand.New(rand.NewSource(1))
		}
		pick := candidates[s.rng.Intn(len(candidates))]
		s.rngMu.Unlock()
		return pick, nil
	}

	// Per-leaf slots: restrict to leaves with spare capacity; when the whole
	// candidate set is saturated, waive the cap (see SlotsPerLeaf).
	pool := candidates
	capWaived := false
	if s.SlotsPerLeaf > 0 {
		open := make([]string, 0, len(candidates))
		for _, c := range candidates {
			if s.Manager.Load(c) < s.SlotsPerLeaf {
				open = append(open, c)
			}
		}
		if len(open) > 0 {
			pool = open
		} else {
			capWaived = true
		}
	}

	holders := s.Locator.Locations(task.Partition.Path)

	// Cache affinity: the same partition consistently maps to the same leaf
	// via rendezvous hashing over the eligible pool (holders preferred), so
	// repeated queries re-hit that leaf's warmed caches. A saturated fleet
	// waives the slot cap — then load-aware placement below takes over.
	if s.Affinity && !capWaived {
		if pick, ok := affinityPick(task.Partition.Path, pool, holders); ok {
			return pick, nil
		}
	}
	{
		// First choice: a live data holder with capacity, least loaded;
		// equal loads break by name so placement is deterministic.
		best, bestLoad := "", 0
		for _, h := range pool {
			if !contains(holders, h) {
				continue
			}
			l := s.Manager.Load(h)
			if best == "" || l < bestLoad || (l == bestLoad && h < best) {
				best, bestLoad = h, l
			}
		}
		if best != "" {
			return best, nil
		}
	}

	// Fallback: minimize (network distance to nearest holder, load, name).
	best := pool[0]
	bestDist, bestLoad := s.distance(best, holders), s.Manager.Load(best)
	for _, c := range pool[1:] {
		d, l := s.distance(c, holders), s.Manager.Load(c)
		if d < bestDist || (d == bestDist && (l < bestLoad || (l == bestLoad && c < best))) {
			best, bestDist, bestLoad = c, d, l
		}
	}
	return best, nil
}

// distance returns the smallest topology distance from node to any holder;
// location-free data (no holders) is distance 0 from everyone.
func (s *JobScheduler) distance(node string, holders []string) int {
	if len(holders) == 0 {
		return 0
	}
	best := 1 << 30
	for _, h := range holders {
		if d := s.Topo.Distance(node, h); d < best {
			best = d
		}
	}
	return best
}

// affinityPick rendezvous-hashes the partition path against each eligible
// leaf and returns the highest-scoring one. Restricting the domain to live
// data holders (when any are in the pool) keeps affinity and locality
// aligned; otherwise the whole pool participates, so the mapping stays
// stable as long as membership does and moves only 1/n of partitions when
// a leaf joins or leaves.
func affinityPick(path string, pool, holders []string) (string, bool) {
	domain := pool
	if len(holders) > 0 {
		hp := make([]string, 0, len(pool))
		for _, c := range pool {
			if contains(holders, c) {
				hp = append(hp, c)
			}
		}
		if len(hp) > 0 {
			domain = hp
		}
	}
	if len(domain) == 0 {
		return "", false
	}
	best, bestScore := "", uint64(0)
	for _, c := range domain {
		h := fnv.New64a()
		h.Write([]byte(path))
		h.Write([]byte{'|'})
		h.Write([]byte(c))
		if sc := h.Sum64(); best == "" || sc > bestScore || (sc == bestScore && c < best) {
			best, bestScore = c, sc
		}
	}
	return best, true
}

func contains(list []string, s string) bool {
	for _, e := range list {
		if e == s {
			return true
		}
	}
	return false
}

// PlanAll assigns every task, spreading load as it goes. The provisional
// per-leaf in-flight counts stay charged until the caller invokes the
// returned release function per task (ReleaseTask) or wholesale — they are
// the dispatch-side half of the per-leaf slot accounting, so concurrent
// queries planning against the same fleet see each other's assignments.
// On error nothing stays charged.
func (s *JobScheduler) PlanAll(tasks []plan.TaskSpec) (map[int]string, error) {
	assign := make(map[int]string, len(tasks))
	bumped := make([]string, 0, len(tasks))
	for _, t := range tasks {
		leaf, err := s.Place(t, nil)
		if err != nil {
			for _, b := range bumped {
				s.Manager.AddInflight(b, -1)
			}
			return nil, err
		}
		assign[t.Ordinal] = leaf
		// Count the pending dispatch so subsequent placements spread and
		// other queries' slot checks see this one's claim.
		s.Manager.AddInflight(leaf, 1)
		bumped = append(bumped, leaf)
	}
	return assign, nil
}

// ReleaseTask returns one task's placement slot (call once per assigned
// task when its terminal outcome is known).
func (s *JobScheduler) ReleaseTask(leaf string) {
	if leaf != "" {
		s.Manager.AddInflight(leaf, -1)
	}
}
