package cluster

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/transport"
)

// JobScheduler creates scheduling plans: it places each sub-plan on the
// leaf that holds the data when available, otherwise on a replica holder,
// otherwise on the alive leaf with the lowest network distance to the data
// and the lightest load (paper §III-B: "Feisu always schedules a task to
// the leaf server that contains the data if the server is available ...
// otherwise to an available server that has a low network transfer
// overhead").
type JobScheduler struct {
	Manager *ClusterManager
	Router  *storage.Router
	Topo    *transport.Topology
	// LocalityOff disables data-locality placement (ablation benchmark):
	// tasks land on uniformly random alive leaves.
	LocalityOff bool

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Place picks a leaf for the task, excluding the given nodes (used when
// issuing backup tasks). It returns an error when no leaf is alive.
func (s *JobScheduler) Place(task plan.TaskSpec, exclude map[string]bool) (string, error) {
	alive := s.Manager.AliveWorkers(KindLeaf)
	candidates := make([]string, 0, len(alive))
	for _, l := range alive {
		if !exclude[l] {
			candidates = append(candidates, l)
		}
	}
	if len(candidates) == 0 {
		return "", fmt.Errorf("cluster: no available leaf server for %s", task.Partition.Path)
	}
	if s.LocalityOff {
		s.rngMu.Lock()
		if s.rng == nil {
			s.rng = rand.New(rand.NewSource(1))
		}
		pick := candidates[s.rng.Intn(len(candidates))]
		s.rngMu.Unlock()
		return pick, nil
	}

	holders := s.Router.Locations(task.Partition.Path)
	{
		// First choice: a live data holder, least loaded.
		best := ""
		for _, h := range holders {
			if !contains(candidates, h) {
				continue
			}
			if best == "" || s.Manager.Load(h) < s.Manager.Load(best) {
				best = h
			}
		}
		if best != "" {
			return best, nil
		}
	}

	// Fallback: minimize (network distance to nearest holder, load).
	best := candidates[0]
	bestDist, bestLoad := s.distance(best, holders), s.Manager.Load(best)
	for _, c := range candidates[1:] {
		d, l := s.distance(c, holders), s.Manager.Load(c)
		if d < bestDist || (d == bestDist && l < bestLoad) {
			best, bestDist, bestLoad = c, d, l
		}
	}
	return best, nil
}

// distance returns the smallest topology distance from node to any holder;
// location-free data (no holders) is distance 0 from everyone.
func (s *JobScheduler) distance(node string, holders []string) int {
	if len(holders) == 0 {
		return 0
	}
	best := 1 << 30
	for _, h := range holders {
		if d := s.Topo.Distance(node, h); d < best {
			best = d
		}
	}
	return best
}

func contains(list []string, s string) bool {
	for _, e := range list {
		if e == s {
			return true
		}
	}
	return false
}

// PlanAll assigns every task, spreading load as it goes.
func (s *JobScheduler) PlanAll(tasks []plan.TaskSpec) (map[int]string, error) {
	assign := make(map[int]string, len(tasks))
	bumped := make([]string, 0, len(tasks))
	for _, t := range tasks {
		leaf, err := s.Place(t, nil)
		if err != nil {
			for _, b := range bumped {
				s.Manager.AddInflight(b, -1)
			}
			return nil, err
		}
		assign[t.Ordinal] = leaf
		// Count the pending dispatch so subsequent placements spread.
		s.Manager.AddInflight(leaf, 1)
		bumped = append(bumped, leaf)
	}
	// The caller dispatches immediately; release the provisional counts
	// (the stems re-report real load via heartbeats).
	for _, b := range bumped {
		s.Manager.AddInflight(b, -1)
	}
	return assign, nil
}
