package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// QueryProgress is the live execution state of one in-flight query — the
// master's answer to "what is the cluster doing right now". Snapshots are
// plain values; `\watch`, System.ActiveQueries and /debug/queries render
// them.
type QueryProgress struct {
	ID          string        `json:"id"`
	SQL         string        `json:"sql"`
	Fingerprint string        `json:"fingerprint"`
	Priority    string        `json:"priority"`
	State       string        `json:"state"` // "queued" | "running"
	Started     time.Time     `json:"started"`
	QueueWait   time.Duration `json:"queueWait"`

	TasksPlanned    int `json:"tasksPlanned"`
	TasksDispatched int `json:"tasksDispatched"`
	TasksDone       int `json:"tasksDone"`
	TasksRetried    int `json:"tasksRetried"`
	TasksHedged     int `json:"tasksHedged"`
	TasksFailed     int `json:"tasksFailed"`
	TasksReused     int `json:"tasksReused"`

	// Rows counts result rows merged at the master so far.
	Rows int64 `json:"rows"`
}

// progressHandle mutates one query's live entry. A nil handle is a no-op,
// so the master's hot path never branches on whether progress tracking is
// wired.
type progressHandle struct {
	reg *ProgressRegistry
	id  string
}

// update applies fn to the entry under the registry lock.
func (h *progressHandle) update(fn func(*QueryProgress)) {
	if h == nil || h.reg == nil {
		return
	}
	h.reg.mu.Lock()
	if p, ok := h.reg.active[h.id]; ok {
		fn(p)
	}
	h.reg.mu.Unlock()
}

// ProgressRegistry tracks every query between admission and completion.
// The zero value is unusable; a nil registry is a valid no-op.
type ProgressRegistry struct {
	mu     sync.Mutex
	active map[string]*QueryProgress
}

// NewProgressRegistry builds an empty registry.
func NewProgressRegistry() *ProgressRegistry {
	return &ProgressRegistry{active: make(map[string]*QueryProgress)}
}

// Begin registers an in-flight query and returns its mutation handle.
func (r *ProgressRegistry) Begin(p QueryProgress) *progressHandle {
	if r == nil {
		return nil
	}
	if p.Started.IsZero() {
		p.Started = time.Now()
	}
	r.mu.Lock()
	cp := p
	r.active[p.ID] = &cp
	r.mu.Unlock()
	return &progressHandle{reg: r, id: p.ID}
}

// End removes a finished query.
func (r *ProgressRegistry) End(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.active, id)
	r.mu.Unlock()
}

// Active snapshots the in-flight queries, oldest query ID first.
func (r *ProgressRegistry) Active() []QueryProgress {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]QueryProgress, 0, len(r.active))
	for _, p := range r.active {
		out = append(out, *p)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RenderProgress formats active queries as the `\watch` / /debug/queries
// table.
func RenderProgress(active []QueryProgress) string {
	if len(active) == 0 {
		return "no active queries\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-7s %-6s %5s %5s %5s %5s %5s %8s  %s\n",
		"ID", "STATE", "CLASS", "PLAN", "DISP", "DONE", "RETRY", "HEDGE", "ROWS", "SQL")
	for _, p := range active {
		sql := p.SQL
		if len(sql) > 48 {
			sql = sql[:45] + "..."
		}
		fmt.Fprintf(&sb, "%-8s %-7s %-6s %5d %5d %5d %5d %5d %8d  %s\n",
			p.ID, p.State, p.Priority,
			p.TasksPlanned, p.TasksDispatched, p.TasksDone, p.TasksRetried, p.TasksHedged,
			p.Rows, sql)
	}
	return sb.String()
}
