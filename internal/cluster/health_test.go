package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
)

// TestHealthTransitions: with an injected clock, a worker moves
// alive → degraded → dead as its last heartbeat ages past half the liveness
// window and then past the whole window, and its load gauges are marked
// stale (last-known) rather than presented as live once it leaves the
// alive state.
func TestHealthTransitions(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewClusterManager(10 * time.Second)
	m.Now = func() time.Time { return now }

	m.HeartbeatLoad("leaf0", KindLeaf, LoadSnapshot{ActiveTasks: 3, IndexBytes: 4096, CacheHits: 7, CacheMisses: 3})
	m.HeartbeatLoad("stem0", KindStem, LoadSnapshot{ActiveTasks: 1, QueueDepth: 2})

	h := m.Health()
	if h.Alive != 2 || h.Degraded != 0 || h.Dead != 0 {
		t.Fatalf("fresh cluster: %+v", h)
	}
	if !h.Healthy() {
		t.Error("fresh cluster should be Healthy")
	}
	if h.Nodes[0].Name != "leaf0" || h.Nodes[1].Name != "stem0" {
		t.Fatalf("nodes not sorted by name: %+v", h.Nodes)
	}
	if h.Nodes[0].Stale {
		t.Error("fresh node must not be stale")
	}
	if got := h.Nodes[0].Load.CacheHitRatio(); got != 0.7 {
		t.Errorf("CacheHitRatio = %v, want 0.7", got)
	}

	// stem0 keeps beating; leaf0 goes silent.
	now = now.Add(6 * time.Second) // leaf0 age 6s > window/2 = 5s
	m.HeartbeatLoad("stem0", KindStem, LoadSnapshot{ActiveTasks: 0})
	h = m.Health()
	if h.Alive != 1 || h.Degraded != 1 || h.Dead != 0 {
		t.Fatalf("after %v: alive=%d degraded=%d dead=%d", 6*time.Second, h.Alive, h.Degraded, h.Dead)
	}
	leaf := h.Nodes[0]
	if leaf.State != StateDegraded || !leaf.Stale {
		t.Errorf("leaf0 = state %v stale %v, want degraded+stale", leaf.State, leaf.Stale)
	}
	// Degraded gauges are last-known, not zeroed.
	if leaf.Load.ActiveTasks != 3 || leaf.Load.IndexBytes != 4096 {
		t.Errorf("degraded load should hold last snapshot: %+v", leaf.Load)
	}
	if h.Healthy() {
		t.Error("degraded cluster must not be Healthy")
	}

	now = now.Add(5 * time.Second) // leaf0 age 11s > window
	h = m.Health()
	leaf = h.Nodes[0]
	if leaf.State != StateDead || !leaf.Stale {
		t.Errorf("leaf0 = state %v stale %v, want dead+stale", leaf.State, leaf.Stale)
	}
	if h.Dead != 1 {
		t.Errorf("Dead = %d", h.Dead)
	}
	if m.Alive("leaf0") {
		t.Error("Alive must agree with Health: leaf0 is dead")
	}

	// A new beat resurrects it.
	m.HeartbeatLoad("leaf0", KindLeaf, LoadSnapshot{ActiveTasks: 1})
	h = m.Health()
	if h.Nodes[0].State != StateAlive || h.Nodes[0].Stale {
		t.Errorf("after resurrection: %+v", h.Nodes[0])
	}
}

// TestHealthLegacyHeartbeat: the active-tasks-only Heartbeat entry point
// still feeds the health view.
func TestHealthLegacyHeartbeat(t *testing.T) {
	m := NewClusterManager(time.Minute)
	m.Heartbeat("leaf0", KindLeaf, 5)
	h := m.Health()
	if len(h.Nodes) != 1 || h.Nodes[0].Load.ActiveTasks != 5 {
		t.Fatalf("Health = %+v", h)
	}
}

// TestHealthRender smoke-checks the \top table: every node appears with
// its state, and stale nodes are flagged.
func TestHealthRender(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewClusterManager(10 * time.Second)
	m.Now = func() time.Time { return now }
	m.HeartbeatLoad("leaf0", KindLeaf, LoadSnapshot{ActiveTasks: 2, CacheHits: 1, CacheMisses: 1})
	now = now.Add(20 * time.Second)
	m.HeartbeatLoad("leaf1", KindLeaf, LoadSnapshot{})
	out := m.Health().Render()
	if !strings.Contains(out, "leaf0") || !strings.Contains(out, "leaf1") {
		t.Fatalf("Render missing nodes:\n%s", out)
	}
	if !strings.Contains(out, "dead*") {
		t.Errorf("dead node should be flagged stale:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Errorf("hit ratio missing:\n%s", out)
	}
}

// TestLeafLoadSnapshot: a leaf wired with a SmartIndex and an SSD cache
// reports their gauges through the reporter interfaces, and heartbeats
// deliver them into the master's health view end to end.
func TestLeafLoadSnapshot(t *testing.T) {
	tc := newTestCluster(t, 2, 0, 4, func(cfg *MasterConfig) {
		cfg.LivenessWindow = time.Minute
	})
	// Re-wrap leaf0's reader with a cache and give its index a budget so
	// the gauges are non-trivial.
	leaf := tc.leaves[0]
	cached := cache.NewReader(leaf.Reader, cache.Options{CapacityBytes: 1 << 20, Prefixes: []string{"/"}})
	leaf.Reader = cached
	leaf.Index = core.New(core.Options{MemoryBudget: 1 << 16})

	if _, _, err := tc.master.Submit(context.Background(), "SELECT COUNT(*) FROM logs WHERE v = 3", QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	snap := leaf.LoadSnapshot()
	if snap.TasksDone == 0 {
		t.Error("TasksDone = 0 after a query")
	}
	if snap.IndexBudget != 1<<16 {
		t.Errorf("IndexBudget = %d", snap.IndexBudget)
	}
	if snap.IndexEntries == 0 || snap.IndexBytes == 0 {
		t.Errorf("index gauges empty after a filtered scan: %+v", snap)
	}
	if snap.CacheCapacity != 1<<20 {
		t.Errorf("CacheCapacity = %d", snap.CacheCapacity)
	}
	if snap.CacheHits+snap.CacheMisses == 0 {
		t.Errorf("cache saw no traffic: %+v", snap)
	}

	// The heartbeat carries the snapshot to the master.
	if err := leaf.HeartbeatOnce(context.Background(), "master"); err != nil {
		t.Fatal(err)
	}
	h := tc.master.Manager.Health()
	var got *NodeHealth
	for i := range h.Nodes {
		if h.Nodes[i].Name == leaf.Name {
			got = &h.Nodes[i]
		}
	}
	if got == nil {
		t.Fatalf("leaf %s missing from health view: %+v", leaf.Name, h.Nodes)
	}
	if got.Load.IndexEntries != snap.IndexEntries || got.Load.CacheMisses != snap.CacheMisses {
		t.Errorf("health view load %+v != leaf snapshot %+v", got.Load, snap)
	}
}

// TestHealthConcurrent hammers heartbeats and health reads from many
// goroutines; run under -race this is the data-race check for the
// heartbeat-carried load path.
func TestHealthConcurrent(t *testing.T) {
	m := NewClusterManager(time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := []string{"leaf0", "leaf1", "stem0", "stem1"}[i]
			kind := KindLeaf
			if i >= 2 {
				kind = KindStem
			}
			for j := 0; j < 500; j++ {
				m.HeartbeatLoad(name, kind, LoadSnapshot{ActiveTasks: j, IndexBytes: int64(j)})
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h := m.Health()
				_ = h.Render()
				_ = h.Healthy()
			}
		}()
	}
	wg.Wait()
	if h := m.Health(); len(h.Nodes) != 4 {
		t.Errorf("nodes = %d, want 4", len(h.Nodes))
	}
}
