package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestAdmissionNilControllerAdmitsImmediately(t *testing.T) {
	var a *AdmissionController
	release, wait, err := a.Admit(context.Background(), PriorityBatch, 0)
	if err != nil || wait != 0 {
		t.Fatalf("nil controller: wait=%v err=%v", wait, err)
	}
	release() // must not panic
	if a.Running() != 0 || a.QueueDepth(PriorityBatch) != 0 {
		t.Error("nil controller reports nonzero state")
	}
	if s := a.Snapshot(); s.Enabled {
		t.Error("nil controller snapshot should be disabled")
	}
	if NewAdmissionController(AdmissionConfig{MaxConcurrent: 0}) != nil {
		t.Error("MaxConcurrent=0 should disable admission")
	}
}

func TestAdmissionImmediateWhenSlotsFree(t *testing.T) {
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 2})
	r1, w1, err := a.Admit(context.Background(), PriorityInteractive, 0)
	if err != nil || w1 != 0 {
		t.Fatalf("first admit: wait=%v err=%v", w1, err)
	}
	r2, _, err := a.Admit(context.Background(), PriorityBatch, 0)
	if err != nil {
		t.Fatalf("second admit: %v", err)
	}
	if got := a.Running(); got != 2 {
		t.Errorf("running = %d, want 2", got)
	}
	r1()
	r1() // release is idempotent
	r2()
	if got := a.Running(); got != 0 {
		t.Errorf("running after release = %d, want 0", got)
	}
}

func TestAdmissionQueueFullShedsTyped(t *testing.T) {
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 1, MaxQueueDepth: 1})
	release, _, err := a.Admit(context.Background(), PriorityInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// One waiter fills the queue.
	queued := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(queued)
		_, _, _ = a.Admit(ctx, PriorityInteractive, 0)
	}()
	<-queued
	waitFor(t, func() bool { return a.QueueDepth(PriorityInteractive) == 1 })

	_, _, err = a.Admit(context.Background(), PriorityInteractive, 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full error = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("error %T is not *OverloadedError", err)
	}
	if oe.Deadline || oe.QueueDepth != 1 || oe.RetryAfter <= 0 || oe.Class != PriorityInteractive {
		t.Errorf("shed detail = %+v", oe)
	}
	if !strings.Contains(oe.Error(), "retry after") {
		t.Errorf("error text lacks retry hint: %s", oe.Error())
	}
	// The batch class's queue is independent: it still accepts a waiter.
	cancel()
	wg.Wait()
	if got := a.Snapshot().Shed[PriorityInteractive]; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

func TestAdmissionQueueDeadlineSheds(t *testing.T) {
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 1, MaxQueueDepth: 4})
	release, _, err := a.Admit(context.Background(), PriorityInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, _, err = a.Admit(context.Background(), PriorityBatch, time.Millisecond)
	var oe *OverloadedError
	if !errors.As(err, &oe) || !oe.Deadline {
		t.Fatalf("deadline shed = %v, want *OverloadedError{Deadline:true}", err)
	}
	if a.QueueDepth(PriorityBatch) != 0 {
		t.Error("deadline-shed waiter should leave the queue")
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 1})
	release, _, err := a.Admit(context.Background(), PriorityInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Admit(ctx, PriorityInteractive, 0)
		done <- err
	}()
	waitFor(t, func() bool { return a.QueueDepth(PriorityInteractive) == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v", err)
	}
	release()
	// The slot is free again: the next admit is immediate.
	r2, wait, err := a.Admit(context.Background(), PriorityBatch, 0)
	if err != nil || wait != 0 {
		t.Fatalf("post-cancel admit: wait=%v err=%v", wait, err)
	}
	r2()
}

// TestAdmissionWeightedFairDequeue backs 10 interactive and 10 batch
// waiters onto a single slot and replays the grant order: smooth weighted
// round-robin at 4:1 must serve interactive ~4x as often while never
// starving batch (every window of 5 grants contains a batch grant).
func TestAdmissionWeightedFairDequeue(t *testing.T) {
	const perClass = 10
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 1, MaxQueueDepth: perClass})
	release, _, err := a.Admit(context.Background(), PriorityInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan Priority, 2*perClass)
	var wg sync.WaitGroup
	for _, pri := range []Priority{PriorityInteractive, PriorityBatch} {
		for i := 0; i < perClass; i++ {
			wg.Add(1)
			go func(pri Priority) {
				defer wg.Done()
				rel, _, err := a.Admit(context.Background(), pri, 0)
				if err != nil {
					t.Errorf("admit %s: %v", pri, err)
					return
				}
				order <- pri
				rel() // cascade: grant the next waiter
			}(pri)
		}
	}
	waitFor(t, func() bool {
		return a.QueueDepth(PriorityInteractive) == perClass && a.QueueDepth(PriorityBatch) == perClass
	})
	release() // open the floodgate
	wg.Wait()
	close(order)

	var seq []Priority
	for p := range order {
		seq = append(seq, p)
	}
	if len(seq) != 2*perClass {
		t.Fatalf("granted %d, want %d", len(seq), 2*perClass)
	}
	// No starvation: while both classes are backlogged, batch is served at
	// least once per 5 grants (the WRR round length at weights 4:1).
	for start := 0; start+5 <= perClass; start++ {
		hasBatch := false
		for _, p := range seq[start : start+5] {
			if p == PriorityBatch {
				hasBatch = true
			}
		}
		if !hasBatch {
			t.Fatalf("batch starved in grant window %d..%d: %v", start, start+5, seq[:start+5])
		}
	}
	// Interactive dominates early (weight 4 vs 1) while both are backlogged.
	interactiveEarly := 0
	for _, p := range seq[:10] {
		if p == PriorityInteractive {
			interactiveEarly++
		}
	}
	if interactiveEarly < 6 {
		t.Errorf("interactive got %d of the first 10 grants, want >= 6 (weights 4:1)", interactiveEarly)
	}
}

func TestAdmissionInjectedClockAndRetryAfter(t *testing.T) {
	now := time.Unix(1_480_000_000, 0)
	var mu sync.Mutex
	fake := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Millisecond)
		return now
	}
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 1})
	a.SetNow(fake)
	r1, _, err := a.Admit(context.Background(), PriorityInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan time.Duration, 1)
	go func() {
		rel, wait, err := a.Admit(context.Background(), PriorityInteractive, 0)
		if err != nil {
			t.Errorf("queued admit: %v", err)
			done <- 0
			return
		}
		rel()
		done <- wait
	}()
	waitFor(t, func() bool { return a.QueueDepth(PriorityInteractive) == 1 })
	r1()
	wait := <-done
	// Wait measured on the fake clock: a whole number of its 1ms ticks.
	if wait <= 0 || wait%time.Millisecond != 0 {
		t.Errorf("queue wait %v not measured on the injected clock", wait)
	}
	// The service EWMA (fed by the fake clock) scales the retry hint.
	s := a.Snapshot()
	if s.RetryAfter < time.Millisecond {
		t.Errorf("retry-after hint %v below floor", s.RetryAfter)
	}
}

func TestAdmissionSnapshotRender(t *testing.T) {
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 2, MaxQueueDepth: 3})
	release, _, err := a.Admit(context.Background(), PriorityInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	s := a.Snapshot()
	if !s.Enabled || s.Running != 1 || s.MaxConcurrent != 2 || s.MaxQueueDepth != 3 {
		t.Errorf("snapshot = %+v", s)
	}
	text := s.Render()
	for _, want := range []string{"admission:", "1/2 running", "shed", "retry-after"} {
		if !strings.Contains(text, want) {
			t.Errorf("render lacks %q: %s", want, text)
		}
	}
	if (AdmissionSnapshot{}).Render() != "" {
		t.Error("disabled snapshot should render empty")
	}
}

// TestMasterAdmissionMetricsAndHealth submits through an admission-enabled
// master with a metrics registry attached and checks the full surface: the
// admission metric families exist, the queue-wait histogram observes, and
// Health folds the admission snapshot into the cluster view.
func TestMasterAdmissionMetricsAndHealth(t *testing.T) {
	reg := metrics.NewRegistry()
	tc := newTestCluster(t, 2, 0, 2, func(cfg *MasterConfig) {
		cfg.MaxConcurrentQueries = 2
		cfg.Metrics = reg
	})
	res, stats := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{Priority: PriorityBatch})
	if res.Rows[0][0].I != 200 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if stats.Priority != PriorityBatch {
		t.Errorf("stats priority = %v", stats.Priority)
	}

	h := tc.master.Health()
	if !h.Admission.Enabled || h.Admission.Admitted[PriorityBatch] != 1 {
		t.Errorf("health admission snapshot = %+v", h.Admission)
	}
	if !strings.Contains(h.Render(), "admission:") {
		t.Errorf("health render lacks the admission line:\n%s", h.Render())
	}

	want := map[string]bool{
		"feisu_admission_wait_seconds":   false,
		"feisu_admission_admitted_total": false,
		"feisu_admission_shed_total":     false,
		"feisu_admission_queue_depth":    false,
		"feisu_admission_running":        false,
	}
	for _, f := range reg.Families() {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
		if f.Name == "feisu_admission_admitted_total" {
			var total float64
			for _, s := range f.Samples {
				total += s.Value
			}
			if total != 1 {
				t.Errorf("admitted_total = %v, want 1", total)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric family %s not exported", name)
		}
	}
}

func TestPriorityString(t *testing.T) {
	if PriorityInteractive.String() != "interactive" || PriorityBatch.String() != "batch" {
		t.Errorf("class names = %q, %q", PriorityInteractive, PriorityBatch)
	}
	if s := Priority(9).String(); s == "" {
		t.Error("unknown priority should still render")
	}
}

// waitFor polls a monotone condition with a bounded deadline — the only
// form of waiting these tests do (no sleeps standing in for synchronization).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// Cold start: before any query has completed, serviceEWMA is zero. Both shed
// paths must still emit a positive retry-after hint (regression: a zero hint
// sent clients into an immediate-retry stampede against a full queue).
func TestAdmissionColdStartQueueFullRetryAfter(t *testing.T) {
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 1, MaxQueueDepth: 1})
	_, _, err := a.Admit(context.Background(), PriorityInteractive, 0)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	// No release has happened, so the EWMA has never been fed.

	queued := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(queued)
		_, _, _ = a.Admit(ctx, PriorityInteractive, 0)
	}()
	<-queued
	waitFor(t, func() bool { return a.QueueDepth(PriorityInteractive) == 1 })

	_, _, err = a.Admit(context.Background(), PriorityInteractive, 0)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("queue-full error = %v, want *OverloadedError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("cold-start queue-full RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	// depth=1 ahead plus the new arrival, one slot: 2 x the cold estimate.
	if want := 2 * coldStartServiceEstimate; oe.RetryAfter != want {
		t.Errorf("cold-start queue-full RetryAfter = %v, want %v", oe.RetryAfter, want)
	}
	cancel()
	wg.Wait()
}

func TestAdmissionColdStartDeadlineShedRetryAfter(t *testing.T) {
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 1, MaxQueueDepth: 4})
	_, _, err := a.Admit(context.Background(), PriorityInteractive, 0)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	_, _, err = a.Admit(context.Background(), PriorityInteractive, 2*time.Millisecond)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("deadline shed error = %v, want *OverloadedError", err)
	}
	if !oe.Deadline {
		t.Errorf("shed should be marked Deadline: %+v", oe)
	}
	if oe.RetryAfter < minRetryAfter {
		t.Errorf("cold-start deadline RetryAfter = %v, want >= %v", oe.RetryAfter, minRetryAfter)
	}
}

// The hint floor holds even when the scaled estimate rounds to zero
// (tiny EWMA, huge concurrency).
func TestAdmissionRetryAfterFloor(t *testing.T) {
	a := NewAdmissionController(AdmissionConfig{MaxConcurrent: 1 << 20, MaxQueueDepth: 1})
	a.mu.Lock()
	a.serviceEWMA = float64(time.Microsecond)
	hint := a.retryAfterLocked(0)
	a.mu.Unlock()
	if hint != minRetryAfter {
		t.Errorf("floored hint = %v, want %v", hint, minRetryAfter)
	}
}
