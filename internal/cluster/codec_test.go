package cluster

// Payload round-trip conformance: every registered cluster RPC payload type
// must survive the wire codec with its content intact. Samples are built
// reflectively with every exported field populated, so a field that gob
// silently drops (unexported, unsupported) fails the DeepEqual — before it
// becomes a live wire bug. The walk also rejects unexported fields outright
// unless the type provides its own GobEncoder.

import (
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/transport"
	"repro/internal/types"
)

var gobEncoderT = reflect.TypeOf((*gob.GobEncoder)(nil)).Elem()

// fillValue populates v with deterministic non-zero data. Interface fields
// are always given a leaf value regardless of depth — a nil interface
// element inside a slice is not encodable. onPath tracks struct types on
// the current fill path: the plan graph is recursive by TYPE (a shuffle
// plan's map sub-plans are plans), so a pointer re-entering a type already
// being filled stays nil, exactly as real plans terminate.
func fillValue(t *testing.T, v reflect.Value, seed *int, depth int, onPath map[reflect.Type]bool) {
	t.Helper()
	*seed++
	n := *seed
	if v.Kind() == reflect.Interface {
		if v.Type() == reflect.TypeOf((*sqlparser.Expr)(nil)).Elem() {
			v.Set(reflect.ValueOf(sampleExpr(n)))
			return
		}
		t.Fatalf("no sample for interface field type %v — teach the conformance filler about it", v.Type())
	}
	// With type re-entry cut at pointers, the fill terminates; the cap only
	// guards against an unbounded shape sneaking in. Bailing mid-graph
	// would leave nil slice elements, which gob refuses, so it is fatal.
	if depth > 64 {
		t.Fatalf("fill depth exceeded at %v — unbounded payload type?", v.Type())
	}
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(n))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(n % 200))
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(n) + 0.5)
	case reflect.String:
		v.SetString(fmt.Sprintf("s%d", n))
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < 2; i++ {
			fillValue(t, s.Index(i), seed, depth+1, onPath)
		}
		v.Set(s)
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		for i := 0; i < 2; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			fillValue(t, k, seed, depth+1, onPath)
			mv := reflect.New(v.Type().Elem()).Elem()
			fillValue(t, mv, seed, depth+1, onPath)
			m.SetMapIndex(k, mv)
		}
		v.Set(m)
	case reflect.Ptr:
		if onPath[v.Type().Elem()] {
			return // recursive type: terminate like a real value does
		}
		p := reflect.New(v.Type().Elem())
		fillValue(t, p.Elem(), seed, depth+1, onPath)
		v.Set(p)
	case reflect.Struct:
		fillStruct(t, v, seed, depth, onPath)
	default:
		t.Fatalf("unsupported kind %v (%v)", v.Kind(), v.Type())
	}
}

func fillStruct(t *testing.T, v reflect.Value, seed *int, depth int, onPath map[reflect.Type]bool) {
	t.Helper()
	onPath[v.Type()] = true
	defer delete(onPath, v.Type())
	// Types with custom gob encoding build their sample through their own
	// constructor so derived unexported state is consistent.
	switch v.Type() {
	case reflect.TypeOf(types.Schema{}):
		v.Set(reflect.ValueOf(*types.MustSchema(
			types.Field{Name: fmt.Sprintf("a%d", *seed), Type: types.Int64},
			types.Field{Name: fmt.Sprintf("b%d", *seed), Type: types.String, Repeated: true},
		)))
		return
	}
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		if !f.IsExported() {
			if v.Addr().Type().Implements(gobEncoderT) || v.Type().Implements(gobEncoderT) {
				continue
			}
			t.Fatalf("%v has unexported field %q and no GobEncoder: it would be silently dropped on the wire", v.Type(), f.Name)
		}
		fillValue(t, v.Field(i), seed, depth+1, onPath)
	}
}

// sampleExpr returns a small expression tree covering several node kinds.
func sampleExpr(n int) sqlparser.Expr {
	switch n % 4 {
	case 0:
		return &sqlparser.Literal{Value: types.Value{T: types.Int64, I: int64(n)}}
	case 1:
		return &sqlparser.ColumnRef{Parts: []string{"t", "c"}, Table: "t", Column: fmt.Sprintf("c%d", n)}
	case 2:
		return &sqlparser.BinaryExpr{
			Op: sqlparser.OpGt,
			L:  &sqlparser.ColumnRef{Parts: []string{"c"}, Column: fmt.Sprintf("c%d", n)},
			R:  &sqlparser.Literal{Value: types.Value{T: types.Float64, F: float64(n)}},
		}
	default:
		return &sqlparser.NotExpr{X: &sqlparser.IsNullExpr{X: &sqlparser.ColumnRef{Parts: []string{"x"}, Column: "x"}}}
	}
}

// deepDiff locates the first differing path between two equal-typed values,
// for actionable failure messages.
func deepDiff(path string, a, b reflect.Value) string {
	if a.Kind() != b.Kind() {
		return fmt.Sprintf("%s: kind %v vs %v", path, a.Kind(), b.Kind())
	}
	switch a.Kind() {
	case reflect.Ptr, reflect.Interface:
		if a.IsNil() != b.IsNil() {
			return fmt.Sprintf("%s: nil %v vs %v", path, a.IsNil(), b.IsNil())
		}
		if a.IsNil() {
			return ""
		}
		return deepDiff(path, a.Elem(), b.Elem())
	case reflect.Struct:
		if !a.CanAddr() {
			aa := reflect.New(a.Type()).Elem()
			aa.Set(a)
			a = aa
		}
		if !b.CanAddr() {
			bb := reflect.New(b.Type()).Elem()
			bb.Set(b)
			b = bb
		}
		for i := 0; i < a.NumField(); i++ {
			f := a.Type().Field(i)
			fa, fb := a.Field(i), b.Field(i)
			if !f.IsExported() {
				fa = reflect.NewAt(fa.Type(), fa.Addr().UnsafePointer()).Elem()
				fb = reflect.NewAt(fb.Type(), fb.Addr().UnsafePointer()).Elem()
			}
			if d := deepDiff(path+"."+f.Name, fa, fb); d != "" {
				return d
			}
		}
		return ""
	case reflect.Slice, reflect.Array:
		if a.Kind() == reflect.Slice && a.IsNil() != b.IsNil() {
			return fmt.Sprintf("%s: nil slice %v vs %v", path, a.IsNil(), b.IsNil())
		}
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s: len %d vs %d", path, a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if d := deepDiff(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i)); d != "" {
				return d
			}
		}
		return ""
	case reflect.Map:
		if a.IsNil() != b.IsNil() {
			return fmt.Sprintf("%s: nil map %v vs %v", path, a.IsNil(), b.IsNil())
		}
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s: map len %d vs %d", path, a.Len(), b.Len())
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() {
				return fmt.Sprintf("%s[%v]: missing in decoded copy", path, k)
			}
			if d := deepDiff(fmt.Sprintf("%s[%v]", path, k), a.MapIndex(k), bv); d != "" {
				return d
			}
		}
		return ""
	default:
		if !reflect.DeepEqual(a.Interface(), b.Interface()) {
			return fmt.Sprintf("%s: %v vs %v", path, a.Interface(), b.Interface())
		}
		return ""
	}
}

// TestPayloadRoundTripConformance walks every payload type registered with
// the wire codec, builds a fully-populated sample, and checks the decoded
// value is identical.
func TestPayloadRoundTripConformance(t *testing.T) {
	reg := transport.RegisteredPayloads()
	if len(reg) < 17 {
		t.Fatalf("only %d payload types registered; expected the full cluster RPC surface", len(reg))
	}
	for _, typ := range reg {
		t.Run(typ.String(), func(t *testing.T) {
			seed := 0
			sample := reflect.New(typ).Elem()
			fillValue(t, sample, &seed, 0, map[reflect.Type]bool{})
			in := sample.Interface()
			b, err := transport.EncodePayload(in)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			out, err := transport.DecodePayload(b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if reflect.TypeOf(out) != typ {
				t.Fatalf("decoded type %T, want %v", out, typ)
			}
			if !reflect.DeepEqual(in, out) {
				t.Errorf("round trip changed the payload at %s", deepDiff("", reflect.ValueOf(in), reflect.ValueOf(out)))
			}
		})
	}
}

// A stem job's tasks all point at the job's plan; the wire form must ship
// the plan once and relink the pointers on decode (gob alone would ship one
// copy per task — including the broadcast dimension data).
func TestStemJobPlanAliasingOverWire(t *testing.T) {
	p := &plan.PhysicalPlan{SQL: "SELECT 1", Fingerprint: "fp"}
	job := stemJobMsg{
		Plan: p,
		Tasks: []plan.TaskSpec{
			{Plan: p, Ordinal: 0},
			{Plan: p, Ordinal: 1},
			{Plan: p, Ordinal: 2},
		},
		QueryID:     "q1",
		TaskTimeout: 3 * time.Second,
	}
	b, err := transport.EncodePayload(job)
	if err != nil {
		t.Fatal(err)
	}
	out, err := transport.DecodePayload(b)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(stemJobMsg)
	if got.Plan == nil || got.Plan.SQL != "SELECT 1" {
		t.Fatalf("plan lost: %+v", got.Plan)
	}
	for i, task := range got.Tasks {
		if task.Plan != got.Plan {
			t.Errorf("task %d plan not relinked to the shared plan", i)
		}
	}
	if got.TaskTimeout != 3*time.Second || got.QueryID != "q1" {
		t.Errorf("scalar fields lost: %+v", got)
	}

	// The wire size must not grow linearly in the plan: ~constant plan
	// bytes regardless of task count.
	big := job
	big.Tasks = make([]plan.TaskSpec, 24)
	for i := range big.Tasks {
		big.Tasks[i] = plan.TaskSpec{Plan: p, Ordinal: i}
	}
	bb, err := transport.EncodePayload(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb) > len(b)*12 {
		t.Errorf("24-task job encodes to %d bytes vs %d for 3 tasks — plan is being duplicated per task", len(bb), len(b))
	}
}
