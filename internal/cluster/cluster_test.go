package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// testCluster wires a miniature Feisu deployment: a master, optional stems,
// and leaves co-located with a simulated HDFS holding the "logs" table.
type testCluster struct {
	t      *testing.T
	fabric *transport.Fabric
	router *storage.Router
	hdfs   *storage.DFS
	master *Master
	leaves []*LeafServer
	stems  []*StemServer
}

const testRowsPerPartition = 100

// newTestCluster builds nLeaves leaves and nStems stems, with the logs
// table split into nParts partitions on the simulated HDFS.
func newTestCluster(t *testing.T, nLeaves, nStems, nParts int, cfgMut func(*MasterConfig)) *testCluster {
	t.Helper()
	model := sim.DefaultCostModel()
	topo := transport.NewTopology()
	fabric := transport.NewFabric(topo, transport.Options{Model: model})

	hdfs := storage.NewHDFS("hdfs", model)
	router := storage.NewRouter(storage.NewMemFS("", model))
	router.Register(hdfs)

	tc := &testCluster{t: t, fabric: fabric, router: router, hdfs: hdfs}

	for i := 0; i < nLeaves; i++ {
		name := fmt.Sprintf("leaf%d", i)
		rack := fmt.Sprintf("r%d", i/2)
		topo.Place(name, rack, "dc1")
		hdfs.AddNode(name, rack)
	}
	topo.Place("master", "r-master", "dc1")

	// Table: id BIGINT, v BIGINT (=id%10), s STRING.
	schema := types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "v", Type: types.Int64},
		types.Field{Name: "s", Type: types.String},
	)
	meta := &plan.TableMeta{Name: "logs", Schema: schema}
	ctx := context.Background()
	for p := 0; p < nParts; p++ {
		w := colstore.NewWriter(schema, 32)
		for r := 0; r < testRowsPerPartition; r++ {
			id := int64(p*testRowsPerPartition + r)
			if err := w.Append(types.Row{
				types.NewInt(id), types.NewInt(id % 10), types.NewString(fmt.Sprintf("row-%d", id)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		path := fmt.Sprintf("/hdfs/logs/p%d", p)
		if err := router.WriteFile(ctx, path, data); err != nil {
			t.Fatal(err)
		}
		meta.Partitions = append(meta.Partitions, plan.PartitionMeta{
			Path: path, Rows: testRowsPerPartition, Bytes: int64(len(data)),
		})
	}

	cfg := MasterConfig{
		Name:           "master",
		Fabric:         fabric,
		Router:         router,
		Model:          model,
		MaxTaskRetries: 3,
		LivenessWindow: time.Minute,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	tc.master = NewMaster(cfg)
	if err := tc.master.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < nLeaves; i++ {
		leaf := &LeafServer{
			Name:   fmt.Sprintf("leaf%d", i),
			Fabric: fabric,
			Reader: exec.NewStoreReader(router),
			Index:  core.New(core.Options{}),
			Router: router,
		}
		leaf.Register()
		tc.leaves = append(tc.leaves, leaf)
	}
	for i := 0; i < nStems; i++ {
		stem := &StemServer{Name: fmt.Sprintf("stem%d", i), Fabric: fabric, Router: router, Model: model}
		stem.Register()
		tc.stems = append(tc.stems, stem)
	}
	tc.beat()
	return tc
}

// beat delivers one heartbeat from every worker.
func (tc *testCluster) beat() {
	ctx := context.Background()
	for _, l := range tc.leaves {
		if err := l.HeartbeatOnce(ctx, "master"); err != nil {
			tc.t.Fatal(err)
		}
	}
	for _, s := range tc.stems {
		if err := s.HeartbeatOnce(ctx, "master"); err != nil {
			tc.t.Fatal(err)
		}
	}
}

func (tc *testCluster) query(sql string, opts QueryOptions) (*exec.Result, *QueryStats) {
	tc.t.Helper()
	res, stats, err := tc.master.Submit(context.Background(), sql, opts)
	if err != nil {
		tc.t.Fatalf("Submit(%q): %v", sql, err)
	}
	return res, stats
}

func TestEndToEndCountWithStems(t *testing.T) {
	tc := newTestCluster(t, 4, 2, 4, nil)
	res, stats := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{})
	if res.Rows[0][0].I != 400 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if stats.Tasks != 4 || stats.TasksFailed != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.SimTime <= 0 {
		t.Error("sim time should be positive")
	}
}

func TestEndToEndWithoutStems(t *testing.T) {
	tc := newTestCluster(t, 3, 0, 3, nil)
	res, _ := tc.query("SELECT COUNT(*) FROM logs WHERE v < 5", QueryOptions{})
	if res.Rows[0][0].I != 150 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestEndToEndGroupBy(t *testing.T) {
	tc := newTestCluster(t, 4, 2, 4, nil)
	res, _ := tc.query("SELECT v, COUNT(*) AS n FROM logs GROUP BY v ORDER BY v", QueryOptions{})
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].I != int64(i) || row[1].I != 40 {
			t.Errorf("group %d = %+v", i, row)
		}
	}
}

func TestEndToEndSelectRows(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 2, nil)
	res, _ := tc.query("SELECT id, s FROM logs WHERE id >= 195 ORDER BY id LIMIT 3", QueryOptions{})
	if len(res.Rows) != 3 || res.Rows[0][0].I != 195 || res.Rows[0][1].S != "row-195" {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestSmartIndexWarmsAcrossQueries(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 2, nil)
	_, first := tc.query("SELECT COUNT(*) FROM logs WHERE v > 3", QueryOptions{})
	if first.Scan.IndexMisses == 0 {
		t.Fatalf("first run should miss: %+v", first.Scan)
	}
	_, second := tc.query("SELECT COUNT(*) FROM logs WHERE v > 3", QueryOptions{})
	if second.Scan.IndexHits == 0 || second.Scan.ColumnReads != 0 {
		t.Errorf("second run should be index-served: %+v", second.Scan)
	}
	if second.SimTime >= first.SimTime {
		t.Errorf("warm query should be faster: %v vs %v", second.SimTime, first.SimTime)
	}
}

func TestSchedulerPrefersDataHolders(t *testing.T) {
	tc := newTestCluster(t, 4, 0, 4, nil)
	for _, task := range mustTasks(t, tc, "SELECT COUNT(*) FROM logs") {
		leaf, err := tc.master.Scheduler.Place(task, nil)
		if err != nil {
			t.Fatal(err)
		}
		holders := tc.router.Locations(task.Partition.Path)
		if !contains(holders, leaf) {
			t.Errorf("task %s placed on %s, holders %v", task.Partition.Path, leaf, holders)
		}
	}
}

func mustTasks(t *testing.T, tc *testCluster, sql string) []plan.TaskSpec {
	t.Helper()
	stmt, err := parseSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Plan(stmt, tc.master.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	return p.Tasks()
}

func TestLeafFailureBackupTasks(t *testing.T) {
	tc := newTestCluster(t, 3, 1, 3, nil)
	// Kill one leaf after heartbeats: the fabric rejects calls to it, and
	// the master reissues its tasks on other leaves.
	tc.fabric.SetDown("leaf0", true)
	res, stats := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{})
	if res.Rows[0][0].I != 300 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if stats.BackupTasks == 0 {
		t.Errorf("expected backup tasks, stats = %+v", stats)
	}
}

func TestStragglerTimeoutBackup(t *testing.T) {
	tc := newTestCluster(t, 2, 0, 2, nil)
	tc.leaves[0].SetStall(300 * time.Millisecond) // straggler
	res, stats := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{TaskTimeout: 50 * time.Millisecond})
	if res.Rows[0][0].I != 200 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if stats.BackupTasks == 0 {
		t.Errorf("straggler should trigger a backup task: %+v", stats)
	}
}

func TestPartialResultUnderTimeLimit(t *testing.T) {
	tc := newTestCluster(t, 2, 0, 4, nil)
	// Both leaves are slow; per-task timeout + retries exhaust, but the
	// ratio option accepts whatever completed.
	tc.leaves[0].SetStall(250 * time.Millisecond)
	tc.leaves[1].SetStall(250 * time.Millisecond)
	res, stats, err := tc.master.Submit(context.Background(), "SELECT COUNT(*) FROM logs",
		QueryOptions{TimeLimit: 600 * time.Millisecond, MinProcessedRatio: 0.25})
	if err != nil {
		t.Fatalf("partial submit: %v", err)
	}
	if !res.Partial && stats.TasksFailed == 0 {
		t.Skip("machine fast enough that all tasks finished; nothing to assert")
	}
	if res.ProcessedRatio < 0.25 || res.ProcessedRatio >= 1 {
		t.Errorf("ratio = %v", res.ProcessedRatio)
	}
	if res.Rows[0][0].I >= 400 || res.Rows[0][0].I <= 0 {
		t.Errorf("partial count = %v", res.Rows[0][0])
	}
}

func TestDeadlineWithoutRatioFails(t *testing.T) {
	tc := newTestCluster(t, 1, 0, 2, nil)
	tc.leaves[0].SetStall(300 * time.Millisecond)
	_, _, err := tc.master.Submit(context.Background(), "SELECT COUNT(*) FROM logs",
		QueryOptions{TimeLimit: 60 * time.Millisecond})
	if err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestNoLeavesError(t *testing.T) {
	tc := newTestCluster(t, 1, 0, 1, nil)
	tc.master.Manager.Forget("leaf0")
	if _, _, err := tc.master.Submit(context.Background(), "SELECT COUNT(*) FROM logs", QueryOptions{}); err == nil {
		t.Fatal("no leaves should fail")
	}
}

// gatedReader blocks leaf task execution at the first storage read until the
// gate opens, giving tests a deterministic window in which a query's task
// futures are registered but not yet complete. Column calls pass through
// untouched (they only happen after Meta unblocks).
type gatedReader struct {
	exec.PartitionReader
	gate chan struct{}
}

func (g *gatedReader) Meta(ctx context.Context, path string) (*colstore.FileMeta, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.PartitionReader.Meta(ctx, path)
}

// TestResultReuseAcrossConcurrentQueries pins task-result sharing without
// timing assumptions: a gate on both leaves' storage readers holds the first
// query's two tasks in flight, monotone counters (InflightTasks, Reused)
// gate each phase, and only then does the gate open. Previously this test
// stalled the leaves 40ms and hoped the sharer queries arrived inside the
// window.
func TestResultReuseAcrossConcurrentQueries(t *testing.T) {
	tc := newTestCluster(t, 2, 0, 2, nil)
	gate := make(chan struct{})
	for _, l := range tc.leaves {
		l.Reader = &gatedReader{PartitionReader: l.Reader, gate: gate}
	}

	const q = "SELECT COUNT(*) FROM logs WHERE v = 7"
	const sharers = 3
	counts := make([]int64, 1+sharers)
	var wg sync.WaitGroup
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := tc.master.Submit(context.Background(), q, QueryOptions{})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			counts[i] = res.Rows[0][0].I
		}()
	}

	// Phase 1: the owner query claims its two task futures (registered
	// synchronously before dispatch) and its tasks block at the gate.
	submit(0)
	waitFor(t, func() bool { return tc.master.Jobs.InflightTasks() == 2 })

	// Phase 2: the sharers claim the same futures; every claim of an
	// in-flight key bumps Reused synchronously, so 3 sharers × 2 tasks = 6.
	for i := 1; i <= sharers; i++ {
		submit(i)
	}
	waitFor(t, func() bool { return tc.master.Jobs.Reused.Value() >= 2*sharers })

	// Phase 3: let the owner's tasks run; every query gets the shared result.
	close(gate)
	wg.Wait()
	for i, c := range counts {
		if c != 20 { // 10 matches per 100-row partition, 2 partitions
			t.Errorf("query %d count = %d", i, c)
		}
	}
	if got := tc.master.Jobs.Reused.Value(); got != 2*sharers {
		t.Errorf("reused = %d, want exactly %d (2 tasks x %d sharers)", got, 2*sharers, sharers)
	}
}

func TestDisableReuse(t *testing.T) {
	tc := newTestCluster(t, 2, 0, 2, nil)
	res, _ := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{DisableReuse: true})
	if res.Rows[0][0].I != 200 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if tc.master.Jobs.Reused.Value() != 0 {
		t.Error("reuse disabled but counter moved")
	}
}

func TestSpillPath(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 2, nil)
	for _, l := range tc.leaves {
		l.SpillThreshold = 64 // force spilling
		l.SpillPrefix = "/hdfs/feisu-tmp"
	}
	res, _ := tc.query("SELECT id FROM logs WHERE v = 3 ORDER BY id", QueryOptions{})
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if tc.fabric.Msgs[transport.Write].Value() == 0 {
		t.Error("spill should ride the write flow")
	}
	if err := checkSpillFiles(tc); err != nil {
		t.Error(err)
	}
}

func checkSpillFiles(tc *testCluster) error {
	files, err := tc.hdfs.List(context.Background(), "/feisu-tmp/")
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return errors.New("no spill files written")
	}
	return nil
}

func TestEntryGuardAuthFlow(t *testing.T) {
	authority := auth.NewAuthority()
	quotas := auth.NewQuotas(1, 0)
	tc := newTestCluster(t, 2, 0, 2, func(cfg *MasterConfig) {
		cfg.Authority = authority
		cfg.Quotas = quotas
		cfg.MaxQueryBytes = 200
	})
	token, err := authority.Register("li")
	if err != nil {
		t.Fatal(err)
	}
	authority.Grant("li", "hdfs")
	authority.MapDomain("li", "hdfs", "svc-li")

	res, _ := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{Token: token})
	if res.Rows[0][0].I != 200 {
		t.Errorf("count = %v", res.Rows[0][0])
	}

	// Bad token.
	if _, _, err := tc.master.Submit(context.Background(), "SELECT COUNT(*) FROM logs", QueryOptions{Token: "nope"}); !errors.Is(err, auth.ErrBadToken) {
		t.Errorf("bad token err = %v", err)
	}
	// Oversized query.
	big := "SELECT COUNT(*) FROM logs WHERE s CONTAINS '" + strings.Repeat("x", 300) + "'"
	if _, _, err := tc.master.Submit(context.Background(), big, QueryOptions{Token: token}); err == nil {
		t.Error("oversized query should be rejected")
	}
	// Unauthorized domain.
	token2, _ := authority.Register("mallory")
	if _, _, err := tc.master.Submit(context.Background(), "SELECT COUNT(*) FROM logs", QueryOptions{Token: token2}); !errors.Is(err, auth.ErrDenied) {
		t.Errorf("unauthorized err = %v", err)
	}
}

func TestMasterFailover(t *testing.T) {
	tc := newTestCluster(t, 2, 0, 2, nil)
	backup := NewMaster(MasterConfig{
		Name:    "master2",
		Fabric:  tc.fabric,
		Router:  tc.router,
		Model:   sim.DefaultCostModel(),
		Standby: true,
	})
	ctx := context.Background()
	if err := tc.master.AddBackup(ctx, "master2"); err != nil {
		t.Fatal(err)
	}
	// New registrations replicate via the op log.
	extra := &plan.TableMeta{Name: "extra", Schema: types.MustSchema(types.Field{Name: "x", Type: types.Int64})}
	if err := tc.master.RegisterTable(ctx, extra); err != nil {
		t.Fatal(err)
	}
	// Standby refuses queries.
	if _, _, err := backup.Submit(ctx, "SELECT COUNT(*) FROM logs", QueryOptions{}); !errors.Is(err, ErrStandby) {
		t.Fatalf("standby submit = %v", err)
	}
	// Failover: promote, repoint heartbeats, query.
	backup.Promote()
	for _, l := range tc.leaves {
		if err := l.HeartbeatOnce(ctx, "master2"); err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := backup.Submit(ctx, "SELECT COUNT(*) FROM logs", QueryOptions{})
	if err != nil {
		t.Fatalf("post-failover submit: %v", err)
	}
	if res.Rows[0][0].I != 200 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if _, err := backup.Jobs.Lookup("extra"); err != nil {
		t.Errorf("replicated table missing: %v", err)
	}
}

func TestClusterManagerLiveness(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewClusterManager(10 * time.Second)
	m.Now = func() time.Time { return now }
	m.Heartbeat("leaf0", KindLeaf, 2)
	if !m.Alive("leaf0") || m.Load("leaf0") != 2 {
		t.Error("fresh heartbeat should be alive")
	}
	now = now.Add(11 * time.Second)
	if m.Alive("leaf0") {
		t.Error("stale heartbeat should be dead")
	}
	if got := m.AliveWorkers(KindLeaf); len(got) != 0 {
		t.Errorf("alive = %v", got)
	}
	m.Heartbeat("leaf0", KindLeaf, 0)
	m.AddInflight("leaf0", 3)
	if m.Load("leaf0") != 3 {
		t.Errorf("load = %d", m.Load("leaf0"))
	}
	m.AddInflight("leaf0", -5)
	if m.Load("leaf0") != 0 {
		t.Error("inflight must not go negative")
	}
}

func TestSchedulerNoCandidates(t *testing.T) {
	tc := newTestCluster(t, 1, 0, 1, nil)
	task := mustTasks(t, tc, "SELECT COUNT(*) FROM logs")[0]
	if _, err := tc.master.Scheduler.Place(task, map[string]bool{"leaf0": true}); err == nil {
		t.Error("all-excluded placement should fail")
	}
}

func TestSimTimeScalesDown(t *testing.T) {
	// More leaves -> more parallelism -> lower simulated response time
	// (the Fig. 12 mechanism at miniature scale).
	small := newTestCluster(t, 1, 0, 8, nil)
	big := newTestCluster(t, 8, 0, 8, nil)
	_, s1 := small.query("SELECT COUNT(*) FROM logs WHERE v >= 0", QueryOptions{})
	_, s8 := big.query("SELECT COUNT(*) FROM logs WHERE v >= 0", QueryOptions{})
	if s8.SimTime >= s1.SimTime {
		t.Errorf("8-leaf sim time %v not below 1-leaf %v", s8.SimTime, s1.SimTime)
	}
}

func TestGobSpillRoundTrip(t *testing.T) {
	g := exec.NewGroups(2)
	grp := g.Get([]types.Value{types.NewString("k")})
	grp.Cells[0].Update(types.NewInt(4), false)
	grp.Cells[1].Update(types.NewFloat(2.5), false)
	r := &exec.TaskResult{
		Rows:   [][]types.Value{{types.NewInt(1), types.NewString("s")}},
		Groups: g,
	}
	data, err := encodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0][1].S != "s" {
		t.Errorf("rows = %+v", got.Rows)
	}
	if got.Groups == nil || got.Groups.M[exec.GroupKey(grp.Keys)].Cells[0].Count != 1 {
		t.Errorf("groups = %+v", got.Groups)
	}
	if _, err := decodeResult([]byte("junk")); err == nil {
		t.Error("junk spill should fail")
	}
}

func parseSQL(sql string) (*sqlparser.SelectStmt, error) {
	return sqlparser.Parse(sql)
}

func TestRemoteReadChargesNetwork(t *testing.T) {
	tc := newTestCluster(t, 4, 0, 1, nil)
	for _, l := range tc.leaves {
		l.Model = sim.DefaultCostModel()
	}
	task := mustTasks(t, tc, "SELECT COUNT(*) FROM logs WHERE v > 2")[0]
	holders := tc.router.Locations(task.Partition.Path)

	var local, remote *LeafServer
	for _, l := range tc.leaves {
		if contains(holders, l.Name) {
			local = l
		} else {
			remote = l
		}
	}
	if local == nil || remote == nil {
		t.Fatalf("need both local and remote leaves; holders=%v", holders)
	}

	ctx := context.Background()
	runOn := func(l *LeafServer) taskReply {
		raw, err := l.handle(ctx, "test", taskMsg{Task: task})
		if err != nil {
			t.Fatal(err)
		}
		return raw.(taskReply)
	}
	localReply := runOn(local)
	remoteReply := runOn(remote)
	if localReply.DevBytes["net"] != 0 {
		t.Errorf("local read should not charge network: %v", localReply.DevBytes)
	}
	if remoteReply.DevBytes["net"] == 0 {
		t.Errorf("remote read must charge network: %v", remoteReply.DevBytes)
	}
	if remoteReply.SimTime <= localReply.SimTime {
		t.Errorf("remote task (%v) should cost more than local (%v)", remoteReply.SimTime, localReply.SimTime)
	}
}

// addUsersDim registers a small dimension table on the local store.
func (tc *testCluster) addUsersDim(t *testing.T) {
	t.Helper()
	schema := types.MustSchema(
		types.Field{Name: "v", Type: types.Int64},
		types.Field{Name: "name", Type: types.String},
	)
	w := colstore.NewWriter(schema, 16)
	names := []string{"zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine"}
	for i, n := range names {
		if err := w.Append(types.Row{types.NewInt(int64(i)), types.NewString(n)}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := tc.router.WriteFile(ctx, "/dims/users", data); err != nil {
		t.Fatal(err)
	}
	meta := &plan.TableMeta{Name: "names", Schema: schema, Partitions: []plan.PartitionMeta{
		{Path: "/dims/users", Rows: 10, Bytes: int64(len(data))},
	}}
	if err := tc.master.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndJoinLoadsDims(t *testing.T) {
	tc := newTestCluster(t, 3, 1, 3, nil)
	tc.addUsersDim(t)
	res, _ := tc.query(
		"SELECT name, COUNT(*) AS n FROM logs JOIN names ON logs.v = names.v WHERE logs.v < 2 GROUP BY name ORDER BY name",
		QueryOptions{})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0][0].S != "one" || res.Rows[0][1].I != 30 {
		t.Errorf("row0 = %+v", res.Rows[0])
	}
	if res.Rows[1][0].S != "zero" || res.Rows[1][1].I != 30 {
		t.Errorf("row1 = %+v", res.Rows[1])
	}
}

func TestPingHandlers(t *testing.T) {
	tc := newTestCluster(t, 1, 1, 1, nil)
	ctx := context.Background()
	raw, err := tc.fabric.Call(ctx, "x", "leaf0", transport.Control, pingMsg{}, 8)
	if err != nil || raw.(pingReply).Kind != KindLeaf {
		t.Errorf("leaf ping = %+v, %v", raw, err)
	}
	raw, err = tc.fabric.Call(ctx, "x", "stem0", transport.Control, pingMsg{}, 8)
	if err != nil || raw.(pingReply).Kind != KindStem {
		t.Errorf("stem ping = %+v, %v", raw, err)
	}
	if _, err := tc.fabric.Call(ctx, "x", "master", transport.Control, pingMsg{}, 8); err != nil {
		t.Errorf("master ping = %v", err)
	}
	// Unknown message types are rejected everywhere.
	for _, node := range []string{"leaf0", "stem0", "master"} {
		if _, err := tc.fabric.Call(ctx, "x", node, transport.Control, struct{ X int }{1}, 8); err == nil {
			t.Errorf("%s should reject unknown messages", node)
		}
	}
}

func TestHeartbeatLoops(t *testing.T) {
	tc := newTestCluster(t, 1, 1, 1, nil)
	tc.master.Manager.Forget("leaf0")
	tc.master.Manager.Forget("stem0")
	tc.leaves[0].Start("master", 5*time.Millisecond)
	tc.stems[0].Start("master", 5*time.Millisecond)
	defer tc.leaves[0].Stop()
	defer tc.stems[0].Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if tc.master.Manager.Alive("leaf0") && tc.master.Manager.Alive("stem0") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loops never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSchedulerFallbackWhenHoldersDead(t *testing.T) {
	tc := newTestCluster(t, 4, 0, 4, nil)
	task := mustTasks(t, tc, "SELECT COUNT(*) FROM logs")[0]
	holders := tc.router.Locations(task.Partition.Path)
	// Kill every holder in the cluster manager: the scheduler must fall
	// back to a non-holder with the lowest network distance.
	for _, h := range holders {
		tc.master.Manager.Forget(h)
	}
	leaf, err := tc.master.Scheduler.Place(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if contains(holders, leaf) {
		t.Errorf("placed on dead holder %s", leaf)
	}
}

func TestJobManagerHelpers(t *testing.T) {
	jm := NewJobManager()
	jm.RegisterTable(&plan.TableMeta{Name: "b"})
	jm.RegisterTable(&plan.TableMeta{Name: "a"})
	if got := jm.Tables(); len(got) != 2 || got[0] != "a" {
		t.Errorf("tables = %v", got)
	}
	if id1, id2 := jm.NewJobID(), jm.NewJobID(); id1 == id2 {
		t.Error("job ids should be unique")
	}
	if KindLeaf.String() != "leaf" || KindStem.String() != "stem" {
		t.Error("kind strings")
	}
}

func TestSubmitContextCancellation(t *testing.T) {
	tc := newTestCluster(t, 1, 0, 2, nil)
	tc.leaves[0].SetStall(200 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err := tc.master.Submit(ctx, "SELECT COUNT(*) FROM logs", QueryOptions{})
	if err == nil {
		t.Fatal("canceled submit should fail")
	}
}

func TestStemParallelismBound(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 4, nil)
	tc.stems[0].Parallelism = 1 // serialize leaf calls
	res, _ := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{})
	if res.Rows[0][0].I != 400 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}
