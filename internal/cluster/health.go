package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/events"
)

// LoadSnapshot is the load a worker reports with each heartbeat: scheduler
// pressure (active tasks, queue depth) plus the pressure gauges of the
// node's SmartIndex and SSD cache. The master aggregates snapshots into a
// ClusterHealth view so operators can see per-leaf index/cache pressure
// without attaching a tracer to each request.
type LoadSnapshot struct {
	// ActiveTasks is the number of sub-plans executing right now.
	ActiveTasks int
	// QueueDepth is the number of tasks admitted but waiting for an
	// execution slot (stems bound concurrent leaf calls by Parallelism).
	QueueDepth int
	// TasksDone is the lifetime count of completed sub-plans.
	TasksDone int64

	// SmartIndex pressure: cached bitmap count and memory vs. budget.
	IndexEntries int64
	IndexBytes   int64
	IndexBudget  int64 // <=0 means unbounded

	// SmartIndex heat tier (zero when heat-aware budgeting is disabled):
	// entries auto-pinned for heavy-hitter atoms, their resident bytes, and
	// the current heat-proportional share of the index budget.
	IndexHotEntries int64
	IndexHotBytes   int64
	IndexHotBudget  int64

	// SSD-cache pressure.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheBytes     int64
	CacheCapacity  int64 // <=0 means the cache is disabled
}

// CacheHitRatio returns hits / (hits + misses), or 0 with no traffic.
func (s LoadSnapshot) CacheHitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// IndexLoadReporter is implemented by index managers (core.SmartIndex) that
// can report their memory pressure. Defined here so the leaf can discover
// it via a type assertion without the index package importing cluster.
type IndexLoadReporter interface {
	IndexLoad() (entries, bytes, budget int64)
}

// HeatLoadReporter is optionally implemented by index managers whose budget
// is heat-aware (core.SmartIndex with heavy-hitter tracking enabled). Kept
// separate from IndexLoadReporter so baselines (the B-tree index) need not
// grow a heat concept.
type HeatLoadReporter interface {
	HeatLoad() (hotEntries, hotBytes, hotBudget int64)
}

// CacheLoadReporter is implemented by caching readers (cache.Reader) that
// can report hit/eviction pressure.
type CacheLoadReporter interface {
	CacheLoad() (hits, misses, evictions, bytes, capacity int64)
}

// NodeState classifies a worker by heartbeat freshness.
type NodeState int

// Node states: a worker is alive while beats arrive within half the
// liveness window, degraded while the last beat is older than that but
// still inside the window, and dead past the window.
const (
	StateAlive NodeState = iota
	StateDegraded
	StateDead
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateDegraded:
		return "degraded"
	default:
		return "dead"
	}
}

// NodeHealth is one worker's entry in the cluster health view.
type NodeHealth struct {
	Name  string
	Kind  WorkerKind
	State NodeState
	// Stale marks Load as last-known rather than live: the snapshot
	// predates the freshness horizon (the node is degraded or dead), so
	// its gauges must not be read as current values.
	Stale bool
	// Age is how long ago the last heartbeat arrived.
	Age time.Duration
	// Inflight is the number of tasks this master has dispatched to the
	// worker and not yet seen finish.
	Inflight int
	Load     LoadSnapshot
}

// ClusterHealth is the master's aggregate view of the fleet.
type ClusterHealth struct {
	Nodes                 []NodeHealth // sorted by name
	Alive, Degraded, Dead int
	// Admission is the master's admission-queue state (zero/disabled when
	// the view comes straight from a ClusterManager or admission is off).
	Admission AdmissionSnapshot
}

// Healthy reports whether every known node is alive.
func (h ClusterHealth) Healthy() bool {
	return h.Degraded == 0 && h.Dead == 0
}

// HeartbeatLoad records a beat carrying a full load snapshot.
func (m *ClusterManager) HeartbeatLoad(name string, kind WorkerKind, load LoadSnapshot) {
	m.mu.Lock()
	w, ok := m.workers[name]
	if !ok {
		w = &workerState{}
		m.workers[name] = w
	}
	recovered := w.suspect
	w.kind = kind
	w.lastBeat = m.Now()
	w.active = load.ActiveTasks
	w.load = load
	w.suspect = false // a beat proves the worker reachable again
	m.mu.Unlock()
	if recovered {
		m.Events.Emit("worker/"+name, events.WorkerRecovered, "", -1, "heartbeat resumed")
	}
}

// Health returns the aggregate fleet view at the current time.
func (m *ClusterManager) Health() ClusterHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.Now()
	h := ClusterHealth{}
	for name, w := range m.workers {
		age := now.Sub(w.lastBeat)
		state := StateAlive
		switch {
		case w.suspect || age > m.LivenessWindow:
			state = StateDead
		case age > m.LivenessWindow/2:
			state = StateDegraded
		}
		switch state {
		case StateAlive:
			h.Alive++
		case StateDegraded:
			h.Degraded++
		default:
			h.Dead++
		}
		h.Nodes = append(h.Nodes, NodeHealth{
			Name:     name,
			Kind:     w.kind,
			State:    state,
			Stale:    state != StateAlive,
			Age:      age,
			Inflight: w.inflight,
			Load:     w.load,
		})
	}
	sort.Slice(h.Nodes, func(i, j int) bool { return h.Nodes[i].Name < h.Nodes[j].Name })
	return h
}

// Render formats the health view as the `\top`-style dashboard table.
func (h ClusterHealth) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cluster: %d alive, %d degraded, %d dead\n", h.Alive, h.Degraded, h.Dead)
	sb.WriteString(h.Admission.Render())
	fmt.Fprintf(&sb, "%-8s %-5s %-9s %6s %6s %6s %10s %12s %7s %9s %9s %s\n",
		"NODE", "KIND", "STATE", "ACTIVE", "QUEUE", "INFLT", "TASKS", "IDX_BYTES", "IDX_N", "IDX_HOT", "CACHE_HIT", "AGE")
	for _, n := range h.Nodes {
		state := n.State.String()
		if n.Stale {
			state += "*"
		}
		idxBytes := fmt.Sprintf("%d", n.Load.IndexBytes)
		if n.Load.IndexBudget > 0 {
			idxBytes = fmt.Sprintf("%d/%d", n.Load.IndexBytes, n.Load.IndexBudget)
		}
		hot := "-"
		if n.Load.IndexHotEntries > 0 || n.Load.IndexHotBudget > 0 {
			hot = fmt.Sprintf("%d/%dB", n.Load.IndexHotEntries, n.Load.IndexHotBytes)
		}
		hit := "-"
		if n.Load.CacheHits+n.Load.CacheMisses > 0 {
			hit = fmt.Sprintf("%.1f%%", 100*n.Load.CacheHitRatio())
		}
		fmt.Fprintf(&sb, "%-8s %-5s %-9s %6d %6d %6d %10d %12s %7d %9s %9s %s\n",
			n.Name, n.Kind, state, n.Load.ActiveTasks, n.Load.QueueDepth, n.Inflight,
			n.Load.TasksDone, idxBytes, n.Load.IndexEntries, hot, hit,
			n.Age.Round(time.Millisecond))
	}
	if len(h.Nodes) == 0 {
		sb.WriteString("(no workers have heartbeated yet)\n")
	}
	return sb.String()
}
