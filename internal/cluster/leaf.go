package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
)

// LeafServer executes sub-plans against the storage it sits next to (paper
// §III-B: "each storage node ... acts as a leaf server in Feisu"). It owns
// the node's SmartIndex (or B-tree baseline), its SSD-cache-wrapped reader,
// and reports load through heartbeats.
type LeafServer struct {
	Name   string
	Fabric transport.Network
	Reader exec.PartitionReader
	// Index is the node's SmartIndex / B-tree; nil disables indexing.
	Index exec.IndexSource
	// Router performs spill writes and resolves data locality; nil
	// disables spilling and the remote-read penalty.
	Router *storage.Router
	// Model prices remote reads; nil disables the penalty.
	Model *sim.CostModel
	// SpillThreshold sends results above this size via global storage
	// instead of inline; <=0 disables spilling.
	SpillThreshold int64
	// SpillPrefix is where spilled results go (e.g. "/hdfs/feisu-tmp").
	SpillPrefix string
	// Events, when set, journals task executions into the flight recorder.
	Events *events.Recorder

	// stall is a per-task pause in nanoseconds (straggler fault injection),
	// atomic because the chaos controller flips it while tasks run.
	stall    atomic.Int64
	active   atomic.Int32
	spillSeq atomic.Int64
	life     lifecycle

	// Tasks counts sub-plans executed; Spills counts results written to
	// global storage instead of returned inline.
	Tasks  metrics.Counter
	Spills metrics.Counter
}

// RegisterMetrics publishes the leaf's counters into a central registry
// under the given name prefix (e.g. "leaf0.").
func (l *LeafServer) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Register(prefix+"tasks", &l.Tasks)
	reg.Register(prefix+"spills", &l.Spills)
}

// Register attaches the leaf to the fabric.
func (l *LeafServer) Register() {
	l.Fabric.Register(l.Name, l.handle)
}

// SetStall sets the per-task pause (0 clears it) — the straggler knob the
// chaos controller drives concurrently with task execution.
func (l *LeafServer) SetStall(d time.Duration) {
	l.stall.Store(int64(d))
}

// Stall returns the current per-task pause.
func (l *LeafServer) Stall() time.Duration {
	return time.Duration(l.stall.Load())
}

// handle dispatches incoming messages.
func (l *LeafServer) handle(ctx context.Context, from string, payload any) (any, error) {
	switch msg := payload.(type) {
	case pingMsg:
		return pingReply{Kind: KindLeaf, ActiveTasks: int(l.active.Load())}, nil
	case taskMsg:
		return l.runTask(ctx, msg)
	case shuffleTaskMsg:
		return l.runShuffleTask(ctx, msg)
	default:
		return nil, fmt.Errorf("cluster: leaf %s: unknown message %T", l.Name, payload)
	}
}

// runTask executes one sub-plan, billing simulated I/O to a private bill.
func (l *LeafServer) runTask(ctx context.Context, msg taskMsg) (any, error) {
	l.active.Add(1)
	defer l.active.Add(-1)
	l.Tasks.Inc()
	ctx, span := trace.StartSpan(ctx, "leaf/"+l.Name)
	defer span.Finish()
	span.SetAttr("partition", msg.Task.Partition.Path)
	if d := l.Stall(); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	bill := sim.NewBill()
	res, err := exec.RunTaskModel(storage.WithBill(ctx, bill), msg.Task, l.Reader, l.Index, l.Model)
	if err != nil {
		return nil, err
	}
	l.chargeRemoteRead(ctx, bill, msg.Task.Partition.Path)
	// The leaf span's sim time is the task's full simulated cost; the
	// read:*/transfer children decompose it per device class.
	span.SetSim(bill.Time())
	billSpans(span, bill)
	if msg.QueryID != "" {
		l.Events.EmitSim(events.TaskSite(msg.QueryID, msg.Task.Ordinal), events.LeafExec,
			msg.QueryID, msg.Task.Ordinal, bill.Time(), l.Name+" "+msg.Task.Partition.Path)
	}
	reply := taskReply{Result: res, Size: res.EstimateBytes(), SimTime: bill.Time(), DevBytes: deviceBytes(bill)}
	if l.SpillThreshold > 0 && reply.Size > l.SpillThreshold && l.Router != nil {
		l.Spills.Inc()
		data, err := encodeResult(res)
		if err != nil {
			return nil, err
		}
		path := fmt.Sprintf("%s/%s-%d", l.SpillPrefix, l.Name, l.spillSeq.Add(1))
		// Spilling is write-flow traffic to global storage (§V-C).
		if err := l.Router.WriteFile(ctx, path, data); err != nil {
			return nil, fmt.Errorf("cluster: spill to %s: %w", path, err)
		}
		l.Fabric.Counters().Msgs[transport.Write].Inc()
		l.Fabric.Counters().Bytes[transport.Write].Add(int64(len(data)))
		reply.Result = nil
		reply.SpillPath = path
		reply.Size = int64(len(data))
	}
	return reply, nil
}

// chargeRemoteRead models the network cost of scheduling a task away from
// its data: when this leaf holds no replica of the partition, the bytes it
// read from the holder's store crossed the network from the nearest holder
// (the overhead the paper's locality-aware scheduler avoids, §III-B). Only
// bytes that actually came off the data holder's devices move: HDD and
// cold-archive reads always do, and SSD reads only when the partition
// itself lives on SSD (an SSD *cache* hit or an in-memory SmartIndex lookup
// is served from this leaf's local hardware and moves nothing).
func (l *LeafServer) chargeRemoteRead(ctx context.Context, bill *sim.Bill, path string) {
	if l.Router == nil || l.Model == nil {
		return
	}
	holders := l.Router.Locations(path)
	if len(holders) == 0 {
		return
	}
	hops := 1 << 30
	topo := l.Fabric.Topology()
	for _, h := range holders {
		if h == l.Name {
			return // local read
		}
		if hp := topo.Hops(l.Name, h); hp < hops {
			hops = hp
		}
	}
	moved := bill.Bytes(sim.DeviceHDD) + bill.Bytes(sim.DeviceCold)
	if l.Router.Device(path) == sim.DeviceSSD {
		moved += bill.Bytes(sim.DeviceSSD)
	}
	if moved > 0 && hops > 0 && hops < 1<<30 {
		trace.FromContext(ctx).Count("remote.bytes", moved)
		bill.ChargeTransfer(l.Model, moved, hops)
	}
}

// billSpans decomposes a task bill into read:<device> / transfer child
// spans so the trace shows where the simulated time went.
func billSpans(span *trace.Span, bill *sim.Bill) {
	if span == nil {
		return
	}
	for _, d := range []sim.DeviceClass{sim.DeviceHDD, sim.DeviceSSD, sim.DeviceMemory, sim.DeviceCold} {
		if n := bill.Bytes(d); n > 0 {
			c := span.Child("read:" + d.String())
			c.SetSim(bill.TimeOf(d))
			c.Count("bytes", n)
			c.Finish()
		}
	}
	if t := bill.TransferTime(); t > 0 {
		c := span.Child("transfer")
		c.SetSim(t)
		c.Count("bytes", bill.Bytes(sim.DeviceNetwork))
		c.Finish()
	}
}

// LoadSnapshot assembles the leaf's current load: task pressure plus the
// index and cache gauges, discovered through the reporter interfaces so the
// index/cache packages stay ignorant of the cluster layer.
func (l *LeafServer) LoadSnapshot() LoadSnapshot {
	s := LoadSnapshot{
		ActiveTasks: int(l.active.Load()),
		TasksDone:   l.Tasks.Value(),
	}
	if rep, ok := l.Index.(IndexLoadReporter); ok && rep != nil {
		s.IndexEntries, s.IndexBytes, s.IndexBudget = rep.IndexLoad()
	}
	if rep, ok := l.Index.(HeatLoadReporter); ok && rep != nil {
		s.IndexHotEntries, s.IndexHotBytes, s.IndexHotBudget = rep.HeatLoad()
	}
	if rep, ok := l.Reader.(CacheLoadReporter); ok && rep != nil {
		s.CacheHits, s.CacheMisses, s.CacheEvictions, s.CacheBytes, s.CacheCapacity = rep.CacheLoad()
	}
	return s
}

// HeartbeatOnce sends one heartbeat to the master.
func (l *LeafServer) HeartbeatOnce(ctx context.Context, master string) error {
	load := l.LoadSnapshot()
	_, err := l.Fabric.Call(ctx, l.Name, master, transport.Control,
		heartbeatMsg{Name: l.Name, Kind: KindLeaf, Active: load.ActiveTasks, Load: load}, 64)
	return err
}

// Start launches the heartbeat loop; Stop ends it. Both are safe to call
// concurrently; a second Start while running is a no-op.
func (l *LeafServer) Start(master string, interval time.Duration) {
	l.life.start(func(stop <-chan struct{}) {
		heartbeatLoop(stop, interval, func() {
			_ = l.HeartbeatOnce(context.Background(), master)
		})
	})
}

// Stop ends the heartbeat loop; extra or concurrent Stops are no-ops.
func (l *LeafServer) Stop() {
	l.life.halt()
}

// heartbeatMsg reports liveness and load to the master's cluster manager.
type heartbeatMsg struct {
	Name   string
	Kind   WorkerKind
	Active int
	// Load is the worker's full load snapshot (Load.ActiveTasks == Active).
	Load LoadSnapshot
}

func heartbeatLoop(stop <-chan struct{}, interval time.Duration, beat func()) {
	if interval <= 0 {
		interval = time.Second
	}
	beat()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			beat()
		}
	}
}
