// Package cluster implements Feisu's tree-structured server organization
// (paper §III-B, Fig. 3): a master that plans, schedules and finalizes
// queries; stem servers that dispatch sub-plans and aggregate partial
// results; and leaf servers co-located with storage that execute sub-plans
// with SmartIndex assistance. The master is composed of the paper's four
// separable services — job manager, cluster manager, job scheduler and
// entry guard — plus primary/backup failover via checkpoint and op log
// (§III-C), backup tasks for stragglers, and the processed-ratio /
// time-limit early return.
package cluster

import (
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/trace"
)

// WorkerKind distinguishes stem and leaf servers.
type WorkerKind int

// Worker kinds.
const (
	KindLeaf WorkerKind = iota
	KindStem
)

// String names the kind.
func (k WorkerKind) String() string {
	if k == KindStem {
		return "stem"
	}
	return "leaf"
}

// QueryOptions tune one query submission.
type QueryOptions struct {
	// Token authenticates the caller with the entry guard.
	Token string
	// Priority is the query's admission class (interactive by default).
	// Batch queries get a smaller weighted-fair share of execution slots
	// under load.
	Priority Priority
	// QueueDeadline bounds how long this query may wait in the admission
	// queue before being shed with *OverloadedError; 0 uses the cluster
	// default (MasterConfig.QueueWaitDeadline).
	QueueDeadline time.Duration
	// TimeLimit bounds wall-clock execution; expired queries return the
	// partial result accumulated so far when MinProcessedRatio is met
	// (paper §III-B: "directly limit the total elapse time").
	TimeLimit time.Duration
	// MinProcessedRatio (0..1] accepts a result once this fraction of
	// tasks has completed; 0 means all tasks are required.
	MinProcessedRatio float64
	// TaskTimeout is the per-task straggler threshold that triggers a
	// backup task; 0 uses the cluster default.
	TaskTimeout time.Duration
	// DisableReuse turns off identical-task result reuse (ablation).
	DisableReuse bool
	// DisableResultCache bypasses the master's semantic result cache for
	// this query (no lookup, no store) — for ablations and freshness-
	// sensitive reads.
	DisableResultCache bool
	// Trace records a span tree for the query (master → stem → leaf →
	// scan with index/cache counters) into QueryStats.Trace. EXPLAIN
	// ANALYZE forces it on.
	Trace bool
	// PartialResults degrades instead of failing: tasks that exhaust their
	// retries are dropped from the result and reported per-leaf in
	// QueryStats.TaskErrors. At least one task must succeed.
	PartialResults bool
	// HedgeDelay launches a speculative duplicate of a task placed on a
	// straggler-flagged leaf after this pause, first result wins; 0 uses
	// the cluster default, negative disables hedging for the query.
	HedgeDelay time.Duration
}

// TaskError reports one task dropped from a partial result.
type TaskError struct {
	// Ordinal is the task's position in the physical plan.
	Ordinal int
	// Leaf is the last leaf the task failed on.
	Leaf string
	// Err is the final error message.
	Err string
}

// QueryStats reports how a query executed.
type QueryStats struct {
	// QueryID is the master-assigned causal ID ("q000012") that keys the
	// query's flight-recorder events, live progress entry and stored trace.
	QueryID string
	// Fingerprint identifies the logical query (normalized plan
	// fingerprint, literals lifted to placeholders); the slow-query log
	// groups entries by it.
	Fingerprint string
	// ResultCache reports the semantic result cache outcome: "hit",
	// "subsumed" or "miss"; empty when the cache is disabled or bypassed.
	// Hit queries execute no tasks at all.
	ResultCache string
	Tasks       int
	TasksFailed int
	BackupTasks int
	ReusedTasks int
	// HedgedTasks counts speculative duplicates launched against
	// straggler-flagged leaves; HedgesWon counts those that beat the
	// primary attempt.
	HedgedTasks int
	HedgesWon   int
	// TaskErrors lists tasks dropped from a partial result (only populated
	// under QueryOptions.PartialResults).
	TaskErrors []TaskError
	Scan       exec.ScanStats
	// QueueWait is the time spent in the master's admission queue before an
	// execution slot was granted (0 when admission control is off or the
	// query was admitted immediately).
	QueueWait time.Duration
	// Priority is the admission class the query ran under.
	Priority Priority
	// SimTime is the cost-model response time: the critical path through
	// leaves and stems plus result transfers (DESIGN.md §2).
	SimTime time.Duration
	// ScanSimTime is the busiest leaf's execution-only simulated time
	// (storage reads + predicate CPU), excluding RPC and result-transfer
	// latency. It isolates the component that intra-task scan parallelism
	// (TaskSpec.Workers) divides; the fixed transport costs in SimTime do
	// not shrink with worker count.
	ScanSimTime time.Duration
	// WallTime is the real in-process execution time.
	WallTime time.Duration
	// BytesByDevice reports simulated bytes read per device class.
	BytesByDevice map[string]int64
	// ShuffleSpillBytes counts bytes the reducers spilled to global storage
	// during a repartitioned join or group-by (grace-hash overflow past the
	// memory grant); 0 for non-shuffle queries.
	ShuffleSpillBytes int64
	// Trace is the query's span tree when QueryOptions.Trace was set
	// (nil otherwise). Render it with Trace.Render().
	Trace *trace.Span
}

// lifecycle guards a server's heartbeat loop: Start/Stop may race from
// different goroutines, and Stop must be idempotent (a double Stop used to
// close a closed channel).
type lifecycle struct {
	mu   sync.Mutex
	stop chan struct{}
}

// start launches loop(stop) unless already running.
func (lc *lifecycle) start(loop func(stop <-chan struct{})) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.stop != nil {
		return
	}
	lc.stop = make(chan struct{})
	go loop(lc.stop)
}

// halt ends the loop; extra calls are no-ops.
func (lc *lifecycle) halt() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.stop != nil {
		close(lc.stop)
		lc.stop = nil
	}
}

// taskMsg dispatches one sub-plan to a leaf.
type taskMsg struct {
	Task plan.TaskSpec
	// QueryID is the owning query's causal ID, carried so the leaf's
	// flight-recorder events join the query's task event chain.
	QueryID string
}

// taskReply is a leaf's answer.
type taskReply struct {
	Result *exec.TaskResult
	// SpillPath is set instead of Result when the payload exceeded the
	// spill threshold and was written to global storage (paper §V-C's
	// write flow: "it will be dumped to global storage and only the
	// location information is passed").
	SpillPath string
	Size      int64
	// SimTime is the leaf-side simulated execution time for the task.
	SimTime time.Duration
	// DevBytes reports simulated bytes read per device class on the leaf.
	DevBytes map[string]int64
}

// stemJobMsg asks a stem to run and merge a set of tasks.
type stemJobMsg struct {
	Plan   *plan.PhysicalPlan
	Tasks  []plan.TaskSpec
	Assign map[int]string // task ordinal -> leaf node
	// QueryID tags the job's flight-recorder events with the owning query.
	QueryID string
	// TaskTimeout bounds each leaf call.
	TaskTimeout time.Duration
	// PerTask asks the stem to return per-task results instead of a
	// merged partial, so the master's identical-task futures hold exact
	// payloads (result sharing, §III-C).
	PerTask bool
	// Backup maps task ordinals to a second leaf for hedged execution:
	// the stem launches a speculative duplicate there after HedgeDelay
	// unless the primary has already answered (first result wins).
	Backup map[int]string
	// HedgeDelay is how long the stem waits on the primary before firing
	// the backup; required when Backup is non-empty.
	HedgeDelay time.Duration
	// LeafSlots bounds the stem's concurrent calls per leaf — the stem-side
	// half of the scheduler's per-leaf slot accounting. <=0 means unbounded.
	LeafSlots int
}

// taskStatus reports one task's outcome inside a stem reply.
type taskStatus struct {
	OK      bool
	Err     string
	Leaf    string
	SimTime time.Duration
	// ScanSim is the leaf-execution component of SimTime: storage reads
	// plus predicate CPU, before spill-fetch and reply-transfer costs are
	// folded in. This is the part intra-task scan parallelism divides.
	ScanSim  time.Duration
	Size     int64
	DevBytes map[string]int64
	// Wall is the stem-observed wall time of the winning attempt, the
	// input to the master's straggler EWMA.
	Wall time.Duration
	// Hedged marks a task that fired its backup; HedgeWon marks the backup
	// as the winning attempt.
	Hedged   bool
	HedgeWon bool
	// Unreachable marks a failure caused by the leaf being unknown/down on
	// the fabric — the master turns this into an immediate suspicion
	// instead of waiting out the liveness window.
	Unreachable bool
}

// stemReply is a stem's answer: merged bottom-up, or per task when the
// job asked for PerTask granularity.
type stemReply struct {
	Merged  *exec.TaskResult
	PerTask map[int]*exec.TaskResult
	Status  map[int]taskStatus
}

// pingMsg checks liveness and reports load.
type pingMsg struct{}

// pingReply carries a worker's heartbeat payload.
type pingReply struct {
	Kind        WorkerKind
	ActiveTasks int
}

// deviceBytes extracts per-device byte counters from a bill.
func deviceBytes(b *sim.Bill) map[string]int64 {
	out := make(map[string]int64)
	for _, d := range []sim.DeviceClass{sim.DeviceHDD, sim.DeviceSSD, sim.DeviceMemory, sim.DeviceNetwork, sim.DeviceCold} {
		if n := b.Bytes(d); n != 0 {
			out[d.String()] = n
		}
	}
	return out
}
