package cluster

import (
	"sort"
	"sync"
	"time"

	"repro/internal/events"
)

// ClusterManager tracks worker liveness and load. The paper deliberately
// avoids ZooKeeper-style coordination ("the number of workers is too large
// and the workers are geographically distributed", §III-C) in favor of
// periodic heartbeats into a horizontally-scalable manager; this is that
// manager for one master.
type ClusterManager struct {
	// Now is injectable for tests.
	Now func() time.Time
	// LivenessWindow marks a worker dead when no heartbeat arrives within
	// it.
	LivenessWindow time.Duration
	// Events, when set, journals worker state transitions (suspected,
	// recovered) into the flight recorder.
	Events *events.Recorder

	mu      sync.Mutex
	workers map[string]*workerState
}

type workerState struct {
	kind     WorkerKind
	lastBeat time.Time
	active   int          // tasks reported by the last heartbeat
	inflight int          // tasks dispatched by this master and not yet finished
	load     LoadSnapshot // full load snapshot from the last heartbeat
	// suspect marks a worker an unreachable dispatch flagged before its
	// heartbeat lapses; cleared by the next heartbeat.
	suspect bool
	// taskEWMA smooths the worker's observed task wall times (nanoseconds)
	// for straggler detection; 0 until the first report.
	taskEWMA float64
}

// taskEWMAAlpha is the smoothing factor for per-worker task wall times:
// recent tasks dominate, so a leaf that turns slow is flagged within a few
// tasks and recovers as quickly once its times normalize.
const taskEWMAAlpha = 0.3

// NewClusterManager returns a manager with the given liveness window.
func NewClusterManager(window time.Duration) *ClusterManager {
	if window <= 0 {
		window = 5 * time.Second
	}
	return &ClusterManager{Now: time.Now, LivenessWindow: window, workers: make(map[string]*workerState)}
}

// Heartbeat records a beat from a worker that reports only its active task
// count (no full load snapshot).
func (m *ClusterManager) Heartbeat(name string, kind WorkerKind, activeTasks int) {
	m.HeartbeatLoad(name, kind, LoadSnapshot{ActiveTasks: activeTasks})
}

// Forget removes a worker (decommission).
func (m *ClusterManager) Forget(name string) {
	m.mu.Lock()
	delete(m.workers, name)
	m.mu.Unlock()
}

// Alive reports whether a worker's heartbeat is fresh and it is not a
// suspect.
func (m *ClusterManager) Alive(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[name]
	return ok && !w.suspect && m.Now().Sub(w.lastBeat) <= m.LivenessWindow
}

// AliveWorkers returns the fresh, non-suspect workers of a kind, sorted by
// name.
func (m *ClusterManager) AliveWorkers(kind WorkerKind) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.Now()
	var out []string
	for name, w := range m.workers {
		if w.kind == kind && !w.suspect && now.Sub(w.lastBeat) <= m.LivenessWindow {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// MarkSuspect flags a worker whose dispatches fail as unreachable before
// its heartbeat lapses, so retries and new placements skip it immediately —
// the liveness window alone would keep routing work at a crashed leaf for
// up to a full window. The next heartbeat clears the flag.
func (m *ClusterManager) MarkSuspect(name string) {
	m.mu.Lock()
	w, ok := m.workers[name]
	flipped := ok && !w.suspect
	if ok {
		w.suspect = true
	}
	m.mu.Unlock()
	if flipped {
		m.Events.Emit("worker/"+name, events.WorkerSuspect, "", -1, "dispatch unreachable")
	}
}

// ReportTaskTime feeds a completed task's wall time into the worker's EWMA
// for straggler detection.
func (m *ClusterManager) ReportTaskTime(name string, d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	if w, ok := m.workers[name]; ok {
		if w.taskEWMA == 0 {
			w.taskEWMA = float64(d)
		} else {
			w.taskEWMA = (1-taskEWMAAlpha)*w.taskEWMA + taskEWMAAlpha*float64(d)
		}
	}
	m.mu.Unlock()
}

// Stragglers returns the workers of a kind whose smoothed task wall time
// exceeds factor × the median across workers with data. With fewer than
// two measured workers there is no population to compare against and the
// result is empty.
func (m *ClusterManager) Stragglers(kind WorkerKind, factor float64) []string {
	if factor <= 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	type sample struct {
		name string
		ewma float64
	}
	var samples []sample
	for name, w := range m.workers {
		if w.kind == kind && w.taskEWMA > 0 {
			samples = append(samples, sample{name, w.taskEWMA})
		}
	}
	if len(samples) < 2 {
		return nil
	}
	sorted := make([]float64, len(samples))
	for i, s := range samples {
		sorted[i] = s.ewma
	}
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	var out []string
	for _, s := range samples {
		if s.ewma > factor*median {
			out = append(out, s.name)
		}
	}
	sort.Strings(out)
	return out
}

// Load returns the worker's known load: the last heartbeat's active plus
// queued tasks (LoadSnapshot pressure) plus tasks this master has dispatched
// and not yet seen finish. The scheduler breaks locality ties by this value,
// so a leaf with a deep execution queue sheds new placements to its
// replicas.
func (m *ClusterManager) Load(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[name]
	if !ok {
		return 0
	}
	return w.active + w.load.QueueDepth + w.inflight
}

// AddInflight adjusts the dispatch-side load tracker.
func (m *ClusterManager) AddInflight(name string, delta int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w, ok := m.workers[name]; ok {
		w.inflight += delta
		if w.inflight < 0 {
			w.inflight = 0
		}
	}
}
