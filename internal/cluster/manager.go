package cluster

import (
	"sort"
	"sync"
	"time"
)

// ClusterManager tracks worker liveness and load. The paper deliberately
// avoids ZooKeeper-style coordination ("the number of workers is too large
// and the workers are geographically distributed", §III-C) in favor of
// periodic heartbeats into a horizontally-scalable manager; this is that
// manager for one master.
type ClusterManager struct {
	// Now is injectable for tests.
	Now func() time.Time
	// LivenessWindow marks a worker dead when no heartbeat arrives within
	// it.
	LivenessWindow time.Duration

	mu      sync.Mutex
	workers map[string]*workerState
}

type workerState struct {
	kind     WorkerKind
	lastBeat time.Time
	active   int          // tasks reported by the last heartbeat
	inflight int          // tasks dispatched by this master and not yet finished
	load     LoadSnapshot // full load snapshot from the last heartbeat
}

// NewClusterManager returns a manager with the given liveness window.
func NewClusterManager(window time.Duration) *ClusterManager {
	if window <= 0 {
		window = 5 * time.Second
	}
	return &ClusterManager{Now: time.Now, LivenessWindow: window, workers: make(map[string]*workerState)}
}

// Heartbeat records a beat from a worker that reports only its active task
// count (no full load snapshot).
func (m *ClusterManager) Heartbeat(name string, kind WorkerKind, activeTasks int) {
	m.HeartbeatLoad(name, kind, LoadSnapshot{ActiveTasks: activeTasks})
}

// Forget removes a worker (decommission).
func (m *ClusterManager) Forget(name string) {
	m.mu.Lock()
	delete(m.workers, name)
	m.mu.Unlock()
}

// Alive reports whether a worker's heartbeat is fresh.
func (m *ClusterManager) Alive(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[name]
	return ok && m.Now().Sub(w.lastBeat) <= m.LivenessWindow
}

// AliveWorkers returns the fresh workers of a kind, sorted by name.
func (m *ClusterManager) AliveWorkers(kind WorkerKind) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.Now()
	var out []string
	for name, w := range m.workers {
		if w.kind == kind && now.Sub(w.lastBeat) <= m.LivenessWindow {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Load returns the worker's known load (heartbeat-reported plus tasks this
// master has in flight).
func (m *ClusterManager) Load(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[name]
	if !ok {
		return 0
	}
	return w.active + w.inflight
}

// AddInflight adjusts the dispatch-side load tracker.
func (m *ClusterManager) AddInflight(name string, delta int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w, ok := m.workers[name]; ok {
		w.inflight += delta
		if w.inflight < 0 {
			w.inflight = 0
		}
	}
}
