package cluster

import (
	"testing"
	"time"
)

// TestRetrySkipsDeadLeaves is the failure-detector regression test: when a
// task's leaf crashes, the retry must re-place it on a leaf the manager
// reports alive — never on the crashed leaf, and never on a leaf the
// failure detector has flagged suspect (even though its last heartbeat is
// still fresh).
func TestRetrySkipsDeadLeaves(t *testing.T) {
	// MaxTaskRetries=1: if the single retry routed to a dead or suspect
	// leaf, the query would fail, so success proves the exclusion.
	tc := newTestCluster(t, 4, 0, 8, func(cfg *MasterConfig) {
		cfg.MaxTaskRetries = 1
	})

	// leaf0 crashes after its last heartbeat: calls fail with
	// ErrUnknownNode, but the liveness window (1 minute) still counts it
	// alive, so initial placement will route tasks at it.
	tc.fabric.SetDown("leaf0", true)
	// leaf1 is reachable but the failure detector has flagged it: retries
	// must avoid it purely on the manager's word.
	tc.master.Manager.MarkSuspect("leaf1")
	leaf1Before := tc.leaves[1].Tasks.Value()

	res, stats := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{})
	if got := res.Rows[0][0].I; got != int64(8*testRowsPerPartition) {
		t.Fatalf("count = %d, want %d", got, 8*testRowsPerPartition)
	}
	if stats.BackupTasks == 0 {
		t.Fatal("no task was placed on the crashed leaf; widen the workload so the regression is exercised")
	}
	if tc.master.Retries.Value() == 0 {
		t.Fatal("Retries counter not incremented")
	}
	if got := tc.leaves[1].Tasks.Value(); got != leaf1Before {
		t.Fatalf("suspect leaf1 ran %d task(s); retries must skip leaves the failure detector reports dead", got-leaf1Before)
	}

	// The crashed leaf is now suspect too (marked when its task call
	// failed), so the health report shows both dead.
	dead := 0
	for _, n := range tc.master.Manager.Health().Nodes {
		if n.Kind == KindLeaf && n.State == StateDead {
			dead++
		}
	}
	if dead != 2 {
		t.Fatalf("health reports %d dead leaves, want 2 (crashed + suspect)", dead)
	}

	// A fresh heartbeat clears the suspicion and the leaf takes work again.
	tc.fabric.SetDown("leaf0", false)
	tc.beat()
	for _, n := range tc.master.Manager.Health().Nodes {
		if n.Kind == KindLeaf && n.State != StateAlive {
			t.Fatalf("%s still %v after heartbeat", n.Name, n.State)
		}
	}
	res, _ = tc.query("SELECT COUNT(*) FROM logs", QueryOptions{})
	if got := res.Rows[0][0].I; got != int64(8*testRowsPerPartition) {
		t.Fatalf("post-recovery count = %d", got)
	}
}

// TestRetryBackoffDeterministic pins the deterministic backoff schedule:
// same task key and attempt always produce the same delay, delays grow
// exponentially, and distinct tasks get decorrelated jitter.
func TestRetryBackoffDeterministic(t *testing.T) {
	base := 10 * time.Millisecond
	if a, b := retryDelay(base, "t1", 0), retryDelay(base, "t1", 0); a != b {
		t.Fatalf("same key/attempt gave %v then %v", a, b)
	}
	d0, d1, d2 := retryDelay(base, "t1", 0), retryDelay(base, "t1", 1), retryDelay(base, "t1", 2)
	if d0 < base || d0 >= 2*base {
		t.Fatalf("attempt 0 delay %v outside [base, 2*base)", d0)
	}
	if d1 < 2*base || d2 < 4*base {
		t.Fatalf("backoff not exponential: %v, %v, %v", d0, d1, d2)
	}
	if retryDelay(base, "t1", 0) == retryDelay(base, "t2", 0) {
		t.Fatal("distinct tasks drew identical jitter (suspicious for FNV)")
	}
}
