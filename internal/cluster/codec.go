package cluster

// Wire-codec registration for every cluster RPC payload and reply. The TCP
// transport serializes payloads with gob behind an interface envelope, so
// each concrete type that crosses transport.Network.Call — and every
// concrete type reachable through an interface field inside one (the
// sqlparser.Expr nodes) — must be registered identically in every process.
// The payload round-trip conformance test (codec_test.go) walks this
// registry, so adding a message type here is what puts it under test.

import (
	"bytes"
	"encoding/gob"
	"time"

	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/transport"
)

func durationFromWire(n int64) time.Duration { return time.Duration(n) }

func init() {
	// Requests and replies, by value: the receivers type-assert value
	// types (raw.(taskReply), raw.(stemReply), …).
	transport.RegisterPayload(pingMsg{})
	transport.RegisterPayload(pingReply{})
	transport.RegisterPayload(heartbeatMsg{})
	transport.RegisterPayload(taskMsg{})
	transport.RegisterPayload(taskReply{})
	transport.RegisterPayload(stemJobMsg{})
	transport.RegisterPayload(stemReply{})
	transport.RegisterPayload(catalogOp{})
	transport.RegisterPayload(catalogSnapshot{})
	transport.RegisterPayload(shuffleTaskMsg{})
	transport.RegisterPayload(shuffleTaskReply{})
	transport.RegisterPayload(shuffleFrameMsg{})
	transport.RegisterPayload(shuffleEndMsg{})
	transport.RegisterPayload(shuffleReduceMsg{})
	transport.RegisterPayload(shuffleReduceReply{})
	transport.RegisterPayload(shuffleCleanupMsg{})
	transport.RegisterPayload(shuffleAck{})

	// Expression nodes reachable through sqlparser.Expr interface fields
	// (plans, CNF opaque leaves, aggregate args, group-by keys).
	gob.Register(&sqlparser.ColumnRef{})
	gob.Register(&sqlparser.Literal{})
	gob.Register(&sqlparser.BinaryExpr{})
	gob.Register(&sqlparser.IsNullExpr{})
	gob.Register(&sqlparser.NotExpr{})
	gob.Register(&sqlparser.NegExpr{})
	gob.Register(&sqlparser.FuncCall{})
}

// wireStemJob is stemJobMsg's wire form. gob does not preserve pointer
// aliasing, and every TaskSpec in a job points at the job's own
// PhysicalPlan — naively encoding the struct would ship the plan (and its
// broadcast dimension data) once per task. The wire form nils out aliased
// task plans and relinks them after decode; a task plan that genuinely
// differs from the job plan is shipped inline.
type wireStemJob struct {
	Plan        *plan.PhysicalPlan
	Tasks       []plan.TaskSpec
	SharedPlan  []bool // Tasks[i].Plan == Plan before encoding
	Assign      map[int]string
	QueryID     string
	TaskTimeout int64 // time.Duration
	PerTask     bool
	Backup      map[int]string
	HedgeDelay  int64 // time.Duration
	LeafSlots   int
}

// GobEncode implements gob.GobEncoder.
func (j stemJobMsg) GobEncode() ([]byte, error) {
	w := wireStemJob{
		Plan:        j.Plan,
		Tasks:       make([]plan.TaskSpec, len(j.Tasks)),
		SharedPlan:  make([]bool, len(j.Tasks)),
		Assign:      j.Assign,
		QueryID:     j.QueryID,
		TaskTimeout: int64(j.TaskTimeout),
		PerTask:     j.PerTask,
		Backup:      j.Backup,
		HedgeDelay:  int64(j.HedgeDelay),
		LeafSlots:   j.LeafSlots,
	}
	for i, t := range j.Tasks {
		if t.Plan == j.Plan && j.Plan != nil {
			t.Plan = nil
			w.SharedPlan[i] = true
		}
		w.Tasks[i] = t
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (j *stemJobMsg) GobDecode(b []byte) error {
	var w wireStemJob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	for i := range w.Tasks {
		if i < len(w.SharedPlan) && w.SharedPlan[i] {
			w.Tasks[i].Plan = w.Plan
		}
	}
	*j = stemJobMsg{
		Plan:        w.Plan,
		Tasks:       w.Tasks,
		Assign:      w.Assign,
		QueryID:     w.QueryID,
		TaskTimeout: durationFromWire(w.TaskTimeout),
		PerTask:     w.PerTask,
		Backup:      w.Backup,
		HedgeDelay:  durationFromWire(w.HedgeDelay),
		LeafSlots:   w.LeafSlots,
	}
	return nil
}
