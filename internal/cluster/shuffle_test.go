package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// shuffleCluster is a miniature deployment with TWO cataloged tables — a
// fact ("orders") and a join table ("users") — plus the raw rows kept
// around so tests can brute-force the expected join output.
type shuffleCluster struct {
	t      *testing.T
	fabric *transport.Fabric
	router *storage.Router
	master *Master
	leaves []*LeafServer
	stems  []*StemServer
	rec    *events.Recorder

	orders []orderRow
	users  []userRow
}

type orderRow struct{ id, uid, amt int64 }
type userRow struct {
	uid    int64
	name   string
	region int64
}

const shufRowsPerPart = 120

// newShuffleCluster builds the deployment. orders has factParts partitions
// (id sequential; uid = id*7 mod 2N so roughly half the orders dangle);
// users has dimParts partitions with dense uids 0..N-1.
func newShuffleCluster(t *testing.T, nLeaves, nStems, factParts, dimParts int, cfgMut func(*MasterConfig)) *shuffleCluster {
	t.Helper()
	model := sim.DefaultCostModel()
	topo := transport.NewTopology()
	fabric := transport.NewFabric(topo, transport.Options{Model: model})
	hdfs := storage.NewHDFS("hdfs", model)
	router := storage.NewRouter(storage.NewMemFS("", model))
	router.Register(hdfs)
	sc := &shuffleCluster{t: t, fabric: fabric, router: router, rec: events.New(4096)}

	for i := 0; i < nLeaves; i++ {
		name := fmt.Sprintf("leaf%d", i)
		rack := fmt.Sprintf("r%d", i/2)
		topo.Place(name, rack, "dc1")
		hdfs.AddNode(name, rack)
	}
	topo.Place("master", "r-master", "dc1")
	for i := 0; i < nStems; i++ {
		topo.Place(fmt.Sprintf("stem%d", i), fmt.Sprintf("r%d", i/2), "dc1")
	}

	nUsers := int64(dimParts * shufRowsPerPart)
	userSchema := types.MustSchema(
		types.Field{Name: "uid", Type: types.Int64},
		types.Field{Name: "name", Type: types.String},
		types.Field{Name: "region", Type: types.Int64},
	)
	orderSchema := types.MustSchema(
		types.Field{Name: "id", Type: types.Int64},
		types.Field{Name: "uid", Type: types.Int64},
		types.Field{Name: "amt", Type: types.Int64},
	)
	ctx := context.Background()

	userMeta := &plan.TableMeta{Name: "users", Schema: userSchema}
	for p := 0; p < dimParts; p++ {
		w := colstore.NewWriter(userSchema, 32)
		for r := 0; r < shufRowsPerPart; r++ {
			uid := int64(p*shufRowsPerPart + r)
			u := userRow{uid: uid, name: fmt.Sprintf("user-%d", uid), region: uid % 5}
			sc.users = append(sc.users, u)
			if err := w.Append(types.Row{types.NewInt(u.uid), types.NewString(u.name), types.NewInt(u.region)}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		path := fmt.Sprintf("/hdfs/users/p%d", p)
		if err := router.WriteFile(ctx, path, data); err != nil {
			t.Fatal(err)
		}
		userMeta.Partitions = append(userMeta.Partitions, plan.PartitionMeta{
			Path: path, Rows: shufRowsPerPart, Bytes: int64(len(data)),
		})
	}

	orderMeta := &plan.TableMeta{Name: "orders", Schema: orderSchema}
	for p := 0; p < factParts; p++ {
		w := colstore.NewWriter(orderSchema, 32)
		for r := 0; r < shufRowsPerPart; r++ {
			id := int64(p*shufRowsPerPart + r)
			o := orderRow{id: id, uid: (id * 7) % (2 * nUsers), amt: id % 100}
			sc.orders = append(sc.orders, o)
			if err := w.Append(types.Row{types.NewInt(o.id), types.NewInt(o.uid), types.NewInt(o.amt)}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		path := fmt.Sprintf("/hdfs/orders/p%d", p)
		if err := router.WriteFile(ctx, path, data); err != nil {
			t.Fatal(err)
		}
		orderMeta.Partitions = append(orderMeta.Partitions, plan.PartitionMeta{
			Path: path, Rows: shufRowsPerPart, Bytes: int64(len(data)),
		})
	}

	cfg := MasterConfig{
		Name:           "master",
		Fabric:         fabric,
		Router:         router,
		Model:          model,
		MaxTaskRetries: 3,
		LivenessWindow: time.Minute,
		Events:         sc.rec,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	sc.master = NewMaster(cfg)
	if err := sc.master.RegisterTable(ctx, orderMeta); err != nil {
		t.Fatal(err)
	}
	if err := sc.master.RegisterTable(ctx, userMeta); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < nLeaves; i++ {
		leaf := &LeafServer{
			Name:   fmt.Sprintf("leaf%d", i),
			Fabric: fabric,
			Reader: exec.NewStoreReader(router),
			Index:  core.New(core.Options{}),
			Router: router,
			Model:  model,
			Events: sc.rec,
		}
		leaf.Register()
		sc.leaves = append(sc.leaves, leaf)
	}
	for i := 0; i < nStems; i++ {
		stem := &StemServer{Name: fmt.Sprintf("stem%d", i), Fabric: fabric, Router: router, Model: model, Events: sc.rec}
		stem.Register()
		sc.stems = append(sc.stems, stem)
	}
	ctxb := context.Background()
	for _, l := range sc.leaves {
		if err := l.HeartbeatOnce(ctxb, "master"); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sc.stems {
		if err := s.HeartbeatOnce(ctxb, "master"); err != nil {
			t.Fatal(err)
		}
	}
	return sc
}

func (sc *shuffleCluster) query(sql string, opts QueryOptions) (*exec.Result, *QueryStats) {
	sc.t.Helper()
	res, stats, err := sc.master.Submit(context.Background(), sql, opts)
	if err != nil {
		sc.t.Fatalf("Submit(%q): %v", sql, err)
	}
	return res, stats
}

// rowStrings renders a result as a sorted bag of "|"-joined rows.
func rowStrings(res *exec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func assertSameRows(t *testing.T, label string, want, got *exec.Result) {
	t.Helper()
	w, g := rowStrings(want), rowStrings(got)
	if len(w) != len(g) {
		t.Fatalf("%s: %d rows, want %d", label, len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, g[i], w[i])
		}
	}
}

// repartitionOpts forces the distributed path: any join table bigger than
// one byte repartitions instead of broadcasting.
func repartitionOpts() plan.Options {
	return plan.Options{BroadcastThreshold: 1, ShufflePartitions: 5}
}

// TestShuffleJoinMatchesBroadcast runs the same join queries through the
// broadcast path and the repartition path and demands identical results —
// the cluster-level differential check for the shuffle machinery.
func TestShuffleJoinMatchesBroadcast(t *testing.T) {
	broadcast := newShuffleCluster(t, 4, 2, 4, 2, nil)
	shuffled := newShuffleCluster(t, 4, 2, 4, 2, func(cfg *MasterConfig) {
		cfg.Planner = repartitionOpts()
	})
	queries := []string{
		"SELECT COUNT(*) AS n, SUM(o.amt) AS total FROM orders o, users u WHERE o.uid = u.uid",
		"SELECT o.id AS id, u.name AS name FROM orders o JOIN users u ON o.uid = u.uid WHERE u.region = 2 ORDER BY id",
		"SELECT u.region AS region, COUNT(*) AS n, SUM(o.amt) AS total FROM orders o JOIN users u ON o.uid = u.uid GROUP BY region ORDER BY region",
		"SELECT o.id AS id, u.name AS name FROM orders o LEFT OUTER JOIN users u ON o.uid = u.uid WHERE o.amt = 7 ORDER BY id",
	}
	for _, sql := range queries {
		bres, bstats := broadcast.query(sql, QueryOptions{})
		sres, sstats := shuffled.query(sql, QueryOptions{})
		assertSameRows(t, sql, bres, sres)
		if bstats.Tasks != 4 {
			t.Errorf("%s: broadcast ran %d tasks, want 4 (one per fact partition)", sql, bstats.Tasks)
		}
		if sstats.Tasks != 6 {
			t.Errorf("%s: shuffle ran %d map tasks, want 6 (4 probe + 2 build)", sql, sstats.Tasks)
		}
		if sstats.SimTime <= 0 || sstats.ScanSimTime <= 0 {
			t.Errorf("%s: sim times not positive: %+v", sql, sstats)
		}
	}
}

// TestShuffleInnerJoinAgainstOracle brute-forces the join over the raw
// generated rows and checks the distributed result against it.
func TestShuffleInnerJoinAgainstOracle(t *testing.T) {
	sc := newShuffleCluster(t, 3, 2, 3, 2, func(cfg *MasterConfig) {
		cfg.Planner = repartitionOpts()
	})
	var wantN, wantTotal int64
	byUID := map[int64]int{}
	for _, u := range sc.users {
		byUID[u.uid]++
	}
	for _, o := range sc.orders {
		n := int64(byUID[o.uid])
		wantN += n
		wantTotal += n * o.amt
	}
	res, _ := sc.query("SELECT COUNT(*) AS n, SUM(o.amt) AS total FROM orders o, users u WHERE o.uid = u.uid", QueryOptions{})
	if res.Rows[0][0].I != wantN || res.Rows[0][1].I != wantTotal {
		t.Fatalf("got (%v, %v), want (%d, %d)", res.Rows[0][0], res.Rows[0][1], wantN, wantTotal)
	}
}

// TestShuffleRightOuterJoin checks the join type the broadcast engine
// cannot run at all: unmatched build rows must surface null-extended.
func TestShuffleRightOuterJoin(t *testing.T) {
	sc := newShuffleCluster(t, 3, 2, 3, 2, func(cfg *MasterConfig) {
		cfg.Planner = repartitionOpts()
	})
	var want []string
	matched := map[int64]bool{}
	for _, o := range sc.orders {
		for _, u := range sc.users {
			if o.uid == u.uid {
				want = append(want, fmt.Sprintf("%d|%d", u.uid, o.id))
				matched[u.uid] = true
			}
		}
	}
	for _, u := range sc.users {
		if !matched[u.uid] {
			want = append(want, fmt.Sprintf("%d|NULL", u.uid))
		}
	}
	sort.Strings(want)

	res, _ := sc.query("SELECT u.uid AS uid, o.id AS oid FROM orders o RIGHT OUTER JOIN users u ON o.uid = u.uid ORDER BY uid", QueryOptions{})
	got := rowStrings(res)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestShuffleGroupByMatchesCentralMerge forces the group-by shuffle (every
// grouped aggregation repartitions) and compares with the classic
// master-side merge.
func TestShuffleGroupByMatchesCentralMerge(t *testing.T) {
	central := newShuffleCluster(t, 4, 2, 4, 1, nil)
	shuffled := newShuffleCluster(t, 4, 2, 4, 1, func(cfg *MasterConfig) {
		cfg.Planner = plan.Options{GroupShuffleRows: 1, ShufflePartitions: 3}
	})
	sql := "SELECT amt, COUNT(*) AS n, SUM(id) AS s, AVG(id) AS a FROM orders GROUP BY amt ORDER BY amt"
	cres, cstats := central.query(sql, QueryOptions{})
	sres, sstats := shuffled.query(sql, QueryOptions{})
	assertSameRows(t, sql, cres, sres)
	if cstats.SimTime <= 0 || sstats.SimTime <= 0 {
		t.Errorf("sim times not positive: central %v, shuffled %v", cstats.SimTime, sstats.SimTime)
	}
}

// TestShuffleWithoutStems exercises the standby shape: no stems at all, so
// the master doubles as the sole reducer through its local stem.
func TestShuffleWithoutStems(t *testing.T) {
	sc := newShuffleCluster(t, 3, 0, 3, 1, func(cfg *MasterConfig) {
		cfg.Planner = repartitionOpts()
	})
	var want int64
	nUsers := int64(len(sc.users))
	for _, o := range sc.orders {
		if o.uid < nUsers {
			want++
		}
	}
	res, stats := sc.query("SELECT COUNT(*) AS n FROM orders o, users u WHERE o.uid = u.uid", QueryOptions{})
	if res.Rows[0][0].I != want {
		t.Fatalf("count = %v, want %d", res.Rows[0][0], want)
	}
	if stats.Tasks != 4 {
		t.Errorf("tasks = %d, want 4 (3 probe + 1 build)", stats.Tasks)
	}
}

// TestShuffleReducerSpill shrinks the reducer memory grant to one byte so
// every partition grace-hash spills through the storage router, and checks
// the result is unchanged and the spill was billed.
func TestShuffleReducerSpill(t *testing.T) {
	clean := newShuffleCluster(t, 3, 2, 3, 2, func(cfg *MasterConfig) {
		cfg.Planner = repartitionOpts()
	})
	spilling := newShuffleCluster(t, 3, 2, 3, 2, func(cfg *MasterConfig) {
		opts := repartitionOpts()
		opts.MemoryGrantBytes = 1
		cfg.Planner = opts
	})
	sql := "SELECT o.id AS id, u.name AS name FROM orders o JOIN users u ON o.uid = u.uid ORDER BY id"
	cres, cstats := clean.query(sql, QueryOptions{})
	sres, sstats := spilling.query(sql, QueryOptions{})
	assertSameRows(t, sql, cres, sres)
	if cstats.ShuffleSpillBytes != 0 {
		t.Errorf("clean run spilled %d bytes", cstats.ShuffleSpillBytes)
	}
	if sstats.ShuffleSpillBytes == 0 {
		t.Error("spilling run reported no spill bytes")
	}
	spillEvents := 0
	for _, e := range spilling.rec.Events() {
		if e.Kind == events.ShuffleSpill {
			spillEvents++
		}
	}
	if spillEvents == 0 {
		t.Error("no shuffle.spill events recorded")
	}
}

// frameDropper drops the first N Shuffle-class messages.
type frameDropper struct {
	remaining atomic.Int64
}

func (f *frameDropper) Intercept(ctx context.Context, from, to string, class transport.Class, size int64) transport.Fault {
	if class == transport.Shuffle && f.remaining.Add(-1) >= 0 {
		return transport.Fault{Drop: true}
	}
	return transport.Fault{}
}

// TestShuffleRetriesDroppedFrames injects frame drops mid-shuffle: the
// affected map attempts fail, the master retries them on other leaves, the
// reducers commit exactly one attempt per map task, and the result is
// identical to a clean run.
func TestShuffleRetriesDroppedFrames(t *testing.T) {
	clean := newShuffleCluster(t, 4, 2, 4, 2, func(cfg *MasterConfig) {
		cfg.Planner = repartitionOpts()
	})
	faulty := newShuffleCluster(t, 4, 2, 4, 2, func(cfg *MasterConfig) {
		cfg.Planner = repartitionOpts()
		cfg.RetryBackoff = time.Microsecond
	})
	dropper := &frameDropper{}
	dropper.remaining.Store(3)
	faulty.fabric.SetInterceptor(dropper)
	defer faulty.fabric.SetInterceptor(nil)

	sql := "SELECT u.region AS region, COUNT(*) AS n FROM orders o JOIN users u ON o.uid = u.uid GROUP BY region ORDER BY region"
	cres, _ := clean.query(sql, QueryOptions{})
	fres, fstats := faulty.query(sql, QueryOptions{})
	assertSameRows(t, sql, cres, fres)
	if fstats.BackupTasks == 0 {
		t.Error("no retries recorded despite dropped frames")
	}
	qid := fstats.QueryID
	retries, commits := 0, map[string]int{}
	for _, e := range faulty.rec.ForQuery(qid) {
		switch e.Kind {
		case events.ShuffleRetry:
			retries++
		case events.ShuffleCommit:
			commits[e.Site]++
		}
	}
	if retries == 0 {
		t.Error("no shuffle.retry events in the flight recorder")
	}
	// Each reducer commits each map task exactly once, whatever the retry
	// interleaving — the determinism guarantee the reduce relies on.
	for site, n := range commits {
		if n > 2 { // one commit per reducer, two reducers share a site key
			t.Errorf("site %s committed %d times", site, n)
		}
	}
}

// TestShuffleFailsTypedWhenLeavesDie kills enough leaves that a map task
// cannot be placed anywhere: the query must fail with ErrShuffleFailed
// (never a silent partial result), even when PartialResults is set.
func TestShuffleFailsTypedWhenLeavesDie(t *testing.T) {
	sc := newShuffleCluster(t, 3, 2, 3, 1, func(cfg *MasterConfig) {
		cfg.Planner = repartitionOpts()
		cfg.RetryBackoff = time.Microsecond
	})
	for _, l := range sc.leaves {
		sc.fabric.SetDown(l.Name, true)
	}
	_, _, err := sc.master.Submit(context.Background(),
		"SELECT COUNT(*) AS n FROM orders o, users u WHERE o.uid = u.uid",
		QueryOptions{PartialResults: true})
	if err == nil {
		t.Fatal("query succeeded with every leaf down")
	}
	if !errors.Is(err, ErrShuffleFailed) {
		t.Fatalf("error %v, want ErrShuffleFailed", err)
	}
}

// TestShuffleExplainAndAnalyze pins the observable plan/trace surface: the
// plan text names the repartition, and the executed trace carves shuffle
// transfer into its own critical-path segment.
func TestShuffleExplainAndAnalyze(t *testing.T) {
	sc := newShuffleCluster(t, 3, 2, 3, 2, func(cfg *MasterConfig) {
		cfg.Planner = repartitionOpts()
	})
	res, _ := sc.query("EXPLAIN SELECT COUNT(*) AS n FROM orders o, users u WHERE o.uid = u.uid", QueryOptions{})
	planText := resultText(res)
	if !strings.Contains(planText, "repartition inner join users") {
		t.Errorf("EXPLAIN lacks repartition line:\n%s", planText)
	}
	res, _ = sc.query("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM orders o, users u WHERE o.uid = u.uid", QueryOptions{})
	text := resultText(res)
	for _, want := range []string{"shuffle-map", "shuffle-transfer", "shuffle-reduce", "task#"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE lacks %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "critical path") {
		t.Errorf("EXPLAIN ANALYZE lacks critical path:\n%s", text)
	}
}

func resultText(res *exec.Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		sb.WriteString(row[0].S)
		sb.WriteString("\n")
	}
	return sb.String()
}
