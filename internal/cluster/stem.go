package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
)

// StemServer is an internal node of the execution tree: it dispatches
// sub-plans to leaves, pulls results (reading spilled payloads from global
// storage when needed) and merges them bottom-up (paper §III-B).
type StemServer struct {
	Name   string
	Fabric transport.Network
	// Router reads spilled results.
	Router *storage.Router
	// Model prices reply transfers into per-task sim times.
	Model *sim.CostModel
	// Parallelism bounds concurrent leaf calls; <=0 means one per task.
	Parallelism int
	// Events, when set, journals task dispatch and hedge decisions into the
	// flight recorder.
	Events *events.Recorder

	active atomic.Int32
	queued atomic.Int32 // tasks admitted but waiting for a parallelism slot
	tasks  atomic.Int64 // lifetime dispatched tasks
	life   lifecycle

	// shuffleMu guards shuffles, the reducer-side staging area for
	// repartition exchanges (keyed by exchange ID).
	shuffleMu sync.Mutex
	shuffles  map[string]*shuffleExchange
}

// Register attaches the stem to the fabric.
func (s *StemServer) Register() {
	s.Fabric.Register(s.Name, s.handle)
}

func (s *StemServer) handle(ctx context.Context, from string, payload any) (any, error) {
	switch msg := payload.(type) {
	case pingMsg:
		return pingReply{Kind: KindStem, ActiveTasks: int(s.active.Load())}, nil
	case stemJobMsg:
		return s.runJob(ctx, msg)
	case shuffleFrameMsg:
		return s.handleShuffleFrame(msg)
	case shuffleEndMsg:
		return s.handleShuffleEnd(msg)
	case shuffleReduceMsg:
		return s.handleShuffleReduce(ctx, msg)
	case shuffleCleanupMsg:
		return s.handleShuffleCleanup(msg)
	default:
		return nil, fmt.Errorf("cluster: stem %s: unknown message %T", s.Name, payload)
	}
}

// runJob fans the tasks out to their assigned leaves and merges what comes
// back. Failed or timed-out tasks are reported per ordinal; the master's
// scheduler issues backup tasks for them.
func (s *StemServer) runJob(ctx context.Context, job stemJobMsg) (any, error) {
	s.active.Add(int32(len(job.Tasks)))
	defer s.active.Add(-int32(len(job.Tasks)))
	ctx, span := trace.StartSpan(ctx, "stem/"+s.Name)
	defer span.Finish()
	span.Count("tasks", int64(len(job.Tasks)))

	par := s.Parallelism
	if par <= 0 || par > len(job.Tasks) {
		par = len(job.Tasks)
	}
	if par == 0 {
		return stemReply{Status: map[int]taskStatus{}}, nil
	}
	sem := make(chan struct{}, par)
	// Per-leaf slot bounding: the stem-side half of the scheduler's slot
	// accounting. Each leaf gets its own semaphore so a deep backlog on one
	// leaf throttles only that leaf's tasks; the slot is taken inside the
	// task goroutine, so a saturated leaf never head-of-line-blocks dispatch
	// to its siblings. Hedged backups bypass it (speculative duplicates are
	// rare and latency-critical).
	var leafSem map[string]chan struct{}
	if job.LeafSlots > 0 {
		leafSem = make(map[string]chan struct{})
		for _, task := range job.Tasks {
			if l := job.Assign[task.Ordinal]; leafSem[l] == nil {
				leafSem[l] = make(chan struct{}, job.LeafSlots)
			}
		}
	}
	var (
		mu      sync.Mutex
		merged  *exec.TaskResult
		perTask map[int]*exec.TaskResult
		status  = make(map[int]taskStatus, len(job.Tasks))
		wg      sync.WaitGroup
	)
	if job.PerTask {
		perTask = make(map[int]*exec.TaskResult, len(job.Tasks))
	}
	for _, task := range job.Tasks {
		leaf := job.Assign[task.Ordinal]
		wg.Add(1)
		s.queued.Add(1)
		sem <- struct{}{}
		s.queued.Add(-1)
		s.tasks.Add(1)
		go func(task plan.TaskSpec, leaf string) {
			defer wg.Done()
			defer func() { <-sem }()
			if ls := leafSem[leaf]; ls != nil {
				s.queued.Add(1)
				ls <- struct{}{}
				s.queued.Add(-1)
				defer func() { <-ls }()
			}
			if job.QueryID != "" {
				s.Events.Emit(events.TaskSite(job.QueryID, task.Ordinal), events.TaskDispatched,
					job.QueryID, task.Ordinal, leaf+" via "+s.Name)
			}
			res, st := s.runOne(ctx, job, task, leaf)
			mu.Lock()
			status[task.Ordinal] = st
			if st.OK {
				if job.PerTask {
					perTask[task.Ordinal] = res
				} else {
					merged = exec.MergeResults(job.Plan, merged, res)
				}
			}
			mu.Unlock()
		}(task, leaf)
	}
	wg.Wait()
	// The stem's simulated time is its critical path: the slowest task it
	// waited on (tasks run in parallel under the cost model).
	var busiest time.Duration
	for _, st := range status {
		if st.OK && st.SimTime > busiest {
			busiest = st.SimTime
		}
	}
	span.SetSim(busiest)
	return stemReply{Merged: merged, PerTask: perTask, Status: status}, nil
}

// runOne executes one task, hedging a speculative duplicate on the job's
// backup leaf when the scheduler flagged the primary's placement as a
// straggler: the backup fires after HedgeDelay (or immediately if the
// primary fails first) and the first successful attempt wins; the loser's
// context is cancelled.
func (s *StemServer) runOne(ctx context.Context, job stemJobMsg, task plan.TaskSpec, leaf string) (*exec.TaskResult, taskStatus) {
	start := time.Now()
	backup, hedgeable := job.Backup[task.Ordinal]
	if !hedgeable || backup == leaf || job.HedgeDelay <= 0 {
		res, st := s.attempt(ctx, job, task, leaf)
		st.Wall = time.Since(start)
		return res, st
	}
	type outcome struct {
		res    *exec.TaskResult
		st     taskStatus
		backup bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan outcome, 2) // buffered: the abandoned loser must not block
	launch := func(on string, isBackup bool) {
		go func() {
			res, st := s.attempt(hctx, job, task, on)
			results <- outcome{res, st, isBackup}
		}()
	}
	launch(leaf, false)
	hedge := time.NewTimer(job.HedgeDelay)
	defer hedge.Stop()
	fire := func() {
		s.tasks.Add(1)
		if job.QueryID != "" {
			s.Events.Emit(events.TaskSite(job.QueryID, task.Ordinal), events.TaskHedge,
				job.QueryID, task.Ordinal, "backup on "+backup)
		}
		launch(backup, true)
	}
	inflight, fired := 1, false
	var lastFail outcome
	for inflight > 0 {
		select {
		case <-hedge.C:
			if !fired {
				fired = true
				inflight++
				fire()
			}
		case out := <-results:
			inflight--
			if out.st.OK {
				cancel() // first result wins
				out.st.Hedged = fired
				out.st.HedgeWon = out.backup
				out.st.Wall = time.Since(start)
				if out.backup && job.QueryID != "" {
					s.Events.Emit(events.TaskSite(job.QueryID, task.Ordinal), events.TaskHedgeWon,
						job.QueryID, task.Ordinal, "backup "+out.st.Leaf+" beat primary "+leaf)
				}
				return out.res, out.st
			}
			lastFail = out
			if !fired {
				// The primary failed before the hedge delay elapsed; fire
				// the backup now instead of waiting out the timer.
				fired = true
				inflight++
				fire()
			}
		}
	}
	lastFail.st.Hedged = fired
	lastFail.st.Wall = time.Since(start)
	return lastFail.res, lastFail.st
}

// attempt executes a single task on one leaf with the per-task timeout.
func (s *StemServer) attempt(ctx context.Context, job stemJobMsg, task plan.TaskSpec, leaf string) (*exec.TaskResult, taskStatus) {
	st := taskStatus{Leaf: leaf}
	tctx := ctx
	if job.TaskTimeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, job.TaskTimeout)
		defer cancel()
	}
	tctx, span := trace.StartSpan(tctx, fmt.Sprintf("task#%d @ %s", task.Ordinal, leaf))
	defer span.Finish()
	raw, err := s.Fabric.Call(tctx, s.Name, leaf, transport.Control, taskMsg{Task: task, QueryID: job.QueryID}, 256)
	if err != nil {
		st.Err = err.Error()
		st.Unreachable = errors.Is(err, transport.ErrUnknownNode)
		return nil, st
	}
	reply, ok := raw.(taskReply)
	if !ok {
		st.Err = fmt.Sprintf("unexpected reply %T", raw)
		return nil, st
	}
	// The leaf's reply carries its execution-only bill; spill-fetch and
	// reply-transfer costs accrue on top of it below.
	st.ScanSim = reply.SimTime
	res := reply.Result
	if reply.SpillPath != "" {
		bill := sim.NewBill()
		data, err := s.Router.ReadFile(storage.WithBill(ctx, bill), reply.SpillPath)
		if err != nil {
			st.Err = fmt.Sprintf("fetch spill %s: %v", reply.SpillPath, err)
			return nil, st
		}
		res, err = decodeResult(data)
		if err != nil {
			st.Err = err.Error()
			return nil, st
		}
		reply.SimTime += bill.Time()
		sp := span.Child("spill-fetch")
		sp.SetSim(bill.Time())
		sp.Count("bytes", int64(len(data)))
		sp.Finish()
	}
	// The result rides the read flow back up the tree; charge its
	// transfer into the task's simulated time.
	s.Fabric.Counters().Msgs[transport.Read].Inc()
	s.Fabric.Counters().Bytes[transport.Read].Add(reply.Size)
	if s.Model != nil {
		if hops := s.Fabric.Topology().Hops(leaf, s.Name); hops > 0 {
			cost := s.Model.TransferCost(reply.Size, hops)
			reply.SimTime += cost
			sp := span.Child("reply-transfer")
			sp.SetSim(cost)
			sp.Count("bytes", reply.Size)
			sp.Finish()
		}
	}
	// The task span's sim time is the full task response time: leaf
	// execution plus spill fetch plus reply transfer.
	span.SetSim(reply.SimTime)
	st.OK = true
	st.SimTime = reply.SimTime
	st.Size = reply.Size
	st.DevBytes = reply.DevBytes
	return res, st
}

// LoadSnapshot assembles the stem's current load.
func (s *StemServer) LoadSnapshot() LoadSnapshot {
	return LoadSnapshot{
		ActiveTasks: int(s.active.Load()),
		QueueDepth:  int(s.queued.Load()),
		TasksDone:   s.tasks.Load(),
	}
}

// HeartbeatOnce sends one heartbeat to the master.
func (s *StemServer) HeartbeatOnce(ctx context.Context, master string) error {
	load := s.LoadSnapshot()
	_, err := s.Fabric.Call(ctx, s.Name, master, transport.Control,
		heartbeatMsg{Name: s.Name, Kind: KindStem, Active: load.ActiveTasks, Load: load}, 64)
	return err
}

// Start launches the heartbeat loop. Both Start and Stop are safe to call
// concurrently; a second Start while running is a no-op.
func (s *StemServer) Start(master string, interval time.Duration) {
	s.life.start(func(stop <-chan struct{}) {
		heartbeatLoop(stop, interval, func() {
			_ = s.HeartbeatOnce(context.Background(), master)
		})
	})
}

// Stop ends the heartbeat loop; extra or concurrent Stops are no-ops.
func (s *StemServer) Stop() {
	s.life.halt()
}
