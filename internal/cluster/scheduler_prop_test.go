package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/transport"
)

// mapLocator is a fixed partition→holders placement for scheduler tests.
type mapLocator map[string][]string

func (m mapLocator) Locations(path string) []string { return m[path] }

func taskFor(path string) plan.TaskSpec {
	return plan.TaskSpec{Partition: plan.PartitionMeta{Path: path}}
}

// schedState is one randomly generated cluster state for the property run.
type schedState struct {
	sched  *JobScheduler
	mgr    *ClusterManager
	alive  []string
	loads  map[string]int
	holder map[string]bool // alive holders of the probed partition
}

// genState builds a random scheduler state: n leaves, a random alive subset,
// random heartbeat loads, random replica holders for partition /p, and a
// random slot cap.
func genState(rng *rand.Rand) schedState {
	n := 2 + rng.Intn(6) // 2..7 leaves
	mgr := NewClusterManager(time.Minute)
	fixed := time.Unix(1_480_000_000, 0)
	mgr.Now = func() time.Time { return fixed }
	topo := transport.NewTopology()

	st := schedState{
		mgr:    mgr,
		loads:  map[string]int{},
		holder: map[string]bool{},
	}
	var all []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("leaf-%d", i)
		all = append(all, name)
		topo.Place(name, fmt.Sprintf("rack-%d", rng.Intn(3)), "dc-0")
		if rng.Intn(4) == 0 {
			continue // dead: never heartbeats
		}
		load := rng.Intn(6)
		mgr.HeartbeatLoad(name, KindLeaf, LoadSnapshot{ActiveTasks: load})
		st.alive = append(st.alive, name)
		st.loads[name] = load
	}
	holders := make([]string, 0, 2)
	for _, l := range all {
		if rng.Intn(3) == 0 {
			holders = append(holders, l)
		}
	}
	for _, h := range holders {
		if mgr.Alive(h) {
			st.holder[h] = true
		}
	}
	slots := 0
	if rng.Intn(2) == 0 {
		slots = 1 + rng.Intn(5)
	}
	st.sched = &JobScheduler{
		Manager:      mgr,
		Locator:      mapLocator{"/p": holders},
		Topo:         topo,
		SlotsPerLeaf: slots,
	}
	return st
}

// TestPlaceProperties drives Place over many random cluster states and
// checks the scheduler's invariants (ISSUE satellite 2):
//
//  1. the placed leaf is always alive;
//  2. with no slot cap, the placed leaf is a data holder whenever any
//     holder is alive;
//  3. with a slot cap, the placed leaf is under the cap whenever any
//     alive candidate is under the cap (the cap is only ever waived when
//     the whole fleet is saturated).
func TestPlaceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 2000; iter++ {
		st := genState(rng)
		leaf, err := st.sched.Place(taskFor("/p"), nil)
		if len(st.alive) == 0 {
			if err == nil {
				t.Fatalf("iter %d: no alive leaves but Place returned %q", iter, leaf)
			}
			continue
		}
		if err != nil {
			t.Fatalf("iter %d: Place failed with %d alive leaves: %v", iter, len(st.alive), err)
		}
		if !st.mgr.Alive(leaf) {
			t.Fatalf("iter %d: placed on dead leaf %q (alive=%v)", iter, leaf, st.alive)
		}
		if st.sched.SlotsPerLeaf <= 0 && len(st.holder) > 0 && !st.holder[leaf] {
			t.Fatalf("iter %d: placed on non-holder %q while holders %v are alive (no slot cap)",
				iter, leaf, st.holder)
		}
		if cap := st.sched.SlotsPerLeaf; cap > 0 {
			anyOpen := false
			for _, a := range st.alive {
				if st.loads[a] < cap {
					anyOpen = true
				}
			}
			if anyOpen && st.loads[leaf] >= cap {
				t.Fatalf("iter %d: placed on saturated leaf %q (load=%d cap=%d) while capacity existed",
					iter, leaf, st.loads[leaf], cap)
			}
		}
	}
}

// TestPlaceLoadAwareTieBreaks pins the deterministic selection order on
// hand-built states: holder preference, load tie-breaks, lexicographic final
// tie-break, distance-first fallback, slot-cap shedding and cap waiver.
func TestPlaceLoadAwareTieBreaks(t *testing.T) {
	fixed := time.Unix(1_480_000_000, 0)
	build := func(loads map[string]int, holders []string, slots int, topoFn func(*transport.Topology)) *JobScheduler {
		mgr := NewClusterManager(time.Minute)
		mgr.Now = func() time.Time { return fixed }
		topo := transport.NewTopology()
		for name, load := range loads {
			mgr.HeartbeatLoad(name, KindLeaf, LoadSnapshot{ActiveTasks: load})
			topo.Place(name, "rack-a", "dc-0")
		}
		if topoFn != nil {
			topoFn(topo)
		}
		return &JobScheduler{
			Manager:      mgr,
			Locator:      mapLocator{"/p": holders},
			Topo:         topo,
			SlotsPerLeaf: slots,
		}
	}

	cases := []struct {
		name    string
		loads   map[string]int
		holders []string
		slots   int
		topoFn  func(*transport.Topology)
		want    string
	}{
		{
			name:    "least loaded holder wins",
			loads:   map[string]int{"l1": 5, "l2": 1, "l3": 0},
			holders: []string{"l1", "l2"},
			want:    "l2",
		},
		{
			name:    "equal holder load ties by name",
			loads:   map[string]int{"l2": 3, "l1": 3, "l3": 0},
			holders: []string{"l2", "l1"},
			want:    "l1",
		},
		{
			name:    "dead holders fall back to nearest leaf",
			loads:   map[string]int{"l1": 2, "l2": 2},
			holders: []string{"gone"},
			topoFn: func(topo *transport.Topology) {
				topo.Place("gone", "rack-b", "dc-0")
				topo.Place("l2", "rack-b", "dc-0") // same rack as the holder
			},
			want: "l2",
		},
		{
			name:    "equal distance breaks by load",
			loads:   map[string]int{"l1": 4, "l2": 1},
			holders: nil, // location-free: distance 0 from everyone
			want:    "l2",
		},
		{
			name:    "equal distance and load break by name",
			loads:   map[string]int{"l2": 2, "l1": 2},
			holders: nil,
			want:    "l1",
		},
		{
			name:    "saturated holder sheds to open replica peer",
			loads:   map[string]int{"l1": 4, "l2": 0},
			holders: []string{"l1"},
			slots:   2,
			want:    "l2", // l1 holds the data but is over the 2-slot cap
		},
		{
			name:    "cap waived when every leaf is saturated",
			loads:   map[string]int{"l1": 9, "l2": 7},
			holders: []string{"l1"},
			slots:   2,
			want:    "l1", // all over cap: waive it, data locality wins again
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := build(tc.loads, tc.holders, tc.slots, tc.topoFn)
			got, err := s.Place(taskFor("/p"), nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("Place = %q, want %q", got, tc.want)
			}
		})
	}

	t.Run("exclude removes a candidate", func(t *testing.T) {
		s := build(map[string]int{"l1": 0, "l2": 5}, []string{"l1", "l2"}, 0, nil)
		got, err := s.Place(taskFor("/p"), map[string]bool{"l1": true})
		if err != nil {
			t.Fatal(err)
		}
		if got != "l2" {
			t.Errorf("Place with l1 excluded = %q, want l2", got)
		}
	})

	t.Run("no alive leaf errors", func(t *testing.T) {
		s := build(nil, nil, 0, nil)
		if _, err := s.Place(taskFor("/p"), nil); err == nil {
			t.Error("Place on an empty cluster should error")
		}
	})

	t.Run("planall charges and releases inflight slots", func(t *testing.T) {
		s := build(map[string]int{"l1": 0, "l2": 0}, []string{"l1"}, 0, nil)
		tasks := []plan.TaskSpec{taskFor("/p"), taskFor("/p"), taskFor("/p")}
		for i := range tasks {
			tasks[i].Ordinal = i
		}
		assign, err := s.PlanAll(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if len(assign) != 3 {
			t.Fatalf("assigned %d tasks, want 3", len(assign))
		}
		total := s.Manager.Load("l1") + s.Manager.Load("l2")
		if total != 3 {
			t.Errorf("inflight after PlanAll = %d, want 3 (slots held until release)", total)
		}
		for _, leaf := range assign {
			s.ReleaseTask(leaf)
		}
		if got := s.Manager.Load("l1") + s.Manager.Load("l2"); got != 0 {
			t.Errorf("inflight after release = %d, want 0", got)
		}
	})
}
