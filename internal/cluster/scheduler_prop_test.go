package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/transport"
)

// mapLocator is a fixed partition→holders placement for scheduler tests.
type mapLocator map[string][]string

func (m mapLocator) Locations(path string) []string { return m[path] }

func taskFor(path string) plan.TaskSpec {
	return plan.TaskSpec{Partition: plan.PartitionMeta{Path: path}}
}

// schedState is one randomly generated cluster state for the property run.
type schedState struct {
	sched  *JobScheduler
	mgr    *ClusterManager
	alive  []string
	loads  map[string]int
	holder map[string]bool // alive holders of the probed partition
}

// genState builds a random scheduler state: n leaves, a random alive subset,
// random heartbeat loads, random replica holders for partition /p, and a
// random slot cap.
func genState(rng *rand.Rand) schedState {
	n := 2 + rng.Intn(6) // 2..7 leaves
	mgr := NewClusterManager(time.Minute)
	fixed := time.Unix(1_480_000_000, 0)
	mgr.Now = func() time.Time { return fixed }
	topo := transport.NewTopology()

	st := schedState{
		mgr:    mgr,
		loads:  map[string]int{},
		holder: map[string]bool{},
	}
	var all []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("leaf-%d", i)
		all = append(all, name)
		topo.Place(name, fmt.Sprintf("rack-%d", rng.Intn(3)), "dc-0")
		if rng.Intn(4) == 0 {
			continue // dead: never heartbeats
		}
		load := rng.Intn(6)
		mgr.HeartbeatLoad(name, KindLeaf, LoadSnapshot{ActiveTasks: load})
		st.alive = append(st.alive, name)
		st.loads[name] = load
	}
	holders := make([]string, 0, 2)
	for _, l := range all {
		if rng.Intn(3) == 0 {
			holders = append(holders, l)
		}
	}
	for _, h := range holders {
		if mgr.Alive(h) {
			st.holder[h] = true
		}
	}
	slots := 0
	if rng.Intn(2) == 0 {
		slots = 1 + rng.Intn(5)
	}
	st.sched = &JobScheduler{
		Manager:      mgr,
		Locator:      mapLocator{"/p": holders},
		Topo:         topo,
		SlotsPerLeaf: slots,
	}
	return st
}

// TestPlaceProperties drives Place over many random cluster states and
// checks the scheduler's invariants (ISSUE satellite 2):
//
//  1. the placed leaf is always alive;
//  2. with no slot cap, the placed leaf is a data holder whenever any
//     holder is alive;
//  3. with a slot cap, the placed leaf is under the cap whenever any
//     alive candidate is under the cap (the cap is only ever waived when
//     the whole fleet is saturated).
func TestPlaceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 2000; iter++ {
		st := genState(rng)
		leaf, err := st.sched.Place(taskFor("/p"), nil)
		if len(st.alive) == 0 {
			if err == nil {
				t.Fatalf("iter %d: no alive leaves but Place returned %q", iter, leaf)
			}
			continue
		}
		if err != nil {
			t.Fatalf("iter %d: Place failed with %d alive leaves: %v", iter, len(st.alive), err)
		}
		if !st.mgr.Alive(leaf) {
			t.Fatalf("iter %d: placed on dead leaf %q (alive=%v)", iter, leaf, st.alive)
		}
		if st.sched.SlotsPerLeaf <= 0 && len(st.holder) > 0 && !st.holder[leaf] {
			t.Fatalf("iter %d: placed on non-holder %q while holders %v are alive (no slot cap)",
				iter, leaf, st.holder)
		}
		if cap := st.sched.SlotsPerLeaf; cap > 0 {
			anyOpen := false
			for _, a := range st.alive {
				if st.loads[a] < cap {
					anyOpen = true
				}
			}
			if anyOpen && st.loads[leaf] >= cap {
				t.Fatalf("iter %d: placed on saturated leaf %q (load=%d cap=%d) while capacity existed",
					iter, leaf, st.loads[leaf], cap)
			}
		}
	}
}

// TestPlaceLoadAwareTieBreaks pins the deterministic selection order on
// hand-built states: holder preference, load tie-breaks, lexicographic final
// tie-break, distance-first fallback, slot-cap shedding and cap waiver.
func TestPlaceLoadAwareTieBreaks(t *testing.T) {
	fixed := time.Unix(1_480_000_000, 0)
	build := func(loads map[string]int, holders []string, slots int, topoFn func(*transport.Topology)) *JobScheduler {
		mgr := NewClusterManager(time.Minute)
		mgr.Now = func() time.Time { return fixed }
		topo := transport.NewTopology()
		for name, load := range loads {
			mgr.HeartbeatLoad(name, KindLeaf, LoadSnapshot{ActiveTasks: load})
			topo.Place(name, "rack-a", "dc-0")
		}
		if topoFn != nil {
			topoFn(topo)
		}
		return &JobScheduler{
			Manager:      mgr,
			Locator:      mapLocator{"/p": holders},
			Topo:         topo,
			SlotsPerLeaf: slots,
		}
	}

	cases := []struct {
		name    string
		loads   map[string]int
		holders []string
		slots   int
		topoFn  func(*transport.Topology)
		want    string
	}{
		{
			name:    "least loaded holder wins",
			loads:   map[string]int{"l1": 5, "l2": 1, "l3": 0},
			holders: []string{"l1", "l2"},
			want:    "l2",
		},
		{
			name:    "equal holder load ties by name",
			loads:   map[string]int{"l2": 3, "l1": 3, "l3": 0},
			holders: []string{"l2", "l1"},
			want:    "l1",
		},
		{
			name:    "dead holders fall back to nearest leaf",
			loads:   map[string]int{"l1": 2, "l2": 2},
			holders: []string{"gone"},
			topoFn: func(topo *transport.Topology) {
				topo.Place("gone", "rack-b", "dc-0")
				topo.Place("l2", "rack-b", "dc-0") // same rack as the holder
			},
			want: "l2",
		},
		{
			name:    "equal distance breaks by load",
			loads:   map[string]int{"l1": 4, "l2": 1},
			holders: nil, // location-free: distance 0 from everyone
			want:    "l2",
		},
		{
			name:    "equal distance and load break by name",
			loads:   map[string]int{"l2": 2, "l1": 2},
			holders: nil,
			want:    "l1",
		},
		{
			name:    "saturated holder sheds to open replica peer",
			loads:   map[string]int{"l1": 4, "l2": 0},
			holders: []string{"l1"},
			slots:   2,
			want:    "l2", // l1 holds the data but is over the 2-slot cap
		},
		{
			name:    "cap waived when every leaf is saturated",
			loads:   map[string]int{"l1": 9, "l2": 7},
			holders: []string{"l1"},
			slots:   2,
			want:    "l1", // all over cap: waive it, data locality wins again
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := build(tc.loads, tc.holders, tc.slots, tc.topoFn)
			got, err := s.Place(taskFor("/p"), nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("Place = %q, want %q", got, tc.want)
			}
		})
	}

	t.Run("exclude removes a candidate", func(t *testing.T) {
		s := build(map[string]int{"l1": 0, "l2": 5}, []string{"l1", "l2"}, 0, nil)
		got, err := s.Place(taskFor("/p"), map[string]bool{"l1": true})
		if err != nil {
			t.Fatal(err)
		}
		if got != "l2" {
			t.Errorf("Place with l1 excluded = %q, want l2", got)
		}
	})

	t.Run("no alive leaf errors", func(t *testing.T) {
		s := build(nil, nil, 0, nil)
		if _, err := s.Place(taskFor("/p"), nil); err == nil {
			t.Error("Place on an empty cluster should error")
		}
	})

	t.Run("planall charges and releases inflight slots", func(t *testing.T) {
		s := build(map[string]int{"l1": 0, "l2": 0}, []string{"l1"}, 0, nil)
		tasks := []plan.TaskSpec{taskFor("/p"), taskFor("/p"), taskFor("/p")}
		for i := range tasks {
			tasks[i].Ordinal = i
		}
		assign, err := s.PlanAll(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if len(assign) != 3 {
			t.Fatalf("assigned %d tasks, want 3", len(assign))
		}
		total := s.Manager.Load("l1") + s.Manager.Load("l2")
		if total != 3 {
			t.Errorf("inflight after PlanAll = %d, want 3 (slots held until release)", total)
		}
		for _, leaf := range assign {
			s.ReleaseTask(leaf)
		}
		if got := s.Manager.Load("l1") + s.Manager.Load("l2"); got != 0 {
			t.Errorf("inflight after release = %d, want 0", got)
		}
	})
}

// TestPlaceAffinity pins the cache-affinity placement mode: a partition maps
// to a stable leaf (holders preferred), saturated leaves leave the rendezvous
// domain, and a fully saturated fleet falls back to load-aware placement.
func TestPlaceAffinity(t *testing.T) {
	fixed := time.Unix(1_480_000_000, 0)
	build := func(loads map[string]int, holders map[string][]string, slots int) *JobScheduler {
		mgr := NewClusterManager(time.Minute)
		mgr.Now = func() time.Time { return fixed }
		topo := transport.NewTopology()
		for name, load := range loads {
			mgr.HeartbeatLoad(name, KindLeaf, LoadSnapshot{ActiveTasks: load})
			topo.Place(name, "rack-a", "dc-0")
		}
		return &JobScheduler{
			Manager:      mgr,
			Locator:      mapLocator(holders),
			Topo:         topo,
			SlotsPerLeaf: slots,
			Affinity:     true,
		}
	}

	t.Run("same partition same leaf", func(t *testing.T) {
		loads := map[string]int{"l1": 0, "l2": 0, "l3": 0}
		s := build(loads, nil, 0)
		first, err := s.Place(taskFor("/t/part-7"), nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			// Perturb the loads: affinity must not chase the least-loaded leaf.
			for name := range loads {
				s.Manager.HeartbeatLoad(name, KindLeaf, LoadSnapshot{ActiveTasks: i * 2})
			}
			got, err := s.Place(taskFor("/t/part-7"), nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != first {
				t.Fatalf("placement moved: %q then %q", first, got)
			}
		}
	})

	t.Run("partitions spread across leaves", func(t *testing.T) {
		s := build(map[string]int{"l1": 0, "l2": 0, "l3": 0}, nil, 0)
		seen := map[string]bool{}
		for i := 0; i < 32; i++ {
			leaf, err := s.Place(taskFor(fmt.Sprintf("/t/part-%d", i)), nil)
			if err != nil {
				t.Fatal(err)
			}
			seen[leaf] = true
		}
		if len(seen) < 2 {
			t.Errorf("32 partitions all landed on one leaf: %v", seen)
		}
	})

	t.Run("holders preferred", func(t *testing.T) {
		s := build(map[string]int{"l1": 0, "l2": 0, "l3": 0},
			map[string][]string{"/t/p": {"l3"}}, 0)
		got, err := s.Place(taskFor("/t/p"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != "l3" {
			t.Errorf("Place = %q, want holder l3", got)
		}
	})

	t.Run("saturated leaf leaves the domain", func(t *testing.T) {
		// Find the affinity winner with all open, saturate it, and check the
		// partition remaps to an open leaf instead of queueing behind it.
		s := build(map[string]int{"l1": 0, "l2": 0, "l3": 0}, nil, 2)
		winner, err := s.Place(taskFor("/t/p"), nil)
		if err != nil {
			t.Fatal(err)
		}
		s.Manager.HeartbeatLoad(winner, KindLeaf, LoadSnapshot{ActiveTasks: 2})
		got, err := s.Place(taskFor("/t/p"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got == winner {
			t.Errorf("placement stuck to saturated leaf %q", winner)
		}
	})

	t.Run("saturated fleet falls back to load-aware", func(t *testing.T) {
		holders := map[string][]string{"/t/p": {"l1"}}
		s := build(map[string]int{"l1": 9, "l2": 5, "l3": 7}, holders, 2)
		// Every leaf is over the cap, so the cap is waived and affinity is
		// skipped: the load-aware path places on the data holder.
		got, err := s.Place(taskFor("/t/p"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != "l1" {
			t.Errorf("saturated-fleet Place = %q, want holder l1 (load-aware path)", got)
		}
	})

	t.Run("affinityPick domain rules", func(t *testing.T) {
		if _, ok := affinityPick("/p", nil, nil); ok {
			t.Error("empty pool should not pick")
		}
		pick, ok := affinityPick("/p", []string{"a", "b", "c"}, []string{"b"})
		if !ok || pick != "b" {
			t.Errorf("holder-restricted pick = %q %v, want b", pick, ok)
		}
		// Holders outside the pool do not restrict the domain.
		pick, ok = affinityPick("/p", []string{"a", "c"}, []string{"b"})
		if !ok || (pick != "a" && pick != "c") {
			t.Errorf("pick with out-of-pool holder = %q %v", pick, ok)
		}
	})
}
