package cluster

import (
	"fmt"

	"repro/internal/auth"
	"repro/internal/metrics"
)

// EntryGuard is the system's entry point (paper §III-C): it authenticates
// the caller, enforces quotas, and rejects oversized/malformed traffic
// before the job manager sees it ("capability protection to avoid
// malicious attacks").
type EntryGuard struct {
	Authority *auth.Authority
	Quotas    *auth.Quotas
	// MaxQueryBytes rejects queries longer than this; <=0 disables.
	MaxQueryBytes int

	Admitted metrics.Counter
	Rejected metrics.Counter
}

// Admit validates a submission. On success it returns the job credential
// and a release function that must be called when the query finishes.
func (g *EntryGuard) Admit(token, sql string) (auth.Credential, func(), error) {
	if g.MaxQueryBytes > 0 && len(sql) > g.MaxQueryBytes {
		g.Rejected.Inc()
		return auth.Credential{}, nil, fmt.Errorf("cluster: query of %d bytes exceeds the %d-byte limit", len(sql), g.MaxQueryBytes)
	}
	cred, err := g.Authority.Authenticate(token)
	if err != nil {
		g.Rejected.Inc()
		return auth.Credential{}, nil, err
	}
	if g.Quotas != nil {
		if err := g.Quotas.Acquire(cred.User); err != nil {
			g.Rejected.Inc()
			return auth.Credential{}, nil, err
		}
	}
	g.Admitted.Inc()
	release := func() {
		if g.Quotas != nil {
			g.Quotas.Release(cred.User)
		}
	}
	return cred, release, nil
}
