package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/colstore"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/resultcache"
	"repro/internal/sim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/types"
)

// ErrStandby is returned when a query is submitted to a backup master.
var ErrStandby = errors.New("cluster: master is in standby (backup) mode")

// ErrDeadline is returned when the time limit expires before the minimum
// processed ratio is reached.
var ErrDeadline = errors.New("cluster: time limit expired before enough tasks completed")

// MasterConfig wires a master.
type MasterConfig struct {
	Name   string
	Fabric transport.Network
	Router *storage.Router
	Model  *sim.CostModel
	// Authority enables the entry guard; nil runs the cluster open.
	Authority *auth.Authority
	Quotas    *auth.Quotas
	// MaxQueryBytes caps query text size at the entry guard.
	MaxQueryBytes int
	// DefaultTaskTimeout triggers backup tasks; 0 disables.
	DefaultTaskTimeout time.Duration
	// MaxTaskRetries bounds backup attempts per task.
	MaxTaskRetries int
	// RetryBackoff is the base of the exponential backoff between backup
	// attempts (base<<attempt plus deterministic jitter); 0 retries
	// immediately.
	RetryBackoff time.Duration
	// HedgeDelay is how long a stem waits on a straggler-flagged leaf
	// before firing a speculative duplicate task; 0 uses a default,
	// negative disables hedging.
	HedgeDelay time.Duration
	// StragglerFactor flags a leaf as a straggler when its smoothed task
	// wall time exceeds this multiple of the fleet median; 0 uses 3.
	StragglerFactor float64
	// ScanWorkers sets the intra-task scan parallelism stamped on every
	// dispatched task (plan.TaskSpec.Workers); 0 lets leaves default to
	// GOMAXPROCS, negative forces serial scans.
	ScanWorkers int
	// MaxConcurrentQueries caps queries executing at once; excess submissions
	// wait in the admission queue. <=0 disables admission control.
	MaxConcurrentQueries int
	// MaxQueueDepth bounds each priority class's admission queue; arrivals
	// beyond it are shed with *OverloadedError. 0 defaults to
	// 2×MaxConcurrentQueries.
	MaxQueueDepth int
	// QueueWaitDeadline sheds queries still queued after this wait; 0 lets
	// them wait as long as their context allows. QueryOptions.QueueDeadline
	// overrides per query.
	QueueWaitDeadline time.Duration
	// InteractiveWeight / BatchWeight set the weighted-fair dequeue shares;
	// 0 defaults to 4:1.
	InteractiveWeight int
	BatchWeight       int
	// LeafSlots caps concurrent task placements per leaf (scheduler side)
	// and concurrent in-flight leaf calls per stem job (stem side); <=0
	// means unbounded.
	LeafSlots int
	// LivenessWindow configures the cluster manager.
	LivenessWindow time.Duration
	// LocalityOff disables locality-aware placement (ablation).
	LocalityOff bool
	// Standby starts the master as a backup.
	Standby bool
	// ResultCache, when set, serves repeated (or subsumed) queries from
	// the master without executing tasks, and is invalidated on catalog
	// changes. Nil disables semantic result caching.
	ResultCache *resultcache.Cache
	// CacheAffinity routes tasks for the same partition to the same leaf
	// (rendezvous hashing) while slot caps allow, so leaf-local caches keep
	// hitting; the scheduler falls back to load-aware placement when the
	// fleet saturates.
	CacheAffinity bool
	// Observer, when set, receives every query's predicate atoms per
	// user — the client-side query-history collection that personalizes
	// SmartIndex (paper §III-C).
	Observer PredicateObserver
	// Metrics, when set, receives the master's query counters.
	Metrics *metrics.Registry
	// Events, when set, journals query/task lifecycle decisions into the
	// flight recorder; the master also hands it to its cluster manager and
	// local stem.
	Events *events.Recorder
	// Planner tunes the repartition-shuffle planner (broadcast threshold,
	// partition fan-out, group-by shuffle trigger, reducer memory grants).
	// The zero value behaves exactly like plan.DefaultOptions.
	Planner plan.Options
}

// PredicateObserver collects per-user predicate usage.
type PredicateObserver interface {
	ObserveQuery(user string, atomKeys []string)
}

// Master is the root of the execution tree.
type Master struct {
	cfg       MasterConfig
	Jobs      *JobManager
	Manager   *ClusterManager
	Scheduler *JobScheduler
	Guard     *EntryGuard
	// Admission is the bounded query queue; nil when admission control is
	// off (MaxConcurrentQueries <= 0).
	Admission *AdmissionController
	// queueWait records admitted queries' queue time in seconds.
	queueWait *metrics.Histogram
	reader    *exec.StoreReader
	localStem *StemServer
	// progress tracks in-flight queries for ActiveQueries / \watch /
	// /debug/queries; qidSeq assigns causal query IDs.
	progress *ProgressRegistry
	qidSeq   atomic.Uint64

	mu      sync.Mutex
	standby bool
	backups []string
	oplog   []catalogOp

	// Queries counts submissions; QueryErrs counts the ones that failed.
	Queries   metrics.Counter
	QueryErrs metrics.Counter
	// Recovery counters: backup (retry) attempts, hedges fired and won,
	// and queries that degraded to a partial result.
	Retries     metrics.Counter
	HedgesFired metrics.Counter
	HedgesWon   metrics.Counter
	Partials    metrics.Counter
}

// defaultHedgeDelay is how long a stem waits before firing a speculative
// duplicate when the master's config leaves HedgeDelay zero.
const defaultHedgeDelay = 30 * time.Millisecond

// NewMaster builds and registers a master on the fabric.
func NewMaster(cfg MasterConfig) *Master {
	if cfg.MaxTaskRetries <= 0 {
		cfg.MaxTaskRetries = 2
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = defaultHedgeDelay
	}
	if cfg.StragglerFactor <= 0 {
		cfg.StragglerFactor = 3
	}
	m := &Master{
		cfg:      cfg,
		Jobs:     NewJobManager(),
		Manager:  NewClusterManager(cfg.LivenessWindow),
		standby:  cfg.Standby,
		reader:   exec.NewStoreReader(cfg.Router),
		progress: NewProgressRegistry(),
	}
	m.Manager.Events = cfg.Events
	m.Scheduler = &JobScheduler{
		Manager:      m.Manager,
		Locator:      cfg.Router,
		Topo:         cfg.Fabric.Topology(),
		SlotsPerLeaf: cfg.LeafSlots,
		LocalityOff:  cfg.LocalityOff,
		Affinity:     cfg.CacheAffinity,
	}
	m.Admission = NewAdmissionController(AdmissionConfig{
		MaxConcurrent: cfg.MaxConcurrentQueries,
		MaxQueueDepth: cfg.MaxQueueDepth,
		QueueDeadline: cfg.QueueWaitDeadline,
		Weights: [numPriorities]int{
			PriorityInteractive: cfg.InteractiveWeight,
			PriorityBatch:       cfg.BatchWeight,
		},
	})
	if cfg.Authority != nil {
		m.Guard = &EntryGuard{Authority: cfg.Authority, Quotas: cfg.Quotas, MaxQueryBytes: cfg.MaxQueryBytes}
	}
	// The local stem lets a master without registered stem servers drive
	// leaves directly, and serves single-task backup dispatches.
	m.localStem = &StemServer{Name: cfg.Name, Fabric: cfg.Fabric, Router: cfg.Router, Model: cfg.Model, Events: cfg.Events}
	cfg.Fabric.Register(cfg.Name, m.handle)
	cfg.Metrics.Register("master.queries", &m.Queries)
	cfg.Metrics.Register("master.query_errors", &m.QueryErrs)
	cfg.Metrics.Register("master.task_retries", &m.Retries)
	cfg.Metrics.Register("master.hedges_fired", &m.HedgesFired)
	cfg.Metrics.Register("master.hedges_won", &m.HedgesWon)
	cfg.Metrics.Register("master.partial_results", &m.Partials)
	if m.Admission != nil && cfg.Metrics != nil {
		m.queueWait = cfg.Metrics.HistogramWith("feisu_admission_wait_seconds")
		for c := Priority(0); c < numPriorities; c++ {
			c := c
			label := metrics.Label{Key: "class", Value: c.String()}
			cfg.Metrics.RegisterCounterWith("feisu_admission_admitted_total", &m.Admission.Admitted[c], label)
			cfg.Metrics.RegisterCounterWith("feisu_admission_shed_total", &m.Admission.Shed[c], label)
			cfg.Metrics.RegisterGaugeFunc("feisu_admission_queue_depth", func() float64 {
				return float64(m.Admission.QueueDepth(c))
			}, label)
		}
		cfg.Metrics.RegisterGaugeFunc("feisu_admission_running", func() float64 {
			return float64(m.Admission.Running())
		})
	}
	return m
}

// handle processes fabric messages addressed to the master.
func (m *Master) handle(ctx context.Context, from string, payload any) (any, error) {
	switch msg := payload.(type) {
	case heartbeatMsg:
		load := msg.Load
		load.ActiveTasks = msg.Active
		m.Manager.HeartbeatLoad(msg.Name, msg.Kind, load)
		return nil, nil
	case catalogOp:
		m.Jobs.RegisterTable(msg.Table)
		if msg.Table != nil {
			m.cfg.ResultCache.InvalidateTable(msg.Table.Name)
		}
		m.mu.Lock()
		m.oplog = append(m.oplog, msg)
		m.mu.Unlock()
		return nil, nil
	case catalogSnapshot:
		m.Jobs.Restore(msg)
		return nil, nil
	case pingMsg:
		return pingReply{}, nil
	case shuffleFrameMsg, shuffleEndMsg, shuffleReduceMsg, shuffleCleanupMsg:
		// Standby clusters run without dedicated stems; the master then
		// doubles as the sole reducer via its local stem.
		return m.localStem.handle(ctx, from, payload)
	default:
		return nil, fmt.Errorf("cluster: master %s: unknown message %T", m.cfg.Name, payload)
	}
}

// InvalidatePartition drops the master's cached footer for a rewritten
// partition file and evicts result-cache entries over its table — the
// master half of the ingest invalidation protocol (leaf readers and SSD
// caches are invalidated by the system wiring).
func (m *Master) InvalidatePartition(table, path string) {
	m.cfg.Events.Emit("ingest", events.IngestInvalidate, "", -1, table+" "+path)
	m.reader.InvalidateMeta(path)
	m.cfg.ResultCache.InvalidateTable(table)
}

// ActiveQueries snapshots the in-flight queries (oldest first): the live
// progress view behind System.ActiveQueries, `\watch` and /debug/queries.
func (m *Master) ActiveQueries() []QueryProgress {
	return m.progress.Active()
}

// ResultCache exposes the configured cache (nil when disabled).
func (m *Master) ResultCache() *resultcache.Cache { return m.cfg.ResultCache }

// Health returns the fleet view with this master's admission state folded
// in (the ClusterManager alone cannot see the admission queue).
func (m *Master) Health() ClusterHealth {
	h := m.Manager.Health()
	h.Admission = m.Admission.Snapshot()
	return h
}

// Standby reports whether the master is a backup.
func (m *Master) Standby() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.standby
}

// Promote turns a backup master into the primary (failover).
func (m *Master) Promote() {
	m.mu.Lock()
	m.standby = false
	m.mu.Unlock()
}

// AddBackup ships a checkpoint to a backup master and starts replicating
// the op log to it (paper §III-C: "the backup components get checkpoint
// and operations log from the primary in realtime").
func (m *Master) AddBackup(ctx context.Context, name string) error {
	snap := m.Jobs.Snapshot()
	if _, err := m.cfg.Fabric.Call(ctx, m.cfg.Name, name, transport.Control, snap, 1024); err != nil {
		return fmt.Errorf("cluster: checkpoint to backup %s: %w", name, err)
	}
	m.mu.Lock()
	m.backups = append(m.backups, name)
	m.mu.Unlock()
	return nil
}

// RegisterTable installs a table and replicates the op to backups.
func (m *Master) RegisterTable(ctx context.Context, meta *plan.TableMeta) error {
	if m.Standby() {
		return ErrStandby
	}
	op := m.Jobs.RegisterTable(meta)
	// Catalog changes (new or grown partition sets) make cached results
	// over the table stale.
	m.cfg.ResultCache.InvalidateTable(meta.Name)
	m.mu.Lock()
	m.oplog = append(m.oplog, op)
	backups := append([]string(nil), m.backups...)
	m.mu.Unlock()
	for _, b := range backups {
		if _, err := m.cfg.Fabric.Call(ctx, m.cfg.Name, b, transport.Control, op, 256); err != nil {
			return fmt.Errorf("cluster: replicate catalog op to %s: %w", b, err)
		}
	}
	return nil
}

// Submit plans, schedules, executes and finalizes one query.
func (m *Master) Submit(ctx context.Context, sql string, opts QueryOptions) (*exec.Result, *QueryStats, error) {
	res, stats, err := m.submit(ctx, sql, opts)
	m.Queries.Inc()
	if err != nil {
		m.QueryErrs.Inc()
	}
	return res, stats, err
}

func (m *Master) submit(ctx context.Context, sql string, opts QueryOptions) (res *exec.Result, stats *QueryStats, err error) {
	if m.Standby() {
		return nil, nil, ErrStandby
	}
	start := time.Now()
	qid := fmt.Sprintf("q%06d", m.qidSeq.Add(1))
	qsite := "query/" + qid
	stats = &QueryStats{QueryID: qid}
	m.cfg.Events.Emit(qsite, events.QuerySubmit, qid, -1, trimSQL(sql))
	defer func() {
		var over *OverloadedError
		switch {
		case err == nil:
			rows := 0
			if res != nil {
				rows = len(res.Rows)
			}
			m.cfg.Events.EmitSim(qsite, events.QueryDone, qid, -1, statsSim(stats), fmt.Sprintf("rows=%d", rows))
		case errors.As(err, &over):
			m.cfg.Events.Emit(qsite, events.QueryShed, qid, -1, opts.Priority.String())
		default:
			m.cfg.Events.Emit(qsite, events.QueryError, qid, -1, err.Error())
		}
	}()

	// Entry guard (§III-C).
	var cred auth.Credential
	if m.Guard != nil {
		var release func()
		var err error
		cred, release, err = m.Guard.Admit(opts.Token, sql)
		if err != nil {
			return nil, nil, err
		}
		defer release()
	}

	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	p, err := plan.PlanWith(stmt, m.Jobs, m.cfg.Planner)
	if err != nil {
		return nil, nil, err
	}
	stats.Fingerprint = p.Fingerprint

	// Cross-domain authorization: the job credential must map into every
	// storage domain the query touches (§V-A).
	if m.Guard != nil {
		if err := m.authorize(cred, p); err != nil {
			return nil, nil, err
		}
	}

	// EXPLAIN without ANALYZE describes the plan and returns without
	// executing anything.
	if stmt.Explain && !stmt.Analyze {
		stats.WallTime = time.Since(start)
		return textResult("plan", p.Describe()), stats, nil
	}
	if stmt.Analyze {
		opts.Trace = true
	}

	// Semantic result cache: a complete cached result for this plan — exact
	// literals, or a subsuming entry re-filtered with this query's own
	// predicate — answers the query here, without taking an execution slot
	// (cache hits do no execution, so they bypass admission entirely).
	if m.cfg.ResultCache != nil && !opts.DisableResultCache {
		if res, outcome := m.cfg.ResultCache.Lookup(p); outcome != resultcache.Miss {
			stats.ResultCache = outcome.String()
			kind := events.CacheHit
			if outcome == resultcache.SubsumedHit {
				kind = events.CacheSubsumed
			}
			m.cfg.Events.Emit(qsite, kind, qid, -1, p.Fingerprint)
			var root *trace.Span
			if opts.Trace {
				root = trace.New("master/query")
				stats.Trace = root
				cspan := root.Child("master/result-cache")
				cspan.SetAttr("status", outcome.String())
				cspan.Count("rows", int64(len(res.Rows)))
				cspan.Finish()
				root.Finish()
			}
			stats.WallTime = time.Since(start)
			if stmt.Analyze {
				return textResult("EXPLAIN ANALYZE", p.DescribeAnalyze(root)), stats, nil
			}
			return res, stats, nil
		}
		stats.ResultCache = resultcache.Miss.String()
	}

	// Admission control: wait for an execution slot (weighted-fair between
	// classes) or shed with a typed retry-after error. Everything above is
	// cheap planning work; the slot bounds actual execution.
	stats.Priority = opts.Priority
	prog := m.progress.Begin(QueryProgress{
		ID: qid, SQL: sql, Fingerprint: p.Fingerprint,
		Priority: opts.Priority.String(), State: "queued",
	})
	defer m.progress.End(qid)
	release, queueWait, err := m.Admission.Admit(ctx, opts.Priority, opts.QueueDeadline)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	stats.QueueWait = queueWait
	if queueWait > 0 {
		m.cfg.Events.Emit(qsite, events.QueryQueued, qid, -1, opts.Priority.String())
	}
	m.cfg.Events.Emit(qsite, events.QueryAdmitted, qid, -1, opts.Priority.String())
	prog.update(func(p *QueryProgress) {
		p.State = "running"
		p.QueueWait = queueWait
	})
	if m.queueWait != nil {
		m.queueWait.Observe(queueWait.Seconds())
	}

	var root *trace.Span
	if opts.Trace {
		root = trace.New("master/query")
		stats.Trace = root
		ctx = trace.NewContext(ctx, root)
		if m.Admission != nil {
			aspan := root.Child("master/admission")
			aspan.SetAttr("class", opts.Priority.String())
			aspan.SetAttr("wait", queueWait.String())
			aspan.SetWall(queueWait)
			aspan.Finish()
		}
		if stats.ResultCache != "" {
			cspan := root.Child("master/result-cache")
			cspan.SetAttr("status", stats.ResultCache)
			cspan.Finish()
		}
	}

	if m.cfg.Observer != nil {
		var keys []string
		for _, cl := range p.Filter.Clauses {
			for _, a := range cl.Atoms {
				keys = append(keys, a.Key())
			}
		}
		m.cfg.Observer.ObserveQuery(cred.User, keys)
	}

	if opts.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.TimeLimit)
		defer cancel()
	}

	masterBill := sim.NewBill()
	dctx, dspan := trace.StartSpan(ctx, "master/load-dims")
	if err := m.loadDims(storage.WithBill(dctx, masterBill), p); err != nil {
		return nil, nil, err
	}
	dspan.SetSim(masterBill.Time())
	dspan.Finish()

	var merged *exec.TaskResult
	if p.Shuffle != nil {
		// Repartitioned query: map tasks on the leaves, keyed frames to the
		// reducers, one reduce per reducer. runShuffle sets stats.Tasks and
		// the progress counters itself.
		ectx, espan := trace.StartSpan(ctx, "master/execute")
		merged, err = m.runShuffle(ectx, p, opts, stats, qid, prog)
		espan.SetSim(stats.SimTime)
		espan.Finish()
	} else {
		tasks := p.Tasks()
		if m.cfg.ScanWorkers != 0 {
			w := m.cfg.ScanWorkers
			if w < 0 {
				w = 1
			}
			for i := range tasks {
				tasks[i].Workers = w
			}
		}
		stats.Tasks = len(tasks)
		prog.update(func(p *QueryProgress) { p.TasksPlanned = len(tasks) })
		ectx, espan := trace.StartSpan(ctx, "master/execute")
		merged, err = m.runAll(ectx, p, tasks, opts, stats, qid, prog)
		espan.SetSim(stats.SimTime)
		espan.Finish()
	}
	if err != nil {
		return nil, nil, err
	}

	fspan := root.Child("master/finalize")
	res, err = exec.Finalize(p, merged)
	fspan.Finish()
	if err != nil {
		return nil, nil, err
	}
	if merged != nil {
		stats.Scan = merged.Stats
	}
	completed := stats.Tasks - stats.TasksFailed
	if stats.Tasks > 0 {
		res.ProcessedRatio = float64(completed) / float64(stats.Tasks)
	} else {
		res.ProcessedRatio = 1
	}
	res.Partial = stats.TasksFailed > 0
	stats.WallTime = time.Since(start)
	stats.SimTime += masterBill.Time() + 2*m.rpcLatency()
	if stats.BytesByDevice == nil {
		stats.BytesByDevice = make(map[string]int64)
	}
	for dev, n := range deviceBytes(masterBill) {
		stats.BytesByDevice[dev] += n
	}
	if root != nil {
		root.SetSim(stats.SimTime)
		root.Count("tasks", int64(stats.Tasks))
		if stats.ReusedTasks > 0 {
			root.Count("tasks.reused", int64(stats.ReusedTasks))
		}
		if stats.BackupTasks > 0 {
			root.Count("tasks.backup", int64(stats.BackupTasks))
		}
		if stats.HedgedTasks > 0 {
			root.Count("tasks.hedged", int64(stats.HedgedTasks))
		}
		if stats.HedgesWon > 0 {
			root.Count("tasks.hedge_won", int64(stats.HedgesWon))
		}
		if len(stats.TaskErrors) > 0 {
			root.Count("tasks.dropped", int64(len(stats.TaskErrors)))
		}
		root.Finish()
	}
	// Store only complete results: no failed tasks, no partial/ratio
	// degradation — a cache must never replay a truncated answer.
	if m.cfg.ResultCache != nil && !opts.DisableResultCache &&
		stats.TasksFailed == 0 && !res.Partial && res.ProcessedRatio >= 1 {
		m.cfg.ResultCache.Store(p, cred.User, res)
	}
	if stmt.Analyze {
		return textResult("EXPLAIN ANALYZE", p.DescribeAnalyze(root)), stats, nil
	}
	return res, stats, nil
}

// trimSQL collapses query text onto one line and truncates it for event
// details (the full SQL lives in the progress registry and slowlog).
func trimSQL(sql string) string {
	sql = strings.Join(strings.Fields(sql), " ")
	if len(sql) > 80 {
		sql = sql[:77] + "..."
	}
	return sql
}

// statsSim reads SimTime nil-safely (error paths null out the stats return,
// and the deferred journal emission runs after that).
func statsSim(st *QueryStats) time.Duration {
	if st == nil {
		return 0
	}
	return st.SimTime
}

// textResult wraps multi-line text (a plan description, a rendered trace)
// as a one-column result set.
func textResult(col, text string) *exec.Result {
	res := &exec.Result{Columns: []string{col}, Types: []types.Type{types.String}, ProcessedRatio: 1}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, []types.Value{types.NewString(line)})
	}
	return res
}

func (m *Master) rpcLatency() time.Duration {
	if m.cfg.Model == nil {
		return 0
	}
	return m.cfg.Model.RPCLatency
}

// authorize checks every storage domain the plan reads.
func (m *Master) authorize(cred auth.Credential, p *plan.PhysicalPlan) error {
	seen := make(map[string]bool)
	checkTable := func(t *plan.TableMeta) error {
		for _, part := range t.Partitions {
			store, _ := m.cfg.Router.Resolve(part.Path)
			scheme := store.Scheme()
			if seen[scheme] {
				continue
			}
			seen[scheme] = true
			if err := m.cfg.Authority.Authorize(cred, scheme); err != nil {
				return err
			}
		}
		return nil
	}
	if err := checkTable(p.Fact().Meta); err != nil {
		return err
	}
	for _, d := range p.Dims {
		if err := checkTable(d.Table.Meta); err != nil {
			return err
		}
	}
	if sh := p.Shuffle; sh != nil && sh.Build != nil {
		if err := checkTable(sh.Build.Meta); err != nil {
			return err
		}
	}
	return nil
}

// loadDims materializes the broadcast dimension tables at the master.
func (m *Master) loadDims(ctx context.Context, p *plan.PhysicalPlan) error {
	for _, d := range p.Dims {
		cols := d.Needed
		if len(cols) == 0 {
			d.Data = nil
			continue
		}
		var rows [][]types.Value
		for _, part := range d.Table.Meta.Partitions {
			meta, err := m.reader.Meta(ctx, part.Path)
			if err != nil {
				return fmt.Errorf("cluster: dimension %s: %w", d.Table.Meta.Name, err)
			}
			ords := make([]int, len(cols))
			for i, c := range cols {
				ord := meta.Schema.Index(c)
				if ord < 0 {
					return fmt.Errorf("cluster: dimension %s lacks column %q", d.Table.Meta.Name, c)
				}
				ords[i] = ord
			}
			for bi := range meta.Blocks {
				colData := make([]*colColumn, len(cols))
				for i, ord := range ords {
					c, err := m.reader.Column(ctx, part.Path, meta, bi, ord)
					if err != nil {
						return err
					}
					colData[i] = &colColumn{c: c}
				}
				n := meta.Blocks[bi].Stats.NumRows
				for r := 0; r < n; r++ {
					row := make([]types.Value, len(cols))
					for i := range cols {
						row[i] = colData[i].value(r)
					}
					rows = append(rows, row)
				}
			}
		}
		d.Data = rows
	}
	return nil
}

// taskDone is one task's terminal outcome inside runAll.
type taskDone struct {
	ordinal  int
	res      *exec.TaskResult
	simTime  time.Duration
	scanSim  time.Duration
	leaf     string
	err      error
	reused   bool
	backups  int
	hedged   bool
	hedgeWon bool
	devBytes map[string]int64
}

// runAll executes the task set with dedup, backup tasks and the early
// return policy, and merges the results.
func (m *Master) runAll(ctx context.Context, p *plan.PhysicalPlan, tasks []plan.TaskSpec, opts QueryOptions, stats *QueryStats, qid string, prog *progressHandle) (*exec.TaskResult, error) {
	results := make(chan taskDone, len(tasks))

	// Split into owned tasks (we execute) and reused tasks (an identical
	// task is already running in another job).
	var owned []plan.TaskSpec
	futures := make(map[int]*taskFuture, len(tasks))
	owner := make(map[int]*taskFuture)
	for _, t := range tasks {
		if opts.DisableReuse {
			f := &taskFuture{done: make(chan struct{})}
			owner[t.Ordinal] = f
			futures[t.Ordinal] = f
			owned = append(owned, t)
			continue
		}
		f, isOwner := m.Jobs.claimTask(t.Key())
		futures[t.Ordinal] = f
		if isOwner {
			owner[t.Ordinal] = f
			owned = append(owned, t)
		} else {
			stats.ReusedTasks++
			go func(t plan.TaskSpec, f *taskFuture) {
				select {
				case <-f.done:
					results <- taskDone{ordinal: t.Ordinal, res: f.result, err: f.err, reused: true}
				case <-ctx.Done():
					results <- taskDone{ordinal: t.Ordinal, err: ctx.Err(), reused: true}
				}
			}(t, f)
		}
	}

	timeout := opts.TaskTimeout
	if timeout == 0 {
		timeout = m.cfg.DefaultTaskTimeout
	}

	// Dispatch owned tasks grouped per stem; fall back to direct leaf
	// calls when no stem servers are alive.
	// heldSlots tracks owned tasks' placement slots (charged by PlanAll);
	// each is released when the task's terminal outcome is collected, so
	// concurrent queries' placements see each other's live claims. Only the
	// collection loop below touches it.
	heldSlots := make(map[int]string)
	defer func() {
		for _, leaf := range heldSlots {
			m.Scheduler.ReleaseTask(leaf)
		}
	}()
	if len(owned) > 0 {
		assign, err := m.Scheduler.PlanAll(owned)
		if err != nil {
			// Complete owned futures so concurrent sharers unblock.
			for _, t := range owned {
				if f := owner[t.Ordinal]; f != nil {
					m.completeOwned(opts, t, f, nil, err)
				}
			}
			return nil, err
		}
		// Each dispatch goroutine reports every task of its group on the
		// results channel (buffered to len(tasks)), so the collection loop
		// below is the synchronization point — no WaitGroup needed, and the
		// `go func() { wg.Wait() }()` this used to launch leaked a goroutine
		// per query.
		for ord, leaf := range assign {
			heldSlots[ord] = leaf
		}
		for _, t := range owned {
			m.cfg.Events.Emit(events.TaskSite(qid, t.Ordinal), events.TaskScheduled,
				qid, t.Ordinal, assign[t.Ordinal])
		}
		backup, hedgeDelay := m.planHedges(owned, assign, opts)
		byStem := m.groupByStem(owned, assign)
		for stemName, group := range byStem {
			go func(stemName string, group []plan.TaskSpec) {
				prog.update(func(p *QueryProgress) { p.TasksDispatched += len(group) })
				job := stemJobMsg{Plan: p, Tasks: group, Assign: assign, TaskTimeout: timeout,
					PerTask: !opts.DisableReuse, Backup: backup, HedgeDelay: hedgeDelay,
					LeafSlots: m.Scheduler.SlotsPerLeaf, QueryID: qid}
				reply, err := m.callStem(ctx, stemName, job)
				for _, t := range group {
					d := taskDone{ordinal: t.Ordinal, leaf: assign[t.Ordinal]}
					if err != nil {
						d.err = err
					} else if st, ok := reply.Status[t.Ordinal]; ok && st.OK {
						d.simTime = st.SimTime
						d.scanSim = st.ScanSim
						d.devBytes = st.DevBytes
						d.res = reply.PerTask[t.Ordinal]
						d.leaf = st.Leaf // the winning attempt's leaf (may be the hedge backup)
						d.hedged, d.hedgeWon = st.Hedged, st.HedgeWon
						m.Manager.ReportTaskTime(st.Leaf, st.Wall)
					} else if ok {
						d.err = errors.New(st.Err)
						d.hedged = st.Hedged
						if st.Unreachable {
							// Dispatch hit an unknown/down node: suspect it now
							// rather than waiting out the liveness window.
							m.Manager.MarkSuspect(st.Leaf)
						}
					} else {
						d.err = fmt.Errorf("cluster: stem %s lost task %d", stemName, t.Ordinal)
					}
					// Backup tasks: reschedule failures on other leaves.
					if d.err != nil {
						d = m.retryTask(ctx, p, t, assign[t.Ordinal], timeout, d, qid)
					}
					if f := owner[t.Ordinal]; f != nil {
						m.completeOwned(opts, t, f, d.res, d.err)
					}
					results <- d
				}
			}(stemName, group)
		}
	}

	// Collect.
	var merged *exec.TaskResult
	completed := 0
	leafBusy := make(map[string]time.Duration)
	leafScan := make(map[string]time.Duration)
	devBytes := make(map[string]int64)
	deadlineHit := false
	for i := 0; i < len(tasks); i++ {
		select {
		case d := <-results:
			if leaf, ok := heldSlots[d.ordinal]; ok {
				m.Scheduler.ReleaseTask(leaf)
				delete(heldSlots, d.ordinal)
			}
			if d.hedged {
				stats.HedgedTasks++
				m.HedgesFired.Inc()
			}
			if d.hedgeWon {
				stats.HedgesWon++
				m.HedgesWon.Inc()
			}
			if d.err != nil {
				stats.TasksFailed++
				stats.TaskErrors = append(stats.TaskErrors, TaskError{Ordinal: d.ordinal, Leaf: d.leaf, Err: d.err.Error()})
				m.cfg.Events.Emit(events.TaskSite(qid, d.ordinal), events.TaskPartial,
					qid, d.ordinal, d.err.Error())
				prog.update(func(p *QueryProgress) {
					p.TasksFailed++
					if d.hedged {
						p.TasksHedged++
					}
					p.TasksRetried += d.backups
				})
				continue
			}
			completed++
			stats.BackupTasks += d.backups
			if d.leaf != "" {
				leafBusy[d.leaf] += d.simTime
				leafScan[d.leaf] += d.scanSim
			}
			for dev, n := range d.devBytes {
				devBytes[dev] += n
			}
			rows := 0
			if d.res != nil {
				rows = len(d.res.Rows)
			}
			detail := fmt.Sprintf("%s rows=%d", d.leaf, rows)
			if d.reused {
				detail = fmt.Sprintf("reused rows=%d", rows)
			}
			m.cfg.Events.EmitSim(events.TaskSite(qid, d.ordinal), events.TaskCollected,
				qid, d.ordinal, d.simTime, detail)
			prog.update(func(p *QueryProgress) {
				p.TasksDone++
				if d.hedged {
					p.TasksHedged++
				}
				p.TasksRetried += d.backups
				if d.reused {
					p.TasksReused++
				}
				p.Rows += int64(rows)
			})
			merged = exec.MergeResults(p, merged, cloneResult(d.res))
		case <-ctx.Done():
			deadlineHit = true
			stats.TasksFailed = len(tasks) - completed
			i = len(tasks) // drain no further
		}
		if deadlineHit {
			break
		}
	}

	var busiest time.Duration
	for _, b := range leafBusy {
		if b > busiest {
			busiest = b
		}
	}
	stats.SimTime = busiest
	for _, b := range leafScan {
		if b > stats.ScanSimTime {
			stats.ScanSimTime = b
		}
	}
	stats.BytesByDevice = devBytes

	if stats.TasksFailed > 0 {
		ratio := float64(completed) / float64(len(tasks))
		if opts.MinProcessedRatio > 0 && ratio >= opts.MinProcessedRatio {
			return merged, nil // partial result accepted (§III-B)
		}
		if opts.PartialResults && completed > 0 {
			// Graceful degradation: return what completed; the dropped
			// tasks are reported per leaf in stats.TaskErrors.
			m.Partials.Inc()
			return merged, nil
		}
		if deadlineHit {
			return nil, fmt.Errorf("%w: %d/%d tasks", ErrDeadline, completed, len(tasks))
		}
		return nil, fmt.Errorf("cluster: %d of %d tasks failed permanently", stats.TasksFailed, len(tasks))
	}
	return merged, nil
}

// planHedges picks a backup leaf for every owned task placed on a
// straggler-flagged leaf (smoothed task time above StragglerFactor × the
// fleet median). The stem fires the backup after hedgeDelay, first result
// wins — the paper's backup-task defense, armed before the timeout fires.
func (m *Master) planHedges(owned []plan.TaskSpec, assign map[int]string, opts QueryOptions) (map[int]string, time.Duration) {
	hedgeDelay := opts.HedgeDelay
	if hedgeDelay == 0 {
		hedgeDelay = m.cfg.HedgeDelay
	}
	if hedgeDelay <= 0 {
		return nil, 0
	}
	stragglers := m.Manager.Stragglers(KindLeaf, m.cfg.StragglerFactor)
	if len(stragglers) == 0 {
		return nil, 0
	}
	slow := make(map[string]bool, len(stragglers))
	for _, s := range stragglers {
		slow[s] = true
	}
	var backup map[int]string
	for _, t := range owned {
		leaf := assign[t.Ordinal]
		if !slow[leaf] {
			continue
		}
		alt, err := m.Scheduler.Place(t, map[string]bool{leaf: true})
		if err != nil || alt == leaf {
			continue // nowhere else to hedge to
		}
		if backup == nil {
			backup = make(map[int]string)
		}
		backup[t.Ordinal] = alt
	}
	return backup, hedgeDelay
}

// completeOwned publishes an owned task's outcome to sharers.
func (m *Master) completeOwned(opts QueryOptions, t plan.TaskSpec, f *taskFuture, res *exec.TaskResult, err error) {
	if opts.DisableReuse {
		f.result, f.err = res, err
		close(f.done)
		return
	}
	m.Jobs.completeTask(t.Key(), f, res, err)
}

// retryTask issues backup tasks on other leaves until one succeeds or the
// retry budget runs out. Leaves the cluster manager no longer reports alive
// (dead, degraded or suspect) are excluded from every attempt, and attempts
// are spaced by exponential backoff with deterministic jitter so a burst of
// failures does not hammer the survivors in lockstep.
func (m *Master) retryTask(ctx context.Context, p *plan.PhysicalPlan, t plan.TaskSpec, firstLeaf string, timeout time.Duration, d taskDone, qid string) taskDone {
	exclude := map[string]bool{firstLeaf: true}
	for attempt := 0; attempt < m.cfg.MaxTaskRetries; attempt++ {
		if m.cfg.RetryBackoff > 0 {
			if !sleepCtx(ctx, retryDelay(m.cfg.RetryBackoff, t.Key(), attempt)) {
				return d
			}
		}
		if ctx.Err() != nil {
			return d
		}
		m.excludeUnhealthy(exclude)
		leaf, err := m.Scheduler.Place(t, exclude)
		if err != nil {
			return d
		}
		d.backups++
		m.Retries.Inc()
		m.cfg.Events.Emit(events.TaskSite(qid, t.Ordinal), events.TaskRetry,
			qid, t.Ordinal, fmt.Sprintf("attempt %d on %s: %s", attempt+1, leaf, d.err))
		res, st := m.localStem.runOne(ctx, stemJobMsg{Plan: p, TaskTimeout: timeout, QueryID: qid}, t, leaf)
		if st.OK {
			d.res, d.err, d.leaf, d.simTime = res, nil, leaf, st.SimTime
			d.scanSim = st.ScanSim
			d.devBytes = st.DevBytes
			m.Manager.ReportTaskTime(leaf, st.Wall)
			return d
		}
		if st.Unreachable {
			m.Manager.MarkSuspect(leaf)
		}
		d.err = errors.New(st.Err)
		d.leaf = leaf
		exclude[leaf] = true
	}
	return d
}

// excludeUnhealthy adds every leaf the manager does not report alive to the
// exclusion set, so retries never route to dead, degraded or suspect nodes.
func (m *Master) excludeUnhealthy(exclude map[string]bool) {
	for _, n := range m.Manager.Health().Nodes {
		if n.Kind == KindLeaf && n.State != StateAlive {
			exclude[n.Name] = true
		}
	}
}

// retryDelay computes the pause before a backup attempt: base<<attempt plus
// jitter in [0, base) hashed from the task key and attempt — deterministic
// (replayable under a chaos seed) yet decorrelated across tasks.
func retryDelay(base time.Duration, key string, attempt int) time.Duration {
	if attempt > 16 {
		attempt = 16
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", key, attempt)
	jitter := time.Duration(h.Sum64() % uint64(base))
	return base<<attempt + jitter
}

// sleepCtx pauses for d, returning false if the context ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// groupByStem maps each owned task to a stem server (by its assigned
// leaf), or to the master itself when no stems are alive.
func (m *Master) groupByStem(tasks []plan.TaskSpec, assign map[int]string) map[string][]plan.TaskSpec {
	stems := m.Manager.AliveWorkers(KindStem)
	out := make(map[string][]plan.TaskSpec)
	if len(stems) == 0 {
		out[m.cfg.Name] = tasks
		return out
	}
	// Stable leaf->stem mapping: hash by sorted-leaf index.
	leaves := make([]string, 0, len(assign))
	seen := make(map[string]bool)
	for _, l := range assign {
		if !seen[l] {
			seen[l] = true
			leaves = append(leaves, l)
		}
	}
	sort.Strings(leaves)
	stemOf := make(map[string]string, len(leaves))
	for i, l := range leaves {
		stemOf[l] = stems[i%len(stems)]
	}
	for _, t := range tasks {
		s := stemOf[assign[t.Ordinal]]
		out[s] = append(out[s], t)
	}
	return out
}

// stemCallReply wraps a stem's reply with per-task results split out.
type stemCallReply struct {
	Status  map[int]taskStatus
	PerTask map[int]*exec.TaskResult
}

// callStem runs a stem job remotely, or locally when addressed to the
// master itself. With result sharing on, stems return per-task results so
// identical-task futures hold exact payloads; with sharing off, stems merge
// bottom-up and the merged result is attributed to the first successful
// ordinal (correct under the master's final merge).
func (m *Master) callStem(ctx context.Context, stemName string, job stemJobMsg) (stemCallReply, error) {
	var raw any
	var err error
	if stemName == m.cfg.Name {
		raw, err = m.localStem.runJob(ctx, job)
	} else {
		raw, err = m.cfg.Fabric.Call(ctx, m.cfg.Name, stemName, transport.Control, job, 512)
	}
	if err != nil {
		return stemCallReply{}, err
	}
	reply, ok := raw.(stemReply)
	if !ok {
		return stemCallReply{}, fmt.Errorf("cluster: unexpected stem reply %T", raw)
	}
	out := stemCallReply{Status: reply.Status, PerTask: reply.PerTask}
	if job.PerTask {
		return out, nil
	}
	out.PerTask = make(map[int]*exec.TaskResult, len(job.Tasks))
	attributed := false
	for _, t := range job.Tasks {
		st := reply.Status[t.Ordinal]
		if !st.OK {
			continue
		}
		if !attributed {
			out.PerTask[t.Ordinal] = reply.Merged
			attributed = true
		} else {
			out.PerTask[t.Ordinal] = emptyResult(job.Plan)
		}
	}
	return out, nil
}

func emptyResult(p *plan.PhysicalPlan) *exec.TaskResult {
	r := &exec.TaskResult{}
	if p.Mode == plan.ModeAgg {
		r.Groups = exec.NewGroups(len(p.Aggs))
	}
	return r
}

// colColumn wraps a column chunk for dimension materialization, exposing
// record-level values (repeated columns surface their first element).
type colColumn struct{ c *colstore.Column }

func (cc *colColumn) value(r int) types.Value {
	if cc.c.Offsets != nil {
		start, end := cc.c.Offsets[r], cc.c.Offsets[r+1]
		if start == end {
			return types.NullValue()
		}
		return cc.c.Value(int(start))
	}
	return cc.c.Value(r)
}
