package cluster

import (
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/types"
)

// JobManager owns the catalog and running-job state, and deduplicates
// identical tasks across concurrent jobs (paper §III-C: "job manager tries
// to reuse other running job's task result if tasks are identical").
type JobManager struct {
	mu      sync.Mutex
	catalog plan.MapCatalog
	// inflight maps task keys to shared futures.
	inflight map[string]*taskFuture
	nextJob  int64

	Reused metrics.Counter
}

// taskFuture is one running task shared across identical submissions.
type taskFuture struct {
	done   chan struct{}
	result *exec.TaskResult
	err    error
}

// NewJobManager returns an empty manager.
func NewJobManager() *JobManager {
	return &JobManager{catalog: plan.MapCatalog{}, inflight: make(map[string]*taskFuture)}
}

// RegisterTable installs or replaces a catalog entry and returns the op for
// replication to backup masters.
func (j *JobManager) RegisterTable(meta *plan.TableMeta) catalogOp {
	j.mu.Lock()
	j.catalog[meta.Name] = meta
	j.mu.Unlock()
	return catalogOp{Table: meta}
}

// Lookup implements plan.Catalog.
func (j *JobManager) Lookup(name string) (*plan.TableMeta, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if t, ok := j.catalog[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("cluster: unknown table %q", name)
}

// Tables lists catalog entries.
func (j *JobManager) Tables() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.catalog.Tables()
}

// NewJobID allocates a job identifier.
func (j *JobManager) NewJobID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextJob++
	return fmt.Sprintf("job-%d", j.nextJob)
}

// claimTask either registers a new future for the task (owner=true: the
// caller must run it and complete the future) or returns the future of an
// identical running task (owner=false: the caller waits on it).
func (j *JobManager) claimTask(key string) (*taskFuture, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if f, ok := j.inflight[key]; ok {
		j.Reused.Inc()
		return f, false
	}
	f := &taskFuture{done: make(chan struct{})}
	j.inflight[key] = f
	return f, true
}

// InflightTasks returns the number of task futures currently registered —
// a monotone-while-blocked gauge deterministic test barriers poll to know
// every task of a gated query has been claimed.
func (j *JobManager) InflightTasks() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.inflight)
}

// completeTask publishes a task result and retires the future.
func (j *JobManager) completeTask(key string, f *taskFuture, res *exec.TaskResult, err error) {
	f.result, f.err = res, err
	close(f.done)
	j.mu.Lock()
	delete(j.inflight, key)
	j.mu.Unlock()
}

// catalogOp is the replicated operation-log entry for master HA.
type catalogOp struct {
	Table *plan.TableMeta
}

// catalogSnapshot is the checkpoint shipped to a fresh backup.
type catalogSnapshot struct {
	Tables []*plan.TableMeta
}

// Snapshot captures the catalog for checkpoint shipping.
func (j *JobManager) Snapshot() catalogSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := catalogSnapshot{}
	for _, name := range j.catalog.Tables() {
		snap.Tables = append(snap.Tables, j.catalog[name])
	}
	return snap
}

// Restore applies a checkpoint.
func (j *JobManager) Restore(snap catalogSnapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.catalog = plan.MapCatalog{}
	for _, t := range snap.Tables {
		j.catalog[t.Name] = t
	}
}

// cloneResult deep-copies a task result so shared (reused) results cannot
// be mutated by one consumer's merge while another reads it.
func cloneResult(r *exec.TaskResult) *exec.TaskResult {
	if r == nil {
		return nil
	}
	out := &exec.TaskResult{Stats: r.Stats}
	if r.Rows != nil {
		out.Rows = make([][]types.Value, len(r.Rows))
		for i, row := range r.Rows {
			cp := make([]types.Value, len(row))
			copy(cp, row)
			out.Rows[i] = cp
		}
	}
	if r.Groups != nil {
		out.Groups = exec.NewGroups(r.Groups.NumAggs)
		for k, g := range r.Groups.M {
			keys := make([]types.Value, len(g.Keys))
			copy(keys, g.Keys)
			cells := make([]exec.Cell, len(g.Cells))
			copy(cells, g.Cells)
			out.Groups.M[k] = &exec.Group{Keys: keys, Cells: cells}
		}
	}
	return out
}
