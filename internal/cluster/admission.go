package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Priority classifies a query for admission control: interactive queries
// (dashboards, ad-hoc exploration) get a larger weighted-fair share of
// execution slots than batch queries (reports, backfills). The zero value is
// interactive so existing callers keep today's behaviour.
type Priority int

// Priority classes.
const (
	PriorityInteractive Priority = iota
	PriorityBatch
	numPriorities // sentinel: class-indexed arrays size themselves off it
)

// String names the class.
func (p Priority) String() string {
	if p == PriorityBatch {
		return "batch"
	}
	return "interactive"
}

// ErrOverloaded is returned when admission control sheds a query: the queue
// for its priority class is full, or it waited past its queue deadline.
// Errors wrapping it are of type *OverloadedError and carry a retry-after
// hint; recover with errors.As.
var ErrOverloaded = errors.New("cluster: overloaded")

// OverloadedError is the typed load-shedding error: it wraps ErrOverloaded
// and tells the client which class shed, how deep its queue was, and how
// long to back off before retrying (estimated from the recent query service
// rate).
type OverloadedError struct {
	// Class is the shed query's priority class.
	Class Priority
	// QueueDepth is the class queue's depth at shed time.
	QueueDepth int
	// RetryAfter estimates when a slot is likely to free up.
	RetryAfter time.Duration
	// Deadline marks a queue-time-deadline shed (the query was admitted to
	// the queue but waited too long) rather than a queue-full rejection.
	Deadline bool
}

// Error renders the shed reason and the retry hint.
func (e *OverloadedError) Error() string {
	why := "admission queue full"
	if e.Deadline {
		why = "queue-wait deadline exceeded"
	}
	return fmt.Sprintf("cluster: overloaded (%s, class=%s, queued=%d): retry after %s",
		why, e.Class, e.QueueDepth, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// AdmissionConfig shapes the master's admission controller.
type AdmissionConfig struct {
	// MaxConcurrent caps in-flight (admitted, executing) queries. <=0
	// disables admission control entirely.
	MaxConcurrent int
	// MaxQueueDepth bounds each priority class's wait queue; arrivals beyond
	// it are shed with *OverloadedError. 0 defaults to 2×MaxConcurrent.
	MaxQueueDepth int
	// Weights are the weighted-fair dequeue shares per class. Zero entries
	// default to 4 (interactive) and 1 (batch): four interactive dequeues
	// per batch dequeue under sustained pressure, but a lone batch query
	// never starves.
	Weights [numPriorities]int
	// QueueDeadline sheds a queued query that has not been granted a slot
	// within this wait; 0 means queries wait as long as their context
	// allows. QueryOptions.QueueDeadline overrides it per query.
	QueueDeadline time.Duration
	// Now is injectable for deterministic tests; nil uses time.Now.
	Now func() time.Time
}

// admitWaiter is one queued query.
type admitWaiter struct {
	pri   Priority
	ready chan struct{} // closed on grant
	// granted/abandoned are guarded by the controller lock and resolve the
	// race between a grant and a timeout/cancellation.
	granted   bool
	abandoned bool
	enqueued  time.Time
}

// AdmissionController is the master's bounded admission queue: at most
// MaxConcurrent queries execute at once, excess arrivals wait in per-class
// FIFO queues drained by smooth weighted round-robin, and arrivals beyond
// the queue bound (or past their queue deadline) are shed with a typed
// retry-after error instead of degrading every query in flight.
type AdmissionController struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	running int
	queues  [numPriorities][]*admitWaiter
	// credit is the smooth-WRR state: each grant adds every backlogged
	// class's weight to its credit, picks the max, and charges it the total.
	credit [numPriorities]int
	// serviceEWMA smooths admitted queries' slot-hold times (ns) for the
	// retry-after hint; 0 until the first release.
	serviceEWMA float64

	// Admitted / Shed count per-class outcomes; queue depth and running are
	// exposed via Snapshot for gauges.
	Admitted [numPriorities]metrics.Counter
	Shed     [numPriorities]metrics.Counter
}

// serviceEWMAAlpha smooths slot-hold times for the retry-after hint.
const serviceEWMAAlpha = 0.3

// NewAdmissionController returns a controller, or nil when cfg disables
// admission (MaxConcurrent <= 0) — all methods on a nil controller admit
// immediately.
func NewAdmissionController(cfg AdmissionConfig) *AdmissionController {
	if cfg.MaxConcurrent <= 0 {
		return nil
	}
	if cfg.MaxQueueDepth <= 0 {
		cfg.MaxQueueDepth = 2 * cfg.MaxConcurrent
	}
	if cfg.Weights[PriorityInteractive] <= 0 {
		cfg.Weights[PriorityInteractive] = 4
	}
	if cfg.Weights[PriorityBatch] <= 0 {
		cfg.Weights[PriorityBatch] = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &AdmissionController{cfg: cfg}
}

// Admit blocks until the query holds an execution slot, then returns the
// release function (must be called exactly once) and the time spent queued.
// It sheds with *OverloadedError when the class queue is full or the queue
// deadline (per-query override first, config default otherwise) expires,
// and returns ctx.Err() when the caller gives up first.
func (a *AdmissionController) Admit(ctx context.Context, pri Priority, queueDeadline time.Duration) (release func(), wait time.Duration, err error) {
	if a == nil {
		return func() {}, 0, nil
	}
	if pri < 0 || pri >= numPriorities {
		pri = PriorityInteractive
	}
	a.mu.Lock()
	// Invariant: a non-empty queue implies running == MaxConcurrent (grants
	// drain the queue before slots go idle), so a free slot admits directly.
	if a.running < a.cfg.MaxConcurrent {
		a.running++
		a.Admitted[pri].Inc()
		a.mu.Unlock()
		return a.releaseFunc(a.cfg.Now()), 0, nil
	}
	if len(a.queues[pri]) >= a.cfg.MaxQueueDepth {
		depth := len(a.queues[pri])
		hint := a.retryAfterLocked(depth)
		a.Shed[pri].Inc()
		a.mu.Unlock()
		return nil, 0, &OverloadedError{Class: pri, QueueDepth: depth, RetryAfter: hint}
	}
	w := &admitWaiter{pri: pri, ready: make(chan struct{}), enqueued: a.cfg.Now()}
	a.queues[pri] = append(a.queues[pri], w)
	a.mu.Unlock()

	if queueDeadline <= 0 {
		queueDeadline = a.cfg.QueueDeadline
	}
	var deadline <-chan time.Time
	if queueDeadline > 0 {
		t := time.NewTimer(queueDeadline)
		defer t.Stop()
		deadline = t.C
	}

	select {
	case <-w.ready:
		a.mu.Lock()
		wait = a.cfg.Now().Sub(w.enqueued)
		a.Admitted[pri].Inc()
		start := a.cfg.Now()
		a.mu.Unlock()
		return a.releaseFunc(start), wait, nil
	case <-deadline:
		if a.abandon(w) {
			a.mu.Lock()
			depth := len(a.queues[pri])
			hint := a.retryAfterLocked(depth)
			a.Shed[pri].Inc()
			a.mu.Unlock()
			return nil, 0, &OverloadedError{Class: pri, QueueDepth: depth, RetryAfter: hint, Deadline: true}
		}
		// Granted while timing out: take the slot after all.
		a.mu.Lock()
		wait = a.cfg.Now().Sub(w.enqueued)
		a.Admitted[pri].Inc()
		start := a.cfg.Now()
		a.mu.Unlock()
		return a.releaseFunc(start), wait, nil
	case <-ctx.Done():
		if a.abandon(w) {
			return nil, 0, ctx.Err()
		}
		// The grant won the race; the caller is leaving, so hand the slot on.
		a.releaseFunc(a.cfg.Now())()
		return nil, 0, ctx.Err()
	}
}

// abandon marks a waiter dead if it has not been granted yet; it reports
// whether the abandonment won (false means the waiter owns a slot).
func (a *AdmissionController) abandon(w *admitWaiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		return false
	}
	w.abandoned = true
	// Remove eagerly so queue-depth gauges and queue-full sheds see truth.
	q := a.queues[w.pri]
	for i, qw := range q {
		if qw == w {
			a.queues[w.pri] = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	return true
}

// releaseFunc returns the slot-release closure for an admitted query; start
// is when the slot was taken (feeds the service-time EWMA).
func (a *AdmissionController) releaseFunc(start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			defer a.mu.Unlock()
			if held := float64(a.cfg.Now().Sub(start)); held > 0 {
				if a.serviceEWMA == 0 {
					a.serviceEWMA = held
				} else {
					a.serviceEWMA = (1-serviceEWMAAlpha)*a.serviceEWMA + serviceEWMAAlpha*held
				}
			}
			// Hand the slot to the next waiter (weighted-fair across the
			// backlogged classes); only an empty queue frees the slot.
			for {
				next := a.dequeueLocked()
				if next == nil {
					a.running--
					return
				}
				if next.abandoned {
					continue // lost a race with abandon; pick again
				}
				next.granted = true
				close(next.ready)
				return
			}
		})
	}
}

// dequeueLocked pops the next waiter by smooth weighted round-robin: every
// backlogged class earns its weight, the richest class is served and charged
// the round's total. Any class with a positive weight is served within a
// bounded number of rounds, so no class starves.
func (a *AdmissionController) dequeueLocked() *admitWaiter {
	total := 0
	best := -1
	for c := 0; c < int(numPriorities); c++ {
		if len(a.queues[c]) == 0 {
			continue
		}
		a.credit[c] += a.cfg.Weights[c]
		total += a.cfg.Weights[c]
		if best < 0 || a.credit[c] > a.credit[best] {
			best = c
		}
	}
	if best < 0 {
		// Nothing queued: reset credits so an idle period does not bank
		// arbitrarily large debt for one class.
		a.credit = [numPriorities]int{}
		return nil
	}
	a.credit[best] -= total
	w := a.queues[best][0]
	a.queues[best] = a.queues[best][1:]
	return w
}

// coldStartServiceEstimate stands in for the mean slot-hold time before the
// first query has completed (serviceEWMA == 0). Without it, a cold-start
// overload would compute a zero retry-after hint and shed clients into an
// immediate-retry stampede against an already-full queue.
const coldStartServiceEstimate = 10 * time.Millisecond

// minRetryAfter floors every hint so clients never busy-spin on a zero (or
// rounded-to-zero) suggestion.
const minRetryAfter = time.Millisecond

// retryAfterLocked estimates when a slot frees up: the recent mean slot-hold
// time (a cold-start estimate before any query has completed) scaled by how
// many queries are ahead of a fresh arrival, floored at minRetryAfter.
func (a *AdmissionController) retryAfterLocked(classDepth int) time.Duration {
	svc := time.Duration(a.serviceEWMA)
	if svc <= 0 {
		svc = coldStartServiceEstimate
	}
	ahead := classDepth + 1
	hint := svc * time.Duration(ahead) / time.Duration(a.cfg.MaxConcurrent)
	if hint < minRetryAfter {
		hint = minRetryAfter
	}
	return hint
}

// SetNow swaps the controller clock (deterministic test harnesses). Nil-safe.
func (a *AdmissionController) SetNow(now func() time.Time) {
	if a == nil || now == nil {
		return
	}
	a.mu.Lock()
	a.cfg.Now = now
	a.mu.Unlock()
}

// AdmissionSnapshot is the controller's observable state, rendered in \top
// and exported as gauges.
type AdmissionSnapshot struct {
	Enabled       bool
	Running       int
	MaxConcurrent int
	MaxQueueDepth int
	Queued        [numPriorities]int
	Admitted      [numPriorities]int64
	Shed          [numPriorities]int64
	// RetryAfter is the hint a shed query would receive right now.
	RetryAfter time.Duration
}

// Snapshot captures the controller state; a nil controller reports disabled.
func (a *AdmissionController) Snapshot() AdmissionSnapshot {
	if a == nil {
		return AdmissionSnapshot{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := AdmissionSnapshot{
		Enabled:       true,
		Running:       a.running,
		MaxConcurrent: a.cfg.MaxConcurrent,
		MaxQueueDepth: a.cfg.MaxQueueDepth,
	}
	for c := 0; c < int(numPriorities); c++ {
		s.Queued[c] = len(a.queues[c])
		s.Admitted[c] = a.Admitted[c].Value()
		s.Shed[c] = a.Shed[c].Value()
	}
	s.RetryAfter = a.retryAfterLocked(s.Queued[PriorityInteractive])
	return s
}

// QueueDepth returns one class's current queue length (gauge callbacks).
func (a *AdmissionController) QueueDepth(pri Priority) int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queues[pri])
}

// Running returns the number of queries holding execution slots.
func (a *AdmissionController) Running() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running
}

// Render formats the admission state as the \top dashboard block.
func (s AdmissionSnapshot) Render() string {
	if !s.Enabled {
		return ""
	}
	return fmt.Sprintf(
		"admission: %d/%d running | queued int=%d batch=%d (cap %d/class) | admitted int=%d batch=%d | shed int=%d batch=%d | retry-after %s\n",
		s.Running, s.MaxConcurrent,
		s.Queued[PriorityInteractive], s.Queued[PriorityBatch], s.MaxQueueDepth,
		s.Admitted[PriorityInteractive], s.Admitted[PriorityBatch],
		s.Shed[PriorityInteractive], s.Shed[PriorityBatch],
		s.RetryAfter.Round(time.Millisecond))
}
