package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/exec"
)

// Oversized task results are not returned inline: the leaf dumps them to
// global storage over the write flow and passes only the location (paper
// §V-C). These helpers encode results for that path.

// encodeResult serializes a task result for spilling.
func encodeResult(r *exec.TaskResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("cluster: encode spill: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeResult parses a spilled task result.
func decodeResult(data []byte) (*exec.TaskResult, error) {
	var r exec.TaskResult
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
		return nil, fmt.Errorf("cluster: decode spill: %w", err)
	}
	return &r, nil
}
