package cluster

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/resultcache"
	"repro/internal/sqlparser"
)

// newCachedCluster builds the standard test deployment with a semantic
// result cache in front of admission.
func newCachedCluster(t *testing.T) *testCluster {
	t.Helper()
	return newTestCluster(t, 2, 0, 2, func(cfg *MasterConfig) {
		cfg.ResultCache = resultcache.New(resultcache.Config{CapacityBytes: 1 << 20})
		cfg.CacheAffinity = true
	})
}

// TestMasterResultCacheOutcomes drives the three lookup outcomes through the
// full submit path: first execution misses, the identical query (different
// literal spelling normalizes to the same shape) hits, and a narrower range
// is answered by subsumption — all with identical rows and zero tasks on the
// reuse paths.
func TestMasterResultCacheOutcomes(t *testing.T) {
	tc := newCachedCluster(t)

	cold, stats := tc.query("SELECT id, v FROM logs WHERE id > 150", QueryOptions{})
	if stats.ResultCache != "miss" || stats.Tasks == 0 {
		t.Fatalf("cold run: outcome=%q tasks=%d", stats.ResultCache, stats.Tasks)
	}

	hit, stats := tc.query("SELECT id, v FROM logs WHERE id > 150", QueryOptions{})
	if stats.ResultCache != "hit" || stats.Tasks != 0 {
		t.Fatalf("repeat: outcome=%q tasks=%d, want hit with zero tasks", stats.ResultCache, stats.Tasks)
	}
	if len(hit.Rows) != len(cold.Rows) {
		t.Fatalf("hit rows = %d, cold rows = %d", len(hit.Rows), len(cold.Rows))
	}

	sub, stats := tc.query("SELECT id, v FROM logs WHERE id > 180", QueryOptions{})
	if stats.ResultCache != "subsumed" || stats.Tasks != 0 {
		t.Fatalf("narrower: outcome=%q tasks=%d, want subsumed with zero tasks", stats.ResultCache, stats.Tasks)
	}
	for _, row := range sub.Rows {
		if row[0].I <= 180 {
			t.Fatalf("subsumed result leaked row %v outside the narrower predicate", row)
		}
	}

	// Bypass: no lookup, no store, no outcome reported.
	_, stats = tc.query("SELECT id, v FROM logs WHERE id > 150", QueryOptions{DisableResultCache: true})
	if stats.ResultCache != "" || stats.Tasks == 0 {
		t.Fatalf("bypass: outcome=%q tasks=%d, want no outcome and real execution", stats.ResultCache, stats.Tasks)
	}

	snap := tc.master.ResultCache().Snapshot()
	if snap.Hits != 1 || snap.SubsumedHits != 1 {
		t.Errorf("cache counters = %+v, want 1 hit and 1 subsumed", snap)
	}
}

// TestMasterResultCacheTraceSpan checks both trace shapes: a traced hit is a
// result-cache span carrying the row count instead of an execute tree, and a
// traced miss records the result-cache status beside the admission span.
func TestMasterResultCacheTraceSpan(t *testing.T) {
	tc := newCachedCluster(t)

	_, stats := tc.query("SELECT COUNT(*) FROM logs", QueryOptions{Trace: true})
	if stats.Trace == nil {
		t.Fatal("traced miss has no span tree")
	}
	missText := stats.Trace.Render()
	if !strings.Contains(missText, "result-cache") || !strings.Contains(missText, "status=miss") {
		t.Fatalf("miss trace lacks the result-cache status span:\n%s", missText)
	}

	_, stats = tc.query("SELECT COUNT(*) FROM logs", QueryOptions{Trace: true})
	if stats.ResultCache != "hit" || stats.Trace == nil {
		t.Fatalf("repeat: outcome=%q trace=%v", stats.ResultCache, stats.Trace)
	}
	hitText := stats.Trace.Render()
	if !strings.Contains(hitText, "result-cache") || !strings.Contains(hitText, "status=hit") {
		t.Fatalf("hit trace lacks the result-cache span:\n%s", hitText)
	}
	if strings.Contains(hitText, "execute") {
		t.Fatalf("hit trace still shows an execute stage:\n%s", hitText)
	}
}

// TestMasterResultCacheInvalidation covers both invalidation entry points:
// re-registering a table (the ingest path) and InvalidatePartition (the
// rewrite fan-out) must each drop cached entries for the table.
func TestMasterResultCacheInvalidation(t *testing.T) {
	tc := newCachedCluster(t)
	ctx := t.Context()

	const q = "SELECT COUNT(*) FROM logs"
	tc.query(q, QueryOptions{})
	if _, stats := tc.query(q, QueryOptions{}); stats.ResultCache != "hit" {
		t.Fatalf("warm outcome = %q", stats.ResultCache)
	}

	meta, err := tc.master.Jobs.Lookup("logs")
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.master.RegisterTable(ctx, meta); err != nil {
		t.Fatal(err)
	}
	if _, stats := tc.query(q, QueryOptions{}); stats.ResultCache != "miss" {
		t.Fatalf("post-register outcome = %q, want miss", stats.ResultCache)
	}

	if _, stats := tc.query(q, QueryOptions{}); stats.ResultCache != "hit" {
		t.Fatal("cache did not rewarm")
	}
	tc.master.InvalidatePartition("logs", meta.Partitions[0].Path)
	if _, stats := tc.query(q, QueryOptions{}); stats.ResultCache != "miss" {
		t.Fatal("InvalidatePartition left the cached entry alive")
	}

	if tc.master.ResultCache().Snapshot().Invalidations == 0 {
		t.Error("invalidation counter never moved")
	}
}

// TestMasterResultCacheSkipsPartial ensures degraded results never populate
// the cache: a partial result (dead leaf, PartialResults on) must not be
// served to the next caller.
func TestMasterResultCacheSkipsPartial(t *testing.T) {
	tc := newTestCluster(t, 2, 0, 4, func(cfg *MasterConfig) {
		cfg.ResultCache = resultcache.New(resultcache.Config{CapacityBytes: 1 << 20})
		cfg.MaxTaskRetries = 1
	})
	// Kill one leaf so some tasks drop under PartialResults.
	tc.fabric.SetDown("leaf1", true)
	tc.master.Manager.MarkSuspect("leaf1")

	res, stats, err := tc.master.Submit(t.Context(), "SELECT COUNT(*) FROM logs",
		QueryOptions{PartialResults: true})
	if err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if !res.Partial && stats.TasksFailed == 0 {
		t.Skip("no task failed; partial-store gate not exercised")
	}
	if snap := tc.master.ResultCache().Snapshot(); snap.Entries != 0 {
		t.Fatalf("partial result was cached: %+v", snap)
	}
}

// TestTaskKeyCarriesLiteralIdentity pins the job-manager dedup fix at the
// cluster level: concurrent-identical literals share task keys, different
// literals never do.
func TestTaskKeyCarriesLiteralIdentity(t *testing.T) {
	tc := newCachedCluster(t)
	p1 := tc.plan("SELECT id FROM logs WHERE v > 3")
	p2 := tc.plan("SELECT id FROM logs WHERE v > 4")
	k1 := p1.Tasks()[0].Key()
	k2 := p2.Tasks()[0].Key()
	if k1 == k2 {
		t.Fatalf("literal variants share task key %q", k1)
	}
	if p1.Fingerprint != p2.Fingerprint {
		t.Fatalf("literal variants should share a fingerprint: %q vs %q", p1.Fingerprint, p2.Fingerprint)
	}
}

// plan parses and plans a statement against the cluster's catalog.
func (tc *testCluster) plan(sql string) *plan.PhysicalPlan {
	tc.t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		tc.t.Fatal(err)
	}
	p, err := plan.Plan(stmt, tc.master.Jobs)
	if err != nil {
		tc.t.Fatal(err)
	}
	return p
}
